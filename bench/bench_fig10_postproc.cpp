// Figure 10: post-processing I/O time.
//   (a) data analysis (MSE on temp): read from remote tape vs remote disk;
//   (b) visualization (Volren / interactive viz on vr_temp): read from
//       remote tape vs local disk (the paper's ~10x), and vr_press from
//       remote disk;
//   (c) superfile vs naive many-small-files for Volren's images.
// Every measured number is paired with the predictor's estimate.
#include "apps/mse/mse.h"
#include "apps/volren/volren.h"
#include "bench_util.h"
#include "runtime/superfile.h"

namespace msra::bench {
namespace {

using apps::astro3d::Config;
using core::Location;

/// A testbed whose producer dumped only the named viz/analysis datasets to
/// the given locations.
struct ProducedWorld {
  std::unique_ptr<Testbed> testbed;
  std::unique_ptr<core::Session> session;
  Config config;
};

ProducedWorld produce(const std::map<std::string, Location>& hints) {
  ProducedWorld world;
  world.testbed = std::make_unique<Testbed>();
  check(world.testbed->calibrate(), "calibrate");
  world.config = astro_config();
  world.config.default_location = Location::kDisable;
  world.config.hints = hints;
  world.session = std::make_unique<core::Session>(
      world.testbed->system,
      core::SessionOptions{.application = "astro3d", .user = "xshen",
                           .nprocs = world.config.nprocs,
                           .iterations = world.config.iterations});
  check(apps::astro3d::run(*world.session, world.config).status(),
        "astro3d producer");
  world.testbed->system.reset_time();
  return world;
}

double predict_read(ProducedWorld& world, const std::string& dataset,
                    Location location, int nprocs) {
  for (const auto& desc : apps::astro3d::dataset_descs(world.config)) {
    if (desc.name != dataset) continue;
    auto prediction = check(
        world.testbed->predictor.predict_dataset(
            desc, location, world.config.iterations, nprocs,
            predict::IoOp::kRead),
        "read prediction");
    return prediction.total;
  }
  std::fprintf(stderr, "no such dataset: %s\n", dataset.c_str());
  std::exit(1);
}

void part_a() {
  std::printf("\n-- (a) data analysis: MSE over `temp` --------------------\n");
  std::printf("%-28s %14s %14s\n", "temp placed on", "predicted (s)",
              "measured (s)");
  for (Location location : {Location::kRemoteTape, Location::kRemoteDisk}) {
    auto world = produce({{"temp", location}});
    const double predicted =
        predict_read(world, "temp", location, world.config.nprocs);
    auto result = check(
        apps::mse::run(*world.session, {.dataset = "temp",
                                        .nprocs = world.config.nprocs}),
        "mse");
    std::printf("%-28s %14.1f %14.1f\n",
                std::string(core::location_name(location)).c_str(), predicted,
                result.io_time);
  }
}

void part_b() {
  std::printf("\n-- (b) visualization: Volren over `vr_temp` --------------\n");
  std::printf("%-28s %14s %14s\n", "vr_temp placed on", "predicted (s)",
              "measured (s)");
  double tape_time = 0.0, local_time = 0.0;
  for (Location location : {Location::kRemoteTape, Location::kLocalDisk}) {
    auto world = produce({{"vr_temp", location}});
    const double predicted =
        predict_read(world, "vr_temp", location, world.config.nprocs);
    auto result = check(
        apps::volren::run(*world.session,
                          {.dataset = "vr_temp", .width = 64, .height = 64,
                           .nprocs = world.config.nprocs,
                           .image_location = Location::kLocalDisk,
                           .image_base = "volren/b"}),
        "volren");
    (location == Location::kRemoteTape ? tape_time : local_time) =
        result.read_io_time;
    std::printf("%-28s %14.1f %14.1f\n",
                std::string(core::location_name(location)).c_str(), predicted,
                result.read_io_time);
  }
  std::printf("local-vs-tape read speedup: %.1fx (paper: ~10x)\n",
              tape_time / local_time);

  std::printf("\n   `vr_press` read (serial whole-volume, interactive viz):\n");
  std::printf("%-28s %14s %14s\n", "vr_press placed on", "predicted (s)",
              "measured (s)");
  for (Location location : {Location::kRemoteTape, Location::kRemoteDisk}) {
    auto world = produce({{"vr_press", location}});
    const double predicted = predict_read(world, "vr_press", location, 1);
    auto handle =
        check(world.session->open_existing("vr_press"), "open vr_press");
    simkit::Timeline tl;
    const int freq = world.config.viz_freq;
    for (int t = 0; t <= world.config.iterations; t += freq) {
      check(handle->read_whole(t, {.timeline = &tl}).status(), "read_whole");
    }
    std::printf("%-28s %14.1f %14.1f\n",
                std::string(core::location_name(location)).c_str(), predicted,
                tl.now());
  }
}

void part_c() {
  std::printf("\n-- (c) superfile vs naive small files (Volren images) ----\n");
  auto world = produce({{"vr_temp", Location::kLocalDisk}});
  std::printf("%-28s %14s %14s\n", "method", "write (s)", "read-back (s)");
  double naive_write = 0.0, naive_read = 0.0;
  double super_write = 0.0, super_read = 0.0;

  for (bool use_superfile : {false, true}) {
    world.testbed->system.reset_time();
    const std::string base =
        use_superfile ? std::string("volren/super") : std::string("volren/naive");
    auto result = check(
        apps::volren::run(*world.session,
                          {.dataset = "vr_temp", .width = 128, .height = 128,
                           .nprocs = world.config.nprocs,
                           .image_location = Location::kRemoteDisk,
                           .use_superfile = use_superfile,
                           .image_base = base}),
        "volren images");
    // Read everything back the way a later viewer session would.
    world.testbed->system.reset_time();
    simkit::Timeline tl;
    auto& endpoint = world.testbed->system.endpoint(Location::kRemoteDisk);
    if (use_superfile) {
      auto reader = check(runtime::SuperfileReader::open(endpoint, tl,
                                                         base + "/all.super"),
                          "superfile open");
      for (const auto& name : reader.names()) {
        check(reader.read(name).status(), "superfile member");
      }
      super_write = result.write_io_time;
      super_read = tl.now();
    } else {
      auto listed = check(endpoint.list(tl, base + "/"), "list images");
      for (const auto& info : listed) {
        std::vector<std::byte> blob(info.size);
        auto file = check(runtime::FileSession::start(endpoint, tl, info.name,
                                                      srb::OpenMode::kRead),
                          "open image");
        check(file.read(blob), "read image");
        check(file.finish(), "close image");
      }
      naive_write = result.write_io_time;
      naive_read = tl.now();
    }
  }
  std::printf("%-28s %14.1f %14.1f\n", "naive (one file per image)",
              naive_write, naive_read);
  std::printf("%-28s %14.1f %14.1f\n", "superfile", super_write, super_read);
  std::printf("superfile speedup: write %.1fx, read %.1fx\n",
              naive_write / super_write, naive_read / super_read);
}

int run() {
  print_header(
      "Figure 10 — post-processing I/O: analysis, visualization, superfile",
      "Shen et al., HPDC 2000, Figure 10 (a), (b), (c)");
  part_a();
  part_b();
  part_c();
  return 0;
}

}  // namespace
}  // namespace msra::bench

int main() { return msra::bench::run(); }
