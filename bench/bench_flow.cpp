// Whole-campaign scheduling: what declaring the DAG up front buys.
//
// One campaign shape, three staging strategies, all deterministic simulated
// time (the --json summary is byte-stable and guards drift,
// bench/baselines/BENCH_flow.json):
//
//   * static — the campaign runs where the data sits: the tape-resident
//     reference dataset is read from tape by BOTH consumer stages. The
//     paper's baseline: placement is whatever the archive left behind.
//
//   * hint — the operator knows the campaign needs `ref` and stages it to
//     local disk FIRST, then launches (the PBS/CASTOR stage-in discipline).
//     Reads are fast, but the whole stage-in sits on the critical path
//     ahead of the simulation stage that doesn't even use `ref`.
//
//   * planned — the campaign DAG is declared to Fleet::submit_campaign with
//     a StagingScheduler: the planner sees that `ref` has two declared
//     future readers (benefit = 2 x read savings > priced move), copies it
//     toward the consumers in the tape path's idle window WHILE the
//     simulation wave runs, and GCs the staged copy after the last
//     consumer. Stage-in leaves the critical path.
//
// Gate: planned < hint < static makespan, the planner stages exactly the
// declared-reuse inputs (one move per ref timestep, all successful), and
// the static run stages nothing.
//
//   --json FILE   machine-readable summary (see bench/run_all.sh)
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "flow/pricer.h"
#include "flow/run.h"
#include "obs/report.h"

namespace msra::bench {
namespace {

constexpr std::array<std::uint64_t, 3> kFrameDims = {48, 48, 48};
constexpr int kFrameTimesteps = 6;  ///< sim wave length (the overlap window)
constexpr std::array<std::uint64_t, 3> kRefDims = {64, 64, 64};
constexpr int kRefTimesteps = 2;    ///< tape-resident input both consumers read

core::SessionOptions flow_options() {
  core::SessionOptions options;
  options.application = "flow";
  return options;
}

/// Seeds the tape-resident reference dataset the consumer stages read.
void seed_ref(core::StorageSystem& system) {
  const core::DatasetDesc ref =
      mix_dataset("ref", kRefDims, core::Location::kRemoteTape);
  core::Fleet fleet(system);
  core::Client& producer = fleet.add_client("ref_producer", flow_options());
  core::Workload workload;
  workload.open(ref);
  for (int t = 0; t < kRefTimesteps; ++t) workload.dump(ref.name, t);
  workload.finalize();
  core::Completion* done = producer.submit(std::move(workload));
  fleet.run_until_idle();
  check(done->status(), "ref producer");
  system.reset_time();
}

/// The campaign: sim dumps frames to remote disk (long, no ref), mse reads
/// frames + ref, viz reads ref again after mse — two declared readers per
/// ref timestep, which is what makes pre-staging pay.
flow::Campaign build_campaign() {
  const core::DatasetDesc frame =
      mix_dataset("frame", kFrameDims, core::Location::kRemoteDisk);
  flow::Campaign campaign("bench", "flow");

  core::Workload sim;
  sim.open(frame);
  for (int t = 0; t < kFrameTimesteps; ++t) sim.dump(frame.name, t);
  sim.finalize();
  campaign.stage("sim", std::move(sim));

  core::Workload mse;
  mse.open_existing(frame.name).open_existing("ref");
  for (int t = 0; t < kFrameTimesteps; ++t) mse.read_whole(frame.name, t);
  for (int t = 0; t < kRefTimesteps; ++t) mse.read_whole("ref", t);
  mse.finalize();
  campaign.stage("mse", std::move(mse));

  core::Workload viz;
  viz.open_existing("ref");
  for (int t = 0; t < kRefTimesteps; ++t) viz.read_whole("ref", t);
  viz.finalize();
  campaign.stage("viz", std::move(viz));
  campaign.after("viz", "mse");
  return campaign;
}

/// One mover worker: concurrent workers book shared devices in host
/// thread-scheduling order, which would make the virtual-time summary
/// drift run-to-run — the parity guard needs byte-stable numbers.
flow::StagingConfig serial_staging() {
  flow::StagingConfig config;
  config.workers = 1;
  return config;
}

struct RunResult {
  double makespan = 0.0;
  double stage_in = 0.0;  ///< hint: blocking stage-in ahead of the launch
  int moves = 0;          ///< successful staging copies
  std::vector<obs::CampaignStageRow> rows;
};

std::vector<obs::CampaignStageRow> stage_rows(
    const flow::CampaignReport& report) {
  std::vector<obs::CampaignStageRow> rows;
  for (const flow::StageResult& stage : report.stages) {
    check(stage.status, stage.stage.c_str());
    rows.push_back({stage.stage, stage.started_at, stage.finished_at, ""});
  }
  return rows;
}

/// static / planned: submit the declared campaign, with or without the
/// unified staging scheduler behind it.
RunResult run_campaign(bool planned) {
  Testbed bed;
  check(bed.calibrate(), "ptool calibration");
  seed_ref(bed.system);

  flow::StagingScheduler stager(bed.system, &bed.predictor,
                                serial_staging());
  flow::CampaignOptions options;
  options.predictor = &bed.predictor;
  if (planned) options.stager = &stager;

  core::Fleet fleet(bed.system);
  const flow::CampaignReport report =
      check(fleet.submit_campaign(build_campaign(), options), "campaign");
  RunResult result;
  result.makespan = report.makespan;
  result.rows = stage_rows(report);
  for (const flow::StageOutcome& outcome : report.staging) {
    if (outcome.task.kind == flow::StageTaskKind::kPrestage &&
        outcome.status.ok()) {
      ++result.moves;
    }
  }
  return result;
}

/// hint: promote every ref timestep to local disk first (the operator's
/// stage-in script), wait for it, then launch the campaign without a
/// scheduler. The stage-in time is on the critical path by construction.
RunResult run_hint() {
  Testbed bed;
  check(bed.calibrate(), "ptool calibration");
  seed_ref(bed.system);

  flow::StagingScheduler stager(bed.system, &bed.predictor,
                                serial_staging());
  core::MetaCatalog catalog(&bed.system.metadb());
  std::vector<flow::StageTask> tasks;
  for (int t = 0; t < kRefTimesteps; ++t) {
    const core::InstanceRecord instance =
        check(catalog.instance("flow", "ref", t), "ref instance");
    flow::StageTask task;
    task.kind = flow::StageTaskKind::kPromote;
    task.app = "flow";
    task.name = "ref";
    task.timestep = t;
    task.from = instance.primary();
    task.to = core::ReplicaAddress{core::Location::kLocalDisk, 0};
    task.path = instance.path;
    task.bytes = instance.bytes;
    tasks.push_back(task);
  }
  RunResult result;
  for (const flow::StageOutcome& outcome : stager.execute(tasks)) {
    check(outcome.status, "stage-in copy");
    result.stage_in = std::max(result.stage_in, outcome.finished_at);
    ++result.moves;
  }

  flow::CampaignOptions options;
  options.predictor = &bed.predictor;
  core::Fleet fleet(bed.system);
  const flow::CampaignReport report =
      check(fleet.submit_campaign(build_campaign(), options), "campaign");
  result.makespan = result.stage_in + report.makespan;
  result.rows = stage_rows(report);
  return result;
}

void result_json(std::string& json, const char* name, const RunResult& r) {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "\"%s\":{\"makespan\":%.6f,\"stage_in\":%.6f,\"moves\":%d}",
                name, r.makespan, r.stage_in, r.moves);
  json += buf;
}

int run(const std::string& json_path) {
  std::printf("==============================================================\n");
  std::printf("Campaign staging: declared DAG vs stage-in hints vs static\n");
  std::printf("sim dumps %d frames (remote disk); mse + viz both read the\n",
              kFrameTimesteps);
  std::printf("%d-timestep tape-resident ref dataset. All times are\n",
              kRefTimesteps);
  std::printf("SIMULATED seconds on the calibrated testbed.\n");
  std::printf("==============================================================\n");

  const RunResult stat = run_campaign(/*planned=*/false);
  const RunResult hint = run_hint();
  const RunResult planned = run_campaign(/*planned=*/true);

  std::printf("\n%10s %14s %14s %8s\n", "strategy", "stage_in[s]",
              "makespan[s]", "moves");
  std::printf("%10s %14.4f %14.4f %8d\n", "static", 0.0, stat.makespan,
              stat.moves);
  std::printf("%10s %14.4f %14.4f %8d\n", "hint", hint.stage_in,
              hint.makespan, hint.moves);
  std::printf("%10s %14.4f %14.4f %8d\n", "planned", 0.0, planned.makespan,
              planned.moves);
  std::printf("\nplanned stage timeline:\n%s",
              obs::format_campaign_table("bench", planned.rows).c_str());

  if (stat.moves != 0) {
    std::fprintf(stderr, "FATAL: static run staged %d moves (want 0)\n",
                 stat.moves);
    return 1;
  }
  if (planned.moves != kRefTimesteps) {
    std::fprintf(stderr,
                 "FATAL: planner staged %d moves (want %d: one per declared "
                 "ref timestep)\n",
                 planned.moves, kRefTimesteps);
    return 1;
  }
  if (!(planned.makespan < hint.makespan && hint.makespan < stat.makespan)) {
    std::fprintf(stderr, "FATAL: makespan ordering gate missed (want "
                         "planned < hint < static)\n");
    return 1;
  }
  std::printf("\nplanned %.4f s < hint %.4f s < static %.4f s "
              "(%.2fx vs static)\n",
              planned.makespan, hint.makespan, stat.makespan,
              stat.makespan / planned.makespan);

  std::string json = "{\"bench\":\"flow\",\"frame_timesteps\":" +
                     std::to_string(kFrameTimesteps) + ",\"ref_timesteps\":" +
                     std::to_string(kRefTimesteps) + ",";
  result_json(json, "static", stat);
  json += ",";
  result_json(json, "hint", hint);
  json += ",";
  result_json(json, "planned", planned);
  char buf[64];
  std::snprintf(buf, sizeof(buf), ",\"speedup_vs_static\":%.6f}",
                stat.makespan / planned.makespan);
  json += buf;
  write_summary_json(json_path, json);
  return 0;
}

}  // namespace
}  // namespace msra::bench

int main(int argc, char** argv) {
  const std::string json_path = msra::bench::consume_json_out_flag(argc, argv);
  (void)argc;
  (void)argv;
  return msra::bench::run(json_path);
}
