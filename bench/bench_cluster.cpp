// Cluster scale-out sweep: read throughput vs number of SRB server sites,
// for the three balancer policies, on a skewed-replica workload — plus a
// mid-bench server outage phase that must complete every read via failover.
//
// Workload per scale point: D=16 datasets of 2 timesteps (128 KiB each) on
// the remote disks. Sharding spreads the home copies over the cluster, and
// every dataset is replicated onto server 0 (or, when its home IS server 0,
// onto server 1) — so every read has exactly two candidate servers, one of
// them the shared hot spot. C=8 fleet tenants then read every timestep of
// every dataset:
//
//   * static       — always the lowest server index: the whole fleet piles
//                    onto server 0 (the pre-predictor fallback),
//   * round-robin  — alternates blindly: half the reads still hit the hot
//                    spot,
//   * balanced     — cheapest live predictor quote: busy sites price
//                    themselves out and the fleet spreads (the paper's
//                    prediction loop, closed over the cluster).
//
// Outage phase (4 servers, balanced): after a first read wave, server 1 is
// taken down mid-bench; the second wave must finish with ZERO failed reads,
// failing over to the surviving replicas.
//
// Everything in the --json summary is simulated time on the deterministic
// testbed, so the file is byte-stable and guards drift
// (bench/baselines/BENCH_cluster.json).
//
//   --json FILE      machine-readable summary (see bench/run_all.sh)
//   --max-servers N  cap the sweep (default 8)
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/balancer.h"
#include "core/client.h"
#include "core/fleet.h"
#include "core/placement.h"
#include "obs/report.h"

namespace msra::bench {
namespace {

constexpr int kClients = 8;
constexpr int kDatasets = 16;
constexpr int kTimesteps = 2;

std::string dataset_name(int d) { return "cds" + std::to_string(d); }

core::DatasetDesc dataset_desc(int d) {
  // 128 KiB per timestep.
  return mix_dataset(dataset_name(d), {32, 32, 32},
                     core::Location::kRemoteDisk);
}

/// A cluster testbed + calibrated performance database.
struct ClusterTestbed {
  core::StorageSystem system;
  predict::PerfDb perfdb;
  predict::Predictor predictor;

  static core::HardwareProfile profile(int servers) {
    core::HardwareProfile p = core::HardwareProfile::paper_2000();
    p.cluster.servers = servers;
    return p;
  }

  explicit ClusterTestbed(int servers)
      : system(profile(servers)),
        perfdb(&system.metadb()),
        predictor(&perfdb) {
    predict::PToolConfig config;
    config.sizes = {64ull << 10, 256ull << 10, 1ull << 20};
    config.repeats = 1;
    predict::PTool ptool(system, perfdb);
    check(ptool.measure_all(config), "ptool");
    system.reset_time();
  }

  /// Writes the skewed dataset population: every dataset dumps onto its
  /// sharded home server, then gains a second replica on server 0 (or on
  /// server 1 when its home is server 0). Single-server clusters keep one
  /// replica — there is nowhere else to put it.
  void seed() {
    core::Session producer(system, {.application = "cluster", .nprocs = 1,
                                    .iterations = kTimesteps});
    for (int d = 0; d < kDatasets; ++d) {
      core::DatasetHandle* handle =
          check(producer.open(dataset_desc(d)), "open dataset");
      auto layout = check(handle->layout(1), "layout");
      std::vector<std::byte> block(layout.global_bytes(),
                                   std::byte{static_cast<unsigned char>(d)});
      prt::World world(1);
      world.run([&](prt::Comm& comm) {
        for (int t = 0; t < kTimesteps; ++t) {
          check(handle->write_timestep(comm, t, block), "dump timestep");
        }
      });
      if (system.cluster_size() > 1) {
        const int home = core::shard_server(
            dataset_name(d), core::Location::kRemoteDisk,
            system.cluster_size());
        const int twin = home == 0 ? 1 : 0;
        for (int t = 0; t < kTimesteps; ++t) {
          simkit::Timeline tl;
          check(handle->replicate_timestep(
                    t, {core::Location::kRemoteDisk, twin}, {.timeline = &tl}),
                "replicate timestep");
        }
      }
    }
    check(producer.finalize(), "producer finalize");
    system.reset_time();
  }

  /// One fleet read wave: C tenants each read every timestep of every
  /// dataset. Returns the number of FAILED reads (workload errors).
  int read_wave(double* makespan, double* queue_wait) {
    core::Fleet fleet(system);
    std::vector<core::Completion*> completions;
    for (int c = 0; c < kClients; ++c) {
      core::Client& client = fleet.add_client(
          "reader" + std::to_string(c),
          {.application = "cluster", .predictor = &predictor});
      core::Workload workload;
      // Each tenant sweeps the datasets from its own offset (tenant c
      // starts at dataset 2c), like a fleet of post-processing tools each
      // working a different slice of the archive — concurrent decisions
      // then see each other's load instead of herding onto one server.
      for (int i = 0; i < kDatasets; ++i) {
        const int d = (2 * c + i) % kDatasets;
        workload.open_existing(dataset_name(d));
        for (int t = 0; t < kTimesteps; ++t) {
          workload.read_whole(dataset_name(d), t);
        }
      }
      workload.finalize();
      completions.push_back(client.submit(std::move(workload)));
    }
    fleet.run_until_idle();
    int failed = 0;
    *makespan = 0.0;
    for (core::Completion* completion : completions) {
      if (!completion->status().ok()) ++failed;
      *makespan = std::max(*makespan, completion->finished_at());
    }
    *queue_wait = 0.0;
    for (const obs::ResourceLoadRow& row : system.resource_loads()) {
      *queue_wait += row.total_wait;
    }
    return failed;
  }
};

struct PolicyResult {
  const char* policy = "";
  double makespan = 0.0;
  double queue_wait = 0.0;
  int reads = 0;
};

PolicyResult run_point(int servers, core::BalancerPolicy policy) {
  ClusterTestbed bed(servers);
  bed.system.balancer().set_policy(policy);
  bed.seed();
  PolicyResult result;
  result.policy = std::string_view(core::balancer_policy_name(policy)).data();
  result.reads = kClients * kDatasets * kTimesteps;
  const int failed = bed.read_wave(&result.makespan, &result.queue_wait);
  check(failed == 0 ? Status::Ok() : Status::Unavailable("reads failed"),
        "sweep read wave");
  std::printf("  %-12s makespan %10.2f s  queue wait %12.2f s  "
              "(%d reads, %.2f reads/s virtual)\n",
              result.policy, result.makespan, result.queue_wait, result.reads,
              result.makespan > 0.0 ? result.reads / result.makespan : 0.0);
  return result;
}

struct OutageResult {
  int victim = 0;
  double wave1_makespan = 0.0;
  double wave2_makespan = 0.0;
  int failed_reads = 0;
  std::uint64_t read_failovers = 0;
};

/// The failover phase: 4 servers, balanced policy, one site lost between
/// two read waves. Every wave-2 read must complete from the replicas that
/// survive.
OutageResult run_outage() {
  constexpr int kServers = 4;
  constexpr int kVictim = 1;
  ClusterTestbed bed(kServers);
  bed.seed();
  OutageResult result;
  result.victim = kVictim;
  double ignored = 0.0;
  result.failed_reads +=
      bed.read_wave(&result.wave1_makespan, &ignored);
  bed.system.site(kVictim).server().set_down(true);
  result.failed_reads +=
      bed.read_wave(&result.wave2_makespan, &ignored);
  bed.system.site(kVictim).server().set_down(false);
  result.read_failovers =
      bed.system.metrics().counter("session.read_failovers")->value();
  std::printf("  outage: server %d down after wave 1 — wave 1 %10.2f s, "
              "wave 2 %10.2f s, failed reads %d\n",
              kVictim, result.wave1_makespan, result.wave2_makespan,
              result.failed_reads);
  check(result.failed_reads == 0
            ? Status::Ok()
            : Status::Unavailable("reads failed during the outage"),
        "outage read waves");
  return result;
}

int run(int max_servers, const std::string& json_path) {
  std::printf("==============================================================\n");
  std::printf("Cluster scale-out sweep: SRB servers 1..%d, three balancer\n",
              max_servers);
  std::printf("policies, skewed replicas (every dataset on server 0 + home).\n");
  std::printf("All times are SIMULATED seconds on the calibrated testbed.\n");
  std::printf("==============================================================\n");

  const core::BalancerPolicy policies[] = {core::BalancerPolicy::kCheapestQuote,
                                           core::BalancerPolicy::kRoundRobin,
                                           core::BalancerPolicy::kStatic};
  std::string json = "{\"bench\":\"cluster\",\"clients\":" +
                     std::to_string(kClients) +
                     ",\"datasets\":" + std::to_string(kDatasets) +
                     ",\"timesteps\":" + std::to_string(kTimesteps) +
                     ",\"sweep\":[";
  char buf[256];
  bool first_scale = true;
  for (const int servers : {1, 2, 4, 8}) {
    if (servers > max_servers) break;
    std::printf("%d server site(s):\n", servers);
    json += first_scale ? "" : ",";
    first_scale = false;
    json += "{\"servers\":" + std::to_string(servers) + ",\"policies\":[";
    for (std::size_t p = 0; p < 3; ++p) {
      const PolicyResult result = run_point(servers, policies[p]);
      std::snprintf(buf, sizeof(buf),
                    "%s{\"policy\":\"%s\",\"makespan\":%.6f,"
                    "\"queue_wait\":%.6f,\"reads\":%d}",
                    p == 0 ? "" : ",", result.policy, result.makespan,
                    result.queue_wait, result.reads);
      json += buf;
    }
    json += "]}";
  }
  json += "],\"outage\":";

  std::printf("outage phase (4 servers, balanced policy):\n");
  const OutageResult outage = run_outage();
  std::snprintf(buf, sizeof(buf),
                "{\"servers\":4,\"policy\":\"balanced\",\"victim\":%d,"
                "\"wave1_makespan\":%.6f,\"wave2_makespan\":%.6f,"
                "\"failed_reads\":%d,\"read_failovers\":%llu}",
                outage.victim, outage.wave1_makespan, outage.wave2_makespan,
                outage.failed_reads,
                static_cast<unsigned long long>(outage.read_failovers));
  json += buf;
  json += "}";
  write_summary_json(json_path, json);
  return 0;
}

}  // namespace
}  // namespace msra::bench

int main(int argc, char** argv) {
  const std::string json_path = msra::bench::consume_json_out_flag(argc, argv);
  int max_servers = 8;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--max-servers") == 0 && i + 1 < argc) {
      max_servers = std::atoi(argv[i + 1]);
      ++i;
    } else if (std::strncmp(argv[i], "--max-servers=", 14) == 0) {
      max_servers = std::atoi(argv[i] + 14);
    }
  }
  return msra::bench::run(max_servers, json_path);
}
