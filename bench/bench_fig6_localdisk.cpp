// Figure 6: read/write time for various data sizes on local disks.
#include "rw_figure.h"

int main(int argc, char** argv) {
  return msra::bench::run_rw_figure(
      msra::core::Location::kLocalDisk, "fig6",
      "Figure 6 — read/write time vs data size, LOCAL DISKS",
      "Shen et al., HPDC 2000, Figure 6", argc, argv);
}
