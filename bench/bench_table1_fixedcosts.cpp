// Table 1: timings for file open, close, connection setup etc., measured by
// PTool through the full storage stack, side by side with the paper's
// published values.
#include "bench_util.h"

namespace msra::bench {
namespace {

struct PaperRow {
  const char* location;
  const char* type;
  double conn, open, seek, close, connclose;
  bool has_seek;
};

// Table 1 of the paper ('-' entries carried as has_seek=false / 0).
const PaperRow kPaper[] = {
    {"Local disk", "read", 0.0, 0.20, 0.0, 0.001, 0.0, false},
    {"Local disk", "write", 0.0, 0.21, 0.0, 0.001, 0.0, false},
    {"Remote disk", "read", 0.44, 0.42, 0.40, 0.63, 0.0002, true},
    {"Remote disk", "write", 0.44, 0.42, 0.0, 0.83, 0.0002, false},
    {"Remote tape", "read", 0.81, 6.17, 0.0, 0.46, 0.0002, false},
    {"Remote tape", "write", 0.81, 6.17, 0.0, 0.42, 0.0002, false},
};

int run() {
  print_header("Table 1 — fixed cost components per storage resource",
               "Shen et al., HPDC 2000, Table 1");
  Testbed testbed;
  predict::PTool ptool(testbed.system, testbed.perfdb);

  std::printf("%-12s %-6s | %8s %9s %9s %9s %10s\n", "Location", "Type",
              "Conn", "Fileopen", "Fileseek", "Fileclose", "Connclose");
  std::printf("%.96s\n",
              "-----------------------------------------------------------------"
              "-------------------------------");
  const core::Location locations[] = {core::Location::kLocalDisk,
                                      core::Location::kRemoteDisk,
                                      core::Location::kRemoteTape};
  int row = 0;
  for (core::Location location : locations) {
    for (predict::IoOp op : {predict::IoOp::kRead, predict::IoOp::kWrite}) {
      auto costs = check(ptool.measure_fixed(location, op), "measure fixed");
      const PaperRow& paper = kPaper[row++];
      std::printf("%-12s %-6s | %8.3f %9.3f %9.3f %9.3f %10.4f   (measured)\n",
                  paper.location, paper.type, costs.conn, costs.open,
                  costs.seek, costs.close, costs.connclose);
      std::printf("%-12s %-6s | %8.3f %9.3f %9.3f %9.3f %10.4f   (paper)\n",
                  "", "", paper.conn, paper.open, paper.seek, paper.close,
                  paper.connclose);
    }
  }
  std::printf(
      "\nShape checks: tape open >> remote-disk open >> local open;\n"
      "remote conn > 0, local conn = 0; close costs ~paper magnitude.\n");
  return 0;
}

}  // namespace
}  // namespace msra::bench

int main() { return msra::bench::run(); }
