// Migration engine — hot-data promotion speedup and throttle overhead.
//
// The paper's section 6 names automatic storage-resource selection as the
// natural extension of the prediction work: "the system can automatically
// decide which storage resources should be used according to the capacity
// and performance of each storage resource." This bench exercises that
// loop end to end on the calibrated testbed:
//
//   1. A producer archives a dataset to remote tape; a consumer reads it
//      repeatedly (feeding the access tracker).
//   2. The migration engine prices promotion candidates with the
//      predictor (benefit = heat x future read savings, cost = the priced
//      copy itself) and promotes the hot timesteps to local disk.
//   3. The same reads run again — the speedup column is the payoff.
//   4. The same migration re-runs under a bytes/sec throttle; the stretch
//      factor is the price of being polite to production traffic.
//
// All numbers are deterministic simulated seconds, so the --json summary
// doubles as a drift guard (bench/baselines/BENCH_migration.json).
#include "bench_util.h"

#include "migrate/engine.h"

namespace msra::bench {
namespace {

constexpr int kTimesteps = 4;
constexpr int kReadsPerTimestep = 2;

struct Workload {
  Testbed testbed;
  std::unique_ptr<core::Session> session;
  core::DatasetHandle* handle = nullptr;

  Workload() {
    check(testbed.calibrate(), "PTool calibration");
    session = std::make_unique<core::Session>(
        testbed.system,
        core::SessionOptions{.application = "astro3d", .user = "xshen",
                             .nprocs = 1, .iterations = kTimesteps,
                             .predictor = &testbed.predictor});
    core::DatasetDesc desc;
    desc.name = "frame";
    desc.dims = full_scale() ? std::array<std::uint64_t, 3>{128, 128, 128}
                             : std::array<std::uint64_t, 3>{64, 64, 64};
    desc.etype = core::ElementType::kFloat32;
    desc.frequency = 1;
    desc.location = core::Location::kRemoteTape;
    handle = check(session->open(desc), "open frame");
    auto layout = check(handle->layout(1), "layout");
    std::vector<std::byte> block(layout.global_bytes(), std::byte{1});
    prt::World world(1);
    world.run([&](prt::Comm& comm) {
      for (int t = 0; t < kTimesteps; ++t) {
        check(handle->write_timestep(comm, t, block), "dump");
      }
    });
    testbed.system.reset_time();
  }

  /// Reads every timestep `kReadsPerTimestep` times; returns the summed
  /// simulated seconds.
  double read_all() {
    double total = 0.0;
    for (int r = 0; r < kReadsPerTimestep; ++r) {
      for (int t = 0; t < kTimesteps; ++t) {
        simkit::Timeline tl;
        check(handle->read_whole(t, {.timeline = &tl}).status(), "read");
        total += tl.now();
      }
    }
    return total;
  }

  migrate::MigrationReport migrate_once(std::uint64_t throttle_bytes_per_sec) {
    // The background engine gets an idle maintenance window: start the
    // device clocks fresh so its bill reflects the copies, not the queue
    // behind the foreground reads.
    testbed.system.reset_time();
    migrate::MigrationConfig config;
    config.enabled = true;
    config.workers = 1;  // deterministic device-contention ordering
    config.throttle_bytes_per_sec = throttle_bytes_per_sec;
    migrate::MigrationEngine engine(testbed.system, testbed.predictor, config);
    return check(engine.run_once(), "migration round");
  }
};

int run(const std::string& json_path) {
  print_header("Migration — predictor-priced promotion of hot tape data",
               "Shen et al., HPDC 2000, section 6 (automatic resource "
               "selection)");

  // ---- promotion payoff --------------------------------------------------
  Workload hot;
  const double tape_seconds = hot.read_all();
  std::printf("\ncold reads, all replicas on tape: %10.2f s "
              "(%d timesteps x %d reads)\n",
              tape_seconds, kTimesteps, kReadsPerTimestep);

  migrate::MigrationReport report = hot.migrate_once(0);
  std::printf("\nmigration round (%zu step(s)):\n", report.outcomes.size());
  double priced_cost = 0.0;
  double executed_seconds = 0.0;
  for (const auto& outcome : report.outcomes) {
    std::printf("  %-44s priced %8.2f s, executed %8.2f s\n",
                outcome.step.label().c_str(), outcome.priced_cost,
                outcome.executed_seconds);
    priced_cost += outcome.priced_cost;
    executed_seconds += outcome.executed_seconds;
  }
  if (report.failures() != 0) {
    std::fprintf(stderr, "FATAL: %zu migration step(s) failed\n",
                 report.failures());
    return 1;
  }

  hot.testbed.system.reset_time();
  const double disk_seconds = hot.read_all();
  const double speedup = disk_seconds > 0.0 ? tape_seconds / disk_seconds : 0.0;
  std::printf("\nhot reads after promotion:        %10.2f s  -> %.1fx faster\n",
              disk_seconds, speedup);
  std::printf("copy bill: %.2f s executed vs %.2f s predicted; payoff after "
              "%.1f read sweeps\n",
              executed_seconds, priced_cost,
              tape_seconds > disk_seconds
                  ? executed_seconds / (tape_seconds - disk_seconds) *
                        static_cast<double>(kReadsPerTimestep)
                  : 0.0);

  // ---- throttle overhead -------------------------------------------------
  // The identical migration, paced at 8 KiB/s: steady-state production
  // traffic keeps its bandwidth, the migration stretches instead.
  Workload throttled;
  (void)throttled.read_all();  // same heat as the unthrottled run
  migrate::MigrationReport slow = throttled.migrate_once(8ull << 10);
  double throttled_seconds = 0.0;
  double throttle_wait = 0.0;
  for (const auto& outcome : slow.outcomes) {
    throttled_seconds += outcome.executed_seconds;
    throttle_wait += outcome.throttle_wait;
  }
  if (slow.failures() != 0 ||
      slow.outcomes.size() != report.outcomes.size()) {
    std::fprintf(stderr, "FATAL: throttled round diverged from unthrottled\n");
    return 1;
  }
  const double stretch =
      executed_seconds > 0.0 ? throttled_seconds / executed_seconds : 0.0;
  std::printf("\nthrottled migration (8 KiB/s):    %10.2f s executed "
              "(+%.2f s waiting, %.2fx stretch)\n",
              throttled_seconds, throttle_wait, stretch);

  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "{\"bench\":\"migration\",\"timesteps\":%d,"
                "\"reads_per_timestep\":%d,\"steps\":%zu,"
                "\"tape_read_seconds\":%.6f,\"disk_read_seconds\":%.6f,"
                "\"speedup\":%.6f,\"priced_cost_seconds\":%.6f,"
                "\"executed_seconds\":%.6f,"
                "\"throttled_executed_seconds\":%.6f,"
                "\"throttle_wait_seconds\":%.6f}",
                kTimesteps, kReadsPerTimestep, report.outcomes.size(),
                tape_seconds, disk_seconds, speedup, priced_cost,
                executed_seconds, throttled_seconds, throttle_wait);
  write_summary_json(json_path, buf);
  return 0;
}

}  // namespace
}  // namespace msra::bench

int main(int argc, char** argv) {
  const std::string json_path = msra::bench::consume_json_out_flag(argc, argv);
  return msra::bench::run(json_path);
}
