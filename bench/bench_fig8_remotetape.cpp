// Figure 8: read/write time for various data sizes on remote tapes (HPSS).
#include "rw_figure.h"

int main(int argc, char** argv) {
  return msra::bench::run_rw_figure(
      msra::core::Location::kRemoteTape, "fig8",
      "Figure 8 — read/write time vs data size, REMOTE TAPES (HPSS)",
      "Shen et al., HPDC 2000, Figure 8", argc, argv);
}
