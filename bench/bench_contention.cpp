// Multi-tenant contention: concurrent client sessions over one shared
// testbed, and load-aware prediction accuracy.
//
// The paper's architecture serves "several scientific applications" from
// the same storage resources (section 2); its prediction chapter prices a
// *dedicated* system. This bench exercises the multi-tenant core both
// ways:
//
//   1. Accuracy: k identical analysis clients (k = 1, 2, 4, 8) read the
//      same remote-disk dataset concurrently, round-robin on one host
//      thread so virtual-time contention is deterministic. The measured
//      mean per-client time is compared against the classic dedicated
//      prediction and against the load-aware prediction fed by PTool's
//      contended 2/4/8-client curves.
//   2. Mixed workload: producers dumping timesteps, analysis clients
//      reading whole arrays and visualization clients slicing (seeded
//      RNG picks the slices) share the testbed at increasing scales;
//      per-tenant latency, aggregate throughput and the devices'
//      queueing-delay totals show where the tenants queue on each other.
//
// All numbers are deterministic simulated seconds, so the --json summary
// doubles as a drift guard (bench/baselines/BENCH_contention.json).
#include "bench_util.h"

#include <algorithm>
#include <cmath>
#include <random>

#include "core/client.h"
#include "runtime/plan.h"

namespace msra::bench {
namespace {

constexpr int kTimesteps = 4;
constexpr int kScales[] = {1, 2, 4, 8};

struct Shared {
  Testbed testbed;
  std::array<std::uint64_t, 3> dims{};
  std::uint64_t object_bytes = 0;

  Shared() {
    // Calibrate like every other bench, plus the contended client curves.
    predict::PToolConfig config;
    config.sizes = {64ull << 10, 256ull << 10, 1ull << 20, 2ull << 20,
                    4ull << 20, 8ull << 20, 16ull << 20};
    config.repeats = 1;
    config.measure_contended = true;
    predict::PTool ptool(testbed.system, testbed.perfdb);
    check(ptool.measure_all(config), "PTool calibration");
    testbed.system.reset_time();

    // The shared dataset every consumer reads: one whole object per
    // timestep on the remote disks (the paper's SRB resource at SDSC).
    dims = full_scale() ? std::array<std::uint64_t, 3>{128, 128, 128}
                        : std::array<std::uint64_t, 3>{64, 64, 64};
    core::Session producer(
        testbed.system,
        core::SessionOptions{.application = "astro3d", .user = "producer",
                             .nprocs = 1, .iterations = kTimesteps});
    const core::DatasetDesc desc =
        mix_dataset("frame", dims, core::Location::kRemoteDisk);
    object_bytes = desc.global_bytes();
    core::DatasetHandle* frame = check(producer.open(desc), "open frame");
    std::vector<std::byte> block(object_bytes, std::byte{1});
    prt::World world(1);
    world.run([&](prt::Comm& comm) {
      for (int t = 0; t < kTimesteps; ++t) {
        check(frame->write_timestep(comm, t, block), "dump frame");
      }
    });
    check(producer.finalize(), "finalize producer");
    testbed.system.reset_time();
  }
};

core::SessionOptions consumer_options(const std::string& user) {
  return core::SessionOptions{.application = "astro3d", .user = user,
                              .nprocs = 1, .iterations = kTimesteps};
}

// ---- part 1: prediction accuracy under contention -----------------------

struct AccuracyRow {
  int clients = 0;
  double measured = 0.0;   ///< mean per-client simulated seconds
  double loaded = 0.0;     ///< load-aware prediction
  double dedicated = 0.0;  ///< classic single-client prediction
  double err(double prediction) const {
    return measured > 0.0 ? std::abs(prediction - measured) / measured : 0.0;
  }
};

AccuracyRow accuracy_at(Shared& shared, int k) {
  core::StorageSystem& system = shared.testbed.system;
  system.reset_time();

  std::vector<std::unique_ptr<core::Client>> clients;
  std::vector<core::DatasetHandle*> handles;
  for (int i = 0; i < k; ++i) {
    clients.push_back(std::make_unique<core::Client>(
        "analysis" + std::to_string(i), system,
        consumer_options("analysis" + std::to_string(i))));
    handles.push_back(check(clients.back()->open_existing("frame"),
                            "open_existing frame"));
  }

  // Round-robin at timestep granularity on ONE host thread: client i's
  // whole-object read of timestep t books the shared devices in a fixed
  // order, so the contention pattern (and every number below) is exactly
  // reproducible.
  for (int t = 0; t < kTimesteps; ++t) {
    for (int i = 0; i < k; ++i) {
      check(handles[static_cast<std::size_t>(i)]->read_whole(t).status(),
            "read frame");
    }
  }

  AccuracyRow row;
  row.clients = k;
  for (const auto& client : clients) row.measured += client->elapsed();
  row.measured /= k;
  for (const auto& client : clients) check(client->finalize(), "finalize");

  // Predictions price the same whole-object read plan the handle executed,
  // once per timestep.
  const runtime::IoPlan plan =
      runtime::PlanBuilder::object_read("astro3d/frame/t0", shared.object_bytes);
  predict::LoadAssumptions load;
  load.clients = static_cast<double>(k);
  row.loaded = kTimesteps * check(shared.testbed.predictor.price(
                                      plan, core::Location::kRemoteDisk, load),
                                  "load-aware price");
  row.dedicated = kTimesteps * check(shared.testbed.predictor.price(
                                         plan, core::Location::kRemoteDisk),
                                     "dedicated price");
  return row;
}

// ---- part 2: mixed workload ---------------------------------------------

struct MixedRow {
  int clients = 0;
  double producer_mean = 0.0;  ///< per-tenant latency by role (0: no tenant)
  double analysis_mean = 0.0;
  double viz_mean = 0.0;
  double makespan = 0.0;       ///< max per-client elapsed
  double moved_mib = 0.0;      ///< payload written + read
  double throughput = 0.0;     ///< MiB per simulated second
  double queue_wait = 0.0;     ///< summed queueing delay across devices
};

MixedRow mixed_at(Shared& shared, int k) {
  core::StorageSystem& system = shared.testbed.system;
  system.reset_time();
  std::mt19937 rng(2000u + static_cast<unsigned>(k));  // seeded: reproducible

  struct Tenant {
    int role = 0;  ///< 0 = producer, 1 = analysis, 2 = viz
    std::unique_ptr<core::Client> client;
    core::DatasetHandle* handle = nullptr;
  };
  std::vector<Tenant> tenants;
  std::vector<std::byte> block(shared.object_bytes, std::byte{2});
  for (int i = 0; i < k; ++i) {
    Tenant tenant;
    tenant.role = i % 3;
    const std::string user = mix_role_name(tenant.role) + std::to_string(i);
    tenant.client = std::make_unique<core::Client>(user, system,
                                                   consumer_options(user));
    if (tenant.role == 0) {
      const core::DatasetDesc desc = mix_dataset(
          "dump-s" + std::to_string(k) + "-c" + std::to_string(i), shared.dims,
          core::Location::kRemoteDisk);
      tenant.handle = check(tenant.client->open(desc), "open dump");
    } else {
      tenant.handle =
          check(tenant.client->open_existing("frame"), "open frame");
    }
    tenants.push_back(std::move(tenant));
  }

  const std::uint64_t slice_bytes =
      shared.dims[0] * shared.dims[1] * sizeof(float);
  std::vector<std::byte> slice(slice_bytes);
  double moved_bytes = 0.0;
  for (int t = 0; t < kTimesteps; ++t) {
    for (Tenant& tenant : tenants) {
      core::Client& client = *tenant.client;
      if (tenant.role == 0) {
        prt::World world(1);
        world.run(
            [&](prt::Comm& comm) {
              check(tenant.handle->write_timestep(comm, t, block), "dump");
            },
            client.timeline().now());
        client.timeline().advance_to(world.timeline(0).now());
        moved_bytes += static_cast<double>(shared.object_bytes);
      } else if (tenant.role == 1) {
        check(tenant.handle->read_whole(t).status(),
              "analysis read");
        moved_bytes += static_cast<double>(shared.object_bytes);
      } else {
        prt::LocalBox box;
        for (std::size_t d = 0; d < 3; ++d) box.extent[d] = {0, shared.dims[d]};
        const std::uint64_t zindex = rng() % shared.dims[2];
        box.extent[2] = {zindex, zindex + 1};
        const int timestep = static_cast<int>(rng() % kTimesteps);
        check(tenant.handle->read_box(timestep, box, slice),
              "viz slice");
        moved_bytes += static_cast<double>(slice_bytes);
      }
    }
  }

  MixedRow row;
  row.clients = k;
  int counts[3] = {0, 0, 0};
  double sums[3] = {0.0, 0.0, 0.0};
  for (Tenant& tenant : tenants) {
    const double elapsed = tenant.client->elapsed();
    sums[tenant.role] += elapsed;
    ++counts[tenant.role];
    row.makespan = std::max(row.makespan, elapsed);
    check(tenant.client->finalize(), "finalize tenant");
  }
  row.producer_mean = counts[0] > 0 ? sums[0] / counts[0] : 0.0;
  row.analysis_mean = counts[1] > 0 ? sums[1] / counts[1] : 0.0;
  row.viz_mean = counts[2] > 0 ? sums[2] / counts[2] : 0.0;
  row.moved_mib = moved_bytes / static_cast<double>(1ull << 20);
  row.throughput = row.makespan > 0.0 ? row.moved_mib / row.makespan : 0.0;
  for (const auto& device : system.resource_loads()) {
    row.queue_wait += device.total_wait;
  }
  return row;
}

int run(const std::string& json_path) {
  print_header("Contention — concurrent clients on shared storage, "
               "load-aware prediction",
               "Shen et al., HPDC 2000, sections 2 and 4 (shared resources; "
               "prediction under load)");

  Shared shared;

  std::printf("\nprediction accuracy, %d whole-object reads per client "
              "(remote disk, %s):\n",
              kTimesteps, format_bytes(shared.object_bytes).c_str());
  std::printf("%8s %12s %12s %8s %12s %8s\n", "clients", "measured[s]",
              "loaded[s]", "err", "dedicated[s]", "err");
  std::vector<AccuracyRow> accuracy;
  for (int k : kScales) {
    accuracy.push_back(accuracy_at(shared, k));
    const AccuracyRow& row = accuracy.back();
    std::printf("%8d %12.2f %12.2f %7.1f%% %12.2f %7.1f%%\n", row.clients,
                row.measured, row.loaded, row.err(row.loaded) * 100.0,
                row.dedicated, row.err(row.dedicated) * 100.0);
  }

  std::printf("\nmixed workload (roles cycle dump / mse / volren), "
              "%d rounds:\n", kTimesteps);
  std::printf("%8s %10s %10s %10s %10s %10s %12s %12s\n", "clients", "dump[s]",
              "mse[s]", "volren[s]", "makespan", "moved", "MiB/s",
              "queue_wait[s]");
  std::vector<MixedRow> mixed;
  for (int k : kScales) {
    mixed.push_back(mixed_at(shared, k));
    const MixedRow& row = mixed.back();
    std::printf("%8d %10.2f %10.2f %10.2f %10.2f %9.1fM %12.4f %12.2f\n",
                row.clients, row.producer_mean, row.analysis_mean,
                row.viz_mean, row.makespan, row.moved_mib, row.throughput,
                row.queue_wait);
  }

  // Acceptance gate: at 8 clients the load-aware prediction must land
  // within 15% of the measured mean AND beat the dedicated predictor.
  const AccuracyRow& worst = accuracy.back();
  const double err_loaded = worst.err(worst.loaded);
  const double err_dedicated = worst.err(worst.dedicated);
  std::printf("\nat %d clients: load-aware error %.1f%%, dedicated error "
              "%.1f%%\n",
              worst.clients, err_loaded * 100.0, err_dedicated * 100.0);
  if (err_loaded > 0.15 || err_loaded >= err_dedicated) {
    std::fprintf(stderr, "FATAL: load-aware prediction missed the gate "
                         "(<= 15%% and better than dedicated)\n");
    return 1;
  }

  std::string json = "{\"bench\":\"contention\",\"timesteps\":";
  char buf[512];
  std::snprintf(buf, sizeof(buf), "%d,\"object_bytes\":%llu,\"accuracy\":[",
                kTimesteps,
                static_cast<unsigned long long>(shared.object_bytes));
  json += buf;
  for (std::size_t i = 0; i < accuracy.size(); ++i) {
    const AccuracyRow& row = accuracy[i];
    std::snprintf(buf, sizeof(buf),
                  "%s{\"clients\":%d,\"measured\":%.6f,\"loaded\":%.6f,"
                  "\"dedicated\":%.6f,\"err_loaded\":%.6f,"
                  "\"err_dedicated\":%.6f}",
                  i == 0 ? "" : ",", row.clients, row.measured, row.loaded,
                  row.dedicated, row.err(row.loaded), row.err(row.dedicated));
    json += buf;
  }
  json += "],\"mixed\":[";
  for (std::size_t i = 0; i < mixed.size(); ++i) {
    const MixedRow& row = mixed[i];
    std::snprintf(buf, sizeof(buf),
                  "%s{\"clients\":%d,\"producer_mean\":%.6f,"
                  "\"analysis_mean\":%.6f,\"viz_mean\":%.6f,"
                  "\"makespan\":%.6f,\"moved_mib\":%.6f,"
                  "\"throughput_mib_s\":%.6f,\"queue_wait\":%.6f}",
                  i == 0 ? "" : ",", row.clients, row.producer_mean,
                  row.analysis_mean, row.viz_mean, row.makespan, row.moved_mib,
                  row.throughput, row.queue_wait);
    json += buf;
  }
  json += "]}";
  write_summary_json(json_path, json);
  return 0;
}

}  // namespace
}  // namespace msra::bench

int main(int argc, char** argv) {
  const std::string json_path = msra::bench::consume_json_out_flag(argc, argv);
  return msra::bench::run(json_path);
}
