// Section 5, final example: "suppose that the remote tape system is down
// for maintenance ... We can still satisfy large storage space requirements
// for simulations by aggregating all the space of remote disks, local disks
// and other storage resources ... the user does not have to stop her
// experiments."
//
// A producer dumps to tape; mid-run the tape system goes down. The write
// path fails over to the remote disks, the metadata is updated, and a later
// consumer reads every timestep back — some from tape, some from disk.
#include "bench_util.h"

namespace msra::bench {
namespace {

int run() {
  print_header("Reliability — tape outage mid-run, failover to disks",
               "Shen et al., HPDC 2000, section 5 (final example)");
  Testbed testbed;
  check(testbed.calibrate(), "PTool calibration");

  const int iterations = 60;
  const int freq = 6;
  const int nprocs = 4;
  core::Session session(testbed.system,
                        {.application = "astro3d", .user = "xshen",
                         .nprocs = nprocs, .iterations = iterations});
  core::DatasetDesc desc;
  desc.name = "press";
  desc.dims = full_scale() ? std::array<std::uint64_t, 3>{128, 128, 128}
                           : std::array<std::uint64_t, 3>{64, 64, 64};
  desc.etype = core::ElementType::kFloat32;
  desc.frequency = freq;
  desc.location = core::Location::kRemoteTape;
  auto* handle = check(session.open(desc), "open press");
  auto layout = check(handle->layout(nprocs), "layout");

  int failures_handled = 0;
  prt::World world(nprocs);
  world.run([&](prt::Comm& comm) {
    const prt::LocalBox box = layout.decomp.local_box(comm.rank());
    std::vector<std::byte> block(box.volume() * 4, std::byte{1});
    for (int t = 0; t <= iterations; t += freq) {
      if (t == iterations / 2 && comm.rank() == 0) {
        std::printf("  t=%3d: >>> remote tape system goes DOWN <<<\n", t);
        testbed.system.set_location_available(core::Location::kRemoteTape,
                                              false);
      }
      comm.barrier();
      const auto before = handle->location();
      check(handle->write_timestep(comm, t, block), "dump");
      if (comm.rank() == 0) {
        if (handle->location() != before) ++failures_handled;
        std::printf("  t=%3d: dumped to %-11s (virtual time %8.1f s)\n", t,
                    std::string(core::location_name(handle->location())).c_str(),
                    comm.timeline().now());
      }
      comm.barrier();
    }
  });
  std::printf("\nfailovers handled: %d (expected 1)\n", failures_handled);

  // Maintenance ends; a consumer session later reads every timestep back,
  // wherever it lives (early dumps from tape, later ones from disk).
  testbed.system.set_location_available(core::Location::kRemoteTape, true);
  std::printf("reading all timesteps back: ");
  prt::World reader(1);
  bool all_ok = true;
  reader.run([&](prt::Comm& comm) {
    auto rlayout = check(handle->layout(1), "reader layout");
    std::vector<std::byte> out(rlayout.global_bytes());
    for (int t = 0; t <= iterations; t += freq) {
      if (!handle->read_timestep(comm, t, out).ok()) all_ok = false;
    }
  });
  std::printf("%s\n", all_ok ? "OK — the experiment never stopped"
                             : "FAILED");
  return all_ok ? 0 : 1;
}

}  // namespace
}  // namespace msra::bench

int main() { return msra::bench::run(); }
