// Shared driver for Figures 6-8: read/write time vs data size on one
// storage resource. Uses google-benchmark with manual timing: the reported
// "time" of each benchmark is the *simulated* duration of the transfer on
// the calibrated testbed.
#pragma once

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "common/bytes.h"

namespace msra::bench {

inline int run_rw_figure(core::Location location, const char* figure,
                         const char* title, const char* paper_ref, int argc,
                         char** argv) {
  const std::string stats_out = consume_stats_out_flag(argc, argv);
  const std::string json_out = consume_json_out_flag(argc, argv);
  print_header(title, paper_ref);
  // Kept alive for the whole benchmark run.
  static Testbed* testbed = new Testbed();
  static predict::PTool* ptool =
      new predict::PTool(testbed->system, testbed->perfdb);

  static const std::uint64_t kSizes[] = {64ull << 10,  256ull << 10,
                                         1ull << 20,   2ull << 20,
                                         4ull << 20,   8ull << 20,
                                         16ull << 20};

  for (predict::IoOp op : {predict::IoOp::kRead, predict::IoOp::kWrite}) {
    for (std::uint64_t size : kSizes) {
      const std::string name =
          std::string(core::location_name(location)) + "/" +
          std::string(predict::io_op_name(op)) + "/" +
          format_bytes(size);
      benchmark::RegisterBenchmark(
          name.c_str(),
          [location, op, size](benchmark::State& state) {
            double last = 0.0;
            for (auto _ : state) {
              auto seconds = ptool->measure_rw(location, op, size, 1);
              if (!seconds.ok()) {
                state.SkipWithError(seconds.status().to_string().c_str());
                return;
              }
              last = *seconds;
              state.SetIterationTime(*seconds);
            }
            state.SetBytesProcessed(
                static_cast<std::int64_t>(size) *
                static_cast<std::int64_t>(state.iterations()));
            state.counters["sim_seconds"] = last;
          })
          ->UseManualTime()
          ->Iterations(1)
          ->Unit(benchmark::kMillisecond);
    }
  }

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  // Also print the figure as a plain series for EXPERIMENTS.md, and keep
  // the numbers for the machine-readable summary.
  std::string rows;
  std::printf("\n%-12s %14s %14s\n", "size", "read (s)", "write (s)");
  for (std::uint64_t size : kSizes) {
    const double read =
        check(ptool->measure_rw(location, predict::IoOp::kRead, size, 1),
              "measure read");
    const double write =
        check(ptool->measure_rw(location, predict::IoOp::kWrite, size, 1),
              "measure write");
    std::printf("%-12s %14.4f %14.4f\n", format_bytes(size).c_str(), read,
                write);
    char row[160];
    std::snprintf(row, sizeof(row),
                  "%s    {\"bytes\": %llu, \"read_s\": %.6f, \"write_s\": %.6f}",
                  rows.empty() ? "" : ",\n",
                  static_cast<unsigned long long>(size), read, write);
    rows += row;
  }
  std::string json = "{\n  \"figure\": \"";
  json += figure;
  json += "\",\n  \"location\": \"";
  json += std::string(core::location_name(location));
  json += "\",\n  \"title\": \"";
  json += title;
  json += "\",\n  \"series\": [\n";
  json += rows;
  json += "\n  ]\n}";
  write_summary_json(json_out, json);
  write_stats_json(testbed->system, stats_out);
  return 0;
}

}  // namespace msra::bench
