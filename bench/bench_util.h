// Shared helpers for the per-table/per-figure benchmark harnesses.
//
// Every bench builds the calibrated year-2000 testbed, populates the
// performance database with PTool (so predictions come from measurements,
// never from the simulator's constants), runs the experiment, and prints
// paper-style rows of *simulated* seconds.
//
// Scale: benches default to a reduced problem (64^3, 60 iterations) so the
// whole suite runs in minutes on one core; set MSRA_FULL_SCALE=1 for the
// paper's exact Table 2 parameters (128^3, 120 iterations).
#pragma once

#include <array>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>

#include "apps/astro3d/astro3d.h"
#include "common/bytes.h"
#include "core/fleet.h"
#include "core/session.h"
#include "obs/metrics.h"
#include "predict/predictor.h"
#include "predict/ptool.h"

namespace msra::bench {

/// Extracts `--stats-out FILE` (or `--stats-out=FILE`) from argv, compacting
/// the remaining arguments in place. Must run before benchmark::Initialize,
/// which rejects flags it does not know.
inline std::string consume_stats_out_flag(int& argc, char** argv) {
  std::string path;
  int out = 1;
  for (int in = 1; in < argc; ++in) {
    const std::string arg = argv[in];
    if (arg == "--stats-out" && in + 1 < argc) {
      path = argv[++in];
      continue;
    }
    if (arg.rfind("--stats-out=", 0) == 0) {
      path = arg.substr(12);
      continue;
    }
    argv[out++] = argv[in];
  }
  argc = out;
  argv[argc] = nullptr;
  return path;
}

/// Extracts `--json FILE` (or `--json=FILE`) from argv, compacting the
/// remaining arguments in place: the figure benches write a machine-readable
/// summary of their headline series there (see bench/run_all.sh). Must run
/// before benchmark::Initialize, which rejects flags it does not know.
inline std::string consume_json_out_flag(int& argc, char** argv) {
  std::string path;
  int out = 1;
  for (int in = 1; in < argc; ++in) {
    const std::string arg = argv[in];
    if (arg == "--json" && in + 1 < argc) {
      path = argv[++in];
      continue;
    }
    if (arg.rfind("--json=", 0) == 0) {
      path = arg.substr(7);
      continue;
    }
    argv[out++] = argv[in];
  }
  argc = out;
  argv[argc] = nullptr;
  return path;
}

/// Writes an already-formatted JSON document; no-op on an empty path.
inline void write_summary_json(const std::string& path,
                               const std::string& json) {
  if (path.empty()) return;
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write summary to %s\n", path.c_str());
    return;
  }
  std::fwrite(json.data(), 1, json.size(), f);
  std::fputc('\n', f);
  std::fclose(f);
  std::printf("summary JSON written to %s\n", path.c_str());
}

/// Dumps the system's metrics registry as JSON; no-op on an empty path.
inline void write_stats_json(const core::StorageSystem& system,
                             const std::string& path) {
  if (path.empty()) return;
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write stats to %s\n", path.c_str());
    return;
  }
  const std::string json = system.metrics().to_json();
  std::fwrite(json.data(), 1, json.size(), f);
  std::fputc('\n', f);
  std::fclose(f);
  std::printf("telemetry JSON written to %s\n", path.c_str());
}

inline bool full_scale() {
  const char* env = std::getenv("MSRA_FULL_SCALE");
  return env != nullptr && env[0] == '1';
}

/// The Astro3D run-time parameter set (Table 2), possibly reduced.
inline apps::astro3d::Config astro_config() {
  apps::astro3d::Config config;
  if (full_scale()) {
    config.dims = {128, 128, 128};
    config.iterations = 120;
  } else {
    config.dims = {64, 64, 64};
    config.iterations = 60;
  }
  config.analysis_freq = 6;
  config.viz_freq = 6;
  config.checkpoint_freq = 6;
  config.nprocs = 4;
  return config;
}

/// A testbed + performance database + predictor, wired together.
struct Testbed {
  core::StorageSystem system;
  predict::PerfDb perfdb;
  predict::Predictor predictor;

  Testbed()
      : system(core::HardwareProfile::paper_2000()),
        perfdb(&system.metadb()),
        predictor(&perfdb) {}

  /// Runs PTool over all resources (the "single run" that sets up the
  /// basic performance database), then resets device clocks so the actual
  /// experiment starts on idle hardware.
  Status calibrate() {
    predict::PToolConfig config;
    config.sizes = {64ull << 10, 256ull << 10, 1ull << 20, 2ull << 20,
                    4ull << 20, 8ull << 20, 16ull << 20};
    config.repeats = 1;
    predict::PTool ptool(system, perfdb);
    MSRA_RETURN_IF_ERROR(ptool.measure_all(config));
    system.reset_time();
    return Status::Ok();
  }
};

inline void print_header(const char* title, const char* paper_ref) {
  std::printf("==============================================================\n");
  std::printf("%s\n", title);
  std::printf("Reproduces: %s\n", paper_ref);
  std::printf("Scale: %s (set MSRA_FULL_SCALE=1 for the paper's Table 2)\n",
              full_scale() ? "FULL (128^3, 120 iterations)"
                           : "reduced (64^3, 60 iterations)");
  std::printf("All times are SIMULATED seconds on the calibrated testbed.\n");
  std::printf("==============================================================\n");
}

inline void check(const Status& status, const char* what) {
  if (!status.ok()) {
    std::fprintf(stderr, "FATAL: %s: %s\n", what, status.to_string().c_str());
    std::exit(1);
  }
}

template <typename T>
T check(StatusOr<T> value, const char* what) {
  if (!value.ok()) {
    std::fprintf(stderr, "FATAL: %s: %s\n", what,
                 value.status().to_string().c_str());
    std::exit(1);
  }
  return std::move(value).value();
}

// ---- the dump / mse / volren tenant mix ---------------------------------
//
// The multi-tenant benches (fleet, contention, qos) share one workload
// shape, modeled on the paper's tools: tenants cycle through three roles —
// a simulation dumping checkpoints, an MSE-style analysis reading whole
// frames, and a Volren-style visualization slicing z-planes.

/// "dump" / "mse" / "volren" for mix role `role` (= tenant index % 3).
inline const char* mix_role_name(int role) {
  switch (role) {
    case 0: return "dump";
    case 1: return "mse";
    default: return "volren";
  }
}

/// The dataset shape every mix (and cluster) dataset uses: float32, one
/// dump per iteration.
inline core::DatasetDesc mix_dataset(std::string name,
                                     std::array<std::uint64_t, 3> dims,
                                     core::Location location) {
  core::DatasetDesc desc;
  desc.name = std::move(name);
  desc.dims = dims;
  desc.etype = core::ElementType::kFloat32;
  desc.location = location;
  return desc;
}

/// Writes the shared frame dataset (timesteps 0..timesteps-1) that the
/// reader roles consume, through the same Fleet API the tenants use.
inline void write_mix_frame(core::StorageSystem& system,
                            const core::DatasetDesc& frame, int timesteps) {
  core::Fleet fleet(system);
  core::Client& producer = fleet.add_client("frame_producer");
  core::Workload workload;
  workload.open(frame);
  for (int t = 0; t < timesteps; ++t) workload.dump(frame.name, t);
  workload.finalize();
  core::Completion* done = producer.submit(std::move(workload));
  fleet.run_until_idle();
  check(done->status(), "frame producer");
}

/// Tenant `tenant`'s workload for mix role `role`: dumpers write one
/// timestep of a private `ckpt<tenant>` dataset, mse reads the whole frame
/// (timestep 0), volren reads one z-plane of the frame (timestep 1).
inline core::Workload mix_workload(int tenant, int role,
                                   const core::DatasetDesc& frame,
                                   std::array<std::uint64_t, 3> ckpt_dims,
                                   core::Location ckpt_location) {
  switch (role) {
    case 0: {
      core::DatasetDesc desc = mix_dataset("ckpt" + std::to_string(tenant),
                                           ckpt_dims, ckpt_location);
      return core::Workload()
          .tagged("dump")
          .open(desc)
          .dump(desc.name, 0)
          .finalize();
    }
    case 1:
      return core::Workload()
          .tagged("mse")
          .open_existing(frame.name)
          .read_whole(frame.name, 0)
          .finalize();
    default: {
      const prt::LocalBox plane = {
          {{{0, frame.dims[0]}, {0, frame.dims[1]}, {0, 1}}}};
      return core::Workload()
          .tagged("volren")
          .open_existing(frame.name)
          .read_box(frame.name, 1, plane)
          .finalize();
    }
  }
}

}  // namespace msra::bench
