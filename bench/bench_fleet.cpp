// Fleet runtime scaling sweep: how far does the event-driven tenant
// scheduler stretch on one host thread?
//
// Each scale point builds a fresh calibrated testbed, has a producer write
// a shared 16^3 "frame" dataset to the remote disks, then launches N
// tenants in one Fleet (workers = 1, the deterministic mode). Tenant i
// takes role i % 3:
//
//   dump   — opens its own 8^3 checkpoint dataset on the local disks and
//            dumps one timestep (the simulation-side write path),
//   mse    — reads the whole frame back (post-processing, like the paper's
//            MSE analysis tool),
//   volren — reads one z-plane of the frame (visualization slice, like
//            Volren).
//
// Reported per scale: the per-role virtual latency distribution (exact
// order statistics over every tenant's Completion), the virtual makespan,
// and the summed queueing delay on the shared devices. Everything in the
// --json summary is simulated time, so the file is byte-stable and guards
// drift (bench/baselines/BENCH_fleet.json); host wall-clock and
// tenants/second go to stdout only.
//
//   --json FILE        machine-readable summary (see bench/run_all.sh)
//   --max-tenants N    cap the sweep (CI smoke uses 10000)
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/msra.h"
#include "obs/report.h"

namespace msra::bench {
namespace {

constexpr std::array<std::uint64_t, 3> kFrameDims = {16, 16, 16};
constexpr std::array<std::uint64_t, 3> kCkptDims = {8, 8, 8};

/// The shared frame dataset (2 timesteps on the remote disks) the reader
/// roles consume.
core::DatasetDesc frame_desc() {
  return mix_dataset("frame", kFrameDims, core::Location::kRemoteDisk);
}

struct ScaleResult {
  int tenants = 0;
  double makespan = 0.0;    ///< max finished_at (virtual s)
  double queue_wait = 0.0;  ///< summed device queueing delay (virtual s)
  std::array<obs::LatencySummary, 3> roles;
};

ScaleResult run_scale(int tenants) {
  core::StorageSystem system(core::HardwareProfile::paper_2000());
  // The sweep's numbers come from Completion records and simkit::Resource
  // accounting; the per-op instruments and tracer spans would only burn
  // host time at 100k tenants.
  system.metrics().set_enabled(false);
  system.tracer().set_enabled(false);

  const core::DatasetDesc frame = frame_desc();
  write_mix_frame(system, frame, 2);
  system.reset_time();

  const auto wall_start = std::chrono::steady_clock::now();
  core::Fleet fleet(system);
  std::vector<core::Completion*> completions;
  std::vector<int> roles;
  completions.reserve(static_cast<std::size_t>(tenants));
  roles.reserve(static_cast<std::size_t>(tenants));
  for (int i = 0; i < tenants; ++i) {
    const int role = i % 3;
    core::Client& client = fleet.add_client("tenant" + std::to_string(i));
    completions.push_back(client.submit(
        mix_workload(i, role, frame, kCkptDims, core::Location::kLocalDisk)));
    roles.push_back(role);
  }
  fleet.run_until_idle();
  const double wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();

  ScaleResult result;
  result.tenants = tenants;
  std::array<std::vector<double>, 3> latencies;
  for (std::size_t i = 0; i < completions.size(); ++i) {
    check(completions[i]->status(), "tenant workload");
    result.makespan = std::max(result.makespan, completions[i]->finished_at());
    latencies[static_cast<std::size_t>(roles[i])].push_back(
        completions[i]->latency());
  }
  for (int role = 0; role < 3; ++role) {
    result.roles[static_cast<std::size_t>(role)] = obs::summarize_latencies(
        std::move(latencies[static_cast<std::size_t>(role)]));
  }
  for (const obs::ResourceLoadRow& row : system.resource_loads()) {
    result.queue_wait += row.total_wait;
  }

  std::printf("%8d tenants: makespan %12.2f s  queue wait %14.2f s   "
              "[host: %6.2f s, %.0f tenants/s]\n",
              tenants, result.makespan, result.queue_wait, wall_seconds,
              wall_seconds > 0.0 ? tenants / wall_seconds : 0.0);
  for (int role = 0; role < 3; ++role) {
    const obs::LatencySummary& s = result.roles[static_cast<std::size_t>(role)];
    std::printf("          %-6s n=%-6zu mean %10.2f  p50 %10.2f  "
                "p90 %10.2f  p99 %10.2f  max %10.2f\n",
                mix_role_name(role), s.count, s.mean, s.p50, s.p90, s.p99,
                s.max);
  }
  return result;
}

int run(int max_tenants, const std::string& json_path) {
  std::printf("==============================================================\n");
  std::printf("Fleet scaling sweep: N tenants on one scheduler thread\n");
  std::printf("Roles cycle dump / mse / volren; all latencies are SIMULATED\n");
  std::printf("seconds; host wall-clock shown in brackets is NOT in the JSON.\n");
  std::printf("==============================================================\n");

  std::vector<ScaleResult> results;
  for (const int tenants : {100, 1000, 10000, 100000}) {
    if (tenants > max_tenants) break;
    results.push_back(run_scale(tenants));
  }

  std::string json = "{\"bench\":\"fleet\",\"workers\":1,\"scales\":[";
  char buf[512];
  for (std::size_t i = 0; i < results.size(); ++i) {
    const ScaleResult& r = results[i];
    if (i != 0) json += ',';
    std::snprintf(buf, sizeof(buf),
                  "{\"tenants\":%d,\"makespan\":%.6f,\"queue_wait\":%.6f,"
                  "\"roles\":{",
                  r.tenants, r.makespan, r.queue_wait);
    json += buf;
    for (int role = 0; role < 3; ++role) {
      const obs::LatencySummary& s = r.roles[static_cast<std::size_t>(role)];
      std::snprintf(buf, sizeof(buf),
                    "%s\"%s\":{\"count\":%zu,\"mean\":%.6f,\"p50\":%.6f,"
                    "\"p90\":%.6f,\"p99\":%.6f,\"max\":%.6f}",
                    role == 0 ? "" : ",", mix_role_name(role), s.count, s.mean,
                    s.p50, s.p90, s.p99, s.max);
      json += buf;
    }
    json += "}}";
  }
  json += "]}";
  write_summary_json(json_path, json);
  return 0;
}

}  // namespace
}  // namespace msra::bench

int main(int argc, char** argv) {
  const std::string json_path = msra::bench::consume_json_out_flag(argc, argv);
  int max_tenants = 100000;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--max-tenants") == 0 && i + 1 < argc) {
      max_tenants = std::atoi(argv[i + 1]);
      ++i;
    } else if (std::strncmp(argv[i], "--max-tenants=", 14) == 0) {
      max_tenants = std::atoi(argv[i] + 14);
    }
  }
  return msra::bench::run(max_tenants, json_path);
}
