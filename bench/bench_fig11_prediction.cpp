// Figure 11: the per-dataset prediction table the IJ-GUI shows — dataset
// temp on remote disks, everything else on remote tapes, collective I/O,
// maximum iteration 120 (Table 2 scale) or the reduced default.
#include "bench_util.h"

namespace msra::bench {
namespace {

int run() {
  print_header("Figure 11 — per-dataset I/O time prediction (IJ-GUI table)",
               "Shen et al., HPDC 2000, Figure 11");
  Testbed testbed;
  check(testbed.calibrate(), "PTool calibration");

  apps::astro3d::Config config = astro_config();
  config.default_location = core::Location::kRemoteTape;
  config.hints["temp"] = core::Location::kRemoteDisk;

  std::printf("%-16s %-10s %5s %-6s %-8s %-14s %-12s %4s %14s\n", "NAME",
              "AMODE", "NDIMS", "ETYPE", "PATTERN", "DIMS", "EXPECTEDLOC",
              "FREQ", "VIRTUALTIME(s)");
  double total = 0.0;
  for (const auto& desc : apps::astro3d::dataset_descs(config)) {
    const core::Location resolved = desc.location == core::Location::kAuto
                                        ? core::Location::kRemoteTape
                                        : desc.location;
    auto prediction = check(
        testbed.predictor.predict_dataset(desc, resolved, config.iterations,
                                          config.nprocs, predict::IoOp::kWrite),
        "prediction");
    total += prediction.total;
    char dims[32];
    std::snprintf(dims, sizeof(dims), "%llu,%llu,%llu",
                  static_cast<unsigned long long>(desc.dims[0]),
                  static_cast<unsigned long long>(desc.dims[1]),
                  static_cast<unsigned long long>(desc.dims[2]));
    std::printf("%-16s %-10s %5d %-6s %-8s %-14s %-12s %4d %14.2f\n",
                desc.name.c_str(),
                std::string(core::access_mode_name(desc.amode)).c_str(), 3,
                std::string(core::element_type_name(desc.etype)).c_str(),
                desc.pattern.c_str(), dims,
                std::string(core::location_name(resolved)).c_str(),
                desc.frequency, prediction.total);
  }
  std::printf("%-80s %14.2f\n", "TOTAL", total);
  if (full_scale()) {
    std::printf(
        "\nPaper's Fig. 11 values at this scale: float dataset -> tape\n"
        "~3036 s, uchar dataset -> tape ~933 s, temp -> remote disk ~812 s.\n");
  }
  return 0;
}

}  // namespace
}  // namespace msra::bench

int main() { return msra::bench::run(); }
