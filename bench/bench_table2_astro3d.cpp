// Table 2: the Astro3D run-time parameter set and the derived data volume
// ("This set of parameters will generate a total of about 2.2G data").
#include "bench_util.h"

namespace msra::bench {
namespace {

int run() {
  print_header("Table 2 — Astro3D run-time parameter set",
               "Shen et al., HPDC 2000, Table 2");
  apps::astro3d::Config config = astro_config();

  std::printf("%-28s %20s %16s\n", "Item", "Size", "Data type");
  std::printf("%-28s %10llux%llux%llu %16s\n", "Problem size",
              static_cast<unsigned long long>(config.dims[0]),
              static_cast<unsigned long long>(config.dims[1]),
              static_cast<unsigned long long>(config.dims[2]), "-");
  std::printf("%-28s %20d %16s\n", "Max num of iterations",
              config.iterations, "-");
  std::printf("%-28s %20d %16s\n", "Data analysis freq",
              config.analysis_freq, "Float");
  std::printf("%-28s %20d %16s\n", "Data visualization freq",
              config.viz_freq, "Unsigned Char");
  std::printf("%-28s %20d %16s\n", "Checkpointing freq",
              config.checkpoint_freq, "Float");

  std::printf("\nDerived dataset inventory (19 datasets):\n");
  std::printf("%-16s %-10s %-6s %-10s %12s %8s %14s\n", "name", "amode",
              "etype", "pattern", "bytes/dump", "dumps", "total");
  std::uint64_t total = 0;
  for (const auto& desc : apps::astro3d::dataset_descs(config)) {
    const std::uint64_t footprint = desc.footprint_bytes(config.iterations);
    total += footprint;
    std::printf("%-16s %-10s %-6s %-10s %12s %8llu %14s\n", desc.name.c_str(),
                std::string(core::access_mode_name(desc.amode)).c_str(),
                std::string(core::element_type_name(desc.etype)).c_str(),
                desc.pattern.c_str(),
                format_bytes(desc.global_bytes()).c_str(),
                static_cast<unsigned long long>(desc.dumps(config.iterations)),
                format_bytes(footprint).c_str());
  }
  std::printf("\nTotal data generated: %s", format_bytes(total).c_str());
  if (full_scale()) {
    std::printf("  (paper: \"about 2.2G\"; checkpoints are over_write so the\n"
                " persistent footprint is smaller than the bytes that crossed"
                " the wire)\n");
    // Bytes shipped (checkpoints rewritten every dump):
    std::uint64_t shipped = 0;
    for (const auto& desc : apps::astro3d::dataset_descs(config)) {
      if (desc.location == core::Location::kDisable) continue;
      shipped += desc.global_bytes() * desc.dumps(config.iterations);
    }
    std::printf("Total bytes written (incl. checkpoint rewrites): %s\n",
                format_bytes(shipped).c_str());
  } else {
    std::printf("  (reduced scale; MSRA_FULL_SCALE=1 reproduces ~2.2 GB)\n");
  }
  return 0;
}

}  // namespace
}  // namespace msra::bench

int main() { return msra::bench::run(); }
