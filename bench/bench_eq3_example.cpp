// The worked example of Equation (3): "Suppose the user is going to
// generate only vr-temp and vr-press in Astro3D for every 6 iterations and
// the maximum iteration is 120. Vr-temp is written to local disks and
// vr-press is dumped to remote disks. Each dataset is 2M."
// The paper predicts 180.57 s and measures ~197.40 s.
//
// This bench always runs the paper's exact sizes (128^3 uchar = 2 MiB,
// N = 120, freq = 6), regardless of MSRA_FULL_SCALE.
#include "bench_util.h"

namespace msra::bench {
namespace {

int run() {
  print_header("Equation (3) worked example — vr_temp + vr_press",
               "Shen et al., HPDC 2000, section 4.2 (prediction 180.57 s, "
               "actual ~197.40 s)");
  Testbed testbed;
  check(testbed.calibrate(), "PTool calibration");

  const int iterations = 120;
  const int freq = 6;
  const int nprocs = 4;

  auto make_desc = [&](const std::string& name, core::Location location) {
    core::DatasetDesc desc;
    desc.name = name;
    desc.dims = {128, 128, 128};  // 2 MiB of uchar
    desc.etype = core::ElementType::kUInt8;
    desc.pattern = "BBB";
    desc.frequency = freq;
    desc.location = location;
    return desc;
  };
  const auto vr_temp = make_desc("vr_temp", core::Location::kLocalDisk);
  const auto vr_press = make_desc("vr_press", core::Location::kRemoteDisk);

  // Prediction (Equation 2 over the two datasets).
  auto prediction = check(
      testbed.predictor.predict_run({{vr_temp, core::Location::kLocalDisk},
                                     {vr_press, core::Location::kRemoteDisk}},
                                    iterations, nprocs),
      "prediction");
  for (const auto& d : prediction.datasets) {
    std::printf("predicted t(%s @ %s): %.2f s per dump x %llu dumps = %.2f s\n",
                d.name.c_str(),
                std::string(core::location_name(d.location)).c_str(),
                d.call_time, static_cast<unsigned long long>(d.dumps), d.total);
  }
  std::printf("T_prediction = %.2f s   (paper: 180.57 s)\n\n", prediction.total);

  // Actual: dump 21 timesteps of each dataset through the session API.
  core::Session session(testbed.system,
                        {.application = "astro3d", .user = "xshen",
                         .nprocs = nprocs, .iterations = iterations});
  auto* temp_handle = check(session.open(vr_temp), "open vr_temp");
  auto* press_handle = check(session.open(vr_press), "open vr_press");
  auto layout = check(temp_handle->layout(nprocs), "layout");

  double measured = 0.0;
  prt::World world(nprocs);
  world.run([&](prt::Comm& comm) {
    const prt::LocalBox box = layout.decomp.local_box(comm.rank());
    std::vector<std::byte> block(static_cast<std::size_t>(box.volume()),
                                 static_cast<std::byte>(comm.rank()));
    for (int t = 0; t <= iterations; t += freq) {
      check(temp_handle->write_timestep(comm, t, block), "write vr_temp");
      check(press_handle->write_timestep(comm, t, block), "write vr_press");
    }
    comm.sync_time();
    if (comm.rank() == 0) measured = comm.timeline().now();
  });
  std::printf("T_actual     = %.2f s   (paper: ~197.40 s)\n", measured);
  std::printf("relative error: %.1f%%   (paper's own: ~8.5%%)\n",
              100.0 * std::abs(prediction.total - measured) / measured);
  return 0;
}

}  // namespace
}  // namespace msra::bench

int main() { return msra::bench::run(); }
