// Figure 9: total Astro3D I/O time under the five placement configurations,
// predicted vs actually executed on the emulated testbed.
//
//  (1) write all datasets to remote tapes;
//  (2) temp -> remote disks, all others -> remote tapes;
//  (3) only temp and press -> remote disks (everything else DISABLEd);
//  (4) vr_temp -> local disks, all others -> remote tapes;
//  (5) only vr_temp -> local disks and vr_press -> remote disks.
#include "bench_util.h"

namespace msra::bench {
namespace {

using apps::astro3d::Config;
using core::Location;

struct Scenario {
  const char* label;
  Config config;
};

std::vector<Scenario> scenarios() {
  std::vector<Scenario> out;
  {
    Config c = astro_config();
    c.default_location = Location::kRemoteTape;
    out.push_back({"(1) all -> tape", c});
  }
  {
    Config c = astro_config();
    c.default_location = Location::kRemoteTape;
    c.hints["temp"] = Location::kRemoteDisk;
    out.push_back({"(2) temp -> remote disk, rest -> tape", c});
  }
  {
    Config c = astro_config();
    c.default_location = Location::kDisable;
    c.hints["temp"] = Location::kRemoteDisk;
    c.hints["press"] = Location::kRemoteDisk;
    out.push_back({"(3) only temp+press -> remote disk", c});
  }
  {
    Config c = astro_config();
    c.default_location = Location::kRemoteTape;
    c.hints["vr_temp"] = Location::kLocalDisk;
    out.push_back({"(4) vr_temp -> local disk, rest -> tape", c});
  }
  {
    Config c = astro_config();
    c.default_location = Location::kDisable;
    c.hints["vr_temp"] = Location::kLocalDisk;
    c.hints["vr_press"] = Location::kRemoteDisk;
    out.push_back({"(5) only vr_temp -> local, vr_press -> remote disk", c});
  }
  return out;
}

int run(int argc, char** argv) {
  const std::string stats_out = consume_stats_out_flag(argc, argv);
  const std::string json_out = consume_json_out_flag(argc, argv);
  print_header("Figure 9 — Astro3D total I/O time, five placement configs",
               "Shen et al., HPDC 2000, Figure 9");
  std::printf("%-52s %14s %14s %8s\n", "configuration", "predicted (s)",
              "measured (s)", "pred/act");
  std::vector<double> measured_times;
  std::string rows;
  const auto scenario_list = scenarios();
  for (const auto& scenario : scenario_list) {
    Testbed testbed;
    check(testbed.calibrate(), "PTool calibration");

    // Prediction: hints map 1:1 to resolved locations here (AUTO -> tape).
    std::vector<std::pair<core::DatasetDesc, Location>> plan;
    for (const auto& desc : apps::astro3d::dataset_descs(scenario.config)) {
      Location resolved = desc.location == Location::kAuto
                              ? Location::kRemoteTape
                              : desc.location;
      plan.emplace_back(desc, resolved);
    }
    auto prediction = check(
        testbed.predictor.predict_run(plan, scenario.config.iterations,
                                      scenario.config.nprocs),
        "prediction");

    // Actual run through the full stack.
    core::Session session(
        testbed.system,
        {.application = "astro3d", .user = "xshen",
         .nprocs = scenario.config.nprocs,
         .iterations = scenario.config.iterations});
    auto result = check(apps::astro3d::run(session, scenario.config),
                        "astro3d run");
    measured_times.push_back(result.io_time);
    std::printf("%-52s %14.1f %14.1f %8.2f\n", scenario.label,
                prediction.total, result.io_time,
                prediction.total / result.io_time);
    char row[256];
    std::snprintf(row, sizeof(row),
                  "%s    {\"label\": \"%s\", \"predicted_s\": %.4f, "
                  "\"measured_s\": %.4f}",
                  rows.empty() ? "" : ",\n", scenario.label, prediction.total,
                  result.io_time);
    rows += row;
    // The dump carries the last scenario's registry (one testbed per run).
    if (&scenario == &scenario_list.back()) {
      write_stats_json(testbed.system, stats_out);
    }
  }
  std::printf(
      "\nShape checks (paper): (1) is the most expensive; (2) slightly\n"
      "cheaper; (3) drastically cheaper (DISABLE); (4) slightly cheaper\n"
      "than (1); (5) the cheapest of all.\n");
  const bool ordering_holds = measured_times[0] > measured_times[1] &&
                              measured_times[1] > measured_times[2] &&
                              measured_times[0] > measured_times[3] &&
                              measured_times[4] < measured_times[2];
  std::printf("ordering holds: %s\n", ordering_holds ? "YES" : "NO");
  std::string json = "{\n  \"figure\": \"fig9\",\n  \"scenarios\": [\n";
  json += rows;
  json += "\n  ],\n  \"ordering_holds\": ";
  json += ordering_holds ? "true" : "false";
  json += "\n}";
  write_summary_json(json_out, json);
  return 0;
}

}  // namespace
}  // namespace msra::bench

int main(int argc, char** argv) { return msra::bench::run(argc, argv); }
