// The priced mid-tier read cache — re-read speedup, write-through cost,
// and cache-aware prediction accuracy (DESIGN.md §5i).
//
// The paper's post-processing tools (MSE scans whole timesteps, Volren
// renders planes of the same frame) re-read hot data that lives on slow
// media. This bench runs both access shapes against the calibrated
// testbed, cold (no cache) and warm (cache enabled), per origin:
//
//   1. MSE-style whole-frame re-reads from the remote disks and from
//      tape: the warm loop must be at least 5x faster than the cold one.
//   2. Hit-ratio-weighted prediction: PTool probes the cache tier, the
//      predictor blends every read-direction Eq. (1) term at the
//      realized hit ratio, and the blended price of the warm loop must
//      land within 5% of the measured time.
//   3. Volren-style plane reads served from a cached whole frame.
//   4. Write-through: one overwrite invalidates the entry; the next
//      read misses and re-admits.
//
// All numbers are deterministic simulated seconds, so the --json summary
// doubles as a drift guard (bench/baselines/BENCH_cache.json).
#include "bench_util.h"

#include "cache/cache.h"
#include "runtime/plan.h"

namespace msra::bench {
namespace {

constexpr int kReads = 8;

core::DatasetDesc frame_desc(core::Location origin) {
  core::DatasetDesc desc;
  desc.name = "frame";
  desc.dims = {64, 64, 64};  // 1 MiB per timestep
  desc.etype = core::ElementType::kFloat32;
  desc.frequency = 1;
  desc.location = origin;
  return desc;
}

struct Workload {
  Testbed testbed;
  std::unique_ptr<core::Session> session;
  core::DatasetHandle* handle = nullptr;

  explicit Workload(core::Location origin, bool cached) {
    check(testbed.calibrate(), "PTool calibration");
    if (cached) {
      cache::CacheConfig config;
      config.memory_bytes = 64ull << 20;
      testbed.system.enable_cache(config, &testbed.predictor);
      predict::PToolConfig probe;
      probe.sizes = {64ull << 10, 256ull << 10, 1ull << 20, 2ull << 20,
                     4ull << 20, 8ull << 20, 16ull << 20};
      probe.repeats = 1;
      predict::PTool ptool(testbed.system, testbed.perfdb);
      check(ptool.measure_cache(probe), "PTool cache probe");
      testbed.system.reset_time();
    }
    session = std::make_unique<core::Session>(
        testbed.system,
        core::SessionOptions{.application = "astro3d", .user = "xshen",
                             .nprocs = 1, .iterations = 1,
                             .predictor = &testbed.predictor});
    handle = check(session->open(frame_desc(origin)), "open frame");
    auto layout = check(handle->layout(1), "layout");
    std::vector<std::byte> block(layout.global_bytes(), std::byte{1});
    prt::World world(1);
    world.run([&](prt::Comm& comm) {
      check(handle->write_timestep(comm, 0, block), "dump");
    });
    testbed.system.reset_time();
  }

  /// `rounds` whole-frame reads, each from idle devices; summed seconds.
  double read_whole_loop(int rounds) {
    double total = 0.0;
    for (int i = 0; i < rounds; ++i) {
      testbed.system.reset_time();
      simkit::Timeline tl;
      check(handle->read_whole(0, {.timeline = &tl}).status(), "read");
      total += tl.now();
    }
    return total;
  }

  /// `rounds` one-plane (z = 0) reads; summed seconds.
  double read_plane_loop(int rounds) {
    prt::LocalBox plane;
    plane.extent = {{{0, 64}, {0, 64}, {0, 1}}};
    std::vector<std::byte> out(64 * 64 * 4);
    double total = 0.0;
    for (int i = 0; i < rounds; ++i) {
      testbed.system.reset_time();
      simkit::Timeline tl;
      check(handle->read_box(0, plane, out, {.timeline = &tl}), "read_box");
      total += tl.now();
    }
    return total;
  }
};

struct OriginResult {
  double cold = 0.0;
  double warm = 0.0;
  double speedup = 0.0;
  double hit_ratio = 0.0;
  double predicted = 0.0;
  double error = 0.0;  ///< (predicted - warm) / warm
};

StatusOr<OriginResult> measure_origin(core::Location origin,
                                      const char* label) {
  OriginResult result;

  Workload cold(origin, /*cached=*/false);
  result.cold = cold.read_whole_loop(kReads);

  Workload warm(origin, /*cached=*/true);
  result.warm = warm.read_whole_loop(kReads);
  const cache::CacheStats stats = warm.testbed.system.cache()->stats();
  result.speedup = result.warm > 0.0 ? result.cold / result.warm : 0.0;
  result.hit_ratio =
      static_cast<double>(stats.hits) /
      static_cast<double>(stats.hits + stats.misses);

  // Blended Eq. (1) price of the same loop at the realized hit ratio.
  auto record = warm.session->catalog().instance("astro3d", "frame", 0);
  MSRA_RETURN_IF_ERROR(record.status());
  const auto plan =
      runtime::PlanBuilder::object_read(record->path, record->bytes);
  MSRA_ASSIGN_OR_RETURN(
      const double per_call,
      warm.testbed.predictor.price(
          plan, origin, {},
          predict::CacheAssumptions{.hit_ratio = result.hit_ratio}));
  result.predicted = per_call * kReads;
  result.error = (result.predicted - result.warm) / result.warm;

  std::printf("  %-12s cold %9.3f s   warm %9.3f s   %5.1fx   "
              "hit ratio %.3f   predicted %9.3f s (%+.2f%%)\n",
              label, result.cold, result.warm, result.speedup,
              result.hit_ratio, result.predicted, 100.0 * result.error);
  return result;
}

int run(const std::string& json_path) {
  print_header("Mid-tier read cache — priced admission, Eq. (1) hits, "
               "cache-aware prediction",
               "Shen et al., HPDC 2000, Eq. (1) applied to a new tier "
               "(DESIGN.md 5i)");

  // ---- MSE-style whole-frame re-reads ------------------------------------
  std::printf("\nwhole-frame re-reads (%d rounds, 1 MiB frame):\n", kReads);
  auto disk = measure_origin(core::Location::kRemoteDisk, "remote disk");
  auto tape = measure_origin(core::Location::kRemoteTape, "remote tape");
  check(disk.status(), "remote disk sweep");
  check(tape.status(), "remote tape sweep");

  bool failed = false;
  for (const auto* result : {&*disk, &*tape}) {
    if (result->speedup < 5.0) {
      std::fprintf(stderr, "FATAL: warm speedup %.2fx is below the 5x bar\n",
                   result->speedup);
      failed = true;
    }
    if (result->error < -0.05 || result->error > 0.05) {
      std::fprintf(stderr, "FATAL: cache-aware prediction off by %+.2f%% "
                   "(bar: 5%%)\n", 100.0 * result->error);
      failed = true;
    }
  }

  // ---- Volren-style plane reads off a cached frame -----------------------
  Workload volren_cold(core::Location::kRemoteTape, /*cached=*/false);
  const double plane_cold = volren_cold.read_plane_loop(kReads);
  Workload volren_warm(core::Location::kRemoteTape, /*cached=*/true);
  (void)volren_warm.read_whole_loop(1);  // admit the frame
  const double plane_warm = volren_warm.read_plane_loop(kReads);
  const double plane_speedup =
      plane_warm > 0.0 ? plane_cold / plane_warm : 0.0;
  std::printf("\nplane renders (%d z-planes, tape origin): cold %9.3f s   "
              "warm %9.3f s   %5.1fx\n",
              kReads, plane_cold, plane_warm, plane_speedup);
  if (plane_speedup < 5.0) {
    std::fprintf(stderr, "FATAL: warm plane speedup %.2fx below the 5x bar\n",
                 plane_speedup);
    failed = true;
  }

  // ---- write-through invalidation ----------------------------------------
  const cache::CacheStats before =
      volren_warm.testbed.system.cache()->stats();
  std::vector<std::byte> block(volren_warm.handle->desc().global_bytes(),
                               std::byte{2});
  prt::World world(1);
  world.run([&](prt::Comm& comm) {
    check(volren_warm.handle->write_timestep(comm, 0, block), "overwrite");
  });
  (void)volren_warm.read_whole_loop(1);
  const cache::CacheStats after = volren_warm.testbed.system.cache()->stats();
  const std::uint64_t invalidated = after.invalidations - before.invalidations;
  std::printf("write-through: overwrite invalidated %llu entr%s; next read "
              "missed and re-admitted (misses %llu -> %llu)\n",
              static_cast<unsigned long long>(invalidated),
              invalidated == 1 ? "y" : "ies",
              static_cast<unsigned long long>(before.misses),
              static_cast<unsigned long long>(after.misses));
  if (invalidated != 1 || after.misses != before.misses + 1) {
    std::fprintf(stderr, "FATAL: write-through invalidation did not land\n");
    failed = true;
  }

  if (failed) return 1;

  char buf[1024];
  std::snprintf(
      buf, sizeof(buf),
      "{\"bench\":\"cache\",\"reads\":%d,"
      "\"disk_cold_seconds\":%.6f,\"disk_warm_seconds\":%.6f,"
      "\"disk_speedup\":%.6f,\"disk_hit_ratio\":%.6f,"
      "\"disk_predicted_seconds\":%.6f,\"disk_prediction_error\":%.6f,"
      "\"tape_cold_seconds\":%.6f,\"tape_warm_seconds\":%.6f,"
      "\"tape_speedup\":%.6f,\"tape_hit_ratio\":%.6f,"
      "\"tape_predicted_seconds\":%.6f,\"tape_prediction_error\":%.6f,"
      "\"plane_cold_seconds\":%.6f,\"plane_warm_seconds\":%.6f,"
      "\"plane_speedup\":%.6f,\"invalidations\":%llu}",
      kReads, disk->cold, disk->warm, disk->speedup, disk->hit_ratio,
      disk->predicted, disk->error, tape->cold, tape->warm, tape->speedup,
      tape->hit_ratio, tape->predicted, tape->error, plane_cold, plane_warm,
      plane_speedup, static_cast<unsigned long long>(invalidated));
  write_summary_json(json_path, buf);
  return 0;
}

}  // namespace
}  // namespace msra::bench

int main(int argc, char** argv) {
  const std::string json_path = msra::bench::consume_json_out_flag(argc, argv);
  return msra::bench::run(json_path);
}
