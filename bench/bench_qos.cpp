// QoS under heavy traffic: queue disciplines and predictor-quoted
// admission on the shared testbed.
//
// Three phases, all deterministic simulated time (the --json summary is
// byte-stable and guards drift, bench/baselines/BENCH_qos.json):
//
//   1. shares — a batch flood (whole-frame reads) and a thin interactive
//      stream (z-plane slices) share the remote-disk path. Under FIFO the
//      interactive reads queue behind every booked batch transfer; under
//      WFQ (interactive weight 8, batch 2) the interactive class drains at
//      its own rate. Gate: interactive p99 improves >= 3x with WFQ while
//      aggregate throughput stays within 10% of FIFO (fair sharing is not
//      allowed to cost work-conservation).
//
//   2. deadlines — the same mix with a relative deadline on the
//      interactive class. EDF orders grants by absolute deadline, FIFO by
//      arrival; both meter misses on the same counter
//      (simkit::Resource::class_stats), so the phase reports how many
//      deadlines each discipline blows.
//
//   3. admission — open-loop FIFO accepts everything: interactive reads
//      submitted into a saturated system are admitted, wait out the booked
//      backlog, and miss their SLO anyway. With the predictor-quoted
//      admission gate the same submissions are rejected up front
//      (ResourceExhausted) and the accepted ones meet the SLO. Gate: the
//      accepted-request SLO-miss rate is zero with admission where
//      open-loop FIFO misses.
//
//   --json FILE   machine-readable summary (see bench/run_all.sh)
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "obs/report.h"
#include "qos/admission.h"
#include "qos/policy.h"

namespace msra::bench {
namespace {

constexpr std::array<std::uint64_t, 3> kFrameDims = {32, 32, 32};
constexpr int kFrameTimesteps = 2;
constexpr int kBatchTenants = 16;
constexpr int kBatchRounds = 2;       ///< whole-frame reads per batch tenant
constexpr int kInteractiveTenants = 4;
constexpr double kDeadline = 2.0;     ///< interactive relative deadline (s)
constexpr double kSlo = 4.0;          ///< interactive admission SLO (s)

core::DatasetDesc frame_desc() {
  return mix_dataset("frame", kFrameDims, core::Location::kRemoteDisk);
}

core::SessionOptions tenant_options(qos::TenantClass cls) {
  core::SessionOptions options;
  options.application = "qos";
  options.tenant_class = cls;
  return options;
}

/// The batch flood: whole-frame reads, every timestep, several rounds.
core::Workload batch_workload(const core::DatasetDesc& frame) {
  core::Workload workload;
  workload.tagged("batch").open_existing(frame.name);
  for (int round = 0; round < kBatchRounds; ++round) {
    for (int t = 0; t < kFrameTimesteps; ++t) {
      workload.read_whole(frame.name, t);
    }
  }
  return workload.finalize();
}

/// The interactive stream: one z-plane slice of timestep 0.
core::Workload interactive_workload(const core::DatasetDesc& frame) {
  const prt::LocalBox plane = {
      {{{0, kFrameDims[0]}, {0, kFrameDims[1]}, {0, 1}}}};
  return core::Workload()
      .tagged("interactive")
      .open_existing(frame.name)
      .read_box(frame.name, 0, plane)
      .finalize();
}

struct PhaseResult {
  obs::LatencySummary interactive;
  obs::LatencySummary batch;
  double makespan = 0.0;
  double throughput = 0.0;  ///< frame payloads completed per virtual second
  std::uint64_t interactive_misses = 0;
  std::uint64_t batch_misses = 0;
};

/// One flood run under `discipline`. `deadline` > 0 arms the interactive
/// class's relative deadline (missed-grant metering, EDF ordering).
PhaseResult run_flood(simkit::DisciplineKind discipline, double deadline) {
  core::StorageSystem system(core::HardwareProfile::paper_2000());
  const core::DatasetDesc frame = frame_desc();
  write_mix_frame(system, frame, kFrameTimesteps);
  system.reset_time();

  qos::QosConfig config;
  config.discipline = discipline;
  config.policy(qos::TenantClass::kInteractive).deadline = deadline;
  check(system.enable_qos(config), "enable qos");

  core::Fleet fleet(system);
  std::vector<core::Completion*> batch_done;
  std::vector<core::Completion*> interactive_done;
  // Batch tenants first: their flood is booked ahead of every interactive
  // submission, the worst case for FIFO.
  for (int i = 0; i < kBatchTenants; ++i) {
    core::Client& client =
        fleet.add_client("batch" + std::to_string(i),
                         tenant_options(qos::TenantClass::kBatch));
    batch_done.push_back(client.submit(batch_workload(frame)));
  }
  for (int i = 0; i < kInteractiveTenants; ++i) {
    core::Client& client =
        fleet.add_client("inter" + std::to_string(i),
                         tenant_options(qos::TenantClass::kInteractive));
    interactive_done.push_back(client.submit(interactive_workload(frame)));
  }
  fleet.run_until_idle();

  PhaseResult result;
  std::vector<double> interactive_latencies, batch_latencies;
  for (core::Completion* done : interactive_done) {
    check(done->status(), "interactive tenant");
    interactive_latencies.push_back(done->latency());
    result.makespan = std::max(result.makespan, done->finished_at());
  }
  for (core::Completion* done : batch_done) {
    check(done->status(), "batch tenant");
    batch_latencies.push_back(done->latency());
    result.makespan = std::max(result.makespan, done->finished_at());
  }
  result.interactive = obs::summarize_latencies(std::move(interactive_latencies));
  result.batch = obs::summarize_latencies(std::move(batch_latencies));
  const double requests = static_cast<double>(
      kBatchTenants * kBatchRounds * kFrameTimesteps + kInteractiveTenants);
  result.throughput = result.makespan > 0.0 ? requests / result.makespan : 0.0;
  for (const obs::QosClassRow& row : system.qos_breakdown()) {
    if (row.tenant == "interactive") result.interactive_misses = row.deadline_misses;
    if (row.tenant == "batch") result.batch_misses = row.deadline_misses;
  }
  return result;
}

struct AdmissionResult {
  int accepted = 0;
  int rejected = 0;
  int accepted_misses = 0;  ///< accepted interactive reads over the SLO
  double worst_accepted = 0.0;
};

/// Interactive submissions into a saturated FIFO system, with or without
/// the predictor-quoted admission gate. Wave 1 lands on idle devices (in
/// quote), wave 2 behind the batch flood's booked backlog (out of quote).
AdmissionResult run_admission(bool gate) {
  Testbed bed;
  check(bed.calibrate(), "ptool calibration");
  const core::DatasetDesc frame = frame_desc();
  write_mix_frame(bed.system, frame, kFrameTimesteps);
  bed.system.reset_time();

  qos::QosConfig config;
  config.policy(qos::TenantClass::kInteractive).slo = kSlo;
  config.admission = gate;
  check(bed.system.enable_qos(config), "enable qos");
  qos::AdmissionController controller(bed.system, &bed.predictor, config);

  core::Fleet fleet(bed.system);
  if (gate) controller.attach(fleet);

  std::vector<core::Completion*> interactive_done;
  // Wave 1: idle system — quotes are cheap, everything is admitted.
  for (int i = 0; i < kInteractiveTenants / 2; ++i) {
    core::Client& client =
        fleet.add_client("early" + std::to_string(i),
                         tenant_options(qos::TenantClass::kInteractive));
    interactive_done.push_back(client.submit(interactive_workload(frame)));
  }
  fleet.run_until_idle();
  // The flood books the shared path far past the SLO horizon.
  for (int i = 0; i < kBatchTenants; ++i) {
    core::Client& client =
        fleet.add_client("batch" + std::to_string(i),
                         tenant_options(qos::TenantClass::kBatch));
    client.submit(batch_workload(frame));
  }
  fleet.run_until_idle();
  // Wave 2: the same interactive request now quotes backlog + service.
  for (int i = 0; i < kInteractiveTenants / 2; ++i) {
    core::Client& client =
        fleet.add_client("late" + std::to_string(i),
                         tenant_options(qos::TenantClass::kInteractive));
    interactive_done.push_back(client.submit(interactive_workload(frame)));
  }
  fleet.run_until_idle();

  AdmissionResult result;
  for (core::Completion* done : interactive_done) {
    if (!done->status().ok()) {
      ++result.rejected;
      continue;
    }
    ++result.accepted;
    if (done->latency() > kSlo) ++result.accepted_misses;
    result.worst_accepted = std::max(result.worst_accepted, done->latency());
  }
  return result;
}

void phase_json(std::string& json, const char* name, const PhaseResult& r) {
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "\"%s\":{\"interactive\":{\"count\":%zu,\"p50\":%.6f,\"p99\":%.6f,"
      "\"max\":%.6f,\"misses\":%llu},\"batch\":{\"count\":%zu,\"p50\":%.6f,"
      "\"p99\":%.6f,\"max\":%.6f,\"misses\":%llu},\"makespan\":%.6f,"
      "\"throughput\":%.6f}",
      name, r.interactive.count, r.interactive.p50, r.interactive.p99,
      r.interactive.max, static_cast<unsigned long long>(r.interactive_misses),
      r.batch.count, r.batch.p50, r.batch.p99, r.batch.max,
      static_cast<unsigned long long>(r.batch_misses), r.makespan,
      r.throughput);
  json += buf;
}

int run(const std::string& json_path) {
  std::printf("==============================================================\n");
  std::printf("QoS under heavy traffic: queue disciplines + admission gate\n");
  std::printf("Batch flood (%d tenants x %d whole-frame reads) vs %d\n",
              kBatchTenants, kBatchRounds * kFrameTimesteps,
              kInteractiveTenants);
  std::printf("interactive z-plane slices on the shared remote-disk path.\n");
  std::printf("All times are SIMULATED seconds on the deterministic testbed.\n");
  std::printf("==============================================================\n");

  std::printf("\nphase 1 — shares (no deadlines):\n");
  std::printf("%8s %12s %12s %12s %12s %12s\n", "grant", "int_p50[s]",
              "int_p99[s]", "batch_p99[s]", "makespan[s]", "req/s");
  const PhaseResult fifo = run_flood(simkit::DisciplineKind::kFifo, 0.0);
  std::printf("%8s %12.4f %12.4f %12.4f %12.2f %12.4f\n", "fifo",
              fifo.interactive.p50, fifo.interactive.p99, fifo.batch.p99,
              fifo.makespan, fifo.throughput);
  const PhaseResult wfq = run_flood(simkit::DisciplineKind::kWfq, 0.0);
  std::printf("%8s %12.4f %12.4f %12.4f %12.2f %12.4f\n", "wfq",
              wfq.interactive.p50, wfq.interactive.p99, wfq.batch.p99,
              wfq.makespan, wfq.throughput);

  const double speedup = wfq.interactive.p99 > 0.0
                             ? fifo.interactive.p99 / wfq.interactive.p99
                             : 0.0;
  const double thr_drift =
      fifo.throughput > 0.0
          ? std::abs(wfq.throughput - fifo.throughput) / fifo.throughput
          : 0.0;
  std::printf("interactive p99 %.4f -> %.4f s (%.1fx), throughput drift "
              "%.1f%%\n",
              fifo.interactive.p99, wfq.interactive.p99, speedup,
              thr_drift * 100.0);
  if (speedup < 3.0 || thr_drift > 0.10) {
    std::fprintf(stderr, "FATAL: WFQ gate missed (need >= 3x interactive "
                         "p99 at <= 10%% throughput drift)\n");
    return 1;
  }

  std::printf("\nphase 2 — deadlines (interactive %.1f s relative):\n",
              kDeadline);
  const PhaseResult fifo_dl = run_flood(simkit::DisciplineKind::kFifo,
                                        kDeadline);
  const PhaseResult edf_dl = run_flood(simkit::DisciplineKind::kEdf,
                                       kDeadline);
  std::printf("%8s misses %llu of %zu   (p99 %.4f s)\n", "fifo",
              static_cast<unsigned long long>(fifo_dl.interactive_misses),
              fifo_dl.interactive.count, fifo_dl.interactive.p99);
  std::printf("%8s misses %llu of %zu   (p99 %.4f s)\n", "edf",
              static_cast<unsigned long long>(edf_dl.interactive_misses),
              edf_dl.interactive.count, edf_dl.interactive.p99);
  if (edf_dl.interactive_misses >= fifo_dl.interactive_misses &&
      fifo_dl.interactive_misses > 0) {
    std::fprintf(stderr, "FATAL: EDF did not reduce deadline misses\n");
    return 1;
  }

  std::printf("\nphase 3 — admission (interactive SLO %.1f s, FIFO "
              "grant order):\n", kSlo);
  const AdmissionResult open_loop = run_admission(false);
  const AdmissionResult gated = run_admission(true);
  std::printf("%10s accepted %d rejected %d  accepted-misses %d  "
              "worst accepted %.2f s\n",
              "open-loop", open_loop.accepted, open_loop.rejected,
              open_loop.accepted_misses, open_loop.worst_accepted);
  std::printf("%10s accepted %d rejected %d  accepted-misses %d  "
              "worst accepted %.2f s\n",
              "admission", gated.accepted, gated.rejected,
              gated.accepted_misses, gated.worst_accepted);
  if (open_loop.accepted_misses == 0) {
    std::fprintf(stderr, "FATAL: open-loop FIFO missed no SLOs — the flood "
                         "is not saturating the admission phase\n");
    return 1;
  }
  if (gated.accepted_misses != 0 || gated.rejected == 0) {
    std::fprintf(stderr, "FATAL: admission gate missed (want 0 accepted "
                         "misses and > 0 rejections)\n");
    return 1;
  }

  std::string json = "{\"bench\":\"qos\",\"batch_tenants\":" +
                     std::to_string(kBatchTenants) +
                     ",\"interactive_tenants\":" +
                     std::to_string(kInteractiveTenants) + ",";
  phase_json(json, "fifo", fifo);
  json += ",";
  phase_json(json, "wfq", wfq);
  json += ",";
  phase_json(json, "fifo_deadline", fifo_dl);
  json += ",";
  phase_json(json, "edf_deadline", edf_dl);
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                ",\"admission\":{\"open_loop\":{\"accepted\":%d,"
                "\"rejected\":%d,\"accepted_misses\":%d,"
                "\"worst_accepted\":%.6f},\"gated\":{\"accepted\":%d,"
                "\"rejected\":%d,\"accepted_misses\":%d,"
                "\"worst_accepted\":%.6f}}}",
                open_loop.accepted, open_loop.rejected,
                open_loop.accepted_misses, open_loop.worst_accepted,
                gated.accepted, gated.rejected, gated.accepted_misses,
                gated.worst_accepted);
  json += buf;
  write_summary_json(json_path, json);
  return 0;
}

}  // namespace
}  // namespace msra::bench

int main(int argc, char** argv) {
  const std::string json_path = msra::bench::consume_json_out_flag(argc, argv);
  (void)argc;
  (void)argv;
  return msra::bench::run(json_path);
}
