// Figure 7: read/write time for various data sizes on remote disks (SRB).
#include "rw_figure.h"

int main(int argc, char** argv) {
  return msra::bench::run_rw_figure(
      msra::core::Location::kRemoteDisk, "fig7",
      "Figure 7 — read/write time vs data size, REMOTE DISKS (SRB)",
      "Shen et al., HPDC 2000, Figure 7", argc, argv);
}
