// Ablations over the run-time library's design choices (DESIGN.md):
//   A. collective (two-phase) I/O vs naive strided requests, by nprocs;
//   B. data sieving vs direct requests for plane reads;
//   C. asynchronous write-behind vs synchronous writes under compute overlap;
//   D. subfile chunk-count sweep for slice reads;
//   E. WAN jitter sensitivity of a remote transfer (paper footnote 4).
#include "bench_util.h"
#include "common/stats.h"
#include "runtime/async_io.h"
#include "runtime/parallel_io.h"
#include "runtime/sieve.h"
#include "runtime/subfile.h"

namespace msra::bench {
namespace {

using core::Location;

void ablation_collective() {
  std::printf("\n-- A. collective vs naive write (remote disk, 4 MiB) ------\n");
  std::printf("%8s %16s %16s %8s\n", "nprocs", "naive (s)", "collective (s)",
              "speedup");
  for (int nprocs : {1, 2, 4, 8}) {
    Testbed testbed;
    auto decomp = check(
        prt::Decomposition::create({128, 128, 64}, nprocs, "BBB"), "decomp");
    runtime::ArrayLayout layout{decomp, 4};
    double times[2] = {0.0, 0.0};
    int idx = 0;
    for (auto method :
         {runtime::IoMethod::kNaive, runtime::IoMethod::kCollective}) {
      testbed.system.reset_time();
      prt::World world(nprocs);
      world.run([&](prt::Comm& comm) {
        const prt::LocalBox box = layout.decomp.local_box(comm.rank());
        std::vector<std::byte> block(box.volume() * 4, std::byte{2});
        check(runtime::write_array(
                  testbed.system.endpoint(Location::kRemoteDisk), comm,
                  "ablate/a", layout, block, method),
              "write");
        if (comm.rank() == 0) times[idx] = comm.timeline().now();
      });
      ++idx;
    }
    std::printf("%8d %16.1f %16.1f %7.1fx\n", nprocs, times[0], times[1],
                times[0] / times[1]);
  }
}

void ablation_sieving() {
  std::printf("\n-- B. data sieving vs direct for k-plane reads -----------\n");
  Testbed testbed;
  runtime::GlobalArraySpec spec{{64, 64, 64}, 4};
  auto& endpoint = testbed.system.endpoint(Location::kRemoteDisk);
  {
    simkit::Timeline tl;
    std::vector<std::byte> global(spec.bytes(), std::byte{3});
    auto file = check(runtime::FileSession::start(endpoint, tl, "ablate/b",
                                                  srb::OpenMode::kOverwrite),
                      "store array");
    check(file.write(global), "write array");
    check(file.finish(), "close array");
  }
  std::printf("%14s %14s %14s %10s\n", "plane width", "direct (s)",
              "sieving (s)", "calls");
  for (std::uint64_t width : {1ull, 4ull, 16ull}) {
    prt::LocalBox box;
    box.extent = {prt::Extent{0, 64}, prt::Extent{0, 64},
                  prt::Extent{20, 20 + width}};
    std::vector<std::byte> out(box.volume() * 4);
    double direct = 0.0, sieve = 0.0;
    for (auto strategy : {runtime::AccessStrategy::kDirect,
                          runtime::AccessStrategy::kSieving}) {
      testbed.system.reset_time();
      simkit::Timeline tl;
      check(runtime::read_subarray(endpoint, tl, "ablate/b", spec, box, out,
                                   strategy),
            "read");
      (strategy == runtime::AccessStrategy::kDirect ? direct : sieve) = tl.now();
    }
    std::printf("%14llu %14.1f %14.1f %10llu\n",
                static_cast<unsigned long long>(width), direct, sieve,
                static_cast<unsigned long long>(runtime::access_calls(
                    spec, box, runtime::AccessStrategy::kDirect)));
  }
}

void ablation_async() {
  std::printf("\n-- C. async write-behind vs synchronous (remote disk) ----\n");
  std::printf("%22s %14s %14s\n", "compute per dump (s)", "sync (s)",
              "async (s)");
  const std::uint64_t bytes = 2ull << 20;
  for (double compute : {0.0, 5.0, 15.0}) {
    double sync_total = 0.0, async_total = 0.0;
    {
      Testbed testbed;
      auto& endpoint = testbed.system.endpoint(Location::kRemoteDisk);
      simkit::Timeline tl;
      std::vector<std::byte> data(bytes, std::byte{4});
      for (int t = 0; t < 5; ++t) {
        tl.advance(compute);  // "compute phase"
        auto file = check(
            runtime::FileSession::start(endpoint, tl,
                                        "sync/t" + std::to_string(t),
                                        srb::OpenMode::kOverwrite),
            "open");
        check(file.write(data), "write");
        check(file.finish(), "close");
      }
      sync_total = tl.now();
    }
    {
      Testbed testbed;
      auto& endpoint = testbed.system.endpoint(Location::kRemoteDisk);
      runtime::AsyncWriter writer(endpoint);
      simkit::Timeline tl;
      std::vector<std::byte> data(bytes, std::byte{4});
      for (int t = 0; t < 5; ++t) {
        tl.advance(compute);
        check(writer.submit(tl, "async/t" + std::to_string(t), data), "submit");
      }
      check(writer.flush(tl), "flush");
      async_total = tl.now();
    }
    std::printf("%22.1f %14.1f %14.1f\n", compute, sync_total, async_total);
  }
  std::printf("(with enough compute, async hides the remote transfer)\n");
}

void ablation_subfile() {
  std::printf("\n-- D. subfile chunk sweep for a k-slice read -------------\n");
  std::printf("%8s %16s %14s\n", "chunks", "chunks touched", "read (s)");
  runtime::GlobalArraySpec spec{{64, 64, 64}, 1};
  for (int chunks : {1, 2, 4, 8}) {
    Testbed testbed;
    auto& endpoint = testbed.system.endpoint(Location::kRemoteDisk);
    auto layout = check(runtime::SubfileLayout::create(spec, {1, 1, chunks}),
                        "layout");
    simkit::Timeline wtl;
    std::vector<std::byte> global(spec.bytes(), std::byte{5});
    check(runtime::write_subfiles(endpoint, wtl, "ablate/d", layout, global),
          "write chunks");
    testbed.system.reset_time();
    prt::LocalBox slice;
    slice.extent = {prt::Extent{0, 64}, prt::Extent{0, 64}, prt::Extent{9, 10}};
    std::vector<std::byte> out(slice.volume());
    simkit::Timeline tl;
    check(runtime::read_subfiles_box(endpoint, tl, "ablate/d", layout, slice,
                                     out),
          "read slice");
    std::printf("%8d %16llu %14.2f\n", chunks,
                static_cast<unsigned long long>(layout.chunks_touched(slice)),
                tl.now());
  }
  std::printf("(more chunks -> less data fetched for a slice, until the\n"
              " per-file fixed costs dominate)\n");
}

void ablation_jitter() {
  std::printf("\n-- E. WAN jitter sensitivity (paper footnote 4) ----------\n");
  std::printf("%10s %12s %12s %12s\n", "jitter", "mean (s)", "min (s)",
              "max (s)");
  for (double jitter : {0.0, 0.1, 0.3}) {
    core::HardwareProfile profile = core::HardwareProfile::paper_2000();
    profile.wan_jitter = jitter;
    StatAccumulator acc;
    for (int rep = 0; rep < 5; ++rep) {
      profile.jitter_seed = 1000 + static_cast<std::uint64_t>(rep);
      core::StorageSystem system(profile);
      simkit::Timeline tl;
      auto& endpoint = system.endpoint(Location::kRemoteDisk);
      std::vector<std::byte> data(2ull << 20, std::byte{6});
      auto file = check(
          runtime::FileSession::start(endpoint, tl,
                                      "jit/t" + std::to_string(rep),
                                      srb::OpenMode::kOverwrite),
          "open");
      check(file.write(data), "write");
      check(file.finish(), "close");
      acc.add(tl.now());
    }
    std::printf("%10.2f %12.2f %12.2f %12.2f\n", jitter, acc.mean(), acc.min(),
                acc.max());
  }
}

void ablation_aggregators() {
  std::printf("\n-- F. two-phase aggregator count (8 MiB write) -----------\n");
  std::printf("%12s %22s %22s\n", "aggregators", "WAN-bound (s)",
              "striped-device (s)");
  // WAN-bound: the paper's testbed (one WAN path). Device-bound: a fast
  // network in front of a 4-way striped remote disk.
  core::HardwareProfile wan_bound = core::HardwareProfile::paper_2000();
  core::HardwareProfile striped = core::HardwareProfile::paper_2000();
  striped.wan_disk.bandwidth = 100.0e6;
  striped.remote_disk.write_bw = 1.0e6;
  striped.remote_disk_arms = 4;

  auto run_once = [](const core::HardwareProfile& profile, int aggregators) {
    core::StorageSystem system(profile);
    auto d = check(prt::Decomposition::create({128, 128, 128}, 4, "BBB"),
                   "decomp");
    runtime::ArrayLayout layout{d, 4};
    double total = 0.0;
    prt::World world(4);
    world.run([&](prt::Comm& comm) {
      const prt::LocalBox box = layout.decomp.local_box(comm.rank());
      std::vector<std::byte> block(box.volume() * 4, std::byte{7});
      check(runtime::write_array(system.endpoint(Location::kRemoteDisk), comm,
                                 "ablate/f", layout, block,
                                 runtime::IoMethod::kCollective,
                                 srb::OpenMode::kOverwrite, {aggregators}),
            "write");
      if (comm.rank() == 0) total = comm.timeline().now();
    });
    return total;
  };
  for (int aggregators : {1, 2, 4}) {
    std::printf("%12d %22.1f %22.1f\n", aggregators,
                run_once(wan_bound, aggregators),
                run_once(striped, aggregators));
  }
  std::printf("(one WAN path cannot be split — the paper's single-write\n"
              " collective is optimal there; striped devices reward more\n"
              " aggregators)\n");
}

void ablation_hsm() {
  std::printf("\n-- G. HPSS hierarchy: bare tapes vs staging cache --------\n");
  std::printf("%-22s %16s %16s\n", "archive config", "21 dumps (s)",
              "read-back (s)");
  for (bool staged : {false, true}) {
    core::HardwareProfile profile = core::HardwareProfile::paper_2000();
    if (staged) {
      profile.tape_cache_bytes = 4ull << 30;
      profile.tape_cache.cache_disk.read_bw = 10.0e6;
      profile.tape_cache.cache_disk.write_bw = 8.0e6;
      profile.tape_cache.cache_disk.per_op = 0.002;
    }
    core::StorageSystem system(profile);
    core::Session session(system, {.application = "hsm", .nprocs = 4,
                                   .iterations = 120});
    core::DatasetDesc desc;
    desc.name = "press";
    desc.dims = {64, 64, 64};
    desc.etype = core::ElementType::kFloat32;
    desc.frequency = 6;
    desc.location = core::Location::kRemoteTape;
    auto* handle = check(session.open(desc), "open");
    auto layout = check(handle->layout(4), "layout");
    double write_time = 0.0;
    prt::World world(4);
    world.run([&](prt::Comm& comm) {
      const prt::LocalBox box = layout.decomp.local_box(comm.rank());
      std::vector<std::byte> block(box.volume() * 4, std::byte{8});
      for (int t = 0; t <= 120; t += 6) {
        check(handle->write_timestep(comm, t, block), "dump");
      }
      if (comm.rank() == 0) write_time = comm.timeline().now();
    });
    system.reset_time();
    simkit::Timeline tl;
    for (int t = 0; t <= 120; t += 6) {
      check(handle->read_whole(t, {.timeline = &tl}).status(), "read");
    }
    std::printf("%-22s %16.1f %16.1f\n",
                staged ? "disk cache + tapes" : "bare tapes (paper)",
                write_time, tl.now());
  }
  std::printf("(the hierarchy the paper disabled: staging absorbs the tape\n"
              " latency; migrate_all() drains dirty data to the cartridges)\n");
}

void ablation_fastpath() {
  std::printf("\n-- H. remote fast path: batching, pipelining, pooling ----\n");
  std::printf("(every knob is OFF by default; each off-row IS the baseline)\n");

  // H1. Vectored RPC batching for naive strided reads: one kReadv per rank
  // instead of a seek+read round trip per run.
  {
    const std::array<std::uint64_t, 3> dims =
        full_scale() ? std::array<std::uint64_t, 3>{128, 128, 128}
                     : std::array<std::uint64_t, 3>{64, 64, 64};
    Testbed testbed;
    auto& endpoint = testbed.system.endpoint(Location::kRemoteDisk);
    auto d = check(prt::Decomposition::create(dims, 4, "BBB"), "decomp");
    runtime::ArrayLayout layout{d, 4};
    {
      prt::World world(4);
      world.run([&](prt::Comm& comm) {
        const prt::LocalBox box = layout.decomp.local_box(comm.rank());
        std::vector<std::byte> block(box.volume() * 4, std::byte{9});
        check(runtime::write_array(endpoint, comm, "ablate/h", layout, block,
                                   runtime::IoMethod::kCollective),
              "seed");
      });
    }
    double times[2] = {0.0, 0.0};
    int idx = 0;
    for (bool vectored : {false, true}) {
      testbed.system.reset_time();
      runtime::FastPathConfig cfg;
      cfg.vectored_rpc = vectored;
      endpoint.set_fast_path(cfg);
      prt::World world(4);
      world.run([&](prt::Comm& comm) {
        const prt::LocalBox box = layout.decomp.local_box(comm.rank());
        std::vector<std::byte> out(box.volume() * 4);
        check(runtime::read_array(endpoint, comm, "ablate/h", layout, out,
                                  runtime::IoMethod::kNaive),
              "naive read");
        if (comm.rank() == 0) times[idx] = comm.timeline().now();
      });
      ++idx;
    }
    endpoint.set_fast_path({});
    std::printf("%-34s %12s %12s %8s\n", "H1. vectored naive read (4 ranks)",
                "off (s)", "on (s)", "speedup");
    std::printf("%-34s %12.2f %12.2f %7.1fx\n", "", times[0], times[1],
                times[0] / times[1]);
  }

  // H2. Pipelined striped transfer of one bulk object: chunk round trips in
  // flight overlap the server's disk time with the WAN transmission.
  {
    const std::uint64_t bytes = full_scale() ? (16ull << 20) : (8ull << 20);
    std::printf("%-34s %12s %12s %12s\n", "H2. bulk transfer", "serial (s)",
                "1-stream", "4-stream");
    for (bool write_side : {false, true}) {
      Testbed testbed;
      auto& endpoint = testbed.system.endpoint(Location::kRemoteDisk);
      std::vector<std::byte> data(bytes, std::byte{10});
      if (!write_side) {
        simkit::Timeline tl;
        auto file = check(runtime::FileSession::start(
                              endpoint, tl, "ablate/h2", srb::OpenMode::kOverwrite),
                          "seed");
        check(file.write(data), "seed write");
        check(file.finish(), "seed close");
      }
      double t[3] = {0.0, 0.0, 0.0};
      int idx = 0;
      for (int streams : {0, 1, 4}) {
        testbed.system.reset_time();
        runtime::FastPathConfig cfg;
        if (streams > 0) {
          cfg.pipelined_transfers = true;
          cfg.streams = static_cast<std::uint32_t>(streams);
        }
        endpoint.set_fast_path(cfg);
        simkit::Timeline tl;
        auto file = check(
            runtime::FileSession::start(endpoint, tl, "ablate/h2",
                                        write_side ? srb::OpenMode::kOverwrite
                                                   : srb::OpenMode::kRead),
            "open");
        if (write_side) {
          check(file.write(data), "write");
        } else {
          std::vector<std::byte> out(bytes);
          check(file.read(out), "read");
        }
        check(file.finish(), "close");
        t[idx++] = tl.now();
      }
      endpoint.set_fast_path({});
      auto* remote = dynamic_cast<runtime::RemoteEndpoint*>(endpoint.unwrap());
      const auto stats = remote->client().stats();
      std::printf("%-34s %12.2f %12.2f %12.2f\n",
                  write_side ? "    write" : "    read", t[0], t[1], t[2]);
      std::printf("%-34s overlap saved %.2f s across the pipelined runs\n", "",
                  stats.overlap_saved_seconds());
    }
  }

  // H3. Connection pooling: a multi-file session pays Tconn/Tconnclose once
  // instead of once per file (Eq. (1) billing stays honest: only physical
  // connects are charged).
  {
    const int kSessions = 5;
    std::printf("%-34s %12s %12s %14s\n", "H3. 5-file session", "off (s)",
                "on (s)", "hits/misses");
    Testbed testbed;
    auto& endpoint = testbed.system.endpoint(Location::kRemoteDisk);
    std::vector<std::byte> data(256ull << 10, std::byte{11});
    double times[2] = {0.0, 0.0};
    int idx = 0;
    for (bool pooled : {false, true}) {
      testbed.system.reset_time();
      runtime::FastPathConfig cfg;
      cfg.connection_pool = pooled;
      endpoint.set_fast_path(cfg);
      simkit::Timeline tl;
      for (int s = 0; s < kSessions; ++s) {
        auto file = check(
            runtime::FileSession::start(endpoint, tl,
                                        "ablate/h3-" + std::to_string(s),
                                        srb::OpenMode::kOverwrite),
            "open");
        check(file.write(data), "write");
        check(file.finish(), "close");
      }
      auto* remote = dynamic_cast<runtime::RemoteEndpoint*>(endpoint.unwrap());
      if (pooled) check(remote->client().drain(tl), "drain");
      times[idx++] = tl.now();
    }
    endpoint.set_fast_path({});
    auto* remote = dynamic_cast<runtime::RemoteEndpoint*>(endpoint.unwrap());
    const auto stats = remote->client().stats();
    std::printf("%-34s %12.2f %12.2f %8llu/%llu\n", "", times[0], times[1],
                static_cast<unsigned long long>(stats.pool_hits),
                static_cast<unsigned long long>(stats.pool_misses));
    std::printf("(pooling amortizes Tconn: ~one physical setup per session)\n");
  }
}

int run() {
  print_header("Ablations — run-time optimization design choices",
               "DESIGN.md ablation index (collective, sieving, async, "
               "subfile, jitter, aggregators, HSM hierarchy, remote fast "
               "path)");
  ablation_collective();
  ablation_sieving();
  ablation_async();
  ablation_subfile();
  ablation_jitter();
  ablation_aggregators();
  ablation_hsm();
  ablation_fastpath();
  return 0;
}

}  // namespace
}  // namespace msra::bench

int main() { return msra::bench::run(); }
