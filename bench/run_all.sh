#!/usr/bin/env bash
# Runs the figure benchmarks and collects machine-readable summaries
# (BENCH_fig6.json ... BENCH_fig9.json) in one place.
#
# Usage:   bench/run_all.sh [BUILD_DIR] [OUT_DIR]
# Default: BUILD_DIR=build, OUT_DIR=bench-results
# Env:     MSRA_FULL_SCALE=1 for the paper's Table 2 scale.
set -euo pipefail

BUILD_DIR="${1:-build}"
OUT_DIR="${2:-bench-results}"
BENCH_DIR="${BUILD_DIR}/bench"

if [[ ! -d "${BENCH_DIR}" ]]; then
  echo "error: ${BENCH_DIR} not found — build first:" >&2
  echo "  cmake -B ${BUILD_DIR} -S . && cmake --build ${BUILD_DIR} -j" >&2
  exit 1
fi

mkdir -p "${OUT_DIR}"

run() {
  local name="$1" fig="$2"
  echo "==> ${name}"
  "${BENCH_DIR}/${name}" --json "${OUT_DIR}/BENCH_${fig}.json"
  echo
}

run bench_fig6_localdisk  fig6
run bench_fig7_remotedisk fig7
run bench_fig8_remotetape fig8
run bench_fig9_astro3d    fig9
run bench_migration       migration
run bench_contention      contention
run bench_fleet           fleet
run bench_cache           cache
run bench_cluster         cluster
run bench_qos             qos
run bench_flow            flow

echo "Summaries:"
ls -l "${OUT_DIR}"/BENCH_*.json

# Parity guard: the simulated testbed is deterministic, so the figure
# summaries must be byte-identical to the committed baselines. Any drift
# means a code change altered the virtual-time model — intended changes
# must re-commit bench/baselines/. (The baselines hold the reduced-scale
# numbers, so the guard only applies without MSRA_FULL_SCALE.)
if [[ "${MSRA_FULL_SCALE:-0}" != "1" ]]; then
  BASELINE_DIR="$(dirname "$0")/baselines"
  drift=0
  for fig in fig6 fig7 fig8 fig9 migration contention fleet cache cluster qos flow; do
    if ! diff -u "${BASELINE_DIR}/BENCH_${fig}.json" \
                 "${OUT_DIR}/BENCH_${fig}.json"; then
      echo "PARITY DRIFT: ${fig} differs from ${BASELINE_DIR}" >&2
      drift=1
    fi
  done
  if [[ "${drift}" != "0" ]]; then
    echo "bench parity check FAILED (see diffs above)" >&2
    exit 1
  fi
  echo "bench parity check passed: summaries match committed baselines"
fi
