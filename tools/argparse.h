// Minimal command-line parsing for msractl: --flag, --key value, --key=value
// and positional arguments.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace msra::tools {

class Args {
 public:
  /// Parses argv[start..); values may be "--key value" or "--key=value";
  /// bare "--key" followed by another option (or nothing) is a boolean flag.
  /// "--hint name=LOC" style options may repeat and accumulate.
  static Args parse(int argc, char** argv, int start = 1) {
    Args out;
    for (int i = start; i < argc; ++i) {
      std::string token = argv[i];
      if (token.rfind("--", 0) != 0) {
        out.positional_.push_back(std::move(token));
        continue;
      }
      token.erase(0, 2);
      std::string value;
      const auto eq = token.find('=');
      if (eq != std::string::npos) {
        value = token.substr(eq + 1);
        token.resize(eq);
      } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        value = argv[++i];
      }
      out.options_[token].push_back(std::move(value));
    }
    return out;
  }

  bool has(const std::string& key) const { return options_.count(key) != 0; }

  std::string get(const std::string& key, const std::string& fallback = "") const {
    auto it = options_.find(key);
    if (it == options_.end() || it->second.empty()) return fallback;
    return it->second.back();
  }

  std::int64_t get_int(const std::string& key, std::int64_t fallback) const {
    auto it = options_.find(key);
    if (it == options_.end() || it->second.empty() || it->second.back().empty()) {
      return fallback;
    }
    return std::stoll(it->second.back());
  }

  /// All values supplied for a repeatable option.
  std::vector<std::string> get_all(const std::string& key) const {
    auto it = options_.find(key);
    return it == options_.end() ? std::vector<std::string>{} : it->second;
  }

  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::map<std::string, std::vector<std::string>> options_;
  std::vector<std::string> positional_;
};

}  // namespace msra::tools
