// msractl — command-line front end to the multi-storage resource
// architecture (the role the paper's IJ-GUI plays: submit runs, inspect the
// catalog, run post-processing, and get I/O predictions).
//
// With --root DIR, disk-resident datasets and the metadata database persist
// on the host filesystem, so workflows span processes:
//
//   msractl ptool   --root /tmp/msra
//   msractl run     --root /tmp/msra --dims 48,48,48 --iterations 24
//                   --hint temp=REMOTEDISK --hint vr_temp=LOCALDISK
//   msractl catalog --root /tmp/msra
//   msractl mse     --root /tmp/msra --dataset temp
//   msractl volren  --root /tmp/msra --dataset vr_temp --superfile
//   msractl slice   --root /tmp/msra --dataset temp --timestep 12 --index 24
//   msractl predict --root /tmp/msra --dims 128,128,128 --iterations 120
//   msractl advise  --root /tmp/msra --dims 64,64,64 --iterations 60
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>

#include "apps/astro3d/astro3d.h"
#include "apps/imgview/image.h"
#include "apps/mse/mse.h"
#include "apps/vizlib/vizlib.h"
#include "apps/volren/volren.h"
#include "argparse.h"
#include "cache/cache.h"
#include "common/bytes.h"
#include "core/balancer.h"
#include "core/placement.h"
#include "flow/pricer.h"
#include "flow/run.h"
#include "migrate/engine.h"
#include "obs/report.h"
#include "predict/advisor.h"
#include "predict/ptool.h"
#include "qos/admission.h"
#include "qos/policy.h"

namespace msra::tools {
namespace {

int usage() {
  std::fprintf(stderr,
               "usage: msractl <command> [--root DIR] [--servers N]\n"
               "       [--balancer balanced|round-robin|static] [options]\n"
               "commands:\n"
               "  ptool     populate the I/O performance database\n"
               "            (--contended adds the 2/4/8-client curves;\n"
               "            --cache probes the mid-tier read cache)\n"
               "  predict   predict a run's I/O time (Eq. 1 + Eq. 2)\n"
               "            (--load N [--util U] prices under N concurrent\n"
               "            clients / background utilization U in [0,1))\n"
               "  explain   print one dataset's lowered I/O plan with\n"
               "            per-stage predicted cost (--json [FILE],\n"
               "            --load N [--util U])\n"
               "  advise    performance-aware placement recommendation\n"
               "  run       run the Astro3D producer\n"
               "  mse       data analysis over a dataset (--dataset)\n"
               "  volren    parallel volume rendering (--dataset)\n"
               "  slice     extract + print a z-slice (--dataset --timestep --index)\n"
               "  replicate copy a dumped timestep to another resource (--to)\n"
               "  histogram value histogram of a float dataset timestep\n"
               "  catalog   list registered datasets and dumped instances\n"
               "  resources per-resource capacity, usage, state and replica\n"
               "            counts, one row per (class, server) (--json)\n"
               "  cluster   per-server site state (capacity, load, queue\n"
               "            wait) plus the balancer's quote table\n"
               "            (--size-mb N, --json)\n"
               "  migrate   predictor-priced migration engine:\n"
               "            migrate plan|run|watch [--hot name[=reads]]\n"
               "            [--throttle-mb N] [--batch-mb N] [--rounds N]\n"
               "            [--json]\n"
               "  flow      workflow-aware campaign scheduler:\n"
               "            flow plan|run|watch|explain [--dataset NAME]\n"
               "            [--timesteps N] [--location HINT]\n"
               "            [--throttle-mb N] [--no-staging] [--rounds N]\n"
               "            [--json]\n"
               "  stats     probe every resource and print the Eq. 1 telemetry\n"
               "            breakdown, the device contention table and the\n"
               "            per-class QoS table (--size-mb N, --json FILE)\n"
               "  qos       show or set the persisted QoS policy:\n"
               "            [--discipline fifo|wfq|edf] [--weight CLASS=W]\n"
               "            [--deadline CLASS=SECONDS] [--slo CLASS=SECONDS]\n"
               "            [--admission on|off] [--clear] [--json]\n"
               "  cache     priced mid-tier read cache:\n"
               "            cache stats|flush|explain <dataset>\n"
               "            [--cache-mb N] [--spill-mb N] [--warm name[=rounds]]\n"
               "            [--hot name[=reads]] [--json]\n");
  return 2;
}

template <typename T>
T die_on_error(StatusOr<T> value, const char* what) {
  if (!value.ok()) {
    std::fprintf(stderr, "msractl: %s: %s\n", what,
                 value.status().to_string().c_str());
    std::exit(1);
  }
  return std::move(value).value();
}

void die_on_error(const Status& status, const char* what) {
  if (!status.ok()) {
    std::fprintf(stderr, "msractl: %s: %s\n", what, status.to_string().c_str());
    std::exit(1);
  }
}

std::array<std::uint64_t, 3> parse_dims(const std::string& text) {
  std::array<std::uint64_t, 3> dims = {64, 64, 64};
  if (text.empty()) return dims;
  std::sscanf(text.c_str(), "%llu,%llu,%llu",
              reinterpret_cast<unsigned long long*>(&dims[0]),
              reinterpret_cast<unsigned long long*>(&dims[1]),
              reinterpret_cast<unsigned long long*>(&dims[2]));
  return dims;
}

apps::astro3d::Config config_from(const Args& args) {
  apps::astro3d::Config config;
  config.dims = parse_dims(args.get("dims"));
  config.iterations = static_cast<int>(args.get_int("iterations", 24));
  config.analysis_freq = static_cast<int>(args.get_int("analysis-freq", 6));
  config.viz_freq = static_cast<int>(args.get_int("viz-freq", 6));
  config.checkpoint_freq = static_cast<int>(args.get_int("checkpoint-freq", 6));
  config.nprocs = static_cast<int>(args.get_int("nprocs", 4));
  config.resume = args.has("resume");
  config.default_location =
      die_on_error(core::parse_location(args.get("default", "REMOTETAPE")),
                   "bad --default");
  for (const std::string& hint : args.get_all("hint")) {
    const auto eq = hint.find('=');
    if (eq == std::string::npos) {
      std::fprintf(stderr, "msractl: bad --hint '%s' (want name=LOCATION)\n",
                   hint.c_str());
      std::exit(2);
    }
    config.hints[hint.substr(0, eq)] = die_on_error(
        core::parse_location(hint.substr(eq + 1)), "bad hint location");
  }
  return config;
}

// --load N (concurrent clients) and --util U (background device utilization
// in [0, 1)) switch the predictor into load-aware pricing. Omitting both
// keeps the classic dedicated-system prediction.
predict::LoadAssumptions load_from(const Args& args) {
  predict::LoadAssumptions load;
  load.clients = static_cast<double>(args.get_int("load", 1));
  load.utilization = std::strtod(args.get("util", "0").c_str(), nullptr);
  return load;
}

struct Env {
  std::unique_ptr<core::StorageSystem> system;
  std::unique_ptr<predict::PerfDb> perfdb;

  explicit Env(const Args& args) {
    core::HardwareProfile profile = core::HardwareProfile::paper_2000();
    // --tape-cache MB enables the HPSS staging hierarchy.
    const std::int64_t cache_mb = args.get_int("tape-cache", 0);
    if (cache_mb > 0) {
      profile.tape_cache_bytes = static_cast<std::uint64_t>(cache_mb) << 20;
      profile.tape_cache.cache_disk = profile.remote_disk;
    }
    // --servers N scales the SRB cluster out to N server sites (each with
    // its own remote disk/tape resources and WAN links).
    const std::int64_t servers = args.get_int("servers", 1);
    if (servers > 1) profile.cluster.servers = static_cast<int>(servers);
    system = std::make_unique<core::StorageSystem>(profile, args.get("root"));
    // --balancer balanced|round-robin|static picks the replica/server
    // routing policy for every read this invocation performs.
    if (args.has("balancer")) {
      system->balancer().set_policy(
          die_on_error(core::parse_balancer_policy(args.get("balancer")),
                       "bad --balancer"));
    }
    // A persisted QoS policy (set with `msractl qos`) governs every
    // invocation against the same data root.
    StatusOr<qos::QosConfig> qos_config = qos::load_config(system->metadb());
    if (qos_config.ok()) {
      die_on_error(system->enable_qos(*qos_config), "installing qos policy");
    }
    perfdb = std::make_unique<predict::PerfDb>(&system->metadb());
  }
  ~Env() {
    if (system) {
      Status status = system->save_metadata();
      if (!status.ok()) {
        std::fprintf(stderr, "msractl: metadata save failed: %s\n",
                     status.to_string().c_str());
      }
    }
  }
};

int cmd_ptool(const Args& args) {
  Env env(args);
  predict::PToolConfig config;
  config.repeats = static_cast<int>(args.get_int("repeats", 3));
  config.measure_contended = args.has("contended");
  config.measure_cache = args.has("cache");
  // The cache probe needs a live cache endpoint; a default-sized one is
  // fine — the perf_cache_* tables only depend on the tier models.
  if (config.measure_cache && env.system->cache() == nullptr) {
    env.system->enable_cache(cache::CacheConfig{}, nullptr);
  }
  predict::PTool ptool(*env.system, *env.perfdb);
  die_on_error(ptool.measure_all(config), "ptool");
  std::printf("performance database populated: %zu transfer points, "
              "fixed costs for 3 resources x 2 directions\n",
              env.perfdb->rw_point_count());
  if (config.measure_contended) {
    std::printf("contended curves measured at");
    for (int clients : config.contended_levels) std::printf(" %d", clients);
    std::printf(" concurrent client(s)\n");
  }
  if (config.measure_cache) {
    std::printf("cache tier probed into perf_cache_* (fixed costs + %zu "
                "read points)\n", config.sizes.size());
  }
  return 0;
}

std::vector<std::pair<core::DatasetDesc, core::Location>> plan_of(
    const apps::astro3d::Config& config) {
  std::vector<std::pair<core::DatasetDesc, core::Location>> plan;
  for (const auto& desc : apps::astro3d::dataset_descs(config)) {
    const core::Location resolved = desc.location == core::Location::kAuto
                                        ? core::Location::kRemoteTape
                                        : desc.location;
    plan.emplace_back(desc, resolved);
  }
  return plan;
}

int cmd_predict(const Args& args) {
  Env env(args);
  const auto config = config_from(args);
  predict::Predictor predictor(env.perfdb.get());
  const predict::LoadAssumptions load = load_from(args);
  auto prediction = die_on_error(
      predictor.predict_run(plan_of(config), config.iterations, config.nprocs,
                            predict::IoOp::kWrite, load),
      "prediction (run `msractl ptool` first?)");
  if (!load.dedicated()) {
    std::printf("load-aware: %.0f concurrent client(s), %.0f%% background "
                "utilization\n",
                load.clients, load.utilization * 100.0);
  }
  std::printf("%-16s %-12s %6s %14s\n", "NAME", "LOCATION", "DUMPS",
              "VIRTUALTIME(s)");
  for (const auto& d : prediction.datasets) {
    std::printf("%-16s %-12s %6llu %14.2f\n", d.name.c_str(),
                core::location_name(d.location).data(),
                static_cast<unsigned long long>(d.dumps), d.total);
  }
  std::printf("%-16s %-12s %6s %14.2f\n", "TOTAL", "", "", prediction.total);
  return 0;
}

std::string_view plan_stage_kind_name(runtime::PlanStageKind kind) {
  switch (kind) {
    case runtime::PlanStageKind::kSetup: return "setup";
    case runtime::PlanStageKind::kIo: return "io";
    case runtime::PlanStageKind::kCopy: return "copy";
    case runtime::PlanStageKind::kTeardown: return "teardown";
    case runtime::PlanStageKind::kExchange: return "exchange";
    case runtime::PlanStageKind::kSession: return "session";
  }
  return "?";
}

// Lowers one dataset's per-dump access to the same IoPlan the runtime
// executes and the predictor prices, then prints the stage tree with
// per-stage Eq. (1) costs. The total is the exact `msractl predict` number.
int cmd_explain(const Args& args) {
  Env env(args);
  const auto config = config_from(args);
  std::string name = args.get("dataset");
  if (!args.positional().empty()) name = args.positional().front();
  if (name.empty()) {
    std::fprintf(stderr,
                 "usage: msractl explain <dataset> [--json [FILE]] "
                 "[--op read|write] [run options]\n");
    return 2;
  }
  const auto descs = apps::astro3d::dataset_descs(config);
  const core::DatasetDesc* desc = nullptr;
  for (const auto& d : descs) {
    if (d.name == name) desc = &d;
  }
  if (desc == nullptr) {
    std::fprintf(stderr, "msractl: unknown dataset '%s'; run datasets:",
                 name.c_str());
    for (const auto& d : descs) std::fprintf(stderr, " %s", d.name.c_str());
    std::fprintf(stderr, "\n");
    return 2;
  }
  const core::Location resolved = desc->location == core::Location::kAuto
                                      ? core::Location::kRemoteTape
                                      : desc->location;
  const predict::IoOp op = args.get("op", "write") == "read"
                               ? predict::IoOp::kRead
                               : predict::IoOp::kWrite;
  predict::Predictor predictor(env.perfdb.get());
  const predict::LoadAssumptions load = load_from(args);
  auto prediction = die_on_error(
      predictor.predict_dataset(*desc, resolved, config.iterations,
                                config.nprocs, op,
                                predict::FastPathAssumptions{}, load),
      "prediction (run `msractl ptool` first?)");
  if (prediction.location == core::Location::kDisable) {
    std::printf("%s: DISABLE — never dumped, zero I/O cost\n", name.c_str());
    return 0;
  }
  // Rebuild the plan the prediction priced, for the stage breakdown.
  auto decomp = die_on_error(
      prt::Decomposition::create(desc->dims, config.nprocs, desc->pattern),
      "decompose");
  runtime::ArrayLayout layout{decomp, core::element_size(desc->etype)};
  const runtime::PlanDir dir = op == predict::IoOp::kWrite
                                   ? runtime::PlanDir::kWrite
                                   : runtime::PlanDir::kRead;
  auto plan = die_on_error(
      runtime::PlanBuilder::dataset_dump(layout, desc->method,
                                         desc->aggregators, dir),
      "lowering");
  auto stages =
      die_on_error(predictor.price_stages(plan, resolved, load), "pricing");
  if (!load.dedicated() && !args.has("json")) {
    std::printf("load-aware: %.0f concurrent client(s), %.0f%% background "
                "utilization\n",
                load.clients, load.utilization * 100.0);
  }

  if (args.has("json")) {
    std::string json = "{";
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "\"dataset\":\"%s\",\"location\":\"%s\","
                  "\"direction\":\"%s\",\"method\":\"%s\","
                  "\"vectored\":%s,\"pipelined\":%s,\"pooled\":%s,",
                  desc->name.c_str(), core::location_name(resolved).data(),
                  io_op_name(op).data(),
                  runtime::io_method_name(desc->method).data(),
                  plan.vectored ? "true" : "false",
                  plan.pipelined ? "true" : "false",
                  plan.pooled ? "true" : "false");
    json += buf;
    json += "\"stages\":[";
    for (std::size_t i = 0; i < stages.size(); ++i) {
      std::snprintf(buf, sizeof(buf),
                    "%s{\"kind\":\"%s\",\"label\":\"%s\",\"repeat\":%llu,"
                    "\"ops\":%zu,\"seconds\":%.9g}",
                    i == 0 ? "" : ",",
                    plan_stage_kind_name(stages[i].kind).data(),
                    stages[i].label.c_str(),
                    static_cast<unsigned long long>(stages[i].repeat),
                    plan.stages[i].ops.size(), stages[i].seconds);
      json += buf;
    }
    std::snprintf(buf, sizeof(buf),
                  "],\"dumps\":%llu,\"calls_per_dump\":%llu,"
                  "\"call_bytes\":%llu,\"call_time\":%.9g,"
                  "\"connection_time\":%.9g,\"total\":%.9g}",
                  static_cast<unsigned long long>(prediction.dumps),
                  static_cast<unsigned long long>(prediction.calls_per_dump),
                  static_cast<unsigned long long>(prediction.call_bytes),
                  prediction.call_time, prediction.connection_time,
                  prediction.total);
    json += buf;
    const std::string path = args.get("json");
    if (path.empty()) {
      std::printf("%s\n", json.c_str());
    } else {
      std::FILE* f = std::fopen(path.c_str(), "w");
      if (f == nullptr) {
        std::fprintf(stderr, "msractl: cannot write %s\n", path.c_str());
        return 1;
      }
      std::fwrite(json.data(), 1, json.size(), f);
      std::fputc('\n', f);
      std::fclose(f);
      std::printf("plan JSON written to %s\n", path.c_str());
    }
    return 0;
  }

  char dims[48];
  std::snprintf(dims, sizeof(dims), "%llux%llux%llu",
                static_cast<unsigned long long>(desc->dims[0]),
                static_cast<unsigned long long>(desc->dims[1]),
                static_cast<unsigned long long>(desc->dims[2]));
  std::printf("%s: %s %s, pattern %s, %s on %s\n", desc->name.c_str(), dims,
              core::element_type_name(desc->etype).data(),
              desc->pattern.c_str(),
              runtime::io_method_name(desc->method).data(),
              core::location_name(resolved).data());
  std::printf("lowered %s plan, one dump (%d rank(s)%s%s%s):\n",
              io_op_name(op).data(), config.nprocs,
              plan.vectored ? ", vectored" : "",
              plan.pipelined ? ", pipelined" : "",
              plan.pooled ? ", pooled connections" : "");
  for (std::size_t i = 0; i < stages.size(); ++i) {
    const auto& stage = stages[i];
    std::printf("  %-9s %-24s x%-6llu", plan_stage_kind_name(stage.kind).data(),
                stage.label.c_str(),
                static_cast<unsigned long long>(stage.repeat));
    if (stage.kind == runtime::PlanStageKind::kExchange) {
      std::printf(" %10s shuffled   (no native I/O)\n",
                  format_bytes(plan.stages[i].exchange_bytes).c_str());
    } else {
      std::printf(" %2zu op(s)  %12.6f s\n", plan.stages[i].ops.size(),
                  stage.seconds);
    }
  }
  std::printf("per dump: %llu call(s) x %s -> t_j(s) = %.6f s\n",
              static_cast<unsigned long long>(prediction.calls_per_dump),
              format_bytes(prediction.call_bytes).c_str(),
              prediction.call_time);
  std::printf("dumps %llu, connection setup %.6f s\n",
              static_cast<unsigned long long>(prediction.dumps),
              prediction.connection_time);
  std::printf("predicted I/O time %.2f simulated s (= `msractl predict` row)\n",
              prediction.total);
  return 0;
}

int cmd_advise(const Args& args) {
  Env env(args);
  auto config = config_from(args);
  config.default_location = core::Location::kAuto;  // let the advisor decide
  predict::Predictor predictor(env.perfdb.get());
  predict::PlacementAdvisor advisor(*env.system, predictor);
  auto plan = die_on_error(
      advisor.recommend_run(apps::astro3d::dataset_descs(config),
                            config.iterations, config.nprocs),
      "advice (run `msractl ptool` first?)");
  std::printf("%-16s %-12s\n", "NAME", "RECOMMENDED");
  for (const auto& [name, location] : plan) {
    std::printf("%-16s %-12s\n", name.c_str(),
                core::location_name(location).data());
  }
  return 0;
}

int cmd_run(const Args& args) {
  Env env(args);
  const auto config = config_from(args);
  core::Session session(*env.system,
                        {.application = args.get("app", "astro3d"),
                         .user = args.get("user", "demo"),
                         .nprocs = config.nprocs,
                         .iterations = config.iterations});
  auto result = die_on_error(apps::astro3d::run(session, config), "run");
  std::printf("run complete: %llu dumps, %s written, I/O time %.1f simulated s"
              "%s\n",
              static_cast<unsigned long long>(result.dumps),
              format_bytes(result.bytes_written).c_str(), result.io_time,
              result.start_iteration > 0 ? " (resumed)" : "");
  for (const auto& [name, location] : result.placements) {
    std::printf("  %-16s -> %s\n", name.c_str(),
                core::location_name(location).data());
  }
  return 0;
}

int cmd_mse(const Args& args) {
  Env env(args);
  core::Session session(*env.system, {.application = "msractl-mse"});
  auto result = die_on_error(
      apps::mse::run(session,
                     {.dataset = args.get("dataset", "temp"),
                      .nprocs = static_cast<int>(args.get_int("nprocs", 4))}),
      "mse");
  for (std::size_t i = 0; i < result.mse.size(); ++i) {
    std::printf("t%4d -> t%4d : %.8f\n", result.timesteps[i],
                result.timesteps[i + 1], result.mse[i]);
  }
  std::printf("read I/O: %.1f simulated s\n", result.io_time);
  return 0;
}

int cmd_volren(const Args& args) {
  Env env(args);
  core::Session session(*env.system, {.application = "msractl-volren"});
  apps::volren::Config config;
  config.dataset = args.get("dataset", "vr_temp");
  config.width = static_cast<int>(args.get_int("width", 128));
  config.height = static_cast<int>(args.get_int("height", 128));
  config.nprocs = static_cast<int>(args.get_int("nprocs", 4));
  config.use_superfile = args.has("superfile");
  config.image_location = die_on_error(
      core::parse_location(args.get("images", "LOCALDISK")), "bad --images");
  auto result = die_on_error(apps::volren::run(session, config), "volren");
  std::printf("%d images rendered (read %.1f s, write %.1f s)%s\n",
              result.images, result.read_io_time, result.write_io_time,
              config.use_superfile ? " [superfile]" : "");
  return 0;
}

int cmd_slice(const Args& args) {
  Env env(args);
  core::Session session(*env.system, {.application = "msractl-slice"});
  auto handle = die_on_error(
      session.open_existing(args.get("dataset", "temp")), "open dataset");
  simkit::Timeline tl;
  const auto axis_name = args.get("axis", "z");
  const auto axis = axis_name == "x"   ? apps::vizlib::Axis::kX
                    : axis_name == "y" ? apps::vizlib::Axis::kY
                                       : apps::vizlib::Axis::kZ;
  auto image = die_on_error(
      apps::vizlib::extract_slice(
          *handle, static_cast<int>(args.get_int("timestep", 0)), axis,
          static_cast<std::uint64_t>(args.get_int("index", 0)),
          {.timeline = &tl}),
      "slice");
  std::printf("%s", apps::imgview::ascii_render(image, 64).c_str());
  std::printf("(read %.2f simulated s)\n", tl.now());
  return 0;
}

int cmd_replicate(const Args& args) {
  Env env(args);
  core::Session session(*env.system, {.application = "msractl-replicate"});
  auto handle = die_on_error(
      session.open_existing(args.get("dataset", "temp")), "open dataset");
  // --to accepts server-qualified addresses ("REMOTEDISK@1"); a bare
  // location name is server 0.
  const auto destination = die_on_error(
      core::parse_address(args.get("to", "LOCALDISK")), "bad --to");
  simkit::Timeline tl;
  const int timestep = static_cast<int>(args.get_int("timestep", 0));
  die_on_error(handle->replicate_timestep(timestep, destination, {.timeline = &tl}),
               "replicate");
  std::printf("replicated %s t%d to %s in %.2f simulated s; replicas now:",
              handle->desc().name.c_str(), timestep,
              core::address_name(destination).c_str(), tl.now());
  for (core::ReplicaAddress address : handle->replica_addresses(timestep)) {
    std::printf(" %s", core::address_name(address).c_str());
  }
  std::printf("\n");
  return 0;
}

int cmd_histogram(const Args& args) {
  Env env(args);
  core::Session session(*env.system, {.application = "msractl-histogram"});
  auto handle = die_on_error(
      session.open_existing(args.get("dataset", "temp")), "open dataset");
  if (handle->desc().etype != core::ElementType::kFloat32) {
    std::fprintf(stderr, "msractl: histogram expects a float dataset\n");
    return 1;
  }
  simkit::Timeline tl;
  const int timestep = static_cast<int>(args.get_int("timestep", 0));
  auto raw = die_on_error(handle->read_whole(timestep, {.timeline = &tl}), "read");
  std::vector<float> volume(raw.size() / sizeof(float));
  std::memcpy(volume.data(), raw.data(), raw.size());
  float lo = volume[0], hi = volume[0];
  for (float v : volume) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  auto bins = apps::vizlib::field_histogram(volume, lo, hi, 16);
  std::uint64_t peak = 1;
  for (auto count : bins) peak = std::max(peak, count);
  std::printf("%s t%d: min %.4f max %.4f (read %.2f simulated s)\n",
              handle->desc().name.c_str(), timestep, lo, hi, tl.now());
  for (std::size_t b = 0; b < bins.size(); ++b) {
    const float edge = lo + (hi - lo) * static_cast<float>(b) / 16.0f;
    const int bar = static_cast<int>(48 * bins[b] / peak);
    std::printf("%10.4f | %-48.*s %llu\n", edge, bar,
                "################################################",
                static_cast<unsigned long long>(bins[b]));
  }
  return 0;
}

int cmd_catalog(const Args& args) {
  Env env(args);
  core::MetaCatalog catalog(&env.system->metadb());
  std::printf("%-12s %-16s %-10s %-6s %-14s %-12s %6s\n", "APP", "NAME",
              "AMODE", "ETYPE", "DIMS", "LOCATION", "DUMPS");
  for (const auto& record : catalog.all_datasets()) {
    const auto instances = catalog.instances(record.app, record.desc.name);
    char dims[32];
    std::snprintf(dims, sizeof(dims), "%llu,%llu,%llu",
                  static_cast<unsigned long long>(record.desc.dims[0]),
                  static_cast<unsigned long long>(record.desc.dims[1]),
                  static_cast<unsigned long long>(record.desc.dims[2]));
    std::printf("%-12s %-16s %-10s %-6s %-14s %-12s %6zu\n",
                record.app.c_str(), record.desc.name.c_str(),
                core::access_mode_name(record.desc.amode).data(),
                core::element_type_name(record.desc.etype).data(), dims,
                core::location_name(record.resolved).data(), instances.size());
  }
  return 0;
}

// Every (class, server) pair of the cluster, in static (failover) order:
// local disk has exactly one instance; remote classes one per server site.
std::vector<core::ReplicaAddress> cluster_addresses(
    const core::StorageSystem& system) {
  std::vector<core::ReplicaAddress> addresses;
  for (core::Location location : core::kConcreteLocations) {
    const int servers =
        location == core::Location::kLocalDisk ? 1 : system.cluster_size();
    for (int server = 0; server < servers; ++server) {
      addresses.push_back({location, server});
    }
  }
  return addresses;
}

// Per-resource capacity, usage, availability and replica census — the
// operator's view the planner prices against. One row per (class, server);
// a single-server cluster prints exactly the classic three rows.
int cmd_resources(const Args& args) {
  Env env(args);
  core::StorageSystem& system = *env.system;
  core::MetaCatalog catalog(&system.metadb());

  std::map<std::pair<int, int>, std::uint64_t> replica_count;
  for (const auto& record : catalog.all_instances()) {
    for (core::ReplicaAddress address : record.replicas) {
      ++replica_count[{static_cast<int>(address.location), address.server}];
    }
  }
  const auto replicas_on = [&replica_count](core::ReplicaAddress address) {
    return replica_count[{static_cast<int>(address.location), address.server}];
  };

  if (args.has("json")) {
    std::string json = "{\"resources\":[";
    char buf[256];
    bool first = true;
    for (core::ReplicaAddress address : cluster_addresses(system)) {
      runtime::StorageEndpoint& endpoint = system.endpoint(address);
      const bool bounded = endpoint.capacity() != UINT64_MAX;
      std::snprintf(buf, sizeof(buf),
                    "%s{\"name\":\"%s\",\"server\":%d,\"up\":%s,"
                    "\"capacity\":%lld,"
                    "\"used\":%llu,\"free\":%lld,\"replicas\":%llu}",
                    first ? "" : ",", core::address_name(address).c_str(),
                    address.server, endpoint.available() ? "true" : "false",
                    bounded ? static_cast<long long>(endpoint.capacity()) : -1,
                    static_cast<unsigned long long>(endpoint.used()),
                    bounded ? static_cast<long long>(endpoint.free_bytes()) : -1,
                    static_cast<unsigned long long>(replicas_on(address)));
      json += buf;
      first = false;
    }
    json += "]}";
    std::printf("%s\n", json.c_str());
    return 0;
  }

  std::printf("%-14s %-6s %12s %12s %12s %9s\n", "RESOURCE", "STATE",
              "CAPACITY", "USED", "FREE", "REPLICAS");
  for (core::ReplicaAddress address : cluster_addresses(system)) {
    runtime::StorageEndpoint& endpoint = system.endpoint(address);
    const bool bounded = endpoint.capacity() != UINT64_MAX;
    std::printf("%-14s %-6s %12s %12s %12s %9llu\n",
                core::address_name(address).c_str(),
                endpoint.available() ? "up" : "DOWN",
                bounded ? format_bytes(endpoint.capacity()).c_str() : "-",
                format_bytes(endpoint.used()).c_str(),
                bounded ? format_bytes(endpoint.free_bytes()).c_str() : "-",
                static_cast<unsigned long long>(replicas_on(address)));
  }
  return 0;
}

// Per-server cluster view plus the balancer's live quote table — what the
// cheapest-quote policy sees when it routes a read.
int cmd_cluster(const Args& args) {
  Env env(args);
  core::StorageSystem& system = *env.system;
  predict::Predictor predictor(env.perfdb.get());
  const std::uint64_t probe_bytes =
      static_cast<std::uint64_t>(
          std::max<std::int64_t>(1, args.get_int("size-mb", 16)))
      << 20;

  struct SiteRow {
    int server = 0;
    std::string name;
    bool disk_up = false;
    bool tape_up = false;
    std::uint64_t disk_capacity = 0;
    std::uint64_t disk_used = 0;
    std::uint64_t tape_used = 0;
    double utilization = 0.0;
    std::uint64_t reservations = 0;
    double total_wait = 0.0;
  };

  std::vector<SiteRow> sites;
  for (int s = 0; s < system.cluster_size(); ++s) {
    core::ServerSite& site = system.site(s);
    SiteRow row;
    row.server = s;
    row.name = site.server().name();
    const core::ReplicaAddress disk_address{core::Location::kRemoteDisk, s};
    const core::ReplicaAddress tape_address{core::Location::kRemoteTape, s};
    runtime::StorageEndpoint& disk = system.endpoint(disk_address);
    runtime::StorageEndpoint& tape = system.endpoint(tape_address);
    row.disk_up = disk.available();
    row.tape_up = tape.available();
    row.disk_capacity = disk.capacity();
    row.disk_used = disk.used();
    row.tape_used = tape.used();
    row.utilization =
        std::max(system.balancer().observed_utilization(disk_address),
                 system.balancer().observed_utilization(tape_address));
    std::vector<simkit::Resource*> devices = {
        &site.disk_resource().arm(), &site.server().cpu(),
        &site.disk_link().pipe(), &site.tape_link().pipe()};
    if (site.hsm() != nullptr) devices.push_back(&site.hsm()->cache_arm());
    for (auto& [name, resource] : site.tape_library().contended_resources()) {
      devices.push_back(resource);
    }
    for (simkit::Resource* device : devices) {
      const simkit::Resource::QueueStats q = device->queue_stats();
      row.reservations += q.reservations;
      row.total_wait += q.total_wait;
    }
    sites.push_back(std::move(row));
  }
  const auto mean_wait = [](const SiteRow& row) {
    return row.reservations > 0
               ? row.total_wait / static_cast<double>(row.reservations)
               : 0.0;
  };

  const std::vector<core::ServerQuote> quotes =
      system.balancer().quote_table(probe_bytes, &predictor);
  const std::string_view policy =
      core::balancer_policy_name(system.balancer().policy());

  if (args.has("json")) {
    std::string json = "{\"servers\":" + std::to_string(system.cluster_size()) +
                       ",\"policy\":\"" + std::string(policy) +
                       "\",\"sites\":[";
    char buf[320];
    for (std::size_t i = 0; i < sites.size(); ++i) {
      const SiteRow& row = sites[i];
      std::snprintf(buf, sizeof(buf),
                    "%s{\"server\":%d,\"name\":\"%s\",\"disk_up\":%s,"
                    "\"tape_up\":%s,\"disk_capacity\":%llu,\"disk_used\":%llu,"
                    "\"tape_used\":%llu,\"utilization\":%.6f,"
                    "\"queue_wait\":%.9g}",
                    i == 0 ? "" : ",", row.server, row.name.c_str(),
                    row.disk_up ? "true" : "false",
                    row.tape_up ? "true" : "false",
                    static_cast<unsigned long long>(row.disk_capacity),
                    static_cast<unsigned long long>(row.disk_used),
                    static_cast<unsigned long long>(row.tape_used),
                    row.utilization, mean_wait(row));
      json += buf;
    }
    json += "],\"quotes\":[";
    for (std::size_t i = 0; i < quotes.size(); ++i) {
      const core::ServerQuote& quote = quotes[i];
      std::snprintf(buf, sizeof(buf),
                    "%s{\"address\":\"%s\",\"up\":%s,\"utilization\":%.6f,"
                    "\"seconds\":%.9g}",
                    i == 0 ? "" : ",",
                    core::address_name(quote.address).c_str(),
                    quote.available ? "true" : "false", quote.utilization,
                    quote.seconds);
      json += buf;
    }
    json += "]}";
    std::printf("%s\n", json.c_str());
    return 0;
  }

  std::printf("cluster: %d server site(s), balancer policy %s\n",
              system.cluster_size(), std::string(policy).c_str());
  std::printf("%-6s %-8s %-6s %-6s %12s %12s %12s %6s %10s\n", "SERVER",
              "SITE", "DISK", "TAPE", "CAPACITY", "USED(DISK)", "USED(TAPE)",
              "UTIL", "QWAIT");
  for (const SiteRow& row : sites) {
    std::printf("%-6d %-8s %-6s %-6s %12s %12s %12s %5.0f%% %9.3fs\n",
                row.server, row.name.c_str(), row.disk_up ? "up" : "DOWN",
                row.tape_up ? "up" : "DOWN",
                format_bytes(row.disk_capacity).c_str(),
                format_bytes(row.disk_used).c_str(),
                format_bytes(row.tape_used).c_str(), row.utilization * 100.0,
                mean_wait(row));
  }
  std::printf("\nquote table (%s object read):\n",
              format_bytes(probe_bytes).c_str());
  std::printf("%-14s %-6s %6s %12s\n", "ADDRESS", "STATE", "UTIL", "QUOTE");
  for (const core::ServerQuote& quote : quotes) {
    char priced[32];
    if (quote.seconds >= 0.0) {
      std::snprintf(priced, sizeof(priced), "%11.3fs", quote.seconds);
    } else {
      std::snprintf(priced, sizeof(priced), "%12s", "unpriced");
    }
    std::printf("%-14s %-6s %5.0f%% %s\n",
                core::address_name(quote.address).c_str(),
                quote.available ? "up" : "DOWN", quote.utilization * 100.0,
                priced);
  }
  return 0;
}

migrate::MigrationConfig migrate_config_from(const Args& args) {
  migrate::MigrationConfig config;
  config.enabled = true;  // the CLI *is* the explicit opt-in
  config.throttle_bytes_per_sec =
      static_cast<std::uint64_t>(std::max<std::int64_t>(
          0, args.get_int("throttle-mb", 0)))
      << 20;
  config.max_batch_bytes = static_cast<std::uint64_t>(std::max<std::int64_t>(
                               0, args.get_int("batch-mb", 0)))
                           << 20;
  config.hot_reads =
      static_cast<std::uint64_t>(std::max<std::int64_t>(
          0, args.get_int("hot-reads", 2)));
  if (args.has("pressure")) config.pressure_watermark = std::stod(args.get("pressure"));
  if (args.has("target")) config.target_watermark = std::stod(args.get("target"));
  config.workers = static_cast<int>(args.get_int("workers", 2));
  return config;
}

// The AccessTracker is in-process, so a fresh CLI process starts cold.
// --hot name[=reads] (repeatable) synthesizes read heat for a dataset so
// planning decisions are reproducible from the shell.
void seed_heat(core::StorageSystem& system, core::MetaCatalog& catalog,
               const Args& args) {
  for (const std::string& spec : args.get_all("hot")) {
    std::string name = spec;
    std::uint64_t reads = 4;
    if (const auto eq = spec.find('='); eq != std::string::npos) {
      name = spec.substr(0, eq);
      reads = static_cast<std::uint64_t>(std::stoll(spec.substr(eq + 1)));
    }
    bool matched = false;
    for (const auto& record : catalog.all_instances()) {
      const auto [app, dataset] = core::MetaCatalog::split_key(record.dataset_key);
      if (dataset != name && record.dataset_key != name) continue;
      matched = true;
      for (std::uint64_t i = 0; i < reads; ++i) {
        system.access_tracker().record_read(record.dataset_key, record.bytes,
                                            0.0);
      }
    }
    if (!matched) {
      std::fprintf(stderr, "msractl: --hot %s matches no dumped instance\n",
                   name.c_str());
    }
  }
}

std::string migration_step_json(const migrate::MigrationStep& step) {
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "{\"kind\":\"%s\",\"dataset\":\"%s/%s\",\"timestep\":%d,"
                "\"from\":\"%s\",\"to\":\"%s\",\"bytes\":%llu,"
                "\"drop_source\":%s,\"benefit\":%.9g,\"cost\":%.9g}",
                migrate::migration_kind_name(step.kind).data(),
                step.app.c_str(), step.name.c_str(), step.timestep,
                core::address_name(step.from).c_str(),
                core::address_name(step.to).c_str(),
                static_cast<unsigned long long>(step.bytes),
                step.drop_source ? "true" : "false", step.benefit, step.cost);
  return buf;
}

void print_plan(const migrate::MigrationPlan& plan) {
  std::printf("%-8s %-20s %5s %-26s %10s %10s %10s\n", "KIND", "DATASET", "T",
              "MOVE", "BYTES", "BENEFIT", "COST");
  for (const auto& step : plan.steps) {
    char move[64];
    if (step.kind == migrate::MigrationKind::kEvict) {
      std::snprintf(move, sizeof(move), "drop @%s",
                    core::address_name(step.from).c_str());
    } else {
      std::snprintf(move, sizeof(move), "%s -> %s",
                    core::address_name(step.from).c_str(),
                    core::address_name(step.to).c_str());
    }
    std::printf("%-8s %-20s %5d %-26s %10s %9.3fs %9.3fs\n",
                migrate::migration_kind_name(step.kind).data(),
                (step.app + "/" + step.name).c_str(), step.timestep, move,
                format_bytes(step.bytes).c_str(), step.benefit, step.cost);
  }
  std::printf("%zu step(s), %s payload, predicted benefit %.3f s, "
              "predicted cost %.3f s\n",
              plan.steps.size(), format_bytes(plan.total_bytes).c_str(),
              plan.predicted_benefit, plan.predicted_cost);
}

void print_report(const migrate::MigrationReport& report) {
  for (const auto& outcome : report.outcomes) {
    if (outcome.status.ok()) {
      std::printf("  ok   %-52s priced %8.3fs executed %8.3fs",
                  outcome.step.label().c_str(), outcome.priced_cost,
                  outcome.executed_seconds);
      if (outcome.throttle_wait > 0.0) {
        std::printf(" (throttled +%.3fs)", outcome.throttle_wait);
      }
      std::printf("\n");
    } else {
      std::printf("  FAIL %-52s %s\n", outcome.step.label().c_str(),
                  outcome.status.to_string().c_str());
    }
  }
  std::printf("moved %s, dropped %llu source replica(s), "
              "executed %.3f simulated s, %zu failure(s)\n",
              format_bytes(report.moved_bytes).c_str(),
              static_cast<unsigned long long>(report.dropped_replicas),
              report.executed_seconds, report.failures());
}

std::string migration_report_json(const migrate::MigrationReport& report) {
  std::string json = "{\"outcomes\":[";
  char buf[256];
  for (std::size_t i = 0; i < report.outcomes.size(); ++i) {
    const auto& outcome = report.outcomes[i];
    if (i > 0) json += ",";
    json += "{\"step\":" + migration_step_json(outcome.step);
    std::snprintf(buf, sizeof(buf),
                  ",\"ok\":%s,\"priced_cost\":%.9g,\"executed_seconds\":%.9g,"
                  "\"throttle_wait\":%.9g}",
                  outcome.status.ok() ? "true" : "false", outcome.priced_cost,
                  outcome.executed_seconds, outcome.throttle_wait);
    json += buf;
  }
  std::snprintf(buf, sizeof(buf),
                "],\"moved_bytes\":%llu,\"dropped_replicas\":%llu,"
                "\"executed_seconds\":%.9g,\"failures\":%zu}",
                static_cast<unsigned long long>(report.moved_bytes),
                static_cast<unsigned long long>(report.dropped_replicas),
                report.executed_seconds, report.failures());
  json += buf;
  return json;
}

int cmd_migrate(const Args& args) {
  const std::string verb =
      args.positional().empty() ? "plan" : args.positional().front();
  if (verb != "plan" && verb != "run" && verb != "watch") {
    std::fprintf(stderr, "usage: msractl migrate plan|run|watch [options]\n");
    return 2;
  }
  Env env(args);
  core::MetaCatalog catalog(&env.system->metadb());
  seed_heat(*env.system, catalog, args);
  predict::Predictor predictor(env.perfdb.get());
  migrate::MigrationEngine engine(*env.system, predictor,
                                  migrate_config_from(args));

  if (verb == "plan") {
    auto plan = die_on_error(engine.planner().plan(),
                             "migration planning (run `msractl ptool` first?)");
    if (args.has("json")) {
      std::string json = "{\"steps\":[";
      for (std::size_t i = 0; i < plan.steps.size(); ++i) {
        if (i > 0) json += ",";
        json += migration_step_json(plan.steps[i]);
      }
      char buf[160];
      std::snprintf(buf, sizeof(buf),
                    "],\"total_bytes\":%llu,\"predicted_benefit\":%.9g,"
                    "\"predicted_cost\":%.9g}",
                    static_cast<unsigned long long>(plan.total_bytes),
                    plan.predicted_benefit, plan.predicted_cost);
      json += buf;
      std::printf("%s\n", json.c_str());
    } else {
      print_plan(plan);
    }
    return 0;
  }

  if (verb == "run") {
    auto report = die_on_error(engine.run_once(),
                               "migration (run `msractl ptool` first?)");
    if (args.has("json")) {
      std::printf("%s\n", migration_report_json(report).c_str());
    } else {
      print_report(report);
    }
    return report.ok() ? 0 : 1;
  }

  // watch: run rounds until the planner finds nothing more to do.
  const int rounds = static_cast<int>(args.get_int("rounds", 10));
  int failures = 0;
  for (int round = 1; round <= rounds; ++round) {
    auto report = die_on_error(engine.run_once(),
                               "migration (run `msractl ptool` first?)");
    if (report.outcomes.empty()) {
      std::printf("round %d: catalog stable, nothing to migrate\n", round);
      break;
    }
    std::printf("round %d:\n", round);
    print_report(report);
    failures += static_cast<int>(report.failures());
  }
  return failures == 0 ? 0 : 1;
}

// ---- flow: whole-campaign scheduling --------------------------------------

/// The canonical Astro3D-shaped campaign over one dataset: sim dumps
/// `--timesteps` frames, mse reads every frame back, viz reads them again
/// after mse — two declared readers per frame, which is what makes
/// pre-staging pay for itself. Unregistered datasets are placed and
/// registered first so the pricer has a resolved placement to quote.
flow::Campaign flow_campaign(const Args& args, core::StorageSystem& system) {
  const std::string dataset = args.get("dataset", "temp");
  const int timesteps =
      static_cast<int>(std::max<std::int64_t>(1, args.get_int("timesteps", 2)));
  core::MetaCatalog catalog(&system.metadb());
  auto record = catalog.find_dataset(dataset);
  std::string app = "astro";
  core::DatasetDesc desc;
  if (record.ok()) {
    app = record->app;
    desc = record->desc;
  } else {
    desc.name = dataset;
    desc.dims = parse_dims(args.get("dims"));
    desc.etype = core::ElementType::kFloat32;
    desc.frequency = 1;
    desc.location = die_on_error(
        core::parse_location(args.get("location", "REMOTETAPE")),
        "bad --location");
    auto decision = die_on_error(
        core::PlacementPolicy::resolve(system, desc, timesteps),
        "placing the campaign dataset");
    die_on_error(catalog.register_dataset(app, desc, decision.location),
                 "registering the campaign dataset");
  }

  flow::Campaign campaign("campaign-" + dataset, app);
  core::Workload sim;
  sim.open(desc);
  for (int t = 0; t < timesteps; ++t) sim.dump(dataset, t);
  sim.finalize();
  campaign.stage("sim", std::move(sim));
  core::Workload mse;
  mse.open_existing(dataset);
  for (int t = 0; t < timesteps; ++t) mse.read_whole(dataset, t);
  mse.finalize();
  campaign.stage("mse", std::move(mse));
  core::Workload viz;
  viz.open_existing(dataset);
  for (int t = 0; t < timesteps; ++t) viz.read_whole(dataset, t);
  viz.finalize();
  campaign.stage("viz", std::move(viz));
  campaign.after("viz", "mse");
  return campaign;
}

flow::StagingConfig staging_config_from(const Args& args) {
  flow::StagingConfig config;
  const std::int64_t throttle_mb = args.get_int("throttle-mb", 0);
  if (throttle_mb > 0) {
    config.throttle_bytes_per_sec = static_cast<std::uint64_t>(throttle_mb)
                                    << 20;
  }
  return config;
}

std::string flow_task_json(const flow::StageTask& task) {
  char buf[320];
  std::snprintf(
      buf, sizeof(buf),
      "{\"kind\":\"%s\",\"dataset\":\"%s/%s\",\"timestep\":%d,"
      "\"from\":\"%s\",\"to\":\"%s\",\"bytes\":%llu,\"benefit\":%.9g,"
      "\"cost\":%.9g,\"start_at\":%.9g}",
      flow::stage_task_kind_name(task.kind).data(), task.app.c_str(),
      task.name.c_str(), task.timestep,
      core::address_name(task.from).c_str(),
      core::address_name(task.to).c_str(),
      static_cast<unsigned long long>(task.bytes), task.benefit, task.cost,
      task.start_at);
  return buf;
}

void print_flow_tasks(const std::vector<flow::StageTask>& tasks) {
  if (tasks.empty()) {
    std::printf("nothing to stage (inputs already sit on their best tier)\n");
    return;
  }
  for (const flow::StageTask& task : tasks) {
    std::printf("  %-9s %s/%s t%-3d %s -> %s  %8s  benefit %.3fs cost %.3fs "
                "start %.3fs\n",
                flow::stage_task_kind_name(task.kind).data(), task.app.c_str(),
                task.name.c_str(), task.timestep,
                core::address_name(task.from).c_str(),
                core::address_name(task.to).c_str(),
                format_bytes(task.bytes).c_str(), task.benefit, task.cost,
                task.start_at);
  }
}

std::string campaign_report_json(const flow::CampaignReport& report) {
  std::string json = "{\"campaign\":\"" + report.campaign + "\",\"stages\":[";
  char buf[256];
  for (std::size_t i = 0; i < report.stages.size(); ++i) {
    const flow::StageResult& stage = report.stages[i];
    if (i > 0) json += ",";
    std::snprintf(buf, sizeof(buf),
                  "{\"stage\":\"%s\",\"ok\":%s,\"started_at\":%.9g,"
                  "\"finished_at\":%.9g,\"latency\":%.9g}",
                  stage.stage.c_str(), stage.status.ok() ? "true" : "false",
                  stage.started_at, stage.finished_at, stage.latency());
    json += buf;
  }
  json += "],\"staging\":[";
  for (std::size_t i = 0; i < report.staging.size(); ++i) {
    const flow::StageOutcome& outcome = report.staging[i];
    if (i > 0) json += ",";
    json += flow_task_json(outcome.task);
    json.back() = ',';  // reopen the task object to append outcome fields
    std::snprintf(buf, sizeof(buf),
                  "\"ok\":%s,\"executed_seconds\":%.9g,\"finished_at\":%.9g}",
                  outcome.status.ok() ? "true" : "false",
                  outcome.executed_seconds, outcome.finished_at);
    json += buf;
  }
  std::snprintf(buf, sizeof(buf), "],\"makespan\":%.9g}", report.makespan);
  json += buf;
  return json;
}

void print_campaign_report(const flow::CampaignReport& report) {
  std::vector<obs::CampaignStageRow> rows;
  for (const flow::StageResult& stage : report.stages) {
    rows.push_back({stage.stage, stage.started_at, stage.finished_at,
                    stage.status.ok() ? "ok" : stage.status.to_string()});
  }
  std::printf("%s", obs::format_campaign_table(report.campaign, rows).c_str());
  if (!report.staging.empty()) {
    std::printf("staging moves:\n");
    for (const flow::StageOutcome& outcome : report.staging) {
      std::printf("  %-40s %s  %.3fs (finished %.3fs)\n",
                  outcome.task.label().c_str(),
                  outcome.status.ok() ? "ok" : outcome.status.to_string().c_str(),
                  outcome.executed_seconds, outcome.finished_at);
    }
  }
}

int cmd_flow(const Args& args) {
  const std::string verb =
      args.positional().empty() ? "explain" : args.positional().front();
  if (verb != "plan" && verb != "run" && verb != "watch" && verb != "explain") {
    std::fprintf(stderr,
                 "usage: msractl flow plan|run|watch|explain [--dataset NAME]\n"
                 "       [--timesteps N] [--location HINT] [--throttle-mb N]\n"
                 "       [--no-staging] [--rounds N] [--json]\n");
    return 2;
  }
  Env env(args);
  core::StorageSystem& system = *env.system;
  predict::Predictor predictor(env.perfdb.get());
  flow::Campaign campaign = flow_campaign(args, system);
  flow::StagingScheduler stager(system, &predictor, staging_config_from(args));
  // A persisted QoS policy with admission enabled also gates staging moves:
  // the mover defers when a move's quote would miss its class SLO.
  std::unique_ptr<qos::AdmissionController> admission;
  if (const qos::QosConfig* config = system.qos_config();
      config != nullptr && config->admission) {
    admission = std::make_unique<qos::AdmissionController>(system, &predictor,
                                                           *config);
    stager.set_admission(admission.get());
  }

  if (verb == "plan") {
    std::vector<flow::StageTask> tasks = stager.plan_prestage(campaign, {});
    if (args.has("json")) {
      std::string json = "{\"tasks\":[";
      for (std::size_t i = 0; i < tasks.size(); ++i) {
        if (i > 0) json += ",";
        json += flow_task_json(tasks[i]);
      }
      json += "]}";
      std::printf("%s\n", json.c_str());
    } else {
      std::printf("campaign %s prestage plan:\n", campaign.name().c_str());
      print_flow_tasks(tasks);
    }
    return 0;
  }

  if (verb == "explain") {
    flow::CampaignPricer pricer(system, predictor);
    auto price = die_on_error(pricer.price(campaign, &stager),
                              "campaign pricing (run `msractl ptool` first?)");
    if (args.has("json")) {
      std::string json =
          "{\"campaign\":\"" + campaign.name() + "\",\"stages\":[";
      char buf[320];
      for (std::size_t i = 0; i < price.stages.size(); ++i) {
        const flow::StagePriceRow& row = price.stages[i];
        if (i > 0) json += ",";
        json += "{\"stage\":\"" + row.stage + "\",\"class\":\"" +
                std::string(qos::tenant_class_name(row.tenant_class)) +
                "\",\"producers\":[";
        for (std::size_t j = 0; j < row.producers.size(); ++j) {
          if (j > 0) json += ",";
          json += std::to_string(row.producers[j]);
        }
        std::snprintf(buf, sizeof(buf),
                      "],\"seconds\":%.9g,\"start\":%.9g,\"finish\":%.9g,"
                      "\"intents\":[",
                      row.seconds, row.start, row.finish);
        json += buf;
        for (std::size_t j = 0; j < row.intents.size(); ++j) {
          const flow::IntentPrice& intent = row.intents[j];
          if (j > 0) json += ",";
          std::snprintf(buf, sizeof(buf),
                        "{\"kind\":\"%s\",\"dataset\":\"%s\",\"timestep\":%d,"
                        "\"address\":\"%s\",\"seconds\":%.9g,\"note\":\"%s\"}",
                        intent.kind == core::Workload::IoIntent::Kind::kWrite
                            ? "write"
                            : "read",
                        intent.dataset.c_str(), intent.timestep,
                        core::address_name(intent.address).c_str(),
                        intent.seconds, intent.note.c_str());
          json += buf;
        }
        json += "]}";
      }
      std::snprintf(buf, sizeof(buf), "],\"total\":%.9g,\"makespan\":%.9g}",
                    price.total, price.makespan);
      json += buf;
      std::printf("%s\n", json.c_str());
    } else {
      std::printf("campaign %s priced end-to-end (Eq. 2 over the DAG):\n",
                  campaign.name().c_str());
      for (std::size_t i = 0; i < price.stages.size(); ++i) {
        const flow::StagePriceRow& row = price.stages[i];
        std::printf("  [%zu] %-8s %-12s start %8.3fs finish %8.3fs (%0.3fs)\n",
                    i, row.stage.c_str(),
                    std::string(qos::tenant_class_name(row.tenant_class))
                        .c_str(),
                    row.start, row.finish, row.seconds);
        for (const flow::IntentPrice& intent : row.intents) {
          std::printf("        %-5s %s t%-3d @ %-14s %8.3fs  %s\n",
                      intent.kind == core::Workload::IoIntent::Kind::kWrite
                          ? "write"
                          : "read",
                      intent.dataset.c_str(), intent.timestep,
                      core::address_name(intent.address).c_str(),
                      intent.seconds, intent.note.c_str());
        }
      }
      std::printf("total %.3fs  makespan %.3fs\n", price.total,
                  price.makespan);
    }
    return 0;
  }

  flow::CampaignOptions options;
  options.predictor = &predictor;
  if (!args.has("no-staging")) options.stager = &stager;

  if (verb == "run") {
    core::Fleet fleet(system);
    auto report = die_on_error(fleet.submit_campaign(campaign, options),
                               "campaign run");
    if (args.has("json")) {
      std::printf("%s\n", campaign_report_json(report).c_str());
    } else {
      print_campaign_report(report);
    }
    return report.ok() ? 0 : 1;
  }

  // watch: rerun the campaign for --rounds rounds, makespan per round.
  const int rounds = static_cast<int>(args.get_int("rounds", 3));
  int failures = 0;
  for (int round = 1; round <= rounds; ++round) {
    system.reset_time();
    core::Fleet fleet(system);
    auto report = die_on_error(fleet.submit_campaign(campaign, options),
                               "campaign run");
    std::uint64_t staged = 0;
    for (const flow::StageOutcome& outcome : report.staging) {
      if (outcome.status.ok()) ++staged;
    }
    std::printf("round %d: makespan %.3fs, %llu staging moves\n", round,
                report.makespan, static_cast<unsigned long long>(staged));
    if (!report.ok()) ++failures;
  }
  return failures == 0 ? 0 : 1;
}

// Runs a deterministic probe (write, then seek + read half) against every
// available resource through the instrumented endpoints, then prints the
// Eq. (1) component breakdown. Every simulated second of the probe is
// advanced inside an instrumented primitive, so the table's TOTAL matches
// the billed timeline exactly — the same accounting a real workload gets.
int cmd_stats(const Args& args) {
  Env env(args);
  core::StorageSystem& system = *env.system;
  const std::uint64_t payload_bytes =
      static_cast<std::uint64_t>(std::max<std::int64_t>(
          1, args.get_int("size-mb", 2)))
      << 20;
  std::vector<std::byte> payload(payload_bytes, std::byte{0x5a});
  std::vector<std::byte> half(payload_bytes / 2);

  simkit::Timeline tl;
  for (core::Location location :
       {core::Location::kLocalDisk, core::Location::kRemoteDisk,
        core::Location::kRemoteTape}) {
    runtime::StorageEndpoint& endpoint = system.endpoint(location);
    if (!endpoint.available()) {
      std::printf("skipping %s (down)\n", core::location_name(location).data());
      continue;
    }
    const std::string path = "stats/probe";
    {
      auto file = die_on_error(
          runtime::FileSession::start(endpoint, tl, path,
                                      srb::OpenMode::kOverwrite),
          "stats probe write-open");
      die_on_error(file.write(payload), "stats probe write");
      die_on_error(file.finish(), "stats probe write-close");
    }
    {
      auto file = die_on_error(
          runtime::FileSession::start(endpoint, tl, path, srb::OpenMode::kRead),
          "stats probe read-open");
      die_on_error(file.seek(payload_bytes / 2), "stats probe seek");
      die_on_error(file.read(half), "stats probe read");
      die_on_error(file.finish(), "stats probe read-close");
    }
  }

  const auto rows = obs::io_breakdown(system.metrics());
  std::printf("Eq. (1) component breakdown (simulated seconds):\n%s",
              obs::format_io_table(rows).c_str());

  std::printf("\ndevice contention (queueing on shared resources):\n%s",
              obs::format_contention_table(system.resource_loads()).c_str());

  const std::vector<obs::QosClassRow> qos_rows = system.qos_breakdown();
  std::printf("\nper-class QoS (grant order: %s):\n%s",
              std::string(simkit::discipline_name(
                              system.qos_config() != nullptr
                                  ? system.qos_config()->discipline
                                  : simkit::DisciplineKind::kFifo))
                  .c_str(),
              obs::format_qos_table(qos_rows).c_str());
  double breakdown_sum = 0.0;
  for (const auto& row : rows) breakdown_sum += row.total();
  const double billed = tl.now();
  std::printf("\nbreakdown sum %.4f s; billed I/O time %.4f s", breakdown_sum,
              billed);
  if (billed > 0.0) {
    std::printf(" (%.2f%% accounted)", 100.0 * breakdown_sum / billed);
  }
  std::printf("\n");

  bool header = false;
  for (const auto& [name, value] : system.metrics().counters()) {
    if (value == 0 || name.rfind("io.", 0) == 0) continue;
    if (!header) {
      std::printf("\nevent counters:\n");
      header = true;
    }
    std::printf("  %-28s %llu\n", name.c_str(),
                static_cast<unsigned long long>(value));
  }

  const std::string json_path = args.get("json");
  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "msractl: cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::string json = system.metrics().to_json();
    // Splice the per-class QoS rows into the registry object: class_stats
    // live on the devices, not in the registry, so to_json misses them.
    json.pop_back();
    json += ",\"qos\":[";
    for (std::size_t i = 0; i < qos_rows.size(); ++i) {
      const obs::QosClassRow& row = qos_rows[i];
      if (i > 0) json += ',';
      json += "{\"class\":\"";
      obs::json_escape(json, row.tenant);
      json += "\",\"served\":" + std::to_string(row.served);
      json += ",\"wait_p50\":";
      obs::json_number(json, row.wait_p50);
      json += ",\"wait_p99\":";
      obs::json_number(json, row.wait_p99);
      json += ",\"wait_max\":";
      obs::json_number(json, row.wait_max);
      json += ",\"max_backlog\":";
      obs::json_number(json, row.max_backlog);
      json += ",\"deadline_misses\":" + std::to_string(row.deadline_misses);
      json += ",\"accepted\":" + std::to_string(row.accepted);
      json += ",\"redirected\":" + std::to_string(row.redirected);
      json += ",\"rejected\":" + std::to_string(row.rejected);
      json += '}';
    }
    json += "]}";
    std::fwrite(json.data(), 1, json.size(), f);
    std::fputc('\n', f);
    std::fclose(f);
    std::printf("\nregistry JSON written to %s\n", json_path.c_str());
  }
  return 0;
}

// Shows or updates the persisted QoS policy. Updates land in the metadata
// database (table "qos_config"), so every later invocation against the
// same --root — and any embedder that calls qos::load_config — schedules
// under the same discipline, weights, deadlines and SLOs.
int cmd_qos(const Args& args) {
  Env env(args);
  core::StorageSystem& system = *env.system;
  if (args.has("clear")) {
    if (meta::Table* table = system.metadb().table("qos_config")) {
      table->clear();
    }
    system.disable_qos();
    std::printf("qos policy cleared (devices grant FIFO)\n");
    return 0;
  }
  qos::QosConfig config = system.qos_config() != nullptr
                              ? *system.qos_config()
                              : qos::QosConfig{};
  bool changed = false;
  if (args.has("discipline")) {
    config.discipline =
        die_on_error(simkit::parse_discipline(args.get("discipline")),
                     "bad --discipline");
    changed = true;
  }
  const auto apply = [&](const char* key, double qos::ClassPolicy::*field) {
    for (const std::string& spec : args.get_all(key)) {
      const auto eq = spec.find('=');
      if (eq == std::string::npos) {
        std::fprintf(stderr, "msractl: bad --%s '%s' (want CLASS=VALUE)\n",
                     key, spec.c_str());
        std::exit(2);
      }
      const qos::TenantClass cls = die_on_error(
          qos::parse_tenant_class(spec.substr(0, eq)), "bad tenant class");
      config.policy(cls).*field = std::stod(spec.substr(eq + 1));
      changed = true;
    }
  };
  apply("weight", &qos::ClassPolicy::weight);
  apply("deadline", &qos::ClassPolicy::deadline);
  apply("slo", &qos::ClassPolicy::slo);
  if (args.has("admission")) {
    const std::string value = args.get("admission", "on");
    config.admission = value != "off" && value != "0" && value != "false";
    changed = true;
  }
  if (changed) {
    die_on_error(qos::save_config(system.metadb(), config),
                 "saving qos policy");
    die_on_error(system.enable_qos(config), "installing qos policy");
  }
  if (args.has("json")) {
    std::string json = "{\"discipline\":\"";
    json += std::string(simkit::discipline_name(config.discipline));
    json += "\",\"admission\":";
    json += config.admission ? "true" : "false";
    json += ",\"classes\":[";
    bool first = true;
    for (qos::TenantClass cls : qos::kAllTenantClasses) {
      const qos::ClassPolicy& policy = config.policy(cls);
      if (!first) json += ',';
      first = false;
      json += "{\"class\":\"";
      json += std::string(qos::tenant_class_name(cls));
      json += "\",\"weight\":";
      obs::json_number(json, policy.weight);
      json += ",\"deadline\":";
      obs::json_number(json, policy.deadline);
      json += ",\"slo\":";
      obs::json_number(json, policy.slo);
      json += '}';
    }
    json += "]}";
    std::printf("%s\n", json.c_str());
    return 0;
  }
  std::printf("discipline: %s%s\nadmission:  %s\n",
              std::string(simkit::discipline_name(config.discipline)).c_str(),
              changed ? " (saved)" : "",
              config.admission ? "on" : "off");
  std::printf("%-12s %8s %12s %10s\n", "class", "weight", "deadline[s]",
              "slo[s]");
  for (qos::TenantClass cls : qos::kAllTenantClasses) {
    const qos::ClassPolicy& policy = config.policy(cls);
    std::printf("%-12s %8.2f %12.2f %10.2f\n",
                std::string(qos::tenant_class_name(cls)).c_str(),
                policy.weight, policy.deadline, policy.slo);
  }
  return 0;
}

cache::CacheConfig cache_config_from(const Args& args) {
  cache::CacheConfig config;
  config.memory_bytes = static_cast<std::uint64_t>(std::max<std::int64_t>(
                            1, args.get_int("cache-mb", 64)))
                        << 20;
  config.spill_bytes = static_cast<std::uint64_t>(std::max<std::int64_t>(
                           0, args.get_int("spill-mb", 0)))
                       << 20;
  if (args.has("min-benefit")) {
    config.admission.min_benefit_seconds = std::stod(args.get("min-benefit"));
  }
  return config;
}

std::string cache_stats_json(const cache::ReadCache& cache) {
  const cache::CacheStats stats = cache.stats();
  const cache::CacheConfig& config = cache.config();
  char buf[512];
  std::string json = "{";
  std::snprintf(buf, sizeof(buf),
                "\"config\":{\"memory_bytes\":%llu,\"spill_bytes\":%llu},"
                "\"stats\":{\"entries\":%zu,\"memory_used\":%llu,"
                "\"spill_used\":%llu,\"hits\":%llu,\"misses\":%llu,"
                "\"admitted\":%llu,\"rejected\":%llu,\"invalidations\":%llu,"
                "\"spills\":%llu,\"evictions\":%llu,\"saved_seconds\":%.9g},",
                static_cast<unsigned long long>(config.memory_bytes),
                static_cast<unsigned long long>(config.spill_bytes),
                stats.store.entries,
                static_cast<unsigned long long>(stats.store.memory_bytes),
                static_cast<unsigned long long>(stats.store.spill_bytes),
                static_cast<unsigned long long>(stats.hits),
                static_cast<unsigned long long>(stats.misses),
                static_cast<unsigned long long>(stats.admitted),
                static_cast<unsigned long long>(stats.rejected),
                static_cast<unsigned long long>(stats.invalidations),
                static_cast<unsigned long long>(stats.spill_moves),
                static_cast<unsigned long long>(stats.evictions),
                stats.saved_seconds);
  json += buf;
  json += "\"entries\":[";
  const auto entries = cache.entries();
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const auto& entry = entries[i];
    std::snprintf(buf, sizeof(buf),
                  "%s{\"path\":\"%s\",\"dataset\":\"%s\",\"bytes\":%llu,"
                  "\"tier\":\"%s\",\"hits\":%llu,\"saved_per_hit\":%.9g}",
                  i == 0 ? "" : ",", entry.path.c_str(),
                  entry.dataset_key.c_str(),
                  static_cast<unsigned long long>(entry.bytes),
                  entry.spilled ? "spill" : "memory",
                  static_cast<unsigned long long>(entry.hits),
                  entry.saved_per_hit);
    json += buf;
  }
  json += "]}";
  return json;
}

void print_cache_stats(const cache::ReadCache& cache) {
  const cache::CacheStats stats = cache.stats();
  const cache::CacheConfig& config = cache.config();
  std::printf("cache: memory %s used of %s, spill %s used of %s, "
              "%zu entr%s\n",
              format_bytes(stats.store.memory_bytes).c_str(),
              format_bytes(config.memory_bytes).c_str(),
              format_bytes(stats.store.spill_bytes).c_str(),
              format_bytes(config.spill_bytes).c_str(), stats.store.entries,
              stats.store.entries == 1 ? "y" : "ies");
  std::printf("hits %llu  misses %llu  admitted %llu  rejected %llu  "
              "invalidations %llu  spills %llu  evictions %llu\n",
              static_cast<unsigned long long>(stats.hits),
              static_cast<unsigned long long>(stats.misses),
              static_cast<unsigned long long>(stats.admitted),
              static_cast<unsigned long long>(stats.rejected),
              static_cast<unsigned long long>(stats.invalidations),
              static_cast<unsigned long long>(stats.spill_moves),
              static_cast<unsigned long long>(stats.evictions));
  std::printf("predicted seconds saved by hits: %.3f\n", stats.saved_seconds);
  const auto entries = cache.entries();
  if (!entries.empty()) {
    std::printf("%-32s %10s %-6s %6s %12s\n", "PATH", "BYTES", "TIER", "HITS",
                "SAVED/HIT");
    for (const auto& entry : entries) {
      std::printf("%-32s %10s %-6s %6llu %11.4fs\n", entry.path.c_str(),
                  format_bytes(entry.bytes).c_str(),
                  entry.spilled ? "spill" : "memory",
                  static_cast<unsigned long long>(entry.hits),
                  entry.saved_per_hit);
    }
  }
}

// The priced mid-tier read cache, from the shell. The cache (like the
// AccessTracker) is in-process, so a fresh CLI starts cold; --warm
// name[=rounds] replays whole-dataset reads through a session so offers
// land, hits accumulate, and the counters mean something.
int cmd_cache(const Args& args) {
  const std::string verb =
      args.positional().empty() ? "stats" : args.positional().front();
  if (verb != "stats" && verb != "flush" && verb != "explain") {
    std::fprintf(stderr,
                 "usage: msractl cache stats|flush|explain <dataset> "
                 "[--cache-mb N] [--spill-mb N] [--warm name[=rounds]] "
                 "[--hot name[=reads]] [--json]\n");
    return 2;
  }
  Env env(args);
  core::MetaCatalog catalog(&env.system->metadb());
  seed_heat(*env.system, catalog, args);
  predict::Predictor predictor(env.perfdb.get());
  cache::ReadCache* cache =
      env.system->enable_cache(cache_config_from(args), &predictor);

  for (const std::string& spec : args.get_all("warm")) {
    std::string name = spec;
    int rounds = 2;
    if (const auto eq = spec.find('='); eq != std::string::npos) {
      name = spec.substr(0, eq);
      rounds = static_cast<int>(std::stoll(spec.substr(eq + 1)));
    }
    core::Session session(*env.system, {.application = "msractl-cache"});
    auto handle = die_on_error(session.open_existing(name), "open dataset");
    simkit::Timeline tl;
    for (int round = 0; round < rounds; ++round) {
      for (const auto& record : catalog.all_instances()) {
        const auto [app, dataset] =
            core::MetaCatalog::split_key(record.dataset_key);
        if (dataset != name && record.dataset_key != name) continue;
        die_on_error(handle->read_whole(record.timestep, {.timeline = &tl}),
                     "warm read");
      }
    }
    std::printf("warmed %s: %d round(s), %.2f simulated s of reads\n",
                name.c_str(), rounds, tl.now());
  }

  if (verb == "explain") {
    std::string name = args.get("dataset");
    if (args.positional().size() > 1) name = args.positional()[1];
    if (name.empty()) {
      std::fprintf(stderr, "usage: msractl cache explain <dataset> [--json]\n");
      return 2;
    }
    bool matched = false;
    std::string json = "{\"dataset\":\"" + name + "\",\"verdicts\":[";
    if (!args.has("json")) {
      std::printf("%-28s %10s %-12s %-16s %9s %9s %6s %9s %9s\n", "PATH",
                  "BYTES", "ORIGIN", "VERDICT", "REFETCH", "SERVE", "REUSE",
                  "BENEFIT", "DAMAGE");
    }
    for (const auto& record : catalog.all_instances()) {
      const auto [app, dataset] =
          core::MetaCatalog::split_key(record.dataset_key);
      if (dataset != name && record.dataset_key != name) continue;
      const core::Location origin = record.primary().location;
      const cache::AdmissionVerdict verdict = cache->judge(
          record.path, record.dataset_key, record.bytes, origin, 0.0);
      if (args.has("json")) {
        char buf[384];
        std::snprintf(
            buf, sizeof(buf),
            "%s{\"path\":\"%s\",\"bytes\":%llu,\"origin\":\"%s\","
            "\"verdict\":\"%s\",\"refetch\":%.9g,\"serve\":%.9g,"
            "\"reuse\":%.9g,\"benefit\":%.9g,\"damage\":%.9g}",
            matched ? "," : "", record.path.c_str(),
            static_cast<unsigned long long>(record.bytes),
            core::location_name(origin).data(),
            cache::admission_outcome_name(verdict.outcome).data(),
            verdict.refetch_seconds, verdict.serve_seconds,
            verdict.expected_reuse, verdict.benefit_seconds,
            verdict.damage_seconds);
        json += buf;
      } else {
        std::printf("%-28s %10s %-12s %-16s %8.3fs %8.4fs %6.1f %8.3fs "
                    "%8.3fs\n",
                    record.path.c_str(), format_bytes(record.bytes).c_str(),
                    core::location_name(origin).data(),
                    cache::admission_outcome_name(verdict.outcome).data(),
                    verdict.refetch_seconds, verdict.serve_seconds,
                    verdict.expected_reuse, verdict.benefit_seconds,
                    verdict.damage_seconds);
      }
      matched = true;
    }
    if (!matched) {
      std::fprintf(stderr,
                   "msractl: '%s' matches no dumped instance "
                   "(kUnpriced quotes also need `msractl ptool` first)\n",
                   name.c_str());
      return 1;
    }
    if (args.has("json")) {
      json += "]}";
      std::printf("%s\n", json.c_str());
    }
    return 0;
  }

  if (verb == "flush") {
    const std::size_t before = cache->stats().store.entries;
    cache->flush();
    std::printf("flushed %zu entr%s\n", before, before == 1 ? "y" : "ies");
  }

  if (args.has("json")) {
    std::printf("%s\n", cache_stats_json(*cache).c_str());
  } else {
    print_cache_stats(*cache);
  }
  return 0;
}

int run_command(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  const Args args = Args::parse(argc, argv, 2);
  if (command == "ptool") return cmd_ptool(args);
  if (command == "predict") return cmd_predict(args);
  if (command == "explain") return cmd_explain(args);
  if (command == "advise") return cmd_advise(args);
  if (command == "run") return cmd_run(args);
  if (command == "mse") return cmd_mse(args);
  if (command == "volren") return cmd_volren(args);
  if (command == "slice") return cmd_slice(args);
  if (command == "replicate") return cmd_replicate(args);
  if (command == "histogram") return cmd_histogram(args);
  if (command == "catalog") return cmd_catalog(args);
  if (command == "resources") return cmd_resources(args);
  if (command == "cluster") return cmd_cluster(args);
  if (command == "migrate") return cmd_migrate(args);
  if (command == "flow") return cmd_flow(args);
  if (command == "stats") return cmd_stats(args);
  if (command == "qos") return cmd_qos(args);
  if (command == "cache") return cmd_cache(args);
  return usage();
}

}  // namespace
}  // namespace msra::tools

int main(int argc, char** argv) { return msra::tools::run_command(argc, argv); }
