file(REMOVE_RECURSE
  "libmsra_apps.a"
)
