# Empty dependencies file for msra_apps.
# This may be replaced when dependencies are built.
