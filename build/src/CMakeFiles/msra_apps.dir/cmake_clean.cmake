file(REMOVE_RECURSE
  "CMakeFiles/msra_apps.dir/apps/astro3d/astro3d.cpp.o"
  "CMakeFiles/msra_apps.dir/apps/astro3d/astro3d.cpp.o.d"
  "CMakeFiles/msra_apps.dir/apps/imgview/image.cpp.o"
  "CMakeFiles/msra_apps.dir/apps/imgview/image.cpp.o.d"
  "CMakeFiles/msra_apps.dir/apps/mse/mse.cpp.o"
  "CMakeFiles/msra_apps.dir/apps/mse/mse.cpp.o.d"
  "CMakeFiles/msra_apps.dir/apps/vizlib/vizlib.cpp.o"
  "CMakeFiles/msra_apps.dir/apps/vizlib/vizlib.cpp.o.d"
  "CMakeFiles/msra_apps.dir/apps/volren/volren.cpp.o"
  "CMakeFiles/msra_apps.dir/apps/volren/volren.cpp.o.d"
  "libmsra_apps.a"
  "libmsra_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/msra_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
