
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/astro3d/astro3d.cpp" "src/CMakeFiles/msra_apps.dir/apps/astro3d/astro3d.cpp.o" "gcc" "src/CMakeFiles/msra_apps.dir/apps/astro3d/astro3d.cpp.o.d"
  "/root/repo/src/apps/imgview/image.cpp" "src/CMakeFiles/msra_apps.dir/apps/imgview/image.cpp.o" "gcc" "src/CMakeFiles/msra_apps.dir/apps/imgview/image.cpp.o.d"
  "/root/repo/src/apps/mse/mse.cpp" "src/CMakeFiles/msra_apps.dir/apps/mse/mse.cpp.o" "gcc" "src/CMakeFiles/msra_apps.dir/apps/mse/mse.cpp.o.d"
  "/root/repo/src/apps/vizlib/vizlib.cpp" "src/CMakeFiles/msra_apps.dir/apps/vizlib/vizlib.cpp.o" "gcc" "src/CMakeFiles/msra_apps.dir/apps/vizlib/vizlib.cpp.o.d"
  "/root/repo/src/apps/volren/volren.cpp" "src/CMakeFiles/msra_apps.dir/apps/volren/volren.cpp.o" "gcc" "src/CMakeFiles/msra_apps.dir/apps/volren/volren.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/msra.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
