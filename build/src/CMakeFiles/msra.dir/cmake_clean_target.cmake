file(REMOVE_RECURSE
  "libmsra.a"
)
