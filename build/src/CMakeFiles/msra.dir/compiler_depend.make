# Empty compiler generated dependencies file for msra.
# This may be replaced when dependencies are built.
