
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/common/bytes.cpp" "src/CMakeFiles/msra.dir/common/bytes.cpp.o" "gcc" "src/CMakeFiles/msra.dir/common/bytes.cpp.o.d"
  "/root/repo/src/common/log.cpp" "src/CMakeFiles/msra.dir/common/log.cpp.o" "gcc" "src/CMakeFiles/msra.dir/common/log.cpp.o.d"
  "/root/repo/src/common/stats.cpp" "src/CMakeFiles/msra.dir/common/stats.cpp.o" "gcc" "src/CMakeFiles/msra.dir/common/stats.cpp.o.d"
  "/root/repo/src/common/status.cpp" "src/CMakeFiles/msra.dir/common/status.cpp.o" "gcc" "src/CMakeFiles/msra.dir/common/status.cpp.o.d"
  "/root/repo/src/common/threadpool.cpp" "src/CMakeFiles/msra.dir/common/threadpool.cpp.o" "gcc" "src/CMakeFiles/msra.dir/common/threadpool.cpp.o.d"
  "/root/repo/src/core/catalog.cpp" "src/CMakeFiles/msra.dir/core/catalog.cpp.o" "gcc" "src/CMakeFiles/msra.dir/core/catalog.cpp.o.d"
  "/root/repo/src/core/dataset.cpp" "src/CMakeFiles/msra.dir/core/dataset.cpp.o" "gcc" "src/CMakeFiles/msra.dir/core/dataset.cpp.o.d"
  "/root/repo/src/core/placement.cpp" "src/CMakeFiles/msra.dir/core/placement.cpp.o" "gcc" "src/CMakeFiles/msra.dir/core/placement.cpp.o.d"
  "/root/repo/src/core/profiles.cpp" "src/CMakeFiles/msra.dir/core/profiles.cpp.o" "gcc" "src/CMakeFiles/msra.dir/core/profiles.cpp.o.d"
  "/root/repo/src/core/session.cpp" "src/CMakeFiles/msra.dir/core/session.cpp.o" "gcc" "src/CMakeFiles/msra.dir/core/session.cpp.o.d"
  "/root/repo/src/core/system.cpp" "src/CMakeFiles/msra.dir/core/system.cpp.o" "gcc" "src/CMakeFiles/msra.dir/core/system.cpp.o.d"
  "/root/repo/src/meta/database.cpp" "src/CMakeFiles/msra.dir/meta/database.cpp.o" "gcc" "src/CMakeFiles/msra.dir/meta/database.cpp.o.d"
  "/root/repo/src/meta/table.cpp" "src/CMakeFiles/msra.dir/meta/table.cpp.o" "gcc" "src/CMakeFiles/msra.dir/meta/table.cpp.o.d"
  "/root/repo/src/meta/value.cpp" "src/CMakeFiles/msra.dir/meta/value.cpp.o" "gcc" "src/CMakeFiles/msra.dir/meta/value.cpp.o.d"
  "/root/repo/src/predict/advisor.cpp" "src/CMakeFiles/msra.dir/predict/advisor.cpp.o" "gcc" "src/CMakeFiles/msra.dir/predict/advisor.cpp.o.d"
  "/root/repo/src/predict/perfdb.cpp" "src/CMakeFiles/msra.dir/predict/perfdb.cpp.o" "gcc" "src/CMakeFiles/msra.dir/predict/perfdb.cpp.o.d"
  "/root/repo/src/predict/predictor.cpp" "src/CMakeFiles/msra.dir/predict/predictor.cpp.o" "gcc" "src/CMakeFiles/msra.dir/predict/predictor.cpp.o.d"
  "/root/repo/src/predict/ptool.cpp" "src/CMakeFiles/msra.dir/predict/ptool.cpp.o" "gcc" "src/CMakeFiles/msra.dir/predict/ptool.cpp.o.d"
  "/root/repo/src/prt/comm.cpp" "src/CMakeFiles/msra.dir/prt/comm.cpp.o" "gcc" "src/CMakeFiles/msra.dir/prt/comm.cpp.o.d"
  "/root/repo/src/prt/dist.cpp" "src/CMakeFiles/msra.dir/prt/dist.cpp.o" "gcc" "src/CMakeFiles/msra.dir/prt/dist.cpp.o.d"
  "/root/repo/src/runtime/async_io.cpp" "src/CMakeFiles/msra.dir/runtime/async_io.cpp.o" "gcc" "src/CMakeFiles/msra.dir/runtime/async_io.cpp.o.d"
  "/root/repo/src/runtime/endpoint.cpp" "src/CMakeFiles/msra.dir/runtime/endpoint.cpp.o" "gcc" "src/CMakeFiles/msra.dir/runtime/endpoint.cpp.o.d"
  "/root/repo/src/runtime/parallel_io.cpp" "src/CMakeFiles/msra.dir/runtime/parallel_io.cpp.o" "gcc" "src/CMakeFiles/msra.dir/runtime/parallel_io.cpp.o.d"
  "/root/repo/src/runtime/sieve.cpp" "src/CMakeFiles/msra.dir/runtime/sieve.cpp.o" "gcc" "src/CMakeFiles/msra.dir/runtime/sieve.cpp.o.d"
  "/root/repo/src/runtime/subfile.cpp" "src/CMakeFiles/msra.dir/runtime/subfile.cpp.o" "gcc" "src/CMakeFiles/msra.dir/runtime/subfile.cpp.o.d"
  "/root/repo/src/runtime/superfile.cpp" "src/CMakeFiles/msra.dir/runtime/superfile.cpp.o" "gcc" "src/CMakeFiles/msra.dir/runtime/superfile.cpp.o.d"
  "/root/repo/src/simkit/resource.cpp" "src/CMakeFiles/msra.dir/simkit/resource.cpp.o" "gcc" "src/CMakeFiles/msra.dir/simkit/resource.cpp.o.d"
  "/root/repo/src/srb/client.cpp" "src/CMakeFiles/msra.dir/srb/client.cpp.o" "gcc" "src/CMakeFiles/msra.dir/srb/client.cpp.o.d"
  "/root/repo/src/srb/resources.cpp" "src/CMakeFiles/msra.dir/srb/resources.cpp.o" "gcc" "src/CMakeFiles/msra.dir/srb/resources.cpp.o.d"
  "/root/repo/src/srb/server.cpp" "src/CMakeFiles/msra.dir/srb/server.cpp.o" "gcc" "src/CMakeFiles/msra.dir/srb/server.cpp.o.d"
  "/root/repo/src/store/file_store.cpp" "src/CMakeFiles/msra.dir/store/file_store.cpp.o" "gcc" "src/CMakeFiles/msra.dir/store/file_store.cpp.o.d"
  "/root/repo/src/store/mem_store.cpp" "src/CMakeFiles/msra.dir/store/mem_store.cpp.o" "gcc" "src/CMakeFiles/msra.dir/store/mem_store.cpp.o.d"
  "/root/repo/src/tape/hsm.cpp" "src/CMakeFiles/msra.dir/tape/hsm.cpp.o" "gcc" "src/CMakeFiles/msra.dir/tape/hsm.cpp.o.d"
  "/root/repo/src/tape/tape_library.cpp" "src/CMakeFiles/msra.dir/tape/tape_library.cpp.o" "gcc" "src/CMakeFiles/msra.dir/tape/tape_library.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
