# Empty compiler generated dependencies file for msractl.
# This may be replaced when dependencies are built.
