file(REMOVE_RECURSE
  "CMakeFiles/msractl.dir/msractl.cpp.o"
  "CMakeFiles/msractl.dir/msractl.cpp.o.d"
  "msractl"
  "msractl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/msractl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
