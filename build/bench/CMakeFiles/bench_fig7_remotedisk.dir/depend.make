# Empty dependencies file for bench_fig7_remotedisk.
# This may be replaced when dependencies are built.
