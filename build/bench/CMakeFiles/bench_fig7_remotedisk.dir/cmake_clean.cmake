file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_remotedisk.dir/bench_fig7_remotedisk.cpp.o"
  "CMakeFiles/bench_fig7_remotedisk.dir/bench_fig7_remotedisk.cpp.o.d"
  "bench_fig7_remotedisk"
  "bench_fig7_remotedisk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_remotedisk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
