file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_localdisk.dir/bench_fig6_localdisk.cpp.o"
  "CMakeFiles/bench_fig6_localdisk.dir/bench_fig6_localdisk.cpp.o.d"
  "bench_fig6_localdisk"
  "bench_fig6_localdisk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_localdisk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
