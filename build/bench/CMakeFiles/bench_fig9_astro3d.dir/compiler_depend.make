# Empty compiler generated dependencies file for bench_fig9_astro3d.
# This may be replaced when dependencies are built.
