# Empty compiler generated dependencies file for bench_table2_astro3d.
# This may be replaced when dependencies are built.
