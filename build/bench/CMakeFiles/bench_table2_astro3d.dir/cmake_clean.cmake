file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_astro3d.dir/bench_table2_astro3d.cpp.o"
  "CMakeFiles/bench_table2_astro3d.dir/bench_table2_astro3d.cpp.o.d"
  "bench_table2_astro3d"
  "bench_table2_astro3d.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_astro3d.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
