file(REMOVE_RECURSE
  "CMakeFiles/bench_eq3_example.dir/bench_eq3_example.cpp.o"
  "CMakeFiles/bench_eq3_example.dir/bench_eq3_example.cpp.o.d"
  "bench_eq3_example"
  "bench_eq3_example.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_eq3_example.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
