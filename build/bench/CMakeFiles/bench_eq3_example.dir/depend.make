# Empty dependencies file for bench_eq3_example.
# This may be replaced when dependencies are built.
