# Empty dependencies file for bench_table1_fixedcosts.
# This may be replaced when dependencies are built.
