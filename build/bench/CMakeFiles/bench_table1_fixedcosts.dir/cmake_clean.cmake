file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_fixedcosts.dir/bench_table1_fixedcosts.cpp.o"
  "CMakeFiles/bench_table1_fixedcosts.dir/bench_table1_fixedcosts.cpp.o.d"
  "bench_table1_fixedcosts"
  "bench_table1_fixedcosts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_fixedcosts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
