file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_remotetape.dir/bench_fig8_remotetape.cpp.o"
  "CMakeFiles/bench_fig8_remotetape.dir/bench_fig8_remotetape.cpp.o.d"
  "bench_fig8_remotetape"
  "bench_fig8_remotetape.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_remotetape.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
