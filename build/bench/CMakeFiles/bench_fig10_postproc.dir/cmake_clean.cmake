file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_postproc.dir/bench_fig10_postproc.cpp.o"
  "CMakeFiles/bench_fig10_postproc.dir/bench_fig10_postproc.cpp.o.d"
  "bench_fig10_postproc"
  "bench_fig10_postproc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_postproc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
