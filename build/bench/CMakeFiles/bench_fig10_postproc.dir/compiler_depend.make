# Empty compiler generated dependencies file for bench_fig10_postproc.
# This may be replaced when dependencies are built.
