# Empty dependencies file for astro3d_pipeline.
# This may be replaced when dependencies are built.
