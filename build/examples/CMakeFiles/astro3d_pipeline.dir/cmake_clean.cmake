file(REMOVE_RECURSE
  "CMakeFiles/astro3d_pipeline.dir/astro3d_pipeline.cpp.o"
  "CMakeFiles/astro3d_pipeline.dir/astro3d_pipeline.cpp.o.d"
  "astro3d_pipeline"
  "astro3d_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/astro3d_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
