file(REMOVE_RECURSE
  "CMakeFiles/predict_plan.dir/predict_plan.cpp.o"
  "CMakeFiles/predict_plan.dir/predict_plan.cpp.o.d"
  "predict_plan"
  "predict_plan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/predict_plan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
