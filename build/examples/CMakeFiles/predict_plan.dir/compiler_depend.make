# Empty compiler generated dependencies file for predict_plan.
# This may be replaced when dependencies are built.
