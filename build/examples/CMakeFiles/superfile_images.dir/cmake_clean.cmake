file(REMOVE_RECURSE
  "CMakeFiles/superfile_images.dir/superfile_images.cpp.o"
  "CMakeFiles/superfile_images.dir/superfile_images.cpp.o.d"
  "superfile_images"
  "superfile_images.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/superfile_images.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
