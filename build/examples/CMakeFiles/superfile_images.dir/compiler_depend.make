# Empty compiler generated dependencies file for superfile_images.
# This may be replaced when dependencies are built.
