
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/advisor_test.cpp" "tests/CMakeFiles/msra_tests.dir/advisor_test.cpp.o" "gcc" "tests/CMakeFiles/msra_tests.dir/advisor_test.cpp.o.d"
  "/root/repo/tests/apps_test.cpp" "tests/CMakeFiles/msra_tests.dir/apps_test.cpp.o" "gcc" "tests/CMakeFiles/msra_tests.dir/apps_test.cpp.o.d"
  "/root/repo/tests/argparse_test.cpp" "tests/CMakeFiles/msra_tests.dir/argparse_test.cpp.o" "gcc" "tests/CMakeFiles/msra_tests.dir/argparse_test.cpp.o.d"
  "/root/repo/tests/common_test.cpp" "tests/CMakeFiles/msra_tests.dir/common_test.cpp.o" "gcc" "tests/CMakeFiles/msra_tests.dir/common_test.cpp.o.d"
  "/root/repo/tests/core_test.cpp" "tests/CMakeFiles/msra_tests.dir/core_test.cpp.o" "gcc" "tests/CMakeFiles/msra_tests.dir/core_test.cpp.o.d"
  "/root/repo/tests/endpoint_test.cpp" "tests/CMakeFiles/msra_tests.dir/endpoint_test.cpp.o" "gcc" "tests/CMakeFiles/msra_tests.dir/endpoint_test.cpp.o.d"
  "/root/repo/tests/hsm_test.cpp" "tests/CMakeFiles/msra_tests.dir/hsm_test.cpp.o" "gcc" "tests/CMakeFiles/msra_tests.dir/hsm_test.cpp.o.d"
  "/root/repo/tests/meta_test.cpp" "tests/CMakeFiles/msra_tests.dir/meta_test.cpp.o" "gcc" "tests/CMakeFiles/msra_tests.dir/meta_test.cpp.o.d"
  "/root/repo/tests/persistence_test.cpp" "tests/CMakeFiles/msra_tests.dir/persistence_test.cpp.o" "gcc" "tests/CMakeFiles/msra_tests.dir/persistence_test.cpp.o.d"
  "/root/repo/tests/predict_test.cpp" "tests/CMakeFiles/msra_tests.dir/predict_test.cpp.o" "gcc" "tests/CMakeFiles/msra_tests.dir/predict_test.cpp.o.d"
  "/root/repo/tests/prt_test.cpp" "tests/CMakeFiles/msra_tests.dir/prt_test.cpp.o" "gcc" "tests/CMakeFiles/msra_tests.dir/prt_test.cpp.o.d"
  "/root/repo/tests/robustness_test.cpp" "tests/CMakeFiles/msra_tests.dir/robustness_test.cpp.o" "gcc" "tests/CMakeFiles/msra_tests.dir/robustness_test.cpp.o.d"
  "/root/repo/tests/runtime_test.cpp" "tests/CMakeFiles/msra_tests.dir/runtime_test.cpp.o" "gcc" "tests/CMakeFiles/msra_tests.dir/runtime_test.cpp.o.d"
  "/root/repo/tests/simkit_test.cpp" "tests/CMakeFiles/msra_tests.dir/simkit_test.cpp.o" "gcc" "tests/CMakeFiles/msra_tests.dir/simkit_test.cpp.o.d"
  "/root/repo/tests/srb_test.cpp" "tests/CMakeFiles/msra_tests.dir/srb_test.cpp.o" "gcc" "tests/CMakeFiles/msra_tests.dir/srb_test.cpp.o.d"
  "/root/repo/tests/store_test.cpp" "tests/CMakeFiles/msra_tests.dir/store_test.cpp.o" "gcc" "tests/CMakeFiles/msra_tests.dir/store_test.cpp.o.d"
  "/root/repo/tests/sweep_test.cpp" "tests/CMakeFiles/msra_tests.dir/sweep_test.cpp.o" "gcc" "tests/CMakeFiles/msra_tests.dir/sweep_test.cpp.o.d"
  "/root/repo/tests/tape_test.cpp" "tests/CMakeFiles/msra_tests.dir/tape_test.cpp.o" "gcc" "tests/CMakeFiles/msra_tests.dir/tape_test.cpp.o.d"
  "/root/repo/tests/wire_test.cpp" "tests/CMakeFiles/msra_tests.dir/wire_test.cpp.o" "gcc" "tests/CMakeFiles/msra_tests.dir/wire_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/msra.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/msra_apps.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
