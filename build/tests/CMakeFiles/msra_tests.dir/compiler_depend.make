# Empty compiler generated dependencies file for msra_tests.
# This may be replaced when dependencies are built.
