// Remote I/O fast path knobs and meters (SRB-OL layer).
//
// Three independently switchable optimizations, all OFF by default so the
// unoptimized stack reproduces the paper's baseline numbers exactly:
//
//  * vectored RPCs      — kReadv/kWritev carry a whole run-list in one framed
//                         message (one WAN round trip per batch, not per run);
//  * pipelined transfers — large reads/writes are chunked so the server's
//                         disk time for chunk k+1 overlaps the WAN
//                         transmission of chunk k (striping across the remote
//                         RAID arms falls out of the chunk concurrency);
//  * connection pool    — keep-alive with idle timeout amortizes
//                         Tconn/Tconnclose across consecutive file sessions.
#pragma once

#include <algorithm>
#include <cstdint>

#include "simkit/time.h"

namespace msra::srb {

/// One contiguous run of a vectored request: `length` bytes at file offset
/// `offset`. Payload bytes travel back-to-back in run order.
struct IoRun {
  std::uint64_t offset = 0;
  std::uint64_t length = 0;
};

/// Fast-path configuration of one SrbClient / remote endpoint. Every knob
/// defaults to off; enabling one must never change the semantics of the
/// data path, only its cost.
struct FastPathConfig {
  /// Batch per-run seek+read/write loops into single kReadv/kWritev RPCs.
  bool vectored_rpc = false;

  /// Chunk bulk transfers and keep up to `streams` chunks in flight.
  bool pipelined_transfers = false;
  std::uint32_t streams = 4;
  std::uint64_t pipeline_chunk_bytes = 1ull << 20;
  /// Transfers below this size are not worth the extra per-chunk headers.
  std::uint64_t pipeline_threshold_bytes = 2ull << 20;

  /// Keep the connection alive after the last disconnect; a reconnect
  /// within the idle timeout is free (no kConnect RPC, no link setup).
  bool connection_pool = false;
  simkit::SimTime pool_idle_timeout = 60.0;
};

/// Cumulative fast-path meters of one SrbClient.
struct FastPathStats {
  std::uint64_t batched_calls = 0;  ///< kReadv/kWritev RPCs issued
  std::uint64_t batched_runs = 0;   ///< runs carried by those RPCs

  std::uint64_t pipelined_transfers = 0;
  std::uint64_t pipelined_chunks = 0;
  /// Wall (virtual) time the pipelined transfers actually took.
  double pipeline_elapsed_seconds = 0.0;
  /// What the same chunked transfers would have taken one-chunk-at-a-time
  /// (sum of each chunk's full round-trip span). With one stream the spans
  /// tile exactly and this equals the elapsed time, so saved time is zero.
  double pipeline_serial_seconds = 0.0;

  std::uint64_t pool_hits = 0;    ///< reconnects served from the keep-alive
  std::uint64_t pool_misses = 0;  ///< physical connects while pooling is on

  double overlap_saved_seconds() const {
    return std::max(0.0, pipeline_serial_seconds - pipeline_elapsed_seconds);
  }
  /// Fraction of the serial transfer span hidden by overlap, in [0, 1).
  double overlap_fraction() const {
    return pipeline_serial_seconds > 0.0
               ? overlap_saved_seconds() / pipeline_serial_seconds
               : 0.0;
  }
};

}  // namespace msra::srb
