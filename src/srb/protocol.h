// Wire protocol of the SRB-like middleware.
//
// Every request/response is serialized to real bytes: the byte counts feed
// the network model, and malformed-message handling is genuinely exercised.
#pragma once

#include <cstdint>

namespace msra::srb {

/// Request opcodes.
enum class Op : std::uint8_t {
  kConnect = 1,
  kDisconnect,
  kOpen,
  kSeek,
  kRead,
  kWrite,
  kClose,
  kRemove,
  kStat,
  kList,
  kReplicate,
  // Fast-path extensions (see srb/fastpath.h). kReadv/kWritev carry a whole
  // run-list (count + per-run descriptors + payload) in one framed message;
  // kPRead/kPWrite are positional chunk transfers used by the pipelined bulk
  // path; kTell reports a handle's current position so the client can chunk
  // a transfer without mirroring server-side handle state.
  kReadv,
  kWritev,
  kPRead,
  kPWrite,
  kTell,
};

/// Approximate fixed wire overhead of a message (headers + framing), added
/// to the payload size when charging the link.
inline constexpr std::uint64_t kMessageOverheadBytes = 64;

/// Serialized size of one run descriptor inside a kReadv/kWritev request
/// (u64 offset + u64 length). Kept as a named constant so wire-byte
/// accounting of batched requests is visibly honest.
inline constexpr std::uint64_t kRunDescriptorBytes = 16;

}  // namespace msra::srb
