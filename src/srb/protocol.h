// Wire protocol of the SRB-like middleware.
//
// Every request/response is serialized to real bytes: the byte counts feed
// the network model, and malformed-message handling is genuinely exercised.
#pragma once

#include <cstdint>

namespace msra::srb {

/// Request opcodes.
enum class Op : std::uint8_t {
  kConnect = 1,
  kDisconnect,
  kOpen,
  kSeek,
  kRead,
  kWrite,
  kClose,
  kRemove,
  kStat,
  kList,
  kReplicate,
};

/// Approximate fixed wire overhead of a message (headers + framing), added
/// to the payload size when charging the link.
inline constexpr std::uint64_t kMessageOverheadBytes = 64;

}  // namespace msra::srb
