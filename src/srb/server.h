// The SRB-like storage server.
//
// Hosts named ServerResources (remote disks, remote tapes), executes wire
// requests against them, and supports replication between resources. The
// client reaches it through a net::Link; the server charges per-request CPU
// time on its own simkit resource so concurrent clients queue realistically.
#pragma once

#include <atomic>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "net/wire.h"
#include "simkit/resource.h"
#include "srb/protocol.h"
#include "srb/resources.h"

namespace msra::srb {

/// Server configuration knobs.
struct ServerConfig {
  simkit::SimTime request_overhead = 0.005;  ///< CPU cost per request (s)
  int worker_threads = 4;                    ///< server-side concurrency
};

class SrbServer {
 public:
  explicit SrbServer(std::string name, ServerConfig config = {});

  const std::string& name() const { return name_; }

  /// Registers a resource under its own name. The server does not own it.
  Status register_resource(ServerResource* resource);

  ServerResource* resource(const std::string& name) const;
  std::vector<std::string> resource_names() const;

  /// Executes one serialized request arriving at virtual time `arrival`.
  /// Returns the serialized response and the virtual completion time.
  std::vector<std::byte> dispatch(std::span<const std::byte> request,
                                  simkit::SimTime arrival,
                                  simkit::SimTime* completion);

  /// Resets the server CPU's virtual clock (between experiment repetitions).
  void reset_clock() { cpu_.reset(); }

  /// The server CPU resource (for contention accounting / wait observers).
  simkit::Resource& cpu() { return cpu_; }
  const simkit::Resource& cpu() const { return cpu_; }

  /// Whole-server fault injection (e.g. site maintenance). Atomic so an
  /// operator thread can take a site down while client sessions are
  /// mid-run — readers observe it on their next availability check.
  void set_down(bool down) { down_.store(down, std::memory_order_relaxed); }
  bool down() const { return down_.load(std::memory_order_relaxed); }

  /// Copies an object between two hosted resources (server-side replication,
  /// in the spirit of SRB's replica management). Charges read+write costs to
  /// `timeline`.
  Status replicate(simkit::Timeline& timeline, const std::string& src_resource,
                   const std::string& path, const std::string& dst_resource);

 private:
  std::vector<std::byte> handle(net::WireReader& reader, simkit::Timeline& tl);

  std::string name_;
  ServerConfig config_;
  simkit::Resource cpu_;
  std::map<std::string, ServerResource*> resources_;
  std::atomic<bool> down_{false};
};

/// Serialization helpers shared by client and server.
namespace proto {

/// Prepends a status to a response.
void put_status(net::WireWriter& w, const Status& status);

/// Reads a status written by put_status.
Status get_status(net::WireReader& r);

}  // namespace proto

}  // namespace msra::srb
