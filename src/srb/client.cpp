#include "srb/client.h"

namespace msra::srb {

StatusOr<std::vector<std::byte>> SrbClient::call(simkit::Timeline& timeline,
                                                 std::vector<std::byte> request) {
  if (!connected()) {
    return Status::PermissionDenied("client not connected to " + server_->name());
  }
  // Request travels to the server.
  const simkit::SimTime arrival =
      link_->transmit_at(timeline.now(), request.size() + kMessageOverheadBytes);
  // Server executes at the arrival time.
  simkit::SimTime completion = arrival;
  std::vector<std::byte> response =
      server_->dispatch(request, arrival, &completion);
  // Response travels back.
  const simkit::SimTime back =
      link_->transmit_at(completion, response.size() + kMessageOverheadBytes);
  timeline.advance_to(back);
  return response;
}

Status SrbClient::connect(simkit::Timeline& timeline) {
  {
    std::lock_guard<std::mutex> lock(conn_mutex_);
    if (conn_refs_++ > 0) return Status::Ok();  // already up: share it
  }
  link_->connect(timeline);
  net::WireWriter w;
  w.put_u8(static_cast<std::uint8_t>(Op::kConnect));
  auto response = call(timeline, w.take());
  if (!response.ok()) {
    std::lock_guard<std::mutex> lock(conn_mutex_);
    --conn_refs_;
    return response.status();
  }
  net::WireReader r(*response);
  return proto::get_status(r);
}

Status SrbClient::disconnect(simkit::Timeline& timeline) {
  {
    std::lock_guard<std::mutex> lock(conn_mutex_);
    if (conn_refs_ == 0) return Status::Ok();  // spurious disconnect
    if (--conn_refs_ > 0) return Status::Ok();  // other users remain
    // Last user: perform the teardown below while refs == 0. The kDisconnect
    // RPC still needs the connection, so restore it around the call.
    ++conn_refs_;
  }
  net::WireWriter w;
  w.put_u8(static_cast<std::uint8_t>(Op::kDisconnect));
  auto response = call(timeline, w.take());
  {
    std::lock_guard<std::mutex> lock(conn_mutex_);
    --conn_refs_;
  }
  link_->disconnect(timeline);
  MSRA_RETURN_IF_ERROR(response.status());
  net::WireReader r(*response);
  return proto::get_status(r);
}

StatusOr<HandleId> SrbClient::obj_open(simkit::Timeline& timeline,
                                       const std::string& resource,
                                       const std::string& path, OpenMode mode) {
  net::WireWriter w;
  w.put_u8(static_cast<std::uint8_t>(Op::kOpen));
  w.put_string(resource);
  w.put_string(path);
  w.put_u8(static_cast<std::uint8_t>(mode));
  MSRA_ASSIGN_OR_RETURN(auto response, call(timeline, w.take()));
  net::WireReader r(response);
  MSRA_RETURN_IF_ERROR(proto::get_status(r));
  return r.get_u64();
}

Status SrbClient::obj_seek(simkit::Timeline& timeline, const std::string& resource,
                           HandleId handle, std::uint64_t offset) {
  net::WireWriter w;
  w.put_u8(static_cast<std::uint8_t>(Op::kSeek));
  w.put_string(resource);
  w.put_u64(handle);
  w.put_u64(offset);
  MSRA_ASSIGN_OR_RETURN(auto response, call(timeline, w.take()));
  net::WireReader r(response);
  return proto::get_status(r);
}

Status SrbClient::obj_read(simkit::Timeline& timeline, const std::string& resource,
                           HandleId handle, std::span<std::byte> out) {
  net::WireWriter w;
  w.put_u8(static_cast<std::uint8_t>(Op::kRead));
  w.put_string(resource);
  w.put_u64(handle);
  w.put_u64(out.size());
  MSRA_ASSIGN_OR_RETURN(auto response, call(timeline, w.take()));
  net::WireReader r(response);
  MSRA_RETURN_IF_ERROR(proto::get_status(r));
  return r.get_bytes_into(out);
}

Status SrbClient::obj_write(simkit::Timeline& timeline, const std::string& resource,
                            HandleId handle, std::span<const std::byte> data) {
  net::WireWriter w;
  w.put_u8(static_cast<std::uint8_t>(Op::kWrite));
  w.put_string(resource);
  w.put_u64(handle);
  w.put_bytes(data);
  MSRA_ASSIGN_OR_RETURN(auto response, call(timeline, w.take()));
  net::WireReader r(response);
  return proto::get_status(r);
}

Status SrbClient::obj_close(simkit::Timeline& timeline, const std::string& resource,
                            HandleId handle) {
  net::WireWriter w;
  w.put_u8(static_cast<std::uint8_t>(Op::kClose));
  w.put_string(resource);
  w.put_u64(handle);
  MSRA_ASSIGN_OR_RETURN(auto response, call(timeline, w.take()));
  net::WireReader r(response);
  return proto::get_status(r);
}

Status SrbClient::obj_remove(simkit::Timeline& timeline, const std::string& resource,
                             const std::string& path) {
  net::WireWriter w;
  w.put_u8(static_cast<std::uint8_t>(Op::kRemove));
  w.put_string(resource);
  w.put_string(path);
  MSRA_ASSIGN_OR_RETURN(auto response, call(timeline, w.take()));
  net::WireReader r(response);
  return proto::get_status(r);
}

StatusOr<std::uint64_t> SrbClient::obj_stat(simkit::Timeline& timeline,
                                            const std::string& resource,
                                            const std::string& path) {
  net::WireWriter w;
  w.put_u8(static_cast<std::uint8_t>(Op::kStat));
  w.put_string(resource);
  w.put_string(path);
  MSRA_ASSIGN_OR_RETURN(auto response, call(timeline, w.take()));
  net::WireReader r(response);
  MSRA_RETURN_IF_ERROR(proto::get_status(r));
  return r.get_u64();
}

StatusOr<std::vector<store::ObjectInfo>> SrbClient::obj_list(
    simkit::Timeline& timeline, const std::string& resource,
    const std::string& prefix) {
  net::WireWriter w;
  w.put_u8(static_cast<std::uint8_t>(Op::kList));
  w.put_string(resource);
  w.put_string(prefix);
  MSRA_ASSIGN_OR_RETURN(auto response, call(timeline, w.take()));
  net::WireReader r(response);
  MSRA_RETURN_IF_ERROR(proto::get_status(r));
  MSRA_ASSIGN_OR_RETURN(std::uint32_t count, r.get_u32());
  std::vector<store::ObjectInfo> out;
  out.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    MSRA_ASSIGN_OR_RETURN(std::string name, r.get_string());
    MSRA_ASSIGN_OR_RETURN(std::uint64_t size, r.get_u64());
    out.push_back({std::move(name), size});
  }
  return out;
}

Status SrbClient::obj_replicate(simkit::Timeline& timeline,
                                const std::string& src_resource,
                                const std::string& path,
                                const std::string& dst_resource) {
  net::WireWriter w;
  w.put_u8(static_cast<std::uint8_t>(Op::kReplicate));
  w.put_string(src_resource);
  w.put_string(path);
  w.put_string(dst_resource);
  MSRA_ASSIGN_OR_RETURN(auto response, call(timeline, w.take()));
  net::WireReader r(response);
  return proto::get_status(r);
}

}  // namespace msra::srb
