#include "srb/client.h"

#include <algorithm>

namespace msra::srb {

StatusOr<std::vector<std::byte>> SrbClient::call(simkit::Timeline& timeline,
                                                 std::vector<std::byte> request) {
  if (!connected()) {
    return Status::PermissionDenied("client not connected to " + server_->name());
  }
  // Request travels to the server.
  const simkit::SimTime arrival =
      link_->transmit_at(timeline.now(), request.size() + kMessageOverheadBytes);
  // Server executes at the arrival time.
  simkit::SimTime completion = arrival;
  std::vector<std::byte> response =
      server_->dispatch(request, arrival, &completion);
  // Response travels back.
  const simkit::SimTime back =
      link_->transmit_at(completion, response.size() + kMessageOverheadBytes);
  timeline.advance_to(back);
  return response;
}

Status SrbClient::wire_connect(simkit::Timeline& timeline) {
  link_->connect(timeline);
  net::WireWriter w;
  w.put_u8(static_cast<std::uint8_t>(Op::kConnect));
  MSRA_ASSIGN_OR_RETURN(auto response, call(timeline, w.take()));
  net::WireReader r(response);
  return proto::get_status(r);
}

Status SrbClient::wire_disconnect(simkit::Timeline& timeline) {
  net::WireWriter w;
  w.put_u8(static_cast<std::uint8_t>(Op::kDisconnect));
  auto response = call(timeline, w.take());
  link_->disconnect(timeline);
  MSRA_RETURN_IF_ERROR(response.status());
  net::WireReader r(*response);
  return proto::get_status(r);
}

Status SrbClient::connect(simkit::Timeline& timeline) {
  // Hold the pool operation lock across the whole transition (state checks
  // AND wire RPCs): a concurrent connect/disconnect/drain must never see
  // the intermediate refcounts these paths go through.
  std::lock_guard<std::mutex> pool(pool_mutex_);
  bool pool_hit = false;
  bool pool_miss = false;
  bool stale_teardown = false;
  {
    std::lock_guard<std::mutex> lock(conn_mutex_);
    if (conn_refs_++ > 0) return Status::Ok();  // already up: share it
    if (pooled_) {
      // A kept-alive physical connection is parked here. Reusing it within
      // the idle timeout costs nothing; past the timeout it is stale and
      // must be torn down (billed) before a fresh connect.
      pooled_ = false;
      if (timeline.now() - pooled_since_ <= fast_path_.pool_idle_timeout) {
        pool_hit = true;
      } else {
        pool_miss = true;
        stale_teardown = true;
      }
    } else if (fast_path_.connection_pool) {
      pool_miss = true;
    }
  }
  if (pool_hit || pool_miss) {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    if (pool_hit) ++stats_.pool_hits;
    if (pool_miss) ++stats_.pool_misses;
  }
  if (pool_hit) return Status::Ok();
  if (stale_teardown) {
    Status teardown = wire_disconnect(timeline);
    (void)teardown;  // best effort on a stale wire; the reconnect decides
  }
  Status status = wire_connect(timeline);
  if (!status.ok()) {
    std::lock_guard<std::mutex> lock(conn_mutex_);
    --conn_refs_;
  }
  return status;
}

Status SrbClient::disconnect(simkit::Timeline& timeline) {
  std::lock_guard<std::mutex> pool(pool_mutex_);
  {
    std::lock_guard<std::mutex> lock(conn_mutex_);
    if (conn_refs_ == 0) return Status::Ok();  // spurious disconnect
    if (--conn_refs_ > 0) return Status::Ok();  // other users remain
    if (fast_path_.connection_pool) {
      // Keep-alive: park the physical connection instead of tearing it
      // down. No teardown is billed now; the next connect() within the
      // idle timeout is free, and drain() settles the bill at the end.
      pooled_ = true;
      pooled_since_ = timeline.now();
      return Status::Ok();
    }
    // Last user: perform the teardown below while refs == 0. The kDisconnect
    // RPC still needs the connection, so restore it around the call.
    ++conn_refs_;
  }
  Status status = wire_disconnect(timeline);
  {
    std::lock_guard<std::mutex> lock(conn_mutex_);
    --conn_refs_;
  }
  return status;
}

Status SrbClient::drain(simkit::Timeline& timeline) {
  // Same lock as connect(): idle-timeout reaping must not interleave with a
  // concurrent session's connect when two sessions share the pool, or the
  // connect can return Ok against a connection drain() is tearing down.
  std::lock_guard<std::mutex> pool(pool_mutex_);
  {
    std::lock_guard<std::mutex> lock(conn_mutex_);
    if (!pooled_) return Status::Ok();
    pooled_ = false;
    ++conn_refs_;  // the kDisconnect RPC needs a live connection
  }
  Status status = wire_disconnect(timeline);
  {
    std::lock_guard<std::mutex> lock(conn_mutex_);
    --conn_refs_;
  }
  return status;
}

StatusOr<HandleId> SrbClient::obj_open(simkit::Timeline& timeline,
                                       const std::string& resource,
                                       const std::string& path, OpenMode mode) {
  net::WireWriter w;
  w.put_u8(static_cast<std::uint8_t>(Op::kOpen));
  w.put_string(resource);
  w.put_string(path);
  w.put_u8(static_cast<std::uint8_t>(mode));
  MSRA_ASSIGN_OR_RETURN(auto response, call(timeline, w.take()));
  net::WireReader r(response);
  MSRA_RETURN_IF_ERROR(proto::get_status(r));
  return r.get_u64();
}

Status SrbClient::obj_seek(simkit::Timeline& timeline, const std::string& resource,
                           HandleId handle, std::uint64_t offset) {
  net::WireWriter w;
  w.put_u8(static_cast<std::uint8_t>(Op::kSeek));
  w.put_string(resource);
  w.put_u64(handle);
  w.put_u64(offset);
  MSRA_ASSIGN_OR_RETURN(auto response, call(timeline, w.take()));
  net::WireReader r(response);
  return proto::get_status(r);
}

Status SrbClient::obj_read(simkit::Timeline& timeline, const std::string& resource,
                           HandleId handle, std::span<std::byte> out) {
  net::WireWriter w;
  w.put_u8(static_cast<std::uint8_t>(Op::kRead));
  w.put_string(resource);
  w.put_u64(handle);
  w.put_u64(out.size());
  MSRA_ASSIGN_OR_RETURN(auto response, call(timeline, w.take()));
  net::WireReader r(response);
  MSRA_RETURN_IF_ERROR(proto::get_status(r));
  return r.get_bytes_into(out);
}

Status SrbClient::obj_write(simkit::Timeline& timeline, const std::string& resource,
                            HandleId handle, std::span<const std::byte> data) {
  net::WireWriter w;
  w.put_u8(static_cast<std::uint8_t>(Op::kWrite));
  w.put_string(resource);
  w.put_u64(handle);
  w.put_bytes(data);
  MSRA_ASSIGN_OR_RETURN(auto response, call(timeline, w.take()));
  net::WireReader r(response);
  return proto::get_status(r);
}

Status SrbClient::obj_close(simkit::Timeline& timeline, const std::string& resource,
                            HandleId handle) {
  net::WireWriter w;
  w.put_u8(static_cast<std::uint8_t>(Op::kClose));
  w.put_string(resource);
  w.put_u64(handle);
  MSRA_ASSIGN_OR_RETURN(auto response, call(timeline, w.take()));
  net::WireReader r(response);
  return proto::get_status(r);
}

StatusOr<std::uint64_t> SrbClient::obj_tell(simkit::Timeline& timeline,
                                            const std::string& resource,
                                            HandleId handle) {
  net::WireWriter w;
  w.put_u8(static_cast<std::uint8_t>(Op::kTell));
  w.put_string(resource);
  w.put_u64(handle);
  MSRA_ASSIGN_OR_RETURN(auto response, call(timeline, w.take()));
  net::WireReader r(response);
  MSRA_RETURN_IF_ERROR(proto::get_status(r));
  return r.get_u64();
}

Status SrbClient::obj_readv(simkit::Timeline& timeline, const std::string& resource,
                            HandleId handle, std::span<const IoRun> runs,
                            std::span<std::byte> out) {
  std::uint64_t total = 0;
  for (const IoRun& run : runs) total += run.length;
  if (total != out.size()) {
    return Status::InvalidArgument("readv buffer does not match run total");
  }
  if (runs.empty()) return Status::Ok();
  net::WireWriter w;
  w.put_u8(static_cast<std::uint8_t>(Op::kReadv));
  w.put_string(resource);
  w.put_u64(handle);
  w.put_u32(static_cast<std::uint32_t>(runs.size()));
  for (const IoRun& run : runs) {
    w.put_u64(run.offset);
    w.put_u64(run.length);
  }
  MSRA_ASSIGN_OR_RETURN(auto response, call(timeline, w.take()));
  net::WireReader r(response);
  MSRA_RETURN_IF_ERROR(proto::get_status(r));
  MSRA_RETURN_IF_ERROR(r.get_bytes_into(out));
  record_batched(runs.size());
  return Status::Ok();
}

Status SrbClient::obj_writev(simkit::Timeline& timeline, const std::string& resource,
                             HandleId handle, std::span<const IoRun> runs,
                             std::span<const std::byte> data) {
  std::uint64_t total = 0;
  for (const IoRun& run : runs) total += run.length;
  if (total != data.size()) {
    return Status::InvalidArgument("writev payload does not match run total");
  }
  if (runs.empty()) return Status::Ok();
  net::WireWriter w;
  w.put_u8(static_cast<std::uint8_t>(Op::kWritev));
  w.put_string(resource);
  w.put_u64(handle);
  w.put_u32(static_cast<std::uint32_t>(runs.size()));
  for (const IoRun& run : runs) {
    w.put_u64(run.offset);
    w.put_u64(run.length);
  }
  w.put_bytes(data);
  MSRA_ASSIGN_OR_RETURN(auto response, call(timeline, w.take()));
  net::WireReader r(response);
  MSRA_RETURN_IF_ERROR(proto::get_status(r));
  record_batched(runs.size());
  return Status::Ok();
}

StatusOr<simkit::SimTime> SrbClient::chunk_finish(
    simkit::SimTime arrival, const std::vector<std::byte>& request,
    std::span<std::byte> response_data) {
  simkit::SimTime completion = arrival;
  std::vector<std::byte> response =
      server_->dispatch(request, arrival, &completion);
  const simkit::SimTime back =
      link_->transmit_at(completion, response.size() + kMessageOverheadBytes);
  net::WireReader r(response);
  MSRA_RETURN_IF_ERROR(proto::get_status(r));
  if (!response_data.empty()) {
    MSRA_RETURN_IF_ERROR(r.get_bytes_into(response_data));
  }
  return back;
}

Status SrbClient::read_pipelined(simkit::Timeline& timeline,
                                 const std::string& resource, HandleId handle,
                                 std::span<std::byte> out) {
  const FastPathConfig cfg = fast_path();
  const std::uint64_t chunk =
      std::max<std::uint64_t>(1, cfg.pipeline_chunk_bytes);
  if (out.size() <= chunk) return obj_read(timeline, resource, handle, out);
  if (!connected()) {
    return Status::PermissionDenied("client not connected to " + server_->name());
  }
  // The server tracks the handle position; one cheap kTell fetches it so
  // the chunks can be addressed absolutely (kPRead) and overlap in flight.
  MSRA_ASSIGN_OR_RETURN(const std::uint64_t base,
                        obj_tell(timeline, resource, handle));
  const std::size_t nchunks = (out.size() + chunk - 1) / chunk;
  const std::size_t window = std::max<std::uint32_t>(1u, cfg.streams);
  const simkit::SimTime start = timeline.now();
  // Every chunk request is built up front and its forward leg reserved in
  // client send order, a window ahead of the responses: a later chunk's
  // payload must never queue behind an earlier chunk's (tiny) response on
  // the half-duplex pipe, or the link idles for a server turnaround per
  // chunk and the pipeline degenerates to serial round trips.
  std::vector<std::vector<std::byte>> requests(nchunks);
  for (std::size_t i = 0; i < nchunks; ++i) {
    const std::uint64_t off = i * chunk;
    const std::uint64_t n = std::min<std::uint64_t>(chunk, out.size() - off);
    net::WireWriter w;
    w.put_u8(static_cast<std::uint8_t>(Op::kPRead));
    w.put_string(resource);
    w.put_u64(handle);
    w.put_u64(base + off);
    w.put_u64(n);
    requests[i] = w.take();
  }
  std::vector<simkit::SimTime> done(nchunks, 0.0);
  std::vector<simkit::SimTime> ready(nchunks, start);
  std::vector<simkit::SimTime> arrival(nchunks, start);
  std::size_t sent = 0;
  auto send_until = [&](std::size_t limit) {
    for (; sent < limit; ++sent) {
      if (sent >= window) ready[sent] = std::max(start, done[sent - window]);
      arrival[sent] = link_->transmit_at(
          ready[sent], requests[sent].size() + kMessageOverheadBytes);
    }
  };
  simkit::SimTime last = start;
  double serial = 0.0;
  for (std::size_t i = 0; i < nchunks; ++i) {
    send_until(std::min(nchunks, i + window));
    const std::uint64_t off = i * chunk;
    const std::uint64_t n = std::min<std::uint64_t>(chunk, out.size() - off);
    auto back = chunk_finish(arrival[i], requests[i], out.subspan(off, n));
    if (!back.ok()) {
      timeline.advance_to(last);
      return back.status();
    }
    done[i] = *back;
    last = std::max(last, *back);
    serial += *back - ready[i];
  }
  timeline.advance_to(last);
  record_pipelined(nchunks, last - start, serial);
  return Status::Ok();
}

Status SrbClient::write_pipelined(simkit::Timeline& timeline,
                                  const std::string& resource, HandleId handle,
                                  std::span<const std::byte> data) {
  const FastPathConfig cfg = fast_path();
  const std::uint64_t chunk =
      std::max<std::uint64_t>(1, cfg.pipeline_chunk_bytes);
  if (data.size() <= chunk) return obj_write(timeline, resource, handle, data);
  if (!connected()) {
    return Status::PermissionDenied("client not connected to " + server_->name());
  }
  MSRA_ASSIGN_OR_RETURN(const std::uint64_t base,
                        obj_tell(timeline, resource, handle));
  const std::size_t nchunks = (data.size() + chunk - 1) / chunk;
  const std::size_t window = std::max<std::uint32_t>(1u, cfg.streams);
  const simkit::SimTime start = timeline.now();
  // See read_pipelined: forward legs are reserved in client send order, a
  // window ahead of the responses, so the chunk payloads pack back-to-back
  // on the pipe while the server's disk work overlaps with them.
  std::vector<std::vector<std::byte>> requests(nchunks);
  for (std::size_t i = 0; i < nchunks; ++i) {
    const std::uint64_t off = i * chunk;
    const std::uint64_t n = std::min<std::uint64_t>(chunk, data.size() - off);
    net::WireWriter w;
    w.put_u8(static_cast<std::uint8_t>(Op::kPWrite));
    w.put_string(resource);
    w.put_u64(handle);
    w.put_u64(base + off);
    w.put_bytes(data.subspan(off, n));
    requests[i] = w.take();
  }
  std::vector<simkit::SimTime> done(nchunks, 0.0);
  std::vector<simkit::SimTime> ready(nchunks, start);
  std::vector<simkit::SimTime> arrival(nchunks, start);
  std::size_t sent = 0;
  auto send_until = [&](std::size_t limit) {
    for (; sent < limit; ++sent) {
      if (sent >= window) ready[sent] = std::max(start, done[sent - window]);
      arrival[sent] = link_->transmit_at(
          ready[sent], requests[sent].size() + kMessageOverheadBytes);
    }
  };
  simkit::SimTime last = start;
  double serial = 0.0;
  for (std::size_t i = 0; i < nchunks; ++i) {
    send_until(std::min(nchunks, i + window));
    auto back = chunk_finish(arrival[i], requests[i], {});
    if (!back.ok()) {
      timeline.advance_to(last);
      return back.status();
    }
    done[i] = *back;
    last = std::max(last, *back);
    serial += *back - ready[i];
  }
  timeline.advance_to(last);
  record_pipelined(nchunks, last - start, serial);
  return Status::Ok();
}

void SrbClient::record_batched(std::uint64_t runs) {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  ++stats_.batched_calls;
  stats_.batched_runs += runs;
}

void SrbClient::record_pipelined(std::uint64_t chunks, double elapsed,
                                 double serial) {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  ++stats_.pipelined_transfers;
  stats_.pipelined_chunks += chunks;
  stats_.pipeline_elapsed_seconds += elapsed;
  stats_.pipeline_serial_seconds += serial;
}

Status SrbClient::obj_remove(simkit::Timeline& timeline, const std::string& resource,
                             const std::string& path) {
  net::WireWriter w;
  w.put_u8(static_cast<std::uint8_t>(Op::kRemove));
  w.put_string(resource);
  w.put_string(path);
  MSRA_ASSIGN_OR_RETURN(auto response, call(timeline, w.take()));
  net::WireReader r(response);
  return proto::get_status(r);
}

StatusOr<std::uint64_t> SrbClient::obj_stat(simkit::Timeline& timeline,
                                            const std::string& resource,
                                            const std::string& path) {
  net::WireWriter w;
  w.put_u8(static_cast<std::uint8_t>(Op::kStat));
  w.put_string(resource);
  w.put_string(path);
  MSRA_ASSIGN_OR_RETURN(auto response, call(timeline, w.take()));
  net::WireReader r(response);
  MSRA_RETURN_IF_ERROR(proto::get_status(r));
  return r.get_u64();
}

StatusOr<std::vector<store::ObjectInfo>> SrbClient::obj_list(
    simkit::Timeline& timeline, const std::string& resource,
    const std::string& prefix) {
  net::WireWriter w;
  w.put_u8(static_cast<std::uint8_t>(Op::kList));
  w.put_string(resource);
  w.put_string(prefix);
  MSRA_ASSIGN_OR_RETURN(auto response, call(timeline, w.take()));
  net::WireReader r(response);
  MSRA_RETURN_IF_ERROR(proto::get_status(r));
  MSRA_ASSIGN_OR_RETURN(std::uint32_t count, r.get_u32());
  std::vector<store::ObjectInfo> out;
  out.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    MSRA_ASSIGN_OR_RETURN(std::string name, r.get_string());
    MSRA_ASSIGN_OR_RETURN(std::uint64_t size, r.get_u64());
    out.push_back({std::move(name), size});
  }
  return out;
}

Status SrbClient::obj_replicate(simkit::Timeline& timeline,
                                const std::string& src_resource,
                                const std::string& path,
                                const std::string& dst_resource) {
  net::WireWriter w;
  w.put_u8(static_cast<std::uint8_t>(Op::kReplicate));
  w.put_string(src_resource);
  w.put_string(path);
  w.put_string(dst_resource);
  MSRA_ASSIGN_OR_RETURN(auto response, call(timeline, w.take()));
  net::WireReader r(response);
  return proto::get_status(r);
}

}  // namespace msra::srb
