// SRB client: the "native storage interface" to remote resources.
//
// Every call serializes a request, ships it over the shared WAN link
// (charging transmission + propagation in virtual time), lets the server
// execute it at the arrival time, and ships the response back. Connection
// setup/teardown costs follow the paper's Equation (1): they are charged at
// connect()/disconnect(), which the run-time library invokes around each
// file session.
#pragma once

#include <memory>
#include <mutex>
#include <string>

#include "common/status.h"
#include "net/link.h"
#include "srb/server.h"

namespace msra::srb {

class SrbClient {
 public:
  /// Neither the server nor the link is owned.
  SrbClient(SrbServer* server, net::Link* link)
      : server_(server), link_(link) {}

  /// Establishes a connection (charges Tconn). Connections are
  /// reference-counted: parallel ranks sharing this client each call
  /// connect()/disconnect() around their file sessions, and only the
  /// outermost pair touches the wire.
  Status connect(simkit::Timeline& timeline);

  /// Drops one connection reference; tears down (charging Tconnclose) when
  /// the last user disconnects.
  Status disconnect(simkit::Timeline& timeline);

  bool connected() const {
    std::lock_guard<std::mutex> lock(conn_mutex_);
    return conn_refs_ > 0;
  }

  StatusOr<HandleId> obj_open(simkit::Timeline& timeline,
                              const std::string& resource,
                              const std::string& path, OpenMode mode);
  Status obj_seek(simkit::Timeline& timeline, const std::string& resource,
                  HandleId handle, std::uint64_t offset);
  Status obj_read(simkit::Timeline& timeline, const std::string& resource,
                  HandleId handle, std::span<std::byte> out);
  Status obj_write(simkit::Timeline& timeline, const std::string& resource,
                   HandleId handle, std::span<const std::byte> data);
  Status obj_close(simkit::Timeline& timeline, const std::string& resource,
                   HandleId handle);
  Status obj_remove(simkit::Timeline& timeline, const std::string& resource,
                    const std::string& path);
  StatusOr<std::uint64_t> obj_stat(simkit::Timeline& timeline,
                                   const std::string& resource,
                                   const std::string& path);
  StatusOr<std::vector<store::ObjectInfo>> obj_list(simkit::Timeline& timeline,
                                                    const std::string& resource,
                                                    const std::string& prefix);

  /// Server-side replication of `path` from one resource to another.
  Status obj_replicate(simkit::Timeline& timeline, const std::string& src_resource,
                       const std::string& path, const std::string& dst_resource);

  SrbServer* server() const { return server_; }
  net::Link* link() const { return link_; }

 private:
  /// Round trip: request over the link, dispatch, response over the link.
  StatusOr<std::vector<std::byte>> call(simkit::Timeline& timeline,
                                        std::vector<std::byte> request);

  SrbServer* server_;
  net::Link* link_;
  mutable std::mutex conn_mutex_;
  int conn_refs_ = 0;
};

}  // namespace msra::srb
