// SRB client: the "native storage interface" to remote resources.
//
// Every call serializes a request, ships it over the shared WAN link
// (charging transmission + propagation in virtual time), lets the server
// execute it at the arrival time, and ships the response back. Connection
// setup/teardown costs follow the paper's Equation (1): they are charged at
// connect()/disconnect(), which the run-time library invokes around each
// file session.
#pragma once

#include <memory>
#include <mutex>
#include <string>

#include "common/status.h"
#include "net/link.h"
#include "srb/fastpath.h"
#include "srb/server.h"

namespace msra::srb {

class SrbClient {
 public:
  /// Neither the server nor the link is owned.
  SrbClient(SrbServer* server, net::Link* link)
      : server_(server), link_(link) {}

  /// Establishes a connection (charges Tconn). Connections are
  /// reference-counted: parallel ranks sharing this client each call
  /// connect()/disconnect() around their file sessions, and only the
  /// outermost pair touches the wire.
  Status connect(simkit::Timeline& timeline);

  /// Drops one connection reference; tears down (charging Tconnclose) when
  /// the last user disconnects.
  Status disconnect(simkit::Timeline& timeline);

  bool connected() const {
    std::lock_guard<std::mutex> lock(conn_mutex_);
    return conn_refs_ > 0;
  }

  /// Tears down a pooled (kept-alive) connection, charging Tconnclose. A
  /// no-op when nothing is pooled. Call before retiring the client so the
  /// Eq. (1) billing closes every connection it opened.
  Status drain(simkit::Timeline& timeline);

  void set_fast_path(const FastPathConfig& config) {
    std::lock_guard<std::mutex> lock(conn_mutex_);
    fast_path_ = config;
  }
  FastPathConfig fast_path() const {
    std::lock_guard<std::mutex> lock(conn_mutex_);
    return fast_path_;
  }
  FastPathStats stats() const {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    return stats_;
  }

  StatusOr<HandleId> obj_open(simkit::Timeline& timeline,
                              const std::string& resource,
                              const std::string& path, OpenMode mode);
  Status obj_seek(simkit::Timeline& timeline, const std::string& resource,
                  HandleId handle, std::uint64_t offset);
  Status obj_read(simkit::Timeline& timeline, const std::string& resource,
                  HandleId handle, std::span<std::byte> out);
  Status obj_write(simkit::Timeline& timeline, const std::string& resource,
                   HandleId handle, std::span<const std::byte> data);
  Status obj_close(simkit::Timeline& timeline, const std::string& resource,
                   HandleId handle);
  /// Position of an open handle (free server-side bookkeeping; one round
  /// trip on the wire).
  StatusOr<std::uint64_t> obj_tell(simkit::Timeline& timeline,
                                   const std::string& resource,
                                   HandleId handle);

  /// Vectored read: all `runs` in one kReadv round trip. `out` receives the
  /// runs' payloads back-to-back in run order and must be exactly as large
  /// as the runs' total length.
  Status obj_readv(simkit::Timeline& timeline, const std::string& resource,
                   HandleId handle, std::span<const IoRun> runs,
                   std::span<std::byte> out);

  /// Vectored write: all `runs` in one kWritev round trip. `data` carries
  /// the runs' payloads back-to-back in run order.
  Status obj_writev(simkit::Timeline& timeline, const std::string& resource,
                    HandleId handle, std::span<const IoRun> runs,
                    std::span<const std::byte> data);

  /// Pipelined bulk read starting at the handle's current position: the
  /// transfer is cut into chunks and up to `streams` chunk round-trips are
  /// kept in flight, so server disk time for chunk k+1 overlaps the WAN
  /// transmission of chunk k. Leaves the handle positioned past the data,
  /// exactly like obj_read.
  Status read_pipelined(simkit::Timeline& timeline, const std::string& resource,
                        HandleId handle, std::span<std::byte> out);

  /// Pipelined bulk write; the mirror image of read_pipelined.
  Status write_pipelined(simkit::Timeline& timeline, const std::string& resource,
                         HandleId handle, std::span<const std::byte> data);
  Status obj_remove(simkit::Timeline& timeline, const std::string& resource,
                    const std::string& path);
  StatusOr<std::uint64_t> obj_stat(simkit::Timeline& timeline,
                                   const std::string& resource,
                                   const std::string& path);
  StatusOr<std::vector<store::ObjectInfo>> obj_list(simkit::Timeline& timeline,
                                                    const std::string& resource,
                                                    const std::string& prefix);

  /// Server-side replication of `path` from one resource to another.
  Status obj_replicate(simkit::Timeline& timeline, const std::string& src_resource,
                       const std::string& path, const std::string& dst_resource);

  SrbServer* server() const { return server_; }
  net::Link* link() const { return link_; }

 private:
  /// Round trip: request over the link, dispatch, response over the link.
  StatusOr<std::vector<std::byte>> call(simkit::Timeline& timeline,
                                        std::vector<std::byte> request);

  /// Completes one positional-chunk round trip whose request arrives at the
  /// server at `arrival` (may be in the client's future: the pipelined path
  /// overlaps chunk round trips without advancing the caller's timeline
  /// until the end). Dispatches the request and transmits the response back;
  /// returns the time the response has fully arrived, or an error status.
  StatusOr<simkit::SimTime> chunk_finish(simkit::SimTime arrival,
                                         const std::vector<std::byte>& request,
                                         std::span<std::byte> response_data);

  /// Physical connection setup/teardown (link + kConnect/kDisconnect RPC),
  /// shared by connect() and drain().
  Status wire_connect(simkit::Timeline& timeline);
  Status wire_disconnect(simkit::Timeline& timeline);

  void record_batched(std::uint64_t runs);
  void record_pipelined(std::uint64_t chunks, double elapsed, double serial);

  SrbServer* server_;
  net::Link* link_;
  /// Serializes whole connect()/disconnect()/drain() transitions, *including*
  /// the wire RPCs. conn_mutex_ alone is not enough when two sessions share
  /// the pool: a second connect() could observe conn_refs_ > 0 and return Ok
  /// while the first connector's physical setup is still in flight (or while
  /// drain()/disconnect() is mid-teardown with conn_refs_ temporarily bumped
  /// for the kDisconnect RPC), leaving a "connected" client with no wire.
  /// Ordering: pool_mutex_ is taken strictly outside conn_mutex_.
  mutable std::mutex pool_mutex_;
  mutable std::mutex conn_mutex_;
  int conn_refs_ = 0;
  FastPathConfig fast_path_;  // guarded by conn_mutex_
  bool pooled_ = false;       // guarded by conn_mutex_
  simkit::SimTime pooled_since_ = 0.0;
  mutable std::mutex stats_mutex_;
  FastPathStats stats_;
};

}  // namespace msra::srb
