#include "srb/resources.h"

namespace msra::srb {

std::string_view storage_kind_name(StorageKind kind) {
  switch (kind) {
    case StorageKind::kLocalDisk: return "LOCALDISK";
    case StorageKind::kRemoteDisk: return "REMOTEDISK";
    case StorageKind::kRemoteTape: return "REMOTETAPE";
  }
  return "?";
}

Status ServerResource::readv(simkit::Timeline& timeline, HandleId handle,
                             std::span<const IoRun> runs,
                             std::span<std::byte> out) {
  std::size_t filled = 0;
  for (const IoRun& run : runs) {
    if (filled + run.length > out.size()) {
      return Status::InvalidArgument("readv run list overflows buffer");
    }
    MSRA_RETURN_IF_ERROR(seek(timeline, handle, run.offset));
    MSRA_RETURN_IF_ERROR(
        read(timeline, handle, out.subspan(filled, run.length)));
    filled += run.length;
  }
  return Status::Ok();
}

Status ServerResource::writev(simkit::Timeline& timeline, HandleId handle,
                              std::span<const IoRun> runs,
                              std::span<const std::byte> data) {
  std::size_t consumed = 0;
  for (const IoRun& run : runs) {
    if (consumed + run.length > data.size()) {
      return Status::InvalidArgument("writev run list overflows payload");
    }
    MSRA_RETURN_IF_ERROR(seek(timeline, handle, run.offset));
    MSRA_RETURN_IF_ERROR(
        write(timeline, handle, data.subspan(consumed, run.length)));
    consumed += run.length;
  }
  return Status::Ok();
}

// ---------------------------------------------------------- DiskResource --

DiskResource::DiskResource(std::string name, StorageKind kind,
                           store::ObjectStore* store, store::DiskModel model,
                           std::uint64_t capacity_bytes, int arms)
    : name_(std::move(name)),
      kind_(kind),
      store_(store),
      model_(model),
      capacity_(capacity_bytes),
      arm_(name_ + "/arm", arms) {}

StatusOr<HandleId> DiskResource::open(simkit::Timeline& timeline,
                                      const std::string& path, OpenMode mode) {
  MSRA_RETURN_IF_ERROR(check_available());
  {
    // A pending-remove path is already unlinked: the name is gone even
    // though open handles keep the bytes alive.
    std::lock_guard<std::mutex> lock(mutex_);
    if (pending_remove_.count(path) != 0) {
      return Status::NotFound("no object: " + path);
    }
  }
  switch (mode) {
    case OpenMode::kRead:
      if (!store_->exists(path)) return Status::NotFound("no object: " + path);
      arm_.acquire(timeline, model_.open_read);
      break;
    case OpenMode::kCreate:
      MSRA_RETURN_IF_ERROR(store_->create(path, /*overwrite=*/false));
      arm_.acquire(timeline, model_.open_write);
      break;
    case OpenMode::kOverwrite:
      MSRA_RETURN_IF_ERROR(store_->create(path, /*overwrite=*/true));
      arm_.acquire(timeline, model_.open_write);
      break;
    case OpenMode::kUpdate:
      if (!store_->exists(path)) return Status::NotFound("no object: " + path);
      arm_.acquire(timeline, model_.open_write);
      break;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  const HandleId handle = next_handle_++;
  handles_[handle] = {path, 0, mode};
  return handle;
}

Status DiskResource::seek(simkit::Timeline& timeline, HandleId handle,
                          std::uint64_t offset) {
  MSRA_RETURN_IF_ERROR(check_available());
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = handles_.find(handle);
  if (it == handles_.end()) return Status::InvalidArgument("bad handle");
  if (it->second.pos != offset) {
    arm_.acquire(timeline, model_.seek);
    it->second.pos = offset;
  }
  return Status::Ok();
}

Status DiskResource::read(simkit::Timeline& timeline, HandleId handle,
                          std::span<std::byte> out) {
  MSRA_RETURN_IF_ERROR(check_available());
  std::string path;
  std::uint64_t pos = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = handles_.find(handle);
    if (it == handles_.end()) return Status::InvalidArgument("bad handle");
    path = it->second.path;
    pos = it->second.pos;
  }
  MSRA_RETURN_IF_ERROR(store_->read(path, pos, out));
  arm_.acquire(timeline, model_.read_time(out.size()));
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = handles_.find(handle);
  if (it != handles_.end()) it->second.pos = pos + out.size();
  return Status::Ok();
}

Status DiskResource::write(simkit::Timeline& timeline, HandleId handle,
                           std::span<const std::byte> data) {
  MSRA_RETURN_IF_ERROR(check_available());
  std::string path;
  std::uint64_t pos = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = handles_.find(handle);
    if (it == handles_.end()) return Status::InvalidArgument("bad handle");
    if (it->second.mode == OpenMode::kRead) {
      return Status::PermissionDenied("handle opened read-only");
    }
    path = it->second.path;
    pos = it->second.pos;
  }
  // Capacity check: only growth beyond the current object end counts.
  const std::uint64_t current = store_->size(path).value_or(0);
  const std::uint64_t new_end = pos + data.size();
  if (new_end > current && used() + (new_end - current) > capacity_) {
    return Status::CapacityExceeded(name_ + " is full");
  }
  MSRA_RETURN_IF_ERROR(store_->write(path, pos, data));
  arm_.acquire(timeline, model_.write_time(data.size()));
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = handles_.find(handle);
  if (it != handles_.end()) it->second.pos = new_end;
  return Status::Ok();
}

Status DiskResource::close(simkit::Timeline& timeline, HandleId handle) {
  MSRA_RETURN_IF_ERROR(check_available());
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = handles_.find(handle);
  if (it == handles_.end()) return Status::InvalidArgument("bad handle");
  arm_.acquire(timeline, it->second.mode == OpenMode::kRead
                             ? model_.close_read
                             : model_.close_write);
  const std::string path = it->second.path;
  handles_.erase(it);
  // Last close of an unlinked object: reclaim the bytes now.
  if (pending_remove_.count(path) != 0) {
    bool still_open = false;
    for (const auto& [id, file] : handles_) {
      if (file.path == path) {
        still_open = true;
        break;
      }
    }
    if (!still_open) {
      pending_remove_.erase(path);
      return store_->remove(path);
    }
  }
  return Status::Ok();
}

StatusOr<std::uint64_t> DiskResource::tell(HandleId handle) const {
  MSRA_RETURN_IF_ERROR(check_available());
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = handles_.find(handle);
  if (it == handles_.end()) return Status::InvalidArgument("bad handle");
  return it->second.pos;
}

Status DiskResource::readv(simkit::Timeline& timeline, HandleId handle,
                           std::span<const IoRun> runs,
                           std::span<std::byte> out) {
  MSRA_RETURN_IF_ERROR(check_available());
  std::size_t filled = 0;
  std::vector<std::byte> hole;  // read-through scratch, content discarded
  for (const IoRun& run : runs) {
    if (filled + run.length > out.size()) {
      return Status::InvalidArgument("readv run list overflows buffer");
    }
    std::uint64_t pos = 0;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      auto it = handles_.find(handle);
      if (it == handles_.end()) return Status::InvalidArgument("bad handle");
      pos = it->second.pos;
    }
    // The whole access list is known up front, so the scheduler may stream
    // over a forward hole (sequential-transfer time) instead of
    // repositioning the arm (mechanical seek time), whichever is cheaper.
    if (run.offset > pos && model_.read_time(run.offset - pos) < model_.seek) {
      hole.resize(static_cast<std::size_t>(run.offset - pos));
      MSRA_RETURN_IF_ERROR(read(timeline, handle, hole));
    } else if (run.offset != pos) {
      MSRA_RETURN_IF_ERROR(seek(timeline, handle, run.offset));
    }
    MSRA_RETURN_IF_ERROR(
        read(timeline, handle, out.subspan(filled, run.length)));
    filled += run.length;
  }
  return Status::Ok();
}

Status DiskResource::remove(const std::string& path) {
  MSRA_RETURN_IF_ERROR(check_available());
  std::lock_guard<std::mutex> lock(mutex_);
  // POSIX-style deferred unlink: while a handle is open on the path, only
  // mark the name gone; the bytes go when the last handle closes.
  for (const auto& [id, file] : handles_) {
    if (file.path == path) {
      pending_remove_.insert(path);
      return Status::Ok();
    }
  }
  pending_remove_.erase(path);
  return store_->remove(path);
}

StatusOr<std::uint64_t> DiskResource::size(const std::string& path) const {
  MSRA_RETURN_IF_ERROR(check_available());
  return store_->size(path);
}

std::vector<store::ObjectInfo> DiskResource::list(const std::string& prefix) const {
  if (!available()) return {};
  return store_->list(prefix);
}

// ---------------------------------------------------------- TapeResource --

TapeResource::TapeResource(std::string name, tape::BitfileBackend* backend)
    : name_(std::move(name)), library_(backend) {}

StatusOr<HandleId> TapeResource::open(simkit::Timeline& timeline,
                                      const std::string& path, OpenMode mode) {
  MSRA_RETURN_IF_ERROR(check_available());
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (pending_remove_.count(path) != 0) {
      return Status::NotFound("no bitfile: " + path);
    }
  }
  switch (mode) {
    case OpenMode::kRead:
      if (!library_->exists(path)) return Status::NotFound("no bitfile: " + path);
      timeline.advance(library_->open_cost(path, /*write=*/false));
      break;
    case OpenMode::kCreate:
      MSRA_RETURN_IF_ERROR(library_->create(path, /*overwrite=*/false));
      timeline.advance(library_->open_cost(path, /*write=*/true));
      break;
    case OpenMode::kOverwrite:
      MSRA_RETURN_IF_ERROR(library_->create(path, /*overwrite=*/true));
      timeline.advance(library_->open_cost(path, /*write=*/true));
      break;
    case OpenMode::kUpdate: {
      if (!library_->exists(path)) return Status::NotFound("no bitfile: " + path);
      timeline.advance(library_->open_cost(path, /*write=*/true));
      // Position at the append point: tape files only grow at the tail.
      auto size = library_->size(path);
      std::lock_guard<std::mutex> lock(mutex_);
      const HandleId handle = next_handle_++;
      handles_[handle] = {path, size.value_or(0), mode};
      return handle;
    }
  }
  std::lock_guard<std::mutex> lock(mutex_);
  const HandleId handle = next_handle_++;
  handles_[handle] = {path, 0, mode};
  return handle;
}

Status TapeResource::seek(simkit::Timeline& timeline, HandleId handle,
                          std::uint64_t offset) {
  MSRA_RETURN_IF_ERROR(check_available());
  (void)timeline;  // head movement is charged when data actually moves
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = handles_.find(handle);
  if (it == handles_.end()) return Status::InvalidArgument("bad handle");
  it->second.pos = offset;
  return Status::Ok();
}

Status TapeResource::read(simkit::Timeline& timeline, HandleId handle,
                          std::span<std::byte> out) {
  MSRA_RETURN_IF_ERROR(check_available());
  std::string path;
  std::uint64_t pos = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = handles_.find(handle);
    if (it == handles_.end()) return Status::InvalidArgument("bad handle");
    path = it->second.path;
    pos = it->second.pos;
  }
  MSRA_RETURN_IF_ERROR(library_->read(timeline, path, pos, out));
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = handles_.find(handle);
  if (it != handles_.end()) it->second.pos = pos + out.size();
  return Status::Ok();
}

Status TapeResource::write(simkit::Timeline& timeline, HandleId handle,
                           std::span<const std::byte> data) {
  MSRA_RETURN_IF_ERROR(check_available());
  std::string path;
  std::uint64_t pos = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = handles_.find(handle);
    if (it == handles_.end()) return Status::InvalidArgument("bad handle");
    if (it->second.mode == OpenMode::kRead) {
      return Status::PermissionDenied("handle opened read-only");
    }
    path = it->second.path;
    pos = it->second.pos;
  }
  MSRA_RETURN_IF_ERROR(library_->append(timeline, path, pos, data));
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = handles_.find(handle);
  if (it != handles_.end()) it->second.pos = pos + data.size();
  return Status::Ok();
}

Status TapeResource::close(simkit::Timeline& timeline, HandleId handle) {
  MSRA_RETURN_IF_ERROR(check_available());
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = handles_.find(handle);
  if (it == handles_.end()) return Status::InvalidArgument("bad handle");
  timeline.advance(
      library_->close_cost(it->second.mode != OpenMode::kRead));
  const std::string path = it->second.path;
  handles_.erase(it);
  if (pending_remove_.count(path) != 0) {
    bool still_open = false;
    for (const auto& [id, file] : handles_) {
      if (file.path == path) {
        still_open = true;
        break;
      }
    }
    if (!still_open) {
      pending_remove_.erase(path);
      return library_->remove(path);
    }
  }
  return Status::Ok();
}

StatusOr<std::uint64_t> TapeResource::tell(HandleId handle) const {
  MSRA_RETURN_IF_ERROR(check_available());
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = handles_.find(handle);
  if (it == handles_.end()) return Status::InvalidArgument("bad handle");
  return it->second.pos;
}

Status TapeResource::remove(const std::string& path) {
  MSRA_RETURN_IF_ERROR(check_available());
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [id, file] : handles_) {
    if (file.path == path) {
      pending_remove_.insert(path);
      return Status::Ok();
    }
  }
  pending_remove_.erase(path);
  return library_->remove(path);
}

StatusOr<std::uint64_t> TapeResource::size(const std::string& path) const {
  MSRA_RETURN_IF_ERROR(check_available());
  return library_->size(path);
}

std::vector<store::ObjectInfo> TapeResource::list(const std::string& prefix) const {
  if (!available()) return {};
  return library_->list(prefix);
}

}  // namespace msra::srb
