#include "srb/server.h"

#include <vector>

namespace msra::srb {

namespace proto {

void put_status(net::WireWriter& w, const Status& status) {
  w.put_u8(static_cast<std::uint8_t>(status.code()));
  w.put_string(status.message());
}

Status get_status(net::WireReader& r) {
  auto code = r.get_u8();
  if (!code.ok()) return code.status();
  auto message = r.get_string();
  if (!message.ok()) return message.status();
  return Status(static_cast<ErrorCode>(*code), std::move(*message));
}

}  // namespace proto

SrbServer::SrbServer(std::string name, ServerConfig config)
    : name_(std::move(name)),
      config_(config),
      cpu_(name_ + "/cpu", config.worker_threads) {}

Status SrbServer::register_resource(ServerResource* resource) {
  auto [it, inserted] = resources_.emplace(resource->name(), resource);
  if (!inserted) {
    return Status::AlreadyExists("resource exists: " + resource->name());
  }
  return Status::Ok();
}

ServerResource* SrbServer::resource(const std::string& name) const {
  auto it = resources_.find(name);
  return it == resources_.end() ? nullptr : it->second;
}

std::vector<std::string> SrbServer::resource_names() const {
  std::vector<std::string> out;
  out.reserve(resources_.size());
  for (const auto& [name, r] : resources_) out.push_back(name);
  return out;
}

std::vector<std::byte> SrbServer::dispatch(std::span<const std::byte> request,
                                           simkit::SimTime arrival,
                                           simkit::SimTime* completion) {
  simkit::Timeline tl(arrival);
  cpu_.acquire(tl, config_.request_overhead);
  net::WireReader reader(request);
  std::vector<std::byte> response;
  if (down_) {
    net::WireWriter w;
    proto::put_status(w, Status::Unavailable("server " + name_ + " is down"));
    response = w.take();
  } else {
    response = handle(reader, tl);
  }
  if (completion) *completion = tl.now();
  return response;
}

std::vector<std::byte> SrbServer::handle(net::WireReader& reader,
                                         simkit::Timeline& tl) {
  net::WireWriter w;
  auto fail = [&w](const Status& status) {
    proto::put_status(w, status);
    return w.take();
  };

  auto op_raw = reader.get_u8();
  if (!op_raw.ok()) return fail(op_raw.status());
  const Op op = static_cast<Op>(*op_raw);

  switch (op) {
    case Op::kConnect:
    case Op::kDisconnect: {
      proto::put_status(w, Status::Ok());
      return w.take();
    }
    case Op::kOpen: {
      auto rname = reader.get_string();
      auto path = reader.get_string();
      auto mode = reader.get_u8();
      if (!rname.ok() || !path.ok() || !mode.ok()) {
        return fail(Status::InvalidArgument("bad open request"));
      }
      ServerResource* r = resource(*rname);
      if (!r) return fail(Status::NotFound("no resource: " + *rname));
      auto handle = r->open(tl, *path, static_cast<OpenMode>(*mode));
      if (!handle.ok()) return fail(handle.status());
      proto::put_status(w, Status::Ok());
      w.put_u64(*handle);
      return w.take();
    }
    case Op::kSeek: {
      auto rname = reader.get_string();
      auto handle = reader.get_u64();
      auto offset = reader.get_u64();
      if (!rname.ok() || !handle.ok() || !offset.ok()) {
        return fail(Status::InvalidArgument("bad seek request"));
      }
      ServerResource* r = resource(*rname);
      if (!r) return fail(Status::NotFound("no resource: " + *rname));
      proto::put_status(w, r->seek(tl, *handle, *offset));
      return w.take();
    }
    case Op::kRead: {
      auto rname = reader.get_string();
      auto handle = reader.get_u64();
      auto length = reader.get_u64();
      if (!rname.ok() || !handle.ok() || !length.ok()) {
        return fail(Status::InvalidArgument("bad read request"));
      }
      ServerResource* r = resource(*rname);
      if (!r) return fail(Status::NotFound("no resource: " + *rname));
      std::vector<std::byte> buffer(*length);
      Status status = r->read(tl, *handle, buffer);
      if (!status.ok()) return fail(status);
      proto::put_status(w, Status::Ok());
      w.put_bytes(buffer);
      return w.take();
    }
    case Op::kWrite: {
      auto rname = reader.get_string();
      auto handle = reader.get_u64();
      auto data = reader.get_bytes();
      if (!rname.ok() || !handle.ok() || !data.ok()) {
        return fail(Status::InvalidArgument("bad write request"));
      }
      ServerResource* r = resource(*rname);
      if (!r) return fail(Status::NotFound("no resource: " + *rname));
      proto::put_status(w, r->write(tl, *handle, *data));
      return w.take();
    }
    case Op::kClose: {
      auto rname = reader.get_string();
      auto handle = reader.get_u64();
      if (!rname.ok() || !handle.ok()) {
        return fail(Status::InvalidArgument("bad close request"));
      }
      ServerResource* r = resource(*rname);
      if (!r) return fail(Status::NotFound("no resource: " + *rname));
      proto::put_status(w, r->close(tl, *handle));
      return w.take();
    }
    case Op::kRemove: {
      auto rname = reader.get_string();
      auto path = reader.get_string();
      if (!rname.ok() || !path.ok()) {
        return fail(Status::InvalidArgument("bad remove request"));
      }
      ServerResource* r = resource(*rname);
      if (!r) return fail(Status::NotFound("no resource: " + *rname));
      proto::put_status(w, r->remove(*path));
      return w.take();
    }
    case Op::kStat: {
      auto rname = reader.get_string();
      auto path = reader.get_string();
      if (!rname.ok() || !path.ok()) {
        return fail(Status::InvalidArgument("bad stat request"));
      }
      ServerResource* r = resource(*rname);
      if (!r) return fail(Status::NotFound("no resource: " + *rname));
      auto size = r->size(*path);
      if (!size.ok()) return fail(size.status());
      proto::put_status(w, Status::Ok());
      w.put_u64(*size);
      return w.take();
    }
    case Op::kList: {
      auto rname = reader.get_string();
      auto prefix = reader.get_string();
      if (!rname.ok() || !prefix.ok()) {
        return fail(Status::InvalidArgument("bad list request"));
      }
      ServerResource* r = resource(*rname);
      if (!r) return fail(Status::NotFound("no resource: " + *rname));
      auto objects = r->list(*prefix);
      proto::put_status(w, Status::Ok());
      w.put_u32(static_cast<std::uint32_t>(objects.size()));
      for (const auto& info : objects) {
        w.put_string(info.name);
        w.put_u64(info.size);
      }
      return w.take();
    }
    case Op::kReplicate: {
      auto src = reader.get_string();
      auto path = reader.get_string();
      auto dst = reader.get_string();
      if (!src.ok() || !path.ok() || !dst.ok()) {
        return fail(Status::InvalidArgument("bad replicate request"));
      }
      proto::put_status(w, replicate(tl, *src, *path, *dst));
      return w.take();
    }
    case Op::kReadv: {
      auto rname = reader.get_string();
      auto handle = reader.get_u64();
      auto count = reader.get_u32();
      if (!rname.ok() || !handle.ok() || !count.ok()) {
        return fail(Status::InvalidArgument("bad readv request"));
      }
      ServerResource* r = resource(*rname);
      if (!r) return fail(Status::NotFound("no resource: " + *rname));
      std::vector<IoRun> runs;
      runs.reserve(*count);
      std::uint64_t total = 0;
      for (std::uint32_t i = 0; i < *count; ++i) {
        auto offset = reader.get_u64();
        auto length = reader.get_u64();
        if (!offset.ok() || !length.ok()) {
          return fail(Status::InvalidArgument("bad readv run descriptor"));
        }
        runs.push_back({*offset, *length});
        total += *length;
      }
      std::vector<std::byte> buffer(total);
      Status status = r->readv(tl, *handle, runs, buffer);
      if (!status.ok()) return fail(status);
      proto::put_status(w, Status::Ok());
      w.put_bytes(buffer);
      return w.take();
    }
    case Op::kWritev: {
      auto rname = reader.get_string();
      auto handle = reader.get_u64();
      auto count = reader.get_u32();
      if (!rname.ok() || !handle.ok() || !count.ok()) {
        return fail(Status::InvalidArgument("bad writev request"));
      }
      ServerResource* r = resource(*rname);
      if (!r) return fail(Status::NotFound("no resource: " + *rname));
      std::vector<IoRun> runs;
      runs.reserve(*count);
      std::uint64_t total = 0;
      for (std::uint32_t i = 0; i < *count; ++i) {
        auto offset = reader.get_u64();
        auto length = reader.get_u64();
        if (!offset.ok() || !length.ok()) {
          return fail(Status::InvalidArgument("bad writev run descriptor"));
        }
        runs.push_back({*offset, *length});
        total += *length;
      }
      auto data = reader.get_bytes();
      if (!data.ok() || data->size() != total) {
        return fail(Status::InvalidArgument("bad writev payload"));
      }
      Status status = r->writev(tl, *handle, runs, *data);
      if (!status.ok()) return fail(status);
      proto::put_status(w, Status::Ok());
      return w.take();
    }
    case Op::kPRead: {
      auto rname = reader.get_string();
      auto handle = reader.get_u64();
      auto offset = reader.get_u64();
      auto length = reader.get_u64();
      if (!rname.ok() || !handle.ok() || !offset.ok() || !length.ok()) {
        return fail(Status::InvalidArgument("bad pread request"));
      }
      ServerResource* r = resource(*rname);
      if (!r) return fail(Status::NotFound("no resource: " + *rname));
      std::vector<std::byte> buffer(*length);
      Status status = r->seek(tl, *handle, *offset);
      if (status.ok()) status = r->read(tl, *handle, buffer);
      if (!status.ok()) return fail(status);
      proto::put_status(w, Status::Ok());
      w.put_bytes(buffer);
      return w.take();
    }
    case Op::kPWrite: {
      auto rname = reader.get_string();
      auto handle = reader.get_u64();
      auto offset = reader.get_u64();
      auto data = reader.get_bytes();
      if (!rname.ok() || !handle.ok() || !offset.ok() || !data.ok()) {
        return fail(Status::InvalidArgument("bad pwrite request"));
      }
      ServerResource* r = resource(*rname);
      if (!r) return fail(Status::NotFound("no resource: " + *rname));
      Status status = r->seek(tl, *handle, *offset);
      if (status.ok()) status = r->write(tl, *handle, *data);
      proto::put_status(w, status);
      return w.take();
    }
    case Op::kTell: {
      auto rname = reader.get_string();
      auto handle = reader.get_u64();
      if (!rname.ok() || !handle.ok()) {
        return fail(Status::InvalidArgument("bad tell request"));
      }
      ServerResource* r = resource(*rname);
      if (!r) return fail(Status::NotFound("no resource: " + *rname));
      auto pos = r->tell(*handle);
      if (!pos.ok()) return fail(pos.status());
      proto::put_status(w, Status::Ok());
      w.put_u64(*pos);
      return w.take();
    }
  }
  return fail(Status::InvalidArgument("unknown opcode"));
}

Status SrbServer::replicate(simkit::Timeline& timeline,
                            const std::string& src_resource,
                            const std::string& path,
                            const std::string& dst_resource) {
  ServerResource* src = resource(src_resource);
  ServerResource* dst = resource(dst_resource);
  if (!src) return Status::NotFound("no resource: " + src_resource);
  if (!dst) return Status::NotFound("no resource: " + dst_resource);

  MSRA_ASSIGN_OR_RETURN(std::uint64_t total, src->size(path));
  MSRA_ASSIGN_OR_RETURN(HandleId in, src->open(timeline, path, OpenMode::kRead));
  auto out = dst->open(timeline, path, OpenMode::kOverwrite);
  if (!out.ok()) {
    (void)src->close(timeline, in);
    return out.status();
  }
  // Stream in bounded chunks (server-side copy does not cross the WAN).
  constexpr std::uint64_t kChunk = 4ull << 20;
  std::vector<std::byte> buffer;
  Status status = Status::Ok();
  for (std::uint64_t off = 0; off < total && status.ok(); off += kChunk) {
    const std::uint64_t n = std::min(kChunk, total - off);
    buffer.resize(n);
    status = src->read(timeline, in, buffer);
    if (status.ok()) status = dst->write(timeline, *out, buffer);
  }
  Status close_in = src->close(timeline, in);
  Status close_out = dst->close(timeline, *out);
  if (!status.ok()) return status;
  if (!close_in.ok()) return close_in;
  return close_out;
}

}  // namespace msra::srb
