// Server-side storage resources hosted by the SRB-like server.
//
// A ServerResource is the paper's "physical storage resource + native
// storage interface" pair: deliberately performance-naive (section 3.1 —
// "this layer is performance-insensitive"); all optimization happens in the
// run-time libraries above. Handles carry an explicit file position so the
// seek cost of Table 1 is a real, separately-billed operation.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "common/status.h"
#include "simkit/resource.h"
#include "srb/fastpath.h"
#include "simkit/timeline.h"
#include "store/disk_model.h"
#include "store/object_store.h"
#include "tape/tape_library.h"

namespace msra::srb {

/// Storage classes of the paper's architecture.
enum class StorageKind { kLocalDisk, kRemoteDisk, kRemoteTape };

std::string_view storage_kind_name(StorageKind kind);

/// File open modes (the paper's AMODE column: read / create / over_write,
/// plus update = open an existing object writable without truncation).
enum class OpenMode { kRead, kCreate, kOverwrite, kUpdate };

using HandleId = std::uint64_t;

/// Abstract server-side resource. Thread-safe.
class ServerResource {
 public:
  virtual ~ServerResource() = default;

  virtual StorageKind kind() const = 0;
  virtual const std::string& name() const = 0;

  /// Opens an object, charging the open cost. kCreate fails on an existing
  /// object; kOverwrite truncates or creates.
  virtual StatusOr<HandleId> open(simkit::Timeline& timeline,
                                  const std::string& path, OpenMode mode) = 0;

  /// Repositions the handle, charging the seek cost.
  virtual Status seek(simkit::Timeline& timeline, HandleId handle,
                      std::uint64_t offset) = 0;

  /// Reads `out.size()` bytes at the handle position, advancing it.
  virtual Status read(simkit::Timeline& timeline, HandleId handle,
                      std::span<std::byte> out) = 0;

  /// Writes at the handle position, advancing it.
  virtual Status write(simkit::Timeline& timeline, HandleId handle,
                       std::span<const std::byte> data) = 0;

  /// Closes the handle, charging the close cost.
  virtual Status close(simkit::Timeline& timeline, HandleId handle) = 0;

  /// Reads a run list (in order) into `out`, packed back-to-back. The
  /// default bills exactly like the per-run seek+read loop a client would
  /// issue; devices that can exploit knowing the whole access list up front
  /// (disk schedulers) override it.
  virtual Status readv(simkit::Timeline& timeline, HandleId handle,
                       std::span<const IoRun> runs, std::span<std::byte> out);

  /// Writes a run list (in order) from `data`, packed back-to-back. Holes
  /// between runs cannot be streamed over (their content must survive), so
  /// every device pays seek+write per run.
  virtual Status writev(simkit::Timeline& timeline, HandleId handle,
                        std::span<const IoRun> runs,
                        std::span<const std::byte> data);

  /// Current position of an open handle. Free (pure bookkeeping, no device
  /// time): the pipelined transfer path uses it to chunk a transfer without
  /// mirroring handle state on the client.
  virtual StatusOr<std::uint64_t> tell(HandleId handle) const {
    (void)handle;
    return Status::Unimplemented("tell not supported by " + std::string(name()));
  }

  /// Unlinks an object. POSIX semantics: if any handle is still open on the
  /// path, the name disappears immediately (new opens fail NotFound) but the
  /// bytes survive until the last handle closes.
  virtual Status remove(const std::string& path) = 0;
  virtual StatusOr<std::uint64_t> size(const std::string& path) const = 0;
  virtual std::vector<store::ObjectInfo> list(const std::string& prefix) const = 0;

  /// Capacity in bytes (UINT64_MAX means effectively unlimited).
  virtual std::uint64_t capacity() const = 0;
  virtual std::uint64_t used() const = 0;

  /// Fault injection: an unavailable resource fails every operation with
  /// kUnavailable (the paper's "remote tape system is down for maintenance"
  /// scenario).
  void set_available(bool available) { available_.store(available); }
  bool available() const { return available_.load(); }

 protected:
  Status check_available() const {
    if (!available()) {
      return Status::Unavailable("storage resource is down: " + name());
    }
    return Status::Ok();
  }

 private:
  std::atomic<bool> available_{true};
};

/// A disk-backed resource (local disks, or the remote disks at "SDSC").
class DiskResource final : public ServerResource {
 public:
  /// Does not own `store` (sharing lets tests inspect objects directly).
  /// `arms` models striping: that many requests can be serviced in
  /// parallel (a RAID of independent spindles).
  DiskResource(std::string name, StorageKind kind, store::ObjectStore* store,
               store::DiskModel model, std::uint64_t capacity_bytes,
               int arms = 1);

  StorageKind kind() const override { return kind_; }
  const std::string& name() const override { return name_; }

  StatusOr<HandleId> open(simkit::Timeline& timeline, const std::string& path,
                          OpenMode mode) override;
  Status seek(simkit::Timeline& timeline, HandleId handle,
              std::uint64_t offset) override;
  Status read(simkit::Timeline& timeline, HandleId handle,
              std::span<std::byte> out) override;
  Status write(simkit::Timeline& timeline, HandleId handle,
               std::span<const std::byte> data) override;
  Status close(simkit::Timeline& timeline, HandleId handle) override;
  StatusOr<std::uint64_t> tell(HandleId handle) const override;
  /// Disk scheduling over a known access list: a small forward hole is read
  /// through sequentially when that is cheaper than repositioning the arm.
  Status readv(simkit::Timeline& timeline, HandleId handle,
               std::span<const IoRun> runs, std::span<std::byte> out) override;
  Status remove(const std::string& path) override;
  StatusOr<std::uint64_t> size(const std::string& path) const override;
  std::vector<store::ObjectInfo> list(const std::string& prefix) const override;
  std::uint64_t capacity() const override { return capacity_; }
  std::uint64_t used() const override { return store_->used_bytes(); }

  const store::DiskModel& model() const { return model_; }
  simkit::Resource& arm() { return arm_; }

 private:
  struct OpenFile {
    std::string path;
    std::uint64_t pos = 0;
    OpenMode mode = OpenMode::kRead;
  };

  std::string name_;
  StorageKind kind_;
  store::ObjectStore* store_;
  store::DiskModel model_;
  std::uint64_t capacity_;
  simkit::Resource arm_;
  mutable std::mutex mutex_;
  std::map<HandleId, OpenFile> handles_;
  std::set<std::string> pending_remove_;  ///< unlinked, but handles still open
  HandleId next_handle_ = 1;
};

/// An archive-backed resource (the HPSS stand-in): bare tapes, or the full
/// disk-cache + tape hierarchy when given an HsmStore.
class TapeResource final : public ServerResource {
 public:
  /// Does not own `backend`.
  TapeResource(std::string name, tape::BitfileBackend* backend);

  StorageKind kind() const override { return StorageKind::kRemoteTape; }
  const std::string& name() const override { return name_; }

  StatusOr<HandleId> open(simkit::Timeline& timeline, const std::string& path,
                          OpenMode mode) override;
  Status seek(simkit::Timeline& timeline, HandleId handle,
              std::uint64_t offset) override;
  Status read(simkit::Timeline& timeline, HandleId handle,
              std::span<std::byte> out) override;
  Status write(simkit::Timeline& timeline, HandleId handle,
               std::span<const std::byte> data) override;
  Status close(simkit::Timeline& timeline, HandleId handle) override;
  StatusOr<std::uint64_t> tell(HandleId handle) const override;
  Status remove(const std::string& path) override;
  StatusOr<std::uint64_t> size(const std::string& path) const override;
  std::vector<store::ObjectInfo> list(const std::string& prefix) const override;
  std::uint64_t capacity() const override { return UINT64_MAX; }
  std::uint64_t used() const override { return library_->used_bytes(); }

  tape::BitfileBackend& backend() { return *library_; }

 private:
  struct OpenFile {
    std::string path;
    std::uint64_t pos = 0;
    OpenMode mode = OpenMode::kRead;
  };

  std::string name_;
  tape::BitfileBackend* library_;
  mutable std::mutex mutex_;
  std::map<HandleId, OpenFile> handles_;
  std::set<std::string> pending_remove_;  ///< unlinked, but handles still open
  HandleId next_handle_ = 1;
};

}  // namespace msra::srb
