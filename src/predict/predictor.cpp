#include "predict/predictor.h"

#include "runtime/plan.h"

namespace msra::predict {

namespace {
/// rw term off the requested curve, falling back to the serial curve when
/// the pipelined one has no measurements for this location.
StatusOr<double> transfer_term(const PerfDb* db, core::Location location,
                               IoOp op, std::uint64_t bytes,
                               TransferMode mode) {
  if (mode == TransferMode::kPipelined) {
    auto fast = db->rw_time(location, op, bytes, TransferMode::kPipelined);
    if (fast.ok()) return fast;
  }
  return db->rw_time(location, op, bytes);
}
}  // namespace

StatusOr<double> Predictor::call_time(core::Location location, IoOp op,
                                      std::uint64_t bytes) const {
  return call_time(location, op, bytes, TransferMode::kSerial);
}

StatusOr<double> Predictor::call_time(core::Location location, IoOp op,
                                      std::uint64_t bytes,
                                      TransferMode mode) const {
  MSRA_ASSIGN_OR_RETURN(FixedCosts costs, db_->fixed(location, op));
  MSRA_ASSIGN_OR_RETURN(double rw, transfer_term(db_, location, op, bytes, mode));
  return costs.conn + costs.open + costs.seek + rw + costs.close +
         costs.connclose;
}

StatusOr<double> Predictor::batched_call_time(core::Location location, IoOp op,
                                              std::uint64_t runs,
                                              std::uint64_t total_bytes,
                                              TransferMode mode) const {
  MSRA_ASSIGN_OR_RETURN(FixedCosts costs, db_->fixed(location, op));
  MSRA_ASSIGN_OR_RETURN(double rw,
                        transfer_term(db_, location, op, total_bytes, mode));
  double extra = 0.0;
  if (runs > 1) {
    MSRA_ASSIGN_OR_RETURN(double per_run, db_->batch_overhead(location, op));
    extra = static_cast<double>(runs - 1) * per_run;
  }
  // No Tseek term: a vectored call issues no seek RPCs — positioning costs
  // are what the measured per-run batch overhead captures.
  return costs.conn + costs.open + rw + extra + costs.close + costs.connclose;
}

StatusOr<DatasetPrediction> Predictor::predict_dataset(
    const core::DatasetDesc& desc, core::Location resolved, int iterations,
    int nprocs, IoOp op) const {
  return predict_dataset(desc, resolved, iterations, nprocs, op,
                         FastPathAssumptions{});
}

StatusOr<double> Predictor::price_stage(core::Location location, IoOp op,
                                        TransferMode mode,
                                        const runtime::PlanStage& stage) const {
  MSRA_ASSIGN_OR_RETURN(FixedCosts costs, db_->fixed(location, op));
  double sum = 0.0;
  for (const runtime::PlanOp& planned : stage.ops) {
    switch (planned.kind) {
      case runtime::PlanOpKind::kConnect:
        sum += costs.conn;
        break;
      case runtime::PlanOpKind::kOpen:
        sum += costs.open;
        break;
      case runtime::PlanOpKind::kSeek:
        sum += costs.seek;
        break;
      case runtime::PlanOpKind::kRead:
      case runtime::PlanOpKind::kWrite: {
        MSRA_ASSIGN_OR_RETURN(
            double rw, transfer_term(db_, location, op, planned.bytes, mode));
        sum += rw;
        break;
      }
      case runtime::PlanOpKind::kReadv:
      case runtime::PlanOpKind::kWritev: {
        // No Tseek term: a vectored call issues no seek RPCs — positioning
        // costs are what the measured per-run batch overhead captures.
        MSRA_ASSIGN_OR_RETURN(
            double rw, transfer_term(db_, location, op, planned.bytes, mode));
        sum += rw;
        if (planned.runs() > 1) {
          MSRA_ASSIGN_OR_RETURN(double per_run,
                                db_->batch_overhead(location, op));
          sum += static_cast<double>(planned.runs() - 1) * per_run;
        }
        break;
      }
      case runtime::PlanOpKind::kClose:
        sum += costs.close;
        break;
      case runtime::PlanOpKind::kDisconnect:
        sum += costs.connclose;
        break;
      case runtime::PlanOpKind::kCopyIn:
      case runtime::PlanOpKind::kCopyOut:
        break;  // in-memory: free
    }
  }
  return sum;
}

StatusOr<std::vector<StagePrice>> Predictor::price_stages(
    const runtime::IoPlan& plan, core::Location location) const {
  const IoOp op =
      plan.dir == runtime::PlanDir::kWrite ? IoOp::kWrite : IoOp::kRead;
  const TransferMode mode =
      plan.pipelined ? TransferMode::kPipelined : TransferMode::kSerial;
  std::vector<StagePrice> out;
  out.reserve(plan.stages.size());
  for (const runtime::PlanStage& stage : plan.stages) {
    StagePrice price;
    price.label = stage.label;
    price.kind = stage.kind;
    price.repeat = stage.repeat;
    if (stage.kind != runtime::PlanStageKind::kExchange) {
      MSRA_ASSIGN_OR_RETURN(price.seconds,
                            price_stage(location, op, mode, stage));
    }
    out.push_back(std::move(price));
  }
  return out;
}

StatusOr<double> Predictor::price(const runtime::IoPlan& plan,
                                  core::Location location) const {
  MSRA_ASSIGN_OR_RETURN(std::vector<StagePrice> stages,
                        price_stages(plan, location));
  double total = 0.0;
  for (const StagePrice& stage : stages) {
    total += static_cast<double>(stage.repeat) * stage.seconds;
  }
  return total;
}

StatusOr<DatasetPrediction> Predictor::predict_dataset(
    const core::DatasetDesc& desc, core::Location resolved, int iterations,
    int nprocs, IoOp op, const FastPathAssumptions& fast) const {
  DatasetPrediction out;
  out.name = desc.name;
  out.location = resolved;
  if (resolved == core::Location::kDisable ||
      desc.location == core::Location::kDisable) {
    out.location = core::Location::kDisable;
    return out;  // never dumped: zero cost
  }
  MSRA_ASSIGN_OR_RETURN(
      prt::Decomposition decomp,
      prt::Decomposition::create(desc.dims, nprocs, desc.pattern));
  runtime::ArrayLayout layout{decomp, element_size(desc.etype)};
  // Lower the dataset's per-dump access to the same plan IR the runtime
  // executes, reshaped by the fast-path assumptions, and price that.
  runtime::PlanAssumptions assumptions;
  assumptions.vectored_rpc =
      fast.vectored_rpc && desc.method == runtime::IoMethod::kNaive;
  assumptions.pipelined = fast.transfer == TransferMode::kPipelined;
  assumptions.pooled_connections = fast.pooled_connections;
  const runtime::PlanDir dir =
      op == IoOp::kWrite ? runtime::PlanDir::kWrite : runtime::PlanDir::kRead;
  MSRA_ASSIGN_OR_RETURN(
      const runtime::IoPlan plan,
      runtime::PlanBuilder::dataset_dump(layout, desc.method, desc.aggregators,
                                         dir, assumptions));
  out.dumps = desc.dumps(iterations);
  out.calls_per_dump = plan.calls_per_dump();
  out.call_bytes = plan.call_bytes();
  const TransferMode mode =
      plan.pipelined ? TransferMode::kPipelined : TransferMode::kSerial;
  const runtime::PlanStage* session = plan.session_stage();
  if (session == nullptr) {
    return Status::Internal("dataset dump plan has no session stage");
  }
  // t_j(s) = Eq. (1) over the session's ops; under pooling the connection
  // legs live in separate setup/teardown stages billed once per run.
  MSRA_ASSIGN_OR_RETURN(out.call_time,
                        price_stage(resolved, op, mode, *session));
  for (const runtime::PlanStage& stage : plan.stages) {
    if (stage.kind != runtime::PlanStageKind::kSetup &&
        stage.kind != runtime::PlanStageKind::kTeardown) {
      continue;
    }
    MSRA_ASSIGN_OR_RETURN(double seconds,
                          price_stage(resolved, op, mode, stage));
    out.connection_time += seconds;
  }
  out.total = static_cast<double>(out.dumps) *
                  static_cast<double>(out.calls_per_dump) * out.call_time +
              out.connection_time;
  return out;
}

StatusOr<RunPrediction> Predictor::predict_run(
    const std::vector<std::pair<core::DatasetDesc, core::Location>>& datasets,
    int iterations, int nprocs, IoOp op) const {
  RunPrediction out;
  for (const auto& [desc, resolved] : datasets) {
    MSRA_ASSIGN_OR_RETURN(
        DatasetPrediction prediction,
        predict_dataset(desc, resolved, iterations, nprocs, op));
    out.total += prediction.total;
    out.datasets.push_back(std::move(prediction));
  }
  return out;
}

}  // namespace msra::predict
