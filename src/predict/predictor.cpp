#include "predict/predictor.h"

#include <algorithm>

#include "runtime/plan.h"

namespace msra::predict {

namespace {
/// rw term off the requested curve, falling back to the serial curve when
/// the pipelined one has no measurements for this location.
StatusOr<double> transfer_term(const PerfDb* db, core::Location location,
                               IoOp op, std::uint64_t bytes,
                               TransferMode mode) {
  if (mode == TransferMode::kPipelined) {
    auto fast = db->rw_time(location, op, bytes, TransferMode::kPipelined);
    if (fast.ok()) return fast;
  }
  return db->rw_time(location, op, bytes);
}
}  // namespace

double LoadAssumptions::utilization_inflation() const {
  const double u = std::clamp(utilization, 0.0, 0.95);
  return 1.0 / (1.0 - u);
}

StatusOr<FixedCosts> Predictor::loaded_fixed(core::Location location, IoOp op,
                                             const LoadAssumptions& load) const {
  // The dedicated path goes straight to the classic table so default-load
  // pricing is bit-identical to the pre-load predictor.
  if (load.dedicated()) return db_->fixed(location, op);
  FixedCosts base;
  bool measured = false;
  if (load.prefer_measured && load.clients > 1.0) {
    auto contended = db_->contended_fixed(location, op, load.clients);
    if (contended.ok()) {
      base = *contended;
      measured = true;
    }
  }
  if (!measured) {
    MSRA_ASSIGN_OR_RETURN(base, db_->fixed(location, op));
    const double inflation = load.client_inflation();
    base.conn *= inflation;
    base.open *= inflation;
    base.seek *= inflation;
    base.close *= inflation;
    base.connclose *= inflation;
  }
  const double util = load.utilization_inflation();
  base.conn *= util;
  base.open *= util;
  base.seek *= util;
  base.close *= util;
  base.connclose *= util;
  return base;
}

StatusOr<double> Predictor::loaded_rw(core::Location location, IoOp op,
                                      std::uint64_t bytes, TransferMode mode,
                                      const LoadAssumptions& load) const {
  if (load.dedicated()) return transfer_term(db_, location, op, bytes, mode);
  double t = 0.0;
  bool measured = false;
  // Contended measurements are taken through the classic (serial) transfer
  // path; a pipelined plan under load falls back to analytic inflation.
  if (load.prefer_measured && load.clients > 1.0 &&
      mode == TransferMode::kSerial) {
    auto contended = db_->contended_rw_time(location, op, load.clients, bytes);
    if (contended.ok()) {
      t = *contended;
      measured = true;
    }
  }
  if (!measured) {
    MSRA_ASSIGN_OR_RETURN(t, transfer_term(db_, location, op, bytes, mode));
    t *= load.client_inflation();
  }
  return t * load.utilization_inflation();
}

StatusOr<double> Predictor::call_time(core::Location location, IoOp op,
                                      std::uint64_t bytes) const {
  return call_time(location, op, bytes, TransferMode::kSerial);
}

StatusOr<double> Predictor::call_time(core::Location location, IoOp op,
                                      std::uint64_t bytes,
                                      TransferMode mode) const {
  return call_time(location, op, bytes, mode, LoadAssumptions{});
}

StatusOr<double> Predictor::call_time(core::Location location, IoOp op,
                                      std::uint64_t bytes, TransferMode mode,
                                      const LoadAssumptions& load) const {
  return call_time(location, op, bytes, mode, load, CacheAssumptions{});
}

StatusOr<double> Predictor::call_time(core::Location location, IoOp op,
                                      std::uint64_t bytes, TransferMode mode,
                                      const LoadAssumptions& load,
                                      const CacheAssumptions& cache) const {
  MSRA_ASSIGN_OR_RETURN(FixedCosts costs, loaded_fixed(location, op, load));
  MSRA_ASSIGN_OR_RETURN(double rw, loaded_rw(location, op, bytes, mode, load));
  const double origin = costs.conn + costs.open + costs.seek + rw +
                        costs.close + costs.connclose;
  if (op != IoOp::kRead || cache.off()) return origin;
  // Cache-aware blend: a fraction h of read calls never leave the node —
  // they pay the cache tier's Eq. (1) instead of the origin's.
  MSRA_ASSIGN_OR_RETURN(FixedCosts hit_costs, db_->cache_fixed(op));
  MSRA_ASSIGN_OR_RETURN(double hit_rw, db_->cache_rw_time(op, bytes));
  const double hit = hit_costs.conn + hit_costs.open + hit_costs.seek +
                     hit_rw + hit_costs.close + hit_costs.connclose;
  const double h = std::min(cache.hit_ratio, 1.0);
  return (1.0 - h) * origin + h * hit;
}

StatusOr<double> Predictor::batched_call_time(core::Location location, IoOp op,
                                              std::uint64_t runs,
                                              std::uint64_t total_bytes,
                                              TransferMode mode) const {
  MSRA_ASSIGN_OR_RETURN(FixedCosts costs, db_->fixed(location, op));
  MSRA_ASSIGN_OR_RETURN(double rw,
                        transfer_term(db_, location, op, total_bytes, mode));
  double extra = 0.0;
  if (runs > 1) {
    MSRA_ASSIGN_OR_RETURN(double per_run, db_->batch_overhead(location, op));
    extra = static_cast<double>(runs - 1) * per_run;
  }
  // No Tseek term: a vectored call issues no seek RPCs — positioning costs
  // are what the measured per-run batch overhead captures.
  return costs.conn + costs.open + rw + extra + costs.close + costs.connclose;
}

StatusOr<DatasetPrediction> Predictor::predict_dataset(
    const core::DatasetDesc& desc, core::Location resolved, int iterations,
    int nprocs, IoOp op) const {
  return predict_dataset(desc, resolved, iterations, nprocs, op,
                         FastPathAssumptions{});
}

StatusOr<double> Predictor::price_stage(core::Location location, IoOp op,
                                        TransferMode mode,
                                        const runtime::PlanStage& stage,
                                        const LoadAssumptions& load,
                                        const CacheAssumptions& cache) const {
  MSRA_ASSIGN_OR_RETURN(FixedCosts costs, loaded_fixed(location, op, load));
  // Cache-aware blend: in the read direction, a fraction h of every Eq. (1)
  // term is served by the cache tier instead of the origin. Write-direction
  // stages never blend — the cache is read-only.
  const bool blended = op == IoOp::kRead && !cache.off();
  const double h = blended ? std::min(cache.hit_ratio, 1.0) : 0.0;
  FixedCosts hit_costs;
  if (blended) {
    MSRA_ASSIGN_OR_RETURN(hit_costs, db_->cache_fixed(op));
  }
  const auto mix = [h](double origin, double hit) {
    return (1.0 - h) * origin + h * hit;
  };
  double sum = 0.0;
  for (const runtime::PlanOp& planned : stage.ops) {
    switch (planned.kind) {
      case runtime::PlanOpKind::kConnect:
        sum += mix(costs.conn, hit_costs.conn);
        break;
      case runtime::PlanOpKind::kOpen:
        sum += mix(costs.open, hit_costs.open);
        break;
      case runtime::PlanOpKind::kSeek:
        sum += mix(costs.seek, hit_costs.seek);
        break;
      case runtime::PlanOpKind::kRead:
      case runtime::PlanOpKind::kWrite: {
        MSRA_ASSIGN_OR_RETURN(
            double rw, loaded_rw(location, op, planned.bytes, mode, load));
        if (blended && planned.kind == runtime::PlanOpKind::kRead) {
          MSRA_ASSIGN_OR_RETURN(double hit_rw,
                                db_->cache_rw_time(op, planned.bytes));
          sum += mix(rw, hit_rw);
        } else {
          sum += rw;
        }
        break;
      }
      case runtime::PlanOpKind::kReadv:
      case runtime::PlanOpKind::kWritev: {
        // No Tseek term: a vectored call issues no seek RPCs — positioning
        // costs are what the measured per-run batch overhead captures.
        MSRA_ASSIGN_OR_RETURN(
            double rw, loaded_rw(location, op, planned.bytes, mode, load));
        double origin = rw;
        if (planned.runs() > 1) {
          MSRA_ASSIGN_OR_RETURN(double per_run,
                                db_->batch_overhead(location, op));
          if (!load.dedicated()) {
            // No contended batch table: the marginal per-run cost inflates
            // analytically like any other queued service.
            per_run *= load.client_inflation() * load.utilization_inflation();
          }
          origin += static_cast<double>(planned.runs() - 1) * per_run;
        }
        if (blended && planned.kind == runtime::PlanOpKind::kReadv) {
          // Hit side: a vectored request against resident memory degenerates
          // to positioned copies — the payload off the cache curve plus one
          // cache seek per extra run.
          MSRA_ASSIGN_OR_RETURN(double hit_rw,
                                db_->cache_rw_time(op, planned.bytes));
          if (planned.runs() > 1) {
            hit_rw +=
                static_cast<double>(planned.runs() - 1) * hit_costs.seek;
          }
          sum += mix(origin, hit_rw);
        } else {
          sum += origin;
        }
        break;
      }
      case runtime::PlanOpKind::kClose:
        sum += mix(costs.close, hit_costs.close);
        break;
      case runtime::PlanOpKind::kDisconnect:
        sum += mix(costs.connclose, hit_costs.connclose);
        break;
      case runtime::PlanOpKind::kCopyIn:
      case runtime::PlanOpKind::kCopyOut:
        break;  // in-memory: free
    }
  }
  return sum;
}

StatusOr<std::vector<StagePrice>> Predictor::price_stages(
    const runtime::IoPlan& plan, core::Location location) const {
  return price_stages(plan, location, LoadAssumptions{});
}

StatusOr<std::vector<StagePrice>> Predictor::price_stages(
    const runtime::IoPlan& plan, core::Location location,
    const LoadAssumptions& load) const {
  return price_stages(plan, location, load, CacheAssumptions{});
}

StatusOr<std::vector<StagePrice>> Predictor::price_stages(
    const runtime::IoPlan& plan, core::Location location,
    const LoadAssumptions& load, const CacheAssumptions& cache) const {
  const IoOp op =
      plan.dir == runtime::PlanDir::kWrite ? IoOp::kWrite : IoOp::kRead;
  const TransferMode mode =
      plan.pipelined ? TransferMode::kPipelined : TransferMode::kSerial;
  std::vector<StagePrice> out;
  out.reserve(plan.stages.size());
  for (const runtime::PlanStage& stage : plan.stages) {
    StagePrice price;
    price.label = stage.label;
    price.kind = stage.kind;
    price.repeat = stage.repeat;
    if (stage.kind != runtime::PlanStageKind::kExchange) {
      MSRA_ASSIGN_OR_RETURN(
          price.seconds, price_stage(location, op, mode, stage, load, cache));
    }
    out.push_back(std::move(price));
  }
  return out;
}

StatusOr<double> Predictor::price(const runtime::IoPlan& plan,
                                  core::Location location) const {
  return price(plan, location, LoadAssumptions{});
}

StatusOr<double> Predictor::price(const runtime::IoPlan& plan,
                                  core::Location location,
                                  const LoadAssumptions& load) const {
  return price(plan, location, load, CacheAssumptions{});
}

StatusOr<double> Predictor::price(const runtime::IoPlan& plan,
                                  core::Location location,
                                  const LoadAssumptions& load,
                                  const CacheAssumptions& cache) const {
  MSRA_ASSIGN_OR_RETURN(std::vector<StagePrice> stages,
                        price_stages(plan, location, load, cache));
  double total = 0.0;
  for (const StagePrice& stage : stages) {
    total += static_cast<double>(stage.repeat) * stage.seconds;
  }
  return total;
}

StatusOr<double> Predictor::price_serial(
    const std::vector<PlacedPlan>& plans) const {
  double total = 0.0;
  for (const PlacedPlan& placed : plans) {
    MSRA_ASSIGN_OR_RETURN(double seconds,
                          price(placed.plan, placed.location, placed.load));
    total += seconds;
  }
  return total;
}

StatusOr<DatasetPrediction> Predictor::predict_dataset(
    const core::DatasetDesc& desc, core::Location resolved, int iterations,
    int nprocs, IoOp op, const FastPathAssumptions& fast) const {
  return predict_dataset(desc, resolved, iterations, nprocs, op, fast,
                         LoadAssumptions{});
}

StatusOr<DatasetPrediction> Predictor::predict_dataset(
    const core::DatasetDesc& desc, core::Location resolved, int iterations,
    int nprocs, IoOp op, const FastPathAssumptions& fast,
    const LoadAssumptions& load) const {
  return predict_dataset(desc, resolved, iterations, nprocs, op, fast, load,
                         CacheAssumptions{});
}

StatusOr<DatasetPrediction> Predictor::predict_dataset(
    const core::DatasetDesc& desc, core::Location resolved, int iterations,
    int nprocs, IoOp op, const FastPathAssumptions& fast,
    const LoadAssumptions& load, const CacheAssumptions& cache) const {
  DatasetPrediction out;
  out.name = desc.name;
  out.location = resolved;
  if (resolved == core::Location::kDisable ||
      desc.location == core::Location::kDisable) {
    out.location = core::Location::kDisable;
    return out;  // never dumped: zero cost
  }
  MSRA_ASSIGN_OR_RETURN(
      prt::Decomposition decomp,
      prt::Decomposition::create(desc.dims, nprocs, desc.pattern));
  runtime::ArrayLayout layout{decomp, element_size(desc.etype)};
  // Lower the dataset's per-dump access to the same plan IR the runtime
  // executes, reshaped by the fast-path assumptions, and price that.
  runtime::PlanAssumptions assumptions;
  assumptions.vectored_rpc =
      fast.vectored_rpc && desc.method == runtime::IoMethod::kNaive;
  assumptions.pipelined = fast.transfer == TransferMode::kPipelined;
  assumptions.pooled_connections = fast.pooled_connections;
  const runtime::PlanDir dir =
      op == IoOp::kWrite ? runtime::PlanDir::kWrite : runtime::PlanDir::kRead;
  MSRA_ASSIGN_OR_RETURN(
      const runtime::IoPlan plan,
      runtime::PlanBuilder::dataset_dump(layout, desc.method, desc.aggregators,
                                         dir, assumptions));
  out.dumps = desc.dumps(iterations);
  out.calls_per_dump = plan.calls_per_dump();
  out.call_bytes = plan.call_bytes();
  const TransferMode mode =
      plan.pipelined ? TransferMode::kPipelined : TransferMode::kSerial;
  const runtime::PlanStage* session = plan.session_stage();
  if (session == nullptr) {
    return Status::Internal("dataset dump plan has no session stage");
  }
  // t_j(s) = Eq. (1) over the session's ops; under pooling the connection
  // legs live in separate setup/teardown stages billed once per run.
  MSRA_ASSIGN_OR_RETURN(out.call_time,
                        price_stage(resolved, op, mode, *session, load, cache));
  for (const runtime::PlanStage& stage : plan.stages) {
    if (stage.kind != runtime::PlanStageKind::kSetup &&
        stage.kind != runtime::PlanStageKind::kTeardown) {
      continue;
    }
    MSRA_ASSIGN_OR_RETURN(double seconds,
                          price_stage(resolved, op, mode, stage, load, cache));
    out.connection_time += seconds;
  }
  out.total = static_cast<double>(out.dumps) *
                  static_cast<double>(out.calls_per_dump) * out.call_time +
              out.connection_time;
  return out;
}

StatusOr<RunPrediction> Predictor::predict_run(
    const std::vector<std::pair<core::DatasetDesc, core::Location>>& datasets,
    int iterations, int nprocs, IoOp op) const {
  return predict_run(datasets, iterations, nprocs, op, LoadAssumptions{});
}

StatusOr<RunPrediction> Predictor::predict_run(
    const std::vector<std::pair<core::DatasetDesc, core::Location>>& datasets,
    int iterations, int nprocs, IoOp op, const LoadAssumptions& load) const {
  return predict_run(datasets, iterations, nprocs, op, load,
                     CacheAssumptions{});
}

StatusOr<RunPrediction> Predictor::predict_run(
    const std::vector<std::pair<core::DatasetDesc, core::Location>>& datasets,
    int iterations, int nprocs, IoOp op, const LoadAssumptions& load,
    const CacheAssumptions& cache) const {
  RunPrediction out;
  for (const auto& [desc, resolved] : datasets) {
    MSRA_ASSIGN_OR_RETURN(
        DatasetPrediction prediction,
        predict_dataset(desc, resolved, iterations, nprocs, op,
                        FastPathAssumptions{}, load, cache));
    out.total += prediction.total;
    out.datasets.push_back(std::move(prediction));
  }
  return out;
}

}  // namespace msra::predict
