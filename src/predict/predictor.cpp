#include "predict/predictor.h"

#include "runtime/parallel_io.h"

namespace msra::predict {

namespace {
/// rw term off the requested curve, falling back to the serial curve when
/// the pipelined one has no measurements for this location.
StatusOr<double> transfer_term(const PerfDb* db, core::Location location,
                               IoOp op, std::uint64_t bytes,
                               TransferMode mode) {
  if (mode == TransferMode::kPipelined) {
    auto fast = db->rw_time(location, op, bytes, TransferMode::kPipelined);
    if (fast.ok()) return fast;
  }
  return db->rw_time(location, op, bytes);
}
}  // namespace

StatusOr<double> Predictor::call_time(core::Location location, IoOp op,
                                      std::uint64_t bytes) const {
  return call_time(location, op, bytes, TransferMode::kSerial);
}

StatusOr<double> Predictor::call_time(core::Location location, IoOp op,
                                      std::uint64_t bytes,
                                      TransferMode mode) const {
  MSRA_ASSIGN_OR_RETURN(FixedCosts costs, db_->fixed(location, op));
  MSRA_ASSIGN_OR_RETURN(double rw, transfer_term(db_, location, op, bytes, mode));
  return costs.conn + costs.open + costs.seek + rw + costs.close +
         costs.connclose;
}

StatusOr<double> Predictor::batched_call_time(core::Location location, IoOp op,
                                              std::uint64_t runs,
                                              std::uint64_t total_bytes,
                                              TransferMode mode) const {
  MSRA_ASSIGN_OR_RETURN(FixedCosts costs, db_->fixed(location, op));
  MSRA_ASSIGN_OR_RETURN(double rw,
                        transfer_term(db_, location, op, total_bytes, mode));
  double extra = 0.0;
  if (runs > 1) {
    MSRA_ASSIGN_OR_RETURN(double per_run, db_->batch_overhead(location, op));
    extra = static_cast<double>(runs - 1) * per_run;
  }
  // No Tseek term: a vectored call issues no seek RPCs — positioning costs
  // are what the measured per-run batch overhead captures.
  return costs.conn + costs.open + rw + extra + costs.close + costs.connclose;
}

StatusOr<DatasetPrediction> Predictor::predict_dataset(
    const core::DatasetDesc& desc, core::Location resolved, int iterations,
    int nprocs, IoOp op) const {
  return predict_dataset(desc, resolved, iterations, nprocs, op,
                         FastPathAssumptions{});
}

StatusOr<DatasetPrediction> Predictor::predict_dataset(
    const core::DatasetDesc& desc, core::Location resolved, int iterations,
    int nprocs, IoOp op, const FastPathAssumptions& fast) const {
  DatasetPrediction out;
  out.name = desc.name;
  out.location = resolved;
  if (resolved == core::Location::kDisable ||
      desc.location == core::Location::kDisable) {
    out.location = core::Location::kDisable;
    return out;  // never dumped: zero cost
  }
  MSRA_ASSIGN_OR_RETURN(
      prt::Decomposition decomp,
      prt::Decomposition::create(desc.dims, nprocs, desc.pattern));
  runtime::ArrayLayout layout{decomp, element_size(desc.etype)};
  const bool batched =
      fast.vectored_rpc && desc.method == runtime::IoMethod::kNaive;
  const runtime::IoPlan plan =
      runtime::plan_io(layout, desc.method, desc.aggregators, batched);
  out.dumps = desc.dumps(iterations);
  out.calls_per_dump = plan.calls;
  out.call_bytes = plan.unit_bytes;
  if (batched && plan.runs_per_call > 1) {
    MSRA_ASSIGN_OR_RETURN(
        out.call_time,
        batched_call_time(resolved, op, plan.runs_per_call, plan.unit_bytes,
                          fast.transfer));
  } else {
    MSRA_ASSIGN_OR_RETURN(
        out.call_time, call_time(resolved, op, plan.unit_bytes, fast.transfer));
  }
  if (fast.pooled_connections) {
    // Eq. (1) with pooling: the connection is set up once per run, so the
    // per-call cost drops Tconn + Tconnclose and they are billed once.
    MSRA_ASSIGN_OR_RETURN(FixedCosts costs, db_->fixed(resolved, op));
    out.call_time -= costs.conn + costs.connclose;
    out.connection_time = costs.conn + costs.connclose;
  }
  out.total = static_cast<double>(out.dumps) *
                  static_cast<double>(out.calls_per_dump) * out.call_time +
              out.connection_time;
  return out;
}

StatusOr<RunPrediction> Predictor::predict_run(
    const std::vector<std::pair<core::DatasetDesc, core::Location>>& datasets,
    int iterations, int nprocs, IoOp op) const {
  RunPrediction out;
  for (const auto& [desc, resolved] : datasets) {
    MSRA_ASSIGN_OR_RETURN(
        DatasetPrediction prediction,
        predict_dataset(desc, resolved, iterations, nprocs, op));
    out.total += prediction.total;
    out.datasets.push_back(std::move(prediction));
  }
  return out;
}

}  // namespace msra::predict
