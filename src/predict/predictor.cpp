#include "predict/predictor.h"

#include "runtime/parallel_io.h"

namespace msra::predict {

StatusOr<double> Predictor::call_time(core::Location location, IoOp op,
                                      std::uint64_t bytes) const {
  MSRA_ASSIGN_OR_RETURN(FixedCosts costs, db_->fixed(location, op));
  MSRA_ASSIGN_OR_RETURN(double rw, db_->rw_time(location, op, bytes));
  return costs.conn + costs.open + costs.seek + rw + costs.close +
         costs.connclose;
}

StatusOr<DatasetPrediction> Predictor::predict_dataset(
    const core::DatasetDesc& desc, core::Location resolved, int iterations,
    int nprocs, IoOp op) const {
  DatasetPrediction out;
  out.name = desc.name;
  out.location = resolved;
  if (resolved == core::Location::kDisable ||
      desc.location == core::Location::kDisable) {
    out.location = core::Location::kDisable;
    return out;  // never dumped: zero cost
  }
  MSRA_ASSIGN_OR_RETURN(
      prt::Decomposition decomp,
      prt::Decomposition::create(desc.dims, nprocs, desc.pattern));
  runtime::ArrayLayout layout{decomp, element_size(desc.etype)};
  const runtime::IoPlan plan =
      runtime::plan_io(layout, desc.method, desc.aggregators);
  out.dumps = desc.dumps(iterations);
  out.calls_per_dump = plan.calls;
  out.call_bytes = plan.unit_bytes;
  MSRA_ASSIGN_OR_RETURN(out.call_time, call_time(resolved, op, plan.unit_bytes));
  out.total = static_cast<double>(out.dumps) *
              static_cast<double>(out.calls_per_dump) * out.call_time;
  return out;
}

StatusOr<RunPrediction> Predictor::predict_run(
    const std::vector<std::pair<core::DatasetDesc, core::Location>>& datasets,
    int iterations, int nprocs, IoOp op) const {
  RunPrediction out;
  for (const auto& [desc, resolved] : datasets) {
    MSRA_ASSIGN_OR_RETURN(
        DatasetPrediction prediction,
        predict_dataset(desc, resolved, iterations, nprocs, op));
    out.total += prediction.total;
    out.datasets.push_back(std::move(prediction));
  }
  return out;
}

}  // namespace msra::predict
