// PTool: automatic performance-database population (section 4.1).
//
// "To efficiently obtain these numbers, we built a tool called PTool that
// can automatically generate all these numbers. This program automatically
// measures read/write time of various data sizes and stores them in the
// database directly. Therefore, the user can easily set up her basic
// performance prediction database in a single run."
//
// PTool drives the *actual* storage stack with probe timelines — the
// predictor never peeks at the simulator's constants, so prediction vs
// measurement is a genuine comparison.
#pragma once

#include <vector>

#include "core/system.h"
#include "predict/perfdb.h"

namespace msra::predict {

struct PToolConfig {
  /// Transfer sizes to measure (Figs 6-8 sweep).
  std::vector<std::uint64_t> sizes = {64ull << 10, 256ull << 10, 1ull << 20,
                                      2ull << 20,  4ull << 20,   8ull << 20};
  /// Repetitions per point (averaged).
  int repeats = 3;

  /// Fast-path probing (remote disk only). With `measure_fast_path` set,
  /// measure_location also populates the pipelined rw curve (for sizes
  /// above one chunk) and the vectored per-run batch overhead.
  bool measure_fast_path = false;
  std::uint32_t pipeline_streams = 4;
  /// Strided runs per vectored probe (K in (t_K - t_1) / (K - 1)).
  int batch_probe_runs = 8;
  std::uint64_t batch_probe_run_bytes = 64ull << 10;

  /// Contended probing. With `measure_contended` set, measure_location
  /// repeats the rw sweep and the fixed-cost probe with N concurrent probe
  /// clients per level in `contended_levels`, feeding the perf_rw_load /
  /// perf_fixed_load tables that back load-aware prediction. Off by
  /// default: the single-client database stays byte-identical.
  bool measure_contended = false;
  std::vector<int> contended_levels = {2, 4, 8};
  /// Round-robin rounds per contended probe. Round 1 is a simultaneous
  /// burst; later rounds converge on the steady-state inflation a
  /// sustained multi-client run sees (~clients x the dedicated time on a
  /// saturated serial device).
  int contended_rounds = 4;

  /// Cache probing. With `measure_cache` set (and the system's mid-tier
  /// read cache enabled), measure_all also probes the cache endpoint's
  /// fixed costs and read transfer curve into the perf_cache_* tables that
  /// back hit-ratio-blended CacheAssumptions pricing. Off by default: the
  /// classic database stays byte-identical.
  bool measure_cache = false;
};

class PTool {
 public:
  PTool(core::StorageSystem& system, PerfDb& db) : system_(system), db_(db) {}

  /// Measures fixed costs + rw curves for every storage resource and both
  /// directions, storing everything in the performance database.
  Status measure_all(const PToolConfig& config = {});

  /// Measures one resource.
  Status measure_location(core::Location location, const PToolConfig& config);

  /// One-shot measurements (also used by the Table 1 bench).
  StatusOr<FixedCosts> measure_fixed(core::Location location, IoOp op);
  StatusOr<double> measure_rw(core::Location location, IoOp op,
                              std::uint64_t bytes, int repeats);

  /// Like measure_rw but through the pipelined transfer path with
  /// `streams` chunk round-trips in flight (the endpoint's fast-path
  /// config is saved and restored around the probe).
  StatusOr<double> measure_rw_pipelined(core::Location location, IoOp op,
                                        std::uint64_t bytes,
                                        std::uint32_t streams, int repeats);

  /// Marginal per-run cost of a vectored request, from a K-run strided
  /// probe vs. a contiguous single-run transfer of the same total size:
  /// max(0, (t_K - t_1) / (K - 1)).
  StatusOr<double> measure_batch_overhead(core::Location location, IoOp op,
                                          int runs, std::uint64_t run_bytes);

  /// Mean per-call transfer time with `clients` identical probes all ready
  /// at t = 0 (each on its own virtual timeline), issuing `rounds`
  /// transfers round-robin against the shared devices. Round 1 is FIFO
  /// service of a simultaneous burst; later rounds measure the sustained
  /// time-sharing regime.
  StatusOr<double> measure_contended_rw(core::Location location, IoOp op,
                                        int clients, std::uint64_t bytes,
                                        int rounds = 4);

  /// Mean per-session fixed costs with `clients` probes stepping through
  /// each Eq. (1) phase (connect / open / [seek] / close / disconnect) in
  /// lockstep, for `rounds` whole sessions. Probes share the system's
  /// endpoint, exactly like concurrent sessions do, so pooled-connection
  /// effects are part of the measurement.
  StatusOr<FixedCosts> measure_contended_fixed(core::Location location,
                                               IoOp op, int clients,
                                               int rounds = 4);

  /// Probes the system's enabled read cache (fixed costs + read curve at
  /// config.sizes) into the perf_cache_* tables. Probe entries are
  /// inserted unpriced and invalidated afterwards. Fails
  /// kFailedPrecondition without StorageSystem::enable_cache.
  Status measure_cache(const PToolConfig& config = {});

  /// One-shot cache measurements (read direction — the cache is read-only).
  StatusOr<FixedCosts> measure_cache_fixed();
  StatusOr<double> measure_cache_rw(std::uint64_t bytes, int repeats);

 private:
  /// Ensures tape cartridges are mounted etc. so fixed-cost probes do not
  /// absorb one-time effects.
  Status warm_up(core::Location location);

  core::StorageSystem& system_;
  PerfDb& db_;
  int probe_counter_ = 0;
};

}  // namespace msra::predict
