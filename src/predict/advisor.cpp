#include "predict/advisor.h"

#include <algorithm>
#include <limits>

#include "core/placement.h"

namespace msra::predict {

StatusOr<std::vector<PlacementQuote>> PlacementAdvisor::quotes(
    const core::DatasetDesc& desc, int iterations, int nprocs,
    double read_passes) const {
  std::vector<PlacementQuote> out;
  const std::uint64_t footprint = desc.footprint_bytes(iterations);
  for (core::Location location : core::ordered_candidates(core::Location::kAuto)) {
    runtime::StorageEndpoint& endpoint = system_.endpoint(location);
    if (!endpoint.available() || endpoint.free_bytes() < footprint) continue;
    PlacementQuote quote;
    quote.location = location;
    MSRA_ASSIGN_OR_RETURN(
        DatasetPrediction write,
        predictor_.predict_dataset(desc, location, iterations, nprocs,
                                   IoOp::kWrite));
    MSRA_ASSIGN_OR_RETURN(
        DatasetPrediction read,
        predictor_.predict_dataset(desc, location, iterations, nprocs,
                                   IoOp::kRead));
    quote.write_seconds = write.total;
    quote.read_seconds = read_passes * read.total;
    out.push_back(quote);
  }
  std::sort(out.begin(), out.end(),
            [](const PlacementQuote& a, const PlacementQuote& b) {
              return a.total() < b.total();
            });
  return out;
}

StatusOr<core::Location> PlacementAdvisor::recommend(
    const core::DatasetDesc& desc, int iterations, int nprocs,
    double max_io_seconds, double read_passes) const {
  if (desc.location == core::Location::kDisable) {
    return core::Location::kDisable;
  }
  MSRA_ASSIGN_OR_RETURN(auto priced,
                        quotes(desc, iterations, nprocs, read_passes));
  if (priced.empty()) {
    return Status::Unavailable("no storage resource can hold dataset " +
                               desc.name);
  }
  const PlacementQuote& best = priced.front();
  if (max_io_seconds > 0.0 && best.total() > max_io_seconds) {
    return Status::Unavailable(
        "dataset " + desc.name + " needs " + std::to_string(best.total()) +
        " s of I/O even on " +
        std::string(core::location_name(best.location)) +
        "; the budget is " + std::to_string(max_io_seconds) + " s");
  }
  return best.location;
}

StatusOr<std::map<std::string, core::Location>> PlacementAdvisor::recommend_run(
    const std::vector<core::DatasetDesc>& datasets, int iterations, int nprocs,
    double read_passes) const {
  std::map<std::string, core::Location> out;
  // Remaining capacity per resource, starting from the live free space.
  std::map<core::Location, std::uint64_t> remaining;
  for (core::Location location : core::kConcreteLocations) {
    runtime::StorageEndpoint& endpoint = system_.endpoint(location);
    remaining[location] = endpoint.available() ? endpoint.free_bytes() : 0;
  }

  // Honor explicit hints first (they consume capacity).
  struct Pending {
    const core::DatasetDesc* desc;
    double saving;  // slowest-minus-fastest predicted cost
    std::vector<PlacementQuote> priced;
  };
  std::vector<Pending> pending;
  for (const auto& desc : datasets) {
    if (desc.location == core::Location::kDisable) {
      out[desc.name] = core::Location::kDisable;
      continue;
    }
    if (desc.location != core::Location::kAuto) {
      out[desc.name] = desc.location;
      auto& budget = remaining[desc.location];
      const std::uint64_t need = desc.footprint_bytes(iterations);
      budget = budget > need ? budget - need : 0;
      continue;
    }
    Pending p;
    p.desc = &desc;
    MSRA_ASSIGN_OR_RETURN(p.priced,
                          quotes(desc, iterations, nprocs, read_passes));
    if (p.priced.empty()) {
      return Status::Unavailable("no resource can hold dataset " + desc.name);
    }
    p.saving = p.priced.back().total() - p.priced.front().total();
    pending.push_back(std::move(p));
  }

  // Biggest potential saving first: those datasets deserve the fast media.
  std::sort(pending.begin(), pending.end(),
            [](const Pending& a, const Pending& b) { return a.saving > b.saving; });
  for (const auto& p : pending) {
    const std::uint64_t need = p.desc->footprint_bytes(iterations);
    bool placed = false;
    for (const PlacementQuote& quote : p.priced) {
      if (remaining[quote.location] >= need) {
        out[p.desc->name] = quote.location;
        remaining[quote.location] -= need;
        placed = true;
        break;
      }
    }
    if (!placed) {
      return Status::Unavailable("capacity exhausted placing dataset " +
                                 p.desc->name);
    }
  }
  return out;
}

}  // namespace msra::predict
