// The I/O performance prediction algorithm (section 4.2).
//
// Equation (1): the cost of one native I/O call of size s is
//     T(s) = Tconn + Topen + Tseek + Trw(s) + Tclose + Tconnclose
// with every component looked up in the performance database.
//
// Equation (2): the total I/O time of a run is
//     T_pred = sum_j (N / freq(j) + 1) * n(j) * t_j(s)
// where n(j) is the number of native calls the chosen optimization issues
// per dump and s the size of each call — both derived from the dataset's
// access pattern and I/O method, exactly as the API would execute them.
#pragma once

#include <string>
#include <vector>

#include "core/dataset.h"
#include "predict/perfdb.h"
#include "runtime/plan.h"

namespace msra::predict {

/// Prediction for one dataset over a full run.
struct DatasetPrediction {
  std::string name;
  core::Location location = core::Location::kRemoteTape;
  std::uint64_t dumps = 0;           ///< N/freq + 1
  std::uint64_t calls_per_dump = 0;  ///< n(j)
  std::uint64_t call_bytes = 0;      ///< s
  double call_time = 0.0;            ///< t_j(s), Equation (1)
  /// One-time connection setup + teardown billed outside the per-call cost
  /// (nonzero only under the pooled-connections assumption).
  double connection_time = 0.0;
  double total = 0.0;                ///< dumps * n(j) * t_j(s) [+ conn once]
};

/// Which fast-path optimizations the predicted workload runs with; mirrors
/// srb::FastPathConfig on the execution side.
struct FastPathAssumptions {
  /// Naive strided I/O batches each rank's run list into one vectored RPC.
  bool vectored_rpc = false;
  /// Bulk transfers follow the serial or the pipelined cost curve.
  TransferMode transfer = TransferMode::kSerial;
  /// Tconn/Tconnclose are paid once per run, not once per call.
  bool pooled_connections = false;
};

/// Prediction for a whole run (the Fig. 11 table).
struct RunPrediction {
  std::vector<DatasetPrediction> datasets;
  double total = 0.0;
};

/// Priced view of one plan stage (the `msractl explain` tree rows).
struct StagePrice {
  std::string label;
  runtime::PlanStageKind kind = runtime::PlanStageKind::kIo;
  std::uint64_t repeat = 1;   ///< stage multiplicity in the plan
  double seconds = 0.0;       ///< Eq. (1) cost of ONE execution of the stage
};

class Predictor {
 public:
  explicit Predictor(const PerfDb* db) : db_(db) {}

  /// Equation (1): one native call of `bytes` on `location`. The
  /// TransferMode overload prices the rw term off the requested curve,
  /// falling back to the serial curve when no pipelined measurements exist
  /// for the location.
  StatusOr<double> call_time(core::Location location, IoOp op,
                             std::uint64_t bytes) const;
  StatusOr<double> call_time(core::Location location, IoOp op,
                             std::uint64_t bytes, TransferMode mode) const;

  /// Cost of one vectored call carrying `runs` runs of `total_bytes`
  /// altogether: the Eq. (1) fixed terms once (minus Tseek — a vectored
  /// call issues no seek RPCs), the rw term for the total payload, plus
  /// (runs - 1) times the measured per-run batch overhead.
  StatusOr<double> batched_call_time(core::Location location, IoOp op,
                                     std::uint64_t runs,
                                     std::uint64_t total_bytes,
                                     TransferMode mode) const;

  /// Prices one execution of a lowered plan: every op is billed with its
  /// Eq. (1) component off the PerfDb curves (vectored calls use the batch
  /// overhead, pipelined plans the pipelined rw curve), each stage
  /// multiplied by its repeat count. Exchange and in-memory copy steps are
  /// free. This walks the SAME IoPlan the PlanExecutor runs — Eq. (2) is
  /// "sum of priced plans".
  StatusOr<double> price(const runtime::IoPlan& plan,
                         core::Location location) const;

  /// Per-stage breakdown of the same walk (seconds are per single
  /// execution; multiply by `repeat` for the stage's share).
  StatusOr<std::vector<StagePrice>> price_stages(const runtime::IoPlan& plan,
                                                 core::Location location) const;

  /// Per-dataset prediction for an `iterations`-long run on `nprocs` ranks.
  /// `op` selects the producer (write) or consumer (read) direction.
  StatusOr<DatasetPrediction> predict_dataset(const core::DatasetDesc& desc,
                                              core::Location resolved,
                                              int iterations, int nprocs,
                                              IoOp op) const;

  /// Same, under explicit fast-path assumptions (the default-constructed
  /// assumptions reproduce the classic prediction exactly).
  StatusOr<DatasetPrediction> predict_dataset(
      const core::DatasetDesc& desc, core::Location resolved, int iterations,
      int nprocs, IoOp op, const FastPathAssumptions& fast) const;

  /// Equation (2) over a set of datasets (write direction: the producer run).
  StatusOr<RunPrediction> predict_run(
      const std::vector<std::pair<core::DatasetDesc, core::Location>>& datasets,
      int iterations, int nprocs, IoOp op = IoOp::kWrite) const;

 private:
  /// Sums the Eq. (1) terms of one stage's ops, in op order.
  StatusOr<double> price_stage(core::Location location, IoOp op,
                               TransferMode mode,
                               const runtime::PlanStage& stage) const;

  const PerfDb* db_;
};

}  // namespace msra::predict
