// The I/O performance prediction algorithm (section 4.2).
//
// Equation (1): the cost of one native I/O call of size s is
//     T(s) = Tconn + Topen + Tseek + Trw(s) + Tclose + Tconnclose
// with every component looked up in the performance database.
//
// Equation (2): the total I/O time of a run is
//     T_pred = sum_j (N / freq(j) + 1) * n(j) * t_j(s)
// where n(j) is the number of native calls the chosen optimization issues
// per dump and s the size of each call — both derived from the dataset's
// access pattern and I/O method, exactly as the API would execute them.
#pragma once

#include <string>
#include <vector>

#include "core/dataset.h"
#include "predict/perfdb.h"
#include "runtime/plan.h"

namespace msra::predict {

/// Prediction for one dataset over a full run.
struct DatasetPrediction {
  std::string name;
  core::Location location = core::Location::kRemoteTape;
  std::uint64_t dumps = 0;           ///< N/freq + 1
  std::uint64_t calls_per_dump = 0;  ///< n(j)
  std::uint64_t call_bytes = 0;      ///< s
  double call_time = 0.0;            ///< t_j(s), Equation (1)
  /// One-time connection setup + teardown billed outside the per-call cost
  /// (nonzero only under the pooled-connections assumption).
  double connection_time = 0.0;
  double total = 0.0;                ///< dumps * n(j) * t_j(s) [+ conn once]
};

/// Which fast-path optimizations the predicted workload runs with; mirrors
/// srb::FastPathConfig on the execution side.
struct FastPathAssumptions {
  /// Naive strided I/O batches each rank's run list into one vectored RPC.
  bool vectored_rpc = false;
  /// Bulk transfers follow the serial or the pipelined cost curve.
  TransferMode transfer = TransferMode::kSerial;
  /// Tconn/Tconnclose are paid once per run, not once per call.
  bool pooled_connections = false;
};

/// The load the priced client shares its storage resources with. The
/// default (1 client, no background utilization) reproduces the dedicated
/// prediction exactly.
struct LoadAssumptions {
  /// Concurrent clients (including the priced one) issuing the same kind
  /// of work against the resource. Fractional values interpolate between
  /// PTool's measured 2/4/8 contended levels.
  double clients = 1.0;
  /// Observed background utilization of the resource in [0, 1) *beyond*
  /// the modeled clients (e.g. from `Resource::utilization()`), applied as
  /// the classic open-queueing inflation 1/(1 - u) on top of the
  /// client-level times.
  double utilization = 0.0;
  /// Prefer PTool's measured contended curves; the analytic inflation
  /// below is then only a fallback for unmeasured resources.
  bool prefer_measured = true;

  bool dedicated() const { return clients <= 1.0 && utilization <= 0.0; }

  /// Analytic fallback when no contended measurements exist: `clients`
  /// tenants time-sharing a saturated serial device each see their service
  /// stretched by the full client count (processor sharing, steady state).
  double client_inflation() const { return clients <= 1.0 ? 1.0 : clients; }
  /// 1 / (1 - u), with u clamped to 0.95 so a saturated reading stays
  /// finite.
  double utilization_inflation() const;
};

/// The mid-tier read cache the priced workload runs behind (src/cache/).
/// `hit_ratio` is the expected fraction of read calls served from the
/// cache's memory tier; every read-direction Eq. (1) term is then blended
/// as (1 - h) * origin + h * cache, with the cache-side terms looked up in
/// the perf_cache_* tables PTool's cache probe populates. The default (no
/// cache) prices bit-identically to the cache-less predictor; write
/// directions never blend (the cache is read-only, write-through
/// invalidated).
struct CacheAssumptions {
  double hit_ratio = 0.0;  ///< expected hit fraction in [0, 1]

  bool off() const { return hit_ratio <= 0.0; }
};

/// Prediction for a whole run (the Fig. 11 table).
struct RunPrediction {
  std::vector<DatasetPrediction> datasets;
  double total = 0.0;
};

/// One placed plan of a larger whole (a campaign stage's access): the unit
/// the DAG pricing entry point sums. `location` is where the plan's bytes
/// live — for a campaign read that is where the producer's output WILL
/// live, which is exactly the cross-stage staleness Eq. (2) must see.
struct PlacedPlan {
  runtime::IoPlan plan;
  core::Location location = core::Location::kRemoteTape;
  LoadAssumptions load{};
};

/// Priced view of one plan stage (the `msractl explain` tree rows).
struct StagePrice {
  std::string label;
  runtime::PlanStageKind kind = runtime::PlanStageKind::kIo;
  std::uint64_t repeat = 1;   ///< stage multiplicity in the plan
  double seconds = 0.0;       ///< Eq. (1) cost of ONE execution of the stage
};

class Predictor {
 public:
  explicit Predictor(const PerfDb* db) : db_(db) {}

  /// Equation (1): one native call of `bytes` on `location`. The
  /// TransferMode overload prices the rw term off the requested curve,
  /// falling back to the serial curve when no pipelined measurements exist
  /// for the location.
  StatusOr<double> call_time(core::Location location, IoOp op,
                             std::uint64_t bytes) const;
  StatusOr<double> call_time(core::Location location, IoOp op,
                             std::uint64_t bytes, TransferMode mode) const;
  /// Load-aware Eq. (1): the rw and fixed terms come from the measured
  /// contended curves at `load.clients` (analytic inflation when
  /// unmeasured), then scale by the background-utilization factor.
  StatusOr<double> call_time(core::Location location, IoOp op,
                             std::uint64_t bytes, TransferMode mode,
                             const LoadAssumptions& load) const;
  /// Cache-aware Eq. (1): read-direction terms blend with the measured
  /// cache tier at `cache.hit_ratio` (see CacheAssumptions).
  StatusOr<double> call_time(core::Location location, IoOp op,
                             std::uint64_t bytes, TransferMode mode,
                             const LoadAssumptions& load,
                             const CacheAssumptions& cache) const;

  /// Cost of one vectored call carrying `runs` runs of `total_bytes`
  /// altogether: the Eq. (1) fixed terms once (minus Tseek — a vectored
  /// call issues no seek RPCs), the rw term for the total payload, plus
  /// (runs - 1) times the measured per-run batch overhead.
  StatusOr<double> batched_call_time(core::Location location, IoOp op,
                                     std::uint64_t runs,
                                     std::uint64_t total_bytes,
                                     TransferMode mode) const;

  /// Prices one execution of a lowered plan: every op is billed with its
  /// Eq. (1) component off the PerfDb curves (vectored calls use the batch
  /// overhead, pipelined plans the pipelined rw curve), each stage
  /// multiplied by its repeat count. Exchange and in-memory copy steps are
  /// free. This walks the SAME IoPlan the PlanExecutor runs — Eq. (2) is
  /// "sum of priced plans".
  StatusOr<double> price(const runtime::IoPlan& plan,
                         core::Location location) const;
  /// Load-aware plan pricing: every Eq. (1) term is looked up / inflated
  /// under `load`. The default LoadAssumptions prices identically to the
  /// dedicated overload.
  StatusOr<double> price(const runtime::IoPlan& plan, core::Location location,
                         const LoadAssumptions& load) const;
  /// Cache-aware plan pricing (read-direction stages blend at the hit
  /// ratio; CacheAssumptions{} prices identically to the overload above).
  StatusOr<double> price(const runtime::IoPlan& plan, core::Location location,
                         const LoadAssumptions& load,
                         const CacheAssumptions& cache) const;

  /// Per-stage breakdown of the same walk (seconds are per single
  /// execution; multiply by `repeat` for the stage's share).
  StatusOr<std::vector<StagePrice>> price_stages(const runtime::IoPlan& plan,
                                                 core::Location location) const;
  StatusOr<std::vector<StagePrice>> price_stages(
      const runtime::IoPlan& plan, core::Location location,
      const LoadAssumptions& load) const;
  StatusOr<std::vector<StagePrice>> price_stages(
      const runtime::IoPlan& plan, core::Location location,
      const LoadAssumptions& load, const CacheAssumptions& cache) const;

  /// DAG pricing entry point: extends Eq. (2) from one dataset to a placed
  /// sequence — the summed price of every plan at its placement, i.e. one
  /// campaign stage executing its accesses serially on one clock.
  /// flow::CampaignPricer calls this per stage, then chains stage totals
  /// along the DAG to schedule earliest starts and the critical path.
  StatusOr<double> price_serial(const std::vector<PlacedPlan>& plans) const;

  /// Per-dataset prediction for an `iterations`-long run on `nprocs` ranks.
  /// `op` selects the producer (write) or consumer (read) direction.
  StatusOr<DatasetPrediction> predict_dataset(const core::DatasetDesc& desc,
                                              core::Location resolved,
                                              int iterations, int nprocs,
                                              IoOp op) const;

  /// Same, under explicit fast-path assumptions (the default-constructed
  /// assumptions reproduce the classic prediction exactly).
  StatusOr<DatasetPrediction> predict_dataset(
      const core::DatasetDesc& desc, core::Location resolved, int iterations,
      int nprocs, IoOp op, const FastPathAssumptions& fast) const;

  /// Same, additionally under a shared-resource load.
  StatusOr<DatasetPrediction> predict_dataset(
      const core::DatasetDesc& desc, core::Location resolved, int iterations,
      int nprocs, IoOp op, const FastPathAssumptions& fast,
      const LoadAssumptions& load) const;

  /// Same, additionally behind a read cache at `cache.hit_ratio`.
  StatusOr<DatasetPrediction> predict_dataset(
      const core::DatasetDesc& desc, core::Location resolved, int iterations,
      int nprocs, IoOp op, const FastPathAssumptions& fast,
      const LoadAssumptions& load, const CacheAssumptions& cache) const;

  /// Equation (2) over a set of datasets (write direction: the producer run).
  StatusOr<RunPrediction> predict_run(
      const std::vector<std::pair<core::DatasetDesc, core::Location>>& datasets,
      int iterations, int nprocs, IoOp op = IoOp::kWrite) const;

  /// Load-aware Equation (2).
  StatusOr<RunPrediction> predict_run(
      const std::vector<std::pair<core::DatasetDesc, core::Location>>& datasets,
      int iterations, int nprocs, IoOp op, const LoadAssumptions& load) const;

  /// Cache-aware Equation (2).
  StatusOr<RunPrediction> predict_run(
      const std::vector<std::pair<core::DatasetDesc, core::Location>>& datasets,
      int iterations, int nprocs, IoOp op, const LoadAssumptions& load,
      const CacheAssumptions& cache) const;

 private:
  /// Eq. (1) fixed terms under `load`: measured contended table when
  /// present, analytic inflation otherwise, always times the background
  /// utilization factor.
  StatusOr<FixedCosts> loaded_fixed(core::Location location, IoOp op,
                                    const LoadAssumptions& load) const;
  /// Eq. (1) rw term under `load` (same preference order).
  StatusOr<double> loaded_rw(core::Location location, IoOp op,
                             std::uint64_t bytes, TransferMode mode,
                             const LoadAssumptions& load) const;

  /// Sums the Eq. (1) terms of one stage's ops, in op order; read-direction
  /// terms blend with the cache tier at `cache.hit_ratio` when set.
  StatusOr<double> price_stage(core::Location location, IoOp op,
                               TransferMode mode,
                               const runtime::PlanStage& stage,
                               const LoadAssumptions& load,
                               const CacheAssumptions& cache) const;

  const PerfDb* db_;
};

}  // namespace msra::predict
