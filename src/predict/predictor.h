// The I/O performance prediction algorithm (section 4.2).
//
// Equation (1): the cost of one native I/O call of size s is
//     T(s) = Tconn + Topen + Tseek + Trw(s) + Tclose + Tconnclose
// with every component looked up in the performance database.
//
// Equation (2): the total I/O time of a run is
//     T_pred = sum_j (N / freq(j) + 1) * n(j) * t_j(s)
// where n(j) is the number of native calls the chosen optimization issues
// per dump and s the size of each call — both derived from the dataset's
// access pattern and I/O method, exactly as the API would execute them.
#pragma once

#include <string>
#include <vector>

#include "core/dataset.h"
#include "predict/perfdb.h"

namespace msra::predict {

/// Prediction for one dataset over a full run.
struct DatasetPrediction {
  std::string name;
  core::Location location = core::Location::kRemoteTape;
  std::uint64_t dumps = 0;           ///< N/freq + 1
  std::uint64_t calls_per_dump = 0;  ///< n(j)
  std::uint64_t call_bytes = 0;      ///< s
  double call_time = 0.0;            ///< t_j(s), Equation (1)
  double total = 0.0;                ///< dumps * n(j) * t_j(s)
};

/// Prediction for a whole run (the Fig. 11 table).
struct RunPrediction {
  std::vector<DatasetPrediction> datasets;
  double total = 0.0;
};

class Predictor {
 public:
  explicit Predictor(const PerfDb* db) : db_(db) {}

  /// Equation (1): one native call of `bytes` on `location`.
  StatusOr<double> call_time(core::Location location, IoOp op,
                             std::uint64_t bytes) const;

  /// Per-dataset prediction for an `iterations`-long run on `nprocs` ranks.
  /// `op` selects the producer (write) or consumer (read) direction.
  StatusOr<DatasetPrediction> predict_dataset(const core::DatasetDesc& desc,
                                              core::Location resolved,
                                              int iterations, int nprocs,
                                              IoOp op) const;

  /// Equation (2) over a set of datasets (write direction: the producer run).
  StatusOr<RunPrediction> predict_run(
      const std::vector<std::pair<core::DatasetDesc, core::Location>>& datasets,
      int iterations, int nprocs, IoOp op = IoOp::kWrite) const;

 private:
  const PerfDb* db_;
};

}  // namespace msra::predict
