#include "predict/perfdb.h"

#include <algorithm>
#include <cassert>

namespace msra::predict {

using meta::ColumnType;
using meta::Row;
using meta::Value;

std::string_view io_op_name(IoOp op) {
  return op == IoOp::kRead ? "read" : "write";
}

std::string_view transfer_mode_name(TransferMode mode) {
  return mode == TransferMode::kSerial ? "serial" : "pipelined";
}

PerfDb::PerfDb(meta::Database* db) : db_(db) {
  auto fixed = db->open_table(
      "perf_fixed", meta::Schema{{"location", ColumnType::kText},
                                 {"op", ColumnType::kText},
                                 {"conn", ColumnType::kReal},
                                 {"open", ColumnType::kReal},
                                 {"seek", ColumnType::kReal},
                                 {"close", ColumnType::kReal},
                                 {"connclose", ColumnType::kReal}});
  auto rw = db->open_table(
      "perf_rw", meta::Schema{{"location", ColumnType::kText},
                              {"op", ColumnType::kText},
                              {"bytes", ColumnType::kInt},
                              {"seconds", ColumnType::kReal}});
  // Fast-path cost model: the pipelined curve lives in its own table (the
  // perf_rw schema stays untouched for databases written by older builds),
  // and perf_batch keeps the marginal per-run cost of vectored requests.
  auto rw_pipe = db->open_table(
      "perf_rw_pipe", meta::Schema{{"location", ColumnType::kText},
                                   {"op", ColumnType::kText},
                                   {"bytes", ColumnType::kInt},
                                   {"seconds", ColumnType::kReal}});
  auto batch = db->open_table(
      "perf_batch", meta::Schema{{"location", ColumnType::kText},
                                 {"op", ColumnType::kText},
                                 {"per_run", ColumnType::kReal}});
  // Contended (multi-client) measurements keep their own tables so
  // databases written by older builds load untouched.
  auto rw_load = db->open_table(
      "perf_rw_load", meta::Schema{{"location", ColumnType::kText},
                                   {"op", ColumnType::kText},
                                   {"clients", ColumnType::kInt},
                                   {"bytes", ColumnType::kInt},
                                   {"seconds", ColumnType::kReal}});
  auto fixed_load = db->open_table(
      "perf_fixed_load", meta::Schema{{"location", ColumnType::kText},
                                      {"op", ColumnType::kText},
                                      {"clients", ColumnType::kInt},
                                      {"conn", ColumnType::kReal},
                                      {"open", ColumnType::kReal},
                                      {"seek", ColumnType::kReal},
                                      {"close", ColumnType::kReal},
                                      {"connclose", ColumnType::kReal}});
  // The mid-tier read cache's own Eq. (1) components, measured by PTool's
  // cache probe. Node-local, so no location column.
  auto cache_fixed = db->open_table(
      "perf_cache_fixed", meta::Schema{{"op", ColumnType::kText},
                                       {"conn", ColumnType::kReal},
                                       {"open", ColumnType::kReal},
                                       {"seek", ColumnType::kReal},
                                       {"close", ColumnType::kReal},
                                       {"connclose", ColumnType::kReal}});
  auto cache_rw = db->open_table(
      "perf_cache_rw", meta::Schema{{"op", ColumnType::kText},
                                    {"bytes", ColumnType::kInt},
                                    {"seconds", ColumnType::kReal}});
  assert(fixed.ok() && rw.ok() && rw_pipe.ok() && batch.ok() &&
         rw_load.ok() && fixed_load.ok() && cache_fixed.ok() && cache_rw.ok());
  fixed_ = *fixed;
  rw_ = *rw;
  rw_pipe_ = *rw_pipe;
  batch_ = *batch;
  rw_load_ = *rw_load;
  fixed_load_ = *fixed_load;
  cache_fixed_ = *cache_fixed;
  cache_rw_ = *cache_rw;
}

namespace {
std::string loc_text(core::Location location) {
  return std::string(core::location_name(location));
}
}  // namespace

Status PerfDb::put_fixed(core::Location location, IoOp op,
                         const FixedCosts& costs) {
  // Find-then-update/insert: atomic only under the database txn lock when
  // concurrent probes target the same key.
  std::lock_guard<std::mutex> txn(db_->txn_mutex());
  const std::string loc = loc_text(location);
  const std::string opname(io_op_name(op));
  Row row{loc,        opname,      costs.conn,     costs.open,
          costs.seek, costs.close, costs.connclose};
  auto ids = fixed_->find([&](const Row& r) {
    return std::get<std::string>(r[0]) == loc && std::get<std::string>(r[1]) == opname;
  });
  if (!ids.empty()) return fixed_->update(ids.front(), std::move(row));
  return fixed_->insert(std::move(row)).status();
}

StatusOr<FixedCosts> PerfDb::fixed(core::Location location, IoOp op) const {
  const std::string loc = loc_text(location);
  const std::string opname(io_op_name(op));
  auto ids = fixed_->find([&](const Row& r) {
    return std::get<std::string>(r[0]) == loc && std::get<std::string>(r[1]) == opname;
  });
  if (ids.empty()) {
    return Status::NotFound("no fixed costs for " + loc + "/" + opname +
                            " (run PTool first)");
  }
  MSRA_ASSIGN_OR_RETURN(Row row, fixed_->get(ids.front()));
  FixedCosts costs;
  costs.conn = std::get<double>(row[2]);
  costs.open = std::get<double>(row[3]);
  costs.seek = std::get<double>(row[4]);
  costs.close = std::get<double>(row[5]);
  costs.connclose = std::get<double>(row[6]);
  return costs;
}

Status PerfDb::put_rw_point(core::Location location, IoOp op,
                            std::uint64_t bytes, double seconds,
                            TransferMode mode) {
  std::lock_guard<std::mutex> txn(db_->txn_mutex());
  meta::Table* table = table_for(mode);
  const std::string loc = loc_text(location);
  const std::string opname(io_op_name(op));
  auto ids = table->find([&](const Row& r) {
    return std::get<std::string>(r[0]) == loc &&
           std::get<std::string>(r[1]) == opname &&
           std::get<std::int64_t>(r[2]) == static_cast<std::int64_t>(bytes);
  });
  Row row{loc, opname, static_cast<std::int64_t>(bytes), seconds};
  if (!ids.empty()) return table->update(ids.front(), std::move(row));
  return table->insert(std::move(row)).status();
}

std::vector<std::pair<std::uint64_t, double>> PerfDb::rw_curve(
    core::Location location, IoOp op, TransferMode mode) const {
  meta::Table* table = table_for(mode);
  const std::string loc = loc_text(location);
  const std::string opname(io_op_name(op));
  std::vector<std::pair<std::uint64_t, double>> out;
  for (const Row& row : table->select([&](const Row& r) {
         return std::get<std::string>(r[0]) == loc &&
                std::get<std::string>(r[1]) == opname;
       })) {
    out.emplace_back(static_cast<std::uint64_t>(std::get<std::int64_t>(row[2])),
                     std::get<double>(row[3]));
  }
  std::sort(out.begin(), out.end());
  return out;
}

Status PerfDb::put_batch_overhead(core::Location location, IoOp op,
                                  double per_run) {
  std::lock_guard<std::mutex> txn(db_->txn_mutex());
  const std::string loc = loc_text(location);
  const std::string opname(io_op_name(op));
  auto ids = batch_->find([&](const Row& r) {
    return std::get<std::string>(r[0]) == loc && std::get<std::string>(r[1]) == opname;
  });
  Row row{loc, opname, per_run};
  if (!ids.empty()) return batch_->update(ids.front(), std::move(row));
  return batch_->insert(std::move(row)).status();
}

StatusOr<double> PerfDb::batch_overhead(core::Location location, IoOp op) const {
  const std::string loc = loc_text(location);
  const std::string opname(io_op_name(op));
  auto ids = batch_->find([&](const Row& r) {
    return std::get<std::string>(r[0]) == loc && std::get<std::string>(r[1]) == opname;
  });
  if (ids.empty()) {
    return Status::NotFound("no batch overhead for " + loc + "/" + opname +
                            " (run PTool first)");
  }
  MSRA_ASSIGN_OR_RETURN(Row row, batch_->get(ids.front()));
  return std::get<double>(row[2]);
}

namespace {

/// Piecewise-linear interpolation over a sorted (x, y) curve, linearly
/// extrapolating at the edges using the nearest segment's slope. A
/// single-point curve scales proportionally (pure-bandwidth assumption).
double interpolate_curve(const std::vector<std::pair<std::uint64_t, double>>& curve,
                         double x) {
  if (curve.size() == 1) {
    return curve[0].second * x / static_cast<double>(curve[0].first);
  }
  std::size_t hi = 0;
  while (hi < curve.size() && static_cast<double>(curve[hi].first) < x) ++hi;
  if (hi < curve.size() && static_cast<double>(curve[hi].first) == x) {
    return curve[hi].second;
  }
  std::size_t lo;
  if (hi == 0) {
    lo = 0;
    hi = 1;
  } else if (hi == curve.size()) {
    lo = curve.size() - 2;
    hi = curve.size() - 1;
  } else {
    lo = hi - 1;
  }
  const double x0 = static_cast<double>(curve[lo].first);
  const double x1 = static_cast<double>(curve[hi].first);
  const double y0 = curve[lo].second;
  const double y1 = curve[hi].second;
  const double slope = (y1 - y0) / (x1 - x0);
  return std::max(0.0, y0 + slope * (x - x0));
}

}  // namespace

StatusOr<double> PerfDb::rw_time(core::Location location, IoOp op,
                                 std::uint64_t bytes, TransferMode mode) const {
  const auto curve = rw_curve(location, op, mode);
  if (curve.empty()) {
    return Status::NotFound("no " + std::string(transfer_mode_name(mode)) +
                            " rw curve for " + loc_text(location) + "/" +
                            std::string(io_op_name(op)) + " (run PTool first)");
  }
  if (bytes == 0) return 0.0;
  return interpolate_curve(curve, static_cast<double>(bytes));
}

Status PerfDb::put_contended_rw_point(core::Location location, IoOp op,
                                      int clients, std::uint64_t bytes,
                                      double seconds) {
  std::lock_guard<std::mutex> txn(db_->txn_mutex());
  const std::string loc = loc_text(location);
  const std::string opname(io_op_name(op));
  auto ids = rw_load_->find([&](const Row& r) {
    return std::get<std::string>(r[0]) == loc &&
           std::get<std::string>(r[1]) == opname &&
           std::get<std::int64_t>(r[2]) == clients &&
           std::get<std::int64_t>(r[3]) == static_cast<std::int64_t>(bytes);
  });
  Row row{loc, opname, std::int64_t{clients}, static_cast<std::int64_t>(bytes),
          seconds};
  if (!ids.empty()) return rw_load_->update(ids.front(), std::move(row));
  return rw_load_->insert(std::move(row)).status();
}

Status PerfDb::put_contended_fixed(core::Location location, IoOp op,
                                   int clients, const FixedCosts& costs) {
  std::lock_guard<std::mutex> txn(db_->txn_mutex());
  const std::string loc = loc_text(location);
  const std::string opname(io_op_name(op));
  auto ids = fixed_load_->find([&](const Row& r) {
    return std::get<std::string>(r[0]) == loc &&
           std::get<std::string>(r[1]) == opname &&
           std::get<std::int64_t>(r[2]) == clients;
  });
  Row row{loc,        opname,      std::int64_t{clients}, costs.conn,
          costs.open, costs.seek,  costs.close,           costs.connclose};
  if (!ids.empty()) return fixed_load_->update(ids.front(), std::move(row));
  return fixed_load_->insert(std::move(row)).status();
}

std::vector<int> PerfDb::contended_levels(core::Location location, IoOp op) const {
  const std::string loc = loc_text(location);
  const std::string opname(io_op_name(op));
  std::vector<int> out;
  for (const Row& row : rw_load_->select([&](const Row& r) {
         return std::get<std::string>(r[0]) == loc &&
                std::get<std::string>(r[1]) == opname;
       })) {
    const int level = static_cast<int>(std::get<std::int64_t>(row[2]));
    if (std::find(out.begin(), out.end(), level) == out.end()) {
      out.push_back(level);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

StatusOr<double> PerfDb::rw_time_at_level(core::Location location, IoOp op,
                                          int clients,
                                          std::uint64_t bytes) const {
  if (clients <= 1) return rw_time(location, op, bytes);
  const std::string loc = loc_text(location);
  const std::string opname(io_op_name(op));
  std::vector<std::pair<std::uint64_t, double>> curve;
  for (const Row& row : rw_load_->select([&](const Row& r) {
         return std::get<std::string>(r[0]) == loc &&
                std::get<std::string>(r[1]) == opname &&
                std::get<std::int64_t>(r[2]) == clients;
       })) {
    curve.emplace_back(static_cast<std::uint64_t>(std::get<std::int64_t>(row[3])),
                       std::get<double>(row[4]));
  }
  if (curve.empty()) {
    return Status::NotFound("no contended rw curve for " + loc + "/" + opname +
                            " at " + std::to_string(clients) + " clients");
  }
  if (bytes == 0) return 0.0;
  std::sort(curve.begin(), curve.end());
  return interpolate_curve(curve, static_cast<double>(bytes));
}

StatusOr<FixedCosts> PerfDb::fixed_at_level(core::Location location, IoOp op,
                                            int clients) const {
  if (clients <= 1) return fixed(location, op);
  const std::string loc = loc_text(location);
  const std::string opname(io_op_name(op));
  auto ids = fixed_load_->find([&](const Row& r) {
    return std::get<std::string>(r[0]) == loc &&
           std::get<std::string>(r[1]) == opname &&
           std::get<std::int64_t>(r[2]) == clients;
  });
  if (ids.empty()) {
    return Status::NotFound("no contended fixed costs for " + loc + "/" +
                            opname + " at " + std::to_string(clients) +
                            " clients");
  }
  MSRA_ASSIGN_OR_RETURN(Row row, fixed_load_->get(ids.front()));
  FixedCosts costs;
  costs.conn = std::get<double>(row[3]);
  costs.open = std::get<double>(row[4]);
  costs.seek = std::get<double>(row[5]);
  costs.close = std::get<double>(row[6]);
  costs.connclose = std::get<double>(row[7]);
  return costs;
}

namespace {

/// Bounding measured levels for a fractional client count. The axis is
/// {1, measured levels...}; beyond the top level the last segment
/// extrapolates.
struct LevelSpan {
  int lo = 1;
  int hi = 1;
  double frac = 0.0;  ///< position of `clients` inside [lo, hi]
};

LevelSpan level_span(const std::vector<int>& levels, double clients) {
  std::vector<int> axis{1};
  for (int level : levels) {
    if (level > 1) axis.push_back(level);
  }
  LevelSpan span;
  if (axis.size() == 1) return span;  // only the uncontended level
  std::size_t hi = 0;
  while (hi < axis.size() && static_cast<double>(axis[hi]) < clients) ++hi;
  if (hi == 0) hi = 1;
  if (hi == axis.size()) hi = axis.size() - 1;
  span.lo = axis[hi - 1];
  span.hi = axis[hi];
  span.frac = (clients - span.lo) / static_cast<double>(span.hi - span.lo);
  return span;
}

}  // namespace

StatusOr<double> PerfDb::contended_rw_time(core::Location location, IoOp op,
                                           double clients,
                                           std::uint64_t bytes) const {
  if (clients <= 1.0) return rw_time(location, op, bytes);
  const std::vector<int> levels = contended_levels(location, op);
  if (levels.empty()) {
    return Status::NotFound("no contended rw measurements for " +
                            loc_text(location) + "/" +
                            std::string(io_op_name(op)));
  }
  const LevelSpan span = level_span(levels, clients);
  MSRA_ASSIGN_OR_RETURN(double t_lo,
                        rw_time_at_level(location, op, span.lo, bytes));
  MSRA_ASSIGN_OR_RETURN(double t_hi,
                        rw_time_at_level(location, op, span.hi, bytes));
  return std::max(0.0, t_lo + span.frac * (t_hi - t_lo));
}

StatusOr<FixedCosts> PerfDb::contended_fixed(core::Location location, IoOp op,
                                             double clients) const {
  if (clients <= 1.0) return fixed(location, op);
  // Level axis from the fixed-cost table itself (it can lag the rw sweep).
  const std::string loc = loc_text(location);
  const std::string opname(io_op_name(op));
  std::vector<int> levels;
  for (const Row& row : fixed_load_->select([&](const Row& r) {
         return std::get<std::string>(r[0]) == loc &&
                std::get<std::string>(r[1]) == opname;
       })) {
    const int level = static_cast<int>(std::get<std::int64_t>(row[2]));
    if (std::find(levels.begin(), levels.end(), level) == levels.end()) {
      levels.push_back(level);
    }
  }
  if (levels.empty()) {
    return Status::NotFound("no contended fixed costs for " + loc + "/" +
                            opname);
  }
  std::sort(levels.begin(), levels.end());
  const LevelSpan span = level_span(levels, clients);
  MSRA_ASSIGN_OR_RETURN(FixedCosts lo, fixed_at_level(location, op, span.lo));
  MSRA_ASSIGN_OR_RETURN(FixedCosts hi, fixed_at_level(location, op, span.hi));
  FixedCosts out;
  out.conn = std::max(0.0, lo.conn + span.frac * (hi.conn - lo.conn));
  out.open = std::max(0.0, lo.open + span.frac * (hi.open - lo.open));
  out.seek = std::max(0.0, lo.seek + span.frac * (hi.seek - lo.seek));
  out.close = std::max(0.0, lo.close + span.frac * (hi.close - lo.close));
  out.connclose =
      std::max(0.0, lo.connclose + span.frac * (hi.connclose - lo.connclose));
  return out;
}

Status PerfDb::put_cache_fixed(IoOp op, const FixedCosts& costs) {
  std::lock_guard<std::mutex> txn(db_->txn_mutex());
  const std::string opname(io_op_name(op));
  auto ids = cache_fixed_->find(
      [&](const Row& r) { return std::get<std::string>(r[0]) == opname; });
  Row row{opname,      costs.conn,  costs.open,
          costs.seek,  costs.close, costs.connclose};
  if (!ids.empty()) return cache_fixed_->update(ids.front(), std::move(row));
  return cache_fixed_->insert(std::move(row)).status();
}

StatusOr<FixedCosts> PerfDb::cache_fixed(IoOp op) const {
  const std::string opname(io_op_name(op));
  auto ids = cache_fixed_->find(
      [&](const Row& r) { return std::get<std::string>(r[0]) == opname; });
  if (ids.empty()) {
    return Status::NotFound("no cache fixed costs for " + opname +
                            " (run PTool with measure_cache)");
  }
  MSRA_ASSIGN_OR_RETURN(Row row, cache_fixed_->get(ids.front()));
  FixedCosts costs;
  costs.conn = std::get<double>(row[1]);
  costs.open = std::get<double>(row[2]);
  costs.seek = std::get<double>(row[3]);
  costs.close = std::get<double>(row[4]);
  costs.connclose = std::get<double>(row[5]);
  return costs;
}

Status PerfDb::put_cache_rw_point(IoOp op, std::uint64_t bytes,
                                  double seconds) {
  std::lock_guard<std::mutex> txn(db_->txn_mutex());
  const std::string opname(io_op_name(op));
  auto ids = cache_rw_->find([&](const Row& r) {
    return std::get<std::string>(r[0]) == opname &&
           std::get<std::int64_t>(r[1]) == static_cast<std::int64_t>(bytes);
  });
  Row row{opname, static_cast<std::int64_t>(bytes), seconds};
  if (!ids.empty()) return cache_rw_->update(ids.front(), std::move(row));
  return cache_rw_->insert(std::move(row)).status();
}

std::vector<std::pair<std::uint64_t, double>> PerfDb::cache_rw_curve(
    IoOp op) const {
  const std::string opname(io_op_name(op));
  std::vector<std::pair<std::uint64_t, double>> out;
  for (const Row& row : cache_rw_->select([&](const Row& r) {
         return std::get<std::string>(r[0]) == opname;
       })) {
    out.emplace_back(static_cast<std::uint64_t>(std::get<std::int64_t>(row[1])),
                     std::get<double>(row[2]));
  }
  std::sort(out.begin(), out.end());
  return out;
}

StatusOr<double> PerfDb::cache_rw_time(IoOp op, std::uint64_t bytes) const {
  const auto curve = cache_rw_curve(op);
  if (curve.empty()) {
    return Status::NotFound("no cache rw curve for " +
                            std::string(io_op_name(op)) +
                            " (run PTool with measure_cache)");
  }
  if (bytes == 0) return 0.0;
  return interpolate_curve(curve, static_cast<double>(bytes));
}

}  // namespace msra::predict
