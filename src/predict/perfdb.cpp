#include "predict/perfdb.h"

#include <algorithm>
#include <cassert>

namespace msra::predict {

using meta::ColumnType;
using meta::Row;
using meta::Value;

std::string_view io_op_name(IoOp op) {
  return op == IoOp::kRead ? "read" : "write";
}

std::string_view transfer_mode_name(TransferMode mode) {
  return mode == TransferMode::kSerial ? "serial" : "pipelined";
}

PerfDb::PerfDb(meta::Database* db) {
  auto fixed = db->open_table(
      "perf_fixed", meta::Schema{{"location", ColumnType::kText},
                                 {"op", ColumnType::kText},
                                 {"conn", ColumnType::kReal},
                                 {"open", ColumnType::kReal},
                                 {"seek", ColumnType::kReal},
                                 {"close", ColumnType::kReal},
                                 {"connclose", ColumnType::kReal}});
  auto rw = db->open_table(
      "perf_rw", meta::Schema{{"location", ColumnType::kText},
                              {"op", ColumnType::kText},
                              {"bytes", ColumnType::kInt},
                              {"seconds", ColumnType::kReal}});
  // Fast-path cost model: the pipelined curve lives in its own table (the
  // perf_rw schema stays untouched for databases written by older builds),
  // and perf_batch keeps the marginal per-run cost of vectored requests.
  auto rw_pipe = db->open_table(
      "perf_rw_pipe", meta::Schema{{"location", ColumnType::kText},
                                   {"op", ColumnType::kText},
                                   {"bytes", ColumnType::kInt},
                                   {"seconds", ColumnType::kReal}});
  auto batch = db->open_table(
      "perf_batch", meta::Schema{{"location", ColumnType::kText},
                                 {"op", ColumnType::kText},
                                 {"per_run", ColumnType::kReal}});
  assert(fixed.ok() && rw.ok() && rw_pipe.ok() && batch.ok());
  fixed_ = *fixed;
  rw_ = *rw;
  rw_pipe_ = *rw_pipe;
  batch_ = *batch;
}

namespace {
std::string loc_text(core::Location location) {
  return std::string(core::location_name(location));
}
}  // namespace

Status PerfDb::put_fixed(core::Location location, IoOp op,
                         const FixedCosts& costs) {
  const std::string loc = loc_text(location);
  const std::string opname(io_op_name(op));
  Row row{loc,        opname,      costs.conn,     costs.open,
          costs.seek, costs.close, costs.connclose};
  auto ids = fixed_->find([&](const Row& r) {
    return std::get<std::string>(r[0]) == loc && std::get<std::string>(r[1]) == opname;
  });
  if (!ids.empty()) return fixed_->update(ids.front(), std::move(row));
  return fixed_->insert(std::move(row)).status();
}

StatusOr<FixedCosts> PerfDb::fixed(core::Location location, IoOp op) const {
  const std::string loc = loc_text(location);
  const std::string opname(io_op_name(op));
  auto ids = fixed_->find([&](const Row& r) {
    return std::get<std::string>(r[0]) == loc && std::get<std::string>(r[1]) == opname;
  });
  if (ids.empty()) {
    return Status::NotFound("no fixed costs for " + loc + "/" + opname +
                            " (run PTool first)");
  }
  MSRA_ASSIGN_OR_RETURN(Row row, fixed_->get(ids.front()));
  FixedCosts costs;
  costs.conn = std::get<double>(row[2]);
  costs.open = std::get<double>(row[3]);
  costs.seek = std::get<double>(row[4]);
  costs.close = std::get<double>(row[5]);
  costs.connclose = std::get<double>(row[6]);
  return costs;
}

Status PerfDb::put_rw_point(core::Location location, IoOp op,
                            std::uint64_t bytes, double seconds,
                            TransferMode mode) {
  meta::Table* table = table_for(mode);
  const std::string loc = loc_text(location);
  const std::string opname(io_op_name(op));
  auto ids = table->find([&](const Row& r) {
    return std::get<std::string>(r[0]) == loc &&
           std::get<std::string>(r[1]) == opname &&
           std::get<std::int64_t>(r[2]) == static_cast<std::int64_t>(bytes);
  });
  Row row{loc, opname, static_cast<std::int64_t>(bytes), seconds};
  if (!ids.empty()) return table->update(ids.front(), std::move(row));
  return table->insert(std::move(row)).status();
}

std::vector<std::pair<std::uint64_t, double>> PerfDb::rw_curve(
    core::Location location, IoOp op, TransferMode mode) const {
  meta::Table* table = table_for(mode);
  const std::string loc = loc_text(location);
  const std::string opname(io_op_name(op));
  std::vector<std::pair<std::uint64_t, double>> out;
  for (const Row& row : table->select([&](const Row& r) {
         return std::get<std::string>(r[0]) == loc &&
                std::get<std::string>(r[1]) == opname;
       })) {
    out.emplace_back(static_cast<std::uint64_t>(std::get<std::int64_t>(row[2])),
                     std::get<double>(row[3]));
  }
  std::sort(out.begin(), out.end());
  return out;
}

Status PerfDb::put_batch_overhead(core::Location location, IoOp op,
                                  double per_run) {
  const std::string loc = loc_text(location);
  const std::string opname(io_op_name(op));
  auto ids = batch_->find([&](const Row& r) {
    return std::get<std::string>(r[0]) == loc && std::get<std::string>(r[1]) == opname;
  });
  Row row{loc, opname, per_run};
  if (!ids.empty()) return batch_->update(ids.front(), std::move(row));
  return batch_->insert(std::move(row)).status();
}

StatusOr<double> PerfDb::batch_overhead(core::Location location, IoOp op) const {
  const std::string loc = loc_text(location);
  const std::string opname(io_op_name(op));
  auto ids = batch_->find([&](const Row& r) {
    return std::get<std::string>(r[0]) == loc && std::get<std::string>(r[1]) == opname;
  });
  if (ids.empty()) {
    return Status::NotFound("no batch overhead for " + loc + "/" + opname +
                            " (run PTool first)");
  }
  MSRA_ASSIGN_OR_RETURN(Row row, batch_->get(ids.front()));
  return std::get<double>(row[2]);
}

StatusOr<double> PerfDb::rw_time(core::Location location, IoOp op,
                                 std::uint64_t bytes, TransferMode mode) const {
  const auto curve = rw_curve(location, op, mode);
  if (curve.empty()) {
    return Status::NotFound("no " + std::string(transfer_mode_name(mode)) +
                            " rw curve for " + loc_text(location) + "/" +
                            std::string(io_op_name(op)) + " (run PTool first)");
  }
  if (bytes == 0) return 0.0;
  if (curve.size() == 1) {
    // Single point: scale by size (pure-bandwidth assumption).
    return curve[0].second * static_cast<double>(bytes) /
           static_cast<double>(curve[0].first);
  }
  // Locate the enclosing segment (or the nearest edge segment).
  std::size_t hi = 0;
  while (hi < curve.size() && curve[hi].first < bytes) ++hi;
  if (hi < curve.size() && curve[hi].first == bytes) return curve[hi].second;
  std::size_t lo;
  if (hi == 0) {
    lo = 0;
    hi = 1;
  } else if (hi == curve.size()) {
    lo = curve.size() - 2;
    hi = curve.size() - 1;
  } else {
    lo = hi - 1;
  }
  const double x0 = static_cast<double>(curve[lo].first);
  const double x1 = static_cast<double>(curve[hi].first);
  const double y0 = curve[lo].second;
  const double y1 = curve[hi].second;
  const double slope = (y1 - y0) / (x1 - x0);
  const double t = y0 + slope * (static_cast<double>(bytes) - x0);
  return std::max(0.0, t);
}

}  // namespace msra::predict
