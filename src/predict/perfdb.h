// The performance database (section 4.1).
//
// "The basis of our I/O performance prediction is to construct a performance
// database that maintains all the components in equation (1) for each
// storage resource, so the performance predictor can search the database to
// obtain these numbers."
//
// Two tables inside the metadata database:
//   perf_fixed(location, op, conn, open, seek, close, connclose)  — Table 1
//   perf_rw(location, op, bytes, seconds)                         — Figs 6-8
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "core/system.h"
#include "meta/database.h"

namespace msra::predict {

/// Read or write direction.
enum class IoOp { kRead, kWrite };

std::string_view io_op_name(IoOp op);

/// How bulk bytes move over the WAN: the classic single-request transfer,
/// or the chunked/pipelined fast path (srb/fastpath.h). The two follow
/// different cost curves, so the database keeps one table per mode.
enum class TransferMode { kSerial, kPipelined };

std::string_view transfer_mode_name(TransferMode mode);

/// The fixed components of Equation (1) for one (resource, direction).
struct FixedCosts {
  double conn = 0.0;
  double open = 0.0;
  double seek = 0.0;
  double close = 0.0;
  double connclose = 0.0;

  double sum() const { return conn + open + seek + close + connclose; }
};

class PerfDb {
 public:
  /// Opens/creates the schema inside `db` (not owned).
  explicit PerfDb(meta::Database* db);

  /// Stores (replaces) the fixed costs of a resource/direction.
  Status put_fixed(core::Location location, IoOp op, const FixedCosts& costs);
  StatusOr<FixedCosts> fixed(core::Location location, IoOp op) const;

  /// Adds one measured transfer-time point (replaces an existing point for
  /// the same size and mode).
  Status put_rw_point(core::Location location, IoOp op, std::uint64_t bytes,
                      double seconds,
                      TransferMode mode = TransferMode::kSerial);

  /// Transfer time for an arbitrary size: exact point if present, otherwise
  /// linear interpolation between neighbors (time is affine in size for
  /// every modeled device); linear extrapolation at the edges using the
  /// marginal bandwidth of the nearest segment.
  StatusOr<double> rw_time(core::Location location, IoOp op,
                           std::uint64_t bytes,
                           TransferMode mode = TransferMode::kSerial) const;

  /// All measured (size, seconds) points, sorted by size.
  std::vector<std::pair<std::uint64_t, double>> rw_curve(
      core::Location location, IoOp op,
      TransferMode mode = TransferMode::kSerial) const;

  /// Marginal cost of one extra run inside a vectored (kReadv/kWritev)
  /// request: the per-run descriptor bytes on the wire plus the server-side
  /// seek, measured by PTool as (t(K runs) - t(1 run)) / (K - 1).
  Status put_batch_overhead(core::Location location, IoOp op, double per_run);
  StatusOr<double> batch_overhead(core::Location location, IoOp op) const;

  /// Number of stored rw points (all resources, serial mode).
  std::size_t rw_point_count() const { return rw_->size(); }

 private:
  meta::Table* table_for(TransferMode mode) const {
    return mode == TransferMode::kSerial ? rw_ : rw_pipe_;
  }

  meta::Table* fixed_;
  meta::Table* rw_;
  meta::Table* rw_pipe_;
  meta::Table* batch_;
};

}  // namespace msra::predict
