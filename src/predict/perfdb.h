// The performance database (section 4.1).
//
// "The basis of our I/O performance prediction is to construct a performance
// database that maintains all the components in equation (1) for each
// storage resource, so the performance predictor can search the database to
// obtain these numbers."
//
// Tables inside the metadata database:
//   perf_fixed(location, op, conn, open, seek, close, connclose)  — Table 1
//   perf_rw(location, op, bytes, seconds)                         — Figs 6-8
//   perf_rw_load(location, op, clients, bytes, seconds)    — contended curves
//   perf_fixed_load(location, op, clients, ...)            — contended Table 1
//   perf_cache_fixed(op, conn, open, seek, close, connclose) — cache tier
//   perf_cache_rw(op, bytes, seconds)                        — cache curve
// The *_load tables hold the same measurements repeated under N concurrent
// probe clients (PTool's 2/4/8 sweep); `clients` = 1 is implicit and always
// served from the uncontended tables. The perf_cache_* tables hold the
// node-local mid-tier read cache's measurements (no location column: the
// cache fronts every resource identically), feeding the hit-ratio-blended
// CacheAssumptions pricing.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "core/system.h"
#include "meta/database.h"

namespace msra::predict {

/// Read or write direction.
enum class IoOp { kRead, kWrite };

std::string_view io_op_name(IoOp op);

/// How bulk bytes move over the WAN: the classic single-request transfer,
/// or the chunked/pipelined fast path (srb/fastpath.h). The two follow
/// different cost curves, so the database keeps one table per mode.
enum class TransferMode { kSerial, kPipelined };

std::string_view transfer_mode_name(TransferMode mode);

/// The fixed components of Equation (1) for one (resource, direction).
struct FixedCosts {
  double conn = 0.0;
  double open = 0.0;
  double seek = 0.0;
  double close = 0.0;
  double connclose = 0.0;

  double sum() const { return conn + open + seek + close + connclose; }
};

class PerfDb {
 public:
  /// Opens/creates the schema inside `db` (not owned).
  explicit PerfDb(meta::Database* db);

  /// Stores (replaces) the fixed costs of a resource/direction.
  Status put_fixed(core::Location location, IoOp op, const FixedCosts& costs);
  StatusOr<FixedCosts> fixed(core::Location location, IoOp op) const;

  /// Adds one measured transfer-time point (replaces an existing point for
  /// the same size and mode).
  Status put_rw_point(core::Location location, IoOp op, std::uint64_t bytes,
                      double seconds,
                      TransferMode mode = TransferMode::kSerial);

  /// Transfer time for an arbitrary size: exact point if present, otherwise
  /// linear interpolation between neighbors (time is affine in size for
  /// every modeled device); linear extrapolation at the edges using the
  /// marginal bandwidth of the nearest segment.
  StatusOr<double> rw_time(core::Location location, IoOp op,
                           std::uint64_t bytes,
                           TransferMode mode = TransferMode::kSerial) const;

  /// All measured (size, seconds) points, sorted by size.
  std::vector<std::pair<std::uint64_t, double>> rw_curve(
      core::Location location, IoOp op,
      TransferMode mode = TransferMode::kSerial) const;

  /// Marginal cost of one extra run inside a vectored (kReadv/kWritev)
  /// request: the per-run descriptor bytes on the wire plus the server-side
  /// seek, measured by PTool as (t(K runs) - t(1 run)) / (K - 1).
  Status put_batch_overhead(core::Location location, IoOp op, double per_run);
  StatusOr<double> batch_overhead(core::Location location, IoOp op) const;

  // -- contended (multi-client) measurements -------------------------------
  // Mean per-client times with `clients` identical probes arriving
  // simultaneously on the shared devices (PTool's 2/4/8 sweep).

  /// Stores (replaces) one contended transfer-time point.
  Status put_contended_rw_point(core::Location location, IoOp op, int clients,
                                std::uint64_t bytes, double seconds);

  /// Stores (replaces) the contended fixed costs at one client level.
  Status put_contended_fixed(core::Location location, IoOp op, int clients,
                             const FixedCosts& costs);

  /// Client levels with contended rw measurements, sorted ascending. Level
  /// 1 (the uncontended tables) is not listed.
  std::vector<int> contended_levels(core::Location location, IoOp op) const;

  /// Mean per-client transfer time under `clients` concurrent clients:
  /// size-interpolated inside each measured level, then linearly
  /// interpolated (or edge-extrapolated) across levels. `clients` <= 1 is
  /// the plain rw_time. Fails kNotFound when no contended level exists.
  StatusOr<double> contended_rw_time(core::Location location, IoOp op,
                                     double clients, std::uint64_t bytes) const;

  /// Contended fixed costs, interpolated across levels the same way.
  StatusOr<FixedCosts> contended_fixed(core::Location location, IoOp op,
                                       double clients) const;

  // -- mid-tier read cache measurements ------------------------------------
  // The cache endpoint's Eq. (1) components, measured by PTool's cache
  // probe (config.measure_cache) against an enabled ReadCache. Node-local:
  // one row per direction, no location key.

  /// Stores (replaces) the cache tier's fixed costs for one direction.
  Status put_cache_fixed(IoOp op, const FixedCosts& costs);
  StatusOr<FixedCosts> cache_fixed(IoOp op) const;

  /// Adds one measured cache transfer-time point (replaces an existing
  /// point of the same size).
  Status put_cache_rw_point(IoOp op, std::uint64_t bytes, double seconds);

  /// Cache transfer time, interpolated like rw_time. Fails kNotFound until
  /// the cache probe has run.
  StatusOr<double> cache_rw_time(IoOp op, std::uint64_t bytes) const;

  /// All measured cache (size, seconds) points, sorted by size.
  std::vector<std::pair<std::uint64_t, double>> cache_rw_curve(IoOp op) const;

  /// Number of stored rw points (all resources, serial mode).
  std::size_t rw_point_count() const { return rw_->size(); }

 private:
  meta::Table* table_for(TransferMode mode) const {
    return mode == TransferMode::kSerial ? rw_ : rw_pipe_;
  }
  /// Transfer time at one exact client level (1 = uncontended table).
  StatusOr<double> rw_time_at_level(core::Location location, IoOp op,
                                    int clients, std::uint64_t bytes) const;
  StatusOr<FixedCosts> fixed_at_level(core::Location location, IoOp op,
                                      int clients) const;

  meta::Database* db_;  ///< for txn_mutex(): upserts must be atomic
  meta::Table* fixed_;
  meta::Table* rw_;
  meta::Table* rw_pipe_;
  meta::Table* batch_;
  meta::Table* rw_load_;
  meta::Table* fixed_load_;
  meta::Table* cache_fixed_;
  meta::Table* cache_rw_;
};

}  // namespace msra::predict
