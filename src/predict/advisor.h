// Performance-aware automatic placement — the paper's stated future work:
// "In the future, the user can also specify only a performance requirement
// for a particular run of her application and our system can automatically
// decide which storage resources should be used according to the capacity
// and performance of each storage resource."
//
// The advisor prices each candidate resource with the predictor (write cost
// of the producing run plus one expected consumer pass) and picks the
// cheapest one that is up and has capacity. Whole-run advice assigns
// datasets greedily — biggest saving first — against the remaining capacity
// of each resource.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "core/dataset.h"
#include "core/system.h"
#include "predict/predictor.h"

namespace msra::predict {

/// One priced placement option.
struct PlacementQuote {
  core::Location location = core::Location::kRemoteTape;
  double write_seconds = 0.0;  ///< producer dumps over the whole run
  double read_seconds = 0.0;   ///< one consumer pass over all dumps
  double total() const { return write_seconds + read_seconds; }
};

class PlacementAdvisor {
 public:
  PlacementAdvisor(core::StorageSystem& system, const Predictor& predictor)
      : system_(system), predictor_(predictor) {}

  /// Prices every available resource with enough capacity, cheapest first.
  /// `read_passes` weights the expected post-processing traffic.
  StatusOr<std::vector<PlacementQuote>> quotes(const core::DatasetDesc& desc,
                                               int iterations, int nprocs,
                                               double read_passes = 1.0) const;

  /// Cheapest feasible location, optionally bounded by an I/O-time budget
  /// for this dataset (kUnavailable if nothing fits the budget).
  StatusOr<core::Location> recommend(const core::DatasetDesc& desc,
                                     int iterations, int nprocs,
                                     double max_io_seconds = 0.0,
                                     double read_passes = 1.0) const;

  /// Assigns every dataset of a run, respecting each resource's remaining
  /// capacity. Datasets with concrete user hints (or DISABLE) are honored
  /// as-is; kAuto datasets are placed by predicted cost, biggest potential
  /// saving first.
  StatusOr<std::map<std::string, core::Location>> recommend_run(
      const std::vector<core::DatasetDesc>& datasets, int iterations,
      int nprocs, double read_passes = 1.0) const;

 private:
  core::StorageSystem& system_;
  const Predictor& predictor_;
};

}  // namespace msra::predict
