#include "predict/ptool.h"

#include <vector>

#include "runtime/endpoint.h"

namespace msra::predict {

namespace {
std::vector<std::byte> probe_payload(std::uint64_t bytes) {
  std::vector<std::byte> out(bytes);
  for (std::uint64_t i = 0; i < bytes; ++i) {
    out[i] = static_cast<std::byte>(i * 131 + 7);
  }
  return out;
}
}  // namespace

Status PTool::warm_up(core::Location location) {
  if (location != core::Location::kRemoteTape) return Status::Ok();
  // Touch the tape so the cartridge is mounted; otherwise the first probe
  // absorbs the one-time mount (the paper's Table 1 numbers are steady-state).
  runtime::StorageEndpoint& endpoint = system_.endpoint(location);
  simkit::Timeline tl;
  MSRA_RETURN_IF_ERROR(endpoint.connect(tl));
  const std::string path = "ptool/warmup";
  MSRA_ASSIGN_OR_RETURN(auto handle,
                        endpoint.open(tl, path, srb::OpenMode::kOverwrite));
  auto payload = probe_payload(1024);
  MSRA_RETURN_IF_ERROR(endpoint.write(tl, handle, payload));
  MSRA_RETURN_IF_ERROR(endpoint.close(tl, handle));
  return endpoint.disconnect(tl);
}

StatusOr<FixedCosts> PTool::measure_fixed(core::Location location, IoOp op) {
  runtime::StorageEndpoint& endpoint = system_.endpoint(location);
  const std::string path = "ptool/fixed" + std::to_string(probe_counter_++);
  FixedCosts costs;
  system_.reset_time();  // probe idle hardware, not a queue behind past probes
  simkit::Timeline tl;

  // Tconn.
  double t0 = tl.now();
  MSRA_RETURN_IF_ERROR(endpoint.connect(tl));
  costs.conn = tl.now() - t0;

  if (op == IoOp::kWrite) {
    // Topen (create).
    t0 = tl.now();
    MSRA_ASSIGN_OR_RETURN(auto handle,
                          endpoint.open(tl, path, srb::OpenMode::kOverwrite));
    costs.open = tl.now() - t0;
    auto payload = probe_payload(4096);
    MSRA_RETURN_IF_ERROR(endpoint.write(tl, handle, payload));
    // Tclose.
    t0 = tl.now();
    MSRA_RETURN_IF_ERROR(endpoint.close(tl, handle));
    costs.close = tl.now() - t0;
    costs.seek = 0.0;  // writes in our stack are sequential (the paper's "-")
  } else {
    // A read probe needs an existing object (written untimed).
    {
      MSRA_ASSIGN_OR_RETURN(auto handle,
                            endpoint.open(tl, path, srb::OpenMode::kOverwrite));
      auto payload = probe_payload(8192);
      MSRA_RETURN_IF_ERROR(endpoint.write(tl, handle, payload));
      MSRA_RETURN_IF_ERROR(endpoint.close(tl, handle));
    }
    t0 = tl.now();
    MSRA_ASSIGN_OR_RETURN(auto handle,
                          endpoint.open(tl, path, srb::OpenMode::kRead));
    costs.open = tl.now() - t0;
    // Tseek: reposition to a different offset.
    t0 = tl.now();
    MSRA_RETURN_IF_ERROR(endpoint.seek(tl, handle, 4096));
    costs.seek = tl.now() - t0;
    t0 = tl.now();
    MSRA_RETURN_IF_ERROR(endpoint.close(tl, handle));
    costs.close = tl.now() - t0;
  }

  // Tconnclose.
  t0 = tl.now();
  MSRA_RETURN_IF_ERROR(endpoint.disconnect(tl));
  costs.connclose = tl.now() - t0;

  (void)endpoint.connect(tl);
  (void)endpoint.remove(tl, path);
  (void)endpoint.disconnect(tl);
  return costs;
}

StatusOr<double> PTool::measure_rw(core::Location location, IoOp op,
                                   std::uint64_t bytes, int repeats) {
  if (repeats < 1) repeats = 1;
  runtime::StorageEndpoint& endpoint = system_.endpoint(location);
  system_.reset_time();  // probe idle hardware
  simkit::Timeline tl;
  MSRA_RETURN_IF_ERROR(endpoint.connect(tl));
  auto payload = probe_payload(bytes);
  double total = 0.0;
  std::vector<std::string> probe_paths;

  for (int rep = 0; rep < repeats; ++rep) {
    const std::string path = "ptool/rw" + std::to_string(probe_counter_++);
    probe_paths.push_back(path);
    if (op == IoOp::kWrite) {
      MSRA_ASSIGN_OR_RETURN(auto handle,
                            endpoint.open(tl, path, srb::OpenMode::kOverwrite));
      const double t0 = tl.now();
      MSRA_RETURN_IF_ERROR(endpoint.write(tl, handle, payload));
      total += tl.now() - t0;
      MSRA_RETURN_IF_ERROR(endpoint.close(tl, handle));
    } else {
      {
        MSRA_ASSIGN_OR_RETURN(auto handle,
                              endpoint.open(tl, path, srb::OpenMode::kOverwrite));
        MSRA_RETURN_IF_ERROR(endpoint.write(tl, handle, payload));
        MSRA_RETURN_IF_ERROR(endpoint.close(tl, handle));
      }
      MSRA_ASSIGN_OR_RETURN(auto handle,
                            endpoint.open(tl, path, srb::OpenMode::kRead));
      std::vector<std::byte> out(bytes);
      const double t0 = tl.now();
      MSRA_RETURN_IF_ERROR(endpoint.read(tl, handle, out));
      total += tl.now() - t0;
      MSRA_RETURN_IF_ERROR(endpoint.close(tl, handle));
    }
  }
  for (const auto& path : probe_paths) (void)endpoint.remove(tl, path);
  MSRA_RETURN_IF_ERROR(endpoint.disconnect(tl));
  return total / repeats;
}

Status PTool::measure_location(core::Location location, const PToolConfig& config) {
  MSRA_RETURN_IF_ERROR(warm_up(location));
  for (IoOp op : {IoOp::kRead, IoOp::kWrite}) {
    MSRA_ASSIGN_OR_RETURN(FixedCosts costs, measure_fixed(location, op));
    MSRA_RETURN_IF_ERROR(db_.put_fixed(location, op, costs));
    for (std::uint64_t bytes : config.sizes) {
      MSRA_ASSIGN_OR_RETURN(double seconds,
                            measure_rw(location, op, bytes, config.repeats));
      MSRA_RETURN_IF_ERROR(db_.put_rw_point(location, op, bytes, seconds));
    }
  }
  return Status::Ok();
}

Status PTool::measure_all(const PToolConfig& config) {
  for (core::Location location : core::kConcreteLocations) {
    MSRA_RETURN_IF_ERROR(measure_location(location, config));
  }
  return Status::Ok();
}

}  // namespace msra::predict
