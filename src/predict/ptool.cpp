#include "predict/ptool.h"

#include <algorithm>
#include <vector>

#include "cache/cache.h"
#include "runtime/endpoint.h"

namespace msra::predict {

namespace {
std::vector<std::byte> probe_payload(std::uint64_t bytes) {
  std::vector<std::byte> out(bytes);
  for (std::uint64_t i = 0; i < bytes; ++i) {
    out[i] = static_cast<std::byte>(i * 131 + 7);
  }
  return out;
}

/// Restores an endpoint's fast-path config when a probe exits early.
struct FastPathGuard {
  runtime::StorageEndpoint* endpoint;
  runtime::FastPathConfig saved;
  ~FastPathGuard() { endpoint->set_fast_path(saved); }
};
}  // namespace

Status PTool::warm_up(core::Location location) {
  if (location != core::Location::kRemoteTape) return Status::Ok();
  // Touch the tape so the cartridge is mounted; otherwise the first probe
  // absorbs the one-time mount (the paper's Table 1 numbers are steady-state).
  runtime::StorageEndpoint& endpoint = system_.endpoint(location);
  simkit::Timeline tl;
  MSRA_RETURN_IF_ERROR(endpoint.connect(tl));
  const std::string path = "ptool/warmup";
  MSRA_ASSIGN_OR_RETURN(auto handle,
                        endpoint.open(tl, path, srb::OpenMode::kOverwrite));
  auto payload = probe_payload(1024);
  MSRA_RETURN_IF_ERROR(endpoint.write(tl, handle, payload));
  MSRA_RETURN_IF_ERROR(endpoint.close(tl, handle));
  return endpoint.disconnect(tl);
}

StatusOr<FixedCosts> PTool::measure_fixed(core::Location location, IoOp op) {
  runtime::StorageEndpoint& endpoint = system_.endpoint(location);
  const std::string path = "ptool/fixed" + std::to_string(probe_counter_++);
  FixedCosts costs;
  system_.reset_time();  // probe idle hardware, not a queue behind past probes
  simkit::Timeline tl;

  // Tconn.
  double t0 = tl.now();
  MSRA_RETURN_IF_ERROR(endpoint.connect(tl));
  costs.conn = tl.now() - t0;

  if (op == IoOp::kWrite) {
    // Topen (create).
    t0 = tl.now();
    MSRA_ASSIGN_OR_RETURN(auto handle,
                          endpoint.open(tl, path, srb::OpenMode::kOverwrite));
    costs.open = tl.now() - t0;
    auto payload = probe_payload(4096);
    MSRA_RETURN_IF_ERROR(endpoint.write(tl, handle, payload));
    // Tclose.
    t0 = tl.now();
    MSRA_RETURN_IF_ERROR(endpoint.close(tl, handle));
    costs.close = tl.now() - t0;
    costs.seek = 0.0;  // writes in our stack are sequential (the paper's "-")
  } else {
    // A read probe needs an existing object (written untimed).
    {
      MSRA_ASSIGN_OR_RETURN(auto handle,
                            endpoint.open(tl, path, srb::OpenMode::kOverwrite));
      auto payload = probe_payload(8192);
      MSRA_RETURN_IF_ERROR(endpoint.write(tl, handle, payload));
      MSRA_RETURN_IF_ERROR(endpoint.close(tl, handle));
    }
    t0 = tl.now();
    MSRA_ASSIGN_OR_RETURN(auto handle,
                          endpoint.open(tl, path, srb::OpenMode::kRead));
    costs.open = tl.now() - t0;
    // Tseek: reposition to a different offset.
    t0 = tl.now();
    MSRA_RETURN_IF_ERROR(endpoint.seek(tl, handle, 4096));
    costs.seek = tl.now() - t0;
    t0 = tl.now();
    MSRA_RETURN_IF_ERROR(endpoint.close(tl, handle));
    costs.close = tl.now() - t0;
  }

  // Tconnclose.
  t0 = tl.now();
  MSRA_RETURN_IF_ERROR(endpoint.disconnect(tl));
  costs.connclose = tl.now() - t0;

  (void)endpoint.connect(tl);
  (void)endpoint.remove(tl, path);
  (void)endpoint.disconnect(tl);
  return costs;
}

StatusOr<double> PTool::measure_rw(core::Location location, IoOp op,
                                   std::uint64_t bytes, int repeats) {
  if (repeats < 1) repeats = 1;
  runtime::StorageEndpoint& endpoint = system_.endpoint(location);
  system_.reset_time();  // probe idle hardware
  simkit::Timeline tl;
  MSRA_RETURN_IF_ERROR(endpoint.connect(tl));
  auto payload = probe_payload(bytes);
  double total = 0.0;
  std::vector<std::string> probe_paths;

  for (int rep = 0; rep < repeats; ++rep) {
    const std::string path = "ptool/rw" + std::to_string(probe_counter_++);
    probe_paths.push_back(path);
    if (op == IoOp::kWrite) {
      MSRA_ASSIGN_OR_RETURN(auto handle,
                            endpoint.open(tl, path, srb::OpenMode::kOverwrite));
      const double t0 = tl.now();
      MSRA_RETURN_IF_ERROR(endpoint.write(tl, handle, payload));
      total += tl.now() - t0;
      MSRA_RETURN_IF_ERROR(endpoint.close(tl, handle));
    } else {
      {
        MSRA_ASSIGN_OR_RETURN(auto handle,
                              endpoint.open(tl, path, srb::OpenMode::kOverwrite));
        MSRA_RETURN_IF_ERROR(endpoint.write(tl, handle, payload));
        MSRA_RETURN_IF_ERROR(endpoint.close(tl, handle));
      }
      MSRA_ASSIGN_OR_RETURN(auto handle,
                            endpoint.open(tl, path, srb::OpenMode::kRead));
      std::vector<std::byte> out(bytes);
      const double t0 = tl.now();
      MSRA_RETURN_IF_ERROR(endpoint.read(tl, handle, out));
      total += tl.now() - t0;
      MSRA_RETURN_IF_ERROR(endpoint.close(tl, handle));
    }
  }
  for (const auto& path : probe_paths) (void)endpoint.remove(tl, path);
  MSRA_RETURN_IF_ERROR(endpoint.disconnect(tl));
  return total / repeats;
}

StatusOr<double> PTool::measure_rw_pipelined(core::Location location, IoOp op,
                                             std::uint64_t bytes,
                                             std::uint32_t streams, int repeats) {
  runtime::StorageEndpoint& endpoint = system_.endpoint(location);
  FastPathGuard guard{&endpoint, endpoint.fast_path()};
  runtime::FastPathConfig cfg = guard.saved;
  cfg.pipelined_transfers = true;
  cfg.streams = streams;
  cfg.pipeline_threshold_bytes = 1;  // probe the fast path at every size
  endpoint.set_fast_path(cfg);
  return measure_rw(location, op, bytes, repeats);
}

StatusOr<double> PTool::measure_batch_overhead(core::Location location, IoOp op,
                                               int runs,
                                               std::uint64_t run_bytes) {
  if (runs < 2) runs = 2;
  if (run_bytes == 0) run_bytes = 1;
  runtime::StorageEndpoint& endpoint = system_.endpoint(location);
  FastPathGuard guard{&endpoint, endpoint.fast_path()};
  runtime::FastPathConfig cfg = guard.saved;
  cfg.vectored_rpc = true;
  endpoint.set_fast_path(cfg);

  const std::uint64_t total = static_cast<std::uint64_t>(runs) * run_bytes;
  // Every other run of the object is touched, so each strided run needs a
  // real (billed) server-side seek; the contiguous baseline needs none.
  std::vector<runtime::IoRun> strided;
  strided.reserve(static_cast<std::size_t>(runs));
  for (int i = 0; i < runs; ++i) {
    strided.push_back({2 * static_cast<std::uint64_t>(i) * run_bytes, run_bytes});
  }
  const std::vector<runtime::IoRun> contiguous = {{0, total}};

  system_.reset_time();  // probe idle hardware
  simkit::Timeline tl;
  MSRA_RETURN_IF_ERROR(endpoint.connect(tl));
  const std::string path = "ptool/batch" + std::to_string(probe_counter_++);
  auto object = probe_payload(2 * total);
  {
    // Untimed prep: the full object must exist for both probes.
    MSRA_ASSIGN_OR_RETURN(auto handle,
                          endpoint.open(tl, path, srb::OpenMode::kOverwrite));
    MSRA_RETURN_IF_ERROR(endpoint.write(tl, handle, object));
    MSRA_RETURN_IF_ERROR(endpoint.close(tl, handle));
  }
  double t_many = 0.0;
  double t_one = 0.0;
  const srb::OpenMode mode =
      op == IoOp::kRead ? srb::OpenMode::kRead : srb::OpenMode::kUpdate;
  std::vector<std::byte> buffer(total);
  std::span<const std::byte> payload(object.data(), total);
  for (int probe = 0; probe < 2; ++probe) {
    const auto& runlist = probe == 0 ? strided : contiguous;
    // Fresh handle per probe so the previous probe's file position cannot
    // turn the first access into a billed seek.
    MSRA_ASSIGN_OR_RETURN(auto handle, endpoint.open(tl, path, mode));
    const double t0 = tl.now();
    if (op == IoOp::kRead) {
      MSRA_RETURN_IF_ERROR(endpoint.readv(tl, handle, runlist, buffer));
    } else {
      MSRA_RETURN_IF_ERROR(endpoint.writev(tl, handle, runlist, payload));
    }
    (probe == 0 ? t_many : t_one) = tl.now() - t0;
    MSRA_RETURN_IF_ERROR(endpoint.close(tl, handle));
  }
  (void)endpoint.remove(tl, path);
  MSRA_RETURN_IF_ERROR(endpoint.disconnect(tl));
  return std::max(0.0, (t_many - t_one) / (runs - 1));
}

StatusOr<double> PTool::measure_contended_rw(core::Location location, IoOp op,
                                             int clients, std::uint64_t bytes,
                                             int rounds) {
  if (clients < 1) clients = 1;
  if (rounds < 1) rounds = 1;
  runtime::StorageEndpoint& endpoint = system_.endpoint(location);
  auto payload = probe_payload(bytes);

  // Untimed prep: one shared connection (the same substrate concurrent
  // sessions use) and one open handle per probe client. Read probes get
  // `rounds` payloads back to back so every timed round reads fresh bytes
  // sequentially — no repositioning inside the measurement.
  system_.reset_time();
  simkit::Timeline prep;
  MSRA_RETURN_IF_ERROR(endpoint.connect(prep));
  std::vector<std::string> paths;
  std::vector<srb::HandleId> handles;
  handles.reserve(static_cast<std::size_t>(clients));
  for (int i = 0; i < clients; ++i) {
    const std::string path = "ptool/load" + std::to_string(probe_counter_++);
    paths.push_back(path);
    if (op == IoOp::kWrite) {
      MSRA_ASSIGN_OR_RETURN(auto handle,
                            endpoint.open(prep, path, srb::OpenMode::kOverwrite));
      handles.push_back(handle);
    } else {
      {
        MSRA_ASSIGN_OR_RETURN(
            auto handle, endpoint.open(prep, path, srb::OpenMode::kOverwrite));
        for (int r = 0; r < rounds; ++r) {
          MSRA_RETURN_IF_ERROR(endpoint.write(prep, handle, payload));
        }
        MSRA_RETURN_IF_ERROR(endpoint.close(prep, handle));
      }
      MSRA_ASSIGN_OR_RETURN(auto handle,
                            endpoint.open(prep, path, srb::OpenMode::kRead));
      handles.push_back(handle);
    }
  }

  // Timed phase: fresh device clocks, one fresh timeline per probe, every
  // probe ready at t = 0, transfers issued round-robin for `rounds` rounds.
  // Round 1 is the FIFO service of a simultaneous burst; later rounds are
  // the steady state of `clients` tenants time-sharing the device — the
  // regime a sustained multi-client run actually sees.
  system_.reset_time();
  std::vector<simkit::Timeline> timelines(static_cast<std::size_t>(clients));
  double total = 0.0;
  std::vector<std::byte> out(bytes);
  for (int r = 0; r < rounds; ++r) {
    for (int i = 0; i < clients; ++i) {
      simkit::Timeline& tl = timelines[static_cast<std::size_t>(i)];
      const double t0 = tl.now();
      if (op == IoOp::kWrite) {
        MSRA_RETURN_IF_ERROR(
            endpoint.write(tl, handles[static_cast<std::size_t>(i)], payload));
      } else {
        MSRA_RETURN_IF_ERROR(
            endpoint.read(tl, handles[static_cast<std::size_t>(i)], out));
      }
      total += tl.now() - t0;
    }
  }

  simkit::Timeline cleanup;
  for (int i = 0; i < clients; ++i) {
    (void)endpoint.close(cleanup, handles[static_cast<std::size_t>(i)]);
  }
  for (const auto& path : paths) (void)endpoint.remove(cleanup, path);
  MSRA_RETURN_IF_ERROR(endpoint.disconnect(cleanup));
  return total / (static_cast<double>(clients) * rounds);
}

StatusOr<FixedCosts> PTool::measure_contended_fixed(core::Location location,
                                                    IoOp op, int clients,
                                                    int rounds) {
  if (clients < 1) clients = 1;
  if (rounds < 1) rounds = 1;
  runtime::StorageEndpoint& endpoint = system_.endpoint(location);
  std::vector<std::string> paths;
  for (int i = 0; i < clients; ++i) {
    paths.push_back("ptool/loadfix" + std::to_string(probe_counter_++));
  }

  // Read probes need existing objects (written untimed, connection torn
  // down again so the timed phase starts cold).
  if (op == IoOp::kRead) {
    system_.reset_time();
    simkit::Timeline prep;
    MSRA_RETURN_IF_ERROR(endpoint.connect(prep));
    auto payload = probe_payload(8192);
    for (const auto& path : paths) {
      MSRA_ASSIGN_OR_RETURN(auto handle,
                            endpoint.open(prep, path, srb::OpenMode::kOverwrite));
      MSRA_RETURN_IF_ERROR(endpoint.write(prep, handle, payload));
      MSRA_RETURN_IF_ERROR(endpoint.close(prep, handle));
    }
    MSRA_RETURN_IF_ERROR(endpoint.disconnect(prep));
  }

  // Every Eq. (1) phase runs as a burst of `clients` probes, phase by phase
  // in lockstep, repeated for `rounds` full sessions — the same shared
  // endpoint concurrent sessions go through, so pooled-connection effects
  // (the first session in flight keeps the wire up for the others) are
  // measured, not modeled. Later rounds give the steady-state inflation a
  // sustained multi-client run sees.
  system_.reset_time();
  std::vector<simkit::Timeline> timelines(static_cast<std::size_t>(clients));
  std::vector<srb::HandleId> handles(
      static_cast<std::size_t>(clients));
  FixedCosts sum;
  const srb::OpenMode mode =
      op == IoOp::kWrite ? srb::OpenMode::kOverwrite : srb::OpenMode::kRead;

  for (int r = 0; r < rounds; ++r) {
    for (int i = 0; i < clients; ++i) {
      simkit::Timeline& tl = timelines[static_cast<std::size_t>(i)];
      const double t0 = tl.now();
      MSRA_RETURN_IF_ERROR(endpoint.connect(tl));
      sum.conn += tl.now() - t0;
    }
    for (int i = 0; i < clients; ++i) {
      simkit::Timeline& tl = timelines[static_cast<std::size_t>(i)];
      const double t0 = tl.now();
      MSRA_ASSIGN_OR_RETURN(
          handles[static_cast<std::size_t>(i)],
          endpoint.open(tl, paths[static_cast<std::size_t>(i)], mode));
      sum.open += tl.now() - t0;
    }
    if (op == IoOp::kWrite) {
      auto payload = probe_payload(4096);
      for (int i = 0; i < clients; ++i) {
        MSRA_RETURN_IF_ERROR(endpoint.write(
            timelines[static_cast<std::size_t>(i)],
            handles[static_cast<std::size_t>(i)], payload));
      }
      sum.seek = 0.0;  // writes in our stack are sequential (the paper's "-")
    } else {
      for (int i = 0; i < clients; ++i) {
        simkit::Timeline& tl = timelines[static_cast<std::size_t>(i)];
        const double t0 = tl.now();
        MSRA_RETURN_IF_ERROR(
            endpoint.seek(tl, handles[static_cast<std::size_t>(i)], 4096));
        sum.seek += tl.now() - t0;
      }
    }
    for (int i = 0; i < clients; ++i) {
      simkit::Timeline& tl = timelines[static_cast<std::size_t>(i)];
      const double t0 = tl.now();
      MSRA_RETURN_IF_ERROR(
          endpoint.close(tl, handles[static_cast<std::size_t>(i)]));
      sum.close += tl.now() - t0;
    }
    for (int i = 0; i < clients; ++i) {
      simkit::Timeline& tl = timelines[static_cast<std::size_t>(i)];
      const double t0 = tl.now();
      MSRA_RETURN_IF_ERROR(endpoint.disconnect(tl));
      sum.connclose += tl.now() - t0;
    }
  }

  simkit::Timeline cleanup;
  (void)endpoint.connect(cleanup);
  for (const auto& path : paths) (void)endpoint.remove(cleanup, path);
  (void)endpoint.disconnect(cleanup);

  const double n = static_cast<double>(clients) * rounds;
  FixedCosts mean;
  mean.conn = sum.conn / n;
  mean.open = sum.open / n;
  mean.seek = sum.seek / n;
  mean.close = sum.close / n;
  mean.connclose = sum.connclose / n;
  return mean;
}

StatusOr<FixedCosts> PTool::measure_cache_fixed() {
  cache::ReadCache* cache = system_.cache();
  if (cache == nullptr) {
    return Status::FailedPrecondition(
        "no read cache enabled (StorageSystem::enable_cache)");
  }
  runtime::StorageEndpoint& endpoint = cache->endpoint();
  const std::string path = "ptool/cachefix" + std::to_string(probe_counter_++);
  // Probe entry inserted unpriced (admission would reject an object the
  // predictor has no refetch quote for) and dropped again afterwards.
  auto payload = probe_payload(8192);
  MSRA_RETURN_IF_ERROR(cache->insert_probe(path, "ptool", payload));
  FixedCosts costs;
  simkit::Timeline tl;

  double t0 = tl.now();
  MSRA_RETURN_IF_ERROR(endpoint.connect(tl));
  costs.conn = tl.now() - t0;

  t0 = tl.now();
  MSRA_ASSIGN_OR_RETURN(auto handle,
                        endpoint.open(tl, path, srb::OpenMode::kRead));
  costs.open = tl.now() - t0;

  t0 = tl.now();
  MSRA_RETURN_IF_ERROR(endpoint.seek(tl, handle, 4096));
  costs.seek = tl.now() - t0;

  t0 = tl.now();
  MSRA_RETURN_IF_ERROR(endpoint.close(tl, handle));
  costs.close = tl.now() - t0;

  t0 = tl.now();
  MSRA_RETURN_IF_ERROR(endpoint.disconnect(tl));
  costs.connclose = tl.now() - t0;

  cache->invalidate(path);
  return costs;
}

StatusOr<double> PTool::measure_cache_rw(std::uint64_t bytes, int repeats) {
  if (repeats < 1) repeats = 1;
  cache::ReadCache* cache = system_.cache();
  if (cache == nullptr) {
    return Status::FailedPrecondition(
        "no read cache enabled (StorageSystem::enable_cache)");
  }
  runtime::StorageEndpoint& endpoint = cache->endpoint();
  auto payload = probe_payload(bytes);
  simkit::Timeline tl;
  MSRA_RETURN_IF_ERROR(endpoint.connect(tl));
  double total = 0.0;
  std::vector<std::byte> out(bytes);
  for (int rep = 0; rep < repeats; ++rep) {
    const std::string path = "ptool/cacherw" + std::to_string(probe_counter_++);
    MSRA_RETURN_IF_ERROR(cache->insert_probe(path, "ptool", payload));
    MSRA_ASSIGN_OR_RETURN(auto handle,
                          endpoint.open(tl, path, srb::OpenMode::kRead));
    const double t0 = tl.now();
    MSRA_RETURN_IF_ERROR(endpoint.read(tl, handle, out));
    total += tl.now() - t0;
    MSRA_RETURN_IF_ERROR(endpoint.close(tl, handle));
    cache->invalidate(path);
  }
  MSRA_RETURN_IF_ERROR(endpoint.disconnect(tl));
  return total / repeats;
}

Status PTool::measure_cache(const PToolConfig& config) {
  MSRA_ASSIGN_OR_RETURN(FixedCosts costs, measure_cache_fixed());
  MSRA_RETURN_IF_ERROR(db_.put_cache_fixed(IoOp::kRead, costs));
  for (std::uint64_t bytes : config.sizes) {
    MSRA_ASSIGN_OR_RETURN(double seconds,
                          measure_cache_rw(bytes, config.repeats));
    MSRA_RETURN_IF_ERROR(db_.put_cache_rw_point(IoOp::kRead, bytes, seconds));
  }
  return Status::Ok();
}

Status PTool::measure_location(core::Location location, const PToolConfig& config) {
  MSRA_RETURN_IF_ERROR(warm_up(location));
  for (IoOp op : {IoOp::kRead, IoOp::kWrite}) {
    MSRA_ASSIGN_OR_RETURN(FixedCosts costs, measure_fixed(location, op));
    MSRA_RETURN_IF_ERROR(db_.put_fixed(location, op, costs));
    for (std::uint64_t bytes : config.sizes) {
      MSRA_ASSIGN_OR_RETURN(double seconds,
                            measure_rw(location, op, bytes, config.repeats));
      MSRA_RETURN_IF_ERROR(db_.put_rw_point(location, op, bytes, seconds));
    }
  }
  // Fast-path cost model: only the remote disks have a pipelined/vectored
  // path worth measuring (tape stays sequential, local disks have no WAN).
  if (config.measure_fast_path && location == core::Location::kRemoteDisk) {
    for (IoOp op : {IoOp::kRead, IoOp::kWrite}) {
      for (std::uint64_t bytes : config.sizes) {
        MSRA_ASSIGN_OR_RETURN(
            double seconds,
            measure_rw_pipelined(location, op, bytes, config.pipeline_streams,
                                 config.repeats));
        MSRA_RETURN_IF_ERROR(db_.put_rw_point(location, op, bytes, seconds,
                                              TransferMode::kPipelined));
      }
      MSRA_ASSIGN_OR_RETURN(
          double per_run,
          measure_batch_overhead(location, op, config.batch_probe_runs,
                                 config.batch_probe_run_bytes));
      MSRA_RETURN_IF_ERROR(db_.put_batch_overhead(location, op, per_run));
    }
  }
  // Contended curves: re-probe with k simultaneous clients so the predictor
  // can price multi-tenant runs from measurements instead of the analytic
  // queueing fallback. Off by default (the single-client tables above stay
  // byte-identical when disabled).
  if (config.measure_contended) {
    for (int clients : config.contended_levels) {
      if (clients < 2) continue;
      for (IoOp op : {IoOp::kRead, IoOp::kWrite}) {
        MSRA_ASSIGN_OR_RETURN(
            FixedCosts costs,
            measure_contended_fixed(location, op, clients,
                                    config.contended_rounds));
        MSRA_RETURN_IF_ERROR(
            db_.put_contended_fixed(location, op, clients, costs));
        for (std::uint64_t bytes : config.sizes) {
          MSRA_ASSIGN_OR_RETURN(
              double seconds,
              measure_contended_rw(location, op, clients, bytes,
                                   config.contended_rounds));
          MSRA_RETURN_IF_ERROR(
              db_.put_contended_rw_point(location, op, clients, bytes, seconds));
        }
      }
    }
  }
  return Status::Ok();
}

Status PTool::measure_all(const PToolConfig& config) {
  for (core::Location location : core::kConcreteLocations) {
    MSRA_RETURN_IF_ERROR(measure_location(location, config));
  }
  // Cache tier: probed once (node-local, fronting every resource the same
  // way), and only on request against an enabled cache.
  if (config.measure_cache && system_.cache() != nullptr) {
    MSRA_RETURN_IF_ERROR(measure_cache(config));
  }
  return Status::Ok();
}

}  // namespace msra::predict
