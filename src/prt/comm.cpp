#include "prt/comm.h"

#include <cassert>
#include <cstring>
#include <thread>
#include <tuple>

namespace msra::prt {

World::World(int nprocs) : nprocs_(nprocs) {
  assert(nprocs >= 1);
  shared_.slots.resize(static_cast<std::size_t>(nprocs));
  timelines_.reserve(static_cast<std::size_t>(nprocs));
  for (int i = 0; i < nprocs; ++i) {
    timelines_.push_back(std::make_unique<simkit::Timeline>());
  }
}

World::~World() = default;

void World::run(const std::function<void(Comm&)>& fn, simkit::SimTime start) {
  for (auto& tl : timelines_) tl->reset(start);
  if (nprocs_ == 1) {
    Comm comm(this, 0);
    fn(comm);
    return;
  }
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(nprocs_));
  for (int r = 0; r < nprocs_; ++r) {
    threads.emplace_back([this, &fn, r] {
      Comm comm(this, r);
      fn(comm);
    });
  }
  for (auto& t : threads) t.join();
}

void Comm::barrier() {
  World::Shared& s = world_->shared_;
  std::unique_lock<std::mutex> lock(s.mutex);
  const std::uint64_t generation = s.barrier_generation;
  if (++s.barrier_count == world_->size()) {
    s.barrier_count = 0;
    ++s.barrier_generation;
    s.cv.notify_all();
  } else {
    s.cv.wait(lock, [&] { return s.barrier_generation != generation; });
  }
}

std::vector<std::byte> Comm::bcast(std::vector<std::byte> data, int root) {
  World::Shared& s = world_->shared_;
  if (rank_ == root) {
    std::lock_guard<std::mutex> lock(s.mutex);
    s.slots[static_cast<std::size_t>(root)] = data;
  }
  barrier();  // payload visible
  std::vector<std::byte> out;
  if (rank_ == root) {
    out = std::move(data);
  } else {
    std::lock_guard<std::mutex> lock(s.mutex);
    out = s.slots[static_cast<std::size_t>(root)];
  }
  barrier();  // slot may be reused
  return out;
}

std::vector<std::byte> Comm::gatherv(std::span<const std::byte> contribution,
                                     int root, std::vector<std::uint64_t>* sizes) {
  World::Shared& s = world_->shared_;
  {
    std::lock_guard<std::mutex> lock(s.mutex);
    s.slots[static_cast<std::size_t>(rank_)].assign(contribution.begin(),
                                                    contribution.end());
  }
  barrier();
  std::vector<std::byte> out;
  if (rank_ == root) {
    std::lock_guard<std::mutex> lock(s.mutex);
    if (sizes) sizes->clear();
    std::size_t total = 0;
    for (const auto& slot : s.slots) total += slot.size();
    out.reserve(total);
    for (const auto& slot : s.slots) {
      if (sizes) sizes->push_back(slot.size());
      out.insert(out.end(), slot.begin(), slot.end());
    }
  }
  barrier();
  return out;
}

std::vector<std::byte> Comm::allgatherv(std::span<const std::byte> contribution,
                                        std::vector<std::uint64_t>* sizes) {
  World::Shared& s = world_->shared_;
  {
    std::lock_guard<std::mutex> lock(s.mutex);
    s.slots[static_cast<std::size_t>(rank_)].assign(contribution.begin(),
                                                    contribution.end());
  }
  barrier();
  std::vector<std::byte> out;
  {
    std::lock_guard<std::mutex> lock(s.mutex);
    if (sizes) sizes->clear();
    std::size_t total = 0;
    for (const auto& slot : s.slots) total += slot.size();
    out.reserve(total);
    for (const auto& slot : s.slots) {
      if (sizes) sizes->push_back(slot.size());
      out.insert(out.end(), slot.begin(), slot.end());
    }
  }
  barrier();
  return out;
}

std::vector<std::byte> Comm::scatterv(
    const std::vector<std::vector<std::byte>>& chunks, int root) {
  World::Shared& s = world_->shared_;
  if (rank_ == root) {
    assert(chunks.size() == static_cast<std::size_t>(size()));
    std::lock_guard<std::mutex> lock(s.mutex);
    for (std::size_t i = 0; i < chunks.size(); ++i) s.slots[i] = chunks[i];
  }
  barrier();
  std::vector<std::byte> out;
  {
    std::lock_guard<std::mutex> lock(s.mutex);
    out = std::move(s.slots[static_cast<std::size_t>(rank_)]);
    s.slots[static_cast<std::size_t>(rank_)].clear();
  }
  barrier();
  return out;
}

namespace {
template <typename T>
std::vector<std::byte> to_bytes(T value) {
  std::vector<std::byte> out(sizeof(T));
  std::memcpy(out.data(), &value, sizeof(T));
  return out;
}
template <typename T>
T from_bytes(const std::byte* data) {
  T value;
  std::memcpy(&value, data, sizeof(T));
  return value;
}
}  // namespace

double Comm::allreduce_max(double value) {
  auto all = allgatherv(to_bytes(value));
  double best = value;
  for (std::size_t i = 0; i < all.size(); i += sizeof(double)) {
    best = std::max(best, from_bytes<double>(all.data() + i));
  }
  return best;
}

double Comm::allreduce_sum(double value) {
  auto all = allgatherv(to_bytes(value));
  double sum = 0.0;
  for (std::size_t i = 0; i < all.size(); i += sizeof(double)) {
    sum += from_bytes<double>(all.data() + i);
  }
  return sum;
}

std::uint64_t Comm::allreduce_sum_u64(std::uint64_t value) {
  auto all = allgatherv(to_bytes(value));
  std::uint64_t sum = 0;
  for (std::size_t i = 0; i < all.size(); i += sizeof(std::uint64_t)) {
    sum += from_bytes<std::uint64_t>(all.data() + i);
  }
  return sum;
}

void Comm::send(int dst, int tag, std::vector<std::byte> data) {
  World::Shared& s = world_->shared_;
  {
    std::lock_guard<std::mutex> lock(s.mutex);
    s.mailboxes[{rank_, dst, tag}].push_back(std::move(data));
  }
  s.cv.notify_all();
}

std::vector<std::byte> Comm::recv(int src, int tag) {
  World::Shared& s = world_->shared_;
  std::unique_lock<std::mutex> lock(s.mutex);
  auto key = std::make_tuple(src, rank_, tag);
  s.cv.wait(lock, [&] {
    auto it = s.mailboxes.find(key);
    return it != s.mailboxes.end() && !it->second.empty();
  });
  auto& queue = s.mailboxes[key];
  std::vector<std::byte> out = std::move(queue.front());
  queue.pop_front();
  return out;
}

void Comm::sync_time() {
  const double latest = allreduce_max(timeline().now());
  timeline().advance_to(latest);
}

}  // namespace msra::prt
