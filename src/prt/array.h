// Typed 3-D arrays over local boxes of a decomposition.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstring>
#include <span>
#include <vector>

#include "prt/dist.h"

namespace msra::prt {

/// A dense row-major 3-D array covering one rank's LocalBox (or any box).
/// Indexing is in *global* coordinates; storage is local.
template <typename T>
class Array3D {
 public:
  Array3D() = default;
  explicit Array3D(const LocalBox& box)
      : box_(box), data_(box.volume(), T{}) {}

  const LocalBox& box() const { return box_; }
  std::uint64_t volume() const { return data_.size(); }

  T& at(std::uint64_t i, std::uint64_t j, std::uint64_t k) {
    return data_[local_index(i, j, k)];
  }
  const T& at(std::uint64_t i, std::uint64_t j, std::uint64_t k) const {
    return data_[local_index(i, j, k)];
  }

  std::span<T> flat() { return data_; }
  std::span<const T> flat() const { return data_; }

  std::span<std::byte> bytes() {
    return {reinterpret_cast<std::byte*>(data_.data()), data_.size() * sizeof(T)};
  }
  std::span<const std::byte> bytes() const {
    return {reinterpret_cast<const std::byte*>(data_.data()),
            data_.size() * sizeof(T)};
  }

  /// True if (i, j, k) lies inside this array's box.
  bool contains(std::uint64_t i, std::uint64_t j, std::uint64_t k) const {
    return box_.extent[0].contains(i) && box_.extent[1].contains(j) &&
           box_.extent[2].contains(k);
  }

  void fill(T value) { std::fill(data_.begin(), data_.end(), value); }

 private:
  std::size_t local_index(std::uint64_t i, std::uint64_t j, std::uint64_t k) const {
    assert(contains(i, j, k));
    const std::uint64_t li = i - box_.extent[0].lo;
    const std::uint64_t lj = j - box_.extent[1].lo;
    const std::uint64_t lk = k - box_.extent[2].lo;
    return static_cast<std::size_t>(
        (li * box_.extent[1].size() + lj) * box_.extent[2].size() + lk);
  }

  LocalBox box_;
  std::vector<T> data_;
};

}  // namespace msra::prt
