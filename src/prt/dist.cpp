#include "prt/dist.h"

#include <algorithm>
#include <cassert>

namespace msra::prt {

StatusOr<std::array<DistKind, 3>> parse_pattern(const std::string& pattern) {
  if (pattern.empty() || pattern.size() > 3) {
    return Status::InvalidArgument("pattern must have 1..3 characters: " + pattern);
  }
  std::array<DistKind, 3> out = {DistKind::kStar, DistKind::kStar, DistKind::kStar};
  for (std::size_t i = 0; i < pattern.size(); ++i) {
    switch (pattern[i]) {
      case 'B': case 'b': out[i] = DistKind::kBlock; break;
      case 'C': case 'c': out[i] = DistKind::kCyclic; break;
      case '*': out[i] = DistKind::kStar; break;
      default:
        return Status::InvalidArgument(std::string("bad pattern character '") +
                                       pattern[i] + "'");
    }
  }
  return out;
}

std::string pattern_to_string(const std::array<DistKind, 3>& pattern) {
  std::string out;
  for (DistKind kind : pattern) {
    switch (kind) {
      case DistKind::kBlock: out += 'B'; break;
      case DistKind::kCyclic: out += 'C'; break;
      case DistKind::kStar: out += '*'; break;
    }
  }
  return out;
}

Extent block_extent(std::uint64_t n, int p, int part) {
  assert(p >= 1 && part >= 0 && part < p);
  const std::uint64_t base = n / static_cast<std::uint64_t>(p);
  const std::uint64_t extra = n % static_cast<std::uint64_t>(p);
  const auto up = static_cast<std::uint64_t>(part);
  const std::uint64_t lo = up * base + std::min<std::uint64_t>(up, extra);
  const std::uint64_t hi = lo + base + (up < extra ? 1 : 0);
  return {lo, hi};
}

StatusOr<ProcessGrid> make_grid(int nprocs, const std::array<DistKind, 3>& pattern,
                                const std::array<std::uint64_t, 3>& dims) {
  if (nprocs < 1) return Status::InvalidArgument("nprocs must be >= 1");
  ProcessGrid grid;
  // Greedy: repeatedly give the smallest prime factor of the remaining
  // processor count to the distributed dimension with the largest
  // per-process extent.
  int remaining = nprocs;
  auto smallest_prime_factor = [](int n) {
    for (int f = 2; f * f <= n; ++f) {
      if (n % f == 0) return f;
    }
    return n;
  };
  while (remaining > 1) {
    int best = -1;
    double best_extent = 0.0;
    for (int d = 0; d < 3; ++d) {
      if (pattern[static_cast<std::size_t>(d)] == DistKind::kStar) continue;
      const double extent = static_cast<double>(dims[static_cast<std::size_t>(d)]) /
                            grid.shape[static_cast<std::size_t>(d)];
      if (extent > best_extent) {
        best_extent = extent;
        best = d;
      }
    }
    if (best < 0) {
      return Status::InvalidArgument(
          "no distributed dimension to place " + std::to_string(remaining) +
          " processes (pattern " + pattern_to_string(pattern) + ")");
    }
    const int f = smallest_prime_factor(remaining);
    grid.shape[static_cast<std::size_t>(best)] *= f;
    remaining /= f;
  }
  // Each distributed dimension must have at least one element per process.
  for (int d = 0; d < 3; ++d) {
    if (static_cast<std::uint64_t>(grid.shape[static_cast<std::size_t>(d)]) >
        dims[static_cast<std::size_t>(d)]) {
      return Status::InvalidArgument("grid dim exceeds array dim");
    }
  }
  return grid;
}

StatusOr<Decomposition> Decomposition::create(
    const std::array<std::uint64_t, 3>& dims, int nprocs,
    const std::string& pattern) {
  MSRA_ASSIGN_OR_RETURN(auto kinds, parse_pattern(pattern));
  for (DistKind kind : kinds) {
    if (kind == DistKind::kCyclic) {
      return Status::Unimplemented("cyclic distribution not supported");
    }
  }
  for (std::uint64_t d : dims) {
    if (d == 0) return Status::InvalidArgument("zero-sized dimension");
  }
  Decomposition out;
  out.dims_ = dims;
  out.pattern_ = kinds;
  MSRA_ASSIGN_OR_RETURN(out.grid_, make_grid(nprocs, kinds, dims));
  return out;
}

LocalBox Decomposition::local_box(int rank) const {
  assert(rank >= 0 && rank < grid_.size());
  const auto coords = grid_.coords_of(rank);
  LocalBox box;
  for (std::size_t d = 0; d < 3; ++d) {
    if (pattern_[d] == DistKind::kStar) {
      box.extent[d] = {0, dims_[d]};
    } else {
      box.extent[d] = block_extent(dims_[d], grid_.shape[d], coords[d]);
    }
  }
  return box;
}

int Decomposition::owner_of(std::uint64_t i, std::uint64_t j,
                            std::uint64_t k) const {
  const std::array<std::uint64_t, 3> idx = {i, j, k};
  std::array<int, 3> coords = {0, 0, 0};
  for (std::size_t d = 0; d < 3; ++d) {
    if (pattern_[d] == DistKind::kStar || grid_.shape[d] == 1) {
      coords[d] = 0;
      continue;
    }
    // Invert block_extent: scan is fine for small grids; binary search for
    // larger ones.
    int lo = 0, hi = grid_.shape[d] - 1;
    while (lo < hi) {
      const int mid = (lo + hi) / 2;
      const Extent e = block_extent(dims_[d], grid_.shape[d], mid);
      if (idx[d] < e.lo) {
        hi = mid - 1;
      } else if (idx[d] >= e.hi) {
        lo = mid + 1;
      } else {
        lo = hi = mid;
      }
    }
    coords[d] = lo;
  }
  return grid_.rank_of(coords);
}

}  // namespace msra::prt
