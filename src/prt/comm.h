// A thread-backed message-passing runtime (the IBM SP2 stand-in).
//
// Each "process" of the paper's parallel applications is a host thread with
// a rank. Comm provides the MP primitives the run-time I/O libraries need:
// barrier, broadcast, gather(v), all-reduce, point-to-point send/recv, plus
// virtual-time synchronization (collective operations join the ranks'
// simulated clocks the way a real collective joins wall clocks).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <tuple>
#include <vector>

#include "simkit/timeline.h"

namespace msra::prt {

class Comm;

/// A group of `nprocs` ranks executing one SPMD function on host threads.
class World {
 public:
  explicit World(int nprocs);
  ~World();

  World(const World&) = delete;
  World& operator=(const World&) = delete;

  int size() const { return nprocs_; }

  /// Runs `fn(comm)` on every rank concurrently and joins. Each rank gets a
  /// Timeline starting at virtual time 0 unless `start` is given.
  void run(const std::function<void(Comm&)>& fn, simkit::SimTime start = 0.0);

  /// Timeline of a rank after (or during) run(). Valid for rank < size().
  simkit::Timeline& timeline(int rank) { return *timelines_[static_cast<std::size_t>(rank)]; }

 private:
  friend class Comm;

  struct Shared {
    std::mutex mutex;
    std::condition_variable cv;
    // Generation barrier.
    int barrier_count = 0;
    std::uint64_t barrier_generation = 0;
    // Collective scratch: per-rank byte slots + scalar reduction slots.
    std::vector<std::vector<std::byte>> slots;
    double reduce_double = 0.0;
    std::uint64_t reduce_u64 = 0;
    // Point-to-point mailboxes keyed by (src, dst, tag).
    std::map<std::tuple<int, int, int>, std::deque<std::vector<std::byte>>> mailboxes;
  };

  int nprocs_;
  Shared shared_;
  std::vector<std::unique_ptr<simkit::Timeline>> timelines_;
};

/// Per-rank handle used inside World::run.
class Comm {
 public:
  int rank() const { return rank_; }
  int size() const { return world_->size(); }
  simkit::Timeline& timeline() { return world_->timeline(rank_); }

  /// Blocks until all ranks arrive.
  void barrier();

  /// Root's bytes are copied to every rank. All ranks must pass the same
  /// root. Returns the broadcast payload.
  std::vector<std::byte> bcast(std::vector<std::byte> data, int root);

  /// Concatenates every rank's contribution in rank order at `root`
  /// (non-root ranks receive an empty vector). Also returns per-rank sizes
  /// through `sizes` when non-null.
  std::vector<std::byte> gatherv(std::span<const std::byte> contribution, int root,
                                 std::vector<std::uint64_t>* sizes = nullptr);

  /// Every rank receives the concatenation (gatherv + bcast semantics).
  std::vector<std::byte> allgatherv(std::span<const std::byte> contribution,
                                    std::vector<std::uint64_t>* sizes = nullptr);

  /// Scatter in rank order from root: rank i receives chunks[i].
  std::vector<std::byte> scatterv(const std::vector<std::vector<std::byte>>& chunks,
                                  int root);

  /// All-reduce over doubles / counters.
  double allreduce_max(double value);
  double allreduce_sum(double value);
  std::uint64_t allreduce_sum_u64(std::uint64_t value);

  /// Point-to-point. Tags disambiguate concurrent streams; matching is FIFO
  /// per (src, dst, tag).
  void send(int dst, int tag, std::vector<std::byte> data);
  std::vector<std::byte> recv(int src, int tag);

  /// Joins simulated clocks: every rank's timeline advances to the global
  /// maximum (the virtual-time analogue of a synchronizing collective).
  void sync_time();

 private:
  friend class World;
  Comm(World* world, int rank) : world_(world), rank_(rank) {}

  World* world_;
  int rank_;
};

}  // namespace msra::prt
