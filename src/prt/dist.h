// Data distributions for parallel datasets.
//
// The paper's access patterns describe "how the user's dataset will be
// partitioned and accessed by parallel processors" with HPF-style pattern
// strings — Fig 11 shows PATTERN = "BBB" (BLOCK in each of three dims).
// This module parses those patterns and computes the per-rank boxes that the
// run-time I/O libraries translate into file requests.
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "common/status.h"

namespace msra::prt {

/// Distribution of one array dimension across the process grid.
enum class DistKind {
  kBlock,   ///< 'B': contiguous blocks
  kCyclic,  ///< 'C': round-robin elements
  kStar,    ///< '*': not distributed (replicated extent)
};

/// Parses a pattern string like "BBB", "B*B", "CB*". One character per
/// dimension, up to 3 dimensions.
StatusOr<std::array<DistKind, 3>> parse_pattern(const std::string& pattern);

/// Renders a pattern back to its string form.
std::string pattern_to_string(const std::array<DistKind, 3>& pattern);

/// Half-open index range [lo, hi).
struct Extent {
  std::uint64_t lo = 0;
  std::uint64_t hi = 0;
  std::uint64_t size() const { return hi - lo; }
  bool contains(std::uint64_t i) const { return i >= lo && i < hi; }
};

/// The classic BLOCK split of n elements over p parts: the first (n % p)
/// parts get one extra element. part must be in [0, p).
Extent block_extent(std::uint64_t n, int p, int part);

/// A 3-D process grid. Dimensions with kStar distribution always get grid
/// extent 1; the remaining factors of nprocs are assigned largest-first to
/// the largest distributed array dimensions.
struct ProcessGrid {
  std::array<int, 3> shape = {1, 1, 1};

  int size() const { return shape[0] * shape[1] * shape[2]; }

  /// Row-major rank of grid coordinates.
  int rank_of(const std::array<int, 3>& coords) const {
    return (coords[0] * shape[1] + coords[1]) * shape[2] + coords[2];
  }

  /// Grid coordinates of a row-major rank.
  std::array<int, 3> coords_of(int rank) const {
    return {rank / (shape[1] * shape[2]), (rank / shape[2]) % shape[1],
            rank % shape[2]};
  }
};

/// Factors `nprocs` into a grid honoring the pattern (kStar dims get 1).
StatusOr<ProcessGrid> make_grid(int nprocs, const std::array<DistKind, 3>& pattern,
                                const std::array<std::uint64_t, 3>& dims);

/// A rank's rectangular sub-box of the global 3-D array.
struct LocalBox {
  std::array<Extent, 3> extent;
  std::uint64_t volume() const {
    return extent[0].size() * extent[1].size() * extent[2].size();
  }
};

/// A full 3-D decomposition: global dims + pattern + grid.
class Decomposition {
 public:
  /// Builds a decomposition of `dims` over `nprocs` ranks with `pattern`.
  /// Cyclic distributions are accepted by parse but not by Decomposition
  /// (the paper's workloads are BLOCK/*); they return kUnimplemented.
  static StatusOr<Decomposition> create(const std::array<std::uint64_t, 3>& dims,
                                        int nprocs, const std::string& pattern);

  const std::array<std::uint64_t, 3>& dims() const { return dims_; }
  const ProcessGrid& grid() const { return grid_; }
  const std::array<DistKind, 3>& pattern() const { return pattern_; }
  int nprocs() const { return grid_.size(); }

  /// Total number of elements in the global array.
  std::uint64_t global_volume() const {
    return dims_[0] * dims_[1] * dims_[2];
  }

  /// The box owned by `rank`.
  LocalBox local_box(int rank) const;

  /// The rank owning global element (i, j, k).
  int owner_of(std::uint64_t i, std::uint64_t j, std::uint64_t k) const;

  /// Row-major linear offset of global element (i, j, k).
  std::uint64_t linear_offset(std::uint64_t i, std::uint64_t j,
                              std::uint64_t k) const {
    return (i * dims_[1] + j) * dims_[2] + k;
  }

 private:
  Decomposition() = default;
  std::array<std::uint64_t, 3> dims_ = {1, 1, 1};
  std::array<DistKind, 3> pattern_ = {DistKind::kStar, DistKind::kStar,
                                      DistKind::kStar};
  ProcessGrid grid_;
};

}  // namespace msra::prt
