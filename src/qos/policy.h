// The QoS policy: which discipline devices run, and what each tenant
// class is entitled to.
//
// A QosConfig is control-plane state: StorageSystem::enable_qos installs
// its discipline on every shared device and resolves TenantClass ->
// simkit::QosTag for the fleet layer; `msractl qos` persists one in the
// metadata database so every tool run against a data root schedules under
// the same policy.
#pragma once

#include <array>
#include <string>

#include "common/status.h"
#include "qos/tenant.h"
#include "simkit/discipline.h"

namespace msra::meta {
class Database;
}  // namespace msra::meta

namespace msra::qos {

/// Entitlements of one tenant class.
struct ClassPolicy {
  /// WFQ share; the class drains at weight / sum(active weights) of each
  /// device's capacity when backlogged.
  double weight = 1.0;
  /// Relative deadline in virtual seconds (0 = none). Orders grants under
  /// EDF and meters deadline misses under every discipline.
  double deadline = 0.0;
  /// Admission SLO in virtual seconds (0 = admit always): the worst
  /// predictor-quoted completion the class accepts at submit time.
  double slo = 0.0;
};

/// The whole policy. Defaults give interactive an 8x share over
/// background and 4x over batch with no deadlines and no admission gate —
/// enabling QoS without editing anything is already a meaningful policy.
struct QosConfig {
  simkit::DisciplineKind discipline = simkit::DisciplineKind::kFifo;
  std::array<ClassPolicy, kTenantClasses> classes = {
      ClassPolicy{.weight = 8.0},   // interactive
      ClassPolicy{.weight = 2.0},   // batch
      ClassPolicy{.weight = 1.0},   // background
  };
  /// When true, Fleet::submit consults the AdmissionController for every
  /// workload whose class carries an SLO.
  bool admission = false;

  const ClassPolicy& policy(TenantClass cls) const {
    return classes[static_cast<std::size_t>(cls)];
  }
  ClassPolicy& policy(TenantClass cls) {
    return classes[static_cast<std::size_t>(cls)];
  }
};

/// The QosTag a class books under, per `config`.
simkit::QosTag tag_for(const QosConfig& config, TenantClass cls);

/// Persists `config` in the metadata database (table "qos_config",
/// replacing any previous row) — the `msractl qos` storage.
Status save_config(meta::Database& db, const QosConfig& config);

/// Loads the persisted config; NotFound when none was ever saved.
StatusOr<QosConfig> load_config(meta::Database& db);

}  // namespace msra::qos
