// Tenant service classes.
//
// A leaf header (no core/ dependency) so core::SessionOptions can carry a
// TenantClass while the rest of the QoS subsystem (qos/policy.h,
// qos/admission.h) layers above core.
#pragma once

#include <string_view>

#include "common/status.h"
#include "simkit/qos.h"

namespace msra::qos {

/// The three service classes of the QoS policy. The enum value doubles as
/// the simkit::QosTag::class_id, so class 0 — the default tag every
/// untagged (pre-QoS) booking carries — is interactive: traffic that never
/// opted in is treated as a user waiting, while migration and cache-fill
/// traffic is explicitly tagged background by construction.
enum class TenantClass {
  kInteractive = 0,  ///< a user is waiting (Volren frames, MSE probes)
  kBatch = 1,        ///< bulk ingest / dumps (Astro3D checkpoint streams)
  kBackground = 2,   ///< the system's own traffic (migration, cache fill)
};

inline constexpr int kTenantClasses = 3;

inline constexpr TenantClass kAllTenantClasses[] = {
    TenantClass::kInteractive, TenantClass::kBatch, TenantClass::kBackground};

std::string_view tenant_class_name(TenantClass cls);
StatusOr<TenantClass> parse_tenant_class(std::string_view name);

}  // namespace msra::qos
