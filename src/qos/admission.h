// Predictor-quoted admission control in front of Fleet::submit.
//
// Open-loop FIFO accepts everything and lets the queue answer: under a
// batch flood an interactive request is admitted, waits out the backlog,
// and misses its deadline anyway — the failure mode CASTOR's stager avoids
// by refusing or redirecting requests it cannot serve in time. The
// AdmissionController applies that model to the fleet: at submit time it
// prices the workload's recorded transfers (Workload::intents) against the
// LIVE system state — each candidate replica's booked backlog plus the
// predictor's service quote inflated by the observed utilization, the same
// earliest-finish math the cluster balancer routes by — and compares the
// total against the tenant class's SLO:
//
//   * quote(cheapest route) <= SLO               -> accept
//   * quote(static route) > SLO >= quote(cheapest) -> accept as REDIRECT:
//     the request only fits because the balancer steers it to a cheaper
//     site (sessions route cheapest-quote when they carry a predictor)
//   * quote(cheapest route) > SLO                -> reject with
//     Status::ResourceExhausted — fail fast instead of queueing forever
//
// Classes without an SLO (slo == 0, the default) are always admitted.
// Decisions land in obs: qos.admission.{accepted,rejected,redirected}
// counters and a qos.admission.quote histogram.
#pragma once

#include <string>

#include "core/fleet.h"
#include "qos/policy.h"

namespace msra::predict {
class Predictor;
}  // namespace msra::predict

namespace msra::core {
class StorageSystem;
class Client;
}  // namespace msra::core

namespace msra::qos {

/// One admission verdict, with the quotes that produced it.
struct AdmissionDecision {
  enum class Outcome { kAccept, kRedirect, kReject };
  Outcome outcome = Outcome::kAccept;
  double quote = 0.0;         ///< cheapest-route completion quote (seconds)
  double static_quote = 0.0;  ///< quote of the static (pre-balancer) route
  double slo = 0.0;           ///< the class SLO compared against (0 = none)
  std::string reason;         ///< human-readable verdict for logs/tools
};

/// Thread-safety: decide()/admit() may run from concurrent submitters (all
/// state is read-only after construction; metrics are internally
/// synchronized).
class AdmissionController {
 public:
  /// `system` and `predictor` must outlive the controller; `predictor` may
  /// be null (quotes then fall back to backlog only — the booked virtual
  /// seconds ahead of the request — which still rejects a flooded site).
  AdmissionController(core::StorageSystem& system,
                      const predict::Predictor* predictor, QosConfig config);

  const QosConfig& config() const { return config_; }

  /// Prices `workload` for class `cls` as seen at virtual time `now`.
  /// Pure: no metrics, no state change.
  AdmissionDecision decide(const core::Workload& workload, TenantClass cls,
                           double now) const;

  /// The Fleet::submit gate: decides under the submitting client's class
  /// (workload override wins), records the decision in obs, and returns
  /// Ok (accept/redirect) or ResourceExhausted (reject).
  Status admit(core::Client& client, const core::Workload& workload);

  /// Quotes one staged byte-move (the flow scheduler's copy tasks) for
  /// class `cls`: the worse of the two routes' backlogs plus the priced
  /// copy, against the class SLO. Classes without an SLO always pass —
  /// background staging only defers when the operator gave background a
  /// deadline to respect. Records
  /// qos.admission.staging_{accepted,deferred}.
  AdmissionDecision decide_move(const std::string& path, std::uint64_t bytes,
                                core::ReplicaAddress from,
                                core::ReplicaAddress to, TenantClass cls,
                                double now) const;

  /// Installs this controller as `fleet`'s admission gate (the controller
  /// must outlive the fleet's pumping).
  void attach(core::Fleet& fleet);

 private:
  /// Cheapest and static completion quotes for one recorded transfer, in
  /// seconds from `now`. Unpriceable intents (dataset not dumped yet,
  /// curves missing) quote 0 — admission never blocks on missing data.
  void quote_intent(const core::Workload::IoIntent& intent, double now,
                    double* cheapest, double* fixed) const;

  core::StorageSystem& system_;
  const predict::Predictor* predictor_;
  QosConfig config_;
};

}  // namespace msra::qos
