#include "qos/policy.h"

#include "meta/database.h"

namespace msra::qos {

std::string_view tenant_class_name(TenantClass cls) {
  switch (cls) {
    case TenantClass::kInteractive: return "interactive";
    case TenantClass::kBatch: return "batch";
    case TenantClass::kBackground: return "background";
  }
  return "?";
}

StatusOr<TenantClass> parse_tenant_class(std::string_view name) {
  if (name == "interactive") return TenantClass::kInteractive;
  if (name == "batch") return TenantClass::kBatch;
  if (name == "background") return TenantClass::kBackground;
  return Status::InvalidArgument("unknown tenant class: " + std::string(name));
}

simkit::QosTag tag_for(const QosConfig& config, TenantClass cls) {
  const ClassPolicy& policy = config.policy(cls);
  simkit::QosTag tag;
  tag.class_id = static_cast<int>(cls);
  tag.weight = policy.weight;
  tag.deadline = policy.deadline;
  return tag;
}

namespace {

using meta::ColumnType;

/// One row per class: the discipline and admission flag repeat, which
/// keeps the schema flat (three rows, no blob encoding).
meta::Schema qos_schema() {
  return meta::Schema{{"class", ColumnType::kText},
                      {"discipline", ColumnType::kText},
                      {"weight", ColumnType::kReal},
                      {"deadline", ColumnType::kReal},
                      {"slo", ColumnType::kReal},
                      {"admission", ColumnType::kInt}};
}

constexpr char kQosTable[] = "qos_config";

}  // namespace

Status save_config(meta::Database& db, const QosConfig& config) {
  MSRA_ASSIGN_OR_RETURN(meta::Table * table,
                        db.open_table(kQosTable, qos_schema()));
  table->clear();
  for (TenantClass cls : kAllTenantClasses) {
    const ClassPolicy& policy = config.policy(cls);
    meta::Row row = {std::string(tenant_class_name(cls)),
                     std::string(simkit::discipline_name(config.discipline)),
                     policy.weight,
                     policy.deadline,
                     policy.slo,
                     static_cast<std::int64_t>(config.admission ? 1 : 0)};
    MSRA_ASSIGN_OR_RETURN(std::int64_t rowid, table->insert(std::move(row)));
    (void)rowid;
  }
  return Status::Ok();
}

StatusOr<QosConfig> load_config(meta::Database& db) {
  meta::Table* table = db.table(kQosTable);
  if (table == nullptr || table->size() == 0) {
    return Status::NotFound("no QoS config saved");
  }
  QosConfig config;
  Status bad = Status::Ok();
  table->for_each([&](std::int64_t, const meta::Row& row) {
    if (!bad.ok() || row.size() != 6) return;
    auto parsed_class = parse_tenant_class(std::get<std::string>(row[0]));
    auto parsed_disc = simkit::parse_discipline(std::get<std::string>(row[1]));
    if (!parsed_class.ok() || !parsed_disc.ok()) {
      bad = Status::Internal("corrupt qos_config row");
      return;
    }
    config.discipline = *parsed_disc;
    ClassPolicy& policy = config.policy(*parsed_class);
    policy.weight = std::get<double>(row[2]);
    policy.deadline = std::get<double>(row[3]);
    policy.slo = std::get<double>(row[4]);
    config.admission = std::get<std::int64_t>(row[5]) != 0;
  });
  if (!bad.ok()) return bad;
  return config;
}

}  // namespace msra::qos
