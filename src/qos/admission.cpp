#include "qos/admission.h"

#include <algorithm>
#include <cstdio>

#include "core/balancer.h"
#include "core/catalog.h"
#include "core/client.h"
#include "core/placement.h"
#include "core/system.h"
#include "obs/metrics.h"
#include "predict/predictor.h"
#include "runtime/plan.h"

namespace msra::qos {

namespace {

/// Fixed class order (local > remote disk > tape), then server index — the
/// route a predictor-less session takes (Balancer::static_order).
core::ReplicaAddress static_first(
    const std::vector<core::ReplicaAddress>& candidates) {
  core::ReplicaAddress best = candidates.front();
  auto rank = [](core::Location location) {
    for (int i = 0; i < static_cast<int>(std::size(core::kConcreteLocations));
         ++i) {
      if (core::kConcreteLocations[i] == location) return i;
    }
    return static_cast<int>(std::size(core::kConcreteLocations));
  };
  for (const core::ReplicaAddress& address : candidates) {
    if (rank(address.location) < rank(best.location) ||
        (rank(address.location) == rank(best.location) &&
         address.server < best.server)) {
      best = address;
    }
  }
  return best;
}

}  // namespace

AdmissionController::AdmissionController(core::StorageSystem& system,
                                         const predict::Predictor* predictor,
                                         QosConfig config)
    : system_(system), predictor_(predictor), config_(config) {}

void AdmissionController::quote_intent(const core::Workload::IoIntent& intent,
                                       double now, double* cheapest,
                                       double* fixed) const {
  core::MetaCatalog catalog(&system_.metadb());
  auto record = catalog.find_dataset(intent.dataset);
  if (!record.ok()) return;  // not registered yet: nothing to price

  // The completion quote of one candidate: its booked backlog (virtual
  // seconds until the most congested path device drains, relative to the
  // submitter's clock) plus the predictor's service quote inflated by the
  // live utilization — the balancer's earliest-finish math, reused as the
  // admission meter.
  const core::Balancer& balancer = system_.balancer();
  auto quote_at = [&](core::ReplicaAddress address,
                      const runtime::IoPlan& plan) {
    double seconds =
        std::max(0.0, balancer.backlog_seconds(address) - now);
    if (predictor_ != nullptr) {
      predict::LoadAssumptions load;
      load.utilization = balancer.observed_utilization(address);
      auto priced = predictor_->price(plan, address.location, load);
      if (priced.ok()) seconds += *priced;
    }
    return seconds;
  };

  if (intent.kind == core::Workload::IoIntent::Kind::kWrite) {
    // Writes target the dataset's resolved placement (sharded over the
    // cluster like DatasetHandle's own write address).
    core::Location location = record->resolved;
    if (location != core::Location::kLocalDisk &&
        location != core::Location::kRemoteDisk &&
        location != core::Location::kRemoteTape) {
      return;  // DISABLE/AUTO: nothing will be written
    }
    const int server =
        location == core::Location::kLocalDisk
            ? 0
            : core::shard_server(intent.dataset, location,
                                 system_.cluster_size());
    const core::ReplicaAddress address{location, server};
    const runtime::IoPlan plan = runtime::PlanBuilder::object_write(
        "qos/probe", record->desc.global_bytes(), srb::OpenMode::kOverwrite);
    const double quote = quote_at(address, plan);
    *cheapest += quote;
    *fixed += quote;
    return;
  }

  auto instance =
      catalog.instance(record->app, intent.dataset, intent.timestep);
  if (!instance.ok() || instance->replicas.empty()) return;
  std::vector<core::ReplicaAddress> live;
  for (core::ReplicaAddress address : instance->replicas) {
    if (system_.endpoint(address).available()) live.push_back(address);
  }
  if (live.empty()) return;  // the read will fail, not queue — admit
  const runtime::IoPlan plan =
      runtime::PlanBuilder::object_read(instance->path, instance->bytes);
  double best = -1.0;
  for (core::ReplicaAddress address : live) {
    const double quote = quote_at(address, plan);
    if (best < 0.0 || quote < best) best = quote;
  }
  *cheapest += best;
  *fixed += quote_at(static_first(live), plan);
}

AdmissionDecision AdmissionController::decide(const core::Workload& workload,
                                              TenantClass cls,
                                              double now) const {
  AdmissionDecision decision;
  decision.slo = config_.policy(cls).slo;
  if (decision.slo <= 0.0 || workload.intents().empty()) {
    decision.reason = "no SLO: admitted";
    return decision;
  }
  for (const core::Workload::IoIntent& intent : workload.intents()) {
    quote_intent(intent, now, &decision.quote, &decision.static_quote);
  }
  char buffer[160];
  if (decision.quote > decision.slo) {
    decision.outcome = AdmissionDecision::Outcome::kReject;
    std::snprintf(buffer, sizeof(buffer),
                  "quoted %.3fs exceeds the %s SLO of %.3fs on every route",
                  decision.quote,
                  std::string(tenant_class_name(cls)).c_str(), decision.slo);
    decision.reason = buffer;
    return decision;
  }
  if (decision.static_quote > decision.slo) {
    // Only the balancer's cheapest route meets the SLO: the home/static
    // site is priced out, so acceptance IS a redirect.
    decision.outcome = AdmissionDecision::Outcome::kRedirect;
    std::snprintf(buffer, sizeof(buffer),
                  "static route quotes %.3fs > SLO %.3fs; redirected to a "
                  "route quoting %.3fs",
                  decision.static_quote, decision.slo, decision.quote);
    decision.reason = buffer;
    return decision;
  }
  std::snprintf(buffer, sizeof(buffer), "quoted %.3fs within SLO %.3fs",
                decision.quote, decision.slo);
  decision.reason = buffer;
  return decision;
}

AdmissionDecision AdmissionController::decide_move(
    const std::string& path, std::uint64_t bytes, core::ReplicaAddress from,
    core::ReplicaAddress to, TenantClass cls, double now) const {
  AdmissionDecision decision;
  decision.slo = config_.policy(cls).slo;
  if (decision.slo <= 0.0) {
    decision.reason = "no SLO: staging admitted";
    return decision;
  }
  const core::Balancer& balancer = system_.balancer();
  decision.quote = std::max(
      {0.0, balancer.backlog_seconds(from) - now,
       balancer.backlog_seconds(to) - now});
  if (predictor_ != nullptr) {
    auto read = predictor_->price(
        runtime::PlanBuilder::object_read(path, bytes), from.location);
    auto write = predictor_->price(
        runtime::PlanBuilder::object_write(path, bytes,
                                           srb::OpenMode::kOverwrite),
        to.location);
    if (read.ok()) decision.quote += *read;
    if (write.ok()) decision.quote += *write;
  }
  decision.static_quote = decision.quote;  // a move has exactly one route
  obs::MetricsRegistry& metrics = system_.metrics();
  char buffer[160];
  if (decision.quote > decision.slo) {
    decision.outcome = AdmissionDecision::Outcome::kReject;
    std::snprintf(buffer, sizeof(buffer),
                  "staging move quotes %.3fs > %s SLO %.3fs", decision.quote,
                  std::string(tenant_class_name(cls)).c_str(), decision.slo);
    decision.reason = buffer;
    if (metrics.enabled()) {
      metrics.counter("qos.admission.staging_deferred")->increment();
    }
    return decision;
  }
  std::snprintf(buffer, sizeof(buffer),
                "staging move quoted %.3fs within SLO %.3fs", decision.quote,
                decision.slo);
  decision.reason = buffer;
  if (metrics.enabled()) {
    metrics.counter("qos.admission.staging_accepted")->increment();
  }
  return decision;
}

Status AdmissionController::admit(core::Client& client,
                                  const core::Workload& workload) {
  const TenantClass cls = workload.tenant_class().has_value()
                              ? *workload.tenant_class()
                              : client.session().options().tenant_class;
  const AdmissionDecision decision =
      decide(workload, cls, client.timeline().now());
  obs::MetricsRegistry& metrics = system_.metrics();
  if (metrics.enabled()) {
    metrics.histogram("qos.admission.quote")->record(decision.quote);
    // Both an aggregate and a per-class counter, so the stats table can
    // attribute verdicts while dashboards keep one number to watch.
    const std::string prefix =
        "qos.admission." + std::string(tenant_class_name(cls)) + ".";
    switch (decision.outcome) {
      case AdmissionDecision::Outcome::kAccept:
        metrics.counter("qos.admission.accepted")->increment();
        metrics.counter(prefix + "accepted")->increment();
        break;
      case AdmissionDecision::Outcome::kRedirect:
        metrics.counter("qos.admission.accepted")->increment();
        metrics.counter(prefix + "accepted")->increment();
        metrics.counter("qos.admission.redirected")->increment();
        metrics.counter(prefix + "redirected")->increment();
        break;
      case AdmissionDecision::Outcome::kReject:
        metrics.counter("qos.admission.rejected")->increment();
        metrics.counter(prefix + "rejected")->increment();
        break;
    }
  }
  if (decision.outcome == AdmissionDecision::Outcome::kReject) {
    return Status::ResourceExhausted(decision.reason);
  }
  return Status::Ok();
}

void AdmissionController::attach(core::Fleet& fleet) {
  fleet.set_admission([this](core::Client& client,
                             const core::Workload& workload) {
    return admit(client, workload);
  });
}

}  // namespace msra::qos
