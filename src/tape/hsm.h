// HsmStore: the HPSS hierarchy — a staging disk cache in front of tapes.
//
// The paper notes "HPSS can be configured as multiple hierarchies" but
// exercises only the tape level. This implements the full two-level
// behavior as an optional feature:
//
//  * writes land on the staging disks (fast, random-access) and are marked
//    dirty;
//  * dirty objects migrate to tape when the cache needs room (LRU) or when
//    migrate_all() runs (the nightly sweep);
//  * reads hit the cache, or recall the bitfile from tape into the cache
//    first;
//  * open/close cost the disk-cache rates for staged objects, the tape
//    rates otherwise.
#pragma once

#include <map>
#include <mutex>

#include "simkit/resource.h"
#include "store/disk_model.h"
#include "store/mem_store.h"
#include "tape/backend.h"
#include "tape/tape_library.h"

namespace msra::tape {

/// Parameters of the staging level.
struct HsmModel {
  store::DiskModel cache_disk;          ///< staging disk timing
  std::uint64_t cache_capacity = 1ull << 30;
  simkit::SimTime open_cached = 0.25;   ///< bitfile open when staged (s)
  simkit::SimTime close_cached = 0.05;  ///< bitfile close when staged (s)
};

/// Cumulative staging statistics.
struct HsmStats {
  std::uint64_t cache_hits = 0;
  std::uint64_t recalls = 0;     ///< tape -> cache
  std::uint64_t migrations = 0;  ///< cache -> tape
  std::uint64_t evictions = 0;   ///< clean copies dropped for room
};

class HsmStore final : public BitfileBackend {
 public:
  /// Does not own the tape library.
  HsmStore(std::string name, HsmModel model, TapeLibrary* tape);

  Status create(const std::string& name, bool overwrite) override;
  bool exists(const std::string& name) const override;
  StatusOr<std::uint64_t> size(const std::string& name) const override;
  Status append(simkit::Timeline& timeline, const std::string& name,
                std::uint64_t offset, std::span<const std::byte> data) override;
  Status read(simkit::Timeline& timeline, const std::string& name,
              std::uint64_t offset, std::span<std::byte> out) override;
  Status remove(const std::string& name) override;
  std::vector<store::ObjectInfo> list(const std::string& prefix) const override;
  std::uint64_t used_bytes() const override;

  simkit::SimTime open_cost(const std::string& name, bool write) const override;
  simkit::SimTime close_cost(bool write) const override;
  void reset_clocks() override;

  /// Flushes every dirty object to tape (keeps the cached copies clean).
  Status migrate_all(simkit::Timeline& timeline);

  std::uint64_t cache_used() const;
  HsmStats stats() const;
  bool is_cached(const std::string& name) const;

  /// Mirrors staging traffic into `registry`: counters `hsm.cache_hits` /
  /// `hsm.recalls` / `hsm.migrations` / `hsm.evictions`, gauge
  /// `hsm.cache_used_bytes`, histogram `hsm.recall_time` (simulated
  /// seconds). Null detaches.
  void set_metrics(obs::MetricsRegistry* registry);

  /// The staging-disk arm resource (for contention accounting / observers).
  simkit::Resource& cache_arm() { return cache_arm_; }
  const simkit::Resource& cache_arm() const { return cache_arm_; }

 private:
  struct Entry {
    std::uint64_t bytes = 0;
    bool cached = false;
    bool dirty = false;    ///< cached copy newer than (or absent from) tape
    bool on_tape = false;
    simkit::SimTime last_use = 0.0;
  };

  /// Frees cache space until `bytes` fit (migrate dirty LRU victims, drop
  /// clean ones). `exclude` (the object being operated on) is never chosen
  /// as a victim. Caller holds mutex_.
  Status ensure_room_locked(simkit::Timeline& timeline, std::uint64_t bytes,
                            const std::string& exclude);

  /// Stages a tape-resident object into the cache. Caller holds mutex_.
  Status recall_locked(simkit::Timeline& timeline, const std::string& name,
                       Entry& entry);

  /// Writes one dirty entry to tape. Caller holds mutex_.
  Status migrate_locked(simkit::Timeline& timeline, const std::string& name,
                        Entry& entry);

  std::string name_;
  HsmModel model_;
  TapeLibrary* tape_;
  mutable std::mutex mutex_;
  std::map<std::string, Entry> entries_;
  store::MemObjectStore cache_;
  std::uint64_t cache_used_ = 0;
  simkit::Resource cache_arm_;
  HsmStats stats_;

  // Cached instruments (null when no registry is attached).
  obs::Counter* m_hits_ = nullptr;
  obs::Counter* m_recalls_ = nullptr;
  obs::Counter* m_migrations_ = nullptr;
  obs::Counter* m_evictions_ = nullptr;
  obs::Gauge* m_cache_used_ = nullptr;
  obs::Histogram* m_recall_time_ = nullptr;
};

}  // namespace msra::tape
