#include "tape/hsm.h"

#include <algorithm>
#include <vector>

#include "obs/metrics.h"

namespace msra::tape {

HsmStore::HsmStore(std::string name, HsmModel model, TapeLibrary* tape)
    : name_(std::move(name)),
      model_(model),
      tape_(tape),
      cache_arm_(name_ + "/cache-arm") {}

Status HsmStore::create(const std::string& name, bool overwrite) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(name);
  if (it != entries_.end()) {
    if (!overwrite) return Status::AlreadyExists("bitfile exists: " + name);
    Entry& entry = it->second;
    if (entry.cached) {
      cache_used_ -= entry.bytes;
      (void)cache_.remove(name);
    }
    if (entry.on_tape) (void)tape_->remove(name);
    entry = Entry{};
    entry.cached = true;
    entry.dirty = true;
    return cache_.create(name, /*overwrite=*/true);
  }
  Entry entry;
  entry.cached = true;
  entry.dirty = true;
  entries_.emplace(name, entry);
  return cache_.create(name, /*overwrite=*/false);
}

bool HsmStore::exists(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.count(name) != 0;
}

StatusOr<std::uint64_t> HsmStore::size(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(name);
  if (it == entries_.end()) return Status::NotFound("no bitfile: " + name);
  return it->second.bytes;
}

void HsmStore::set_metrics(obs::MetricsRegistry* registry) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (registry == nullptr) {
    m_hits_ = nullptr;
    m_recalls_ = nullptr;
    m_migrations_ = nullptr;
    m_evictions_ = nullptr;
    m_cache_used_ = nullptr;
    m_recall_time_ = nullptr;
    return;
  }
  m_hits_ = registry->counter("hsm.cache_hits");
  m_recalls_ = registry->counter("hsm.recalls");
  m_migrations_ = registry->counter("hsm.migrations");
  m_evictions_ = registry->counter("hsm.evictions");
  m_cache_used_ = registry->gauge("hsm.cache_used_bytes");
  m_recall_time_ = registry->histogram("hsm.recall_time");
}

Status HsmStore::migrate_locked(simkit::Timeline& timeline,
                                const std::string& name, Entry& entry) {
  // Read the cached copy (disk time) and write it to tape sequentially.
  std::vector<std::byte> payload(entry.bytes);
  MSRA_RETURN_IF_ERROR(cache_.read(name, 0, payload));
  cache_arm_.acquire(timeline, model_.cache_disk.read_time(entry.bytes));
  MSRA_RETURN_IF_ERROR(tape_->create(name, /*overwrite=*/entry.on_tape));
  MSRA_RETURN_IF_ERROR(tape_->append(timeline, name, 0, payload));
  entry.on_tape = true;
  entry.dirty = false;
  ++stats_.migrations;
  if (m_migrations_) m_migrations_->increment();
  return Status::Ok();
}

Status HsmStore::ensure_room_locked(simkit::Timeline& timeline,
                                    std::uint64_t bytes,
                                    const std::string& exclude) {
  if (bytes > model_.cache_capacity) {
    return Status::CapacityExceeded("object larger than the staging cache");
  }
  while (cache_used_ + bytes > model_.cache_capacity) {
    // LRU victim among cached entries.
    std::string victim;
    simkit::SimTime oldest = 0.0;
    bool found = false;
    for (const auto& [name, entry] : entries_) {
      if (!entry.cached || name == exclude) continue;
      if (!found || entry.last_use < oldest) {
        victim = name;
        oldest = entry.last_use;
        found = true;
      }
    }
    if (!found) {
      return Status::CapacityExceeded("staging cache cannot make room");
    }
    Entry& entry = entries_[victim];
    if (entry.dirty) {
      MSRA_RETURN_IF_ERROR(migrate_locked(timeline, victim, entry));
    } else {
      ++stats_.evictions;
      if (m_evictions_) m_evictions_->increment();
    }
    cache_used_ -= entry.bytes;
    if (m_cache_used_) m_cache_used_->set(static_cast<double>(cache_used_));
    entry.cached = false;
    (void)cache_.remove(victim);
  }
  return Status::Ok();
}

Status HsmStore::recall_locked(simkit::Timeline& timeline,
                               const std::string& name, Entry& entry) {
  const simkit::SimTime recall_start = timeline.now();
  MSRA_RETURN_IF_ERROR(ensure_room_locked(timeline, entry.bytes, name));
  std::vector<std::byte> payload(entry.bytes);
  MSRA_RETURN_IF_ERROR(tape_->read(timeline, name, 0, payload));
  MSRA_RETURN_IF_ERROR(cache_.create(name, /*overwrite=*/true));
  MSRA_RETURN_IF_ERROR(cache_.write(name, 0, payload));
  cache_arm_.acquire(timeline, model_.cache_disk.write_time(entry.bytes));
  entry.cached = true;
  entry.dirty = false;
  cache_used_ += entry.bytes;
  ++stats_.recalls;
  if (m_recalls_) m_recalls_->increment();
  if (m_recall_time_) m_recall_time_->record(timeline.now() - recall_start);
  if (m_cache_used_) m_cache_used_->set(static_cast<double>(cache_used_));
  return Status::Ok();
}

Status HsmStore::append(simkit::Timeline& timeline, const std::string& name,
                        std::uint64_t offset, std::span<const std::byte> data) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(name);
  if (it == entries_.end()) return Status::NotFound("no bitfile: " + name);
  Entry& entry = it->second;
  if (offset > entry.bytes) {
    return Status::InvalidArgument("write past end of staged bitfile " + name);
  }
  if (!entry.cached) {
    MSRA_RETURN_IF_ERROR(recall_locked(timeline, name, entry));
  }
  const std::uint64_t growth =
      offset + data.size() > entry.bytes ? offset + data.size() - entry.bytes : 0;
  if (growth > 0) {
    MSRA_RETURN_IF_ERROR(ensure_room_locked(timeline, growth, name));
  }
  MSRA_RETURN_IF_ERROR(cache_.write(name, offset, data));
  cache_arm_.acquire(timeline, model_.cache_disk.write_time(data.size()));
  entry.bytes += growth;
  cache_used_ += growth;
  if (growth > 0 && m_cache_used_) {
    m_cache_used_->set(static_cast<double>(cache_used_));
  }
  entry.dirty = true;
  entry.last_use = timeline.now();
  return Status::Ok();
}

Status HsmStore::read(simkit::Timeline& timeline, const std::string& name,
                      std::uint64_t offset, std::span<std::byte> out) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(name);
  if (it == entries_.end()) return Status::NotFound("no bitfile: " + name);
  Entry& entry = it->second;
  if (offset + out.size() > entry.bytes) {
    return Status::OutOfRange("read past end of bitfile " + name);
  }
  if (entry.cached) {
    ++stats_.cache_hits;
    if (m_hits_) m_hits_->increment();
  } else {
    MSRA_RETURN_IF_ERROR(recall_locked(timeline, name, entry));
  }
  MSRA_RETURN_IF_ERROR(cache_.read(name, offset, out));
  cache_arm_.acquire(timeline, model_.cache_disk.read_time(out.size()));
  entry.last_use = timeline.now();
  return Status::Ok();
}

Status HsmStore::remove(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(name);
  if (it == entries_.end()) return Status::NotFound("no bitfile: " + name);
  if (it->second.cached) {
    cache_used_ -= it->second.bytes;
    if (m_cache_used_) m_cache_used_->set(static_cast<double>(cache_used_));
    (void)cache_.remove(name);
  }
  if (it->second.on_tape) (void)tape_->remove(name);
  entries_.erase(it);
  return Status::Ok();
}

std::vector<store::ObjectInfo> HsmStore::list(const std::string& prefix) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<store::ObjectInfo> out;
  for (auto it = entries_.lower_bound(prefix); it != entries_.end(); ++it) {
    if (it->first.compare(0, prefix.size(), prefix) != 0) break;
    out.push_back({it->first, it->second.bytes});
  }
  return out;
}

std::uint64_t HsmStore::used_bytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::uint64_t total = 0;
  for (const auto& [name, entry] : entries_) total += entry.bytes;
  return total;
}

simkit::SimTime HsmStore::open_cost(const std::string& name, bool write) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(name);
  // Creating a new bitfile stages it: cache-rate open. Reading an
  // un-staged one pays the tape open.
  const bool staged = it == entries_.end() ? write : it->second.cached;
  if (staged) return model_.open_cached;
  return tape_->open_cost(name, write);
}

simkit::SimTime HsmStore::close_cost(bool write) const {
  (void)write;
  return model_.close_cached;
}

void HsmStore::reset_clocks() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    cache_arm_.reset();
  }
  tape_->reset_clocks();
}

Status HsmStore::migrate_all(simkit::Timeline& timeline) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, entry] : entries_) {
    if (entry.cached && entry.dirty) {
      MSRA_RETURN_IF_ERROR(migrate_locked(timeline, name, entry));
    }
  }
  return Status::Ok();
}

std::uint64_t HsmStore::cache_used() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return cache_used_;
}

HsmStats HsmStore::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

bool HsmStore::is_cached(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(name);
  return it != entries_.end() && it->second.cached;
}

}  // namespace msra::tape
