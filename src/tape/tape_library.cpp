#include "tape/tape_library.h"

#include <algorithm>
#include <cassert>
#include <cstdlib>

#include "obs/metrics.h"

namespace msra::tape {

TapeLibrary::TapeLibrary(std::string name, TapeModel model, int num_drives,
                         store::ObjectStore* backing)
    : name_(std::move(name)),
      model_(model),
      robot_(name_ + "/robot"),
      data_(backing != nullptr ? backing : &owned_data_) {
  assert(num_drives >= 1);
  drives_.resize(static_cast<std::size_t>(num_drives));
  for (std::size_t i = 0; i < drives_.size(); ++i) {
    drives_[i].busy = std::make_unique<simkit::Resource>(
        name_ + "/drive" + std::to_string(i));
  }
  cartridges_.push_back({});
  if (backing != nullptr) {
    // Re-ingest a persistent archive: each existing bitfile gets a fresh
    // sequential segment.
    for (const auto& info : backing->list("")) {
      Segment seg = allocate_locked(info.size);  // advances the fill pointer
      seg.length = info.size;
      segments_.emplace(info.name, seg);
    }
  }
}

Status TapeLibrary::create(const std::string& name, bool overwrite) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = segments_.find(name);
  if (it != segments_.end()) {
    if (!overwrite) return Status::AlreadyExists("bitfile exists: " + name);
    stats_.wasted_bytes += it->second.length;
    if (m_wasted_) m_wasted_->add(it->second.length);
    it->second = Segment{};
    return data_->create(name, /*overwrite=*/true);
  }
  segments_.emplace(name, Segment{});
  return data_->create(name, /*overwrite=*/false);
}

bool TapeLibrary::exists(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return segments_.count(name) != 0;
}

StatusOr<std::uint64_t> TapeLibrary::size(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = segments_.find(name);
  if (it == segments_.end()) return Status::NotFound("no bitfile: " + name);
  return it->second.length;
}

TapeLibrary::Segment TapeLibrary::allocate_locked(std::uint64_t bytes) {
  if (cartridges_.back().fill + bytes > model_.cartridge_capacity) {
    cartridges_.push_back({});
  }
  Segment seg;
  seg.cartridge = static_cast<int>(cartridges_.size() - 1);
  seg.start = cartridges_.back().fill;
  seg.length = 0;  // caller extends
  cartridges_.back().fill += bytes;
  return seg;
}

void TapeLibrary::set_metrics(obs::MetricsRegistry* registry) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (registry == nullptr) {
    m_mounts_ = nullptr;
    m_dismounts_ = nullptr;
    m_seeks_ = nullptr;
    m_wasted_ = nullptr;
    m_mount_wait_ = nullptr;
    m_seek_time_ = nullptr;
    return;
  }
  m_mounts_ = registry->counter("tape.mounts");
  m_dismounts_ = registry->counter("tape.dismounts");
  m_seeks_ = registry->counter("tape.seeks");
  m_wasted_ = registry->counter("tape.wasted_bytes");
  m_mount_wait_ = registry->histogram("tape.mount_wait");
  m_seek_time_ = registry->histogram("tape.seek_time");
}

std::vector<std::pair<std::string, simkit::Resource*>>
TapeLibrary::contended_resources() {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::pair<std::string, simkit::Resource*>> out;
  out.reserve(drives_.size() + 1);
  out.emplace_back("tape-robot", &robot_);
  for (std::size_t i = 0; i < drives_.size(); ++i) {
    out.emplace_back("tape-drive" + std::to_string(i), drives_[i].busy.get());
  }
  return out;
}

int TapeLibrary::mount_locked(simkit::Timeline& timeline, int cartridge) {
  // Already mounted?
  for (std::size_t i = 0; i < drives_.size(); ++i) {
    if (drives_[i].mounted == cartridge) return static_cast<int>(i);
  }
  // Free drive, else LRU victim.
  int victim = -1;
  for (std::size_t i = 0; i < drives_.size(); ++i) {
    if (drives_[i].mounted < 0) {
      victim = static_cast<int>(i);
      break;
    }
  }
  if (victim < 0) {
    victim = 0;
    for (std::size_t i = 1; i < drives_.size(); ++i) {
      if (drives_[i].last_use < drives_[static_cast<std::size_t>(victim)].last_use) {
        victim = static_cast<int>(i);
      }
    }
  }
  Drive& drive = drives_[static_cast<std::size_t>(victim)];
  const simkit::SimTime mount_start = timeline.now();
  if (drive.mounted >= 0) {
    robot_.acquire(timeline, model_.dismount);
    ++stats_.dismounts;
    if (m_dismounts_) m_dismounts_->increment();
  }
  robot_.acquire(timeline, model_.mount);
  ++stats_.mounts;
  if (m_mounts_) m_mounts_->increment();
  // Includes robot contention and any eviction dismount — the full wait
  // the requester experienced, not just the nominal load time.
  if (m_mount_wait_) m_mount_wait_->record(timeline.now() - mount_start);
  drive.mounted = cartridge;
  drive.head = 0;
  return victim;
}

void TapeLibrary::seek_locked(simkit::Timeline& timeline, Drive& drive,
                              std::uint64_t target) {
  if (drive.head == target) return;
  const std::uint64_t distance =
      drive.head > target ? drive.head - target : target - drive.head;
  const simkit::SimTime duration =
      model_.min_seek + static_cast<double>(distance) * model_.seek_rate;
  drive.busy->acquire(timeline, duration);
  drive.head = target;
  ++stats_.seeks;
  if (m_seeks_) m_seeks_->increment();
  if (m_seek_time_) m_seek_time_->record(duration);
}

Status TapeLibrary::append(simkit::Timeline& timeline, const std::string& name,
                           std::uint64_t offset, std::span<const std::byte> data) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = segments_.find(name);
  if (it == segments_.end()) return Status::NotFound("no bitfile: " + name);
  Segment& seg = it->second;
  if (offset != seg.length) {
    return Status::InvalidArgument(
        "tape writes are sequential: bitfile " + name + " is at " +
        std::to_string(seg.length) + ", write requested at " +
        std::to_string(offset));
  }

  const bool is_tail =
      seg.cartridge >= 0 &&
      seg.start + seg.length ==
          cartridges_[static_cast<std::size_t>(seg.cartridge)].fill &&
      seg.start + seg.length + data.size() <= model_.cartridge_capacity;
  if (seg.cartridge < 0) {
    // First append: claim a fresh segment.
    Segment fresh = allocate_locked(data.size());
    seg.cartridge = fresh.cartridge;
    seg.start = fresh.start;
  } else if (is_tail) {
    cartridges_[static_cast<std::size_t>(seg.cartridge)].fill += data.size();
  } else {
    // Another bitfile was appended after this one (or the cartridge is
    // full): the whole file moves to a fresh segment; the old one is
    // abandoned, as on real append-only media.
    stats_.wasted_bytes += seg.length;
    if (m_wasted_) m_wasted_->add(seg.length);
    Segment fresh = allocate_locked(seg.length + data.size());
    cartridges_[static_cast<std::size_t>(fresh.cartridge)].fill += seg.length;
    seg.cartridge = fresh.cartridge;
    seg.start = fresh.start;
  }

  const int drive_index = mount_locked(timeline, seg.cartridge);
  Drive& drive = drives_[static_cast<std::size_t>(drive_index)];
  seek_locked(timeline, drive, seg.start + seg.length);
  const simkit::SimTime duration =
      model_.per_op + simkit::transfer_time(data.size(), model_.write_bw);
  drive.busy->acquire(timeline, duration);
  drive.head = seg.start + seg.length + data.size();
  drive.last_use = timeline.now();
  ++stats_.writes;

  MSRA_RETURN_IF_ERROR(data_->write(name, seg.length, data));
  seg.length += data.size();
  return Status::Ok();
}

Status TapeLibrary::read(simkit::Timeline& timeline, const std::string& name,
                         std::uint64_t offset, std::span<std::byte> out) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = segments_.find(name);
  if (it == segments_.end()) return Status::NotFound("no bitfile: " + name);
  const Segment& seg = it->second;
  if (offset + out.size() > seg.length) {
    return Status::OutOfRange("read past end of bitfile " + name);
  }
  if (!out.empty()) {
    const int drive_index = mount_locked(timeline, seg.cartridge);
    Drive& drive = drives_[static_cast<std::size_t>(drive_index)];
    seek_locked(timeline, drive, seg.start + offset);
    const simkit::SimTime duration =
        model_.per_op + simkit::transfer_time(out.size(), model_.read_bw);
    drive.busy->acquire(timeline, duration);
    drive.head = seg.start + offset + out.size();
    drive.last_use = timeline.now();
  }
  ++stats_.reads;
  return data_->read(name, offset, out);
}

Status TapeLibrary::remove(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = segments_.find(name);
  if (it == segments_.end()) return Status::NotFound("no bitfile: " + name);
  stats_.wasted_bytes += it->second.length;
  if (m_wasted_) m_wasted_->add(it->second.length);
  segments_.erase(it);
  return data_->remove(name);
}

std::vector<store::ObjectInfo> TapeLibrary::list(const std::string& prefix) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<store::ObjectInfo> out;
  for (auto it = segments_.lower_bound(prefix); it != segments_.end(); ++it) {
    if (it->first.compare(0, prefix.size(), prefix) != 0) break;
    out.push_back({it->first, it->second.length});
  }
  return out;
}

std::uint64_t TapeLibrary::used_bytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::uint64_t total = 0;
  for (const auto& [name, seg] : segments_) total += seg.length;
  return total;
}

int TapeLibrary::cartridge_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return static_cast<int>(cartridges_.size());
}

TapeStats TapeLibrary::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

void TapeLibrary::reset_clocks() {
  std::lock_guard<std::mutex> lock(mutex_);
  robot_.reset();
  for (auto& drive : drives_) {
    drive.busy->reset();
    drive.last_use = 0.0;
  }
}

void TapeLibrary::dismount_all(simkit::Timeline& timeline) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& drive : drives_) {
    if (drive.mounted >= 0) {
      robot_.acquire(timeline, model_.dismount);
      ++stats_.dismounts;
      if (m_dismounts_) m_dismounts_->increment();
      drive.mounted = -1;
      drive.head = 0;
    }
  }
}

}  // namespace msra::tape
