// BitfileBackend: the archive-side storage interface the SRB tape resource
// drives. Two implementations:
//   * TapeLibrary — bare tapes (the paper's configuration: "we only use its
//     tapes, i.e. only one level of a hierarchy, for simplicity");
//   * HsmStore — a staging disk cache in front of the tapes (the full HPSS
//     hierarchy the paper chose not to exercise).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/status.h"
#include "simkit/timeline.h"
#include "store/object_store.h"

namespace msra::tape {

class BitfileBackend {
 public:
  virtual ~BitfileBackend() = default;

  virtual Status create(const std::string& name, bool overwrite) = 0;
  virtual bool exists(const std::string& name) const = 0;
  virtual StatusOr<std::uint64_t> size(const std::string& name) const = 0;

  /// Writes at `offset`. Bare tapes require offset == current size
  /// (sequential); a staging cache accepts any offset within the object.
  virtual Status append(simkit::Timeline& timeline, const std::string& name,
                        std::uint64_t offset,
                        std::span<const std::byte> data) = 0;
  virtual Status read(simkit::Timeline& timeline, const std::string& name,
                      std::uint64_t offset, std::span<std::byte> out) = 0;
  virtual Status remove(const std::string& name) = 0;
  virtual std::vector<store::ObjectInfo> list(const std::string& prefix) const = 0;
  virtual std::uint64_t used_bytes() const = 0;

  /// Fixed bitfile open/close costs, which may depend on whether the object
  /// is staged (`name`) and on the direction.
  virtual simkit::SimTime open_cost(const std::string& name, bool write) const = 0;
  virtual simkit::SimTime close_cost(bool write) const = 0;

  /// Resets device clocks between experiment repetitions.
  virtual void reset_clocks() = 0;
};

}  // namespace msra::tape
