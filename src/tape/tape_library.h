// Tape library emulation — the HPSS stand-in.
//
// Reproduces the *physical nature* the paper leans on (section 1: "a tape
// system such as HPSS requires a minimum of 20 to 40 seconds to be ready to
// move the data and the data transfer rate is very slow compared to disks"):
//
//  * bitfiles occupy contiguous segments on cartridges;
//  * a cartridge must be mounted on a drive (robot + load time) before use;
//  * the head seeks linearly over the tape (seconds proportional to
//    distance);
//  * transfer is sequential and slow;
//  * rewriting a bitfile abandons its old segment (wasted tape), as on real
//    write-once-append media.
//
// Data is held in a MemObjectStore so reads return real bytes; all costs are
// charged to simkit timelines/resources.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "simkit/resource.h"
#include "simkit/timeline.h"
#include "store/mem_store.h"
#include "store/object_store.h"
#include "tape/backend.h"

namespace msra::obs {
class MetricsRegistry;
class Counter;
class Gauge;
class Histogram;
}  // namespace msra::obs

namespace msra::tape {

/// Hardware parameters of the tape system.
struct TapeModel {
  simkit::SimTime mount = 25.0;      ///< robot fetch + drive load + ready (s)
  simkit::SimTime dismount = 15.0;   ///< unload + stow (s)
  simkit::SimTime min_seek = 0.5;    ///< fixed reposition startup (s)
  double seek_rate = 2.0e-9;         ///< head travel seconds per byte of distance
  double read_bw = 60.0e3;           ///< sequential read bandwidth (B/s)
  double write_bw = 60.0e3;          ///< sequential write bandwidth (B/s)
  simkit::SimTime per_op = 0.05;     ///< fixed per-request overhead (s)
  simkit::SimTime open_read = 6.17;  ///< bitfile open, read (Table 1)
  simkit::SimTime open_write = 6.17; ///< bitfile open, write (Table 1)
  simkit::SimTime close_read = 0.46; ///< bitfile close, read (Table 1)
  simkit::SimTime close_write = 0.42;///< bitfile close, write (Table 1)
  std::uint64_t cartridge_capacity = 10ull << 30;  ///< bytes per cartridge
};

/// Cumulative operational statistics.
struct TapeStats {
  std::uint64_t mounts = 0;
  std::uint64_t dismounts = 0;
  std::uint64_t seeks = 0;
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t wasted_bytes = 0;  ///< abandoned (rewritten) segments
};

/// A tape library with a robot arm and a fixed number of drives.
/// Thread-safe; contention is modeled through simkit resources (one per
/// drive, one robot).
class TapeLibrary : public BitfileBackend {
 public:
  /// With a `backing` store (not owned), bitfile payloads live there instead
  /// of in memory, and existing objects are re-ingested on construction:
  /// each gets a fresh sequential segment (the positions of a re-catalogued
  /// archive, not the original ones).
  TapeLibrary(std::string name, TapeModel model, int num_drives = 1,
              store::ObjectStore* backing = nullptr);

  const TapeModel& model() const { return model_; }

  /// Creates an empty bitfile. With `overwrite`, an existing bitfile's
  /// segment is abandoned (counted as wasted tape) and the file restarts.
  Status create(const std::string& name, bool overwrite) override;

  bool exists(const std::string& name) const override;
  StatusOr<std::uint64_t> size(const std::string& name) const override;

  /// Appends to a bitfile. Tape writes are sequential: `offset` must equal
  /// the current size. Charges mount (if needed) + seek-to-end + transfer.
  Status append(simkit::Timeline& timeline, const std::string& name,
                std::uint64_t offset, std::span<const std::byte> data) override;

  /// Reads at any offset. Charges mount (if needed) + seek + transfer.
  Status read(simkit::Timeline& timeline, const std::string& name,
              std::uint64_t offset, std::span<std::byte> out) override;

  /// Deletes a bitfile; its tape segment is abandoned.
  Status remove(const std::string& name) override;

  std::vector<store::ObjectInfo> list(const std::string& prefix) const override;

  std::uint64_t used_bytes() const override;
  int cartridge_count() const;
  TapeStats stats() const;

  /// Mirrors mounts/dismounts/seeks/wasted-tape into `registry` (counters
  /// `tape.<event>`, histograms `tape.mount_wait` / `tape.seek_time` in
  /// simulated seconds). Null detaches. Instrument pointers are cached, so
  /// the hot path costs one null check per event.
  void set_metrics(obs::MetricsRegistry* registry);

  /// Unloads all drives (e.g. nightly maintenance in a failover scenario).
  void dismount_all(simkit::Timeline& timeline);

  /// The contended devices of the library: the robot arm followed by every
  /// drive. Pointers are stable for the library's lifetime (drives are
  /// created in the constructor and never resized), so callers may attach
  /// wait observers or poll stats without further locking.
  std::vector<std::pair<std::string, simkit::Resource*>> contended_resources();

  /// Resets the virtual clocks of drives and robot (between independent
  /// experiment repetitions). Physical state (mounted cartridges, head
  /// positions, stored data) is preserved.
  void reset_clocks() override;

  /// Bitfile open/close costs (Table 1 magnitudes, from the model).
  simkit::SimTime open_cost(const std::string&, bool write) const override {
    return write ? model_.open_write : model_.open_read;
  }
  simkit::SimTime close_cost(bool write) const override {
    return write ? model_.close_write : model_.close_read;
  }

 private:
  struct Segment {
    int cartridge = -1;
    std::uint64_t start = 0;   ///< byte position on the cartridge
    std::uint64_t length = 0;
  };
  struct Cartridge {
    std::uint64_t fill = 0;    ///< next free byte position
  };
  struct Drive {
    int mounted = -1;          ///< cartridge index or -1
    std::uint64_t head = 0;    ///< current head byte position
    std::unique_ptr<simkit::Resource> busy;
    simkit::SimTime last_use = 0.0;
  };

  /// Ensures `cartridge` is mounted on some drive; returns the drive index.
  /// Caller holds mutex_. Charges robot + mount costs to `timeline`.
  int mount_locked(simkit::Timeline& timeline, int cartridge);

  /// Allocates a fresh segment of `bytes` on the current fill cartridge
  /// (opens a new cartridge when full). Caller holds mutex_.
  Segment allocate_locked(std::uint64_t bytes);

  /// Moves the drive head to `target` charging seek time. Caller holds mutex_.
  void seek_locked(simkit::Timeline& timeline, Drive& drive, std::uint64_t target);

  std::string name_;
  TapeModel model_;
  mutable std::mutex mutex_;
  std::map<std::string, Segment> segments_;
  std::vector<Cartridge> cartridges_;
  std::vector<Drive> drives_;
  simkit::Resource robot_;
  store::MemObjectStore owned_data_;
  store::ObjectStore* data_;  ///< owned_data_ or an external backing store
  TapeStats stats_;

  // Cached instruments (null when no registry is attached).
  obs::Counter* m_mounts_ = nullptr;
  obs::Counter* m_dismounts_ = nullptr;
  obs::Counter* m_seeks_ = nullptr;
  obs::Counter* m_wasted_ = nullptr;
  obs::Histogram* m_mount_wait_ = nullptr;
  obs::Histogram* m_seek_time_ = nullptr;
};

}  // namespace msra::tape
