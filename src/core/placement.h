// Placement policy: turning a user's location hint into a concrete storage
// resource, with capacity checks and availability failover.
//
// The paper: AUTO "leaves it to the system to decide. Default is remote
// tapes"; and section 5's reliability example — when the tape system is down
// the run continues by aggregating the remaining resources' space.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "core/dataset.h"
#include "core/system.h"

namespace msra::core {

struct PlacementDecision {
  Location location = Location::kDisable;
  int server = 0;            ///< SRB site the dataset shards onto
  bool failed_over = false;  ///< true if the hint could not be honored
  std::string reason;        ///< human-readable explanation

  ReplicaAddress address() const { return ReplicaAddress{location, server}; }
};

/// Every concrete resource a location hint can map to, in preference order:
/// the preferred resource itself first, then fallbacks (larger-capacity
/// resources first, then faster ones). kAuto prefers remote tape (the
/// paper's DEFAULT); kDisable maps to nothing. Shared by the placement
/// policy, the placement advisor and the migration planner so every layer
/// agrees on candidate ordering.
std::vector<Location> ordered_candidates(Location preferred);

/// The SRB site a dataset named `key` shards onto for `location` in an
/// N-server cluster: a stable FNV-1a hash of the name, so every layer
/// (placement, sessions, msractl) re-derives the same home server without a
/// catalog lookup. Local disks are client-side: always server 0. A
/// single-server cluster trivially returns 0.
int shard_server(std::string_view key, Location location, int cluster_size);

/// Server-qualified expansion of ordered_candidates(): every (class, server)
/// address a placement or failover may try, best-first. Within each storage
/// class the preferred address's server comes first (data affinity), then
/// the remaining sites in index order; kLocalDisk only ever appears on
/// server 0. With cluster_size 1 this is exactly ordered_candidates() on
/// server 0.
std::vector<ReplicaAddress> ordered_candidate_addresses(
    ReplicaAddress preferred, int cluster_size);

class PlacementPolicy {
 public:
  /// Candidate order tried after `preferred` becomes unusable (down/full).
  /// Larger-capacity resources first, then faster ones.
  static std::vector<Location> failover_chain(Location preferred);

  /// Resolves a hint for a dataset that will store `footprint_bytes` in an
  /// `iterations`-long run. Fails with kUnavailable only if *no* resource
  /// can take the data.
  static StatusOr<PlacementDecision> resolve(StorageSystem& system,
                                             const DatasetDesc& desc,
                                             int iterations);
};

}  // namespace msra::core
