// Placement policy: turning a user's location hint into a concrete storage
// resource, with capacity checks and availability failover.
//
// The paper: AUTO "leaves it to the system to decide. Default is remote
// tapes"; and section 5's reliability example — when the tape system is down
// the run continues by aggregating the remaining resources' space.
#pragma once

#include <string>

#include "core/dataset.h"
#include "core/system.h"

namespace msra::core {

struct PlacementDecision {
  Location location = Location::kDisable;
  bool failed_over = false;  ///< true if the hint could not be honored
  std::string reason;        ///< human-readable explanation
};

/// Every concrete resource a location hint can map to, in preference order:
/// the preferred resource itself first, then fallbacks (larger-capacity
/// resources first, then faster ones). kAuto prefers remote tape (the
/// paper's DEFAULT); kDisable maps to nothing. Shared by the placement
/// policy, the placement advisor and the migration planner so every layer
/// agrees on candidate ordering.
std::vector<Location> ordered_candidates(Location preferred);

class PlacementPolicy {
 public:
  /// Candidate order tried after `preferred` becomes unusable (down/full).
  /// Larger-capacity resources first, then faster ones.
  static std::vector<Location> failover_chain(Location preferred);

  /// Resolves a hint for a dataset that will store `footprint_bytes` in an
  /// `iterations`-long run. Fails with kUnavailable only if *no* resource
  /// can take the data.
  static StatusOr<PlacementDecision> resolve(StorageSystem& system,
                                             const DatasetDesc& desc,
                                             int iterations);
};

}  // namespace msra::core
