// Balancer: predictor-driven routing of lowered IoPlans across the SRB
// cluster.
//
// Each read resolves to a set of live replica addresses (class + server).
// The balancer orders them best-first:
//
//   * cheapest-quote (default): every candidate is priced with the shared
//     predict::Predictor over the SAME IoPlan the executor will run. With
//     more than one server, the quote is the earliest FINISH time: the
//     candidate's booked backlog (how far into the virtual future its path
//     devices are already reserved) plus the service prediction inflated by
//     its observed utilization (predict::LoadAssumptions fed from the live
//     simkit resources). A site booked solid quotes late and prices itself
//     out of the rotation — the predictor is the placement brain. A
//     single-server cluster quotes dedicated, reproducing the pre-cluster
//     replica choice bit for bit.
//   * round-robin: rotate over the candidates, blind to load (baseline).
//   * static: fixed class order (local > remote disk > tape), then lowest
//     server index (the pre-predictor fallback, also used whenever quotes
//     are unavailable).
//
// The ordered chain doubles as the failover chain: a down server drops out
// of the candidate set entirely (its endpoints report unavailable), and
// execution-time Unavailable errors walk to the next entry.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "core/system.h"
#include "runtime/plan.h"

namespace msra::predict {
class Predictor;
}  // namespace msra::predict

namespace msra::core {

enum class BalancerPolicy {
  kCheapestQuote,  ///< predictor quote + live per-server load (default)
  kRoundRobin,     ///< rotate over candidates, load-blind
  kStatic,         ///< fixed class/server order, load-blind
};

std::string_view balancer_policy_name(BalancerPolicy policy);
StatusOr<BalancerPolicy> parse_balancer_policy(std::string_view name);

/// One row of the balancer's quote table (`msractl cluster`).
struct ServerQuote {
  ReplicaAddress address;
  bool available = true;
  double utilization = 0.0;  ///< live load fed into the quote
  double backlog = 0.0;      ///< booked virtual seconds ahead of new work
  double seconds = -1.0;     ///< backlog + predictor quote; < 0 when unpriced
};

/// Thread-safety: route()/order() may be called from concurrent sessions;
/// policy changes are control-plane (atomic, but flip them between runs).
class Balancer {
 public:
  /// `system` must outlive the balancer (the system owns it).
  explicit Balancer(StorageSystem* system) : system_(system) {}

  BalancerPolicy policy() const {
    return policy_.load(std::memory_order_relaxed);
  }
  void set_policy(BalancerPolicy policy) {
    policy_.store(policy, std::memory_order_relaxed);
  }

  /// Orders `candidates` best-first for serving `plan` (the read/failover
  /// chain). `predictor` may be null (quotes then fall back to the static
  /// order). Candidates are assumed live; empty in, empty out.
  std::vector<ReplicaAddress> order(const runtime::IoPlan& plan,
                                    std::vector<ReplicaAddress> candidates,
                                    const predict::Predictor* predictor) const;

  /// Observed background utilization of the busiest device on the path to
  /// `address` (disk arm / server CPU / WAN pipe), in [0, 1]. What the
  /// cheapest-quote policy feeds into LoadAssumptions::utilization when the
  /// cluster has more than one server.
  double observed_utilization(ReplicaAddress address) const;

  /// Booked backlog on the path to `address`: the latest next_free() over
  /// the same device set, i.e. the virtual time until the most congested
  /// path device drains its existing reservations. Added to the service
  /// prediction so cheapest-quote ranks by earliest finish, not just
  /// fastest hardware. Only consulted when the cluster has more than one
  /// server.
  double backlog_seconds(ReplicaAddress address) const;

  /// Quote table over every (class, server) pair for a representative
  /// whole-object read of `bytes`: availability, live utilization, and the
  /// load-inflated predictor quote (< 0 when unpriced). Rows come in
  /// static order.
  std::vector<ServerQuote> quote_table(
      std::uint64_t bytes, const predict::Predictor* predictor) const;

 private:
  /// Fixed class order (kConcreteLocations), then server index.
  static void static_order(std::vector<ReplicaAddress>& candidates);

  StorageSystem* system_;
  std::atomic<BalancerPolicy> policy_{BalancerPolicy::kCheapestQuote};
  mutable std::atomic<std::uint64_t> round_robin_{0};
};

}  // namespace msra::core
