#include "core/catalog.h"

#include <algorithm>
#include <cassert>

namespace msra::core {

using meta::ColumnType;
using meta::Row;
using meta::Value;

namespace {

/// Joins a replica set into the stored text cell
/// ("LOCALDISK,REMOTETAPE@1"). Server 0 has no "@" suffix, so a
/// single-server catalog is byte-identical to the pre-cluster format.
std::string join_replicas(const std::vector<ReplicaAddress>& replicas) {
  std::string out;
  for (ReplicaAddress address : replicas) {
    if (!out.empty()) out += ',';
    out += address_name(address);
  }
  return out;
}

/// Parses the stored replica cell. Unknown names are skipped so a future
/// format that adds locations still loads the ones we know about. Bare
/// location names (every pre-cluster catalog) parse as server 0.
std::vector<ReplicaAddress> parse_replicas(const std::string& text) {
  std::vector<ReplicaAddress> out;
  std::size_t begin = 0;
  while (begin <= text.size()) {
    std::size_t end = text.find(',', begin);
    if (end == std::string::npos) end = text.size();
    if (end > begin) {
      auto address = parse_address(text.substr(begin, end - begin));
      if (address.ok()) out.push_back(*address);
    }
    if (end == text.size()) break;
    begin = end + 1;
  }
  return out;
}

InstanceRecord instance_from_row(const Row& row) {
  InstanceRecord record;
  record.dataset_key = std::get<std::string>(row[0]);
  record.timestep = static_cast<int>(std::get<std::int64_t>(row[1]));
  record.replicas = parse_replicas(std::get<std::string>(row[2]));
  record.path = std::get<std::string>(row[3]);
  record.bytes = static_cast<std::uint64_t>(std::get<std::int64_t>(row[4]));
  return record;
}

Row instance_to_row(const InstanceRecord& record) {
  return Row{record.dataset_key, std::int64_t{record.timestep},
             join_replicas(record.replicas), record.path,
             static_cast<std::int64_t>(record.bytes)};
}

meta::Schema instances_schema_v2() {
  return meta::Schema{{"dataset_key", ColumnType::kText},
                      {"timestep", ColumnType::kInt},
                      {"replicas", ColumnType::kText},
                      {"path", ColumnType::kText},
                      {"bytes", ColumnType::kInt}};
}

/// Rewrites a format-1 instances table (one row per replica, single
/// `location` column) into the format-2 shape (one row per timestep with a
/// replica-set column). Replica order follows first-recorded order, so the
/// original dump location stays primary.
void upgrade_instances_v1(meta::Database* db, meta::Table* old_table) {
  std::vector<InstanceRecord> merged;
  old_table->for_each([&](std::int64_t, const Row& row) {
    const std::string& key = std::get<std::string>(row[0]);
    const int timestep = static_cast<int>(std::get<std::int64_t>(row[1]));
    auto loc = parse_location(std::get<std::string>(row[2]));
    if (!loc.ok()) return;
    auto it = std::find_if(merged.begin(), merged.end(), [&](const InstanceRecord& r) {
      return r.dataset_key == key && r.timestep == timestep;
    });
    if (it == merged.end()) {
      InstanceRecord record;
      record.dataset_key = key;
      record.timestep = timestep;
      record.replicas = {*loc};
      record.path = std::get<std::string>(row[3]);
      record.bytes = static_cast<std::uint64_t>(std::get<std::int64_t>(row[4]));
      merged.push_back(std::move(record));
    } else if (!it->on(*loc)) {
      it->replicas.push_back(*loc);
    }
  });
  (void)db->drop_table("instances");
  auto fresh = db->open_table("instances", instances_schema_v2());
  assert(fresh.ok());
  for (const InstanceRecord& record : merged) {
    (void)(*fresh)->insert(instance_to_row(record));
  }
}

}  // namespace

bool InstanceRecord::on(ReplicaAddress address) const {
  return std::find(replicas.begin(), replicas.end(), address) != replicas.end();
}

bool InstanceRecord::on_location(Location location) const {
  return std::any_of(
      replicas.begin(), replicas.end(),
      [location](ReplicaAddress a) { return a.location == location; });
}

std::pair<std::string, std::string> MetaCatalog::split_key(const std::string& key) {
  std::size_t slash = key.find('/');
  if (slash == std::string::npos) return {key, ""};
  return {key.substr(0, slash), key.substr(slash + 1)};
}

MetaCatalog::MetaCatalog(meta::Database* db) : db_(db) {
  auto users = db->open_table(
      "users", meta::Schema{{"name", ColumnType::kText},
                            {"affiliation", ColumnType::kText}});
  auto applications = db->open_table(
      "applications", meta::Schema{{"name", ColumnType::kText},
                                   {"user", ColumnType::kText},
                                   {"nprocs", ColumnType::kInt},
                                   {"iterations", ColumnType::kInt}});
  auto datasets = db->open_table(
      "datasets",
      meta::Schema{{"key", ColumnType::kText},        // app/name
                   {"app", ColumnType::kText},
                   {"name", ColumnType::kText},
                   {"amode", ColumnType::kText},
                   {"etype", ColumnType::kText},
                   {"pattern", ColumnType::kText},
                   {"dim0", ColumnType::kInt},
                   {"dim1", ColumnType::kInt},
                   {"dim2", ColumnType::kInt},
                   {"frequency", ColumnType::kInt},
                   {"hint", ColumnType::kText},       // user's EXPECTEDLOC
                   {"resolved", ColumnType::kText},   // placement decision
                   {"method", ColumnType::kText}});
  // Format upgrade: a catalog written before replica sets stores one row
  // per replica with a `location` column.
  if (meta::Table* existing = db->table("instances");
      existing != nullptr && existing->schema().index_of("location") >= 0) {
    upgrade_instances_v1(db, existing);
  }
  auto instances = db->open_table("instances", instances_schema_v2());
  auto catalog_meta = db->open_table(
      "catalog_meta", meta::Schema{{"key", ColumnType::kText},
                                   {"value", ColumnType::kText}});
  assert(users.ok() && applications.ok() && datasets.ok() && instances.ok() &&
         catalog_meta.ok());
  users_ = *users;
  applications_ = *applications;
  datasets_ = *datasets;
  instances_ = *instances;
  if (users_->size() == 0) {
    (void)users_->create_unique_index("name");
    (void)applications_->create_unique_index("name");
    (void)datasets_->create_unique_index("key");
  }
  meta::Table* meta_table = *catalog_meta;
  if (meta_table->size() == 0) (void)meta_table->create_unique_index("key");
  auto fmt = meta_table->lookup("key", Value{std::string("instances_format")});
  const std::string fmt_value = std::to_string(kInstanceFormat);
  if (fmt.ok()) {
    (void)meta_table->update_cell(*fmt, "value", Value{fmt_value});
  } else {
    (void)meta_table->insert(Row{std::string("instances_format"), fmt_value});
  }
}

Status MetaCatalog::register_user(const std::string& user,
                                  const std::string& affiliation) {
  // Each Table call is atomic, but lookup-then-insert is not: concurrent
  // sessions registering the same user/app/dataset would both insert.
  std::lock_guard<std::mutex> txn(db_->txn_mutex());
  auto existing = users_->lookup("name", Value{user});
  if (existing.ok()) return Status::Ok();  // idempotent
  return users_->insert(Row{user, affiliation}).status();
}

Status MetaCatalog::register_application(const std::string& app,
                                         const std::string& user, int nprocs,
                                         int iterations) {
  std::lock_guard<std::mutex> txn(db_->txn_mutex());
  auto existing = applications_->lookup("name", Value{app});
  if (existing.ok()) {
    return applications_->update(
        *existing, Row{app, user, std::int64_t{nprocs}, std::int64_t{iterations}});
  }
  return applications_
      ->insert(Row{app, user, std::int64_t{nprocs}, std::int64_t{iterations}})
      .status();
}

StatusOr<int> MetaCatalog::application_iterations(const std::string& app) const {
  MSRA_ASSIGN_OR_RETURN(std::int64_t rowid, applications_->lookup("name", Value{app}));
  MSRA_ASSIGN_OR_RETURN(Row row, applications_->get(rowid));
  return static_cast<int>(std::get<std::int64_t>(row[3]));
}

namespace {

Row dataset_row(const std::string& app, const DatasetDesc& desc, Location resolved) {
  return Row{MetaCatalog::dataset_key(app, desc.name),
             app,
             desc.name,
             std::string(access_mode_name(desc.amode)),
             std::string(element_type_name(desc.etype)),
             desc.pattern,
             static_cast<std::int64_t>(desc.dims[0]),
             static_cast<std::int64_t>(desc.dims[1]),
             static_cast<std::int64_t>(desc.dims[2]),
             std::int64_t{desc.frequency},
             std::string(location_name(desc.location)),
             std::string(location_name(resolved)),
             std::string(runtime::io_method_name(desc.method))};
}

StatusOr<DatasetRecord> record_from_row(const Row& row) {
  DatasetRecord record;
  record.app = std::get<std::string>(row[1]);
  record.desc.name = std::get<std::string>(row[2]);
  const std::string& amode = std::get<std::string>(row[3]);
  record.desc.amode = amode == "over_write" ? AccessMode::kOverWrite
                      : amode == "read"     ? AccessMode::kRead
                                            : AccessMode::kCreate;
  MSRA_ASSIGN_OR_RETURN(record.desc.etype,
                        parse_element_type(std::get<std::string>(row[4])));
  record.desc.pattern = std::get<std::string>(row[5]);
  record.desc.dims = {static_cast<std::uint64_t>(std::get<std::int64_t>(row[6])),
                      static_cast<std::uint64_t>(std::get<std::int64_t>(row[7])),
                      static_cast<std::uint64_t>(std::get<std::int64_t>(row[8]))};
  record.desc.frequency = static_cast<int>(std::get<std::int64_t>(row[9]));
  MSRA_ASSIGN_OR_RETURN(record.desc.location,
                        parse_location(std::get<std::string>(row[10])));
  MSRA_ASSIGN_OR_RETURN(record.resolved,
                        parse_location(std::get<std::string>(row[11])));
  record.desc.method = std::get<std::string>(row[12]) == "naive"
                           ? runtime::IoMethod::kNaive
                           : runtime::IoMethod::kCollective;
  return record;
}

}  // namespace

Status MetaCatalog::register_dataset(const std::string& app,
                                     const DatasetDesc& desc, Location resolved) {
  std::lock_guard<std::mutex> txn(db_->txn_mutex());
  const std::string key = dataset_key(app, desc.name);
  auto existing = datasets_->lookup("key", Value{key});
  if (existing.ok()) {
    return datasets_->update(*existing, dataset_row(app, desc, resolved));
  }
  return datasets_->insert(dataset_row(app, desc, resolved)).status();
}

StatusOr<DatasetRecord> MetaCatalog::dataset(const std::string& app,
                                             const std::string& name) const {
  MSRA_ASSIGN_OR_RETURN(std::int64_t rowid,
                        datasets_->lookup("key", Value{dataset_key(app, name)}));
  MSRA_ASSIGN_OR_RETURN(Row row, datasets_->get(rowid));
  return record_from_row(row);
}

StatusOr<DatasetRecord> MetaCatalog::find_dataset(const std::string& name) const {
  auto ids = datasets_->find_eq("name", Value{name});
  if (ids.empty()) return Status::NotFound("no dataset named " + name);
  MSRA_ASSIGN_OR_RETURN(Row row, datasets_->get(ids.front()));
  return record_from_row(row);
}

std::vector<DatasetRecord> MetaCatalog::all_datasets() const {
  std::vector<DatasetRecord> out;
  for (const Row& row : datasets_->select([](const Row&) { return true; })) {
    auto record = record_from_row(row);
    if (record.ok()) out.push_back(std::move(*record));
  }
  return out;
}

std::vector<DatasetRecord> MetaCatalog::datasets(const std::string& app) const {
  std::vector<DatasetRecord> out;
  for (const Row& row : datasets_->select([&app](const Row& r) {
         return std::get<std::string>(r[1]) == app;
       })) {
    auto record = record_from_row(row);
    if (record.ok()) out.push_back(std::move(*record));
  }
  return out;
}

Status MetaCatalog::update_dataset_location(const std::string& app,
                                            const std::string& name,
                                            Location resolved) {
  MSRA_ASSIGN_OR_RETURN(std::int64_t rowid,
                        datasets_->lookup("key", Value{dataset_key(app, name)}));
  return datasets_->update_cell(rowid, "resolved",
                                Value{std::string(location_name(resolved))});
}

std::vector<std::int64_t> MetaCatalog::instance_rowids(const std::string& key,
                                                       int timestep) const {
  return instances_->find([&](const Row& r) {
    return std::get<std::string>(r[0]) == key &&
           std::get<std::int64_t>(r[1]) == timestep;
  });
}

Status MetaCatalog::record_instance(const InstanceRecord& record) {
  std::lock_guard<std::mutex> txn(db_->txn_mutex());
  auto ids = instance_rowids(record.dataset_key, record.timestep);
  if (ids.empty()) return instances_->insert(instance_to_row(record)).status();
  // Re-dump: path/bytes refresh, replicas union (first-recorded order kept).
  MSRA_ASSIGN_OR_RETURN(Row row, instances_->get(ids.front()));
  InstanceRecord merged = instance_from_row(row);
  merged.path = record.path;
  merged.bytes = record.bytes;
  for (ReplicaAddress address : record.replicas) {
    if (!merged.on(address)) merged.replicas.push_back(address);
  }
  return instances_->update(ids.front(), instance_to_row(merged));
}

StatusOr<InstanceRecord> MetaCatalog::instance(const std::string& app,
                                               const std::string& name,
                                               int timestep) const {
  const std::string key = dataset_key(app, name);
  auto ids = instance_rowids(key, timestep);
  if (ids.empty()) {
    return Status::NotFound("no instance of " + key + " at timestep " +
                            std::to_string(timestep));
  }
  MSRA_ASSIGN_OR_RETURN(Row row, instances_->get(ids.front()));
  return instance_from_row(row);
}

Status MetaCatalog::add_replica(const std::string& app, const std::string& name,
                                int timestep, ReplicaAddress address) {
  std::lock_guard<std::mutex> txn(db_->txn_mutex());
  const std::string key = dataset_key(app, name);
  auto ids = instance_rowids(key, timestep);
  if (ids.empty()) {
    return Status::NotFound("no instance of " + key + " at timestep " +
                            std::to_string(timestep));
  }
  MSRA_ASSIGN_OR_RETURN(Row row, instances_->get(ids.front()));
  InstanceRecord record = instance_from_row(row);
  if (record.on(address)) return Status::Ok();  // idempotent
  record.replicas.push_back(address);
  return instances_->update(ids.front(), instance_to_row(record));
}

Status MetaCatalog::remove_replica(const std::string& app, const std::string& name,
                                   int timestep, ReplicaAddress address) {
  std::lock_guard<std::mutex> txn(db_->txn_mutex());
  const std::string key = dataset_key(app, name);
  auto ids = instance_rowids(key, timestep);
  if (ids.empty()) {
    return Status::NotFound("no instance of " + key + " at timestep " +
                            std::to_string(timestep));
  }
  MSRA_ASSIGN_OR_RETURN(Row row, instances_->get(ids.front()));
  InstanceRecord record = instance_from_row(row);
  auto it = std::find(record.replicas.begin(), record.replicas.end(), address);
  if (it == record.replicas.end()) {
    return Status::NotFound("no replica of " + key + " at " +
                            address_name(address));
  }
  record.replicas.erase(it);
  if (record.replicas.empty()) return instances_->erase(ids.front());
  return instances_->update(ids.front(), instance_to_row(record));
}

std::vector<InstanceRecord> MetaCatalog::instances(const std::string& app,
                                                   const std::string& name) const {
  const std::string key = dataset_key(app, name);
  std::vector<InstanceRecord> out;
  for (const Row& row : instances_->select([&](const Row& r) {
         return std::get<std::string>(r[0]) == key;
       })) {
    out.push_back(instance_from_row(row));
  }
  return out;
}

std::vector<InstanceRecord> MetaCatalog::all_instances() const {
  std::vector<InstanceRecord> out;
  for (const Row& row : instances_->select([](const Row&) { return true; })) {
    out.push_back(instance_from_row(row));
  }
  return out;
}

}  // namespace msra::core
