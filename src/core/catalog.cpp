#include "core/catalog.h"

#include <cassert>

namespace msra::core {

using meta::ColumnType;
using meta::Row;
using meta::Value;

MetaCatalog::MetaCatalog(meta::Database* db) {
  auto users = db->open_table(
      "users", meta::Schema{{"name", ColumnType::kText},
                            {"affiliation", ColumnType::kText}});
  auto applications = db->open_table(
      "applications", meta::Schema{{"name", ColumnType::kText},
                                   {"user", ColumnType::kText},
                                   {"nprocs", ColumnType::kInt},
                                   {"iterations", ColumnType::kInt}});
  auto datasets = db->open_table(
      "datasets",
      meta::Schema{{"key", ColumnType::kText},        // app/name
                   {"app", ColumnType::kText},
                   {"name", ColumnType::kText},
                   {"amode", ColumnType::kText},
                   {"etype", ColumnType::kText},
                   {"pattern", ColumnType::kText},
                   {"dim0", ColumnType::kInt},
                   {"dim1", ColumnType::kInt},
                   {"dim2", ColumnType::kInt},
                   {"frequency", ColumnType::kInt},
                   {"hint", ColumnType::kText},       // user's EXPECTEDLOC
                   {"resolved", ColumnType::kText},   // placement decision
                   {"method", ColumnType::kText}});
  auto instances = db->open_table(
      "instances", meta::Schema{{"dataset_key", ColumnType::kText},
                                {"timestep", ColumnType::kInt},
                                {"location", ColumnType::kText},
                                {"path", ColumnType::kText},
                                {"bytes", ColumnType::kInt}});
  assert(users.ok() && applications.ok() && datasets.ok() && instances.ok());
  users_ = *users;
  applications_ = *applications;
  datasets_ = *datasets;
  instances_ = *instances;
  if (users_->size() == 0) {
    (void)users_->create_unique_index("name");
    (void)applications_->create_unique_index("name");
    (void)datasets_->create_unique_index("key");
  }
}

Status MetaCatalog::register_user(const std::string& user,
                                  const std::string& affiliation) {
  auto existing = users_->lookup("name", Value{user});
  if (existing.ok()) return Status::Ok();  // idempotent
  return users_->insert(Row{user, affiliation}).status();
}

Status MetaCatalog::register_application(const std::string& app,
                                         const std::string& user, int nprocs,
                                         int iterations) {
  auto existing = applications_->lookup("name", Value{app});
  if (existing.ok()) {
    return applications_->update(
        *existing, Row{app, user, std::int64_t{nprocs}, std::int64_t{iterations}});
  }
  return applications_
      ->insert(Row{app, user, std::int64_t{nprocs}, std::int64_t{iterations}})
      .status();
}

StatusOr<int> MetaCatalog::application_iterations(const std::string& app) const {
  MSRA_ASSIGN_OR_RETURN(std::int64_t rowid, applications_->lookup("name", Value{app}));
  MSRA_ASSIGN_OR_RETURN(Row row, applications_->get(rowid));
  return static_cast<int>(std::get<std::int64_t>(row[3]));
}

namespace {

Row dataset_row(const std::string& app, const DatasetDesc& desc, Location resolved) {
  return Row{MetaCatalog::dataset_key(app, desc.name),
             app,
             desc.name,
             std::string(access_mode_name(desc.amode)),
             std::string(element_type_name(desc.etype)),
             desc.pattern,
             static_cast<std::int64_t>(desc.dims[0]),
             static_cast<std::int64_t>(desc.dims[1]),
             static_cast<std::int64_t>(desc.dims[2]),
             std::int64_t{desc.frequency},
             std::string(location_name(desc.location)),
             std::string(location_name(resolved)),
             std::string(runtime::io_method_name(desc.method))};
}

StatusOr<DatasetRecord> record_from_row(const Row& row) {
  DatasetRecord record;
  record.app = std::get<std::string>(row[1]);
  record.desc.name = std::get<std::string>(row[2]);
  const std::string& amode = std::get<std::string>(row[3]);
  record.desc.amode = amode == "over_write" ? AccessMode::kOverWrite
                      : amode == "read"     ? AccessMode::kRead
                                            : AccessMode::kCreate;
  MSRA_ASSIGN_OR_RETURN(record.desc.etype,
                        parse_element_type(std::get<std::string>(row[4])));
  record.desc.pattern = std::get<std::string>(row[5]);
  record.desc.dims = {static_cast<std::uint64_t>(std::get<std::int64_t>(row[6])),
                      static_cast<std::uint64_t>(std::get<std::int64_t>(row[7])),
                      static_cast<std::uint64_t>(std::get<std::int64_t>(row[8]))};
  record.desc.frequency = static_cast<int>(std::get<std::int64_t>(row[9]));
  MSRA_ASSIGN_OR_RETURN(record.desc.location,
                        parse_location(std::get<std::string>(row[10])));
  MSRA_ASSIGN_OR_RETURN(record.resolved,
                        parse_location(std::get<std::string>(row[11])));
  record.desc.method = std::get<std::string>(row[12]) == "naive"
                           ? runtime::IoMethod::kNaive
                           : runtime::IoMethod::kCollective;
  return record;
}

}  // namespace

Status MetaCatalog::register_dataset(const std::string& app,
                                     const DatasetDesc& desc, Location resolved) {
  const std::string key = dataset_key(app, desc.name);
  auto existing = datasets_->lookup("key", Value{key});
  if (existing.ok()) {
    return datasets_->update(*existing, dataset_row(app, desc, resolved));
  }
  return datasets_->insert(dataset_row(app, desc, resolved)).status();
}

StatusOr<DatasetRecord> MetaCatalog::dataset(const std::string& app,
                                             const std::string& name) const {
  MSRA_ASSIGN_OR_RETURN(std::int64_t rowid,
                        datasets_->lookup("key", Value{dataset_key(app, name)}));
  MSRA_ASSIGN_OR_RETURN(Row row, datasets_->get(rowid));
  return record_from_row(row);
}

StatusOr<DatasetRecord> MetaCatalog::find_dataset(const std::string& name) const {
  auto ids = datasets_->find_eq("name", Value{name});
  if (ids.empty()) return Status::NotFound("no dataset named " + name);
  MSRA_ASSIGN_OR_RETURN(Row row, datasets_->get(ids.front()));
  return record_from_row(row);
}

std::vector<DatasetRecord> MetaCatalog::all_datasets() const {
  std::vector<DatasetRecord> out;
  for (const Row& row : datasets_->select([](const Row&) { return true; })) {
    auto record = record_from_row(row);
    if (record.ok()) out.push_back(std::move(*record));
  }
  return out;
}

std::vector<DatasetRecord> MetaCatalog::datasets(const std::string& app) const {
  std::vector<DatasetRecord> out;
  for (const Row& row : datasets_->select([&app](const Row& r) {
         return std::get<std::string>(r[1]) == app;
       })) {
    auto record = record_from_row(row);
    if (record.ok()) out.push_back(std::move(*record));
  }
  return out;
}

Status MetaCatalog::update_dataset_location(const std::string& app,
                                            const std::string& name,
                                            Location resolved) {
  MSRA_ASSIGN_OR_RETURN(std::int64_t rowid,
                        datasets_->lookup("key", Value{dataset_key(app, name)}));
  return datasets_->update_cell(rowid, "resolved",
                                Value{std::string(location_name(resolved))});
}

Status MetaCatalog::record_instance(const InstanceRecord& record) {
  // Idempotent per (dataset, timestep, location): re-dumps replace the row,
  // other locations accumulate as replicas.
  const std::string loc(location_name(record.location));
  auto ids = instances_->find([&](const Row& r) {
    return std::get<std::string>(r[0]) == record.dataset_key &&
           std::get<std::int64_t>(r[1]) == record.timestep &&
           std::get<std::string>(r[2]) == loc;
  });
  Row row{record.dataset_key, std::int64_t{record.timestep}, loc, record.path,
          static_cast<std::int64_t>(record.bytes)};
  if (!ids.empty()) return instances_->update(ids.front(), std::move(row));
  return instances_->insert(std::move(row)).status();
}

StatusOr<InstanceRecord> MetaCatalog::instance(const std::string& app,
                                               const std::string& name,
                                               int timestep) const {
  const std::string key = dataset_key(app, name);
  auto ids = instances_->find([&](const Row& r) {
    return std::get<std::string>(r[0]) == key &&
           std::get<std::int64_t>(r[1]) == timestep;
  });
  if (ids.empty()) {
    return Status::NotFound("no instance of " + key + " at timestep " +
                            std::to_string(timestep));
  }
  MSRA_ASSIGN_OR_RETURN(Row row, instances_->get(ids.front()));
  InstanceRecord record;
  record.dataset_key = key;
  record.timestep = timestep;
  MSRA_ASSIGN_OR_RETURN(record.location,
                        parse_location(std::get<std::string>(row[2])));
  record.path = std::get<std::string>(row[3]);
  record.bytes = static_cast<std::uint64_t>(std::get<std::int64_t>(row[4]));
  return record;
}

std::vector<InstanceRecord> MetaCatalog::replicas(const std::string& app,
                                                  const std::string& name,
                                                  int timestep) const {
  const std::string key = dataset_key(app, name);
  std::vector<InstanceRecord> out;
  for (const Row& row : instances_->select([&](const Row& r) {
         return std::get<std::string>(r[0]) == key &&
                std::get<std::int64_t>(r[1]) == timestep;
       })) {
    InstanceRecord record;
    record.dataset_key = key;
    record.timestep = timestep;
    auto loc = parse_location(std::get<std::string>(row[2]));
    if (!loc.ok()) continue;
    record.location = *loc;
    record.path = std::get<std::string>(row[3]);
    record.bytes = static_cast<std::uint64_t>(std::get<std::int64_t>(row[4]));
    out.push_back(std::move(record));
  }
  return out;
}

Status MetaCatalog::remove_instance(const std::string& app,
                                    const std::string& name, int timestep,
                                    Location location) {
  const std::string key = dataset_key(app, name);
  const std::string loc(location_name(location));
  auto ids = instances_->find([&](const Row& r) {
    return std::get<std::string>(r[0]) == key &&
           std::get<std::int64_t>(r[1]) == timestep &&
           std::get<std::string>(r[2]) == loc;
  });
  if (ids.empty()) {
    return Status::NotFound("no replica of " + key + " at " + loc);
  }
  return instances_->erase(ids.front());
}

std::vector<InstanceRecord> MetaCatalog::instances(const std::string& app,
                                                   const std::string& name) const {
  const std::string key = dataset_key(app, name);
  std::vector<InstanceRecord> out;
  for (const Row& row : instances_->select([&](const Row& r) {
         return std::get<std::string>(r[0]) == key;
       })) {
    InstanceRecord record;
    record.dataset_key = key;
    record.timestep = static_cast<int>(std::get<std::int64_t>(row[1]));
    auto loc = parse_location(std::get<std::string>(row[2]));
    if (!loc.ok()) continue;
    record.location = *loc;
    record.path = std::get<std::string>(row[3]);
    record.bytes = static_cast<std::uint64_t>(std::get<std::int64_t>(row[4]));
    out.push_back(std::move(record));
  }
  return out;
}

}  // namespace msra::core
