#include "core/client.h"

namespace msra::core {

namespace {

SessionOptions with_user(SessionOptions options, const std::string& name) {
  // A default-constructed SessionOptions carries the placeholder "user";
  // the client's own name is the more useful identity in that case.
  if (options.user == SessionOptions{}.user) options.user = name;
  return options;
}

}  // namespace

Client::Client(std::string name, StorageSystem& system, SessionOptions options)
    : name_(std::move(name)),
      session_(system, with_user(std::move(options), name_)),
      owned_fleet_(std::make_unique<Fleet>(system)),
      fleet_(owned_fleet_.get()) {
  fleet_->attach(this);
}

Client::Client(std::string name, StorageSystem& system, SessionOptions options,
               Fleet* fleet)
    : name_(std::move(name)),
      session_(system, with_user(std::move(options), name_)),
      fleet_(fleet) {}

Client::~Client() = default;

StatusOr<DatasetHandle*> Client::open(const DatasetDesc& desc) {
  const std::string dataset = desc.name;
  Completion* done = submit(Workload().open(desc));
  fleet_->run_client(*this);
  MSRA_RETURN_IF_ERROR(done->status());
  DatasetHandle* handle = session_.find_handle(dataset);
  if (handle == nullptr) return Status::Internal("open lost its handle");
  return handle;
}

StatusOr<DatasetHandle*> Client::open_existing(const std::string& dataset,
                                               const OpenOptions& options) {
  Completion* done = submit(Workload().open_existing(dataset, options));
  fleet_->run_client(*this);
  MSRA_RETURN_IF_ERROR(done->status());
  DatasetHandle* handle = session_.find_handle(dataset);
  if (handle == nullptr) return Status::Internal("open lost its handle");
  return handle;
}

Status Client::finalize() {
  Completion* done = submit(Workload().finalize());
  fleet_->run_client(*this);
  return done->status();
}

}  // namespace msra::core
