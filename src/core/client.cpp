#include "core/client.h"

namespace msra::core {

namespace {

SessionOptions with_user(SessionOptions options, const std::string& name) {
  // A default-constructed SessionOptions carries the placeholder "user";
  // the client's own name is the more useful identity in that case.
  if (options.user == SessionOptions{}.user) options.user = name;
  return options;
}

}  // namespace

Client::Client(std::string name, StorageSystem& system, SessionOptions options)
    : name_(std::move(name)),
      session_(system, with_user(std::move(options), name_)) {}

}  // namespace msra::core
