// MetaCatalog: the paper's metadata schema on top of the embedded database.
//
// "The meta-data describes information about applications and users running
// in the system, and information about each dataset and its characteristics
// ... the storage resource type on which each dataset is stored or to be
// stored, file path and name of each dataset, how each dataset is
// partitioned among processors, how it is stored on storage systems."
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/dataset.h"
#include "meta/database.h"

namespace msra::core {

/// A dumped timestep instance of a dataset.
struct InstanceRecord {
  std::string dataset_key;  ///< "app/dataset"
  int timestep = 0;
  Location location = Location::kRemoteTape;
  std::string path;
  std::uint64_t bytes = 0;
};

/// A registered dataset.
struct DatasetRecord {
  std::string app;
  DatasetDesc desc;
  Location resolved;  ///< where placement actually put it
};

class MetaCatalog {
 public:
  /// Creates/opens the schema inside `db` (not owned).
  explicit MetaCatalog(meta::Database* db);

  // -- applications & users ------------------------------------------------
  Status register_user(const std::string& user, const std::string& affiliation);
  Status register_application(const std::string& app, const std::string& user,
                              int nprocs, int iterations);
  StatusOr<int> application_iterations(const std::string& app) const;

  // -- datasets --------------------------------------------------------
  Status register_dataset(const std::string& app, const DatasetDesc& desc,
                          Location resolved);
  StatusOr<DatasetRecord> dataset(const std::string& app,
                                  const std::string& name) const;
  /// Finds a dataset by bare name across all applications (first match).
  StatusOr<DatasetRecord> find_dataset(const std::string& name) const;
  /// Every registered dataset, across applications.
  std::vector<DatasetRecord> all_datasets() const;
  std::vector<DatasetRecord> datasets(const std::string& app) const;
  Status update_dataset_location(const std::string& app, const std::string& name,
                                 Location resolved);

  // -- dumped instances ----------------------------------------------------
  // A (dataset, timestep) may have several rows differing by location:
  // replicas. record_instance upserts on (key, timestep, location).
  Status record_instance(const InstanceRecord& record);
  /// The primary instance (first recorded) of one timestep.
  StatusOr<InstanceRecord> instance(const std::string& app,
                                    const std::string& name, int timestep) const;
  /// Every replica of one timestep.
  std::vector<InstanceRecord> replicas(const std::string& app,
                                       const std::string& name,
                                       int timestep) const;
  /// All instances of a dataset across timesteps (primaries and replicas).
  std::vector<InstanceRecord> instances(const std::string& app,
                                        const std::string& name) const;
  /// Drops one replica row.
  Status remove_instance(const std::string& app, const std::string& name,
                         int timestep, Location location);

  static std::string dataset_key(const std::string& app, const std::string& name) {
    return app + "/" + name;
  }

 private:
  meta::Table* users_;
  meta::Table* applications_;
  meta::Table* datasets_;
  meta::Table* instances_;
};

}  // namespace msra::core
