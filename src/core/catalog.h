// MetaCatalog: the paper's metadata schema on top of the embedded database.
//
// "The meta-data describes information about applications and users running
// in the system, and information about each dataset and its characteristics
// ... the storage resource type on which each dataset is stored or to be
// stored, file path and name of each dataset, how each dataset is
// partitioned among processors, how it is stored on storage systems."
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/dataset.h"
#include "meta/database.h"

namespace msra::core {

/// A dumped timestep instance of a dataset, together with every storage
/// resource currently holding a live copy. The replica set is ordered:
/// the first entry is the primary (the address of the original dump);
/// later entries were added by replication or migration. Replicas are
/// server-qualified (stored as "REMOTEDISK@1"; bare names are server 0),
/// so datasets shard across the SRB cluster.
struct InstanceRecord {
  std::string dataset_key;  ///< "app/dataset"
  int timestep = 0;
  std::vector<ReplicaAddress> replicas;
  std::string path;
  std::uint64_t bytes = 0;

  ReplicaAddress primary() const {
    return replicas.empty() ? ReplicaAddress{Location::kRemoteTape, 0}
                            : replicas.front();
  }
  /// Exact address match (a bare Location argument means server 0).
  bool on(ReplicaAddress address) const;
  /// Any-server match: a replica of this storage class on some site.
  bool on_location(Location location) const;
};

/// A registered dataset.
struct DatasetRecord {
  std::string app;
  DatasetDesc desc;
  Location resolved;  ///< where placement actually put it
};

class MetaCatalog {
 public:
  /// Instance-table persistence format written by this build. Format 1
  /// (one row per replica, a single `location` column) is upgraded in
  /// place when an old catalog is opened; see the constructor.
  static constexpr int kInstanceFormat = 2;

  /// Creates/opens the schema inside `db` (not owned). Old-format catalogs
  /// are migrated to the current format on open, so a database written by
  /// any earlier build keeps loading.
  explicit MetaCatalog(meta::Database* db);

  // -- applications & users ------------------------------------------------
  Status register_user(const std::string& user, const std::string& affiliation);
  Status register_application(const std::string& app, const std::string& user,
                              int nprocs, int iterations);
  StatusOr<int> application_iterations(const std::string& app) const;

  // -- datasets --------------------------------------------------------
  Status register_dataset(const std::string& app, const DatasetDesc& desc,
                          Location resolved);
  StatusOr<DatasetRecord> dataset(const std::string& app,
                                  const std::string& name) const;
  /// Finds a dataset by bare name across all applications (first match).
  StatusOr<DatasetRecord> find_dataset(const std::string& name) const;
  /// Every registered dataset, across applications.
  std::vector<DatasetRecord> all_datasets() const;
  std::vector<DatasetRecord> datasets(const std::string& app) const;
  Status update_dataset_location(const std::string& app, const std::string& name,
                                 Location resolved);

  // -- dumped instances ----------------------------------------------------
  // One row per (dataset, timestep) carrying the whole replica set.
  /// Upserts on (key, timestep): re-dumps replace path/bytes; the record's
  /// replicas are unioned into the stored set (order preserved).
  Status record_instance(const InstanceRecord& record);
  /// One timestep with its full replica set.
  StatusOr<InstanceRecord> instance(const std::string& app,
                                    const std::string& name, int timestep) const;
  /// Appends one replica address (idempotent). Fails with kNotFound if the
  /// instance was never dumped.
  Status add_replica(const std::string& app, const std::string& name,
                     int timestep, ReplicaAddress address);
  /// Drops one replica address; removing the last replica erases the whole
  /// instance row (the dataset no longer exists at that timestep).
  Status remove_replica(const std::string& app, const std::string& name,
                        int timestep, ReplicaAddress address);
  /// All instances of a dataset across timesteps.
  std::vector<InstanceRecord> instances(const std::string& app,
                                        const std::string& name) const;
  /// Every instance row in the catalog (migration planner, `msractl
  /// resources`).
  std::vector<InstanceRecord> all_instances() const;

  static std::string dataset_key(const std::string& app, const std::string& name) {
    return app + "/" + name;
  }
  /// Splits "app/dataset" back into its components (first '/' wins).
  static std::pair<std::string, std::string> split_key(const std::string& key);

 private:
  std::vector<std::int64_t> instance_rowids(const std::string& key,
                                            int timestep) const;

  meta::Database* db_;  ///< for txn_mutex(): compound upserts must be atomic
  meta::Table* users_;
  meta::Table* applications_;
  meta::Table* datasets_;
  meta::Table* instances_;
};

}  // namespace msra::core
