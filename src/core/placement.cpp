#include "core/placement.h"

#include "common/bytes.h"

namespace msra::core {

std::vector<Location> ordered_candidates(Location preferred) {
  switch (preferred) {
    case Location::kLocalDisk:
      return {Location::kLocalDisk, Location::kRemoteDisk,
              Location::kRemoteTape};
    case Location::kRemoteDisk:
      return {Location::kRemoteDisk, Location::kRemoteTape,
              Location::kLocalDisk};
    case Location::kAuto:  // AUTO defaults to remote tapes (the paper)
    case Location::kRemoteTape:
      return {Location::kRemoteTape, Location::kRemoteDisk,
              Location::kLocalDisk};
    case Location::kDisable:
      break;
  }
  return {};
}

std::vector<Location> PlacementPolicy::failover_chain(Location preferred) {
  switch (preferred) {
    case Location::kLocalDisk:
    case Location::kRemoteDisk:
    case Location::kRemoteTape: {
      std::vector<Location> out = ordered_candidates(preferred);
      out.erase(out.begin());  // drop the preferred resource itself
      return out;
    }
    case Location::kAuto:
    case Location::kDisable:
      break;
  }
  return {};
}

StatusOr<PlacementDecision> PlacementPolicy::resolve(StorageSystem& system,
                                                     const DatasetDesc& desc,
                                                     int iterations) {
  if (desc.location == Location::kDisable) {
    return PlacementDecision{Location::kDisable, false,
                             "dataset disabled by user hint"};
  }
  // AUTO defaults to remote tapes (the paper's DEFAULT).
  const Location preferred = desc.location == Location::kAuto
                                 ? Location::kRemoteTape
                                 : desc.location;
  const std::uint64_t footprint = desc.footprint_bytes(iterations);
  const std::vector<Location> candidates = ordered_candidates(preferred);

  std::string why;
  for (Location candidate : candidates) {
    runtime::StorageEndpoint& endpoint = system.endpoint(candidate);
    if (!endpoint.available()) {
      why += std::string(location_name(candidate)) + " is down; ";
      continue;
    }
    if (endpoint.free_bytes() < footprint) {
      why += std::string(location_name(candidate)) + " lacks " +
             format_bytes(footprint) + " free; ";
      continue;
    }
    PlacementDecision decision;
    decision.location = candidate;
    decision.failed_over = candidate != preferred;
    decision.reason = decision.failed_over
                          ? "fell back to " + std::string(location_name(candidate)) +
                                " (" + why + ")"
                          : "hint honored";
    system.metrics()
        .counter(decision.failed_over ? "placement.failed_over"
                                      : "placement.honored")
        ->increment();
    return decision;
  }
  return Status::Unavailable("no storage resource can hold " +
                             format_bytes(footprint) + " for dataset " +
                             desc.name + " (" + why + ")");
}

}  // namespace msra::core
