#include "core/placement.h"

#include <cstdint>

#include "common/bytes.h"

namespace msra::core {

std::vector<Location> ordered_candidates(Location preferred) {
  switch (preferred) {
    case Location::kLocalDisk:
      return {Location::kLocalDisk, Location::kRemoteDisk,
              Location::kRemoteTape};
    case Location::kRemoteDisk:
      return {Location::kRemoteDisk, Location::kRemoteTape,
              Location::kLocalDisk};
    case Location::kAuto:  // AUTO defaults to remote tapes (the paper)
    case Location::kRemoteTape:
      return {Location::kRemoteTape, Location::kRemoteDisk,
              Location::kLocalDisk};
    case Location::kDisable:
      break;
  }
  return {};
}

int shard_server(std::string_view key, Location location, int cluster_size) {
  if (cluster_size <= 1 || location == Location::kLocalDisk) return 0;
  // FNV-1a: stable across builds and processes, unlike std::hash.
  std::uint64_t hash = 14695981039346656037ull;
  for (char c : key) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ull;
  }
  return static_cast<int>(hash % static_cast<std::uint64_t>(cluster_size));
}

std::vector<ReplicaAddress> ordered_candidate_addresses(ReplicaAddress preferred,
                                                        int cluster_size) {
  if (cluster_size < 1) cluster_size = 1;
  std::vector<ReplicaAddress> out;
  for (Location location : ordered_candidates(preferred.location)) {
    if (location == Location::kLocalDisk) {
      out.push_back(ReplicaAddress{location, 0});
      continue;
    }
    const int first =
        preferred.server >= 0 && preferred.server < cluster_size
            ? preferred.server
            : 0;
    out.push_back(ReplicaAddress{location, first});
    for (int server = 0; server < cluster_size; ++server) {
      if (server != first) out.push_back(ReplicaAddress{location, server});
    }
  }
  return out;
}

std::vector<Location> PlacementPolicy::failover_chain(Location preferred) {
  switch (preferred) {
    case Location::kLocalDisk:
    case Location::kRemoteDisk:
    case Location::kRemoteTape: {
      std::vector<Location> out = ordered_candidates(preferred);
      out.erase(out.begin());  // drop the preferred resource itself
      return out;
    }
    case Location::kAuto:
    case Location::kDisable:
      break;
  }
  return {};
}

StatusOr<PlacementDecision> PlacementPolicy::resolve(StorageSystem& system,
                                                     const DatasetDesc& desc,
                                                     int iterations) {
  if (desc.location == Location::kDisable) {
    return PlacementDecision{Location::kDisable, /*server=*/0,
                             /*failed_over=*/false,
                             "dataset disabled by user hint"};
  }
  // AUTO defaults to remote tapes (the paper's DEFAULT).
  const Location preferred = desc.location == Location::kAuto
                                 ? Location::kRemoteTape
                                 : desc.location;
  const std::uint64_t footprint = desc.footprint_bytes(iterations);
  const ReplicaAddress home{
      preferred, shard_server(desc.name, preferred, system.cluster_size())};
  const std::vector<ReplicaAddress> candidates =
      ordered_candidate_addresses(home, system.cluster_size());

  std::string why;
  for (ReplicaAddress candidate : candidates) {
    runtime::StorageEndpoint& endpoint = system.endpoint(candidate);
    if (!endpoint.available()) {
      why += address_name(candidate) + " is down; ";
      continue;
    }
    if (endpoint.free_bytes() < footprint) {
      why += address_name(candidate) + " lacks " +
             format_bytes(footprint) + " free; ";
      continue;
    }
    PlacementDecision decision;
    decision.location = candidate.location;
    decision.server = candidate.server;
    decision.failed_over = candidate != home;
    decision.reason = decision.failed_over
                          ? "fell back to " + address_name(candidate) +
                                " (" + why + ")"
                          : "hint honored";
    system.metrics()
        .counter(decision.failed_over ? "placement.failed_over"
                                      : "placement.honored")
        ->increment();
    return decision;
  }
  return Status::Unavailable("no storage resource can hold " +
                             format_bytes(footprint) + " for dataset " +
                             desc.name + " (" + why + ")");
}

}  // namespace msra::core
