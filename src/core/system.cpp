#include "core/system.h"

#include <algorithm>
#include <array>
#include <cassert>
#include <charconv>
#include <cstdlib>

#include "cache/cache.h"
#include "core/balancer.h"
#include "runtime/factory.h"

namespace msra::core {

namespace {

/// Feeds a device's queueing delays into `io.<name>.queue_wait`. The
/// observer runs outside the resource's internal lock; the histogram
/// pointer is stable for the registry's lifetime.
void attach_wait_observer(simkit::Resource& resource,
                          obs::MetricsRegistry& metrics,
                          const std::string& name) {
  obs::Histogram* h = metrics.histogram("io." + name + ".queue_wait");
  resource.set_wait_observer(
      [h](simkit::SimTime wait) { h->record(wait); });
}

/// Site-qualified device name: site 0 keeps the legacy single-server name,
/// site i appends the index ("remotedisk" -> "remotedisk1").
std::string site_name(const std::string& base, int index) {
  return index == 0 ? base : base + std::to_string(index);
}

}  // namespace

std::string_view location_name(Location location) {
  switch (location) {
    case Location::kLocalDisk: return "LOCALDISK";
    case Location::kRemoteDisk: return "REMOTEDISK";
    case Location::kRemoteTape: return "REMOTETAPE";
    case Location::kAuto: return "AUTO";
    case Location::kDisable: return "DISABLE";
  }
  return "?";
}

StatusOr<Location> parse_location(std::string_view name) {
  if (name == "LOCALDISK") return Location::kLocalDisk;
  if (name == "REMOTEDISK") return Location::kRemoteDisk;
  if (name == "REMOTETAPE") return Location::kRemoteTape;
  if (name == "AUTO" || name == "DEFAULT") return Location::kAuto;
  if (name == "DISABLE") return Location::kDisable;
  return Status::InvalidArgument("unknown location: " + std::string(name));
}

std::string address_name(ReplicaAddress address) {
  std::string out(location_name(address.location));
  if (address.server != 0) {
    out += '@';
    out += std::to_string(address.server);
  }
  return out;
}

StatusOr<ReplicaAddress> parse_address(std::string_view name) {
  const std::size_t at = name.find('@');
  if (at == std::string_view::npos) {
    MSRA_ASSIGN_OR_RETURN(Location location, parse_location(name));
    return ReplicaAddress{location, 0};
  }
  MSRA_ASSIGN_OR_RETURN(Location location, parse_location(name.substr(0, at)));
  const std::string_view digits = name.substr(at + 1);
  int server = 0;
  auto [ptr, ec] = std::from_chars(digits.data(), digits.data() + digits.size(),
                                   server);
  if (ec != std::errc() || ptr != digits.data() + digits.size() || server < 0) {
    return Status::InvalidArgument("bad server index in address: " +
                                   std::string(name));
  }
  return ReplicaAddress{location, server};
}

StorageSystem::StorageSystem(const HardwareProfile& profile,
                             std::filesystem::path data_root)
    : profile_(profile), data_root_(std::move(data_root)) {
  // MSRA_STATS=0 turns the telemetry off for the whole system: every
  // instrument drops to a single relaxed atomic load per operation.
  if (const char* env = std::getenv("MSRA_STATS");
      env != nullptr && env[0] == '0') {
    metrics_.set_enabled(false);
    tracer_.set_enabled(false);
  }
  if (persistent()) {
    local_store_ = std::make_unique<store::FileObjectStore>(data_root_ / "local");
    auto loaded = meta::Database::load(data_root_ / "meta.db");
    metadb_ = loaded.ok() ? std::move(*loaded)
                          : std::make_unique<meta::Database>();
  } else {
    local_store_ = std::make_unique<store::MemObjectStore>();
    metadb_ = std::make_unique<meta::Database>();
  }
  local_resource_ = std::make_unique<srb::DiskResource>(
      "localdisk", srb::StorageKind::kLocalDisk, local_store_.get(),
      profile.local_disk, profile.local_capacity, profile.local_disk_arms);

  const int servers = std::max(1, profile.cluster.servers);
  sites_.reserve(static_cast<std::size_t>(servers));
  for (int i = 0; i < servers; ++i) {
    auto site = std::unique_ptr<ServerSite>(new ServerSite());
    site->index_ = i;
    if (persistent()) {
      site->disk_store_ = std::make_unique<store::FileObjectStore>(
          data_root_ / site_name("remote", i));
      site->tape_store_ = std::make_unique<store::FileObjectStore>(
          data_root_ / site_name("tape", i));
    } else {
      site->disk_store_ = std::make_unique<store::MemObjectStore>();
    }
    site->tape_library_ = std::make_unique<tape::TapeLibrary>(
        site_name("hpss", i), profile.tape, profile.tape_drives,
        site->tape_store_.get());
    tape::BitfileBackend* archive = site->tape_library_.get();
    if (profile.tape_cache_bytes > 0) {
      tape::HsmModel hsm_model = profile.tape_cache;
      hsm_model.cache_capacity = profile.tape_cache_bytes;
      site->hsm_ = std::make_unique<tape::HsmStore>(
          site_name("hpss-cache", i), hsm_model, site->tape_library_.get());
      archive = site->hsm_.get();
    }

    site->disk_resource_ = std::make_unique<srb::DiskResource>(
        site_name("remotedisk", i), srb::StorageKind::kRemoteDisk,
        site->disk_store_.get(), profile.remote_disk,
        profile.remote_disk_capacity, profile.remote_disk_arms);
    site->tape_resource_ = std::make_unique<srb::TapeResource>(
        site_name("remotetape", i), archive);

    site->server_ =
        std::make_unique<srb::SrbServer>(site_name("sdsc", i), profile.server);
    Status s1 = site->server_->register_resource(site->disk_resource_.get());
    Status s2 = site->server_->register_resource(site->tape_resource_.get());
    assert(s1.ok() && s2.ok());
    (void)s1;
    (void)s2;

    simkit::NoiseModel disk_noise, tape_noise;
    if (profile.wan_jitter > 0.0) {
      // Distinct seeds per site so jittered links are independent.
      disk_noise = simkit::NoiseModel(profile.wan_jitter,
                                      profile.jitter_seed + 2 * i);
      tape_noise = simkit::NoiseModel(profile.wan_jitter,
                                      profile.jitter_seed + 2 * i + 1);
    }
    site->disk_link_ = std::make_unique<net::Link>(
        site_name("wan-disk", i), profile.wan_disk, disk_noise);
    site->tape_link_ = std::make_unique<net::Link>(
        site_name("wan-tape", i), profile.wan_tape, tape_noise);

    site->tape_library_->set_metrics(&metrics_);
    if (site->hsm_) site->hsm_->set_metrics(&metrics_);
    sites_.push_back(std::move(site));
  }

  // Endpoints come after the site registry exists: make_endpoint looks
  // servers up through site().
  local_endpoint_ = runtime::make_endpoint(*this, Location::kLocalDisk);
  for (int i = 0; i < servers; ++i) {
    sites_[static_cast<std::size_t>(i)]->disk_endpoint_ =
        runtime::make_endpoint(*this, Location::kRemoteDisk, i);
    sites_[static_cast<std::size_t>(i)]->tape_endpoint_ =
        runtime::make_endpoint(*this, Location::kRemoteTape, i);
  }

  // Contention telemetry: every shared device reports the queueing delay of
  // each granted reservation. Installed before the system is shared across
  // client threads (set_wait_observer is not itself synchronized).
  attach_wait_observer(local_resource_->arm(), metrics_, "localdisk");
  for (auto& site : sites_) {
    const int i = site->index_;
    attach_wait_observer(site->disk_resource_->arm(), metrics_,
                         site_name("remotedisk", i));
    attach_wait_observer(site->server_->cpu(), metrics_,
                         site->server_->name() + "-cpu");
    attach_wait_observer(site->disk_link_->pipe(), metrics_,
                         site_name("wan-disk", i));
    attach_wait_observer(site->tape_link_->pipe(), metrics_,
                         site_name("wan-tape", i));
    if (site->hsm_) {
      attach_wait_observer(site->hsm_->cache_arm(), metrics_,
                           site_name("hpss-cache", i));
    }
    for (auto& [name, resource] : site->tape_library_->contended_resources()) {
      attach_wait_observer(*resource, metrics_, name);
    }
  }

  balancer_ = std::make_unique<Balancer>(this);
}

// Out of line: cache::ReadCache is only forward-declared in the header.
StorageSystem::~StorageSystem() = default;

cache::ReadCache* StorageSystem::enable_cache(
    const cache::CacheConfig& config, const predict::Predictor* predictor) {
  cache_ = std::make_unique<cache::ReadCache>(&metrics_, predictor,
                                              &access_tracker_, config);
  return cache_.get();
}

void StorageSystem::disable_cache() { cache_.reset(); }

Status StorageSystem::enable_qos(const qos::QosConfig& config) {
  // Per-class wait telemetry: one histogram per tenant class, shared by
  // every device (the per-device split stays in class_stats()).
  std::array<obs::Histogram*, qos::kTenantClasses> histograms{};
  for (qos::TenantClass cls : qos::kAllTenantClasses) {
    histograms[static_cast<std::size_t>(cls)] = metrics_.histogram(
        "qos.wait." + std::string(qos::tenant_class_name(cls)));
  }
  for (auto& [name, resource] : shared_devices()) {
    resource->set_discipline(config.discipline);
    resource->set_class_wait_observer(
        [histograms](int class_id, simkit::SimTime wait) {
          if (class_id >= 0 && class_id < qos::kTenantClasses) {
            histograms[static_cast<std::size_t>(class_id)]->record(wait);
          }
        });
  }
  qos_config_ = config;
  return Status::Ok();
}

void StorageSystem::disable_qos() {
  for (auto& [name, resource] : shared_devices()) {
    resource->set_discipline(simkit::DisciplineKind::kFifo);
    resource->set_class_wait_observer(nullptr);
  }
  qos_config_.reset();
}

simkit::QosTag StorageSystem::qos_tag(qos::TenantClass cls) const {
  return qos::tag_for(qos_config_.has_value() ? *qos_config_ : qos::QosConfig{},
                      cls);
}

ServerSite& StorageSystem::site(int server) {
  assert(server >= 0 && server < cluster_size() && "server index out of range");
  return *sites_[static_cast<std::size_t>(
      std::clamp(server, 0, cluster_size() - 1))];
}

runtime::StorageEndpoint& StorageSystem::endpoint(Location location) {
  return endpoint(ReplicaAddress{location, 0});
}

runtime::StorageEndpoint& StorageSystem::endpoint(ReplicaAddress address) {
  switch (address.location) {
    case Location::kLocalDisk: return *local_endpoint_;
    case Location::kRemoteDisk: return site(address.server).disk_endpoint();
    case Location::kRemoteTape: return site(address.server).tape_endpoint();
    case Location::kAuto:
    case Location::kDisable: break;
  }
  assert(false && "endpoint() requires a concrete location");
  return *local_endpoint_;
}

Status StorageSystem::save_metadata() const {
  if (!persistent()) return Status::Ok();
  return metadb_->save(data_root_ / "meta.db");
}

void StorageSystem::reset_time() {
  local_resource_->arm().reset();
  for (auto& site : sites_) {
    site->disk_resource_->arm().reset();
    if (site->hsm_) {
      site->hsm_->reset_clocks();  // also resets the tape library's clocks
    } else {
      site->tape_library_->reset_clocks();
    }
    site->server_->reset_clock();
    site->disk_link_->pipe().reset();
    site->tape_link_->pipe().reset();
  }
}

std::vector<std::pair<std::string, simkit::Resource*>>
StorageSystem::shared_devices() {
  std::vector<std::pair<std::string, simkit::Resource*>> devices = {
      {"localdisk", &local_resource_->arm()},
  };
  for (auto& site : sites_) {
    const int i = site->index_;
    devices.emplace_back(site_name("remotedisk", i),
                         &site->disk_resource_->arm());
    devices.emplace_back(site->server_->name() + "-cpu", &site->server_->cpu());
    devices.emplace_back(site_name("wan-disk", i), &site->disk_link_->pipe());
    devices.emplace_back(site_name("wan-tape", i), &site->tape_link_->pipe());
    if (site->hsm_) {
      devices.emplace_back(site_name("hpss-cache", i), &site->hsm_->cache_arm());
    }
    for (auto& [name, resource] : site->tape_library_->contended_resources()) {
      devices.emplace_back(site_name(name, i), resource);
    }
  }
  return devices;
}

std::vector<obs::ResourceLoadRow> StorageSystem::resource_loads() {
  std::vector<std::pair<std::string, simkit::Resource*>> devices =
      shared_devices();
  std::vector<obs::ResourceLoadRow> rows;
  rows.reserve(devices.size());
  for (auto& [name, resource] : devices) {
    obs::ResourceLoadRow row;
    row.name = name;
    row.capacity = resource->capacity();
    row.operations = resource->operations();
    row.busy_seconds = resource->busy_time();
    row.utilization = resource->utilization();
    const simkit::Resource::QueueStats q = resource->queue_stats();
    row.reservations = q.reservations;
    row.total_wait = q.total_wait;
    row.max_wait = q.max_wait;
    rows.push_back(std::move(row));
  }
  return rows;
}

std::vector<obs::QosClassRow> StorageSystem::qos_breakdown() {
  std::vector<obs::QosClassRow> rows;
  rows.reserve(qos::kTenantClasses);
  for (qos::TenantClass cls : qos::kAllTenantClasses) {
    obs::QosClassRow row;
    row.tenant = std::string(qos::tenant_class_name(cls));
    rows.push_back(std::move(row));
  }
  for (auto& [name, resource] : shared_devices()) {
    for (const auto& [class_id, stats] : resource->class_stats()) {
      if (class_id < 0 || class_id >= qos::kTenantClasses) continue;
      obs::QosClassRow& row = rows[static_cast<std::size_t>(class_id)];
      row.served += stats.served;
      row.wait_max = std::max(row.wait_max, stats.max_wait);
      row.max_backlog = std::max(row.max_backlog, stats.max_backlog);
      row.deadline_misses += stats.deadline_misses;
    }
  }
  for (obs::QosClassRow& row : rows) {
    if (const obs::Histogram* h =
            metrics_.find_histogram("qos.wait." + row.tenant)) {
      row.wait_p50 = h->percentile(50.0);
      row.wait_p99 = h->percentile(99.0);
    }
    const std::string prefix = "qos.admission." + row.tenant + ".";
    if (const obs::Counter* c = metrics_.find_counter(prefix + "accepted")) {
      row.accepted = c->value();
    }
    if (const obs::Counter* c = metrics_.find_counter(prefix + "redirected")) {
      row.redirected = c->value();
    }
    if (const obs::Counter* c = metrics_.find_counter(prefix + "rejected")) {
      row.rejected = c->value();
    }
  }
  return rows;
}

void StorageSystem::set_location_available(Location location, bool available) {
  switch (location) {
    case Location::kLocalDisk:
      local_resource_->set_available(available);
      break;
    case Location::kRemoteDisk:
      for (auto& site : sites_) site->disk_resource_->set_available(available);
      break;
    case Location::kRemoteTape:
      for (auto& site : sites_) site->tape_resource_->set_available(available);
      break;
    case Location::kAuto:
    case Location::kDisable:
      break;
  }
}

}  // namespace msra::core
