#include "core/system.h"

#include <cassert>
#include <cstdlib>

#include "cache/cache.h"
#include "runtime/factory.h"

namespace msra::core {

namespace {

/// Feeds a device's queueing delays into `io.<name>.queue_wait`. The
/// observer runs outside the resource's internal lock; the histogram
/// pointer is stable for the registry's lifetime.
void attach_wait_observer(simkit::Resource& resource,
                          obs::MetricsRegistry& metrics,
                          const std::string& name) {
  obs::Histogram* h = metrics.histogram("io." + name + ".queue_wait");
  resource.set_wait_observer(
      [h](simkit::SimTime wait) { h->record(wait); });
}

}  // namespace

std::string_view location_name(Location location) {
  switch (location) {
    case Location::kLocalDisk: return "LOCALDISK";
    case Location::kRemoteDisk: return "REMOTEDISK";
    case Location::kRemoteTape: return "REMOTETAPE";
    case Location::kAuto: return "AUTO";
    case Location::kDisable: return "DISABLE";
  }
  return "?";
}

StatusOr<Location> parse_location(std::string_view name) {
  if (name == "LOCALDISK") return Location::kLocalDisk;
  if (name == "REMOTEDISK") return Location::kRemoteDisk;
  if (name == "REMOTETAPE") return Location::kRemoteTape;
  if (name == "AUTO" || name == "DEFAULT") return Location::kAuto;
  if (name == "DISABLE") return Location::kDisable;
  return Status::InvalidArgument("unknown location: " + std::string(name));
}

StorageSystem::StorageSystem(const HardwareProfile& profile,
                             std::filesystem::path data_root)
    : profile_(profile), data_root_(std::move(data_root)) {
  // MSRA_STATS=0 turns the telemetry off for the whole system: every
  // instrument drops to a single relaxed atomic load per operation.
  if (const char* env = std::getenv("MSRA_STATS");
      env != nullptr && env[0] == '0') {
    metrics_.set_enabled(false);
    tracer_.set_enabled(false);
  }
  if (persistent()) {
    local_store_ = std::make_unique<store::FileObjectStore>(data_root_ / "local");
    remote_disk_store_ =
        std::make_unique<store::FileObjectStore>(data_root_ / "remote");
    tape_store_ = std::make_unique<store::FileObjectStore>(data_root_ / "tape");
    auto loaded = meta::Database::load(data_root_ / "meta.db");
    metadb_ = loaded.ok() ? std::move(*loaded)
                          : std::make_unique<meta::Database>();
  } else {
    local_store_ = std::make_unique<store::MemObjectStore>();
    remote_disk_store_ = std::make_unique<store::MemObjectStore>();
    metadb_ = std::make_unique<meta::Database>();
  }
  tape_library_ = std::make_unique<tape::TapeLibrary>(
      "hpss", profile.tape, profile.tape_drives, tape_store_.get());
  tape::BitfileBackend* archive = tape_library_.get();
  if (profile.tape_cache_bytes > 0) {
    tape::HsmModel hsm_model = profile.tape_cache;
    hsm_model.cache_capacity = profile.tape_cache_bytes;
    hsm_ = std::make_unique<tape::HsmStore>("hpss-cache", hsm_model,
                                            tape_library_.get());
    archive = hsm_.get();
  }

  local_resource_ = std::make_unique<srb::DiskResource>(
      "localdisk", srb::StorageKind::kLocalDisk, local_store_.get(),
      profile.local_disk, profile.local_capacity, profile.local_disk_arms);
  remote_disk_resource_ = std::make_unique<srb::DiskResource>(
      "remotedisk", srb::StorageKind::kRemoteDisk, remote_disk_store_.get(),
      profile.remote_disk, profile.remote_disk_capacity,
      profile.remote_disk_arms);
  tape_resource_ =
      std::make_unique<srb::TapeResource>("remotetape", archive);

  server_ = std::make_unique<srb::SrbServer>("sdsc", profile.server);
  Status s1 = server_->register_resource(remote_disk_resource_.get());
  Status s2 = server_->register_resource(tape_resource_.get());
  assert(s1.ok() && s2.ok());
  (void)s1;
  (void)s2;

  simkit::NoiseModel disk_noise, tape_noise;
  if (profile.wan_jitter > 0.0) {
    disk_noise = simkit::NoiseModel(profile.wan_jitter, profile.jitter_seed);
    tape_noise = simkit::NoiseModel(profile.wan_jitter, profile.jitter_seed + 1);
  }
  wan_disk_link_ =
      std::make_unique<net::Link>("wan-disk", profile.wan_disk, disk_noise);
  wan_tape_link_ =
      std::make_unique<net::Link>("wan-tape", profile.wan_tape, tape_noise);

  local_endpoint_ = runtime::make_endpoint(*this, Location::kLocalDisk);
  remote_disk_endpoint_ = runtime::make_endpoint(*this, Location::kRemoteDisk);
  remote_tape_endpoint_ = runtime::make_endpoint(*this, Location::kRemoteTape);

  tape_library_->set_metrics(&metrics_);
  if (hsm_) hsm_->set_metrics(&metrics_);

  // Contention telemetry: every shared device reports the queueing delay of
  // each granted reservation. Installed before the system is shared across
  // client threads (set_wait_observer is not itself synchronized).
  attach_wait_observer(local_resource_->arm(), metrics_, "localdisk");
  attach_wait_observer(remote_disk_resource_->arm(), metrics_, "remotedisk");
  attach_wait_observer(server_->cpu(), metrics_, "sdsc-cpu");
  attach_wait_observer(wan_disk_link_->pipe(), metrics_, "wan-disk");
  attach_wait_observer(wan_tape_link_->pipe(), metrics_, "wan-tape");
  if (hsm_) attach_wait_observer(hsm_->cache_arm(), metrics_, "hpss-cache");
  for (auto& [name, resource] : tape_library_->contended_resources()) {
    attach_wait_observer(*resource, metrics_, name);
  }
}

// Out of line: cache::ReadCache is only forward-declared in the header.
StorageSystem::~StorageSystem() = default;

cache::ReadCache* StorageSystem::enable_cache(
    const cache::CacheConfig& config, const predict::Predictor* predictor) {
  cache_ = std::make_unique<cache::ReadCache>(&metrics_, predictor,
                                              &access_tracker_, config);
  return cache_.get();
}

void StorageSystem::disable_cache() { cache_.reset(); }

runtime::StorageEndpoint& StorageSystem::endpoint(Location location) {
  switch (location) {
    case Location::kLocalDisk: return *local_endpoint_;
    case Location::kRemoteDisk: return *remote_disk_endpoint_;
    case Location::kRemoteTape: return *remote_tape_endpoint_;
    case Location::kAuto:
    case Location::kDisable: break;
  }
  assert(false && "endpoint() requires a concrete location");
  return *local_endpoint_;
}

Status StorageSystem::save_metadata() const {
  if (!persistent()) return Status::Ok();
  return metadb_->save(data_root_ / "meta.db");
}

void StorageSystem::reset_time() {
  local_resource_->arm().reset();
  remote_disk_resource_->arm().reset();
  if (hsm_) {
    hsm_->reset_clocks();  // also resets the tape library's clocks
  } else {
    tape_library_->reset_clocks();
  }
  server_->reset_clock();
  wan_disk_link_->pipe().reset();
  wan_tape_link_->pipe().reset();
}

std::vector<obs::ResourceLoadRow> StorageSystem::resource_loads() {
  std::vector<std::pair<std::string, simkit::Resource*>> devices = {
      {"localdisk", &local_resource_->arm()},
      {"remotedisk", &remote_disk_resource_->arm()},
      {"sdsc-cpu", &server_->cpu()},
      {"wan-disk", &wan_disk_link_->pipe()},
      {"wan-tape", &wan_tape_link_->pipe()},
  };
  if (hsm_) devices.emplace_back("hpss-cache", &hsm_->cache_arm());
  for (auto& [name, resource] : tape_library_->contended_resources()) {
    devices.emplace_back(name, resource);
  }
  std::vector<obs::ResourceLoadRow> rows;
  rows.reserve(devices.size());
  for (auto& [name, resource] : devices) {
    obs::ResourceLoadRow row;
    row.name = name;
    row.capacity = resource->capacity();
    row.operations = resource->operations();
    row.busy_seconds = resource->busy_time();
    row.utilization = resource->utilization();
    const simkit::Resource::QueueStats q = resource->queue_stats();
    row.reservations = q.reservations;
    row.total_wait = q.total_wait;
    row.max_wait = q.max_wait;
    rows.push_back(std::move(row));
  }
  return rows;
}

void StorageSystem::set_location_available(Location location, bool available) {
  switch (location) {
    case Location::kLocalDisk:
      local_resource_->set_available(available);
      break;
    case Location::kRemoteDisk:
      remote_disk_resource_->set_available(available);
      break;
    case Location::kRemoteTape:
      tape_resource_->set_available(available);
      break;
    case Location::kAuto:
    case Location::kDisable:
      break;
  }
}

}  // namespace msra::core
