// Dataset descriptors: the vocabulary of the user API.
//
// A DatasetDesc carries exactly the columns the paper's IJ-GUI shows
// (Fig. 11): NAME, AMODE, NDIMS, ETYPE, PATTERN, DIMS, EXPECTEDLOC,
// FREQUENCY — plus the I/O optimization method.
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "core/system.h"
#include "runtime/parallel_io.h"

namespace msra::core {

/// Element types of the paper's datasets (floats for analysis/checkpoint,
/// unsigned chars for visualization).
enum class ElementType { kUInt8, kInt32, kFloat32, kFloat64 };

std::size_t element_size(ElementType type);
std::string_view element_type_name(ElementType type);
StatusOr<ElementType> parse_element_type(std::string_view name);

/// Access mode (the paper's AMODE): `create` makes one object per dumped
/// timestep; `over_write` reuses a single object (checkpoints).
enum class AccessMode { kCreate, kOverWrite, kRead };

std::string_view access_mode_name(AccessMode mode);

/// Full description of one dataset in a run.
struct DatasetDesc {
  std::string name;
  AccessMode amode = AccessMode::kCreate;
  std::array<std::uint64_t, 3> dims = {1, 1, 1};
  ElementType etype = ElementType::kFloat32;
  std::string pattern = "BBB";           ///< HPF-style distribution
  int frequency = 1;                     ///< dump every `frequency` iterations
  Location location = Location::kAuto;   ///< the user's location hint
  runtime::IoMethod method = runtime::IoMethod::kCollective;
  int aggregators = 1;                    ///< two-phase I/O aggregator count
  std::string usage;                     ///< purpose hint ("analysis", ...)

  std::uint64_t global_elems() const { return dims[0] * dims[1] * dims[2]; }
  std::uint64_t global_bytes() const {
    return global_elems() * element_size(etype);
  }

  /// Number of dumps in an N-iteration run: iterations 0, f, 2f, ...
  /// (the paper's Eq. (2) factor N/freq + 1).
  std::uint64_t dumps(int iterations) const {
    if (frequency <= 0) return 0;
    return static_cast<std::uint64_t>(iterations / frequency) + 1;
  }

  /// Total bytes this dataset will occupy on storage for an N-iteration run.
  std::uint64_t footprint_bytes(int iterations) const {
    if (location == Location::kDisable) return 0;
    if (amode == AccessMode::kOverWrite) return global_bytes();
    return global_bytes() * dumps(iterations);
  }
};

}  // namespace msra::core
