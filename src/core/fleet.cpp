#include "core/fleet.h"

#include <array>
#include <condition_variable>
#include <mutex>
#include <queue>
#include <utility>

#include "cache/cache.h"
#include "common/threadpool.h"
#include "core/client.h"
#include "obs/metrics.h"

namespace msra::core {

// ---------------------------------------------------------- TenantContext --

Session& TenantContext::session() { return client_->session(); }

simkit::Timeline& TenantContext::timeline() { return client_->timeline(); }

StorageSystem& TenantContext::system() { return client_->session().system(); }

DatasetHandle* TenantContext::handle(const std::string& dataset) {
  return client_->session().find_handle(dataset);
}

// --------------------------------------------------------------- Workload --

namespace {

/// A step referenced a dataset with no open handle: distinguish "session
/// already gone" from "never opened" so the completion explains itself.
Status missing_handle(TenantContext& ctx, const std::string& dataset) {
  if (ctx.session().finalized()) {
    return Status::FailedPrecondition("session already finalized");
  }
  return Status::NotFound("dataset " + dataset + " not open in this session");
}

}  // namespace

Workload& Workload::tagged(std::string tag) {
  tag_ = std::move(tag);
  return *this;
}

Workload& Workload::classed(qos::TenantClass cls) {
  class_ = cls;
  return *this;
}

Workload& Workload::then(std::string label,
                         std::function<Status(TenantContext&)> fn) {
  Step step;
  step.label = std::move(label);
  step.fn = std::move(fn);
  steps_.push_back(std::move(step));
  return *this;
}

Workload& Workload::open(DatasetDesc desc) {
  std::string label = "open " + desc.name;
  return then(std::move(label), [desc = std::move(desc)](TenantContext& ctx) {
    return ctx.session().open(desc).status();
  });
}

Workload& Workload::open_existing(std::string dataset, OpenOptions options) {
  std::string label = "open_existing " + dataset;
  return then(std::move(label),
              [dataset = std::move(dataset),
               options = std::move(options)](TenantContext& ctx) {
                return ctx.session().open_existing(dataset, options).status();
              });
}

Workload& Workload::finalize() {
  return then("finalize",
              [](TenantContext& ctx) { return ctx.session().finalize(); });
}

Workload& Workload::dump(std::string dataset, int timestep) {
  intents_.push_back(
      IoIntent{IoIntent::Kind::kWrite, dataset, timestep});
  Step step;
  step.label = "dump " + dataset + "/t" + std::to_string(timestep);
  step.lower = [dataset, timestep](TenantContext& ctx,
                                   StagedIo& io) -> StatusOr<bool> {
    DatasetHandle* handle = ctx.handle(dataset);
    if (handle == nullptr) return missing_handle(ctx, dataset);
    if (!handle->enabled()) return false;  // DISABLE: not dumped at all
    MSRA_ASSIGN_OR_RETURN(io.access, handle->stage_dump(timestep));
    // The payload is a fill pattern: virtual time depends on its size only.
    io.in.assign(handle->desc().global_bytes(), std::byte{0});
    io.span_label = "write_timestep " + dataset;
    return true;
  };
  step.finish = [dataset, timestep](TenantContext& ctx) {
    DatasetHandle* handle = ctx.handle(dataset);
    if (handle == nullptr) return missing_handle(ctx, dataset);
    return handle->commit_dump(timestep, ctx.timeline().now());
  };
  steps_.push_back(std::move(step));
  return *this;
}

Workload& Workload::read_whole(std::string dataset, int timestep) {
  intents_.push_back(IoIntent{IoIntent::Kind::kRead, dataset, timestep});
  Step step;
  step.label = "read_whole " + dataset + "/t" + std::to_string(timestep);
  step.lower = [dataset, timestep](TenantContext& ctx,
                                   StagedIo& io) -> StatusOr<bool> {
    DatasetHandle* handle = ctx.handle(dataset);
    if (handle == nullptr) return missing_handle(ctx, dataset);
    MSRA_ASSIGN_OR_RETURN(io.access, handle->stage_read_whole(timestep));
    io.out.resize(handle->desc().global_bytes());
    return true;
  };
  steps_.push_back(std::move(step));
  return *this;
}

Workload& Workload::read_box(std::string dataset, int timestep,
                             prt::LocalBox box, ReadOptions options) {
  intents_.push_back(IoIntent{IoIntent::Kind::kRead, dataset, timestep});
  Step step;
  step.label = "read_box " + dataset + "/t" + std::to_string(timestep);
  step.lower = [dataset, timestep, box, options = std::move(options)](
                   TenantContext& ctx, StagedIo& io) -> StatusOr<bool> {
    if (options.streams != 0) {
      return Status::InvalidArgument(
          "staged reads cannot reshape the endpoint fast path (streams)");
    }
    if (options.timeline != nullptr) {
      return Status::InvalidArgument(
          "fleet actors run on their own clock (timeline override)");
    }
    DatasetHandle* handle = ctx.handle(dataset);
    if (handle == nullptr) return missing_handle(ctx, dataset);
    const std::size_t bytes =
        box.volume() * element_size(handle->desc().etype);
    MSRA_ASSIGN_OR_RETURN(io.access,
                          handle->stage_read_box(timestep, box, bytes, options));
    io.out.resize(bytes);
    io.span_label = options.trace_label.empty() ? "read_box " + dataset
                                                : options.trace_label;
    return true;
  };
  steps_.push_back(std::move(step));
  return *this;
}

// ------------------------------------------------------------------ Fleet --

/// One tenant actor: a client, its workload queue, and the in-flight slice
/// state. An actor is scheduled at most once at a time; the min-heap only
/// re-admits it after its current slice retired.
struct Fleet::Actor {
  Client* client = nullptr;
  std::size_t index = 0;
  std::deque<std::pair<Workload, Completion*>> queue;

  // Current workload progress.
  bool active = false;
  Workload current;
  Completion* completion = nullptr;
  std::size_t step = 0;

  /// A staged I/O step mid-flight: buffers, the optional whole-access
  /// span, and the cursor stepping the plan. The span outlives the cursor
  /// (declared first) so it closes after the last stage ran.
  struct Io {
    Io(StagedIo s, obs::TraceRecorder* tracer, simkit::Timeline& timeline)
        : staged(std::move(s)),
          span(staged.span_label.empty()
                   ? nullptr
                   : std::make_unique<obs::Span>(tracer, timeline,
                                                 staged.span_label)),
          cursor(staged.access.plan, *staged.access.endpoint, timeline,
                 staged.out, staged.in, tracer) {}
    StagedIo staged;
    std::unique_ptr<obs::Span> span;
    runtime::PlanCursor cursor;
  };
  std::unique_ptr<Io> io;
};

Fleet::Fleet(StorageSystem& system, FleetOptions options)
    : system_(system), options_(options) {}

Fleet::~Fleet() = default;

Client& Fleet::add_client(std::string name, SessionOptions options) {
  auto client = std::unique_ptr<Client>(
      new Client(std::move(name), system_, std::move(options), this));
  Client* raw = client.get();
  owned_clients_.push_back(std::move(client));
  attach(raw);
  return *raw;
}

void Fleet::attach(Client* client) {
  auto actor = std::make_unique<Actor>();
  actor->client = client;
  actor->index = actors_.size();
  client->actor_index_ = actor->index;
  actors_.push_back(std::move(actor));
}

Fleet::Actor* Fleet::actor_of(Client& client) {
  const std::size_t index = client.actor_index_;
  if (index >= actors_.size() || actors_[index]->client != &client) {
    return nullptr;
  }
  return actors_[index].get();
}

Completion* Fleet::submit(Client& client, Workload workload) {
  Actor* actor = actor_of(client);
  completions_.emplace_back();
  Completion* completion = &completions_.back();
  completion->submitted_at_ = client.timeline().now();
  if (actor == nullptr) {
    completion->status_ =
        Status::InvalidArgument("client does not belong to this fleet");
    completion->finished_at_ = completion->submitted_at_;
    completion->done_ = true;
    return completion;
  }
  // Admission gate: a rejected workload never queues — open-loop FIFO
  // would let it sit and miss its deadline anyway; failing fast at submit
  // is the CASTOR-stager model (reject/redirect instead of queueing
  // forever).
  if (admission_) {
    Status verdict = admission_(client, workload);
    if (!verdict.ok()) {
      completion->status_ = std::move(verdict);
      completion->finished_at_ = completion->submitted_at_;
      completion->done_ = true;
      completed_.fetch_add(1, std::memory_order_relaxed);
      obs::MetricsRegistry& metrics = system_.metrics();
      if (metrics.enabled()) metrics.counter("fleet.rejected")->increment();
      return completion;
    }
  }
  actor->queue.emplace_back(std::move(workload), completion);
  return completion;
}

bool Fleet::runnable(const Actor& actor) const {
  return actor.active || !actor.queue.empty();
}

void Fleet::start_next(Actor& actor) {
  auto [workload, completion] = std::move(actor.queue.front());
  actor.queue.pop_front();
  actor.current = std::move(workload);
  actor.completion = completion;
  actor.step = 0;
  actor.active = true;
}

void Fleet::finish_workload(Actor& actor, Status status) {
  Completion* completion = actor.completion;
  actor.io.reset();
  actor.active = false;
  actor.completion = nullptr;
  completion->finished_at_ = actor.client->timeline().now();
  completion->status_ = status;
  completion->done_ = true;
  completed_.fetch_add(1, std::memory_order_relaxed);
  obs::MetricsRegistry& metrics = system_.metrics();
  if (metrics.enabled()) {
    metrics.counter(status.ok() ? "fleet.completed" : "fleet.failed")
        ->increment();
    const double latency = completion->latency();
    metrics.histogram("fleet.latency")->record(latency);
    if (!actor.current.tag_.empty()) {
      metrics.histogram("fleet.latency." + actor.current.tag_)
          ->record(latency);
    }
  }
}

void Fleet::run_slice(Actor& actor) {
  TenantContext ctx(actor.client);
  if (!actor.active) start_next(actor);
  // Every booking this slice makes — plan stages, lowering-time probes,
  // control-step session calls — schedules under the tenant's class (the
  // workload override wins over the client's session class). The scope is
  // thread-local, so pool-mode slices classify correctly per worker.
  const qos::TenantClass tenant_class =
      actor.current.tenant_class().has_value()
          ? *actor.current.tenant_class()
          : actor.client->session().options().tenant_class;
  simkit::QosScope qos_scope(system_.qos_tag(tenant_class));
  if (actor.step >= actor.current.steps_.size()) {
    finish_workload(actor, Status::Ok());
    return;
  }
  const Workload::Step& step = actor.current.steps_[actor.step];

  // Mid-flight staged I/O: run one plan stage, retire the step when the
  // cursor drained.
  if (actor.io != nullptr) {
    (void)actor.io->cursor.step();  // running status read back when done
    if (!actor.io->cursor.done()) return;
    Status status = actor.io->cursor.status();
    // A drained cache-miss read offers its landed payload for priced
    // admission — the same hook the synchronous read_whole path runs.
    // Cache fill is the system's own traffic: background by construction.
    if (status.ok() && actor.io->staged.access.cache_offer.has_value()) {
      if (cache::ReadCache* cache = system_.cache()) {
        simkit::QosScope background(
            system_.qos_tag(qos::TenantClass::kBackground));
        const CacheOffer& offer = *actor.io->staged.access.cache_offer;
        (void)cache->offer(offer.path, offer.dataset_key, actor.io->staged.out,
                           offer.origin, actor.client->timeline().now());
      }
    }
    actor.io.reset();
    if (status.ok() && step.finish) status = step.finish(ctx);
    if (!status.ok()) {
      finish_workload(actor, std::move(status));
      return;
    }
    ++actor.step;
    return;
  }

  // Staged I/O step, first slice: lower only (the metadata half — replica
  // selection, heat accounting, plan building — is one atomic slice; plan
  // stages start on the next).
  if (step.lower) {
    StagedIo staged;
    StatusOr<bool> lowered = step.lower(ctx, staged);
    if (!lowered.ok()) {
      finish_workload(actor, lowered.status());
      return;
    }
    if (*lowered) {
      actor.io = std::make_unique<Actor::Io>(std::move(staged),
                                             &system_.tracer(),
                                             actor.client->timeline());
      actor.io->cursor.set_qos(system_.qos_tag(tenant_class));
      return;
    }
    ++actor.step;  // nothing to do (e.g. DISABLEd dump)
    return;
  }

  // Control step: one atomic slice.
  Status status = step.fn ? step.fn(ctx) : Status::Ok();
  if (!status.ok()) {
    finish_workload(actor, std::move(status));
    return;
  }
  ++actor.step;
}

Fleet::ConflictKey Fleet::next_key(const Actor& actor) const {
  if (actor.io != nullptr) {
    cache::ReadCache* cache = system_.cache();
    if (cache != nullptr &&
        actor.io->staged.access.endpoint == &cache->endpoint()) {
      return ConflictKey::kCache;
    }
    // Remote disk and remote tape share the SRB server CPU (and its
    // connection state), so they form one conflict class.
    return actor.io->staged.access.endpoint ==
                   &system_.endpoint(Location::kLocalDisk)
               ? ConflictKey::kLocalDisk
               : ConflictKey::kRemoteServer;
  }
  // Lowering, control steps, metadata commits: touch catalog / tracker /
  // session state — exclusive.
  return ConflictKey::kExclusive;
}

namespace {
/// (virtual now, actor index): the scheduling order. Ties resolve to the
/// lower actor index, so replays are exactly reproducible.
using HeapEntry = std::pair<simkit::SimTime, std::size_t>;
using MinHeap =
    std::priority_queue<HeapEntry, std::vector<HeapEntry>, std::greater<>>;
}  // namespace

void Fleet::drain_serial(Actor* only) {
  MinHeap heap;
  if (only != nullptr) {
    if (runnable(*only)) heap.push({only->client->timeline().now(), only->index});
  } else {
    for (const auto& actor : actors_) {
      if (runnable(*actor)) {
        heap.push({actor->client->timeline().now(), actor->index});
      }
    }
  }
  while (!heap.empty()) {
    Actor& actor = *actors_[heap.top().second];
    heap.pop();
    if (!runnable(actor)) continue;
    run_slice(actor);
    if (runnable(actor) && (only == nullptr || &actor == only)) {
      heap.push({actor.client->timeline().now(), actor.index});
    }
  }
}

void Fleet::drain_pool() {
  ThreadPool pool(static_cast<std::size_t>(options_.workers));
  std::mutex mutex;
  std::condition_variable idle_cv;
  MinHeap heap;
  std::array<int, 4> in_flight{};  // per ConflictKey
  int in_flight_total = 0;

  for (const auto& actor : actors_) {
    if (runnable(*actor)) {
      heap.push({actor->client->timeline().now(), actor->index});
    }
  }

  auto conflicted = [&](ConflictKey key) {
    if (key == ConflictKey::kExclusive) return in_flight_total > 0;
    return in_flight[static_cast<std::size_t>(ConflictKey::kExclusive)] > 0 ||
           in_flight[static_cast<std::size_t>(key)] > 0;
  };

  // Dispatches from the heap top while it does not conflict with in-flight
  // slices. Never skips a blocked top: dispatch order stays the global
  // virtual-time order. Runs under `mutex`.
  std::function<void()> pump = [&] {
    while (!heap.empty()) {
      Actor& actor = *actors_[heap.top().second];
      if (!runnable(actor)) {
        heap.pop();
        continue;
      }
      const ConflictKey key = next_key(actor);
      if (conflicted(key)) break;
      heap.pop();
      ++in_flight[static_cast<std::size_t>(key)];
      ++in_flight_total;
      pool.submit([this, &actor, key, &mutex, &idle_cv, &heap, &in_flight,
                   &in_flight_total, &pump] {
        run_slice(actor);
        std::lock_guard<std::mutex> lock(mutex);
        --in_flight[static_cast<std::size_t>(key)];
        --in_flight_total;
        if (runnable(actor)) {
          heap.push({actor.client->timeline().now(), actor.index});
        }
        pump();
        // Notify under the lock: the waiter owns the cv's storage and may
        // destroy it the moment it observes idle, so an unlocked notify
        // races with that destruction.
        idle_cv.notify_all();
      });
    }
  };

  {
    std::lock_guard<std::mutex> lock(mutex);
    pump();
  }
  std::unique_lock<std::mutex> lock(mutex);
  idle_cv.wait(lock, [&] { return in_flight_total == 0 && heap.empty(); });
}

void Fleet::run_until_idle() {
  if (options_.workers > 1) {
    drain_pool();
    return;
  }
  drain_serial(nullptr);
}

void Fleet::run_client(Client& client) {
  Actor* actor = actor_of(client);
  if (actor != nullptr) drain_serial(actor);
}

}  // namespace msra::core
