// core::Client: one tenant of the multi-tenant core.
//
// A Client bundles everything one user of a shared StorageSystem owns
// privately: a name, a virtual clock, and a Session. N clients over one
// system model N concurrent users — each advances its own Timeline, and
// the only coupling between them is contention on the shared simkit
// resources (disk arms, server CPU, WAN pipes, tape drives):
//
//   StorageSystem system(profile);              // the shared substrate
//   Client alice("alice", system, {...});       // producer
//   Client bob("bob", system, {...});           // analysis consumer
//   ... alice and bob issue I/O from separate host threads ...
//
// Each client's elapsed() is its per-tenant virtual latency; the system's
// resource_loads() shows where the tenants queued on each other.
#pragma once

#include <string>

#include "core/session.h"
#include "simkit/timeline.h"

namespace msra::core {

/// Thread-safety: one Client belongs to one host thread at a time (its
/// Timeline and Session are internally synchronized, but interleaving two
/// host threads on one clock rarely means anything). Distinct Clients are
/// fully independent and may run concurrently over one StorageSystem.
class Client {
 public:
  /// Connects the client to the shared system; `options.user` defaults to
  /// the client name when left at the SessionOptions default.
  Client(std::string name, StorageSystem& system, SessionOptions options = {});

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  const std::string& name() const { return name_; }
  simkit::Timeline& timeline() { return timeline_; }
  Session& session() { return session_; }

  /// Virtual seconds this client's clock has accumulated.
  simkit::SimTime elapsed() const { return timeline_.now(); }

  // Forwarders for the common session flow.
  StatusOr<DatasetHandle*> open(const DatasetDesc& desc) {
    return session_.open(desc);
  }
  StatusOr<DatasetHandle*> open_existing(const std::string& dataset,
                                         const OpenOptions& options = {}) {
    return session_.open_existing(dataset, options);
  }
  Status finalize() { return session_.finalize(); }

 private:
  std::string name_;
  simkit::Timeline timeline_;
  Session session_;
};

}  // namespace msra::core
