// core::Client: one tenant of the multi-tenant core.
//
// A Client bundles everything one user of a shared StorageSystem owns
// privately: a name, a Session, and the session's virtual clock. N clients
// over one system model N concurrent users — each advances its own
// Timeline, and the only coupling between them is contention on the shared
// simkit resources (disk arms, server CPU, WAN pipes, tape drives).
//
// Two ways to drive a client:
//
//   // Synchronous (thread-per-tenant, PR 5 style):
//   Client alice("alice", system, {...});
//   auto* temp = alice.open(desc);            // blocks, advances alice's clock
//
//   // Event-driven (fleet style, scales to 100k tenants):
//   Fleet fleet(system);
//   Client& bob = fleet.add_client("bob");
//   Completion* c = bob.submit(Workload().open_existing("temp")
//                                        .read_whole("temp", 0)
//                                        .finalize());
//   fleet.run_until_idle();
//
// The synchronous calls are implemented as submit + a one-actor drain of
// the client's own fleet, so both forms execute the same scheduler path.
// Each client's elapsed() is its per-tenant virtual latency; the system's
// resource_loads() shows where the tenants queued on each other.
#pragma once

#include <memory>
#include <string>

#include "core/fleet.h"
#include "core/session.h"
#include "simkit/timeline.h"

namespace msra::core {

/// Thread-safety: one Client belongs to one host thread at a time (its
/// Timeline and Session are internally synchronized, but interleaving two
/// host threads on one clock rarely means anything). Distinct Clients are
/// fully independent and may run concurrently over one StorageSystem.
class Client {
 public:
  /// Connects a standalone client to the shared system; `options.user`
  /// defaults to the client name when left at the SessionOptions default.
  Client(std::string name, StorageSystem& system, SessionOptions options = {});
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  const std::string& name() const { return name_; }
  simkit::Timeline& timeline() { return session_.timeline(); }
  Session& session() { return session_; }
  Fleet& fleet() { return *fleet_; }

  /// Virtual seconds this client's clock has accumulated.
  simkit::SimTime elapsed() const { return session_.timeline().now(); }

  /// Enqueues a workload on this client's actor. It runs when the owning
  /// fleet is pumped (run_until_idle) — or, for a standalone client, on
  /// the next synchronous call, which drains the private one-actor fleet.
  Completion* submit(Workload workload) {
    return fleet_->submit(*this, std::move(workload));
  }

  // Synchronous session flow: each call submits the equivalent workload
  // and drains this client's actor to completion.
  StatusOr<DatasetHandle*> open(const DatasetDesc& desc);
  StatusOr<DatasetHandle*> open_existing(const std::string& dataset,
                                         const OpenOptions& options = {});
  Status finalize();

 private:
  friend class Fleet;
  /// Fleet-owned client (Fleet::add_client).
  Client(std::string name, StorageSystem& system, SessionOptions options,
         Fleet* fleet);

  std::string name_;
  Session session_;
  std::unique_ptr<Fleet> owned_fleet_;  ///< standalone clients only
  Fleet* fleet_;
  std::size_t actor_index_ = 0;  ///< this client's actor in fleet_
};

}  // namespace msra::core
