// The single public surface of the MSRA library.
//
// Examples, benches, and tools program against this header instead of
// reaching into the internal layering. The supported surface is:
//
//   StorageSystem  — the shared multi-storage substrate (core/system.h)
//   Session        — one run's metadata scope and handles (core/session.h)
//   Client         — one tenant: session + virtual clock (core/client.h)
//   Fleet          — the event-driven tenant runtime: Workload, Completion
//                    (core/fleet.h)
//   options        — ReadOptions / OpenOptions / ReplicateOptions /
//                    SessionOptions / FleetOptions (core/options.h et al.)
//   Status         — error handling: Status / StatusOr (common/status.h)
//
// Subsystems below this line (runtime plans, simkit, srb, predict, obs)
// are internal: their headers may change without notice. The predictor and
// observability layers have their own opt-in surfaces (predict/predictor.h,
// obs/report.h) for tools that price plans or render reports.
#pragma once

#include "common/status.h"
#include "core/client.h"
#include "core/fleet.h"
#include "core/options.h"
#include "core/session.h"
#include "core/system.h"
