// core::Fleet: the event-driven tenant runtime.
//
// PR 5's multi-tenant core binds each Client to a host thread, which caps
// contention experiments at a few dozen tenants. A Fleet multiplexes N
// lightweight tenant actors onto one host thread (or a small worker pool):
// each actor owns a Client (name + session + virtual clock) and a queue of
// submitted Workloads; the scheduler repeatedly runs one *slice* of the
// actor whose clock reads the earliest virtual time (a min-heap of
// (Timeline::now, actor)), so contention on the shared simkit::Resources
// resolves in deterministic virtual-time order, not host-thread order.
//
//   StorageSystem system(profile);
//   Fleet fleet(system);
//   for (int i = 0; i < 100'000; ++i) {
//     Client& c = fleet.add_client("tenant" + std::to_string(i));
//     completions.push_back(c.submit(Workload()
//         .open_existing("frame")
//         .read_whole("frame", /*timestep=*/0)
//         .finalize()));
//   }
//   fleet.run_until_idle();
//   // completions[i]->latency() is tenant i's per-tenant virtual latency.
//
// A slice is one workload step — except staged I/O steps, which lower to an
// IoPlan once and then yield between plan stages through a
// runtime::PlanCursor, so a tenant mid-transfer never blocks the fleet.
// The synchronous Client calls (open/open_existing/finalize) are themselves
// implemented as a one-actor fleet drain, so both APIs share one code path.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/session.h"
#include "obs/trace.h"
#include "simkit/timeline.h"

namespace msra::flow {
class Campaign;
struct CampaignOptions;
struct CampaignReport;
}  // namespace msra::flow

namespace msra::core {

class Client;
class Fleet;
class TenantContext;

/// Result slot of one submitted Workload. Owned by the Fleet (stable
/// pointer, valid until the Fleet is destroyed); filled when the workload
/// finishes. All times are virtual seconds on the tenant's clock.
class Completion {
 public:
  bool done() const { return done_; }
  const Status& status() const { return status_; }
  simkit::SimTime submitted_at() const { return submitted_at_; }
  simkit::SimTime finished_at() const { return finished_at_; }
  /// Virtual seconds from submit to finish.
  simkit::SimTime latency() const { return finished_at_ - submitted_at_; }

 private:
  friend class Fleet;
  bool done_ = false;
  Status status_ = Status::Ok();
  simkit::SimTime submitted_at_ = 0.0;
  simkit::SimTime finished_at_ = 0.0;
};

/// What a workload step sees: its tenant's client, session, and clock.
class TenantContext {
 public:
  Client& client() { return *client_; }
  Session& session();
  simkit::Timeline& timeline();
  StorageSystem& system();
  /// The tenant's open handle for `dataset` (nullptr before open / after
  /// finalize) — steps resolve datasets by name, never by cached pointer.
  DatasetHandle* handle(const std::string& dataset);

 private:
  friend class Fleet;
  explicit TenantContext(Client* client) : client_(client) {}
  Client* client_;
};

/// A staged I/O step under construction: the lowered access plus the
/// buffers it transfers, owned here so they stay alive across yields.
struct StagedIo {
  StagedAccess access;
  std::vector<std::byte> out;  ///< receives read payloads
  std::vector<std::byte> in;   ///< feeds write payloads
  std::string span_label;      ///< tracer span around the whole access ("" = none)
};

/// A tenant's scripted work: an ordered list of steps the scheduler runs
/// one slice at a time. Steps either run atomically (control steps: open,
/// finalize, arbitrary callbacks) or lower to an IoPlan and yield between
/// its stages. The first failing step fails the workload; the remaining
/// steps are skipped (the Completion carries the error).
class Workload {
 public:
  /// What a staged step will move, recorded at build time: the admission
  /// controller prices these against the live load before the workload is
  /// allowed onto the fleet (the step lambdas themselves are opaque).
  struct IoIntent {
    enum class Kind { kRead, kWrite };
    Kind kind = Kind::kRead;
    std::string dataset;
    int timestep = 0;
  };

  /// Tag recorded with the completion metrics ("fleet.latency.<tag>");
  /// benches use it to split latency distributions by tenant role.
  Workload& tagged(std::string tag);

  /// Overrides the submitting client's service class for this workload
  /// only (e.g. one background prefetch from an otherwise interactive
  /// tenant).
  Workload& classed(qos::TenantClass cls);

  /// The override, or nullopt (the client's class applies).
  const std::optional<qos::TenantClass>& tenant_class() const {
    return class_;
  }

  /// The staged transfers recorded by dump/read_whole/read_box, in step
  /// order. Control steps record nothing.
  const std::vector<IoIntent>& intents() const { return intents_; }

  /// Atomic step running an arbitrary callback on the tenant.
  Workload& then(std::string label, std::function<Status(TenantContext&)> fn);

  /// Session flow sugar.
  Workload& open(DatasetDesc desc);
  Workload& open_existing(std::string dataset, OpenOptions options = {});
  Workload& finalize();

  /// Staged serial whole-object dump of one timestep (single-rank producer
  /// path; the payload is a fill pattern — virtual time only depends on its
  /// size). No-op for DISABLEd datasets, like write_timestep.
  Workload& dump(std::string dataset, int timestep);

  /// Staged whole-array read.
  Workload& read_whole(std::string dataset, int timestep);

  /// Staged sub-array read. `options.streams` must be 0 (staged reads
  /// cannot reshape the shared endpoint fast path) and `options.timeline`
  /// must be null (a fleet actor always runs on its own clock).
  Workload& read_box(std::string dataset, int timestep, prt::LocalBox box,
                     ReadOptions options = {});

  bool empty() const { return steps_.empty(); }

 private:
  friend class Fleet;
  struct Step {
    std::string label;
    /// Atomic step: runs in one slice.
    std::function<Status(TenantContext&)> fn;
    /// Staged I/O step: lowers once (returns false when there is nothing
    /// to do), then the scheduler steps the plan's stages.
    std::function<StatusOr<bool>(TenantContext&, StagedIo&)> lower;
    /// Runs after the staged plan finished ok (metadata commit).
    std::function<Status(TenantContext&)> finish;
  };
  std::string tag_;
  std::optional<qos::TenantClass> class_;
  std::vector<IoIntent> intents_;
  std::vector<Step> steps_;
};

struct FleetOptions {
  /// Host threads driving slices. 1 (the default) runs every slice on the
  /// caller's thread in strict global virtual-time order — fully
  /// deterministic, what benches and baselines use. Greater than 1 runs
  /// non-conflicting slices concurrently on a pool: virtual-time ordering
  /// is then enforced per dispatch decision but completion interleavings
  /// may reorder same-resource bookings across runs (see DESIGN.md §5h),
  /// so pool mode is for host-parallel throughput and TSan stress, not for
  /// byte-stable baselines.
  int workers = 1;
};

/// Thread-safety: add_client/submit/run_until_idle belong to one driver
/// thread (the fleet's owner); with workers > 1 the fleet itself fans
/// slices out internally. Distinct Fleets over one StorageSystem are
/// independent and may run from concurrent host threads — tenants then
/// contend on the shared resources exactly like PR 5's thread-per-client
/// tenants did.
class Fleet {
 public:
  explicit Fleet(StorageSystem& system, FleetOptions options = {});
  ~Fleet();

  Fleet(const Fleet&) = delete;
  Fleet& operator=(const Fleet&) = delete;

  StorageSystem& system() { return system_; }

  /// Creates (and owns) a tenant client; `options.user` defaults to the
  /// client name. The reference stays valid until the Fleet is destroyed.
  Client& add_client(std::string name, SessionOptions options = {});

  /// Admission gate consulted by submit(): non-OK keeps the workload off
  /// the fleet — its Completion is immediately done with that status.
  /// qos::AdmissionController::attach installs one; null (the default)
  /// admits everything.
  using AdmissionHook = std::function<Status(Client&, const Workload&)>;

  /// Installs/clears the admission gate (control plane: set it before
  /// pumping the fleet).
  void set_admission(AdmissionHook hook) { admission_ = std::move(hook); }

  /// Enqueues `workload` on `client`'s actor (the client must belong to
  /// this fleet). Returns the fleet-owned completion slot. With an
  /// admission hook installed, a rejected workload never reaches the
  /// actor: the completion carries the hook's status (and
  /// `fleet.rejected` counts it).
  Completion* submit(Client& client, Workload workload);

  /// Runs slices in virtual-time order until every actor's queue is empty.
  void run_until_idle();

  /// Runs a whole flow::Campaign DAG in dependency-wave order: one tenant
  /// actor per stage, consumer clocks held to their producers' finishes
  /// (and to prestaged-input availability when the options carry a
  /// flow::StagingScheduler). Defined in flow/run.cpp; see flow/run.h for
  /// the option and report types.
  StatusOr<flow::CampaignReport> submit_campaign(const flow::Campaign& campaign);
  StatusOr<flow::CampaignReport> submit_campaign(
      const flow::Campaign& campaign, const flow::CampaignOptions& options);

  /// Number of workloads that finished (ok or failed) so far.
  std::uint64_t completed() const {
    return completed_.load(std::memory_order_relaxed);
  }

 private:
  friend class Client;

  struct Actor;

  /// Registers an externally-owned client (the synchronous Client API runs
  /// as a one-actor fleet over the client's own storage).
  void attach(Client* client);

  /// Drains only `client`'s actor (synchronous Client calls).
  void run_client(Client& client);

  Actor* actor_of(Client& client);
  bool runnable(const Actor& actor) const;
  void run_slice(Actor& actor);
  void start_next(Actor& actor);
  void finish_workload(Actor& actor, Status status);
  void drain_serial(Actor* only);
  void drain_pool();

  /// Conflict class of an actor's next slice (pool mode): control slices
  /// are exclusive; plan stages key on the endpoint they drive. The cache
  /// is its own class: node-local, internally synchronized, touching no
  /// shared simkit device.
  enum class ConflictKey { kExclusive, kLocalDisk, kRemoteServer, kCache };
  ConflictKey next_key(const Actor& actor) const;

  StorageSystem& system_;
  FleetOptions options_;
  AdmissionHook admission_;
  std::vector<std::unique_ptr<Client>> owned_clients_;
  std::vector<std::unique_ptr<Actor>> actors_;
  std::deque<Completion> completions_;  ///< stable pointers
  std::atomic<std::uint64_t> completed_{0};
};

}  // namespace msra::core
