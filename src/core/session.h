// Session & DatasetHandle: the user-facing API of the multi-storage
// resource architecture (the I/O flow of the paper's Fig. 5).
//
//   Session session(system, {...});          // initialization()
//   auto* temp = session.open(desc);          // open with location hint
//   temp->write_timestep(comm, t, local);     // optimized parallel write
//   ...
//   session.finalize();                       // finalization()
//
// open() resolves the location hint through the placement policy, registers
// the dataset in the metadata database, and returns a handle that routes
// reads/writes through the run-time optimization library for the chosen
// resource. Consumers (data analysis, visualization) locate datasets
// through the same metadata, so they read from wherever the producer's hint
// placed the data.
#pragma once

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "core/catalog.h"
#include "core/options.h"
#include "core/placement.h"
#include "prt/comm.h"
#include "runtime/sieve.h"
#include "runtime/subfile.h"

namespace msra::predict {
class Predictor;
}

namespace msra::core {

class Session;

/// The replica a read resolved to: the catalog row plus the concrete
/// location chosen among its live replicas.
struct ReplicaChoice {
  InstanceRecord record;
  Location location = Location::kRemoteTape;
};

/// Per-dataset handle. Producer calls are collective (every rank of the
/// Comm participates); consumer helpers are serial and run on the caller's
/// timeline.
class DatasetHandle {
 public:
  const DatasetDesc& desc() const { return desc_; }
  Location location() const { return location_; }
  bool enabled() const { return location_ != Location::kDisable; }

  /// Object path of one timestep ("app/dataset/t42", or "app/dataset/restart"
  /// for over_write datasets).
  std::string path_for(int timestep) const;

  /// Collective write of the distributed array at `timestep`. `local` is
  /// the rank's block (row-major over its box). No-op for DISABLEd
  /// datasets. On resource outage or exhaustion the handle fails over to
  /// the next candidate resource and retries (updating the metadata).
  Status write_timestep(prt::Comm& comm, int timestep,
                        std::span<const std::byte> local);

  /// Collective read of `timestep` into each rank's block.
  Status read_timestep(prt::Comm& comm, int timestep, std::span<std::byte> local);

  /// Serial whole-array read (post-processing tools).
  StatusOr<std::vector<std::byte>> read_whole(simkit::Timeline& timeline,
                                              int timestep);

  /// Serial sub-array read (visualization slices etc.). Uses sieving or
  /// direct requests per `options.strategy`; subfile-chunked datasets read
  /// only touched chunks.
  Status read_box(simkit::Timeline& timeline, int timestep,
                  const prt::LocalBox& box, std::span<std::byte> out,
                  const ReadOptions& options = {});

  /// The decomposition this handle uses for `nprocs` ranks.
  StatusOr<runtime::ArrayLayout> layout(int nprocs) const;

  /// Storage spec of the global array.
  runtime::GlobalArraySpec spec() const;

  /// Enables subfile storage: each timestep is stored as chunks[0] x
  /// chunks[1] x chunks[2] chunk objects instead of one object. Must be set
  /// before the first write.
  Status set_subfile_chunks(const std::array<int, 3>& chunks);

  /// Copies one dumped timestep to another storage resource and records the
  /// replica in the metadata. When source and destination live on the same
  /// remote server (disk <-> tape), the copy happens server-side — no WAN
  /// transfer for the payload (SRB-style replication). Reads automatically
  /// prefer the fastest available replica afterwards. Not supported for
  /// subfile-chunked datasets.
  Status replicate_timestep(simkit::Timeline& timeline, int timestep,
                            Location destination);

  /// Replica locations of one timestep (metadata view).
  std::vector<Location> replica_locations(int timestep) const;

  std::uint64_t timesteps_written() const { return writes_.load(); }

 private:
  friend class Session;
  DatasetHandle(Session* session, std::string app, DatasetDesc desc,
                Location location)
      : session_(session),
        app_(std::move(app)),
        desc_(std::move(desc)),
        location_(location) {}

  /// Attempts the write on the current location; on outage/full, re-place
  /// and retry.
  Status write_with_failover(prt::Comm& comm, int timestep,
                             std::span<const std::byte> local);

  Status write_subfiled(prt::Comm& comm, const std::string& base,
                        std::span<const std::byte> local);

  /// Instance lookup for reads: picks the cheapest *available* replica —
  /// by predictor quote over the whole-object read plan when the session
  /// has a predictor attached, by static speed order (local disk > remote
  /// disk > remote tape) otherwise — falling back to the primary record
  /// (consumers may open after a failover moved the data).
  StatusOr<ReplicaChoice> locate(int timestep) const;

  Session* session_;
  std::string app_;  ///< producer application owning the stored objects
  DatasetDesc desc_;
  Location location_;
  std::array<int, 3> subfile_chunks_ = {1, 1, 1};
  std::atomic<std::uint64_t> writes_{0};
  /// Handle-wide default for ReadOptions::streams (OpenOptions::streams).
  int default_streams_ = 0;
};

/// Session options (who runs what, on how many processors, for how long).
struct SessionOptions {
  std::string application = "app";
  std::string user = "user";
  std::string affiliation = "nwu";
  int nprocs = 1;
  int iterations = 1;
  /// Optional (not owned, must outlive the session): replica selection on
  /// reads quotes each live replica with this predictor and takes the
  /// cheapest, instead of the static speed order.
  const predict::Predictor* predictor = nullptr;
};

/// Thread-safety: a Session's own state transitions (open, open_existing,
/// finalize, double-finalize) are safe to call from concurrent host threads;
/// a handle returned by open() stays valid until finalize(). finalize()
/// invalidates every handle — callers must not race in-flight I/O on a
/// handle against the finalize() that destroys it (the usual rule for
/// close-like APIs). Distinct Sessions over one StorageSystem are fully
/// independent and may run concurrently (the multi-tenant core).
class Session {
 public:
  /// initialization(): connects the metadata database and registers the
  /// user + application.
  Session(StorageSystem& system, SessionOptions options);
  ~Session();

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  /// Opens (registers) a dataset for this run. The location hint in `desc`
  /// is resolved immediately; the decision lands in the metadata database.
  /// On ok() the handle is never null (see core/options.h). Fails with
  /// kFailedPrecondition after finalize().
  StatusOr<DatasetHandle*> open(const DatasetDesc& desc);

  /// Opens a dataset registered by an earlier producer session (consumer
  /// side); the descriptor and resolved location come from the metadata.
  /// On ok() the handle is never null (see core/options.h). Fails with
  /// kFailedPrecondition after finalize().
  StatusOr<DatasetHandle*> open_existing(const std::string& name,
                                         const OpenOptions& options = {});

  /// finalization(): flushes metadata and destroys all open handles.
  /// Idempotent; concurrent calls are safe (one wins, the rest no-op).
  Status finalize();

  /// True once finalize() ran (a snapshot; another thread may be
  /// finalizing concurrently).
  bool finalized() const;

  StorageSystem& system() { return system_; }
  MetaCatalog& catalog() { return catalog_; }
  const SessionOptions& options() const { return options_; }

 private:
  friend class DatasetHandle;

  StorageSystem& system_;
  SessionOptions options_;
  MetaCatalog catalog_;
  mutable std::mutex mutex_;  ///< guards handles_ and finalized_
  std::map<std::string, std::unique_ptr<DatasetHandle>> handles_;
  bool finalized_ = false;
};

}  // namespace msra::core
