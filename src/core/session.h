// Session & DatasetHandle: the user-facing API of the multi-storage
// resource architecture (the I/O flow of the paper's Fig. 5).
//
//   Session session(system, {...});          // initialization()
//   auto* temp = session.open(desc);          // open with location hint
//   temp->write_timestep(comm, t, local);     // optimized parallel write
//   ...
//   session.finalize();                       // finalization()
//
// open() resolves the location hint through the placement policy, registers
// the dataset in the metadata database, and returns a handle that routes
// reads/writes through the run-time optimization library for the chosen
// resource. Consumers (data analysis, visualization) locate datasets
// through the same metadata, so they read from wherever the producer's hint
// placed the data.
#pragma once

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>

#include "core/catalog.h"
#include "core/options.h"
#include "core/placement.h"
#include "prt/comm.h"
#include "qos/tenant.h"
#include "runtime/plan.h"
#include "runtime/sieve.h"
#include "runtime/subfile.h"
#include "simkit/timeline.h"

namespace msra::predict {
class Predictor;
}

namespace msra::core {

class Session;

/// The replica a read resolved to: the catalog row, the server-qualified
/// address chosen among its live replicas, and the full balancer-ordered
/// chain (best first) — the read failover order when a server drops
/// mid-run.
struct ReplicaChoice {
  InstanceRecord record;
  ReplicaAddress address;
  std::vector<ReplicaAddress> chain;

  Location location() const { return address.location; }
};

/// A read that missed the mid-tier cache carries this ticket: after the
/// payload landed, the executor (read_whole or the fleet scheduler) offers
/// it to the cache, which prices admission against a refetch from `origin`.
struct CacheOffer {
  std::string path;         ///< stored object the payload came from
  std::string dataset_key;  ///< "app/dataset" (heat / invalidation key)
  Location origin = Location::kRemoteTape;  ///< replica the read resolved to
};

/// One lowered serial access, ready for stepwise execution: the plan plus
/// the endpoint it runs against. Produced by DatasetHandle::stage_*; the
/// fleet scheduler drives it a stage at a time through a
/// runtime::PlanCursor so tenant actors yield between stages.
struct StagedAccess {
  runtime::IoPlan plan;
  runtime::StorageEndpoint* endpoint = nullptr;
  /// Cache-hit plans pin the served snapshot here so write-through
  /// invalidation between lowering and execution cannot free the bytes
  /// mid-read (POSIX-unlink semantics).
  std::shared_ptr<const void> cache_pin;
  /// Present on cache misses of cacheable whole-object reads.
  std::optional<CacheOffer> cache_offer;
};

/// Per-dataset handle. Producer calls are collective (every rank of the
/// Comm participates); consumer helpers are serial and run on the caller's
/// timeline.
class DatasetHandle {
 public:
  const DatasetDesc& desc() const { return desc_; }
  Location location() const { return address_.location; }
  /// The server-qualified write target (reads route per replica through the
  /// balancer instead).
  ReplicaAddress address() const { return address_; }
  bool enabled() const { return address_.location != Location::kDisable; }

  /// Object path of one timestep ("app/dataset/t42", or "app/dataset/restart"
  /// for over_write datasets).
  std::string path_for(int timestep) const;

  /// Collective write of the distributed array at `timestep`. `local` is
  /// the rank's block (row-major over its box). No-op for DISABLEd
  /// datasets. On resource outage or exhaustion the handle fails over to
  /// the next candidate resource and retries (updating the metadata).
  Status write_timestep(prt::Comm& comm, int timestep,
                        std::span<const std::byte> local);

  /// Collective read of `timestep` into each rank's block.
  Status read_timestep(prt::Comm& comm, int timestep, std::span<std::byte> local);

  /// Serial whole-array read (post-processing tools). Runs on the owning
  /// session's timeline unless `options.timeline` overrides it.
  StatusOr<std::vector<std::byte>> read_whole(int timestep,
                                              const ReadOptions& options = {});

  /// Serial sub-array read (visualization slices etc.). Uses sieving or
  /// direct requests per `options.strategy`; subfile-chunked datasets read
  /// only touched chunks. Runs on the owning session's timeline unless
  /// `options.timeline` overrides it.
  Status read_box(int timestep, const prt::LocalBox& box,
                  std::span<std::byte> out, const ReadOptions& options = {});

  // ----------------------------------------------------- staged (async) --
  // The stage_* entry points lower an access without executing it, so the
  // fleet scheduler can run the returned plan a stage at a time (yielding
  // between stages). Lowering performs the same replica selection and heat
  // accounting as the synchronous calls; the synchronous calls are
  // implemented on top of these, so the two paths cannot drift.

  /// Lowers a whole-array read of `timestep`. The caller executes the plan
  /// into a buffer of desc().global_bytes(). Unimplemented for
  /// subfile-chunked datasets (their read path is a chunk loop, not a
  /// single plan).
  StatusOr<StagedAccess> stage_read_whole(int timestep,
                                          const ReadOptions& options = {});

  /// Lowers a sub-array read of `box` into a buffer of `buffer_bytes`.
  /// `options.streams` is ignored: a staged plan must not reshape the
  /// shared endpoint's fast path while other actors interleave with it.
  StatusOr<StagedAccess> stage_read_box(int timestep, const prt::LocalBox& box,
                                        std::size_t buffer_bytes,
                                        const ReadOptions& options = {});

  /// Lowers a serial whole-object dump of `timestep` (the single-rank
  /// producer path; collective dumps stay on write_timestep). The caller
  /// feeds a buffer of desc().global_bytes() and, after the plan executed
  /// ok, records the instance with commit_dump(). Fails on DISABLEd
  /// handles and subfile-chunked datasets.
  StatusOr<StagedAccess> stage_dump(int timestep);

  /// Metadata half of a staged dump: records the instance + access heat at
  /// virtual instant `now` and bumps timesteps_written().
  Status commit_dump(int timestep, simkit::SimTime now);

  /// The decomposition this handle uses for `nprocs` ranks.
  StatusOr<runtime::ArrayLayout> layout(int nprocs) const;

  /// Storage spec of the global array.
  runtime::GlobalArraySpec spec() const;

  /// Enables subfile storage: each timestep is stored as chunks[0] x
  /// chunks[1] x chunks[2] chunk objects instead of one object. Must be set
  /// before the first write.
  Status set_subfile_chunks(const std::array<int, 3>& chunks);

  /// Copies one dumped timestep to another storage address and records the
  /// replica in the metadata (a bare Location means server 0). When source
  /// and destination live on the same SRB server (disk <-> tape), the copy
  /// happens server-side — no WAN transfer for the payload (SRB-style
  /// replication). Reads automatically prefer the cheapest available
  /// replica afterwards. Not supported for subfile-chunked datasets. Runs
  /// on the owning session's timeline unless `options.timeline` overrides
  /// it.
  Status replicate_timestep(int timestep, ReplicaAddress destination,
                            const ReplicateOptions& options = {});

  /// Replica addresses of one timestep (metadata view).
  std::vector<ReplicaAddress> replica_addresses(int timestep) const;

  std::uint64_t timesteps_written() const { return writes_.load(); }

 private:
  friend class Session;
  DatasetHandle(Session* session, std::string app, DatasetDesc desc,
                ReplicaAddress address)
      : session_(session),
        app_(std::move(app)),
        desc_(std::move(desc)),
        address_(address) {}

  /// Attempts the write on the current location; on outage/full, re-place
  /// and retry.
  Status write_with_failover(prt::Comm& comm, int timestep,
                             std::span<const std::byte> local);

  Status write_subfiled(prt::Comm& comm, const std::string& base,
                        std::span<const std::byte> local);

  /// Instance lookup for reads: routes the live replica set through the
  /// system's Balancer — cheapest predictor quote (load-aware across
  /// servers) when the session has a predictor attached, static speed
  /// order (local disk > remote disk > remote tape, then server index)
  /// otherwise — falling back to the primary record (consumers may open
  /// after a failover moved the data).
  StatusOr<ReplicaChoice> locate(int timestep) const;

  /// The clock a serial call runs on: the explicit override, else the
  /// owning session's timeline.
  simkit::Timeline& timeline_or_session(simkit::Timeline* timeline) const;

  /// Shared lowering of read_box / stage_read_box (everything but the
  /// streams override, which only the synchronous path may apply).
  StatusOr<StagedAccess> lower_read_box(int timestep, const prt::LocalBox& box,
                                        std::size_t buffer_bytes,
                                        const ReadOptions& options,
                                        simkit::Timeline& timeline);

  Session* session_;
  std::string app_;  ///< producer application owning the stored objects
  DatasetDesc desc_;
  ReplicaAddress address_;  ///< current write target (class + server)
  std::array<int, 3> subfile_chunks_ = {1, 1, 1};
  std::atomic<std::uint64_t> writes_{0};
  /// Handle-wide default for ReadOptions::streams (OpenOptions::streams).
  int default_streams_ = 0;
};

/// Session options (who runs what, on how many processors, for how long).
struct SessionOptions {
  std::string application = "app";
  std::string user = "user";
  std::string affiliation = "nwu";
  int nprocs = 1;
  int iterations = 1;
  /// Optional (not owned, must outlive the session): replica selection on
  /// reads quotes each live replica with this predictor and takes the
  /// cheapest, instead of the static speed order.
  const predict::Predictor* predictor = nullptr;
  /// Service class every booking of this session schedules under once the
  /// system has QoS enabled (see StorageSystem::enable_qos). Interactive —
  /// the class untagged traffic already maps to — keeps pre-QoS behavior.
  qos::TenantClass tenant_class = qos::TenantClass::kInteractive;
};

/// Thread-safety: a Session's own state transitions (open, open_existing,
/// finalize, double-finalize) are safe to call from concurrent host threads;
/// a handle returned by open() stays valid until finalize(). finalize()
/// invalidates every handle — callers must not race in-flight I/O on a
/// handle against the finalize() that destroys it (the usual rule for
/// close-like APIs). Distinct Sessions over one StorageSystem are fully
/// independent and may run concurrently (the multi-tenant core).
class Session {
 public:
  /// initialization(): connects the metadata database and registers the
  /// user + application.
  Session(StorageSystem& system, SessionOptions options);
  ~Session();

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  /// Opens (registers) a dataset for this run. The location hint in `desc`
  /// is resolved immediately; the decision lands in the metadata database.
  /// On ok() the handle is never null (see core/options.h). Fails with
  /// kFailedPrecondition after finalize().
  StatusOr<DatasetHandle*> open(const DatasetDesc& desc);

  /// Opens a dataset registered by an earlier producer session (consumer
  /// side); the descriptor and resolved location come from the metadata.
  /// On ok() the handle is never null (see core/options.h). Fails with
  /// kFailedPrecondition after finalize().
  StatusOr<DatasetHandle*> open_existing(const std::string& name,
                                         const OpenOptions& options = {});

  /// finalization(): flushes metadata and destroys all open handles.
  /// Idempotent; concurrent calls are safe (one wins, the rest no-op).
  Status finalize();

  /// True once finalize() ran (a snapshot; another thread may be
  /// finalizing concurrently).
  bool finalized() const;

  /// The handle open() / open_existing() registered under `name`, or
  /// nullptr when it was never opened (or the session is finalized). The
  /// fleet scheduler resolves datasets by name through this, so workload
  /// steps never cache a pointer across finalize().
  DatasetHandle* find_handle(const std::string& name);

  StorageSystem& system() { return system_; }
  MetaCatalog& catalog() { return catalog_; }
  const SessionOptions& options() const { return options_; }

  /// The session's own virtual clock: the default timeline of every serial
  /// DatasetHandle call issued through this session.
  simkit::Timeline& timeline() { return timeline_; }
  const simkit::Timeline& timeline() const { return timeline_; }

 private:
  friend class DatasetHandle;

  StorageSystem& system_;
  SessionOptions options_;
  MetaCatalog catalog_;
  simkit::Timeline timeline_;
  mutable std::mutex mutex_;  ///< guards handles_ and finalized_
  std::map<std::string, std::unique_ptr<DatasetHandle>> handles_;
  bool finalized_ = false;
};

}  // namespace msra::core
