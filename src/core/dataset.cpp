#include "core/dataset.h"

namespace msra::core {

std::size_t element_size(ElementType type) {
  switch (type) {
    case ElementType::kUInt8: return 1;
    case ElementType::kInt32: return 4;
    case ElementType::kFloat32: return 4;
    case ElementType::kFloat64: return 8;
  }
  return 1;
}

std::string_view element_type_name(ElementType type) {
  switch (type) {
    case ElementType::kUInt8: return "uchar";
    case ElementType::kInt32: return "int";
    case ElementType::kFloat32: return "float";
    case ElementType::kFloat64: return "double";
  }
  return "?";
}

StatusOr<ElementType> parse_element_type(std::string_view name) {
  if (name == "uchar") return ElementType::kUInt8;
  if (name == "int") return ElementType::kInt32;
  if (name == "float") return ElementType::kFloat32;
  if (name == "double") return ElementType::kFloat64;
  return Status::InvalidArgument("unknown element type: " + std::string(name));
}

std::string_view access_mode_name(AccessMode mode) {
  switch (mode) {
    case AccessMode::kCreate: return "create";
    case AccessMode::kOverWrite: return "over_write";
    case AccessMode::kRead: return "read";
  }
  return "?";
}

}  // namespace msra::core
