// Options structs for the Session / DatasetHandle API.
//
// Call-site contract (applies to every opener below): Session::open and
// Session::open_existing return StatusOr<DatasetHandle*> whose pointer is
// NEVER null on an ok() status — the handle lives as long as the Session,
// so callers may dereference `*result` without a null check after
// MSRA_ASSIGN_OR_RETURN / ok(). Failure is always expressed through the
// Status, never through a null success value.
//
// Plain enum/string trailing parameters don't scale, so the per-call knobs
// live in small aggregate structs with designated-initializer-friendly
// defaults:
//
//   handle.read_box(t, box, out, {.strategy = AccessStrategy::kDirect});
//   session.open_existing("temperature", {.producer_app = "astro3d"});
//
// Serial consumer calls (read_whole/read_box/replicate_timestep) run on the
// owning session's timeline by default; measurement harnesses that keep a
// dedicated clock per experiment pass {.timeline = &tl} instead.
#pragma once

#include <string>

#include "runtime/sieve.h"

namespace msra::simkit {
class Timeline;
}  // namespace msra::simkit

namespace msra::core {

/// Knobs for DatasetHandle::read_whole / read_box.
struct ReadOptions {
  /// How strided sub-array requests hit storage.
  runtime::AccessStrategy strategy = runtime::AccessStrategy::kSieving;

  /// Concurrent chunk streams for bulk remote transfers. 0 keeps the
  /// handle/endpoint default; >= 1 enables the pipelined fast path for
  /// this read with that many chunk round-trips in flight (1 = chunked
  /// but serial, useful as a control).
  int streams = 0;

  /// Span name recorded in the system tracer for this read. Empty uses the
  /// default ("read_box <dataset>"). (The explicit empty default keeps
  /// partial designated initializers warning-free under -Wextra.)
  std::string trace_label = {};

  /// Clock the access runs on (not owned). Null uses the owning session's
  /// timeline.
  simkit::Timeline* timeline = nullptr;
};

/// Knobs for DatasetHandle::replicate_timestep.
struct ReplicateOptions {
  /// Clock the copy runs on (not owned). Null uses the owning session's
  /// timeline.
  simkit::Timeline* timeline = nullptr;
};

/// Knobs for Session::open_existing.
struct OpenOptions {
  /// Producer application that registered the dataset. Empty means "any":
  /// the catalog is searched by dataset name alone.
  std::string producer_app;

  /// Default `streams` for every read on the returned handle (same
  /// semantics as ReadOptions::streams; per-read options still win).
  int streams = 0;
};

}  // namespace msra::core
