#include "core/balancer.h"

#include <algorithm>

#include "predict/predictor.h"

namespace msra::core {

namespace {

int class_rank(Location location) {
  for (int i = 0; i < static_cast<int>(std::size(kConcreteLocations)); ++i) {
    if (kConcreteLocations[i] == location) return i;
  }
  return static_cast<int>(std::size(kConcreteLocations));
}

}  // namespace

std::string_view balancer_policy_name(BalancerPolicy policy) {
  switch (policy) {
    case BalancerPolicy::kCheapestQuote: return "balanced";
    case BalancerPolicy::kRoundRobin: return "round-robin";
    case BalancerPolicy::kStatic: return "static";
  }
  return "?";
}

StatusOr<BalancerPolicy> parse_balancer_policy(std::string_view name) {
  if (name == "balanced" || name == "cheapest-quote") {
    return BalancerPolicy::kCheapestQuote;
  }
  if (name == "round-robin" || name == "rr") return BalancerPolicy::kRoundRobin;
  if (name == "static") return BalancerPolicy::kStatic;
  return Status::InvalidArgument("unknown balancer policy: " +
                                 std::string(name));
}

void Balancer::static_order(std::vector<ReplicaAddress>& candidates) {
  std::stable_sort(candidates.begin(), candidates.end(),
                   [](ReplicaAddress a, ReplicaAddress b) {
                     const int ra = class_rank(a.location);
                     const int rb = class_rank(b.location);
                     if (ra != rb) return ra < rb;
                     return a.server < b.server;
                   });
}

double Balancer::observed_utilization(ReplicaAddress address) const {
  double u = 0.0;
  switch (address.location) {
    case Location::kLocalDisk:
      u = system_->local_resource().arm().utilization();
      break;
    case Location::kRemoteDisk: {
      ServerSite& site = system_->site(address.server);
      u = std::max({site.disk_resource().arm().utilization(),
                    site.server().cpu().utilization(),
                    site.disk_link().pipe().utilization()});
      break;
    }
    case Location::kRemoteTape: {
      ServerSite& site = system_->site(address.server);
      u = std::max(site.server().cpu().utilization(),
                   site.tape_link().pipe().utilization());
      if (site.hsm() != nullptr) {
        u = std::max(u, site.hsm()->cache_arm().utilization());
      }
      for (auto& [name, resource] : site.tape_library().contended_resources()) {
        (void)name;
        u = std::max(u, resource->utilization());
      }
      break;
    }
    case Location::kAuto:
    case Location::kDisable:
      break;
  }
  return std::clamp(u, 0.0, 1.0);
}

double Balancer::backlog_seconds(ReplicaAddress address) const {
  double backlog = 0.0;
  switch (address.location) {
    case Location::kLocalDisk:
      backlog = system_->local_resource().arm().next_free();
      break;
    case Location::kRemoteDisk: {
      ServerSite& site = system_->site(address.server);
      backlog = std::max({site.disk_resource().arm().next_free(),
                          site.server().cpu().next_free(),
                          site.disk_link().pipe().next_free()});
      break;
    }
    case Location::kRemoteTape: {
      ServerSite& site = system_->site(address.server);
      backlog = std::max(site.server().cpu().next_free(),
                         site.tape_link().pipe().next_free());
      if (site.hsm() != nullptr) {
        backlog = std::max(backlog, site.hsm()->cache_arm().next_free());
      }
      for (auto& [name, resource] : site.tape_library().contended_resources()) {
        (void)name;
        backlog = std::max(backlog, resource->next_free());
      }
      break;
    }
    case Location::kAuto:
    case Location::kDisable:
      break;
  }
  return backlog;
}

std::vector<ReplicaAddress> Balancer::order(
    const runtime::IoPlan& plan, std::vector<ReplicaAddress> candidates,
    const predict::Predictor* predictor) const {
  if (candidates.size() <= 1) return candidates;
  switch (policy()) {
    case BalancerPolicy::kStatic:
      static_order(candidates);
      return candidates;
    case BalancerPolicy::kRoundRobin: {
      static_order(candidates);
      const std::uint64_t turn =
          round_robin_.fetch_add(1, std::memory_order_relaxed);
      std::rotate(candidates.begin(),
                  candidates.begin() +
                      static_cast<std::ptrdiff_t>(turn % candidates.size()),
                  candidates.end());
      return candidates;
    }
    case BalancerPolicy::kCheapestQuote:
      break;
  }
  if (predictor == nullptr) {
    static_order(candidates);
    return candidates;
  }
  // Per-server load only discriminates when there IS more than one server;
  // a single-server cluster quotes dedicated, so the replica choice (and
  // every baseline bench) matches the pre-cluster predictor path exactly.
  const bool load_aware = system_->cluster_size() > 1;
  struct Quoted {
    ReplicaAddress address;
    double seconds = 0.0;
  };
  std::vector<Quoted> quoted;
  quoted.reserve(candidates.size());
  for (ReplicaAddress address : candidates) {
    predict::LoadAssumptions load;
    double backlog = 0.0;
    if (load_aware) {
      load.utilization = observed_utilization(address);
      backlog = backlog_seconds(address);
    }
    auto seconds = predictor->price(plan, address.location, load);
    if (!seconds.ok()) {
      // Curves missing for some class: fall back to the static order.
      static_order(candidates);
      return candidates;
    }
    // Earliest-finish-time rank: the quote a candidate offers is when the
    // read would COMPLETE there — its booked backlog (queue drain) plus the
    // load-inflated service prediction. Backlog is what separates two sites
    // with the same hardware: the one already booked solid quotes late.
    quoted.push_back(Quoted{address, backlog + *seconds});
  }
  std::stable_sort(quoted.begin(), quoted.end(),
                   [](const Quoted& a, const Quoted& b) {
                     return a.seconds < b.seconds;
                   });
  for (std::size_t i = 0; i < quoted.size(); ++i) {
    candidates[i] = quoted[i].address;
  }
  return candidates;
}

std::vector<ServerQuote> Balancer::quote_table(
    std::uint64_t bytes, const predict::Predictor* predictor) const {
  const runtime::IoPlan plan =
      runtime::PlanBuilder::object_read("probe/object", bytes);
  const bool load_aware = system_->cluster_size() > 1;
  std::vector<ServerQuote> rows;
  for (Location location : kConcreteLocations) {
    const int servers =
        location == Location::kLocalDisk ? 1 : system_->cluster_size();
    for (int server = 0; server < servers; ++server) {
      ServerQuote row;
      row.address = ReplicaAddress{location, server};
      row.available = system_->endpoint(row.address).available();
      row.utilization = observed_utilization(row.address);
      if (load_aware) row.backlog = backlog_seconds(row.address);
      if (predictor != nullptr) {
        predict::LoadAssumptions load;
        if (load_aware) load.utilization = row.utilization;
        auto seconds = predictor->price(plan, location, load);
        if (seconds.ok()) row.seconds = row.backlog + *seconds;
      }
      rows.push_back(row);
    }
  }
  return rows;
}

}  // namespace msra::core
