#include "core/session.h"

#include <algorithm>
#include <cstring>
#include <limits>

#include "cache/cache.h"
#include "common/log.h"
#include "core/balancer.h"
#include "obs/trace.h"
#include "predict/predictor.h"
#include "runtime/parallel_io.h"
#include "runtime/plan.h"

namespace msra::core {

// ---------------------------------------------------------------- Session --

Session::Session(StorageSystem& system, SessionOptions options)
    : system_(system), options_(std::move(options)), catalog_(&system.metadb()) {
  Status user_status = catalog_.register_user(options_.user, options_.affiliation);
  Status app_status = catalog_.register_application(
      options_.application, options_.user, options_.nprocs, options_.iterations);
  if (!user_status.ok() || !app_status.ok()) {
    MSRA_LOG(kWarn) << "session registration: " << user_status.to_string()
                    << " / " << app_status.to_string();
  }
}

Session::~Session() { (void)finalize(); }

StatusOr<DatasetHandle*> Session::open(const DatasetDesc& desc) {
  if (desc.name.empty()) return Status::InvalidArgument("dataset needs a name");
  std::lock_guard<std::mutex> lock(mutex_);
  if (finalized_) {
    return Status::FailedPrecondition("session already finalized");
  }
  auto it = handles_.find(desc.name);
  if (it != handles_.end()) return it->second.get();

  // Validate the pattern early so errors surface at open() (Fig. 5 flow).
  MSRA_RETURN_IF_ERROR(
      prt::Decomposition::create(desc.dims, options_.nprocs, desc.pattern)
          .status());
  MSRA_ASSIGN_OR_RETURN(
      PlacementDecision decision,
      PlacementPolicy::resolve(system_, desc, options_.iterations));
  if (decision.failed_over) {
    MSRA_LOG(kInfo) << "dataset " << desc.name << ": " << decision.reason;
  }
  MSRA_RETURN_IF_ERROR(
      catalog_.register_dataset(options_.application, desc, decision.location));
  auto handle = std::unique_ptr<DatasetHandle>(
      new DatasetHandle(this, options_.application, desc, decision.address()));
  DatasetHandle* raw = handle.get();
  handles_.emplace(desc.name, std::move(handle));
  return raw;
}

StatusOr<DatasetHandle*> Session::open_existing(const std::string& name,
                                                const OpenOptions& options) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (finalized_) {
    return Status::FailedPrecondition("session already finalized");
  }
  auto it = handles_.find(name);
  if (it != handles_.end()) return it->second.get();
  StatusOr<DatasetRecord> record =
      options.producer_app.empty() ? catalog_.find_dataset(name)
                                   : catalog_.dataset(options.producer_app, name);
  MSRA_RETURN_IF_ERROR(record.status());
  // The catalog's resolved column stores the storage class; the home server
  // is re-derived from the stable shard hash (write targets only — reads
  // route per replica through the balancer).
  const ReplicaAddress resolved{
      record->resolved, shard_server(record->desc.name, record->resolved,
                                     system_.cluster_size())};
  auto handle = std::unique_ptr<DatasetHandle>(new DatasetHandle(
      this, record->app, record->desc, resolved));
  handle->default_streams_ = options.streams;
  DatasetHandle* raw = handle.get();
  handles_.emplace(name, std::move(handle));
  return raw;
}

Status Session::finalize() {
  // Destroy the handles outside the lock: a handle destructor must never
  // run under the session mutex a concurrent open() is waiting on.
  std::map<std::string, std::unique_ptr<DatasetHandle>> doomed;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (finalized_) return Status::Ok();
    finalized_ = true;
    doomed.swap(handles_);
  }
  return Status::Ok();
}

bool Session::finalized() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return finalized_;
}

DatasetHandle* Session::find_handle(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = handles_.find(name);
  return it == handles_.end() ? nullptr : it->second.get();
}

// ---------------------------------------------------------- DatasetHandle --

std::string DatasetHandle::path_for(int timestep) const {
  if (desc_.amode == AccessMode::kOverWrite) {
    return app_ + "/" + desc_.name + "/restart";
  }
  return app_ + "/" + desc_.name + "/t" + std::to_string(timestep);
}

StatusOr<runtime::ArrayLayout> DatasetHandle::layout(int nprocs) const {
  MSRA_ASSIGN_OR_RETURN(
      prt::Decomposition decomp,
      prt::Decomposition::create(desc_.dims, nprocs, desc_.pattern));
  runtime::ArrayLayout out{decomp, element_size(desc_.etype)};
  return out;
}

runtime::GlobalArraySpec DatasetHandle::spec() const {
  return {desc_.dims, element_size(desc_.etype)};
}

Status DatasetHandle::set_subfile_chunks(const std::array<int, 3>& chunks) {
  if (writes_ > 0) {
    return Status::InvalidArgument("subfile layout must be set before writes");
  }
  MSRA_RETURN_IF_ERROR(
      runtime::SubfileLayout::create(spec(), chunks).status());
  subfile_chunks_ = chunks;
  return Status::Ok();
}

namespace {
bool subfiled(const std::array<int, 3>& chunks) {
  return chunks[0] != 1 || chunks[1] != 1 || chunks[2] != 1;
}
}  // namespace

Status DatasetHandle::write_timestep(prt::Comm& comm, int timestep,
                                     std::span<const std::byte> local) {
  if (!enabled()) return Status::Ok();  // DISABLE: not dumped at all
  // Spans nest per thread; recording on rank 0 only keeps one coherent
  // parent/child tree per collective operation.
  obs::Span span(comm.rank() == 0 ? &session_->system_.tracer() : nullptr,
                 comm.timeline(), "write_timestep " + desc_.name);
  Status status = write_with_failover(comm, timestep, local);
  if (!status.ok()) return status;
  if (comm.rank() == 0) {
    ++writes_;  // one collective write, counted once
    InstanceRecord record;
    record.dataset_key = MetaCatalog::dataset_key(app_, desc_.name);
    record.timestep = timestep;
    record.replicas = {address_};
    record.path = path_for(timestep);
    record.bytes = desc_.global_bytes();
    Status meta_status = session_->catalog_.record_instance(record);
    if (!meta_status.ok()) {
      MSRA_LOG(kWarn) << "instance bookkeeping failed: " << meta_status.to_string();
    }
    session_->system_.access_tracker().record_write(
        record.dataset_key, record.bytes, comm.timeline().now());
    // Write-through: the stored object changed, so any cached copy of it is
    // now stale and must go before the next lookup.
    if (cache::ReadCache* cache = session_->system_.cache()) {
      cache->invalidate(record.path);
    }
  }
  comm.barrier();  // instance metadata visible to all ranks on return
  return Status::Ok();
}

Status DatasetHandle::write_with_failover(prt::Comm& comm, int timestep,
                                          std::span<const std::byte> local) {
  MSRA_ASSIGN_OR_RETURN(runtime::ArrayLayout lay, layout(comm.size()));
  const std::string path = path_for(timestep);
  // One attempt per candidate address at most (every class on every site).
  const int max_attempts = static_cast<int>(
      ordered_candidate_addresses(address_, session_->system_.cluster_size())
          .size());
  for (int attempt = 0; attempt <= max_attempts; ++attempt) {
    runtime::StorageEndpoint& endpoint = session_->system_.endpoint(address_);
    Status status;
    {
      obs::Span attempt_span(
          comm.rank() == 0 ? &session_->system_.tracer() : nullptr,
          comm.timeline(), "write_array@" + address_name(address_));
      status =
          subfiled(subfile_chunks_)
              ? write_subfiled(comm, path, local)
              : runtime::write_array(endpoint, comm, path, lay, local,
                                     desc_.method, srb::OpenMode::kOverwrite,
                                     {.aggregators = desc_.aggregators});
    }
    const bool recoverable = status.code() == ErrorCode::kUnavailable ||
                             status.code() == ErrorCode::kCapacityExceeded;
    if (status.ok() || !recoverable) return status;

    // Rank 0 picks the next address (class, server); everyone follows its
    // decision.
    std::vector<std::byte> decision(2, std::byte{0xFF});
    if (comm.rank() == 0) {
      for (ReplicaAddress candidate : ordered_candidate_addresses(
               address_, session_->system_.cluster_size())) {
        if (candidate == address_) continue;  // the address that just failed
        runtime::StorageEndpoint& fallback =
            session_->system_.endpoint(candidate);
        const std::uint64_t footprint =
            desc_.footprint_bytes(session_->options_.iterations);
        if (fallback.available() && fallback.free_bytes() >= footprint) {
          decision[0] = static_cast<std::byte>(candidate.location);
          decision[1] = static_cast<std::byte>(candidate.server);
          break;
        }
      }
    }
    decision = comm.bcast(std::move(decision), 0);
    if (decision[0] == std::byte{0xFF}) return status;  // nowhere left to go
    // The handle is shared across rank threads: one writer updates
    // `address_`; the barrier below orders the write before the other
    // ranks re-read it at the top of the next attempt.
    if (comm.rank() == 0) {
      address_ = ReplicaAddress{static_cast<Location>(decision[0]),
                                static_cast<int>(decision[1])};
      session_->system_.metrics().counter("session.failovers")->increment();
      MSRA_LOG(kInfo) << "dataset " << desc_.name << " failing over to "
                      << address_name(address_) << " after: "
                      << status.to_string();
      Status meta_status = session_->catalog_.update_dataset_location(
          app_, desc_.name, address_.location);
      if (!meta_status.ok()) {
        MSRA_LOG(kWarn) << "failover bookkeeping failed: "
                        << meta_status.to_string();
      }
    }
    comm.barrier();
  }
  return Status::Unavailable("write failed on every storage resource");
}

Status DatasetHandle::write_subfiled(prt::Comm& comm, const std::string& base,
                                     std::span<const std::byte> local) {
  MSRA_ASSIGN_OR_RETURN(runtime::ArrayLayout lay, layout(comm.size()));
  std::vector<std::uint64_t> sizes;
  auto gathered = comm.gatherv(local, 0, &sizes);
  Status status = Status::Ok();
  if (comm.rank() == 0) {
    std::vector<std::byte> global(lay.global_bytes());
    const std::size_t elem = lay.elem_size;
    std::uint64_t slot_base = 0;
    for (int r = 0; r < comm.size(); ++r) {
      const prt::LocalBox box = lay.decomp.local_box(r);
      runtime::for_each_run(
          lay.decomp, box,
          [&](std::uint64_t goff, std::uint64_t count, std::uint64_t loff) {
            std::memcpy(global.data() + goff * elem,
                        gathered.data() + slot_base + loff * elem, count * elem);
          });
      slot_base += sizes[static_cast<std::size_t>(r)];
    }
    auto sublayout = runtime::SubfileLayout::create(spec(), subfile_chunks_);
    if (!sublayout.ok()) {
      status = sublayout.status();
    } else {
      auto plan =
          runtime::PlanBuilder::subfile_write(*sublayout, base, global.size());
      if (!plan.ok()) {
        status = plan.status();
      } else {
        status = runtime::PlanExecutor::execute(
            *plan, session_->system_.endpoint(address_), comm.timeline(), {},
            global, &session_->system_.tracer());
      }
    }
  }
  // Share the root's outcome.
  net::WireWriter w;
  srb::proto::put_status(w, status);
  auto payload = comm.bcast(w.take(), 0);
  net::WireReader r(payload);
  status = srb::proto::get_status(r);
  comm.sync_time();
  return status;
}

StatusOr<ReplicaChoice> DatasetHandle::locate(int timestep) const {
  MSRA_ASSIGN_OR_RETURN(
      InstanceRecord record,
      session_->catalog_.instance(app_, desc_.name, timestep));
  std::vector<ReplicaAddress> live;
  for (ReplicaAddress address : record.replicas) {
    if (session_->system_.endpoint(address).available()) {
      live.push_back(address);
    }
  }
  if (live.empty()) {
    // Everything is down: return the primary so the caller sees the real
    // error.
    const ReplicaAddress primary = record.primary();
    return ReplicaChoice{std::move(record), primary, {}};
  }
  // The balancer orders the live set best-first: cheapest load-aware
  // predictor quote over the whole-object read plan when the session has a
  // predictor attached (free read failover priced by Eq. 1/2), static
  // speed order otherwise. The whole chain is kept — a server dropping
  // mid-read fails over to the next entry.
  const runtime::IoPlan plan =
      runtime::PlanBuilder::object_read(record.path, record.bytes);
  std::vector<ReplicaAddress> chain = session_->system_.balancer().order(
      plan, std::move(live), session_->options_.predictor);
  const ReplicaAddress best = chain.front();
  return ReplicaChoice{std::move(record), best, std::move(chain)};
}

std::vector<ReplicaAddress> DatasetHandle::replica_addresses(
    int timestep) const {
  auto record = session_->catalog_.instance(app_, desc_.name, timestep);
  if (!record.ok()) return {};
  return record->replicas;
}

simkit::Timeline& DatasetHandle::timeline_or_session(
    simkit::Timeline* timeline) const {
  return timeline != nullptr ? *timeline : session_->timeline_;
}

Status DatasetHandle::replicate_timestep(int timestep,
                                         ReplicaAddress destination,
                                         const ReplicateOptions& options) {
  simkit::Timeline& timeline = timeline_or_session(options.timeline);
  if (subfiled(subfile_chunks_)) {
    return Status::Unimplemented("replication of subfile-chunked datasets");
  }
  if (destination.location != Location::kLocalDisk &&
      destination.location != Location::kRemoteDisk &&
      destination.location != Location::kRemoteTape) {
    return Status::InvalidArgument("replica destination must be concrete");
  }
  if (destination.server < 0 ||
      destination.server >= session_->system_.cluster_size()) {
    return Status::InvalidArgument("replica destination server out of range");
  }
  if (destination.location == Location::kLocalDisk) destination.server = 0;
  MSRA_ASSIGN_OR_RETURN(ReplicaChoice source, locate(timestep));
  if (source.record.on(destination)) {
    return Status::AlreadyExists("replica already on " +
                                 address_name(destination));
  }
  runtime::StorageEndpoint& dst = session_->system_.endpoint(destination);
  if (!dst.available()) {
    return Status::Unavailable("replica destination is down");
  }
  if (dst.free_bytes() < source.record.bytes) {
    return Status::CapacityExceeded("no room for replica on " +
                                    address_name(destination));
  }

  const bool same_server =
      source.address.location != Location::kLocalDisk &&
      destination.location != Location::kLocalDisk &&
      source.address.server == destination.server;
  if (same_server) {
    // Same SRB server: server-side copy (disk <-> tape), no WAN payload
    // transfer. unwrap() reaches past the instrumentation decorator.
    auto* endpoint = dynamic_cast<runtime::RemoteEndpoint*>(
        session_->system_.endpoint(source.address).unwrap());
    if (endpoint == nullptr) return Status::Internal("remote endpoint expected");
    ServerSite& site = session_->system_.site(destination.server);
    auto resource_of = [&site](Location location) {
      return location == Location::kRemoteTape
                 ? std::string(site.tape_resource().name())
                 : std::string(site.disk_resource().name());
    };
    srb::SrbClient& client = endpoint->client();
    MSRA_RETURN_IF_ERROR(client.connect(timeline));
    Status status = client.obj_replicate(
        timeline, resource_of(source.address.location), source.record.path,
        resource_of(destination.location));
    Status disc = client.disconnect(timeline);
    MSRA_RETURN_IF_ERROR(status);
    MSRA_RETURN_IF_ERROR(disc);
  } else {
    // Different servers (or one side local): stream through the client,
    // one whole-object plan per side.
    runtime::StorageEndpoint& src = session_->system_.endpoint(source.address);
    std::vector<std::byte> payload(source.record.bytes);
    obs::TraceRecorder* tracer = &session_->system_.tracer();
    MSRA_RETURN_IF_ERROR(runtime::PlanExecutor::execute(
        runtime::PlanBuilder::object_read(source.record.path,
                                          source.record.bytes),
        src, timeline, payload, {}, tracer));
    MSRA_RETURN_IF_ERROR(runtime::PlanExecutor::execute(
        runtime::PlanBuilder::object_write(source.record.path,
                                           source.record.bytes,
                                           srb::OpenMode::kOverwrite),
        dst, timeline, {}, payload, tracer));
  }

  return session_->catalog_.add_replica(app_, desc_.name, timestep, destination);
}

Status DatasetHandle::read_timestep(prt::Comm& comm, int timestep,
                                    std::span<std::byte> local) {
  if (!enabled()) {
    return Status::NotFound("dataset " + desc_.name + " was DISABLEd");
  }
  MSRA_ASSIGN_OR_RETURN(ReplicaChoice choice, locate(timestep));
  const InstanceRecord& record = choice.record;
  MSRA_ASSIGN_OR_RETURN(runtime::ArrayLayout lay, layout(comm.size()));
  runtime::StorageEndpoint& endpoint = session_->system_.endpoint(choice.address);
  if (comm.rank() == 0) {
    session_->system_.access_tracker().record_read(
        record.dataset_key, record.bytes, comm.timeline().now());
  }
  if (!subfiled(subfile_chunks_)) {
    return runtime::read_array(endpoint, comm, record.path, lay, local,
                               desc_.method,
                               {.aggregators = desc_.aggregators});
  }
  // Subfile datasets: root reads the touched chunks (all of them for a full
  // read), then scatters blocks.
  Status status = Status::Ok();
  std::vector<std::vector<std::byte>> chunks;
  if (comm.rank() == 0) {
    auto sublayout = runtime::SubfileLayout::create(spec(), subfile_chunks_);
    if (!sublayout.ok()) {
      status = sublayout.status();
    } else {
      prt::LocalBox full;
      for (std::size_t d = 0; d < 3; ++d) full.extent[d] = {0, desc_.dims[d]};
      std::vector<std::byte> global(lay.global_bytes());
      status = runtime::read_subfiles_box(endpoint, comm.timeline(), record.path,
                                          *sublayout, full, global);
      if (status.ok()) {
        const std::size_t elem = lay.elem_size;
        chunks.resize(static_cast<std::size_t>(comm.size()));
        for (int rr = 0; rr < comm.size(); ++rr) {
          const prt::LocalBox box = lay.decomp.local_box(rr);
          auto& chunk = chunks[static_cast<std::size_t>(rr)];
          chunk.resize(box.volume() * elem);
          runtime::for_each_run(
              lay.decomp, box,
              [&](std::uint64_t goff, std::uint64_t count, std::uint64_t loff) {
                std::memcpy(chunk.data() + loff * elem, global.data() + goff * elem,
                            count * elem);
              });
        }
      }
    }
  }
  net::WireWriter w;
  srb::proto::put_status(w, status);
  auto payload = comm.bcast(w.take(), 0);
  net::WireReader r(payload);
  status = srb::proto::get_status(r);
  if (status.ok()) {
    auto mine = comm.scatterv(chunks, 0);
    if (mine.size() != local.size()) {
      status = Status::Internal("scatter size mismatch");
    } else {
      std::memcpy(local.data(), mine.data(), mine.size());
    }
  }
  comm.sync_time();
  return status;
}

StatusOr<StagedAccess> DatasetHandle::stage_read_whole(
    int timestep, const ReadOptions& options) {
  if (!enabled()) {
    return Status::NotFound("dataset " + desc_.name + " was DISABLEd");
  }
  if (subfiled(subfile_chunks_)) {
    return Status::Unimplemented(
        "staged read of subfile-chunked datasets (chunk loop, not one plan)");
  }
  simkit::Timeline& timeline = timeline_or_session(options.timeline);
  MSRA_ASSIGN_OR_RETURN(ReplicaChoice choice, locate(timestep));
  const InstanceRecord& record = choice.record;
  runtime::StorageEndpoint& endpoint = session_->system_.endpoint(choice.address);
  session_->system_.access_tracker().record_read(record.dataset_key,
                                                 record.bytes, timeline.now());
  const std::uint64_t bytes = desc_.global_bytes();
  if (cache::ReadCache* cache = session_->system_.cache()) {
    // Hit: the identical whole-object plan, lowered against the cache
    // endpoint (Tconn = 0 there) with the served snapshot pinned.
    if (std::shared_ptr<const void> pin = cache->lookup(record.path)) {
      StagedAccess staged;
      staged.plan = runtime::PlanBuilder::object_read(record.path, bytes);
      staged.endpoint = &cache->endpoint();
      staged.cache_pin = std::move(pin);
      return staged;
    }
    // Miss: read from the chosen replica, and carry the ticket that lets
    // the executor offer the landed payload for priced admission.
    StagedAccess staged;
    staged.plan = runtime::PlanBuilder::object_read(record.path, bytes);
    staged.endpoint = &endpoint;
    staged.cache_offer =
        CacheOffer{record.path, record.dataset_key, choice.address.location};
    return staged;
  }
  StagedAccess staged;
  staged.plan = runtime::PlanBuilder::object_read(record.path, bytes);
  staged.endpoint = &endpoint;
  return staged;
}

StatusOr<StagedAccess> DatasetHandle::lower_read_box(
    int timestep, const prt::LocalBox& box, std::size_t buffer_bytes,
    const ReadOptions& options, simkit::Timeline& timeline) {
  if (!enabled()) {
    return Status::NotFound("dataset " + desc_.name + " was DISABLEd");
  }
  MSRA_ASSIGN_OR_RETURN(ReplicaChoice choice, locate(timestep));
  const InstanceRecord& record = choice.record;
  runtime::StorageEndpoint& endpoint = session_->system_.endpoint(choice.address);
  session_->system_.access_tracker().record_read(record.dataset_key,
                                                 buffer_bytes, timeline.now());
  // A cached whole object can also serve sub-array reads: same plan, just
  // lowered against the cache endpoint. Box misses carry no offer — only a
  // whole-object read yields a payload worth admitting.
  runtime::StorageEndpoint* target = &endpoint;
  std::shared_ptr<const void> pin;
  cache::ReadCache* cache = session_->system_.cache();
  if (cache != nullptr && !subfiled(subfile_chunks_) &&
      cache->contains(record.path)) {
    pin = cache->lookup(record.path, /*credit_saved=*/false);
    if (pin != nullptr) target = &cache->endpoint();
  }
  // Lower the access to a plan (subfile chunk fetch or sub-array
  // direct/sieving, vectorized when the endpoint's fast path is on).
  MSRA_ASSIGN_OR_RETURN(
      runtime::IoPlan plan,
      runtime::PlanBuilder::dataset_read_box(
          spec(), subfile_chunks_, box, record.path, options.strategy,
          target->fast_path().vectored_rpc, buffer_bytes));
  StagedAccess staged;
  staged.plan = std::move(plan);
  staged.endpoint = target;
  staged.cache_pin = std::move(pin);
  return staged;
}

StatusOr<StagedAccess> DatasetHandle::stage_read_box(
    int timestep, const prt::LocalBox& box, std::size_t buffer_bytes,
    const ReadOptions& options) {
  // No streams override here (and the handle default is deliberately not
  // applied either): reshaping the endpoint's fast path is a scoped,
  // exclusive affair the synchronous path brackets around execution.
  return lower_read_box(timestep, box, buffer_bytes, options,
                        timeline_or_session(options.timeline));
}

StatusOr<StagedAccess> DatasetHandle::stage_dump(int timestep) {
  if (!enabled()) {
    return Status::FailedPrecondition("dataset " + desc_.name +
                                      " was DISABLEd");
  }
  if (subfiled(subfile_chunks_)) {
    return Status::Unimplemented("staged dump of subfile-chunked datasets");
  }
  StagedAccess staged;
  staged.plan = runtime::PlanBuilder::object_write(
      path_for(timestep), desc_.global_bytes(), srb::OpenMode::kOverwrite);
  staged.endpoint = &session_->system_.endpoint(address_);
  return staged;
}

Status DatasetHandle::commit_dump(int timestep, simkit::SimTime now) {
  ++writes_;
  InstanceRecord record;
  record.dataset_key = MetaCatalog::dataset_key(app_, desc_.name);
  record.timestep = timestep;
  record.replicas = {address_};
  record.path = path_for(timestep);
  record.bytes = desc_.global_bytes();
  Status meta_status = session_->catalog_.record_instance(record);
  if (!meta_status.ok()) {
    MSRA_LOG(kWarn) << "instance bookkeeping failed: "
                    << meta_status.to_string();
  }
  session_->system_.access_tracker().record_write(record.dataset_key,
                                                  record.bytes, now);
  // Write-through invalidation, same as the collective write path.
  if (cache::ReadCache* cache = session_->system_.cache()) {
    cache->invalidate(record.path);
  }
  return Status::Ok();
}

StatusOr<std::vector<std::byte>> DatasetHandle::read_whole(
    int timestep, const ReadOptions& options) {
  simkit::Timeline& timeline = timeline_or_session(options.timeline);
  if (!enabled()) {
    return Status::NotFound("dataset " + desc_.name + " was DISABLEd");
  }
  std::vector<std::byte> out(desc_.global_bytes());
  if (subfiled(subfile_chunks_)) {
    // Chunk loop, not a single plan: stays synchronous-only.
    MSRA_ASSIGN_OR_RETURN(ReplicaChoice choice, locate(timestep));
    const InstanceRecord& record = choice.record;
    runtime::StorageEndpoint& endpoint =
        session_->system_.endpoint(choice.address);
    session_->system_.access_tracker().record_read(
        record.dataset_key, record.bytes, timeline.now());
    MSRA_ASSIGN_OR_RETURN(auto sublayout,
                          runtime::SubfileLayout::create(spec(), subfile_chunks_));
    prt::LocalBox full;
    for (std::size_t d = 0; d < 3; ++d) full.extent[d] = {0, desc_.dims[d]};
    MSRA_RETURN_IF_ERROR(runtime::read_subfiles_box(
        endpoint, timeline, record.path, sublayout, full, out));
    return out;
  }
  // A server dropping mid-read surfaces as kUnavailable from the executor;
  // re-lowering re-runs the balancer over the remaining live replicas, so
  // the read walks the quote-ordered chain until a copy answers. The retry
  // loop only exists in a real cluster — a single-server system keeps the
  // pre-cluster fail-fast semantics (and its exact virtual times).
  const int max_attempts =
      session_->system_.cluster_size() > 1 ? session_->system_.cluster_size() + 1
                                           : 1;
  Status status = Status::Ok();
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    MSRA_ASSIGN_OR_RETURN(StagedAccess staged,
                          stage_read_whole(timestep, options));
    status = runtime::PlanExecutor::execute(staged.plan, *staged.endpoint,
                                            timeline, out, {},
                                            &session_->system_.tracer());
    if (status.ok()) {
      if (staged.cache_offer.has_value()) {
        if (cache::ReadCache* cache = session_->system_.cache()) {
          // Cache fill is system traffic: background by construction.
          simkit::QosScope background(session_->system_.qos_tag(
              qos::TenantClass::kBackground));
          (void)cache->offer(staged.cache_offer->path,
                             staged.cache_offer->dataset_key, out,
                             staged.cache_offer->origin, timeline.now());
        }
      }
      return out;
    }
    if (status.code() != ErrorCode::kUnavailable) return status;
    if (attempt + 1 < max_attempts) {
      session_->system_.metrics().counter("session.read_failovers")
          ->increment();
    }
  }
  return status;
}

Status DatasetHandle::read_box(int timestep, const prt::LocalBox& box,
                               std::span<std::byte> out,
                               const ReadOptions& options) {
  simkit::Timeline& timeline = timeline_or_session(options.timeline);
  if (!enabled()) {
    return Status::NotFound("dataset " + desc_.name + " was DISABLEd");
  }
  obs::Span span(&session_->system_.tracer(), timeline,
                 options.trace_label.empty() ? "read_box " + desc_.name
                                             : options.trace_label);
  MSRA_ASSIGN_OR_RETURN(StagedAccess staged,
                        lower_read_box(timestep, box, out.size(), options,
                                       timeline));
  runtime::StorageEndpoint& endpoint = *staged.endpoint;

  // Per-call pipelining override: ReadOptions::streams wins over the
  // handle default (OpenOptions::streams); 0 everywhere leaves the
  // endpoint's own fast-path configuration untouched.
  const int streams = options.streams != 0 ? options.streams : default_streams_;
  struct FastPathGuard {
    runtime::StorageEndpoint* ep = nullptr;
    runtime::FastPathConfig saved;
    ~FastPathGuard() {
      if (ep != nullptr) ep->set_fast_path(saved);
    }
  } guard;
  if (streams >= 1) {
    guard.saved = endpoint.fast_path();
    guard.ep = &endpoint;
    runtime::FastPathConfig cfg = guard.saved;
    cfg.pipelined_transfers = true;
    cfg.streams = static_cast<std::uint32_t>(streams);
    endpoint.set_fast_path(cfg);
  }

  return runtime::PlanExecutor::execute(staged.plan, endpoint, timeline, out,
                                        {}, &session_->system_.tracer());
}

}  // namespace msra::core
