// Hardware profiles: every timing constant of the emulated testbed in one
// place.
//
// paper_2000() is calibrated against the paper's published numbers:
//   * Table 1 fixed costs (conn/open/seek/close per resource);
//   * the worked example of Eq. (3): a 2 MB collective write costs ~0.12 s
//     on local disks and ~8.47 s on remote disks end-to-end;
//   * the Fig. 11 per-dataset virtual times (8 MB float dump to tape
//     ~144.6 s, 2 MB uchar dump to tape ~44.4 s, 8 MB to remote disk
//     ~38.7 s).
// Remote costs decompose into WAN link (latency/bandwidth/connection) +
// server CPU + device service, so the *measured* Table 1 values emerge from
// the stack rather than being returned verbatim.
#pragma once

#include <cstdint>

#include "net/link.h"
#include "srb/server.h"
#include "store/disk_model.h"
#include "tape/hsm.h"
#include "tape/tape_library.h"

namespace msra::core {

/// Cluster topology: how many SRB server sites the testbed builds. Every
/// site gets its own disk/tape resources, WAN links and server CPU, all
/// cloned from the profile's per-site numbers. The default single-server
/// cluster reproduces the paper's testbed exactly (server 0 keeps the
/// legacy "sdsc"/"remotedisk"/"wan-disk" names, so telemetry and virtual
/// times are unchanged).
struct ClusterConfig {
  int servers = 1;
};

/// All tunables of the emulated multi-storage testbed.
struct HardwareProfile {
  // Local disks (the SP2 node's SSA disk subsystem).
  store::DiskModel local_disk;
  std::uint64_t local_capacity = 0;
  int local_disk_arms = 1;  ///< independent spindles (striping)

  // Remote disks at the storage site (SDSC), behind the WAN.
  store::DiskModel remote_disk;
  std::uint64_t remote_disk_capacity = 0;
  int remote_disk_arms = 1;
  net::LinkModel wan_disk;  ///< client <-> SRB/disk path

  // Remote tape system (HPSS stand-in), behind the WAN.
  tape::TapeModel tape;
  int tape_drives = 2;
  net::LinkModel wan_tape;  ///< client <-> SRB/tape path

  /// HPSS hierarchy: a staging disk cache of this many bytes in front of
  /// the tapes. 0 (the paper's configuration) = bare tapes.
  std::uint64_t tape_cache_bytes = 0;
  tape::HsmModel tape_cache;  ///< staging-level parameters (when enabled)

  srb::ServerConfig server;

  /// SRB cluster shape (1 server by default; every server replicates the
  /// remote disk / tape / link numbers above).
  ClusterConfig cluster;

  /// Optional multiplicative jitter on WAN transfers (paper footnote 4);
  /// 0 = deterministic.
  double wan_jitter = 0.0;
  std::uint64_t jitter_seed = 12345;

  /// The calibrated year-2000 testbed.
  static HardwareProfile paper_2000();

  /// A fast profile for unit tests: same structure, numbers chosen for easy
  /// arithmetic (1 MB/s links, 1 s opens, tiny capacities).
  static HardwareProfile test_profile();
};

}  // namespace msra::core
