#include "core/profiles.h"

#include "common/bytes.h"

namespace msra::core {

HardwareProfile HardwareProfile::paper_2000() {
  HardwareProfile p;

  // --- Local disks: Table 1 rows 1-2 (open 0.20/0.21, close 0.001). ---
  p.local_disk.open_read = 0.20;
  p.local_disk.open_write = 0.21;
  p.local_disk.close_read = 0.001;
  p.local_disk.close_write = 0.001;
  p.local_disk.seek = 0.0005;
  p.local_disk.read_bw = 25.0e6;
  p.local_disk.write_bw = 20.0e6;
  p.local_disk.per_op = 0.0005;
  p.local_capacity = 2 * kGiB;  // "small enough to fit" is the interesting regime

  // --- WAN to the storage site: ~0.30 MB/s effective (from the worked
  //     example: 2 MB remote-disk write ~8.47 s total, ~6.8 s transfer). ---
  p.wan_disk.latency = 0.030;
  p.wan_disk.bandwidth = 300.0e3;
  p.wan_disk.conn_setup = 0.44;      // Table 1: remote disk Conn
  p.wan_disk.conn_teardown = 0.0002; // Table 1: Connclose

  p.wan_tape.latency = 0.030;
  p.wan_tape.bandwidth = 300.0e3;
  p.wan_tape.conn_setup = 0.81;      // Table 1: remote tape Conn
  p.wan_tape.conn_teardown = 0.0002;

  // --- Remote disks: device costs chosen so the *measured* end-to-end
  //     fixed costs (device + 2x latency + server CPU) land on Table 1
  //     (open 0.42, seek 0.40, close 0.63/0.83). ---
  p.remote_disk.open_read = 0.35;
  p.remote_disk.open_write = 0.35;
  p.remote_disk.close_read = 0.56;
  p.remote_disk.close_write = 0.76;
  p.remote_disk.seek = 0.33;
  p.remote_disk.read_bw = 10.0e6;
  p.remote_disk.write_bw = 8.0e6;
  p.remote_disk.per_op = 0.002;
  p.remote_disk_capacity = 50 * kGiB;

  // --- Tape (HPSS): open 6.17 / close 0.46, 0.42 from Table 1; drive
  //     bandwidth calibrated so an 8 MB collective dump costs ~145 s
  //     end-to-end (Fig. 11). Mount time is the paper's "20 to 40 seconds
  //     to be ready". ---
  p.tape.open_read = 6.10;
  p.tape.open_write = 6.10;
  p.tape.close_read = 0.40;
  p.tape.close_write = 0.36;
  p.tape.mount = 25.0;
  p.tape.dismount = 15.0;
  p.tape.min_seek = 0.5;
  p.tape.seek_rate = 1.0e-8;  // ~10 s per GB of head travel
  p.tape.read_bw = 75.0e3;
  p.tape.write_bw = 75.0e3;
  p.tape.per_op = 0.05;
  p.tape.cartridge_capacity = 20 * kGiB;
  p.tape_drives = 2;

  p.server.request_overhead = 0.005;
  p.server.worker_threads = 4;
  return p;
}

HardwareProfile HardwareProfile::test_profile() {
  HardwareProfile p;
  p.local_disk.open_read = 0.01;
  p.local_disk.open_write = 0.01;
  p.local_disk.close_read = 0.001;
  p.local_disk.close_write = 0.001;
  p.local_disk.seek = 0.001;
  p.local_disk.read_bw = 100.0e6;
  p.local_disk.write_bw = 100.0e6;
  p.local_disk.per_op = 0.0;
  p.local_capacity = 64 * kMiB;

  p.wan_disk.latency = 0.01;
  p.wan_disk.bandwidth = 1.0e6;
  p.wan_disk.conn_setup = 0.1;
  p.wan_disk.conn_teardown = 0.001;

  p.wan_tape = p.wan_disk;
  p.wan_tape.conn_setup = 0.2;

  p.remote_disk.open_read = 0.1;
  p.remote_disk.open_write = 0.1;
  p.remote_disk.close_read = 0.05;
  p.remote_disk.close_write = 0.05;
  p.remote_disk.seek = 0.05;
  p.remote_disk.read_bw = 10.0e6;
  p.remote_disk.write_bw = 10.0e6;
  p.remote_disk.per_op = 0.0;
  p.remote_disk_capacity = 256 * kMiB;

  p.tape.open_read = 1.0;
  p.tape.open_write = 1.0;
  p.tape.close_read = 0.1;
  p.tape.close_write = 0.1;
  p.tape.mount = 5.0;
  p.tape.dismount = 2.0;
  p.tape.min_seek = 0.1;
  p.tape.seek_rate = 1.0e-8;
  p.tape.read_bw = 100.0e3;
  p.tape.write_bw = 100.0e3;
  p.tape.per_op = 0.01;
  p.tape.cartridge_capacity = 1 * kGiB;
  p.tape_drives = 2;

  p.server.request_overhead = 0.001;
  p.server.worker_threads = 2;
  return p;
}

}  // namespace msra::core
