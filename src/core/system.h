// StorageSystem: the assembled multi-storage testbed.
//
// Owns the physical layer (object stores, tape libraries), the native layer
// (SRB server cluster + WAN links), and one StorageEndpoint per storage
// class per server — the paper's experimental environment of section 3.2
// (local disks, remote disks at SDSC, remote tapes in HPSS via SRB, plus
// the local metadata database), scaled out to N server sites. The default
// single-server cluster IS the paper's testbed; server 0 keeps the legacy
// device names so telemetry and virtual times are unchanged.
#pragma once

#include <filesystem>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/profiles.h"
#include "meta/database.h"
#include "migrate/tracker.h"
#include "net/link.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "obs/trace.h"
#include "qos/policy.h"
#include "runtime/endpoint.h"
#include "simkit/noise.h"
#include "srb/server.h"
#include "store/file_store.h"
#include "store/mem_store.h"
#include "tape/hsm.h"
#include "tape/tape_library.h"

namespace msra::cache {
class ReadCache;
struct CacheConfig;
}  // namespace msra::cache

namespace msra::predict {
class Predictor;
}  // namespace msra::predict

namespace msra::core {

class Balancer;

/// Storage location attribute of a dataset (section 3.2 of the paper).
enum class Location {
  kLocalDisk,   ///< LOCALDISK hint
  kRemoteDisk,  ///< REMOTEDISK hint
  kRemoteTape,  ///< REMOTETAPE hint
  kAuto,        ///< AUTO/DEFAULT: system decides (default: remote tapes)
  kDisable,     ///< DISABLE: dataset is not dumped at all
};

std::string_view location_name(Location location);
StatusOr<Location> parse_location(std::string_view name);

/// Concrete (non-hint) locations, in the order used for capacity failover.
inline constexpr Location kConcreteLocations[] = {
    Location::kLocalDisk, Location::kRemoteDisk, Location::kRemoteTape};

/// A server-qualified storage location: the storage class plus the SRB
/// server site holding the copy. Local disks sit on the client side of the
/// WAN, so kLocalDisk addresses always carry server 0. A bare Location
/// converts implicitly to the address on server 0, which keeps every
/// single-server call site (and every pre-cluster catalog) meaning exactly
/// what it meant before.
struct ReplicaAddress {
  Location location = Location::kRemoteTape;
  int server = 0;

  constexpr ReplicaAddress() = default;
  constexpr ReplicaAddress(Location location_in, int server_in = 0)
      : location(location_in), server(server_in) {}

  friend constexpr bool operator==(const ReplicaAddress&,
                                   const ReplicaAddress&) = default;
};

/// "REMOTEDISK@2"; the "@server" suffix is omitted for server 0, so
/// single-server catalogs stay textually identical to the pre-cluster
/// format.
std::string address_name(ReplicaAddress address);
/// Parses address_name() output; a bare location name is server 0.
StatusOr<ReplicaAddress> parse_address(std::string_view name);

/// One SRB storage site of the cluster: the server process with its disk
/// and tape resources, the WAN links reaching it, and the instrumented
/// endpoints over them. Site 0 carries the legacy single-server names
/// ("sdsc", "remotedisk", "wan-disk", "hpss", ...); site i appends the
/// index ("sdsc1", "remotedisk1", ...). Built and owned by StorageSystem.
class ServerSite {
 public:
  int index() const { return index_; }

  srb::SrbServer& server() { return *server_; }
  srb::DiskResource& disk_resource() { return *disk_resource_; }
  srb::TapeResource& tape_resource() { return *tape_resource_; }
  net::Link& disk_link() { return *disk_link_; }
  net::Link& tape_link() { return *tape_link_; }
  tape::TapeLibrary& tape_library() { return *tape_library_; }
  /// Non-null only when the HPSS hierarchy (staging cache) is enabled.
  tape::HsmStore* hsm() { return hsm_.get(); }

  runtime::StorageEndpoint& disk_endpoint() { return *disk_endpoint_; }
  runtime::StorageEndpoint& tape_endpoint() { return *tape_endpoint_; }

 private:
  friend class StorageSystem;
  ServerSite() = default;

  int index_ = 0;
  std::unique_ptr<store::ObjectStore> disk_store_;
  std::unique_ptr<store::ObjectStore> tape_store_;  ///< only when rooted
  std::unique_ptr<tape::TapeLibrary> tape_library_;
  std::unique_ptr<tape::HsmStore> hsm_;  ///< only when tape_cache_bytes > 0
  std::unique_ptr<srb::DiskResource> disk_resource_;
  std::unique_ptr<srb::TapeResource> tape_resource_;
  std::unique_ptr<srb::SrbServer> server_;
  std::unique_ptr<net::Link> disk_link_;
  std::unique_ptr<net::Link> tape_link_;
  std::unique_ptr<runtime::StorageEndpoint> disk_endpoint_;
  std::unique_ptr<runtime::StorageEndpoint> tape_endpoint_;
};

/// Thread-safety: a StorageSystem is a shared substrate for concurrent
/// client sessions (the multi-tenant core). Every layer a session touches —
/// endpoints, SRB servers, resources, links, tape libraries, metadata
/// database, metrics — is individually thread-safe; clients on distinct
/// host threads contend only in virtual time, on the shared simkit
/// resources. Construction, reset_time() and set_location_available() are
/// control-plane operations: run them while no client I/O is in flight.
class StorageSystem {
 public:
  /// Builds the testbed (profile.cluster.servers SRB sites). With a
  /// non-empty `data_root`, the disk-backed resources store real files
  /// under <root>/local and <root>/remote[i], and the metadata database is
  /// loaded from / saved to <root>/meta.db — so catalogs, performance data
  /// and disk-resident datasets survive across processes (tape content
  /// stays in-memory; it models an external archive). Hermetic in-memory
  /// stores are the default.
  explicit StorageSystem(const HardwareProfile& profile,
                         std::filesystem::path data_root = {});
  ~StorageSystem();

  const HardwareProfile& profile() const { return profile_; }

  /// Number of SRB server sites (>= 1).
  int cluster_size() const { return static_cast<int>(sites_.size()); }

  /// Registry lookup: the SRB site at `server` (0 <= server <
  /// cluster_size()). The single-server accessors of earlier builds
  /// (server(), remote_disk_resource(), wan_disk_link(), ...) are gone;
  /// every caller addresses a site explicitly.
  ServerSite& site(int server);

  /// Endpoint for a concrete location on server 0 (kAuto/kDisable are
  /// invalid here). Endpoints are instrumented: every Eq.-1 primitive they
  /// execute lands in `metrics()` under `io.<resource>.<op>`.
  runtime::StorageEndpoint& endpoint(Location location);
  /// Endpoint for a server-qualified address.
  runtime::StorageEndpoint& endpoint(ReplicaAddress address);

  /// The predictor-driven replica/server router (always present; policy
  /// defaults to cheapest-quote).
  Balancer& balancer() { return *balancer_; }
  const Balancer& balancer() const { return *balancer_; }

  /// System-wide instrument registry (always present; disable via
  /// `metrics().set_enabled(false)` to reduce recording to a flag check).
  obs::MetricsRegistry& metrics() { return metrics_; }
  const obs::MetricsRegistry& metrics() const { return metrics_; }

  /// System-wide span recorder (virtual-time traces).
  obs::TraceRecorder& tracer() { return tracer_; }
  const obs::TraceRecorder& tracer() const { return tracer_; }

  /// Per-dataset access heat, fed by sessions and consumed by the
  /// migration planner. Recording is time-free (counters only).
  migrate::AccessTracker& access_tracker() { return access_tracker_; }
  const migrate::AccessTracker& access_tracker() const { return access_tracker_; }

  /// Installs the priced mid-tier read cache (off until called; control
  /// plane: no client I/O may be in flight). `predictor` prices admission
  /// refetch quotes and may be null (the cache then rejects every offer as
  /// unpriced but still serves explicitly probed entries). Replaces any
  /// previously installed cache. Returns the installed cache.
  cache::ReadCache* enable_cache(const cache::CacheConfig& config,
                                 const predict::Predictor* predictor);

  /// The installed cache, or nullptr (the default: no caching anywhere).
  cache::ReadCache* cache() { return cache_.get(); }
  const cache::ReadCache* cache() const { return cache_.get(); }

  /// Removes the cache (control plane; pinned reads must have drained).
  void disable_cache();

  /// Installs the QoS policy: every shared device's grant order switches
  /// to `config.discipline`, and per-class wait histograms
  /// (`qos.wait.<class>`) start recording. Control plane: no client I/O
  /// may be in flight. kFifo keeps the native booking path — enabling QoS
  /// with the default discipline changes no virtual time anywhere.
  Status enable_qos(const qos::QosConfig& config);

  /// Reverts every device to FIFO and forgets the policy (control plane).
  void disable_qos();

  /// The installed policy, or nullptr (the default: no QoS anywhere).
  const qos::QosConfig* qos_config() const {
    return qos_config_.has_value() ? &*qos_config_ : nullptr;
  }

  /// The QosTag `cls` books under: resolved from the installed policy, or
  /// from QosConfig{} defaults when QoS was never enabled (tags are then
  /// carried but change nothing — every device still grants FIFO).
  simkit::QosTag qos_tag(qos::TenantClass cls) const;

  /// The local metadata database (the paper's Postgres).
  meta::Database& metadb() { return *metadb_; }

  /// Persists the metadata database (no-op without a data root).
  Status save_metadata() const;

  /// True when running against a persistent data root.
  bool persistent() const { return !data_root_.empty(); }

  /// The client-side local disk (not behind any server).
  srb::DiskResource& local_resource() { return *local_resource_; }

  /// Injects / clears an outage on one storage class, across every site.
  void set_location_available(Location location, bool available);

  /// Resets every device's virtual clock so a new experiment starts on idle
  /// hardware at t = 0. Stored data and mounted cartridges are preserved.
  void reset_time();

  /// Contention snapshot of every shared device (disk arms, server CPUs,
  /// WAN pipes, tape robots/drives, HSM caches) across the cluster:
  /// operations, busy time, utilization and queueing-delay totals, for
  /// `msractl stats`/`msractl cluster` and the contention bench. Rows for
  /// idle devices are included (operations = 0).
  std::vector<obs::ResourceLoadRow> resource_loads();

  /// Every shared device with its telemetry name, in resource_loads()
  /// order — the one walk enable_qos, resource_loads and the per-class
  /// QoS report all share.
  std::vector<std::pair<std::string, simkit::Resource*>> shared_devices();

  /// Per-tenant-class QoS summary across every shared device: served
  /// grants, wait percentiles (from the `qos.wait.<class>` histograms —
  /// zero until enable_qos installs them), worst backlog, deadline misses
  /// and admission verdicts. One row per tenant class, always all three.
  std::vector<obs::QosClassRow> qos_breakdown();

 private:
  HardwareProfile profile_;
  std::filesystem::path data_root_;
  std::unique_ptr<meta::Database> metadb_;

  // Observability. Declared before the endpoint layer so instrumented
  // endpoints can bind to the registry during construction.
  obs::MetricsRegistry metrics_;
  obs::TraceRecorder tracer_;
  migrate::AccessTracker access_tracker_{&metrics_};

  // Client-side physical layer (MemObjectStore by default, FileObjectStore
  // when rooted).
  std::unique_ptr<store::ObjectStore> local_store_;
  std::unique_ptr<srb::DiskResource> local_resource_;
  std::unique_ptr<runtime::StorageEndpoint> local_endpoint_;

  // The SRB server sites (>= 1; site 0 is the paper's single server).
  std::vector<std::unique_ptr<ServerSite>> sites_;

  // Predictor-driven replica/server routing (see core/balancer.h).
  std::unique_ptr<Balancer> balancer_;

  // Mid-tier read cache (null until enable_cache(); sessions check this on
  // every read path, so default-off costs one pointer test).
  std::unique_ptr<cache::ReadCache> cache_;

  // QoS policy (nullopt until enable_qos(); devices then grant FIFO and
  // tenant tags are inert).
  std::optional<qos::QosConfig> qos_config_;
};

}  // namespace msra::core
