// StorageSystem: the assembled multi-storage testbed.
//
// Owns the physical layer (object stores, tape library), the native layer
// (SRB server + WAN links), and one StorageEndpoint per storage class —
// exactly the paper's experimental environment of section 3.2:
//   local disks, remote disks (SRB @SDSC), remote tapes (HPSS via SRB),
//   plus the local metadata database.
#pragma once

#include <filesystem>
#include <memory>
#include <string>

#include "core/profiles.h"
#include "meta/database.h"
#include "migrate/tracker.h"
#include "net/link.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "obs/trace.h"
#include "runtime/endpoint.h"
#include "simkit/noise.h"
#include "srb/server.h"
#include "store/file_store.h"
#include "store/mem_store.h"
#include "tape/hsm.h"
#include "tape/tape_library.h"

namespace msra::cache {
class ReadCache;
struct CacheConfig;
}  // namespace msra::cache

namespace msra::predict {
class Predictor;
}  // namespace msra::predict

namespace msra::core {

/// Storage location attribute of a dataset (section 3.2 of the paper).
enum class Location {
  kLocalDisk,   ///< LOCALDISK hint
  kRemoteDisk,  ///< REMOTEDISK hint
  kRemoteTape,  ///< REMOTETAPE hint
  kAuto,        ///< AUTO/DEFAULT: system decides (default: remote tapes)
  kDisable,     ///< DISABLE: dataset is not dumped at all
};

std::string_view location_name(Location location);
StatusOr<Location> parse_location(std::string_view name);

/// Concrete (non-hint) locations, in the order used for capacity failover.
inline constexpr Location kConcreteLocations[] = {
    Location::kLocalDisk, Location::kRemoteDisk, Location::kRemoteTape};

/// Thread-safety: a StorageSystem is a shared substrate for concurrent
/// client sessions (the multi-tenant core). Every layer a session touches —
/// endpoints, SRB server, resources, links, tape library, metadata
/// database, metrics — is individually thread-safe; clients on distinct
/// host threads contend only in virtual time, on the shared simkit
/// resources. Construction, reset_time() and set_location_available() are
/// control-plane operations: run them while no client I/O is in flight.
class StorageSystem {
 public:
  /// Builds the testbed. With a non-empty `data_root`, the disk-backed
  /// resources store real files under <root>/local and <root>/remote, and
  /// the metadata database is loaded from / saved to <root>/meta.db — so
  /// catalogs, performance data and disk-resident datasets survive across
  /// processes (tape content stays in-memory; it models an external
  /// archive). Hermetic in-memory stores are the default.
  explicit StorageSystem(const HardwareProfile& profile,
                         std::filesystem::path data_root = {});
  ~StorageSystem();

  const HardwareProfile& profile() const { return profile_; }

  /// Endpoint for a concrete location (kAuto/kDisable are invalid here).
  /// Endpoints are instrumented: every Eq.-1 primitive they execute lands
  /// in `metrics()` under `io.<resource>.<op>`.
  runtime::StorageEndpoint& endpoint(Location location);

  /// System-wide instrument registry (always present; disable via
  /// `metrics().set_enabled(false)` to reduce recording to a flag check).
  obs::MetricsRegistry& metrics() { return metrics_; }
  const obs::MetricsRegistry& metrics() const { return metrics_; }

  /// System-wide span recorder (virtual-time traces).
  obs::TraceRecorder& tracer() { return tracer_; }
  const obs::TraceRecorder& tracer() const { return tracer_; }

  /// Per-dataset access heat, fed by sessions and consumed by the
  /// migration planner. Recording is time-free (counters only).
  migrate::AccessTracker& access_tracker() { return access_tracker_; }
  const migrate::AccessTracker& access_tracker() const { return access_tracker_; }

  /// Installs the priced mid-tier read cache (off until called; control
  /// plane: no client I/O may be in flight). `predictor` prices admission
  /// refetch quotes and may be null (the cache then rejects every offer as
  /// unpriced but still serves explicitly probed entries). Replaces any
  /// previously installed cache. Returns the installed cache.
  cache::ReadCache* enable_cache(const cache::CacheConfig& config,
                                 const predict::Predictor* predictor);

  /// The installed cache, or nullptr (the default: no caching anywhere).
  cache::ReadCache* cache() { return cache_.get(); }
  const cache::ReadCache* cache() const { return cache_.get(); }

  /// Removes the cache (control plane; pinned reads must have drained).
  void disable_cache();

  /// The local metadata database (the paper's Postgres).
  meta::Database& metadb() { return *metadb_; }

  /// Persists the metadata database (no-op without a data root).
  Status save_metadata() const;

  /// True when running against a persistent data root.
  bool persistent() const { return !data_root_.empty(); }

  /// Raw layers, exposed for tests, PTool and fault injection.
  srb::SrbServer& server() { return *server_; }
  tape::TapeLibrary& tape_library() { return *tape_library_; }
  /// Non-null only when the HPSS hierarchy (staging cache) is enabled.
  tape::HsmStore* hsm() { return hsm_.get(); }
  srb::DiskResource& local_resource() { return *local_resource_; }
  srb::DiskResource& remote_disk_resource() { return *remote_disk_resource_; }
  srb::TapeResource& tape_resource() { return *tape_resource_; }
  net::Link& wan_disk_link() { return *wan_disk_link_; }
  net::Link& wan_tape_link() { return *wan_tape_link_; }

  /// Injects / clears an outage on one storage class.
  void set_location_available(Location location, bool available);

  /// Resets every device's virtual clock so a new experiment starts on idle
  /// hardware at t = 0. Stored data and mounted cartridges are preserved.
  void reset_time();

  /// Contention snapshot of every shared device (disk arms, server CPU,
  /// WAN pipes, tape robot/drives, HSM cache): operations, busy time,
  /// utilization and queueing-delay totals, for `msractl stats` and the
  /// contention bench. Rows for idle devices are included (operations = 0).
  std::vector<obs::ResourceLoadRow> resource_loads();

 private:
  HardwareProfile profile_;
  std::filesystem::path data_root_;
  std::unique_ptr<meta::Database> metadb_;

  // Observability. Declared before the endpoint layer so instrumented
  // endpoints can bind to the registry during construction.
  obs::MetricsRegistry metrics_;
  obs::TraceRecorder tracer_;
  migrate::AccessTracker access_tracker_{&metrics_};

  // Physical layer (MemObjectStore by default, FileObjectStore when rooted).
  std::unique_ptr<store::ObjectStore> local_store_;
  std::unique_ptr<store::ObjectStore> remote_disk_store_;
  std::unique_ptr<store::ObjectStore> tape_store_;  ///< only when rooted
  std::unique_ptr<tape::TapeLibrary> tape_library_;
  std::unique_ptr<tape::HsmStore> hsm_;  ///< only when tape_cache_bytes > 0

  // Native layer.
  std::unique_ptr<srb::DiskResource> local_resource_;
  std::unique_ptr<srb::DiskResource> remote_disk_resource_;
  std::unique_ptr<srb::TapeResource> tape_resource_;
  std::unique_ptr<srb::SrbServer> server_;
  std::unique_ptr<net::Link> wan_disk_link_;
  std::unique_ptr<net::Link> wan_tape_link_;

  // Endpoint layer (built by runtime::make_endpoint, instrumented).
  std::unique_ptr<runtime::StorageEndpoint> local_endpoint_;
  std::unique_ptr<runtime::StorageEndpoint> remote_disk_endpoint_;
  std::unique_ptr<runtime::StorageEndpoint> remote_tape_endpoint_;

  // Mid-tier read cache (null until enable_cache(); sessions check this on
  // every read path, so default-off costs one pointer test).
  std::unique_ptr<cache::ReadCache> cache_;
};

}  // namespace msra::core
