// Fixed-size worker pool used by the asynchronous I/O runtime.
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace msra {

/// A simple FIFO thread pool. Tasks are void() callables; exceptions thrown
/// by a task terminate the process (tasks are expected to report errors via
/// their own channels, e.g. Status captured in a promise).
class ThreadPool {
 public:
  explicit ThreadPool(std::size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task for execution on some worker.
  void submit(std::function<void()> task);

  /// Blocks until every task submitted so far has finished running.
  void wait_idle();

  std::size_t size() const { return workers_.size(); }

 private:
  void worker_loop();

  std::mutex mutex_;
  std::condition_variable work_cv_;
  std::condition_variable idle_cv_;
  std::deque<std::function<void()>> queue_;
  std::size_t in_flight_ = 0;
  bool shutting_down_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace msra
