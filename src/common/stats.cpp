#include "common/stats.h"

#include <cassert>
#include <numeric>

namespace msra {

double StatAccumulator::min() const {
  assert(!samples_.empty());
  return *std::min_element(samples_.begin(), samples_.end());
}

double StatAccumulator::max() const {
  assert(!samples_.empty());
  return *std::max_element(samples_.begin(), samples_.end());
}

double StatAccumulator::mean() const {
  if (samples_.empty()) return 0.0;
  return std::accumulate(samples_.begin(), samples_.end(), 0.0) /
         static_cast<double>(samples_.size());
}

double StatAccumulator::stddev() const {
  if (samples_.size() < 2) return 0.0;
  const double m = mean();
  double acc = 0.0;
  for (double s : samples_) acc += (s - m) * (s - m);
  return std::sqrt(acc / static_cast<double>(samples_.size() - 1));
}

double StatAccumulator::percentile(double p) const {
  assert(!samples_.empty());
  std::vector<double> sorted = samples_;
  std::sort(sorted.begin(), sorted.end());
  const double rank =
      (p / 100.0) * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

}  // namespace msra
