// Minimal leveled logger.
//
// The library is quiet by default (kWarn); benches and examples raise the
// level for narration. Thread-safe: each call formats into a local buffer
// and emits with a single stream write.
#pragma once

#include <sstream>
#include <string>

namespace msra {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Sets the global minimum level that is emitted.
void set_log_level(LogLevel level);
LogLevel log_level();

namespace detail {
void log_emit(LogLevel level, const std::string& message);
}

/// Stream-style log statement: MSRA_LOG(kInfo) << "opened " << path;
#define MSRA_LOG(level)                                             \
  if (::msra::LogLevel::level < ::msra::log_level()) {              \
  } else                                                            \
    ::msra::detail::LogLine(::msra::LogLevel::level)

namespace detail {
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { log_emit(level_, stream_.str()); }
  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace detail

}  // namespace msra
