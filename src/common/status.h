// Lightweight Status / StatusOr error handling for the MSRA library.
//
// The storage stack reports recoverable conditions (resource down, object
// missing, capacity exhausted) as values rather than exceptions, so that
// failover policies in core/ can react to them cheaply.
#pragma once

#include <cassert>
#include <optional>
#include <string>
#include <string_view>
#include <utility>

namespace msra {

/// Error categories used across the storage stack.
enum class ErrorCode {
  kOk = 0,
  kNotFound,          ///< object / table / row does not exist
  kAlreadyExists,     ///< create on an existing object without overwrite
  kInvalidArgument,   ///< malformed request (bad offset, bad pattern, ...)
  kOutOfRange,        ///< read past end of object
  kCapacityExceeded,  ///< storage resource is full
  kUnavailable,       ///< resource is down (fault injection / outage)
  kPermissionDenied,  ///< authentication / mode violation
  kInternal,          ///< invariant violation inside the library
  kUnimplemented,     ///< feature not supported by this endpoint
  kFailedPrecondition,  ///< call arrived in the wrong state (e.g. finalized)
};

/// Human-readable name of an ErrorCode ("NOT_FOUND", ...).
std::string_view error_code_name(ErrorCode code);

/// A success-or-error result. Cheap to copy on success (empty message).
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() = default;
  Status(ErrorCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status NotFound(std::string m) { return {ErrorCode::kNotFound, std::move(m)}; }
  static Status AlreadyExists(std::string m) { return {ErrorCode::kAlreadyExists, std::move(m)}; }
  static Status InvalidArgument(std::string m) { return {ErrorCode::kInvalidArgument, std::move(m)}; }
  static Status OutOfRange(std::string m) { return {ErrorCode::kOutOfRange, std::move(m)}; }
  static Status CapacityExceeded(std::string m) { return {ErrorCode::kCapacityExceeded, std::move(m)}; }
  /// Admission-control vocabulary: the live load leaves no headroom for
  /// the request within its SLO (same category as CapacityExceeded).
  static Status ResourceExhausted(std::string m) { return {ErrorCode::kCapacityExceeded, std::move(m)}; }
  static Status Unavailable(std::string m) { return {ErrorCode::kUnavailable, std::move(m)}; }
  static Status PermissionDenied(std::string m) { return {ErrorCode::kPermissionDenied, std::move(m)}; }
  static Status Internal(std::string m) { return {ErrorCode::kInternal, std::move(m)}; }
  static Status Unimplemented(std::string m) { return {ErrorCode::kUnimplemented, std::move(m)}; }
  static Status FailedPrecondition(std::string m) { return {ErrorCode::kFailedPrecondition, std::move(m)}; }

  bool ok() const { return code_ == ErrorCode::kOk; }
  ErrorCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "NOT_FOUND: <message>".
  std::string to_string() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_;
  }

 private:
  ErrorCode code_ = ErrorCode::kOk;
  std::string message_;
};

/// A value-or-error result, in the spirit of absl::StatusOr / std::expected.
template <typename T>
class [[nodiscard]] StatusOr {
 public:
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT(runtime/explicit)
    assert(!status_.ok() && "StatusOr constructed from OK status without value");
  }
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  /// Precondition: ok().
  T& value() & {
    assert(ok());
    return *value_;
  }
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

  /// Returns the value, or `fallback` if this holds an error.
  T value_or(T fallback) const& { return ok() ? *value_ : std::move(fallback); }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Propagates an error status out of the current function.
#define MSRA_RETURN_IF_ERROR(expr)                 \
  do {                                             \
    ::msra::Status _msra_status = (expr);          \
    if (!_msra_status.ok()) return _msra_status;   \
  } while (false)

/// Evaluates a StatusOr expression, assigning the value or returning the error.
#define MSRA_ASSIGN_OR_RETURN(lhs, expr)              \
  auto MSRA_CONCAT_(_msra_sor, __LINE__) = (expr);    \
  if (!MSRA_CONCAT_(_msra_sor, __LINE__).ok())        \
    return MSRA_CONCAT_(_msra_sor, __LINE__).status();\
  lhs = std::move(MSRA_CONCAT_(_msra_sor, __LINE__)).value()

#define MSRA_CONCAT_INNER_(a, b) a##b
#define MSRA_CONCAT_(a, b) MSRA_CONCAT_INNER_(a, b)

}  // namespace msra
