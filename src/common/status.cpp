#include "common/status.h"

namespace msra {

std::string_view error_code_name(ErrorCode code) {
  switch (code) {
    case ErrorCode::kOk: return "OK";
    case ErrorCode::kNotFound: return "NOT_FOUND";
    case ErrorCode::kAlreadyExists: return "ALREADY_EXISTS";
    case ErrorCode::kInvalidArgument: return "INVALID_ARGUMENT";
    case ErrorCode::kOutOfRange: return "OUT_OF_RANGE";
    case ErrorCode::kCapacityExceeded: return "CAPACITY_EXCEEDED";
    case ErrorCode::kUnavailable: return "UNAVAILABLE";
    case ErrorCode::kPermissionDenied: return "PERMISSION_DENIED";
    case ErrorCode::kInternal: return "INTERNAL";
    case ErrorCode::kUnimplemented: return "UNIMPLEMENTED";
    case ErrorCode::kFailedPrecondition: return "FAILED_PRECONDITION";
  }
  return "UNKNOWN";
}

std::string Status::to_string() const {
  if (ok()) return "OK";
  std::string out(error_code_name(code_));
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace msra
