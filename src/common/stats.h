// Small descriptive-statistics accumulator used by PTool and the benches.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <vector>

namespace msra {

/// Accumulates samples and reports min/max/mean/stddev/percentiles.
class StatAccumulator {
 public:
  void add(double sample) { samples_.push_back(sample); }

  std::size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }

  double min() const;
  double max() const;
  double mean() const;
  double stddev() const;

  /// Linear-interpolated percentile, p in [0, 100]. Precondition: !empty().
  double percentile(double p) const;

  const std::vector<double>& samples() const { return samples_; }

 private:
  std::vector<double> samples_;
};

}  // namespace msra
