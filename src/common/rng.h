// Deterministic pseudo-random number generation.
//
// All stochastic behaviour in the library (network jitter, synthetic
// workload content) flows through SplitMix64/Xoshiro256** generators seeded
// explicitly, so every experiment is reproducible bit-for-bit.
#pragma once

#include <cstdint>

namespace msra {

/// SplitMix64: used to expand a single seed into generator state.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// Xoshiro256**: fast, high-quality 64-bit generator.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B9u) {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  /// Uniform 64-bit value.
  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) {
    return lo + (hi - lo) * next_double();
  }

  /// Uniform integer in [0, n). Precondition: n > 0.
  std::uint64_t next_below(std::uint64_t n) { return next_u64() % n; }

  /// Approximately normal(0, 1) via a 12-term Irwin–Hall sum.
  double next_gaussian() {
    double sum = 0.0;
    for (int i = 0; i < 12; ++i) sum += next_double();
    return sum - 6.0;
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t state_[4];
};

}  // namespace msra
