#include "common/log.h"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace msra {
namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};
std::mutex g_emit_mutex;

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    default: return "?????";
  }
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }
LogLevel log_level() { return g_level.load(); }

namespace detail {
void log_emit(LogLevel level, const std::string& message) {
  std::lock_guard<std::mutex> lock(g_emit_mutex);
  std::fprintf(stderr, "[msra %s] %s\n", level_tag(level), message.c_str());
}
}  // namespace detail

}  // namespace msra
