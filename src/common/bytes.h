// Byte-size helpers and formatting used throughout the storage stack.
#pragma once

#include <cstdint>
#include <string>

namespace msra {

inline constexpr std::uint64_t kKiB = 1024ull;
inline constexpr std::uint64_t kMiB = 1024ull * kKiB;
inline constexpr std::uint64_t kGiB = 1024ull * kMiB;

namespace literals {
constexpr std::uint64_t operator""_KiB(unsigned long long v) { return v * kKiB; }
constexpr std::uint64_t operator""_MiB(unsigned long long v) { return v * kMiB; }
constexpr std::uint64_t operator""_GiB(unsigned long long v) { return v * kGiB; }
}  // namespace literals

/// Formats a byte count as a human-readable string ("8.0 MiB").
std::string format_bytes(std::uint64_t bytes);

}  // namespace msra
