// StorageEndpoint: the uniform interface the run-time optimization
// libraries (D-OL for local disks, SRB-OL for remote disk/tape) drive.
//
// Two implementations mirror the paper's stack:
//  * LocalEndpoint   — direct calls into a ServerResource (UNIX-FS path);
//  * RemoteEndpoint  — calls through an SrbClient over the WAN link.
//
// Each primitive is billed separately so Equation (1)'s components
// (Tconn, Topen, Tseek, Trw, Tclose, Tconnclose) are individually
// measurable by PTool.
#pragma once

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "simkit/timeline.h"
#include "srb/client.h"
#include "srb/resources.h"

namespace msra::obs {
class Counter;
class Gauge;
class MetricsRegistry;
}  // namespace msra::obs

namespace msra::runtime {

using srb::FastPathConfig;
using srb::FastPathStats;
using srb::HandleId;
using srb::IoRun;
using srb::OpenMode;
using srb::StorageKind;

class StorageEndpoint {
 public:
  virtual ~StorageEndpoint() = default;

  virtual StorageKind kind() const = 0;
  virtual const std::string& name() const = 0;

  /// The metrics registry this endpoint reports into, or nullptr for an
  /// uninstrumented endpoint. Lets layers that only hold an endpoint
  /// (sieve, collective I/O) record without plumbing a registry through.
  virtual obs::MetricsRegistry* metrics() const { return nullptr; }

  /// The innermost endpoint, past any instrumentation decorators. Use
  /// before downcasting (e.g. `dynamic_cast<RemoteEndpoint*>(ep.unwrap())`).
  virtual StorageEndpoint* unwrap() { return this; }

  virtual Status connect(simkit::Timeline& timeline) = 0;
  virtual Status disconnect(simkit::Timeline& timeline) = 0;

  virtual StatusOr<HandleId> open(simkit::Timeline& timeline,
                                  const std::string& path, OpenMode mode) = 0;
  virtual Status seek(simkit::Timeline& timeline, HandleId handle,
                      std::uint64_t offset) = 0;
  virtual Status read(simkit::Timeline& timeline, HandleId handle,
                      std::span<std::byte> out) = 0;
  virtual Status write(simkit::Timeline& timeline, HandleId handle,
                       std::span<const std::byte> data) = 0;
  virtual Status close(simkit::Timeline& timeline, HandleId handle) = 0;

  /// Vectored read: fetch every run of `runs` into `out`, back-to-back in
  /// run order (`out.size()` must equal the runs' total length). The base
  /// implementation is the classic per-run seek+read loop; RemoteEndpoint
  /// turns it into one kReadv round trip when the fast path is enabled.
  virtual Status readv(simkit::Timeline& timeline, HandleId handle,
                       std::span<const IoRun> runs, std::span<std::byte> out);

  /// Vectored write; `data` carries the runs' payloads back-to-back.
  virtual Status writev(simkit::Timeline& timeline, HandleId handle,
                        std::span<const IoRun> runs,
                        std::span<const std::byte> data);

  /// Fast-path knobs. The default endpoint has none (everything off and
  /// immutable); RemoteEndpoint forwards to its SrbClient.
  virtual FastPathConfig fast_path() const { return {}; }
  virtual void set_fast_path(const FastPathConfig& config) { (void)config; }

  virtual Status remove(simkit::Timeline& timeline, const std::string& path) = 0;
  virtual StatusOr<std::uint64_t> size(simkit::Timeline& timeline,
                                       const std::string& path) = 0;
  virtual StatusOr<std::vector<store::ObjectInfo>> list(
      simkit::Timeline& timeline, const std::string& prefix) = 0;

  virtual std::uint64_t capacity() const = 0;
  virtual std::uint64_t used() const = 0;
  virtual bool available() const = 0;

  /// Free bytes (0 when over-full).
  std::uint64_t free_bytes() const {
    const std::uint64_t c = capacity();
    const std::uint64_t u = used();
    return c > u ? c - u : 0;
  }
};

/// Local disks: no network, costs come straight from the DiskModel.
class LocalEndpoint final : public StorageEndpoint {
 public:
  /// Does not own the resource.
  explicit LocalEndpoint(srb::ServerResource* resource) : resource_(resource) {}

  StorageKind kind() const override { return resource_->kind(); }
  const std::string& name() const override { return resource_->name(); }

  Status connect(simkit::Timeline&) override { return Status::Ok(); }
  Status disconnect(simkit::Timeline&) override { return Status::Ok(); }

  StatusOr<HandleId> open(simkit::Timeline& timeline, const std::string& path,
                          OpenMode mode) override {
    return resource_->open(timeline, path, mode);
  }
  Status seek(simkit::Timeline& timeline, HandleId handle,
              std::uint64_t offset) override {
    return resource_->seek(timeline, handle, offset);
  }
  Status read(simkit::Timeline& timeline, HandleId handle,
              std::span<std::byte> out) override {
    return resource_->read(timeline, handle, out);
  }
  Status write(simkit::Timeline& timeline, HandleId handle,
               std::span<const std::byte> data) override {
    return resource_->write(timeline, handle, data);
  }
  Status close(simkit::Timeline& timeline, HandleId handle) override {
    return resource_->close(timeline, handle);
  }
  Status remove(simkit::Timeline&, const std::string& path) override {
    return resource_->remove(path);
  }
  StatusOr<std::uint64_t> size(simkit::Timeline&, const std::string& path) override {
    return resource_->size(path);
  }
  StatusOr<std::vector<store::ObjectInfo>> list(simkit::Timeline&,
                                                const std::string& prefix) override {
    return resource_->list(prefix);
  }
  std::uint64_t capacity() const override { return resource_->capacity(); }
  std::uint64_t used() const override { return resource_->used(); }
  bool available() const override { return resource_->available(); }

 private:
  srb::ServerResource* resource_;
};

/// Remote disks / tapes reached through the SRB client.
class RemoteEndpoint final : public StorageEndpoint {
 public:
  /// Neither server nor link is owned; `resource` names a resource hosted by
  /// the server.
  RemoteEndpoint(srb::SrbServer* server, net::Link* link, std::string resource)
      : client_(server, link), resource_(std::move(resource)) {
    display_name_ = server->name() + ":" + resource_;
  }

  StorageKind kind() const override {
    srb::ServerResource* r = client_.server()->resource(resource_);
    return r ? r->kind() : StorageKind::kRemoteDisk;
  }
  const std::string& name() const override { return display_name_; }

  Status connect(simkit::Timeline& timeline) override;
  Status disconnect(simkit::Timeline& timeline) override;
  StatusOr<HandleId> open(simkit::Timeline& timeline, const std::string& path,
                          OpenMode mode) override {
    return client_.obj_open(timeline, resource_, path, mode);
  }
  Status seek(simkit::Timeline& timeline, HandleId handle,
              std::uint64_t offset) override {
    return client_.obj_seek(timeline, resource_, handle, offset);
  }
  /// Bulk reads/writes take the pipelined path when it is enabled and the
  /// transfer is large enough to amortize the per-chunk headers.
  Status read(simkit::Timeline& timeline, HandleId handle,
              std::span<std::byte> out) override;
  Status write(simkit::Timeline& timeline, HandleId handle,
               std::span<const std::byte> data) override;
  Status readv(simkit::Timeline& timeline, HandleId handle,
               std::span<const IoRun> runs, std::span<std::byte> out) override;
  Status writev(simkit::Timeline& timeline, HandleId handle,
                std::span<const IoRun> runs,
                std::span<const std::byte> data) override;
  FastPathConfig fast_path() const override { return client_.fast_path(); }
  void set_fast_path(const FastPathConfig& config) override {
    client_.set_fast_path(config);
  }
  Status close(simkit::Timeline& timeline, HandleId handle) override {
    return client_.obj_close(timeline, resource_, handle);
  }
  // Namespace operations auto-connect when needed (like SRB's command-line
  // utilities), so they are usable outside a file session.
  Status remove(simkit::Timeline& timeline, const std::string& path) override {
    const bool ephemeral = !client_.connected();
    if (ephemeral) MSRA_RETURN_IF_ERROR(client_.connect(timeline));
    Status status = client_.obj_remove(timeline, resource_, path);
    if (ephemeral) (void)client_.disconnect(timeline);
    return status;
  }
  StatusOr<std::uint64_t> size(simkit::Timeline& timeline,
                               const std::string& path) override {
    const bool ephemeral = !client_.connected();
    if (ephemeral) MSRA_RETURN_IF_ERROR(client_.connect(timeline));
    auto result = client_.obj_stat(timeline, resource_, path);
    if (ephemeral) (void)client_.disconnect(timeline);
    return result;
  }
  StatusOr<std::vector<store::ObjectInfo>> list(simkit::Timeline& timeline,
                                                const std::string& prefix) override {
    const bool ephemeral = !client_.connected();
    if (ephemeral) MSRA_RETURN_IF_ERROR(client_.connect(timeline));
    auto result = client_.obj_list(timeline, resource_, prefix);
    if (ephemeral) (void)client_.disconnect(timeline);
    return result;
  }
  std::uint64_t capacity() const override {
    srb::ServerResource* r = client_.server()->resource(resource_);
    return r ? r->capacity() : 0;
  }
  std::uint64_t used() const override {
    srb::ServerResource* r = client_.server()->resource(resource_);
    return r ? r->used() : 0;
  }
  bool available() const override {
    if (client_.server()->down()) return false;
    srb::ServerResource* r = client_.server()->resource(resource_);
    return r && r->available();
  }

  srb::SrbClient& client() { return client_; }
  const std::string& resource_name() const { return resource_; }

  /// Publishes the client's fast-path meters into `registry` under
  /// `fastpath.<name>.*` (names deliberately outside the `io.` prefix so
  /// the Eq. (1) breakdown is not polluted). Deltas are pushed after each
  /// fast-path-relevant call.
  void enable_fast_path_metrics(obs::MetricsRegistry* registry);

 private:
  void publish_fast_path_stats();

  srb::SrbClient client_;
  std::string resource_;
  std::string display_name_;
  obs::Counter* fp_batched_calls_ = nullptr;
  obs::Counter* fp_batched_runs_ = nullptr;
  obs::Counter* fp_pipelined_transfers_ = nullptr;
  obs::Counter* fp_pipelined_chunks_ = nullptr;
  obs::Counter* fp_pool_hits_ = nullptr;
  obs::Counter* fp_pool_misses_ = nullptr;
  obs::Gauge* fp_overlap_fraction_ = nullptr;
  obs::Gauge* fp_overlap_saved_ = nullptr;
  std::mutex fp_publish_mutex_;
  srb::FastPathStats published_;  // guarded by fp_publish_mutex_
};

/// RAII file session: connect + open on construction, close + disconnect on
/// destruction (errors on the close path are logged, not thrown).
class FileSession {
 public:
  static StatusOr<FileSession> start(StorageEndpoint& endpoint,
                                     simkit::Timeline& timeline,
                                     const std::string& path, OpenMode mode);
  ~FileSession();

  FileSession(FileSession&& other) noexcept;
  FileSession& operator=(FileSession&&) = delete;
  FileSession(const FileSession&) = delete;
  FileSession& operator=(const FileSession&) = delete;

  HandleId handle() const { return handle_; }

  Status seek(std::uint64_t offset) { return endpoint_->seek(*timeline_, handle_, offset); }
  Status read(std::span<std::byte> out) { return endpoint_->read(*timeline_, handle_, out); }
  Status write(std::span<const std::byte> data) {
    return endpoint_->write(*timeline_, handle_, data);
  }
  Status readv(std::span<const IoRun> runs, std::span<std::byte> out) {
    return endpoint_->readv(*timeline_, handle_, runs, out);
  }
  Status writev(std::span<const IoRun> runs, std::span<const std::byte> data) {
    return endpoint_->writev(*timeline_, handle_, runs, data);
  }

  /// Explicit close (also performed by the destructor).
  Status finish();

 private:
  FileSession(StorageEndpoint* endpoint, simkit::Timeline* timeline, HandleId handle)
      : endpoint_(endpoint), timeline_(timeline), handle_(handle) {}

  StorageEndpoint* endpoint_;
  simkit::Timeline* timeline_;
  HandleId handle_;
  bool open_ = true;
};

}  // namespace msra::runtime
