#include "runtime/factory.h"

#include <cassert>

#include "core/system.h"
#include "obs/endpoint.h"

namespace msra::runtime {

std::unique_ptr<StorageEndpoint> make_endpoint(core::StorageSystem& system,
                                               core::Location location,
                                               int server, bool instrumented) {
  std::unique_ptr<StorageEndpoint> endpoint;
  switch (location) {
    case core::Location::kLocalDisk:
      endpoint = std::make_unique<LocalEndpoint>(&system.local_resource());
      break;
    case core::Location::kRemoteDisk: {
      core::ServerSite& site = system.site(server);
      endpoint = std::make_unique<RemoteEndpoint>(
          &site.server(), &site.disk_link(), site.disk_resource().name());
      break;
    }
    case core::Location::kRemoteTape: {
      core::ServerSite& site = system.site(server);
      endpoint = std::make_unique<RemoteEndpoint>(
          &site.server(), &site.tape_link(), site.tape_resource().name());
      break;
    }
    case core::Location::kAuto:
    case core::Location::kDisable:
      assert(false && "make_endpoint requires a concrete location");
      return nullptr;
  }
  if (instrumented) {
    if (auto* remote = dynamic_cast<RemoteEndpoint*>(endpoint.get())) {
      remote->enable_fast_path_metrics(&system.metrics());
    }
    endpoint = std::make_unique<obs::InstrumentedEndpoint>(std::move(endpoint),
                                                           &system.metrics());
  }
  return endpoint;
}

}  // namespace msra::runtime
