// Subfile: storing one logical dataset as a grid of chunk objects.
//
// The paper's SRB-OL provides "subfile" so a partial access to a remote
// dataset fetches only the relevant pieces instead of the whole file — e.g.
// a visualization slice through a 3-D field touches one plane of chunks.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "prt/dist.h"
#include "runtime/endpoint.h"
#include "runtime/sieve.h"

namespace msra::runtime {

/// A chunked layout of a 3-D array: `chunks[d]` chunk counts per dimension,
/// chunk boxes computed with the same BLOCK rule as process decompositions.
class SubfileLayout {
 public:
  static StatusOr<SubfileLayout> create(const GlobalArraySpec& spec,
                                        const std::array<int, 3>& chunks);

  const GlobalArraySpec& spec() const { return spec_; }
  const std::array<int, 3>& chunks() const { return chunks_; }
  int chunk_count() const { return chunks_[0] * chunks_[1] * chunks_[2]; }

  /// Box of chunk (ci, cj, ck).
  prt::LocalBox chunk_box(int ci, int cj, int ck) const;

  /// Object name of a chunk under `base` ("base/chunk_ci_cj_ck").
  static std::string chunk_path(const std::string& base, int ci, int cj, int ck);

  /// Chunk coordinate ranges intersecting `box` (inclusive lo, exclusive hi).
  std::array<std::pair<int, int>, 3> chunk_range(const prt::LocalBox& box) const;

  /// Number of chunk objects a read of `box` touches.
  std::uint64_t chunks_touched(const prt::LocalBox& box) const;

 private:
  GlobalArraySpec spec_;
  std::array<int, 3> chunks_ = {1, 1, 1};
};

/// Writes a whole global array (row-major buffer) as chunk objects.
Status write_subfiles(StorageEndpoint& endpoint, simkit::Timeline& timeline,
                      const std::string& base, const SubfileLayout& layout,
                      std::span<const std::byte> global);

/// Reads `box` touching only intersecting chunks. `out` is row-major over
/// the box.
Status read_subfiles_box(StorageEndpoint& endpoint, simkit::Timeline& timeline,
                         const std::string& base, const SubfileLayout& layout,
                         const prt::LocalBox& box, std::span<std::byte> out);

}  // namespace msra::runtime
