// Superfile: packing many small files into one large object.
//
// Section 5 of the paper: "When superfile is applied, these small files will
// be transparently written to one large superfile when they are created.
// Later on, when the user reads this data, the first read will bring all the
// data into memory. Then the subsequent read can be satisfied by copying
// data directly from main memory" — turning N small remote requests into a
// single large one.
//
// On-"disk" format:   [member 0 bytes][member 1 bytes]...[index][footer]
//   index  = u32 count, then per member: string name, u64 offset, u64 length
//   footer = u64 index_offset, u64 magic
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "runtime/endpoint.h"

namespace msra::runtime {

/// Footer magic ("SUPRFILE" as little-endian bytes).
inline constexpr std::uint64_t kSuperfileMagic = 0x454c494652505553ull;

/// Builds a superfile by appending members sequentially.
class SuperfileWriter {
 public:
  /// Creates (or overwrites) the superfile object and holds it open.
  static StatusOr<SuperfileWriter> create(StorageEndpoint& endpoint,
                                          simkit::Timeline& timeline,
                                          const std::string& path);
  ~SuperfileWriter();

  SuperfileWriter(SuperfileWriter&&) noexcept;
  SuperfileWriter& operator=(SuperfileWriter&&) = delete;
  SuperfileWriter(const SuperfileWriter&) = delete;
  SuperfileWriter& operator=(const SuperfileWriter&) = delete;

  /// Appends one member (name must be unique within the superfile).
  Status add(const std::string& name, std::span<const std::byte> data);

  /// Appends the index + footer and closes the object. Must be called; the
  /// destructor only releases the handle.
  Status finalize();

  std::size_t member_count() const { return index_.size(); }

 private:
  SuperfileWriter(StorageEndpoint* endpoint, simkit::Timeline* timeline,
                  HandleId handle)
      : endpoint_(endpoint), timeline_(timeline), handle_(handle) {}

  StorageEndpoint* endpoint_;
  simkit::Timeline* timeline_;
  HandleId handle_;
  bool open_ = true;
  std::uint64_t cursor_ = 0;
  std::map<std::string, std::pair<std::uint64_t, std::uint64_t>> index_;
  std::vector<std::string> order_;
};

/// Reads a superfile. The constructor performs ONE native read of the whole
/// object; every member read is then served from memory.
class SuperfileReader {
 public:
  static StatusOr<SuperfileReader> open(StorageEndpoint& endpoint,
                                        simkit::Timeline& timeline,
                                        const std::string& path);

  /// Member payload (view into the in-memory image).
  StatusOr<std::span<const std::byte>> read(const std::string& name) const;

  /// Member names in append order.
  const std::vector<std::string>& names() const { return order_; }

  std::uint64_t total_bytes() const { return blob_.size(); }

 private:
  SuperfileReader() = default;
  std::vector<std::byte> blob_;
  std::map<std::string, std::pair<std::uint64_t, std::uint64_t>> index_;
  std::vector<std::string> order_;
};

}  // namespace msra::runtime
