// Asynchronous write-behind.
//
// The paper's run-time libraries provide asynchronous I/O so computation and
// (slow remote) I/O overlap. In virtual time this means: submitting a write
// costs the caller only a memory copy; the storage work accrues on the
// engine's own timeline; flush() joins the caller's clock with the engine's.
// The read-ahead half lives in flow/prefetcher.h: prefetching is a client
// of the unified staging scheduler, not a private copy loop.
#pragma once

#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/threadpool.h"
#include "runtime/endpoint.h"

namespace msra::runtime {

/// Write-behind engine for whole-object writes.
class AsyncWriter {
 public:
  /// `memcpy_bandwidth` prices the caller-side buffer copy (B/s virtual).
  explicit AsyncWriter(StorageEndpoint& endpoint,
                       double memcpy_bandwidth = 400.0e6);
  ~AsyncWriter();

  AsyncWriter(const AsyncWriter&) = delete;
  AsyncWriter& operator=(const AsyncWriter&) = delete;

  /// Queues a whole-object write (connect/open/write/close run in the
  /// background). The caller is charged only the staging copy.
  Status submit(simkit::Timeline& caller, const std::string& path,
                std::vector<std::byte> data, OpenMode mode = OpenMode::kOverwrite);

  /// Blocks until every queued write completed; joins the caller's clock to
  /// the engine's and returns the first error encountered (if any).
  Status flush(simkit::Timeline& caller);

  /// Number of writes submitted so far.
  std::uint64_t submitted() const;

  /// Writes submitted but not yet retired by the engine.
  std::uint64_t pending() const;

 private:
  StorageEndpoint& endpoint_;
  double memcpy_bandwidth_;
  simkit::Timeline engine_;      ///< background storage timeline
  ThreadPool pool_;              ///< one worker: writes retire in order
  mutable std::mutex mutex_;
  Status first_error_;
  std::uint64_t submitted_ = 0;
  std::uint64_t pending_ = 0;
};

}  // namespace msra::runtime
