// Asynchronous write-behind and prefetch.
//
// The paper's run-time libraries provide asynchronous I/O so computation and
// (slow remote) I/O overlap. In virtual time this means: submitting a write
// costs the caller only a memory copy; the storage work accrues on the
// engine's own timeline; flush() joins the caller's clock with the engine's.
#pragma once

#include <deque>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/threadpool.h"
#include "runtime/endpoint.h"

namespace msra::runtime {

/// Write-behind engine for whole-object writes.
class AsyncWriter {
 public:
  /// `memcpy_bandwidth` prices the caller-side buffer copy (B/s virtual).
  explicit AsyncWriter(StorageEndpoint& endpoint,
                       double memcpy_bandwidth = 400.0e6);
  ~AsyncWriter();

  AsyncWriter(const AsyncWriter&) = delete;
  AsyncWriter& operator=(const AsyncWriter&) = delete;

  /// Queues a whole-object write (connect/open/write/close run in the
  /// background). The caller is charged only the staging copy.
  Status submit(simkit::Timeline& caller, const std::string& path,
                std::vector<std::byte> data, OpenMode mode = OpenMode::kOverwrite);

  /// Blocks until every queued write completed; joins the caller's clock to
  /// the engine's and returns the first error encountered (if any).
  Status flush(simkit::Timeline& caller);

  /// Number of writes submitted so far.
  std::uint64_t submitted() const;

  /// Writes submitted but not yet retired by the engine.
  std::uint64_t pending() const;

 private:
  StorageEndpoint& endpoint_;
  double memcpy_bandwidth_;
  simkit::Timeline engine_;      ///< background storage timeline
  ThreadPool pool_;              ///< one worker: writes retire in order
  mutable std::mutex mutex_;
  Status first_error_;
  std::uint64_t submitted_ = 0;
  std::uint64_t pending_ = 0;
};

/// Read-ahead engine: prefetches whole objects into a small cache so a later
/// fetch() costs only a memory copy when the prefetch already completed.
///
/// The cache is bounded: at most `capacity` objects are kept, evicted in
/// least-recently-used order (prefetch and fetch both refresh recency).
/// In-flight prefetches are never evicted.
class Prefetcher {
 public:
  explicit Prefetcher(StorageEndpoint& endpoint,
                      double memcpy_bandwidth = 400.0e6,
                      std::size_t capacity = 16);
  ~Prefetcher();

  Prefetcher(const Prefetcher&) = delete;
  Prefetcher& operator=(const Prefetcher&) = delete;

  /// Starts fetching `path` in the background (no caller cost beyond a
  /// request handoff).
  void prefetch(simkit::Timeline& caller, const std::string& path);

  /// Returns the object's bytes. If the prefetch finished before the
  /// caller's current virtual time, only the copy is charged; otherwise the
  /// caller waits (clock joins) for it. Objects never prefetched are read
  /// synchronously.
  StatusOr<std::vector<std::byte>> fetch(simkit::Timeline& caller,
                                         const std::string& path);

  /// Cache hits observed by fetch().
  std::uint64_t hits() const;

  /// Objects currently cached (including in-flight prefetches).
  std::size_t cached_count() const;

  /// Completed entries dropped to respect the capacity bound.
  std::uint64_t evictions() const;

 private:
  struct Entry {
    Status status;
    std::vector<std::byte> data;
    simkit::SimTime ready_at = 0.0;
    bool done = false;
  };

  StatusOr<std::vector<std::byte>> read_whole(simkit::Timeline& timeline,
                                              const std::string& path);

  /// Moves `path` to the most-recently-used position. Callers hold mutex_.
  void touch_locked(const std::string& path);

  /// Drops least-recently-used *completed* entries until the cache fits the
  /// capacity bound. Callers hold mutex_.
  void evict_locked();

  StorageEndpoint& endpoint_;
  double memcpy_bandwidth_;
  std::size_t capacity_;
  simkit::Timeline engine_;
  ThreadPool pool_;
  mutable std::mutex mutex_;
  std::map<std::string, Entry> cache_;
  std::list<std::string> lru_;  ///< front = most recent
  std::uint64_t hits_ = 0;
  std::uint64_t evictions_ = 0;
};

}  // namespace msra::runtime
