// IoPlan: the explicit intermediate representation of one logical access.
//
// Every read/write the architecture performs — a sieved visualization
// slice, a two-phase collective dump, a chunked subfile fetch — lowers to
// the same IR: an ordered list of per-endpoint operations
// (connect/open/seek/read/write/readv/writev/close/disconnect) grouped
// into labelled stages, plus memory-copy and exchange annotations. One
// PlanExecutor runs the plan against any StorageEndpoint; the predictor
// prices the very same plan against PerfDb curves (Eq. 2 becomes "sum of
// priced plans"); `msractl explain` prints it. A single code path computes
// the operation sequence, so execution, prediction, and explanation can
// never drift apart.
//
// Lowering passes compose in a fixed order, mirroring the run-time
// optimization libraries: block-distribution run enumeration -> collective
// aggregation (the exchange legs stay in prt::Comm; the I/O legs lower
// here) -> data sieving -> subfile chunk mapping -> fast-path vectorization
// (run list folded into one kReadv/kWritev op). Pipelined bulk transfer
// stays below the IR — it is how an endpoint serves one kRead/kWrite — and
// is carried as a plan annotation for pricing only.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "prt/dist.h"
#include "runtime/parallel_io.h"
#include "runtime/sieve.h"
#include "simkit/qos.h"

namespace msra::obs {
class MetricsRegistry;
class TraceRecorder;
}  // namespace msra::obs

namespace msra::runtime {

class SubfileLayout;

/// Direction of the logical access (selects the PerfDb cost tables).
enum class PlanDir : std::uint8_t { kRead, kWrite };

/// One endpoint primitive (or memory/exchange step) in a lowered plan.
enum class PlanOpKind : std::uint8_t {
  kConnect,     ///< endpoint connect (Tconn)
  kOpen,        ///< open `path` with `mode` (Topen)
  kSeek,        ///< position to byte `offset` (Tseek)
  kRead,        ///< transfer `bytes` into the user or scratch buffer (Trw)
  kWrite,       ///< transfer `bytes` from the user or scratch buffer (Trw)
  kReadv,       ///< one vectored call carrying `run_list` (fast path)
  kWritev,      ///< one vectored call carrying `run_list` (fast path)
  kClose,       ///< close the open handle (Tclose)
  kDisconnect,  ///< endpoint disconnect (Tconnclose)
  kCopyIn,      ///< memcpy user buffer -> scratch (free: no virtual time)
  kCopyOut,     ///< memcpy scratch -> user buffer (free: no virtual time)
};

struct PlanOp {
  PlanOpKind kind = PlanOpKind::kRead;
  std::uint64_t offset = 0;      ///< kSeek: file offset; kCopy*: scratch offset
  std::uint64_t bytes = 0;       ///< payload (kReadv/kWritev: run-list total)
  std::uint64_t buf_offset = 0;  ///< byte offset into the user buffer
  bool scratch = false;          ///< kRead/kWrite target the scratch buffer
  /// kReadv/kWritev: the concrete run list. Homogenized pricing plans leave
  /// it empty and carry only `run_count`.
  std::vector<srb::IoRun> run_list;
  std::uint64_t run_count = 1;  ///< number of runs a vectored call carries
  std::string path;             ///< kOpen only
  srb::OpenMode mode = srb::OpenMode::kRead;

  std::uint64_t runs() const {
    return run_list.empty() ? run_count : run_list.size();
  }
};

/// Stage role — drives the explain tree and lets the predictor find the
/// per-call session of a homogenized plan.
enum class PlanStageKind : std::uint8_t {
  kSetup,     ///< connect/open leg
  kIo,        ///< seek/read/write/readv/writev payload leg
  kCopy,      ///< pure in-memory packing/extraction
  kTeardown,  ///< close/disconnect leg
  kExchange,  ///< inter-rank communication annotation (never executed)
  kSession,   ///< one whole native-call session of a homogenized plan
};

struct PlanStage {
  PlanStageKind kind = PlanStageKind::kIo;
  std::string label;
  /// How many times this stage repeats per dump (homogenized pricing plans
  /// fold `n(j)` identical sessions into one stage with repeat = n(j);
  /// executable plans always use 1 and materialize every op).
  std::uint64_t repeat = 1;
  std::uint64_t exchange_bytes = 0;  ///< kExchange: bytes shuffled between ranks
  /// Data-sieving accounting: when extent > 0 the executor bills
  /// sieve.extent_bytes / sieve.useful_bytes / sieve.accesses counters.
  std::uint64_t sieve_extent_bytes = 0;
  std::uint64_t sieve_useful_bytes = 0;
  std::vector<PlanOp> ops;
};

/// A lowered logical access. Strategy annotations record which passes ran;
/// the op list alone determines execution.
struct IoPlan {
  PlanDir dir = PlanDir::kRead;
  AccessStrategy strategy = AccessStrategy::kDirect;
  IoMethod method = IoMethod::kNaive;
  bool vectored = false;   ///< run lists folded into kReadv/kWritev calls
  bool pipelined = false;  ///< bulk transfers priced off the pipelined curve
  bool pooled = false;     ///< connection setup billed once, not per session
  std::uint64_t scratch_bytes = 0;  ///< executor-owned staging buffer size
  std::vector<PlanStage> stages;

  /// First kSession stage (homogenized plans), or nullptr.
  const PlanStage* session_stage() const;

  /// Native calls per dump: session repeat for homogenized plans, the
  /// number of kRead/kWrite/kReadv/kWritev ops for executable plans.
  std::uint64_t calls_per_dump() const;

  /// Bytes of one native call (the first transfer op of the session stage,
  /// or of the whole plan).
  std::uint64_t call_bytes() const;

  /// Runs carried by one native call (> 1 only for vectored calls).
  std::uint64_t runs_per_call() const;
};

/// Knobs for homogenized pricing plans; mirrors srb::FastPathConfig on the
/// execution side (and predict::FastPathAssumptions above).
struct PlanAssumptions {
  bool vectored_rpc = false;
  bool pipelined = false;
  bool pooled_connections = false;
};

/// Lowers logical accesses to IoPlans. All builders are pure: they touch
/// no endpoint and advance no virtual time.
class PlanBuilder {
 public:
  // ---------------------------------------------------- serial sub-array --
  /// One rank's strided box read/write against a single stored object.
  /// `vectored` folds the run list into one kReadv/kWritev (the caller
  /// passes endpoint.fast_path().vectored_rpc). `buffer_bytes` must equal
  /// box.volume() * spec.elem_size.
  static StatusOr<IoPlan> subarray_read(const GlobalArraySpec& spec,
                                        const prt::LocalBox& box,
                                        const std::string& path,
                                        AccessStrategy strategy, bool vectored,
                                        std::size_t buffer_bytes);
  static StatusOr<IoPlan> subarray_write(const GlobalArraySpec& spec,
                                         const prt::LocalBox& box,
                                         const std::string& path,
                                         AccessStrategy strategy, bool vectored,
                                         std::size_t buffer_bytes);

  // --------------------------------------------------------- subfile grid --
  /// Read of `box` touching only intersecting chunk objects under `base`.
  static StatusOr<IoPlan> subfile_read(const SubfileLayout& layout,
                                       const prt::LocalBox& box,
                                       const std::string& base,
                                       std::size_t buffer_bytes);
  /// Write of a whole global array as one chunk object per grid cell.
  static StatusOr<IoPlan> subfile_write(const SubfileLayout& layout,
                                        const std::string& base,
                                        std::size_t buffer_bytes);

  // -------------------------------------------------------- whole objects --
  /// Sequential whole-object transfer (collective root leg, read_whole,
  /// replication streams).
  static IoPlan object_read(const std::string& path, std::uint64_t bytes);
  static IoPlan object_write(const std::string& path, std::uint64_t bytes,
                             srb::OpenMode mode);
  /// Create/truncate an object without payload (naive/multi-aggregator
  /// establish leg).
  static IoPlan object_establish(const std::string& path, srb::OpenMode mode);
  /// Whole-object read inside an existing connection (superfile reader leg:
  /// the caller manages connect/size/disconnect around the plan, because the
  /// payload size comes from a stat on the same connection). The plan has no
  /// kConnect, so the executor issues no trailing disconnect either.
  static IoPlan connected_object_read(const std::string& path,
                                      std::uint64_t bytes);

  // -------------------------------------------------- parallel I/O legs --
  /// One rank's leg of a naive parallel access: a session covering its
  /// contiguous runs (optionally vectored into a single call).
  static IoPlan rank_runs(const ArrayLayout& layout, int rank,
                          const std::string& path, PlanDir dir,
                          srb::OpenMode mode, bool vectored);
  /// One aggregator's leg of multi-aggregator two-phase I/O: seek to its
  /// contiguous file range and transfer it in one call.
  static IoPlan range_io(const std::string& path, std::uint64_t offset_bytes,
                         std::uint64_t bytes, PlanDir dir, srb::OpenMode mode);

  // ------------------------------------------------- dataset-level entry --
  /// DatasetHandle::read_box dispatch: subfile-chunked datasets lower to a
  /// chunk plan, everything else to a sub-array plan.
  static StatusOr<IoPlan> dataset_read_box(const GlobalArraySpec& spec,
                                           const std::array<int, 3>& chunks,
                                           const prt::LocalBox& box,
                                           const std::string& path,
                                           AccessStrategy strategy,
                                           bool vectored,
                                           std::size_t buffer_bytes);

  // ------------------------------------------------------- pricing plans --
  /// Homogenized per-dump plan of a dataset: the operation sequence one
  /// dump issues, with identical sessions folded into a repeat count. This
  /// is what the predictor prices (n(j) = session repeat, s = call bytes)
  /// and `msractl explain` prints; assumptions reshape it exactly like the
  /// fast path reshapes execution.
  static StatusOr<IoPlan> dataset_dump(const ArrayLayout& layout,
                                       IoMethod method, int aggregators,
                                       PlanDir dir,
                                       const PlanAssumptions& assumptions = {});
};

/// Resumable execution of a lowered plan: one step() runs one stage, so a
/// cooperative actor can yield between stages instead of blocking a host
/// thread for the whole plan. The cursor owns the open-endpoint state a
/// stage leaves behind (live connection, open handle, scratch buffer) plus
/// the plan position, and running a plan to completion via step() performs
/// exactly the op sequence — and error semantics — of
/// PlanExecutor::execute, which is itself implemented as a cursor drain.
///
/// The referenced plan, endpoint, timeline and buffers must outlive the
/// cursor. Movable, not copyable.
class PlanCursor {
 public:
  /// `out` receives kRead/kCopyOut payloads (read plans); `in` feeds
  /// kWrite/kCopyIn payloads (write plans). Either may be empty when the
  /// plan does not reference it.
  PlanCursor(const IoPlan& plan, StorageEndpoint& endpoint,
             simkit::Timeline& timeline, std::span<std::byte> out,
             std::span<const std::byte> in,
             obs::TraceRecorder* tracer = nullptr);

  PlanCursor(PlanCursor&&) = default;
  PlanCursor& operator=(PlanCursor&&) = default;

  /// All stages have run; status() is the final result.
  bool done() const { return stage_ >= plan_->stages.size(); }

  /// Index of the next stage step() will run.
  std::size_t next_stage() const { return stage_; }

  /// Runs the next stage and returns the running first-error status. After
  /// an error, remaining stages still step through their teardown of live
  /// state (matching one-shot execution); kExchange stages are annotations
  /// and consume a step without work.
  Status step();

  /// Running first-error status (the final result once done()).
  Status status() const { return result_; }

  /// Books every remaining stage under `tag`: step() enters a QosScope
  /// around the stage, so the device layer sees the tenant's class even
  /// when the cursor is driven from a pool worker thread. The tag a fleet
  /// actor resolved at lowering time rides the cursor — the propagation
  /// path from TenantClass down to Resource::acquire.
  void set_qos(const simkit::QosTag& tag) { qos_ = tag; }

 private:
  const IoPlan* plan_;
  StorageEndpoint* endpoint_;
  simkit::Timeline* timeline_;
  std::span<std::byte> out_;
  std::span<const std::byte> in_;
  obs::TraceRecorder* tracer_;
  obs::MetricsRegistry* registry_;
  bool metered_;
  std::vector<std::byte> scratch_;
  std::size_t stage_ = 0;
  bool connected_ = false;
  bool handle_open_ = false;
  HandleId handle_{};
  Status result_ = Status::Ok();
  std::optional<simkit::QosTag> qos_;
};

/// Executes a lowered plan against an endpoint. The executor issues exactly
/// the primitive sequence the pre-IR code issued, including its error
/// semantics: the first failing op wins; once an error occurred the only
/// ops still executed are the kClose matching an open handle and the
/// kDisconnect matching a live connection (their own errors are dropped —
/// exactly FileSession teardown). Per-stage spans are recorded into
/// `tracer` (if any) and per-stage counters into the endpoint's registry;
/// neither advances virtual time.
class PlanExecutor {
 public:
  /// `out` receives kRead/kCopyOut payloads (read plans); `in` feeds
  /// kWrite/kCopyIn payloads (write plans). Either may be empty when the
  /// plan does not reference it. Equivalent to draining a PlanCursor.
  static Status execute(const IoPlan& plan, StorageEndpoint& endpoint,
                        simkit::Timeline& timeline, std::span<std::byte> out,
                        std::span<const std::byte> in,
                        obs::TraceRecorder* tracer = nullptr);
};

}  // namespace msra::runtime
