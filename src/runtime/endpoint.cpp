#include "runtime/endpoint.h"

#include "common/log.h"

namespace msra::runtime {

StatusOr<FileSession> FileSession::start(StorageEndpoint& endpoint,
                                         simkit::Timeline& timeline,
                                         const std::string& path, OpenMode mode) {
  MSRA_RETURN_IF_ERROR(endpoint.connect(timeline));
  auto handle = endpoint.open(timeline, path, mode);
  if (!handle.ok()) {
    (void)endpoint.disconnect(timeline);
    return handle.status();
  }
  return FileSession(&endpoint, &timeline, *handle);
}

FileSession::FileSession(FileSession&& other) noexcept
    : endpoint_(other.endpoint_),
      timeline_(other.timeline_),
      handle_(other.handle_),
      open_(other.open_) {
  other.open_ = false;
}

Status FileSession::finish() {
  if (!open_) return Status::Ok();
  open_ = false;
  Status close_status = endpoint_->close(*timeline_, handle_);
  Status disc_status = endpoint_->disconnect(*timeline_);
  if (!close_status.ok()) return close_status;
  return disc_status;
}

FileSession::~FileSession() {
  Status status = finish();
  if (!status.ok()) {
    MSRA_LOG(kWarn) << "FileSession close failed: " << status.to_string();
  }
}

}  // namespace msra::runtime
