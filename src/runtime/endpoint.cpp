#include "runtime/endpoint.h"

#include "common/log.h"
#include "obs/metrics.h"

namespace msra::runtime {

namespace {

std::uint64_t runs_total(std::span<const IoRun> runs) {
  std::uint64_t total = 0;
  for (const IoRun& run : runs) total += run.length;
  return total;
}

}  // namespace

Status StorageEndpoint::readv(simkit::Timeline& timeline, HandleId handle,
                              std::span<const IoRun> runs,
                              std::span<std::byte> out) {
  if (runs_total(runs) != out.size()) {
    return Status::InvalidArgument("readv buffer does not match run total");
  }
  std::uint64_t filled = 0;
  for (const IoRun& run : runs) {
    MSRA_RETURN_IF_ERROR(seek(timeline, handle, run.offset));
    MSRA_RETURN_IF_ERROR(
        read(timeline, handle, out.subspan(filled, run.length)));
    filled += run.length;
  }
  return Status::Ok();
}

Status StorageEndpoint::writev(simkit::Timeline& timeline, HandleId handle,
                               std::span<const IoRun> runs,
                               std::span<const std::byte> data) {
  if (runs_total(runs) != data.size()) {
    return Status::InvalidArgument("writev payload does not match run total");
  }
  std::uint64_t consumed = 0;
  for (const IoRun& run : runs) {
    MSRA_RETURN_IF_ERROR(seek(timeline, handle, run.offset));
    MSRA_RETURN_IF_ERROR(
        write(timeline, handle, data.subspan(consumed, run.length)));
    consumed += run.length;
  }
  return Status::Ok();
}

Status RemoteEndpoint::connect(simkit::Timeline& timeline) {
  Status status = client_.connect(timeline);
  publish_fast_path_stats();
  return status;
}

Status RemoteEndpoint::disconnect(simkit::Timeline& timeline) {
  Status status = client_.disconnect(timeline);
  publish_fast_path_stats();
  return status;
}

Status RemoteEndpoint::read(simkit::Timeline& timeline, HandleId handle,
                            std::span<std::byte> out) {
  const FastPathConfig cfg = client_.fast_path();
  if (cfg.pipelined_transfers && kind() == StorageKind::kRemoteDisk &&
      out.size() >= cfg.pipeline_threshold_bytes) {
    Status status = client_.read_pipelined(timeline, resource_, handle, out);
    publish_fast_path_stats();
    return status;
  }
  return client_.obj_read(timeline, resource_, handle, out);
}

Status RemoteEndpoint::write(simkit::Timeline& timeline, HandleId handle,
                             std::span<const std::byte> data) {
  const FastPathConfig cfg = client_.fast_path();
  if (cfg.pipelined_transfers && kind() == StorageKind::kRemoteDisk &&
      data.size() >= cfg.pipeline_threshold_bytes) {
    Status status = client_.write_pipelined(timeline, resource_, handle, data);
    publish_fast_path_stats();
    return status;
  }
  return client_.obj_write(timeline, resource_, handle, data);
}

Status RemoteEndpoint::readv(simkit::Timeline& timeline, HandleId handle,
                             std::span<const IoRun> runs,
                             std::span<std::byte> out) {
  if (!client_.fast_path().vectored_rpc) {
    return StorageEndpoint::readv(timeline, handle, runs, out);
  }
  Status status = client_.obj_readv(timeline, resource_, handle, runs, out);
  publish_fast_path_stats();
  return status;
}

Status RemoteEndpoint::writev(simkit::Timeline& timeline, HandleId handle,
                              std::span<const IoRun> runs,
                              std::span<const std::byte> data) {
  if (!client_.fast_path().vectored_rpc) {
    return StorageEndpoint::writev(timeline, handle, runs, data);
  }
  Status status = client_.obj_writev(timeline, resource_, handle, runs, data);
  publish_fast_path_stats();
  return status;
}

void RemoteEndpoint::enable_fast_path_metrics(obs::MetricsRegistry* registry) {
  if (!registry) return;
  const std::string prefix = "fastpath." + display_name_ + ".";
  fp_batched_calls_ = registry->counter(prefix + "batched_calls");
  fp_batched_runs_ = registry->counter(prefix + "batched_runs");
  fp_pipelined_transfers_ = registry->counter(prefix + "pipelined_transfers");
  fp_pipelined_chunks_ = registry->counter(prefix + "pipelined_chunks");
  fp_pool_hits_ = registry->counter(prefix + "pool_hits");
  fp_pool_misses_ = registry->counter(prefix + "pool_misses");
  fp_overlap_fraction_ = registry->gauge(prefix + "overlap_fraction");
  fp_overlap_saved_ = registry->gauge(prefix + "overlap_saved_seconds");
}

void RemoteEndpoint::publish_fast_path_stats() {
  if (!fp_batched_calls_) return;
  // Ranks share one endpoint; the delta against `published_` must be
  // computed and retired under one lock or concurrent publishers would
  // double-count the same increments.
  std::lock_guard<std::mutex> lock(fp_publish_mutex_);
  const srb::FastPathStats now = client_.stats();
  fp_batched_calls_->add(now.batched_calls - published_.batched_calls);
  fp_batched_runs_->add(now.batched_runs - published_.batched_runs);
  fp_pipelined_transfers_->add(now.pipelined_transfers -
                               published_.pipelined_transfers);
  fp_pipelined_chunks_->add(now.pipelined_chunks - published_.pipelined_chunks);
  fp_pool_hits_->add(now.pool_hits - published_.pool_hits);
  fp_pool_misses_->add(now.pool_misses - published_.pool_misses);
  fp_overlap_fraction_->set(now.overlap_fraction());
  fp_overlap_saved_->set(now.overlap_saved_seconds());
  published_ = now;
}

StatusOr<FileSession> FileSession::start(StorageEndpoint& endpoint,
                                         simkit::Timeline& timeline,
                                         const std::string& path, OpenMode mode) {
  MSRA_RETURN_IF_ERROR(endpoint.connect(timeline));
  auto handle = endpoint.open(timeline, path, mode);
  if (!handle.ok()) {
    (void)endpoint.disconnect(timeline);
    return handle.status();
  }
  return FileSession(&endpoint, &timeline, *handle);
}

FileSession::FileSession(FileSession&& other) noexcept
    : endpoint_(other.endpoint_),
      timeline_(other.timeline_),
      handle_(other.handle_),
      open_(other.open_) {
  other.open_ = false;
}

Status FileSession::finish() {
  if (!open_) return Status::Ok();
  open_ = false;
  Status close_status = endpoint_->close(*timeline_, handle_);
  Status disc_status = endpoint_->disconnect(*timeline_);
  if (!close_status.ok()) return close_status;
  return disc_status;
}

FileSession::~FileSession() {
  Status status = finish();
  if (!status.ok()) {
    MSRA_LOG(kWarn) << "FileSession close failed: " << status.to_string();
  }
}

}  // namespace msra::runtime
