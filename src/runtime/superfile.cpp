#include "runtime/superfile.h"

#include <cstring>

#include "common/log.h"
#include "net/wire.h"
#include "runtime/plan.h"

namespace msra::runtime {

StatusOr<SuperfileWriter> SuperfileWriter::create(StorageEndpoint& endpoint,
                                                  simkit::Timeline& timeline,
                                                  const std::string& path) {
  MSRA_RETURN_IF_ERROR(endpoint.connect(timeline));
  auto handle = endpoint.open(timeline, path, OpenMode::kOverwrite);
  if (!handle.ok()) {
    (void)endpoint.disconnect(timeline);
    return handle.status();
  }
  return SuperfileWriter(&endpoint, &timeline, *handle);
}

SuperfileWriter::SuperfileWriter(SuperfileWriter&& other) noexcept
    : endpoint_(other.endpoint_),
      timeline_(other.timeline_),
      handle_(other.handle_),
      open_(other.open_),
      cursor_(other.cursor_),
      index_(std::move(other.index_)),
      order_(std::move(other.order_)) {
  other.open_ = false;
}

SuperfileWriter::~SuperfileWriter() {
  if (open_) {
    MSRA_LOG(kWarn) << "SuperfileWriter destroyed without finalize(); "
                       "the superfile has no index";
    (void)endpoint_->close(*timeline_, handle_);
    (void)endpoint_->disconnect(*timeline_);
  }
}

Status SuperfileWriter::add(const std::string& name,
                            std::span<const std::byte> data) {
  if (!open_) return Status::Internal("writer already finalized");
  if (index_.count(name)) {
    return Status::AlreadyExists("superfile member exists: " + name);
  }
  MSRA_RETURN_IF_ERROR(endpoint_->write(*timeline_, handle_, data));
  index_[name] = {cursor_, data.size()};
  order_.push_back(name);
  cursor_ += data.size();
  return Status::Ok();
}

Status SuperfileWriter::finalize() {
  if (!open_) return Status::Internal("writer already finalized");
  open_ = false;
  net::WireWriter w;
  w.put_u32(static_cast<std::uint32_t>(order_.size()));
  for (const auto& name : order_) {
    const auto& [offset, length] = index_.at(name);
    w.put_string(name);
    w.put_u64(offset);
    w.put_u64(length);
  }
  w.put_u64(cursor_);  // footer: index offset
  w.put_u64(kSuperfileMagic);
  Status status = endpoint_->write(*timeline_, handle_, w.take());
  Status close_status = endpoint_->close(*timeline_, handle_);
  Status disc = endpoint_->disconnect(*timeline_);
  if (!status.ok()) return status;
  if (!close_status.ok()) return close_status;
  return disc;
}

StatusOr<SuperfileReader> SuperfileReader::open(StorageEndpoint& endpoint,
                                                simkit::Timeline& timeline,
                                                const std::string& path) {
  MSRA_RETURN_IF_ERROR(endpoint.connect(timeline));
  auto total = endpoint.size(timeline, path);
  if (!total.ok()) {
    (void)endpoint.disconnect(timeline);
    return total.status();
  }
  // THE superfile read: one native request for the whole object. The
  // open/read/close leg lowers to a plan; the connection stays
  // caller-managed because the size came from a stat on it.
  SuperfileReader reader;
  reader.blob_.resize(*total);
  const IoPlan plan = PlanBuilder::connected_object_read(path, *total);
  Status status =
      PlanExecutor::execute(plan, endpoint, timeline, reader.blob_, {});
  Status disc = endpoint.disconnect(timeline);
  if (!status.ok()) return status;
  if (!disc.ok()) return disc;

  // Parse footer + index from memory.
  if (reader.blob_.size() < 16) {
    return Status::InvalidArgument("object too small to be a superfile");
  }
  net::WireReader footer(std::span<const std::byte>(reader.blob_)
                             .subspan(reader.blob_.size() - 16));
  MSRA_ASSIGN_OR_RETURN(std::uint64_t index_offset, footer.get_u64());
  MSRA_ASSIGN_OR_RETURN(std::uint64_t magic, footer.get_u64());
  if (magic != kSuperfileMagic || index_offset + 16 > reader.blob_.size()) {
    return Status::InvalidArgument("bad superfile footer");
  }
  net::WireReader index(std::span<const std::byte>(reader.blob_)
                            .subspan(index_offset,
                                     reader.blob_.size() - 16 - index_offset));
  MSRA_ASSIGN_OR_RETURN(std::uint32_t count, index.get_u32());
  for (std::uint32_t i = 0; i < count; ++i) {
    MSRA_ASSIGN_OR_RETURN(std::string name, index.get_string());
    MSRA_ASSIGN_OR_RETURN(std::uint64_t offset, index.get_u64());
    MSRA_ASSIGN_OR_RETURN(std::uint64_t length, index.get_u64());
    if (offset + length > index_offset) {
      return Status::InvalidArgument("superfile member out of bounds");
    }
    reader.index_[name] = {offset, length};
    reader.order_.push_back(std::move(name));
  }
  return reader;
}

StatusOr<std::span<const std::byte>> SuperfileReader::read(
    const std::string& name) const {
  auto it = index_.find(name);
  if (it == index_.end()) {
    return Status::NotFound("no superfile member: " + name);
  }
  const auto& [offset, length] = it->second;
  return std::span<const std::byte>(blob_).subspan(offset, length);
}

}  // namespace msra::runtime
