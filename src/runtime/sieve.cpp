#include "runtime/sieve.h"

#include <cstring>
#include <vector>

#include "obs/metrics.h"
#include "runtime/parallel_io.h"

namespace msra::runtime {

namespace {

/// Bills a sieving access into the endpoint's registry (if any): the
/// enclosing extent actually transferred vs. the bytes the caller wanted —
/// their ratio is the sieve waste.
void record_sieve(StorageEndpoint& endpoint, std::uint64_t extent_bytes,
                  std::uint64_t useful_bytes) {
  obs::MetricsRegistry* registry = endpoint.metrics();
  if (registry == nullptr || !registry->enabled()) return;
  registry->counter("sieve.extent_bytes")->add(extent_bytes);
  registry->counter("sieve.useful_bytes")->add(useful_bytes);
  registry->counter("sieve.accesses")->increment();
}

/// Visits contiguous runs of `box` in `spec`'s row-major order:
/// fn(global_elem_offset, elem_count, box_local_elem_offset).
void runs_of(const GlobalArraySpec& spec, const prt::LocalBox& box,
             const std::function<void(std::uint64_t, std::uint64_t,
                                      std::uint64_t)>& fn) {
  const auto& e = box.extent;
  if (e[2].size() == spec.dims[2] && e[1].size() == spec.dims[1]) {
    fn(spec.linear_offset(e[0].lo, 0, 0), box.volume(), 0);
    return;
  }
  if (e[2].size() == spec.dims[2]) {
    std::uint64_t local = 0;
    const std::uint64_t sheet = e[1].size() * e[2].size();
    for (std::uint64_t i = e[0].lo; i < e[0].hi; ++i) {
      fn(spec.linear_offset(i, e[1].lo, 0), sheet, local);
      local += sheet;
    }
    return;
  }
  std::uint64_t local = 0;
  for (std::uint64_t i = e[0].lo; i < e[0].hi; ++i) {
    for (std::uint64_t j = e[1].lo; j < e[1].hi; ++j) {
      fn(spec.linear_offset(i, j, e[2].lo), e[2].size(), local);
      local += e[2].size();
    }
  }
}

Status check_box(const GlobalArraySpec& spec, const prt::LocalBox& box,
                 std::size_t buffer_bytes) {
  for (int d = 0; d < 3; ++d) {
    const auto& e = box.extent[static_cast<std::size_t>(d)];
    if (e.lo >= e.hi || e.hi > spec.dims[static_cast<std::size_t>(d)]) {
      return Status::InvalidArgument("box outside array bounds");
    }
  }
  if (buffer_bytes != box.volume() * spec.elem_size) {
    return Status::InvalidArgument("buffer size does not match box volume");
  }
  return Status::Ok();
}

}  // namespace

std::pair<std::uint64_t, std::uint64_t> sieve_extent(const GlobalArraySpec& spec,
                                                     const prt::LocalBox& box) {
  const auto& e = box.extent;
  const std::uint64_t first =
      spec.linear_offset(e[0].lo, e[1].lo, e[2].lo) * spec.elem_size;
  const std::uint64_t last =
      (spec.linear_offset(e[0].hi - 1, e[1].hi - 1, e[2].hi - 1) + 1) *
      spec.elem_size;
  return {first, last};
}

std::uint64_t access_calls(const GlobalArraySpec& spec, const prt::LocalBox& box,
                           AccessStrategy strategy) {
  if (strategy == AccessStrategy::kSieving) return 1;
  std::uint64_t calls = 0;
  runs_of(spec, box, [&calls](std::uint64_t, std::uint64_t, std::uint64_t) {
    ++calls;
  });
  return calls;
}

Status read_subarray(StorageEndpoint& endpoint, simkit::Timeline& timeline,
                     const std::string& path, const GlobalArraySpec& spec,
                     const prt::LocalBox& box, std::span<std::byte> out,
                     AccessStrategy strategy) {
  MSRA_RETURN_IF_ERROR(check_box(spec, box, out.size()));
  auto session = FileSession::start(endpoint, timeline, path, OpenMode::kRead);
  if (!session.ok()) return session.status();
  const std::size_t elem = spec.elem_size;
  Status io = Status::Ok();
  if (strategy == AccessStrategy::kDirect) {
    if (endpoint.fast_path().vectored_rpc) {
      // runs_of visits runs with ascending, contiguous local offsets, so
      // `out` is exactly the concatenated payload of the run list.
      std::vector<IoRun> runs;
      runs_of(spec, box,
              [&](std::uint64_t goff, std::uint64_t count, std::uint64_t) {
                runs.push_back({goff * elem, count * elem});
              });
      io = session->readv(runs, out);
    } else {
      runs_of(spec, box,
              [&](std::uint64_t goff, std::uint64_t count, std::uint64_t loff) {
                if (!io.ok()) return;
                io = session->seek(goff * elem);
                if (io.ok()) io = session->read(out.subspan(loff * elem, count * elem));
              });
    }
  } else {
    const auto [first, last] = sieve_extent(spec, box);
    record_sieve(endpoint, last - first, out.size());
    std::vector<std::byte> extent(last - first);
    io = session->seek(first);
    if (io.ok()) io = session->read(extent);
    if (io.ok()) {
      runs_of(spec, box,
              [&](std::uint64_t goff, std::uint64_t count, std::uint64_t loff) {
                std::memcpy(out.data() + loff * elem,
                            extent.data() + (goff * elem - first), count * elem);
              });
    }
  }
  Status fin = session->finish();
  return io.ok() ? fin : io;
}

Status write_subarray(StorageEndpoint& endpoint, simkit::Timeline& timeline,
                      const std::string& path, const GlobalArraySpec& spec,
                      const prt::LocalBox& box, std::span<const std::byte> data,
                      AccessStrategy strategy) {
  MSRA_RETURN_IF_ERROR(check_box(spec, box, data.size()));
  const std::size_t elem = spec.elem_size;
  if (strategy == AccessStrategy::kDirect) {
    auto session =
        FileSession::start(endpoint, timeline, path, OpenMode::kUpdate);
    if (!session.ok()) return session.status();
    Status io = Status::Ok();
    if (endpoint.fast_path().vectored_rpc) {
      std::vector<IoRun> runs;
      runs_of(spec, box,
              [&](std::uint64_t goff, std::uint64_t count, std::uint64_t) {
                runs.push_back({goff * elem, count * elem});
              });
      io = session->writev(runs, data);
    } else {
      runs_of(spec, box,
              [&](std::uint64_t goff, std::uint64_t count, std::uint64_t loff) {
                if (!io.ok()) return;
                io = session->seek(goff * elem);
                if (io.ok()) io = session->write(data.subspan(loff * elem, count * elem));
              });
    }
    Status fin = session->finish();
    return io.ok() ? fin : io;
  }
  // Sieving write = read-modify-write of the enclosing extent.
  const auto [first, last] = sieve_extent(spec, box);
  record_sieve(endpoint, last - first, data.size());
  std::vector<std::byte> extent(last - first);
  {
    auto session =
        FileSession::start(endpoint, timeline, path, OpenMode::kRead);
    if (!session.ok()) return session.status();
    Status io = session->seek(first);
    if (io.ok()) io = session->read(extent);
    Status fin = session->finish();
    if (!io.ok()) return io;
    if (!fin.ok()) return fin;
  }
  runs_of(spec, box,
          [&](std::uint64_t goff, std::uint64_t count, std::uint64_t loff) {
            std::memcpy(extent.data() + (goff * elem - first),
                        data.data() + loff * elem, count * elem);
          });
  auto session = FileSession::start(endpoint, timeline, path, OpenMode::kUpdate);
  if (!session.ok()) return session.status();
  Status io = session->seek(first);
  if (io.ok()) io = session->write(extent);
  Status fin = session->finish();
  return io.ok() ? fin : io;
}

}  // namespace msra::runtime
