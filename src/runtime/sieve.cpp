#include "runtime/sieve.h"

#include "runtime/parallel_io.h"
#include "runtime/plan.h"

namespace msra::runtime {

std::pair<std::uint64_t, std::uint64_t> sieve_extent(const GlobalArraySpec& spec,
                                                     const prt::LocalBox& box) {
  const auto& e = box.extent;
  const std::uint64_t first =
      spec.linear_offset(e[0].lo, e[1].lo, e[2].lo) * spec.elem_size;
  const std::uint64_t last =
      (spec.linear_offset(e[0].hi - 1, e[1].hi - 1, e[2].hi - 1) + 1) *
      spec.elem_size;
  return {first, last};
}

std::uint64_t access_calls(const GlobalArraySpec& spec, const prt::LocalBox& box,
                           AccessStrategy strategy) {
  if (strategy == AccessStrategy::kSieving) return 1;
  std::uint64_t calls = 0;
  for_each_run_in(spec.dims, box,
                  [&calls](std::uint64_t, std::uint64_t, std::uint64_t) {
                    ++calls;
                  });
  return calls;
}

Status read_subarray(StorageEndpoint& endpoint, simkit::Timeline& timeline,
                     const std::string& path, const GlobalArraySpec& spec,
                     const prt::LocalBox& box, std::span<std::byte> out,
                     AccessStrategy strategy) {
  MSRA_ASSIGN_OR_RETURN(
      const IoPlan plan,
      PlanBuilder::subarray_read(spec, box, path, strategy,
                                 endpoint.fast_path().vectored_rpc,
                                 out.size()));
  return PlanExecutor::execute(plan, endpoint, timeline, out, {});
}

Status write_subarray(StorageEndpoint& endpoint, simkit::Timeline& timeline,
                      const std::string& path, const GlobalArraySpec& spec,
                      const prt::LocalBox& box, std::span<const std::byte> data,
                      AccessStrategy strategy) {
  MSRA_ASSIGN_OR_RETURN(
      const IoPlan plan,
      PlanBuilder::subarray_write(spec, box, path, strategy,
                                  endpoint.fast_path().vectored_rpc,
                                  data.size()));
  return PlanExecutor::execute(plan, endpoint, timeline, {}, data);
}

}  // namespace msra::runtime
