#include "runtime/subfile.h"

#include <cstring>

namespace msra::runtime {

StatusOr<SubfileLayout> SubfileLayout::create(const GlobalArraySpec& spec,
                                              const std::array<int, 3>& chunks) {
  for (int d = 0; d < 3; ++d) {
    const auto ud = static_cast<std::size_t>(d);
    if (chunks[ud] < 1 ||
        static_cast<std::uint64_t>(chunks[ud]) > spec.dims[ud]) {
      return Status::InvalidArgument("bad chunk count for dimension " +
                                     std::to_string(d));
    }
  }
  SubfileLayout out;
  out.spec_ = spec;
  out.chunks_ = chunks;
  return out;
}

prt::LocalBox SubfileLayout::chunk_box(int ci, int cj, int ck) const {
  prt::LocalBox box;
  box.extent[0] = prt::block_extent(spec_.dims[0], chunks_[0], ci);
  box.extent[1] = prt::block_extent(spec_.dims[1], chunks_[1], cj);
  box.extent[2] = prt::block_extent(spec_.dims[2], chunks_[2], ck);
  return box;
}

std::string SubfileLayout::chunk_path(const std::string& base, int ci, int cj,
                                      int ck) {
  return base + "/chunk_" + std::to_string(ci) + "_" + std::to_string(cj) +
         "_" + std::to_string(ck);
}

std::array<std::pair<int, int>, 3> SubfileLayout::chunk_range(
    const prt::LocalBox& box) const {
  std::array<std::pair<int, int>, 3> out;
  for (std::size_t d = 0; d < 3; ++d) {
    int lo = 0;
    while (chunk_box(d == 0 ? lo : 0, d == 1 ? lo : 0, d == 2 ? lo : 0)
               .extent[d]
               .hi <= box.extent[d].lo) {
      ++lo;
    }
    int hi = lo;
    while (hi < chunks_[d] &&
           chunk_box(d == 0 ? hi : 0, d == 1 ? hi : 0, d == 2 ? hi : 0)
                   .extent[d]
                   .lo < box.extent[d].hi) {
      ++hi;
    }
    out[d] = {lo, hi};
  }
  return out;
}

std::uint64_t SubfileLayout::chunks_touched(const prt::LocalBox& box) const {
  const auto range = chunk_range(box);
  std::uint64_t n = 1;
  for (const auto& [lo, hi] : range) n *= static_cast<std::uint64_t>(hi - lo);
  return n;
}

namespace {

/// Intersection of two boxes (assumed non-empty use-sites check emptiness).
prt::LocalBox intersect(const prt::LocalBox& a, const prt::LocalBox& b) {
  prt::LocalBox out;
  for (std::size_t d = 0; d < 3; ++d) {
    out.extent[d].lo = std::max(a.extent[d].lo, b.extent[d].lo);
    out.extent[d].hi = std::min(a.extent[d].hi, b.extent[d].hi);
  }
  return out;
}

bool empty_box(const prt::LocalBox& box) {
  for (const auto& e : box.extent) {
    if (e.lo >= e.hi) return true;
  }
  return false;
}

}  // namespace

Status write_subfiles(StorageEndpoint& endpoint, simkit::Timeline& timeline,
                      const std::string& base, const SubfileLayout& layout,
                      std::span<const std::byte> global) {
  const GlobalArraySpec& spec = layout.spec();
  if (global.size() != spec.bytes()) {
    return Status::InvalidArgument("global buffer size mismatch");
  }
  const std::size_t elem = spec.elem_size;
  MSRA_RETURN_IF_ERROR(endpoint.connect(timeline));
  Status status = Status::Ok();
  for (int ci = 0; ci < layout.chunks()[0] && status.ok(); ++ci) {
    for (int cj = 0; cj < layout.chunks()[1] && status.ok(); ++cj) {
      for (int ck = 0; ck < layout.chunks()[2] && status.ok(); ++ck) {
        const prt::LocalBox box = layout.chunk_box(ci, cj, ck);
        // Pack the chunk row-major over its own box.
        std::vector<std::byte> chunk(box.volume() * elem);
        std::uint64_t local = 0;
        for (std::uint64_t i = box.extent[0].lo; i < box.extent[0].hi; ++i) {
          for (std::uint64_t j = box.extent[1].lo; j < box.extent[1].hi; ++j) {
            const std::uint64_t goff =
                spec.linear_offset(i, j, box.extent[2].lo);
            const std::uint64_t count = box.extent[2].size();
            std::memcpy(chunk.data() + local * elem, global.data() + goff * elem,
                        count * elem);
            local += count;
          }
        }
        auto handle = endpoint.open(timeline, SubfileLayout::chunk_path(base, ci, cj, ck),
                                    OpenMode::kOverwrite);
        if (!handle.ok()) {
          status = handle.status();
          break;
        }
        status = endpoint.write(timeline, *handle, chunk);
        Status close_status = endpoint.close(timeline, *handle);
        if (status.ok()) status = close_status;
      }
    }
  }
  Status disc = endpoint.disconnect(timeline);
  return status.ok() ? disc : status;
}

Status read_subfiles_box(StorageEndpoint& endpoint, simkit::Timeline& timeline,
                         const std::string& base, const SubfileLayout& layout,
                         const prt::LocalBox& box, std::span<std::byte> out) {
  const GlobalArraySpec& spec = layout.spec();
  const std::size_t elem = spec.elem_size;
  if (out.size() != box.volume() * elem) {
    return Status::InvalidArgument("output buffer size mismatch");
  }
  const auto range = layout.chunk_range(box);
  const std::uint64_t out_nj = box.extent[1].size();
  const std::uint64_t out_nk = box.extent[2].size();
  MSRA_RETURN_IF_ERROR(endpoint.connect(timeline));
  Status status = Status::Ok();
  for (int ci = range[0].first; ci < range[0].second && status.ok(); ++ci) {
    for (int cj = range[1].first; cj < range[1].second && status.ok(); ++cj) {
      for (int ck = range[2].first; ck < range[2].second && status.ok(); ++ck) {
        const prt::LocalBox cbox = layout.chunk_box(ci, cj, ck);
        const prt::LocalBox overlap = intersect(cbox, box);
        if (empty_box(overlap)) continue;
        // Read the whole chunk (one native request per chunk).
        std::vector<std::byte> chunk(cbox.volume() * elem);
        auto handle = endpoint.open(timeline, SubfileLayout::chunk_path(base, ci, cj, ck),
                                    OpenMode::kRead);
        if (!handle.ok()) {
          status = handle.status();
          break;
        }
        status = endpoint.read(timeline, *handle, chunk);
        Status close_status = endpoint.close(timeline, *handle);
        if (status.ok()) status = close_status;
        if (!status.ok()) break;
        // Extract the overlap into the output box buffer.
        const std::uint64_t c_nj = cbox.extent[1].size();
        const std::uint64_t c_nk = cbox.extent[2].size();
        for (std::uint64_t i = overlap.extent[0].lo; i < overlap.extent[0].hi; ++i) {
          for (std::uint64_t j = overlap.extent[1].lo; j < overlap.extent[1].hi; ++j) {
            const std::uint64_t src =
                ((i - cbox.extent[0].lo) * c_nj + (j - cbox.extent[1].lo)) * c_nk +
                (overlap.extent[2].lo - cbox.extent[2].lo);
            const std::uint64_t dst =
                ((i - box.extent[0].lo) * out_nj + (j - box.extent[1].lo)) * out_nk +
                (overlap.extent[2].lo - box.extent[2].lo);
            std::memcpy(out.data() + dst * elem, chunk.data() + src * elem,
                        overlap.extent[2].size() * elem);
          }
        }
      }
    }
  }
  Status disc = endpoint.disconnect(timeline);
  return status.ok() ? disc : status;
}

}  // namespace msra::runtime
