#include "runtime/subfile.h"

#include "runtime/plan.h"

namespace msra::runtime {

StatusOr<SubfileLayout> SubfileLayout::create(const GlobalArraySpec& spec,
                                              const std::array<int, 3>& chunks) {
  for (int d = 0; d < 3; ++d) {
    const auto ud = static_cast<std::size_t>(d);
    if (chunks[ud] < 1 ||
        static_cast<std::uint64_t>(chunks[ud]) > spec.dims[ud]) {
      return Status::InvalidArgument("bad chunk count for dimension " +
                                     std::to_string(d));
    }
  }
  SubfileLayout out;
  out.spec_ = spec;
  out.chunks_ = chunks;
  return out;
}

prt::LocalBox SubfileLayout::chunk_box(int ci, int cj, int ck) const {
  prt::LocalBox box;
  box.extent[0] = prt::block_extent(spec_.dims[0], chunks_[0], ci);
  box.extent[1] = prt::block_extent(spec_.dims[1], chunks_[1], cj);
  box.extent[2] = prt::block_extent(spec_.dims[2], chunks_[2], ck);
  return box;
}

std::string SubfileLayout::chunk_path(const std::string& base, int ci, int cj,
                                      int ck) {
  return base + "/chunk_" + std::to_string(ci) + "_" + std::to_string(cj) +
         "_" + std::to_string(ck);
}

std::array<std::pair<int, int>, 3> SubfileLayout::chunk_range(
    const prt::LocalBox& box) const {
  std::array<std::pair<int, int>, 3> out;
  for (std::size_t d = 0; d < 3; ++d) {
    int lo = 0;
    while (chunk_box(d == 0 ? lo : 0, d == 1 ? lo : 0, d == 2 ? lo : 0)
               .extent[d]
               .hi <= box.extent[d].lo) {
      ++lo;
    }
    int hi = lo;
    while (hi < chunks_[d] &&
           chunk_box(d == 0 ? hi : 0, d == 1 ? hi : 0, d == 2 ? hi : 0)
                   .extent[d]
                   .lo < box.extent[d].hi) {
      ++hi;
    }
    out[d] = {lo, hi};
  }
  return out;
}

std::uint64_t SubfileLayout::chunks_touched(const prt::LocalBox& box) const {
  const auto range = chunk_range(box);
  std::uint64_t n = 1;
  for (const auto& [lo, hi] : range) n *= static_cast<std::uint64_t>(hi - lo);
  return n;
}

Status write_subfiles(StorageEndpoint& endpoint, simkit::Timeline& timeline,
                      const std::string& base, const SubfileLayout& layout,
                      std::span<const std::byte> global) {
  MSRA_ASSIGN_OR_RETURN(const IoPlan plan,
                        PlanBuilder::subfile_write(layout, base, global.size()));
  return PlanExecutor::execute(plan, endpoint, timeline, {}, global);
}

Status read_subfiles_box(StorageEndpoint& endpoint, simkit::Timeline& timeline,
                         const std::string& base, const SubfileLayout& layout,
                         const prt::LocalBox& box, std::span<std::byte> out) {
  MSRA_ASSIGN_OR_RETURN(
      const IoPlan plan,
      PlanBuilder::subfile_read(layout, box, base, out.size()));
  return PlanExecutor::execute(plan, endpoint, timeline, out, {});
}

}  // namespace msra::runtime
