#include "runtime/async_io.h"

#include "obs/metrics.h"
#include "simkit/time.h"

namespace msra::runtime {

namespace {
/// Publishes the writer's queue depth into the endpoint's registry, if any.
/// A histogram captures the depth distribution (was write-behind actually
/// buffering?) and a gauge holds the latest value.
void record_depth(StorageEndpoint& endpoint, std::uint64_t depth) {
  obs::MetricsRegistry* registry = endpoint.metrics();
  if (registry == nullptr || !registry->enabled()) return;
  registry->gauge("async.queue_depth")->set(static_cast<double>(depth));
  registry->histogram("async.queue_depth_dist")->record(static_cast<double>(depth));
}
}  // namespace

// ------------------------------------------------------------ AsyncWriter --

AsyncWriter::AsyncWriter(StorageEndpoint& endpoint, double memcpy_bandwidth)
    : endpoint_(endpoint), memcpy_bandwidth_(memcpy_bandwidth), pool_(1) {}

AsyncWriter::~AsyncWriter() { pool_.wait_idle(); }

Status AsyncWriter::submit(simkit::Timeline& caller, const std::string& path,
                           std::vector<std::byte> data, OpenMode mode) {
  std::uint64_t depth;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!first_error_.ok()) return first_error_;  // fail fast after an error
    ++submitted_;
    depth = ++pending_;
  }
  record_depth(endpoint_, depth);
  // The caller pays only for staging the buffer.
  caller.advance(simkit::transfer_time(data.size(), memcpy_bandwidth_));
  // The background work cannot start before the submission instant.
  engine_.advance_to(caller.now());
  auto payload = std::make_shared<std::vector<std::byte>>(std::move(data));
  pool_.submit([this, path, payload, mode] {
    auto session = FileSession::start(endpoint_, engine_, path, mode);
    Status status = session.ok() ? Status::Ok() : session.status();
    if (status.ok()) {
      status = session->write(*payload);
      Status fin = session->finish();
      if (status.ok()) status = fin;
    }
    std::uint64_t depth;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (!status.ok() && first_error_.ok()) first_error_ = status;
      depth = --pending_;
    }
    record_depth(endpoint_, depth);
  });
  return Status::Ok();
}

Status AsyncWriter::flush(simkit::Timeline& caller) {
  pool_.wait_idle();
  caller.advance_to(engine_.now());
  std::lock_guard<std::mutex> lock(mutex_);
  return first_error_;
}

std::uint64_t AsyncWriter::submitted() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return submitted_;
}

std::uint64_t AsyncWriter::pending() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return pending_;
}

// ------------------------------------------------------------- Prefetcher --

Prefetcher::Prefetcher(StorageEndpoint& endpoint, double memcpy_bandwidth,
                       std::size_t capacity)
    : endpoint_(endpoint),
      memcpy_bandwidth_(memcpy_bandwidth),
      capacity_(capacity == 0 ? 1 : capacity),
      pool_(1) {}

Prefetcher::~Prefetcher() { pool_.wait_idle(); }

StatusOr<std::vector<std::byte>> Prefetcher::read_whole(
    simkit::Timeline& timeline, const std::string& path) {
  MSRA_RETURN_IF_ERROR(endpoint_.connect(timeline));
  auto total = endpoint_.size(timeline, path);
  if (!total.ok()) {
    (void)endpoint_.disconnect(timeline);
    return total.status();
  }
  auto handle = endpoint_.open(timeline, path, OpenMode::kRead);
  if (!handle.ok()) {
    (void)endpoint_.disconnect(timeline);
    return handle.status();
  }
  std::vector<std::byte> data(*total);
  Status status = endpoint_.read(timeline, *handle, data);
  Status close_status = endpoint_.close(timeline, *handle);
  Status disc_status = endpoint_.disconnect(timeline);
  if (!status.ok()) return status;
  if (!close_status.ok()) return close_status;
  if (!disc_status.ok()) return disc_status;
  return data;
}

void Prefetcher::touch_locked(const std::string& path) {
  lru_.remove(path);
  lru_.push_front(path);
}

void Prefetcher::evict_locked() {
  // Walk from the cold end, dropping completed entries; in-flight prefetches
  // are skipped (their worker still needs the Entry slot).
  auto it = lru_.end();
  while (cache_.size() > capacity_ && it != lru_.begin()) {
    --it;
    auto found = cache_.find(*it);
    if (found == cache_.end()) {
      it = lru_.erase(it);
      continue;
    }
    if (!found->second.done) continue;
    cache_.erase(found);
    it = lru_.erase(it);
    ++evictions_;
  }
}

void Prefetcher::prefetch(simkit::Timeline& caller, const std::string& path) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (cache_.count(path)) {
      touch_locked(path);
      return;  // already in flight or cached
    }
    cache_.emplace(path, Entry{});
    touch_locked(path);
    evict_locked();
  }
  engine_.advance_to(caller.now());
  pool_.submit([this, path] {
    auto result = read_whole(engine_, path);
    std::lock_guard<std::mutex> lock(mutex_);
    Entry& entry = cache_[path];
    entry.done = true;
    entry.ready_at = engine_.now();
    if (result.ok()) {
      entry.data = std::move(*result);
    } else {
      entry.status = result.status();
    }
    evict_locked();  // entries kept alive while in flight may now go
  });
}

StatusOr<std::vector<std::byte>> Prefetcher::fetch(simkit::Timeline& caller,
                                                   const std::string& path) {
  if (obs::MetricsRegistry* registry = endpoint_.metrics()) {
    registry->counter("prefetch.fetches")->increment();
  }
  pool_.wait_idle();  // wall-clock settle; virtual-time cost handled below
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = cache_.find(path);
    if (it != cache_.end() && it->second.done) {
      touch_locked(path);
      const Entry& entry = it->second;
      if (!entry.status.ok()) return entry.status;
      if (entry.ready_at <= caller.now()) {
        ++hits_;  // fully hidden by compute
        if (obs::MetricsRegistry* registry = endpoint_.metrics()) {
          registry->counter("prefetch.hits")->increment();
        }
      }
      caller.advance_to(entry.ready_at);
      caller.advance(simkit::transfer_time(entry.data.size(), memcpy_bandwidth_));
      return entry.data;
    }
  }
  // Never prefetched: synchronous read on the caller's clock.
  return read_whole(caller, path);
}

std::uint64_t Prefetcher::hits() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return hits_;
}

std::size_t Prefetcher::cached_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return cache_.size();
}

std::uint64_t Prefetcher::evictions() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return evictions_;
}

}  // namespace msra::runtime
