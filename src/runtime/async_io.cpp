#include "runtime/async_io.h"

#include "obs/metrics.h"
#include "simkit/time.h"

namespace msra::runtime {

namespace {
/// Publishes the writer's queue depth into the endpoint's registry, if any.
/// A histogram captures the depth distribution (was write-behind actually
/// buffering?) and a gauge holds the latest value.
void record_depth(StorageEndpoint& endpoint, std::uint64_t depth) {
  obs::MetricsRegistry* registry = endpoint.metrics();
  if (registry == nullptr || !registry->enabled()) return;
  registry->gauge("async.queue_depth")->set(static_cast<double>(depth));
  registry->histogram("async.queue_depth_dist")->record(static_cast<double>(depth));
}
}  // namespace

// ------------------------------------------------------------ AsyncWriter --

AsyncWriter::AsyncWriter(StorageEndpoint& endpoint, double memcpy_bandwidth)
    : endpoint_(endpoint), memcpy_bandwidth_(memcpy_bandwidth), pool_(1) {}

AsyncWriter::~AsyncWriter() { pool_.wait_idle(); }

Status AsyncWriter::submit(simkit::Timeline& caller, const std::string& path,
                           std::vector<std::byte> data, OpenMode mode) {
  std::uint64_t depth;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!first_error_.ok()) return first_error_;  // fail fast after an error
    ++submitted_;
    depth = ++pending_;
  }
  record_depth(endpoint_, depth);
  // The caller pays only for staging the buffer.
  caller.advance(simkit::transfer_time(data.size(), memcpy_bandwidth_));
  // The background work cannot start before the submission instant.
  engine_.advance_to(caller.now());
  auto payload = std::make_shared<std::vector<std::byte>>(std::move(data));
  pool_.submit([this, path, payload, mode] {
    auto session = FileSession::start(endpoint_, engine_, path, mode);
    Status status = session.ok() ? Status::Ok() : session.status();
    if (status.ok()) {
      status = session->write(*payload);
      Status fin = session->finish();
      if (status.ok()) status = fin;
    }
    std::uint64_t depth;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (!status.ok() && first_error_.ok()) first_error_ = status;
      depth = --pending_;
    }
    record_depth(endpoint_, depth);
  });
  return Status::Ok();
}

Status AsyncWriter::flush(simkit::Timeline& caller) {
  pool_.wait_idle();
  caller.advance_to(engine_.now());
  std::lock_guard<std::mutex> lock(mutex_);
  return first_error_;
}

std::uint64_t AsyncWriter::submitted() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return submitted_;
}

std::uint64_t AsyncWriter::pending() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return pending_;
}

}  // namespace msra::runtime
