// Endpoint construction used to be ad-hoc per call site (pick the
// resource, pick the link, remember the resource name string). The factory
// centralises that wiring and applies the obs::InstrumentedEndpoint
// wrapper by default, so every endpoint built through it reports Eq.-1
// component histograms into the owning system's MetricsRegistry without
// the caller doing anything.
#pragma once

#include <memory>

#include "runtime/endpoint.h"

namespace msra::core {
class StorageSystem;
enum class Location;
}  // namespace msra::core

namespace msra::runtime {

/// Builds a fresh endpoint for `location` over `system`'s resources and
/// links, reaching the SRB site at index `server` for the remote classes
/// (kLocalDisk is client-side; its server index is ignored). Requires a
/// concrete location (not kAuto/kDisable). With `instrumented` (the
/// default) the endpoint is wrapped to record into `system.metrics()`;
/// pass false for a bare, telemetry-free endpoint.
std::unique_ptr<StorageEndpoint> make_endpoint(core::StorageSystem& system,
                                               core::Location location,
                                               int server = 0,
                                               bool instrumented = true);

}  // namespace msra::runtime
