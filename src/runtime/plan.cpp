#include "runtime/plan.h"

#include <algorithm>
#include <cstring>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "runtime/subfile.h"

namespace msra::runtime {

namespace {

constexpr bool is_transfer(PlanOpKind kind) {
  return kind == PlanOpKind::kRead || kind == PlanOpKind::kWrite ||
         kind == PlanOpKind::kReadv || kind == PlanOpKind::kWritev;
}

PlanOp simple_op(PlanOpKind kind) {
  PlanOp op;
  op.kind = kind;
  return op;
}

PlanOp open_op(const std::string& path, srb::OpenMode mode) {
  PlanOp op;
  op.kind = PlanOpKind::kOpen;
  op.path = path;
  op.mode = mode;
  return op;
}

PlanOp seek_op(std::uint64_t offset) {
  PlanOp op;
  op.kind = PlanOpKind::kSeek;
  op.offset = offset;
  return op;
}

/// Transfer to/from the user buffer at `buf_offset`.
PlanOp rw_op(PlanDir dir, std::uint64_t bytes, std::uint64_t buf_offset) {
  PlanOp op;
  op.kind = dir == PlanDir::kRead ? PlanOpKind::kRead : PlanOpKind::kWrite;
  op.bytes = bytes;
  op.buf_offset = buf_offset;
  return op;
}

/// Transfer to/from the scratch buffer at `scratch_offset`.
PlanOp scratch_rw_op(PlanDir dir, std::uint64_t bytes,
                     std::uint64_t scratch_offset) {
  PlanOp op;
  op.kind = dir == PlanDir::kRead ? PlanOpKind::kRead : PlanOpKind::kWrite;
  op.bytes = bytes;
  op.offset = scratch_offset;
  op.scratch = true;
  return op;
}

PlanOp copy_op(PlanOpKind kind, std::uint64_t scratch_offset,
               std::uint64_t buf_offset, std::uint64_t bytes) {
  PlanOp op;
  op.kind = kind;
  op.offset = scratch_offset;
  op.buf_offset = buf_offset;
  op.bytes = bytes;
  return op;
}

PlanStage stage(PlanStageKind kind, std::string label) {
  PlanStage out;
  out.kind = kind;
  out.label = std::move(label);
  return out;
}

/// connect + open leg.
PlanStage setup_stage(const std::string& path, srb::OpenMode mode) {
  PlanStage out = stage(PlanStageKind::kSetup, "open");
  out.ops.push_back(simple_op(PlanOpKind::kConnect));
  out.ops.push_back(open_op(path, mode));
  return out;
}

/// close + disconnect leg.
PlanStage teardown_stage() {
  PlanStage out = stage(PlanStageKind::kTeardown, "close");
  out.ops.push_back(simple_op(PlanOpKind::kClose));
  out.ops.push_back(simple_op(PlanOpKind::kDisconnect));
  return out;
}

Status check_box(const GlobalArraySpec& spec, const prt::LocalBox& box,
                 std::size_t buffer_bytes) {
  for (int d = 0; d < 3; ++d) {
    const auto& e = box.extent[static_cast<std::size_t>(d)];
    if (e.lo >= e.hi || e.hi > spec.dims[static_cast<std::size_t>(d)]) {
      return Status::InvalidArgument("box outside array bounds");
    }
  }
  if (buffer_bytes != box.volume() * spec.elem_size) {
    return Status::InvalidArgument("buffer size does not match box volume");
  }
  return Status::Ok();
}

/// The strided payload leg of a direct-strategy access: one seek+transfer
/// pair per contiguous run, or a single vectored call carrying the whole
/// run list when the fast path is on.
PlanStage run_list_stage(const std::array<std::uint64_t, 3>& dims,
                         const prt::LocalBox& box, std::size_t elem,
                         PlanDir dir, bool vectored) {
  PlanStage out = stage(PlanStageKind::kIo,
                        vectored ? "vectored run list" : "run list");
  if (vectored) {
    PlanOp op;
    op.kind = dir == PlanDir::kRead ? PlanOpKind::kReadv : PlanOpKind::kWritev;
    // Runs are visited with ascending, contiguous local offsets, so the
    // user buffer is exactly the concatenated payload of the run list.
    for_each_run_in(dims, box,
                    [&](std::uint64_t goff, std::uint64_t count, std::uint64_t) {
                      op.run_list.push_back({goff * elem, count * elem});
                    });
    op.bytes = box.volume() * elem;
    op.run_count = op.run_list.size();
    out.ops.push_back(std::move(op));
    return out;
  }
  for_each_run_in(dims, box,
                  [&](std::uint64_t goff, std::uint64_t count,
                      std::uint64_t loff) {
                    out.ops.push_back(seek_op(goff * elem));
                    out.ops.push_back(rw_op(dir, count * elem, loff * elem));
                  });
  return out;
}

prt::LocalBox intersect(const prt::LocalBox& a, const prt::LocalBox& b) {
  prt::LocalBox out;
  for (std::size_t d = 0; d < 3; ++d) {
    out.extent[d].lo = std::max(a.extent[d].lo, b.extent[d].lo);
    out.extent[d].hi = std::min(a.extent[d].hi, b.extent[d].hi);
  }
  return out;
}

bool empty_box(const prt::LocalBox& box) {
  for (const auto& e : box.extent) {
    if (e.lo >= e.hi) return true;
  }
  return false;
}

std::string chunk_label(int ci, int cj, int ck) {
  return "chunk " + std::to_string(ci) + "_" + std::to_string(cj) + "_" +
         std::to_string(ck);
}

}  // namespace

// ------------------------------------------------------------------ IoPlan --

const PlanStage* IoPlan::session_stage() const {
  for (const PlanStage& s : stages) {
    if (s.kind == PlanStageKind::kSession) return &s;
  }
  return nullptr;
}

std::uint64_t IoPlan::calls_per_dump() const {
  if (const PlanStage* s = session_stage()) return s->repeat;
  std::uint64_t calls = 0;
  for (const PlanStage& s : stages) {
    for (const PlanOp& op : s.ops) {
      if (is_transfer(op.kind)) ++calls;
    }
  }
  return calls;
}

std::uint64_t IoPlan::call_bytes() const {
  const PlanStage* session = session_stage();
  if (session != nullptr) {
    for (const PlanOp& op : session->ops) {
      if (is_transfer(op.kind)) return op.bytes;
    }
    return 0;
  }
  for (const PlanStage& s : stages) {
    for (const PlanOp& op : s.ops) {
      if (is_transfer(op.kind)) return op.bytes;
    }
  }
  return 0;
}

std::uint64_t IoPlan::runs_per_call() const {
  for (const PlanStage& s : stages) {
    for (const PlanOp& op : s.ops) {
      if (op.kind == PlanOpKind::kReadv || op.kind == PlanOpKind::kWritev) {
        return op.runs();
      }
    }
  }
  return 1;
}

// ------------------------------------------------------------- PlanBuilder --

StatusOr<IoPlan> PlanBuilder::subarray_read(const GlobalArraySpec& spec,
                                            const prt::LocalBox& box,
                                            const std::string& path,
                                            AccessStrategy strategy,
                                            bool vectored,
                                            std::size_t buffer_bytes) {
  MSRA_RETURN_IF_ERROR(check_box(spec, box, buffer_bytes));
  const std::size_t elem = spec.elem_size;
  IoPlan plan;
  plan.dir = PlanDir::kRead;
  plan.strategy = strategy;
  plan.stages.push_back(setup_stage(path, srb::OpenMode::kRead));
  if (strategy == AccessStrategy::kDirect) {
    plan.vectored = vectored;
    plan.stages.push_back(
        run_list_stage(spec.dims, box, elem, PlanDir::kRead, vectored));
  } else {
    const auto [first, last] = sieve_extent(spec, box);
    plan.scratch_bytes = last - first;
    PlanStage io = stage(PlanStageKind::kIo, "sieve extent");
    io.sieve_extent_bytes = last - first;
    io.sieve_useful_bytes = buffer_bytes;
    io.ops.push_back(seek_op(first));
    io.ops.push_back(scratch_rw_op(PlanDir::kRead, last - first, 0));
    plan.stages.push_back(std::move(io));
    PlanStage extract = stage(PlanStageKind::kCopy, "extract runs");
    for_each_run_in(spec.dims, box,
                    [&](std::uint64_t goff, std::uint64_t count,
                        std::uint64_t loff) {
                      extract.ops.push_back(copy_op(PlanOpKind::kCopyOut,
                                                    goff * elem - first,
                                                    loff * elem, count * elem));
                    });
    plan.stages.push_back(std::move(extract));
  }
  plan.stages.push_back(teardown_stage());
  return plan;
}

StatusOr<IoPlan> PlanBuilder::subarray_write(const GlobalArraySpec& spec,
                                             const prt::LocalBox& box,
                                             const std::string& path,
                                             AccessStrategy strategy,
                                             bool vectored,
                                             std::size_t buffer_bytes) {
  MSRA_RETURN_IF_ERROR(check_box(spec, box, buffer_bytes));
  const std::size_t elem = spec.elem_size;
  IoPlan plan;
  plan.dir = PlanDir::kWrite;
  plan.strategy = strategy;
  if (strategy == AccessStrategy::kDirect) {
    plan.vectored = vectored;
    plan.stages.push_back(setup_stage(path, srb::OpenMode::kUpdate));
    plan.stages.push_back(
        run_list_stage(spec.dims, box, elem, PlanDir::kWrite, vectored));
    plan.stages.push_back(teardown_stage());
    return plan;
  }
  // Sieving write = read-modify-write of the enclosing extent, so bytes
  // between the box's runs are preserved.
  const auto [first, last] = sieve_extent(spec, box);
  plan.scratch_bytes = last - first;
  PlanStage setup = setup_stage(path, srb::OpenMode::kRead);
  setup.label = "open (read-modify-write)";
  setup.sieve_extent_bytes = last - first;
  setup.sieve_useful_bytes = buffer_bytes;
  plan.stages.push_back(std::move(setup));
  PlanStage fetch = stage(PlanStageKind::kIo, "sieve extent read");
  fetch.ops.push_back(seek_op(first));
  fetch.ops.push_back(scratch_rw_op(PlanDir::kRead, last - first, 0));
  plan.stages.push_back(std::move(fetch));
  plan.stages.push_back(teardown_stage());
  PlanStage modify = stage(PlanStageKind::kCopy, "modify runs");
  for_each_run_in(spec.dims, box,
                  [&](std::uint64_t goff, std::uint64_t count,
                      std::uint64_t loff) {
                    modify.ops.push_back(copy_op(PlanOpKind::kCopyIn,
                                                 goff * elem - first,
                                                 loff * elem, count * elem));
                  });
  plan.stages.push_back(std::move(modify));
  plan.stages.push_back(setup_stage(path, srb::OpenMode::kUpdate));
  PlanStage flush = stage(PlanStageKind::kIo, "sieve extent write");
  flush.ops.push_back(seek_op(first));
  flush.ops.push_back(scratch_rw_op(PlanDir::kWrite, last - first, 0));
  plan.stages.push_back(std::move(flush));
  plan.stages.push_back(teardown_stage());
  return plan;
}

StatusOr<IoPlan> PlanBuilder::subfile_read(const SubfileLayout& layout,
                                           const prt::LocalBox& box,
                                           const std::string& base,
                                           std::size_t buffer_bytes) {
  const GlobalArraySpec& spec = layout.spec();
  const std::size_t elem = spec.elem_size;
  if (buffer_bytes != box.volume() * elem) {
    return Status::InvalidArgument("output buffer size mismatch");
  }
  const auto range = layout.chunk_range(box);
  const std::uint64_t out_nj = box.extent[1].size();
  const std::uint64_t out_nk = box.extent[2].size();
  IoPlan plan;
  plan.dir = PlanDir::kRead;
  PlanStage connect = stage(PlanStageKind::kSetup, "connect");
  connect.ops.push_back(simple_op(PlanOpKind::kConnect));
  plan.stages.push_back(std::move(connect));
  for (int ci = range[0].first; ci < range[0].second; ++ci) {
    for (int cj = range[1].first; cj < range[1].second; ++cj) {
      for (int ck = range[2].first; ck < range[2].second; ++ck) {
        const prt::LocalBox cbox = layout.chunk_box(ci, cj, ck);
        const prt::LocalBox overlap = intersect(cbox, box);
        if (empty_box(overlap)) continue;
        const std::uint64_t chunk_bytes = cbox.volume() * elem;
        plan.scratch_bytes = std::max(plan.scratch_bytes, chunk_bytes);
        PlanStage io = stage(PlanStageKind::kIo, chunk_label(ci, cj, ck));
        io.ops.push_back(
            open_op(SubfileLayout::chunk_path(base, ci, cj, ck),
                    srb::OpenMode::kRead));
        // The whole chunk in one native request, then the overlap rows
        // extracted in memory.
        io.ops.push_back(scratch_rw_op(PlanDir::kRead, chunk_bytes, 0));
        io.ops.push_back(simple_op(PlanOpKind::kClose));
        const std::uint64_t c_nj = cbox.extent[1].size();
        const std::uint64_t c_nk = cbox.extent[2].size();
        for (std::uint64_t i = overlap.extent[0].lo; i < overlap.extent[0].hi;
             ++i) {
          for (std::uint64_t j = overlap.extent[1].lo;
               j < overlap.extent[1].hi; ++j) {
            const std::uint64_t src =
                ((i - cbox.extent[0].lo) * c_nj + (j - cbox.extent[1].lo)) *
                    c_nk +
                (overlap.extent[2].lo - cbox.extent[2].lo);
            const std::uint64_t dst =
                ((i - box.extent[0].lo) * out_nj + (j - box.extent[1].lo)) *
                    out_nk +
                (overlap.extent[2].lo - box.extent[2].lo);
            io.ops.push_back(copy_op(PlanOpKind::kCopyOut, src * elem,
                                     dst * elem,
                                     overlap.extent[2].size() * elem));
          }
        }
        plan.stages.push_back(std::move(io));
      }
    }
  }
  PlanStage disconnect = stage(PlanStageKind::kTeardown, "disconnect");
  disconnect.ops.push_back(simple_op(PlanOpKind::kDisconnect));
  plan.stages.push_back(std::move(disconnect));
  return plan;
}

StatusOr<IoPlan> PlanBuilder::subfile_write(const SubfileLayout& layout,
                                            const std::string& base,
                                            std::size_t buffer_bytes) {
  const GlobalArraySpec& spec = layout.spec();
  const std::size_t elem = spec.elem_size;
  if (buffer_bytes != spec.bytes()) {
    return Status::InvalidArgument("global buffer size mismatch");
  }
  IoPlan plan;
  plan.dir = PlanDir::kWrite;
  PlanStage connect = stage(PlanStageKind::kSetup, "connect");
  connect.ops.push_back(simple_op(PlanOpKind::kConnect));
  plan.stages.push_back(std::move(connect));
  for (int ci = 0; ci < layout.chunks()[0]; ++ci) {
    for (int cj = 0; cj < layout.chunks()[1]; ++cj) {
      for (int ck = 0; ck < layout.chunks()[2]; ++ck) {
        const prt::LocalBox box = layout.chunk_box(ci, cj, ck);
        const std::uint64_t chunk_bytes = box.volume() * elem;
        plan.scratch_bytes = std::max(plan.scratch_bytes, chunk_bytes);
        PlanStage io = stage(PlanStageKind::kIo, chunk_label(ci, cj, ck));
        // Pack the chunk row-major over its own box, then one native
        // request writes it.
        std::uint64_t local = 0;
        for (std::uint64_t i = box.extent[0].lo; i < box.extent[0].hi; ++i) {
          for (std::uint64_t j = box.extent[1].lo; j < box.extent[1].hi; ++j) {
            const std::uint64_t goff =
                spec.linear_offset(i, j, box.extent[2].lo);
            const std::uint64_t count = box.extent[2].size();
            io.ops.push_back(copy_op(PlanOpKind::kCopyIn, local * elem,
                                     goff * elem, count * elem));
            local += count;
          }
        }
        io.ops.push_back(
            open_op(SubfileLayout::chunk_path(base, ci, cj, ck),
                    srb::OpenMode::kOverwrite));
        io.ops.push_back(scratch_rw_op(PlanDir::kWrite, chunk_bytes, 0));
        io.ops.push_back(simple_op(PlanOpKind::kClose));
        plan.stages.push_back(std::move(io));
      }
    }
  }
  PlanStage disconnect = stage(PlanStageKind::kTeardown, "disconnect");
  disconnect.ops.push_back(simple_op(PlanOpKind::kDisconnect));
  plan.stages.push_back(std::move(disconnect));
  return plan;
}

IoPlan PlanBuilder::object_read(const std::string& path, std::uint64_t bytes) {
  IoPlan plan;
  plan.dir = PlanDir::kRead;
  plan.stages.push_back(setup_stage(path, srb::OpenMode::kRead));
  PlanStage io = stage(PlanStageKind::kIo, "whole object");
  io.ops.push_back(rw_op(PlanDir::kRead, bytes, 0));
  plan.stages.push_back(std::move(io));
  plan.stages.push_back(teardown_stage());
  return plan;
}

IoPlan PlanBuilder::object_write(const std::string& path, std::uint64_t bytes,
                                 srb::OpenMode mode) {
  IoPlan plan;
  plan.dir = PlanDir::kWrite;
  plan.stages.push_back(setup_stage(path, mode));
  PlanStage io = stage(PlanStageKind::kIo, "whole object");
  io.ops.push_back(rw_op(PlanDir::kWrite, bytes, 0));
  plan.stages.push_back(std::move(io));
  plan.stages.push_back(teardown_stage());
  return plan;
}

IoPlan PlanBuilder::connected_object_read(const std::string& path,
                                          std::uint64_t bytes) {
  IoPlan plan;
  plan.dir = PlanDir::kRead;
  PlanStage setup = stage(PlanStageKind::kSetup, "open");
  setup.ops.push_back(open_op(path, srb::OpenMode::kRead));
  plan.stages.push_back(std::move(setup));
  PlanStage io = stage(PlanStageKind::kIo, "whole object");
  io.ops.push_back(rw_op(PlanDir::kRead, bytes, 0));
  plan.stages.push_back(std::move(io));
  PlanStage teardown = stage(PlanStageKind::kTeardown, "close");
  teardown.ops.push_back(simple_op(PlanOpKind::kClose));
  plan.stages.push_back(std::move(teardown));
  return plan;
}

IoPlan PlanBuilder::object_establish(const std::string& path,
                                     srb::OpenMode mode) {
  IoPlan plan;
  plan.dir = PlanDir::kWrite;
  plan.stages.push_back(setup_stage(path, mode));
  plan.stages.push_back(teardown_stage());
  return plan;
}

IoPlan PlanBuilder::rank_runs(const ArrayLayout& layout, int rank,
                              const std::string& path, PlanDir dir,
                              srb::OpenMode mode, bool vectored) {
  IoPlan plan;
  plan.dir = dir;
  plan.vectored = vectored;
  plan.stages.push_back(setup_stage(path, mode));
  plan.stages.push_back(run_list_stage(layout.decomp.dims(),
                                       layout.decomp.local_box(rank),
                                       layout.elem_size, dir, vectored));
  plan.stages.push_back(teardown_stage());
  return plan;
}

IoPlan PlanBuilder::range_io(const std::string& path,
                             std::uint64_t offset_bytes, std::uint64_t bytes,
                             PlanDir dir, srb::OpenMode mode) {
  IoPlan plan;
  plan.dir = dir;
  plan.method = IoMethod::kCollective;
  plan.stages.push_back(setup_stage(path, mode));
  PlanStage io = stage(PlanStageKind::kIo, "aggregator range");
  io.ops.push_back(seek_op(offset_bytes));
  io.ops.push_back(rw_op(dir, bytes, 0));
  plan.stages.push_back(std::move(io));
  plan.stages.push_back(teardown_stage());
  return plan;
}

StatusOr<IoPlan> PlanBuilder::dataset_read_box(
    const GlobalArraySpec& spec, const std::array<int, 3>& chunks,
    const prt::LocalBox& box, const std::string& path, AccessStrategy strategy,
    bool vectored, std::size_t buffer_bytes) {
  if (chunks[0] != 1 || chunks[1] != 1 || chunks[2] != 1) {
    MSRA_ASSIGN_OR_RETURN(SubfileLayout layout,
                          SubfileLayout::create(spec, chunks));
    return subfile_read(layout, box, path, buffer_bytes);
  }
  return subarray_read(spec, box, path, strategy, vectored, buffer_bytes);
}

StatusOr<IoPlan> PlanBuilder::dataset_dump(const ArrayLayout& layout,
                                           IoMethod method, int aggregators,
                                           PlanDir dir,
                                           const PlanAssumptions& assumptions) {
  IoPlan plan;
  plan.dir = dir;
  plan.method = method;
  plan.pipelined = assumptions.pipelined;
  const std::uint64_t global = layout.global_bytes();
  const srb::OpenMode mode =
      dir == PlanDir::kRead ? srb::OpenMode::kRead : srb::OpenMode::kOverwrite;
  if (method == IoMethod::kCollective) {
    const auto a = static_cast<std::uint64_t>(std::max(1, aggregators));
    PlanStage exchange = stage(PlanStageKind::kExchange, "two-phase exchange");
    exchange.exchange_bytes = global;
    plan.stages.push_back(std::move(exchange));
    PlanStage session = stage(PlanStageKind::kSession, "aggregator session");
    session.repeat = a;
    session.ops.push_back(simple_op(PlanOpKind::kConnect));
    session.ops.push_back(open_op("", mode));
    session.ops.push_back(seek_op(0));
    session.ops.push_back(rw_op(dir, global / a, 0));
    session.ops.push_back(simple_op(PlanOpKind::kClose));
    session.ops.push_back(simple_op(PlanOpKind::kDisconnect));
    plan.stages.push_back(std::move(session));
  } else {
    std::uint64_t total_runs = 0;
    for (int r = 0; r < layout.decomp.nprocs(); ++r) {
      total_runs += count_runs(layout.decomp, layout.decomp.local_box(r));
    }
    const auto nprocs = static_cast<std::uint64_t>(layout.decomp.nprocs());
    const std::uint64_t runs_per_rank =
        nprocs == 0 ? 0 : (total_runs + nprocs - 1) / nprocs;
    if (assumptions.vectored_rpc && runs_per_rank > 1) {
      // Vectored fast path: each rank ships its whole run list in one RPC.
      plan.vectored = true;
      PlanStage session = stage(PlanStageKind::kSession, "vectored rank session");
      session.repeat = nprocs;
      session.ops.push_back(simple_op(PlanOpKind::kConnect));
      session.ops.push_back(open_op("", mode));
      PlanOp v;
      v.kind = dir == PlanDir::kRead ? PlanOpKind::kReadv : PlanOpKind::kWritev;
      v.bytes = global / nprocs;
      v.run_count = runs_per_rank;
      session.ops.push_back(std::move(v));
      session.ops.push_back(simple_op(PlanOpKind::kClose));
      session.ops.push_back(simple_op(PlanOpKind::kDisconnect));
      plan.stages.push_back(std::move(session));
    } else {
      // One native session per contiguous run; with vectored_rpc requested
      // but a single run per rank, the shapes coincide.
      const std::uint64_t calls =
          assumptions.vectored_rpc ? nprocs : total_runs;
      PlanStage session = stage(PlanStageKind::kSession, "per-run session");
      session.repeat = calls;
      session.ops.push_back(simple_op(PlanOpKind::kConnect));
      session.ops.push_back(open_op("", mode));
      session.ops.push_back(seek_op(0));
      session.ops.push_back(rw_op(dir, calls == 0 ? 0 : global / calls, 0));
      session.ops.push_back(simple_op(PlanOpKind::kClose));
      session.ops.push_back(simple_op(PlanOpKind::kDisconnect));
      plan.stages.push_back(std::move(session));
    }
  }
  if (assumptions.pooled_connections) {
    // Pooling pass: connection setup/teardown leave the per-session ops and
    // are billed once around the whole dump.
    plan.pooled = true;
    for (PlanStage& s : plan.stages) {
      if (s.kind != PlanStageKind::kSession) continue;
      std::erase_if(s.ops, [](const PlanOp& op) {
        return op.kind == PlanOpKind::kConnect ||
               op.kind == PlanOpKind::kDisconnect;
      });
    }
    PlanStage setup = stage(PlanStageKind::kSetup, "connection setup");
    setup.ops.push_back(simple_op(PlanOpKind::kConnect));
    plan.stages.insert(plan.stages.begin(), std::move(setup));
    PlanStage teardown = stage(PlanStageKind::kTeardown, "connection teardown");
    teardown.ops.push_back(simple_op(PlanOpKind::kDisconnect));
    plan.stages.push_back(std::move(teardown));
  }
  return plan;
}

// -------------------------------------------------------------- PlanCursor --

PlanCursor::PlanCursor(const IoPlan& plan, StorageEndpoint& endpoint,
                       simkit::Timeline& timeline, std::span<std::byte> out,
                       std::span<const std::byte> in,
                       obs::TraceRecorder* tracer)
    : plan_(&plan),
      endpoint_(&endpoint),
      timeline_(&timeline),
      out_(out),
      in_(in),
      tracer_(tracer),
      registry_(endpoint.metrics()),
      metered_(registry_ != nullptr && registry_->enabled()),
      scratch_(plan.scratch_bytes) {}

Status PlanCursor::step() {
  if (done()) return result_;
  // Every device booking this stage makes carries the cursor's tag (the
  // scope is thread-local, so pool-mode workers classify correctly too).
  std::optional<simkit::QosScope> qos_scope;
  if (qos_.has_value()) qos_scope.emplace(*qos_);
  const PlanStage& s = plan_->stages[stage_++];
  if (s.kind == PlanStageKind::kExchange) return result_;  // annotation only
  obs::Span span(tracer_, *timeline_, "plan." + s.label);
  if (metered_) {
    registry_->counter("plan.stages")->increment();
    registry_->counter("plan.ops")->add(s.ops.size());
    if (s.sieve_extent_bytes > 0 && result_.ok()) {
      registry_->counter("sieve.extent_bytes")->add(s.sieve_extent_bytes);
      registry_->counter("sieve.useful_bytes")->add(s.sieve_useful_bytes);
      registry_->counter("sieve.accesses")->increment();
    }
  }
  StorageEndpoint& endpoint = *endpoint_;
  simkit::Timeline& timeline = *timeline_;
  for (const PlanOp& op : s.ops) {
    if (!result_.ok()) {
      // First error wins. The only ops still issued are the teardown of
      // live state — exactly what FileSession / the chunk loops did —
      // and their own errors are dropped.
      if (op.kind == PlanOpKind::kClose && handle_open_) {
        handle_open_ = false;
        (void)endpoint.close(timeline, handle_);
      } else if (op.kind == PlanOpKind::kDisconnect && connected_) {
        connected_ = false;
        (void)endpoint.disconnect(timeline);
      }
      continue;
    }
    switch (op.kind) {
      case PlanOpKind::kConnect:
        result_ = endpoint.connect(timeline);
        if (result_.ok()) connected_ = true;
        break;
      case PlanOpKind::kOpen: {
        auto opened = endpoint.open(timeline, op.path, op.mode);
        if (opened.ok()) {
          handle_ = *opened;
          handle_open_ = true;
        } else {
          result_ = opened.status();
        }
        break;
      }
      case PlanOpKind::kSeek:
        result_ = endpoint.seek(timeline, handle_, op.offset);
        break;
      case PlanOpKind::kRead: {
        std::span<std::byte> dst =
            op.scratch
                ? std::span<std::byte>(scratch_).subspan(op.offset, op.bytes)
                : out_.subspan(op.buf_offset, op.bytes);
        result_ = endpoint.read(timeline, handle_, dst);
        break;
      }
      case PlanOpKind::kWrite: {
        std::span<const std::byte> src =
            op.scratch ? std::span<const std::byte>(scratch_).subspan(
                             op.offset, op.bytes)
                       : in_.subspan(op.buf_offset, op.bytes);
        result_ = endpoint.write(timeline, handle_, src);
        break;
      }
      case PlanOpKind::kReadv:
        result_ = endpoint.readv(timeline, handle_, op.run_list,
                                 out_.subspan(op.buf_offset, op.bytes));
        break;
      case PlanOpKind::kWritev:
        result_ = endpoint.writev(timeline, handle_, op.run_list,
                                  in_.subspan(op.buf_offset, op.bytes));
        break;
      case PlanOpKind::kClose:
        handle_open_ = false;
        result_ = endpoint.close(timeline, handle_);
        break;
      case PlanOpKind::kDisconnect:
        connected_ = false;
        result_ = endpoint.disconnect(timeline);
        break;
      case PlanOpKind::kCopyIn:
        std::memcpy(scratch_.data() + op.offset, in_.data() + op.buf_offset,
                    op.bytes);
        break;
      case PlanOpKind::kCopyOut:
        std::memcpy(out_.data() + op.buf_offset, scratch_.data() + op.offset,
                    op.bytes);
        break;
    }
  }
  return result_;
}

// ------------------------------------------------------------ PlanExecutor --

Status PlanExecutor::execute(const IoPlan& plan, StorageEndpoint& endpoint,
                             simkit::Timeline& timeline,
                             std::span<std::byte> out,
                             std::span<const std::byte> in,
                             obs::TraceRecorder* tracer) {
  PlanCursor cursor(plan, endpoint, timeline, out, in, tracer);
  while (!cursor.done()) (void)cursor.step();
  return cursor.status();
}

}  // namespace msra::runtime
