#include "runtime/parallel_io.h"

#include <cassert>
#include <cstring>

#include "obs/metrics.h"
#include "runtime/plan.h"

namespace msra::runtime {

namespace {
/// Bills one two-phase I/O phase (virtual seconds on the recording rank's
/// timeline) into the endpoint's registry, if it has one.
void record_phase(StorageEndpoint& endpoint, const char* histogram,
                  simkit::SimTime duration) {
  obs::MetricsRegistry* registry = endpoint.metrics();
  if (registry == nullptr || !registry->enabled()) return;
  registry->histogram(histogram)->record(duration);
}
}  // namespace

std::string_view io_method_name(IoMethod method) {
  switch (method) {
    case IoMethod::kNaive: return "naive";
    case IoMethod::kCollective: return "collective";
  }
  return "?";
}

void for_each_run_in(
    const std::array<std::uint64_t, 3>& dims, const prt::LocalBox& box,
    const std::function<void(std::uint64_t, std::uint64_t, std::uint64_t)>& fn) {
  const auto& e = box.extent;
  const std::uint64_t box_nj = e[1].size();
  const std::uint64_t box_nk = e[2].size();
  const auto offset = [&dims](std::uint64_t i, std::uint64_t j, std::uint64_t k) {
    return (i * dims[1] + j) * dims[2] + k;
  };
  if (e[2].size() == dims[2] && e[1].size() == dims[1]) {
    // Full (j,k) planes: the whole i-slab is one contiguous run.
    fn(offset(e[0].lo, 0, 0), box.volume(), 0);
    return;
  }
  if (e[2].size() == dims[2]) {
    // Full k rows: each i contributes one contiguous (j,k) sheet.
    std::uint64_t local = 0;
    const std::uint64_t sheet = box_nj * box_nk;
    for (std::uint64_t i = e[0].lo; i < e[0].hi; ++i) {
      fn(offset(i, e[1].lo, 0), sheet, local);
      local += sheet;
    }
    return;
  }
  // General case: one run per (i, j) row segment.
  std::uint64_t local = 0;
  for (std::uint64_t i = e[0].lo; i < e[0].hi; ++i) {
    for (std::uint64_t j = e[1].lo; j < e[1].hi; ++j) {
      fn(offset(i, j, e[2].lo), box_nk, local);
      local += box_nk;
    }
  }
}

void for_each_run(
    const prt::Decomposition& decomp, const prt::LocalBox& box,
    const std::function<void(std::uint64_t, std::uint64_t, std::uint64_t)>& fn) {
  for_each_run_in(decomp.dims(), box, fn);
}

std::uint64_t count_runs(const prt::Decomposition& decomp, const prt::LocalBox& box) {
  std::uint64_t runs = 0;
  for_each_run(decomp, box, [&runs](std::uint64_t, std::uint64_t, std::uint64_t) {
    ++runs;
  });
  return runs;
}

namespace {

/// Broadcasts the root's status so every rank agrees on the outcome.
Status bcast_status(prt::Comm& comm, const Status& mine, int root) {
  net::WireWriter w;
  srb::proto::put_status(w, mine);
  auto payload = comm.bcast(w.take(), root);
  net::WireReader r(payload);
  return srb::proto::get_status(r);
}

/// Joins per-rank statuses: OK only if every rank succeeded; a failing rank
/// keeps its own error, others learn a peer failed.
Status join_statuses(prt::Comm& comm, const Status& mine) {
  const double failures =
      comm.allreduce_sum(mine.ok() ? 0.0 : 1.0);
  if (mine.ok() && failures > 0.0) {
    return Status::Internal("peer rank failed during parallel I/O");
  }
  return mine;
}

Status check_local_size(const ArrayLayout& layout, int rank, std::size_t got) {
  const std::uint64_t want = layout.local_bytes(rank);
  if (got != want) {
    return Status::InvalidArgument(
        "local buffer is " + std::to_string(got) + " bytes, box needs " +
        std::to_string(want));
  }
  return Status::Ok();
}

Status write_collective(StorageEndpoint& endpoint, prt::Comm& comm,
                        const std::string& path, const ArrayLayout& layout,
                        std::span<const std::byte> local, OpenMode mode) {
  constexpr int kRoot = 0;
  const simkit::SimTime phase_start = comm.timeline().now();
  std::vector<std::uint64_t> sizes;
  auto gathered = comm.gatherv(local, kRoot, &sizes);
  Status status = Status::Ok();
  if (comm.rank() == kRoot) {
    record_phase(endpoint, "collective.write.exchange_time",
                 comm.timeline().now() - phase_start);
    // Phase 2: reassemble the global row-major buffer.
    std::vector<std::byte> global(layout.global_bytes());
    std::uint64_t slot_base = 0;
    const std::size_t elem = layout.elem_size;
    for (int r = 0; r < comm.size(); ++r) {
      const prt::LocalBox box = layout.decomp.local_box(r);
      for_each_run(layout.decomp, box,
                   [&](std::uint64_t goff, std::uint64_t count, std::uint64_t loff) {
                     std::memcpy(global.data() + goff * elem,
                                 gathered.data() + slot_base + loff * elem,
                                 count * elem);
                   });
      slot_base += sizes[static_cast<std::size_t>(r)];
    }
    // Single large native request.
    const simkit::SimTime io_start = comm.timeline().now();
    const IoPlan plan =
        PlanBuilder::object_write(path, layout.global_bytes(), mode);
    status = PlanExecutor::execute(plan, endpoint, comm.timeline(), {}, global);
    record_phase(endpoint, "collective.write.io_time",
                 comm.timeline().now() - io_start);
  }
  status = bcast_status(comm, status, kRoot);
  comm.sync_time();
  return status;
}

// Multi-aggregator two-phase I/O (ROMIO-style). The file domain (in
// elements) is split into `A` contiguous ranges, one per aggregator rank
// (ranks 0..A-1). Phase 1 exchanges data so each aggregator holds its
// range; phase 2 issues A concurrent contiguous requests.
constexpr int kShuffleTag = 9001;
constexpr int kDeliverTag = 9002;

struct AggregatorRange {
  prt::Extent elems;  ///< element range of the file domain
};

std::vector<AggregatorRange> aggregator_ranges(const ArrayLayout& layout, int a) {
  std::vector<AggregatorRange> out;
  out.reserve(static_cast<std::size_t>(a));
  for (int i = 0; i < a; ++i) {
    out.push_back({prt::block_extent(layout.decomp.global_volume(), a, i)});
  }
  return out;
}

Status write_collective_multi(StorageEndpoint& endpoint, prt::Comm& comm,
                              const std::string& path, const ArrayLayout& layout,
                              std::span<const std::byte> local, OpenMode mode,
                              int aggregators) {
  constexpr int kRoot = 0;
  const std::size_t elem = layout.elem_size;
  const auto ranges = aggregator_ranges(layout, aggregators);
  const prt::LocalBox box = layout.decomp.local_box(comm.rank());

  // Root establishes the object so aggregators can open it for update.
  Status status = Status::Ok();
  if (comm.rank() == kRoot) {
    const IoPlan establish = PlanBuilder::object_establish(path, mode);
    status = PlanExecutor::execute(establish, endpoint, comm.timeline(), {}, {});
  }
  status = bcast_status(comm, status, kRoot);
  if (!status.ok()) {
    comm.sync_time();
    return status;
  }

  // Phase 1: every rank sends each aggregator the pieces of its runs that
  // fall into that aggregator's range (one message per pair, possibly empty).
  const simkit::SimTime exchange_start = comm.timeline().now();
  std::vector<net::WireWriter> outbound(static_cast<std::size_t>(aggregators));
  std::vector<std::uint32_t> run_counts(static_cast<std::size_t>(aggregators), 0);
  for_each_run(layout.decomp, box,
               [&](std::uint64_t goff, std::uint64_t count, std::uint64_t loff) {
                 for (int a = 0; a < aggregators; ++a) {
                   const auto& range = ranges[static_cast<std::size_t>(a)].elems;
                   const std::uint64_t lo = std::max(goff, range.lo);
                   const std::uint64_t hi = std::min(goff + count, range.hi);
                   if (lo >= hi) continue;
                   auto& w = outbound[static_cast<std::size_t>(a)];
                   w.put_u64(lo);
                   w.put_u64(hi - lo);
                   const std::uint64_t local_off = loff + (lo - goff);
                   w.put_bytes(local.subspan(local_off * elem, (hi - lo) * elem));
                   ++run_counts[static_cast<std::size_t>(a)];
                 }
               });
  for (int a = 0; a < aggregators; ++a) {
    net::WireWriter framed;
    framed.put_u32(run_counts[static_cast<std::size_t>(a)]);
    auto body = outbound[static_cast<std::size_t>(a)].take();
    framed.put_bytes(body);
    comm.send(a, kShuffleTag, framed.take());
  }

  // Phase 2: aggregators assemble and write their contiguous range.
  if (comm.rank() < aggregators) {
    const auto& range = ranges[static_cast<std::size_t>(comm.rank())].elems;
    std::vector<std::byte> buffer(range.size() * elem);
    for (int r = 0; r < comm.size() && status.ok(); ++r) {
      auto message = comm.recv(r, kShuffleTag);
      net::WireReader reader(message);
      auto count = reader.get_u32();
      auto body = reader.get_bytes();
      if (!count.ok() || !body.ok()) {
        status = Status::Internal("bad shuffle message");
        break;
      }
      net::WireReader runs(*body);
      for (std::uint32_t i = 0; i < *count && status.ok(); ++i) {
        auto goff = runs.get_u64();
        auto n = runs.get_u64();
        if (!goff.ok() || !n.ok()) {
          status = Status::Internal("bad shuffle run");
          break;
        }
        std::span<std::byte> dst(buffer.data() + (*goff - range.lo) * elem,
                                 *n * elem);
        Status got = runs.get_bytes_into(dst);
        if (!got.ok()) status = got;
      }
    }
    record_phase(endpoint, "collective.write.exchange_time",
                 comm.timeline().now() - exchange_start);
    if (status.ok()) {
      const simkit::SimTime io_start = comm.timeline().now();
      const IoPlan plan =
          PlanBuilder::range_io(path, range.lo * elem, buffer.size(),
                                PlanDir::kWrite, OpenMode::kUpdate);
      status = PlanExecutor::execute(plan, endpoint, comm.timeline(), {}, buffer);
      record_phase(endpoint, "collective.write.io_time",
                   comm.timeline().now() - io_start);
    }
  } else {
    // Non-aggregators still drain nothing; their sends were buffered.
  }
  status = join_statuses(comm, status);
  comm.sync_time();
  return status;
}

Status read_collective_multi(StorageEndpoint& endpoint, prt::Comm& comm,
                             const std::string& path, const ArrayLayout& layout,
                             std::span<std::byte> local, int aggregators) {
  const std::size_t elem = layout.elem_size;
  const auto ranges = aggregator_ranges(layout, aggregators);
  Status status = Status::Ok();

  // Phase 1: aggregators read their contiguous range and deliver each
  // rank's pieces.
  if (comm.rank() < aggregators) {
    const auto& range = ranges[static_cast<std::size_t>(comm.rank())].elems;
    std::vector<std::byte> buffer(range.size() * elem);
    const simkit::SimTime io_start = comm.timeline().now();
    const IoPlan plan =
        PlanBuilder::range_io(path, range.lo * elem, buffer.size(),
                              PlanDir::kRead, OpenMode::kRead);
    status = PlanExecutor::execute(plan, endpoint, comm.timeline(), buffer, {});
    record_phase(endpoint, "collective.read.io_time",
                 comm.timeline().now() - io_start);
    const simkit::SimTime exchange_start = comm.timeline().now();
    for (int r = 0; r < comm.size(); ++r) {
      net::WireWriter w;
      std::uint32_t runs = 0;
      net::WireWriter body;
      if (status.ok()) {
        const prt::LocalBox rbox = layout.decomp.local_box(r);
        for_each_run(layout.decomp, rbox,
                     [&](std::uint64_t goff, std::uint64_t count,
                         std::uint64_t loff) {
                       const std::uint64_t lo = std::max(goff, range.lo);
                       const std::uint64_t hi = std::min(goff + count, range.hi);
                       if (lo >= hi) return;
                       body.put_u64(loff + (lo - goff));
                       body.put_u64(hi - lo);
                       body.put_bytes(std::span<const std::byte>(
                           buffer.data() + (lo - range.lo) * elem,
                           (hi - lo) * elem));
                       ++runs;
                     });
      }
      w.put_u8(status.ok() ? 1 : 0);
      w.put_u32(runs);
      auto bytes = body.take();
      w.put_bytes(bytes);
      comm.send(r, kDeliverTag, w.take());
    }
    record_phase(endpoint, "collective.read.exchange_time",
                 comm.timeline().now() - exchange_start);
  }

  // Phase 2: every rank assembles its block from the aggregators' pieces.
  for (int a = 0; a < aggregators; ++a) {
    auto message = comm.recv(a, kDeliverTag);
    net::WireReader reader(message);
    auto ok_flag = reader.get_u8();
    auto runs = reader.get_u32();
    auto body = reader.get_bytes();
    if (!ok_flag.ok() || !runs.ok() || !body.ok()) {
      status = Status::Internal("bad deliver message");
      continue;
    }
    if (*ok_flag == 0) {
      if (status.ok()) status = Status::Internal("aggregator read failed");
      continue;
    }
    net::WireReader pieces(*body);
    for (std::uint32_t i = 0; i < *runs && status.ok(); ++i) {
      auto loff = pieces.get_u64();
      auto count = pieces.get_u64();
      if (!loff.ok() || !count.ok()) {
        status = Status::Internal("bad deliver run");
        break;
      }
      std::span<std::byte> dst(local.data() + *loff * elem, *count * elem);
      Status got = pieces.get_bytes_into(dst);
      if (!got.ok()) status = got;
    }
  }
  status = join_statuses(comm, status);
  comm.sync_time();
  return status;
}

Status write_naive(StorageEndpoint& endpoint, prt::Comm& comm,
                   const std::string& path, const ArrayLayout& layout,
                   std::span<const std::byte> local, OpenMode mode) {
  constexpr int kRoot = 0;
  // Root establishes the object (create/truncate), then everyone updates it.
  Status status = Status::Ok();
  if (comm.rank() == kRoot) {
    const IoPlan establish = PlanBuilder::object_establish(path, mode);
    status = PlanExecutor::execute(establish, endpoint, comm.timeline(), {}, {});
  }
  status = bcast_status(comm, status, kRoot);
  if (!status.ok()) {
    comm.sync_time();
    return status;
  }
  const IoPlan plan =
      PlanBuilder::rank_runs(layout, comm.rank(), path, PlanDir::kWrite,
                             OpenMode::kUpdate,
                             endpoint.fast_path().vectored_rpc);
  status = PlanExecutor::execute(plan, endpoint, comm.timeline(), {}, local);
  status = join_statuses(comm, status);
  comm.sync_time();
  return status;
}

Status read_collective(StorageEndpoint& endpoint, prt::Comm& comm,
                       const std::string& path, const ArrayLayout& layout,
                       std::span<std::byte> local) {
  constexpr int kRoot = 0;
  Status status = Status::Ok();
  std::vector<std::vector<std::byte>> chunks;
  if (comm.rank() == kRoot) {
    std::vector<std::byte> global(layout.global_bytes());
    const simkit::SimTime io_start = comm.timeline().now();
    const IoPlan plan = PlanBuilder::object_read(path, layout.global_bytes());
    status = PlanExecutor::execute(plan, endpoint, comm.timeline(), global, {});
    record_phase(endpoint, "collective.read.io_time",
                 comm.timeline().now() - io_start);
    if (status.ok()) {
      // Phase 2: carve the global buffer into per-rank blocks.
      chunks.resize(static_cast<std::size_t>(comm.size()));
      const std::size_t elem = layout.elem_size;
      for (int r = 0; r < comm.size(); ++r) {
        const prt::LocalBox box = layout.decomp.local_box(r);
        auto& chunk = chunks[static_cast<std::size_t>(r)];
        chunk.resize(box.volume() * elem);
        for_each_run(layout.decomp, box,
                     [&](std::uint64_t goff, std::uint64_t count, std::uint64_t loff) {
                       std::memcpy(chunk.data() + loff * elem,
                                   global.data() + goff * elem, count * elem);
                     });
      }
    }
  }
  status = bcast_status(comm, status, kRoot);
  if (status.ok()) {
    const simkit::SimTime exchange_start = comm.timeline().now();
    auto mine = comm.scatterv(chunks, kRoot);
    if (comm.rank() == kRoot) {
      record_phase(endpoint, "collective.read.exchange_time",
                   comm.timeline().now() - exchange_start);
    }
    if (mine.size() != local.size()) {
      status = Status::Internal("scatter size mismatch");
    } else {
      std::memcpy(local.data(), mine.data(), mine.size());
    }
    status = join_statuses(comm, status);
  }
  comm.sync_time();
  return status;
}

Status read_naive(StorageEndpoint& endpoint, prt::Comm& comm,
                  const std::string& path, const ArrayLayout& layout,
                  std::span<std::byte> local) {
  const IoPlan plan =
      PlanBuilder::rank_runs(layout, comm.rank(), path, PlanDir::kRead,
                             OpenMode::kRead,
                             endpoint.fast_path().vectored_rpc);
  Status status = PlanExecutor::execute(plan, endpoint, comm.timeline(), local, {});
  status = join_statuses(comm, status);
  comm.sync_time();
  return status;
}

}  // namespace

namespace {
/// Clamps the aggregator count to something the layout and comm support.
int effective_aggregators(const ArrayLayout& layout, prt::Comm& comm,
                          const CollectiveOptions& options) {
  int a = std::max(1, options.aggregators);
  a = std::min(a, comm.size());
  a = std::min<int>(a, static_cast<int>(layout.decomp.global_volume()));
  return a;
}
}  // namespace

Status write_array(StorageEndpoint& endpoint, prt::Comm& comm,
                   const std::string& path, const ArrayLayout& layout,
                   std::span<const std::byte> local, IoMethod method,
                   OpenMode mode, CollectiveOptions options) {
  if (mode == OpenMode::kRead) {
    return Status::InvalidArgument("write_array needs a writable mode");
  }
  MSRA_RETURN_IF_ERROR(check_local_size(layout, comm.rank(), local.size()));
  switch (method) {
    case IoMethod::kCollective: {
      const int a = effective_aggregators(layout, comm, options);
      if (a <= 1) return write_collective(endpoint, comm, path, layout, local, mode);
      return write_collective_multi(endpoint, comm, path, layout, local, mode, a);
    }
    case IoMethod::kNaive:
      return write_naive(endpoint, comm, path, layout, local, mode);
  }
  return Status::InvalidArgument("bad IoMethod");
}

Status read_array(StorageEndpoint& endpoint, prt::Comm& comm,
                  const std::string& path, const ArrayLayout& layout,
                  std::span<std::byte> local, IoMethod method,
                  CollectiveOptions options) {
  MSRA_RETURN_IF_ERROR(check_local_size(layout, comm.rank(), local.size()));
  switch (method) {
    case IoMethod::kCollective: {
      const int a = effective_aggregators(layout, comm, options);
      if (a <= 1) return read_collective(endpoint, comm, path, layout, local);
      return read_collective_multi(endpoint, comm, path, layout, local, a);
    }
    case IoMethod::kNaive:
      return read_naive(endpoint, comm, path, layout, local);
  }
  return Status::InvalidArgument("bad IoMethod");
}

}  // namespace msra::runtime
