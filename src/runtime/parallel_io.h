// Parallel array I/O: collective (two-phase) and naive methods.
//
// This is the heart of the run-time optimization layer (the paper's D-OL /
// SRB-OL libraries). A distributed 3-D array is stored as one row-major
// object per timestep. The *naive* method issues one native request per
// contiguous run of each rank's box — many small strided requests, which is
// exactly what dominates remote I/O cost. The *collective* method performs
// two-phase I/O: ranks exchange data so a single aggregator issues one large
// contiguous request ("collective I/O allows the user to issue one single
// write for one dataset during each iteration", section 4.2).
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "common/status.h"
#include "prt/comm.h"
#include "prt/dist.h"
#include "runtime/endpoint.h"

namespace msra::runtime {

/// How a dataset is laid out across ranks and in the file.
struct ArrayLayout {
  prt::Decomposition decomp;
  std::size_t elem_size = 1;

  std::uint64_t global_bytes() const {
    return decomp.global_volume() * elem_size;
  }
  std::uint64_t local_bytes(int rank) const {
    return decomp.local_box(rank).volume() * elem_size;
  }
};

/// I/O optimization method selector.
enum class IoMethod {
  kNaive,       ///< one native request per contiguous run, per rank
  kCollective,  ///< two-phase: aggregate, few large contiguous requests
};

/// Two-phase I/O tuning. With `aggregators` > 1 the file domain is split
/// into that many contiguous ranges, each owned by one aggregator rank
/// (ROMIO-style). One aggregator (the default) reproduces the paper's
/// "one single write for one dataset during each iteration"; multiple
/// aggregators exploit striped/multi-armed devices. Tape requires 1
/// (writes must stay sequential).
struct CollectiveOptions {
  int aggregators = 1;
};

std::string_view io_method_name(IoMethod method);

/// Visits the contiguous runs of `box` inside a row-major array of `dims`:
/// fn(global_elem_offset, elem_count, box_local_elem_offset). This is THE
/// run enumeration — every lowering pass (sieve, naive parallel I/O, the
/// vectored fast path) and the predictor's homogenized plans derive their
/// operation sequences from it.
void for_each_run_in(
    const std::array<std::uint64_t, 3>& dims, const prt::LocalBox& box,
    const std::function<void(std::uint64_t, std::uint64_t, std::uint64_t)>& fn);

/// Same, keyed by a decomposition's global dims.
void for_each_run(
    const prt::Decomposition& decomp, const prt::LocalBox& box,
    const std::function<void(std::uint64_t, std::uint64_t, std::uint64_t)>& fn);

/// Number of contiguous runs of `box` (native calls the naive method issues).
std::uint64_t count_runs(const prt::Decomposition& decomp, const prt::LocalBox& box);

/// Collective entry points. Must be called by every rank of `comm` with its
/// own local block (row-major over its LocalBox). On return all ranks'
/// virtual clocks are synchronized past the I/O completion.
///
/// write_array creates/overwrites `path` (`mode` must be kCreate, kOverwrite
/// or kUpdate).
Status write_array(StorageEndpoint& endpoint, prt::Comm& comm,
                   const std::string& path, const ArrayLayout& layout,
                   std::span<const std::byte> local, IoMethod method,
                   OpenMode mode = OpenMode::kOverwrite,
                   CollectiveOptions options = {});

/// Reads `path` into each rank's local block.
Status read_array(StorageEndpoint& endpoint, prt::Comm& comm,
                  const std::string& path, const ArrayLayout& layout,
                  std::span<std::byte> local, IoMethod method,
                  CollectiveOptions options = {});

}  // namespace msra::runtime
