// Data sieving: servicing strided sub-array requests with one large
// contiguous request plus in-memory extraction (reads) or read-modify-write
// (writes) — the classic ROMIO optimization the paper's run-time libraries
// provide for "many popular access patterns".
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "common/status.h"
#include "prt/dist.h"
#include "runtime/endpoint.h"

namespace msra::runtime {

/// Shape of a stored global array (row-major object, fixed element size).
struct GlobalArraySpec {
  std::array<std::uint64_t, 3> dims = {1, 1, 1};
  std::size_t elem_size = 1;

  std::uint64_t volume() const { return dims[0] * dims[1] * dims[2]; }
  std::uint64_t bytes() const { return volume() * elem_size; }
  std::uint64_t linear_offset(std::uint64_t i, std::uint64_t j,
                              std::uint64_t k) const {
    return (i * dims[1] + j) * dims[2] + k;
  }
};

/// How a strided sub-array request is serviced.
enum class AccessStrategy {
  kDirect,   ///< one native request (seek + read/write) per contiguous run
  kSieving,  ///< one native request over the enclosing extent
};

/// Reads `box` of the array stored at `path` into `out` (row-major over the
/// box; out.size() must equal box.volume() * elem_size).
Status read_subarray(StorageEndpoint& endpoint, simkit::Timeline& timeline,
                     const std::string& path, const GlobalArraySpec& spec,
                     const prt::LocalBox& box, std::span<std::byte> out,
                     AccessStrategy strategy);

/// Writes `data` (row-major over `box`) into the array stored at `path`.
/// kSieving performs read-modify-write of the enclosing extent, so
/// unrelated bytes are preserved.
Status write_subarray(StorageEndpoint& endpoint, simkit::Timeline& timeline,
                      const std::string& path, const GlobalArraySpec& spec,
                      const prt::LocalBox& box, std::span<const std::byte> data,
                      AccessStrategy strategy);

/// The enclosing contiguous byte extent [first, last) of `box` in the file.
/// Exposed for tests and the predictor.
std::pair<std::uint64_t, std::uint64_t> sieve_extent(const GlobalArraySpec& spec,
                                                     const prt::LocalBox& box);

/// Number of native requests each strategy issues for this box (read path).
std::uint64_t access_calls(const GlobalArraySpec& spec, const prt::LocalBox& box,
                           AccessStrategy strategy);

}  // namespace msra::runtime
