#include "meta/table.h"

#include <cassert>

namespace msra::meta {

std::size_t Table::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return rows_.size();
}

std::string Table::index_key(const Value& value) {
  // Single-char prefix built via append (not `"x" + s`): the operator+
  // form trips a GCC 12 -Wrestrict false positive when inlined at -O3.
  struct Visitor {
    std::string operator()(std::monostate) const { return std::string(); }
    std::string operator()(std::int64_t v) const { return tagged('i', std::to_string(v)); }
    std::string operator()(double v) const { return tagged('r', std::to_string(v)); }
    std::string operator()(const std::string& v) const { return tagged('t', v); }
    std::string operator()(const std::vector<std::byte>& v) const {
      return tagged('b',
                    std::string_view(reinterpret_cast<const char*>(v.data()),
                                     v.size()));
    }
    static std::string tagged(char tag, std::string_view body) {
      std::string out;
      out.reserve(body.size() + 1);
      out.push_back(tag);
      out.append(body);
      return out;
    }
  };
  return std::visit(Visitor{}, value);
}

Status Table::check_indexes_locked(const Row& row, std::int64_t ignore_rowid) const {
  for (const auto& [col, index] : unique_indexes_) {
    const Value& v = row[static_cast<std::size_t>(col)];
    if (std::holds_alternative<std::monostate>(v)) continue;
    auto it = index.find(index_key(v));
    if (it != index.end() && it->second != ignore_rowid) {
      return Status::AlreadyExists("unique index violation on " +
                                   schema_.column(static_cast<std::size_t>(col)).name +
                                   " = " + value_to_string(v));
    }
  }
  return Status::Ok();
}

void Table::add_to_indexes_locked(std::int64_t rowid, const Row& row) {
  for (auto& [col, index] : unique_indexes_) {
    const Value& v = row[static_cast<std::size_t>(col)];
    if (std::holds_alternative<std::monostate>(v)) continue;
    index.emplace(index_key(v), rowid);
  }
}

void Table::remove_from_indexes_locked(std::int64_t rowid, const Row& row) {
  for (auto& [col, index] : unique_indexes_) {
    const Value& v = row[static_cast<std::size_t>(col)];
    if (std::holds_alternative<std::monostate>(v)) continue;
    auto it = index.find(index_key(v));
    if (it != index.end() && it->second == rowid) index.erase(it);
  }
}

StatusOr<std::int64_t> Table::insert(Row row) {
  MSRA_RETURN_IF_ERROR(schema_.validate(row));
  std::lock_guard<std::mutex> lock(mutex_);
  MSRA_RETURN_IF_ERROR(check_indexes_locked(row, /*ignore_rowid=*/-1));
  const std::int64_t rowid = next_rowid_++;
  add_to_indexes_locked(rowid, row);
  rows_.emplace(rowid, std::move(row));
  return rowid;
}

StatusOr<Row> Table::get(std::int64_t rowid) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = rows_.find(rowid);
  if (it == rows_.end()) {
    return Status::NotFound(name_ + ": no rowid " + std::to_string(rowid));
  }
  return it->second;
}

Status Table::update(std::int64_t rowid, Row row) {
  MSRA_RETURN_IF_ERROR(schema_.validate(row));
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = rows_.find(rowid);
  if (it == rows_.end()) {
    return Status::NotFound(name_ + ": no rowid " + std::to_string(rowid));
  }
  MSRA_RETURN_IF_ERROR(check_indexes_locked(row, rowid));
  remove_from_indexes_locked(rowid, it->second);
  it->second = std::move(row);
  add_to_indexes_locked(rowid, it->second);
  return Status::Ok();
}

Status Table::update_cell(std::int64_t rowid, std::string_view column, Value value) {
  const int col = schema_.index_of(column);
  if (col < 0) return Status::InvalidArgument("no column: " + std::string(column));
  if (!value_matches(value, schema_.column(static_cast<std::size_t>(col)).type)) {
    return Status::InvalidArgument("type mismatch for " + std::string(column));
  }
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = rows_.find(rowid);
  if (it == rows_.end()) {
    return Status::NotFound(name_ + ": no rowid " + std::to_string(rowid));
  }
  Row updated = it->second;
  updated[static_cast<std::size_t>(col)] = std::move(value);
  MSRA_RETURN_IF_ERROR(check_indexes_locked(updated, rowid));
  remove_from_indexes_locked(rowid, it->second);
  it->second = std::move(updated);
  add_to_indexes_locked(rowid, it->second);
  return Status::Ok();
}

Status Table::erase(std::int64_t rowid) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = rows_.find(rowid);
  if (it == rows_.end()) {
    return Status::NotFound(name_ + ": no rowid " + std::to_string(rowid));
  }
  remove_from_indexes_locked(rowid, it->second);
  rows_.erase(it);
  return Status::Ok();
}

std::vector<std::int64_t> Table::find(const Predicate& predicate) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::int64_t> out;
  for (const auto& [rowid, row] : rows_) {
    if (predicate(row)) out.push_back(rowid);
  }
  return out;
}

std::vector<std::int64_t> Table::find_eq(std::string_view column,
                                         const Value& value) const {
  const int col = schema_.index_of(column);
  if (col < 0) return {};
  return find([col, &value](const Row& row) {
    return value_equals(row[static_cast<std::size_t>(col)], value);
  });
}

StatusOr<std::int64_t> Table::find_first_eq(std::string_view column,
                                            const Value& value) const {
  auto ids = find_eq(column, value);
  if (ids.empty()) {
    return Status::NotFound(name_ + ": no row with " + std::string(column) +
                            " = " + value_to_string(value));
  }
  return ids.front();
}

std::vector<Row> Table::select(const Predicate& predicate) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<Row> out;
  for (const auto& [rowid, row] : rows_) {
    if (predicate(row)) out.push_back(row);
  }
  return out;
}

void Table::for_each(const std::function<void(std::int64_t, const Row&)>& fn) const {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [rowid, row] : rows_) fn(rowid, row);
}

Status Table::create_unique_index(std::string_view column) {
  const int col = schema_.index_of(column);
  if (col < 0) return Status::InvalidArgument("no column: " + std::string(column));
  std::lock_guard<std::mutex> lock(mutex_);
  std::unordered_map<std::string, std::int64_t> index;
  for (const auto& [rowid, row] : rows_) {
    const Value& v = row[static_cast<std::size_t>(col)];
    if (std::holds_alternative<std::monostate>(v)) continue;
    auto [it, inserted] = index.emplace(index_key(v), rowid);
    if (!inserted) {
      return Status::AlreadyExists("duplicate values prevent unique index on " +
                                   std::string(column));
    }
  }
  unique_indexes_[col] = std::move(index);
  return Status::Ok();
}

StatusOr<std::int64_t> Table::lookup(std::string_view column, const Value& value) const {
  const int col = schema_.index_of(column);
  if (col < 0) return Status::InvalidArgument("no column: " + std::string(column));
  std::lock_guard<std::mutex> lock(mutex_);
  auto idx_it = unique_indexes_.find(col);
  if (idx_it == unique_indexes_.end()) {
    return Status::InvalidArgument("no unique index on " + std::string(column));
  }
  auto it = idx_it->second.find(index_key(value));
  if (it == idx_it->second.end()) {
    return Status::NotFound(name_ + ": " + std::string(column) + " = " +
                            value_to_string(value));
  }
  return it->second;
}

void Table::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  rows_.clear();
  for (auto& [col, index] : unique_indexes_) index.clear();
}

namespace {

void serialize_value(net::WireWriter& w, const Value& value) {
  w.put_u8(static_cast<std::uint8_t>(value.index()));
  struct Visitor {
    net::WireWriter& w;
    void operator()(std::monostate) const {}
    void operator()(std::int64_t v) const { w.put_i64(v); }
    void operator()(double v) const { w.put_f64(v); }
    void operator()(const std::string& v) const { w.put_string(v); }
    void operator()(const std::vector<std::byte>& v) const { w.put_bytes(v); }
  };
  std::visit(Visitor{w}, value);
}

StatusOr<Value> deserialize_value(net::WireReader& r) {
  MSRA_ASSIGN_OR_RETURN(std::uint8_t tag, r.get_u8());
  switch (tag) {
    case 0: return Value{std::monostate{}};
    case 1: {
      MSRA_ASSIGN_OR_RETURN(std::int64_t v, r.get_i64());
      return Value{v};
    }
    case 2: {
      MSRA_ASSIGN_OR_RETURN(double v, r.get_f64());
      return Value{v};
    }
    case 3: {
      MSRA_ASSIGN_OR_RETURN(std::string v, r.get_string());
      return Value{std::move(v)};
    }
    case 4: {
      MSRA_ASSIGN_OR_RETURN(std::vector<std::byte> v, r.get_bytes());
      return Value{std::move(v)};
    }
    default:
      return Status::InvalidArgument("bad value tag " + std::to_string(tag));
  }
}

}  // namespace

void Table::serialize(net::WireWriter& writer) const {
  std::lock_guard<std::mutex> lock(mutex_);
  writer.put_string(name_);
  writer.put_u32(static_cast<std::uint32_t>(schema_.size()));
  for (const auto& col : schema_.columns()) {
    writer.put_string(col.name);
    writer.put_u8(static_cast<std::uint8_t>(col.type));
  }
  writer.put_u32(static_cast<std::uint32_t>(unique_indexes_.size()));
  for (const auto& [col, index] : unique_indexes_) writer.put_u32(static_cast<std::uint32_t>(col));
  writer.put_i64(next_rowid_);
  writer.put_u64(rows_.size());
  for (const auto& [rowid, row] : rows_) {
    writer.put_i64(rowid);
    for (const auto& value : row) serialize_value(writer, value);
  }
}

StatusOr<std::unique_ptr<Table>> Table::deserialize(net::WireReader& reader) {
  MSRA_ASSIGN_OR_RETURN(std::string name, reader.get_string());
  MSRA_ASSIGN_OR_RETURN(std::uint32_t ncols, reader.get_u32());
  std::vector<Column> columns;
  for (std::uint32_t i = 0; i < ncols; ++i) {
    MSRA_ASSIGN_OR_RETURN(std::string cname, reader.get_string());
    MSRA_ASSIGN_OR_RETURN(std::uint8_t ctype, reader.get_u8());
    if (ctype > static_cast<std::uint8_t>(ColumnType::kBlob)) {
      return Status::InvalidArgument("bad column type");
    }
    columns.push_back({std::move(cname), static_cast<ColumnType>(ctype)});
  }
  auto table = std::make_unique<Table>(std::move(name), Schema(std::move(columns)));
  MSRA_ASSIGN_OR_RETURN(std::uint32_t nindexes, reader.get_u32());
  std::vector<std::uint32_t> index_cols;
  for (std::uint32_t i = 0; i < nindexes; ++i) {
    MSRA_ASSIGN_OR_RETURN(std::uint32_t col, reader.get_u32());
    index_cols.push_back(col);
  }
  MSRA_ASSIGN_OR_RETURN(std::int64_t next_rowid, reader.get_i64());
  MSRA_ASSIGN_OR_RETURN(std::uint64_t nrows, reader.get_u64());
  for (std::uint64_t i = 0; i < nrows; ++i) {
    MSRA_ASSIGN_OR_RETURN(std::int64_t rowid, reader.get_i64());
    Row row;
    for (std::size_t c = 0; c < table->schema_.size(); ++c) {
      MSRA_ASSIGN_OR_RETURN(Value value, deserialize_value(reader));
      row.push_back(std::move(value));
    }
    MSRA_RETURN_IF_ERROR(table->schema_.validate(row));
    table->rows_.emplace(rowid, std::move(row));
  }
  table->next_rowid_ = next_rowid;
  for (std::uint32_t col : index_cols) {
    MSRA_RETURN_IF_ERROR(table->create_unique_index(
        table->schema_.column(col).name));
  }
  return table;
}

}  // namespace msra::meta
