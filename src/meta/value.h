// Typed values, rows and schemas for the embedded metadata database.
//
// The paper keeps system metadata (applications, users, datasets, access
// patterns) and the performance database in a Postgres instance accessed
// through an embedded C API. This module provides the equivalent embedded
// table store.
#pragma once

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "common/status.h"

namespace msra::meta {

/// Column types supported by the store.
enum class ColumnType { kInt, kReal, kText, kBlob };

std::string_view column_type_name(ColumnType type);

/// A single cell: NULL, integer, real, text, or blob.
using Value = std::variant<std::monostate, std::int64_t, double, std::string,
                           std::vector<std::byte>>;

/// True if `value` is NULL or matches `type`.
bool value_matches(const Value& value, ColumnType type);

/// Debug rendering of a value ("NULL", "42", "'text'", "blob[16]").
std::string value_to_string(const Value& value);

/// Deep equality (used by predicates and unique indexes).
bool value_equals(const Value& a, const Value& b);

/// A row is one cell per schema column.
using Row = std::vector<Value>;

/// Column definition.
struct Column {
  std::string name;
  ColumnType type;
};

/// An ordered list of columns.
class Schema {
 public:
  Schema() = default;
  Schema(std::initializer_list<Column> columns) : columns_(columns) {}
  explicit Schema(std::vector<Column> columns) : columns_(std::move(columns)) {}

  std::size_t size() const { return columns_.size(); }
  const Column& column(std::size_t i) const { return columns_[i]; }
  const std::vector<Column>& columns() const { return columns_; }

  /// Index of a column by name, or -1.
  int index_of(std::string_view name) const;

  /// Validates that `row` has the right arity and cell types.
  Status validate(const Row& row) const;

 private:
  std::vector<Column> columns_;
};

}  // namespace msra::meta
