// A single metadata table with rowids, predicates and unique indexes.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "meta/value.h"
#include "net/wire.h"

namespace msra::meta {

/// Row filter used by scans. Receives the full row.
using Predicate = std::function<bool(const Row&)>;

/// One table: rows keyed by a monotonically increasing rowid.
/// Thread-safe (coarse lock; metadata traffic is light, as in the paper).
class Table {
 public:
  Table(std::string name, Schema schema)
      : name_(std::move(name)), schema_(std::move(schema)) {}

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }
  std::size_t size() const;

  /// Inserts a validated row; returns its rowid. Enforces unique indexes.
  StatusOr<std::int64_t> insert(Row row);

  /// Fetches a row copy by rowid.
  StatusOr<Row> get(std::int64_t rowid) const;

  /// Replaces an entire row.
  Status update(std::int64_t rowid, Row row);

  /// Updates one cell.
  Status update_cell(std::int64_t rowid, std::string_view column, Value value);

  /// Deletes a row.
  Status erase(std::int64_t rowid);

  /// Rowids of rows matching the predicate (insertion order).
  std::vector<std::int64_t> find(const Predicate& predicate) const;

  /// Convenience equality scan on one column.
  std::vector<std::int64_t> find_eq(std::string_view column, const Value& value) const;

  /// First rowid matching column == value, or kNotFound.
  StatusOr<std::int64_t> find_first_eq(std::string_view column, const Value& value) const;

  /// Copies of all rows matching the predicate.
  std::vector<Row> select(const Predicate& predicate) const;

  /// Visits every (rowid, row).
  void for_each(const std::function<void(std::int64_t, const Row&)>& fn) const;

  /// Declares a unique index on a column. Fails if existing rows collide.
  Status create_unique_index(std::string_view column);

  /// O(1) lookup through a unique index.
  StatusOr<std::int64_t> lookup(std::string_view column, const Value& value) const;

  /// Removes every row (indexes retained).
  void clear();

  /// Binary (de)serialization for persistence. (Returned by pointer because
  /// Table is pinned by its internal mutex.)
  void serialize(net::WireWriter& writer) const;
  static StatusOr<std::unique_ptr<Table>> deserialize(net::WireReader& reader);

 private:
  /// Serialized key for index maps. NULLs are not indexed.
  static std::string index_key(const Value& value);

  Status check_indexes_locked(const Row& row, std::int64_t ignore_rowid) const;
  void add_to_indexes_locked(std::int64_t rowid, const Row& row);
  void remove_from_indexes_locked(std::int64_t rowid, const Row& row);

  std::string name_;
  Schema schema_;
  mutable std::mutex mutex_;
  std::map<std::int64_t, Row> rows_;
  std::int64_t next_rowid_ = 1;
  // column index -> (key -> rowid)
  std::map<int, std::unordered_map<std::string, std::int64_t>> unique_indexes_;
};

}  // namespace msra::meta
