#include "meta/value.h"

namespace msra::meta {

std::string_view column_type_name(ColumnType type) {
  switch (type) {
    case ColumnType::kInt: return "INT";
    case ColumnType::kReal: return "REAL";
    case ColumnType::kText: return "TEXT";
    case ColumnType::kBlob: return "BLOB";
  }
  return "?";
}

bool value_matches(const Value& value, ColumnType type) {
  if (std::holds_alternative<std::monostate>(value)) return true;  // NULL
  switch (type) {
    case ColumnType::kInt: return std::holds_alternative<std::int64_t>(value);
    case ColumnType::kReal: return std::holds_alternative<double>(value);
    case ColumnType::kText: return std::holds_alternative<std::string>(value);
    case ColumnType::kBlob:
      return std::holds_alternative<std::vector<std::byte>>(value);
  }
  return false;
}

std::string value_to_string(const Value& value) {
  struct Visitor {
    std::string operator()(std::monostate) const { return "NULL"; }
    std::string operator()(std::int64_t v) const { return std::to_string(v); }
    std::string operator()(double v) const { return std::to_string(v); }
    std::string operator()(const std::string& v) const { return "'" + v + "'"; }
    std::string operator()(const std::vector<std::byte>& v) const {
      return "blob[" + std::to_string(v.size()) + "]";
    }
  };
  return std::visit(Visitor{}, value);
}

bool value_equals(const Value& a, const Value& b) { return a == b; }

int Schema::index_of(std::string_view name) const {
  for (std::size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

Status Schema::validate(const Row& row) const {
  if (row.size() != columns_.size()) {
    return Status::InvalidArgument(
        "row arity " + std::to_string(row.size()) + " != schema arity " +
        std::to_string(columns_.size()));
  }
  for (std::size_t i = 0; i < row.size(); ++i) {
    if (!value_matches(row[i], columns_[i].type)) {
      return Status::InvalidArgument("column '" + columns_[i].name +
                                     "' type mismatch: " +
                                     value_to_string(row[i]));
    }
  }
  return Status::Ok();
}

}  // namespace msra::meta
