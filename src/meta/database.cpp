#include "meta/database.h"

#include <cstring>
#include <fstream>
#include <iterator>
#include <system_error>

namespace msra::meta {

StatusOr<Table*> Database::create_table(const std::string& name, Schema schema) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (tables_.count(name)) return Status::AlreadyExists("table exists: " + name);
  auto table = std::make_unique<Table>(name, std::move(schema));
  Table* raw = table.get();
  tables_.emplace(name, std::move(table));
  return raw;
}

Table* Database::table(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : it->second.get();
}

StatusOr<Table*> Database::open_table(const std::string& name, Schema schema) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = tables_.find(name);
    if (it != tables_.end()) return it->second.get();
  }
  return create_table(name, std::move(schema));
}

Status Database::drop_table(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (tables_.erase(name) == 0) return Status::NotFound("no table: " + name);
  return Status::Ok();
}

std::vector<std::string> Database::table_names() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> out;
  out.reserve(tables_.size());
  for (const auto& [name, table] : tables_) out.push_back(name);
  return out;
}

Status Database::save(const std::filesystem::path& path) const {
  net::WireWriter writer;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    writer.put_u32(0x4d535241u);  // magic "MSRA"
    writer.put_u32(static_cast<std::uint32_t>(tables_.size()));
    for (const auto& [name, table] : tables_) table->serialize(writer);
  }
  const auto blob = writer.take();
  const std::filesystem::path tmp = path.string() + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return Status::Internal("cannot write " + tmp.string());
    out.write(reinterpret_cast<const char*>(blob.data()),
              static_cast<std::streamsize>(blob.size()));
    if (!out) return Status::Internal("write failed: " + tmp.string());
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) return Status::Internal("rename failed: " + ec.message());
  return Status::Ok();
}

StatusOr<std::unique_ptr<Database>> Database::load(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open " + path.string());
  std::string raw((std::istreambuf_iterator<char>(in)),
                  std::istreambuf_iterator<char>());
  std::vector<std::byte> blob(raw.size());
  std::memcpy(blob.data(), raw.data(), raw.size());
  net::WireReader reader(blob);
  MSRA_ASSIGN_OR_RETURN(std::uint32_t magic, reader.get_u32());
  if (magic != 0x4d535241u) return Status::InvalidArgument("bad database file");
  MSRA_ASSIGN_OR_RETURN(std::uint32_t ntables, reader.get_u32());
  auto db = std::make_unique<Database>();
  for (std::uint32_t i = 0; i < ntables; ++i) {
    MSRA_ASSIGN_OR_RETURN(std::unique_ptr<Table> table, Table::deserialize(reader));
    std::string name = table->name();
    db->tables_.emplace(std::move(name), std::move(table));
  }
  return db;
}

}  // namespace msra::meta
