// The embedded metadata database (the paper's "local Postgres" replacement).
//
// Holds named tables, persists to a single binary file. Access cost is
// deliberately not modeled: the paper treats metadata access as inexpensive
// ("there is no need to provide a run-time library on top of the native
// interface").
#pragma once

#include <filesystem>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "meta/table.h"

namespace msra::meta {

class Database {
 public:
  Database() = default;

  /// Creates a table; fails with kAlreadyExists if the name is taken.
  StatusOr<Table*> create_table(const std::string& name, Schema schema);

  /// Returns the table or nullptr.
  Table* table(const std::string& name) const;

  /// Returns the table, creating it with `schema` on first use.
  StatusOr<Table*> open_table(const std::string& name, Schema schema);

  Status drop_table(const std::string& name);
  std::vector<std::string> table_names() const;

  /// Persists all tables to one binary file (atomic: tmp + rename).
  Status save(const std::filesystem::path& path) const;

  /// Loads a database previously written by save().
  static StatusOr<std::unique_ptr<Database>> load(const std::filesystem::path& path);

  /// Serializes compound read-modify-write sequences that span several
  /// Table calls (catalog upserts, perf-curve point replacement). Each
  /// Table is individually thread-safe, but "find rowids, then update or
  /// insert" is not atomic without an outer lock; concurrent writers hold
  /// this for the whole sequence. Reads that tolerate seeing either the
  /// before or after state need not take it.
  std::mutex& txn_mutex() const { return txn_mutex_; }

 private:
  mutable std::mutex mutex_;
  mutable std::mutex txn_mutex_;
  std::map<std::string, std::unique_ptr<Table>> tables_;
};

}  // namespace msra::meta
