#include "obs/report.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>

namespace msra::obs {

namespace {

/// Splits "io.<resource>.<op>" into resource and op; the resource may
/// itself contain dots or colons, so the op is taken from the last dot.
bool split_io_name(const std::string& name, std::string* resource,
                   std::string* op) {
  constexpr std::string_view kPrefix = "io.";
  if (name.rfind(kPrefix, 0) != 0) return false;
  const std::size_t last_dot = name.rfind('.');
  if (last_dot <= kPrefix.size()) return false;
  *resource = name.substr(kPrefix.size(), last_dot - kPrefix.size());
  *op = name.substr(last_dot + 1);
  return true;
}

}  // namespace

std::vector<ResourceIoReport> io_breakdown(const MetricsRegistry& registry) {
  std::map<std::string, ResourceIoReport> by_resource;
  for (const HistogramSnapshot& h : registry.histograms()) {
    std::string resource, op;
    if (!split_io_name(h.name, &resource, &op)) continue;
    ResourceIoReport& row = by_resource[resource];
    row.resource = resource;
    if (op == "conn") row.conn += h.sum;
    else if (op == "open") row.open += h.sum;
    else if (op == "seek") row.seek += h.sum;
    else if (op == "read") row.read += h.sum;
    else if (op == "write") row.write += h.sum;
    else if (op == "close" || op == "disconn") row.close += h.sum;
    else continue;
    row.ops += h.count;
  }
  for (const auto& [name, value] : registry.counters()) {
    std::string resource, op;
    if (!split_io_name(name, &resource, &op)) continue;
    auto it = by_resource.find(resource);
    if (it == by_resource.end()) continue;
    if (op == "read_bytes") it->second.read_bytes += value;
    else if (op == "write_bytes") it->second.write_bytes += value;
  }
  std::vector<ResourceIoReport> rows;
  rows.reserve(by_resource.size());
  for (auto& [name, row] : by_resource) {
    // Endpoints create their instruments eagerly; skip resources that
    // never actually recorded an operation (e.g. a disabled registry).
    if (row.ops == 0) continue;
    rows.push_back(std::move(row));
  }
  return rows;
}

std::string format_io_table(const std::vector<ResourceIoReport>& rows) {
  if (rows.empty()) return "(no I/O recorded)\n";
  std::size_t name_width = std::string("resource").size();
  for (const ResourceIoReport& row : rows) {
    name_width = std::max(name_width, row.resource.size());
  }
  std::string out;
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "%-*s %10s %10s %10s %10s %10s %10s %12s %8s\n",
                static_cast<int>(name_width), "resource", "conn", "open",
                "seek", "read", "write", "close", "total[s]", "ops");
  out += buf;
  ResourceIoReport all;
  all.resource = "TOTAL";
  for (const ResourceIoReport& row : rows) {
    std::snprintf(buf, sizeof(buf),
                  "%-*s %10.4f %10.4f %10.4f %10.4f %10.4f %10.4f %12.4f %8llu\n",
                  static_cast<int>(name_width), row.resource.c_str(), row.conn,
                  row.open, row.seek, row.read, row.write, row.close,
                  row.total(),
                  static_cast<unsigned long long>(row.ops));
    out += buf;
    all.conn += row.conn;
    all.open += row.open;
    all.seek += row.seek;
    all.read += row.read;
    all.write += row.write;
    all.close += row.close;
    all.ops += row.ops;
  }
  std::snprintf(buf, sizeof(buf),
                "%-*s %10.4f %10.4f %10.4f %10.4f %10.4f %10.4f %12.4f %8llu\n",
                static_cast<int>(name_width), all.resource.c_str(), all.conn,
                all.open, all.seek, all.read, all.write, all.close, all.total(),
                static_cast<unsigned long long>(all.ops));
  out += buf;
  return out;
}

std::string format_contention_table(const std::vector<ResourceLoadRow>& rows) {
  std::vector<const ResourceLoadRow*> active;
  for (const ResourceLoadRow& row : rows) {
    if (row.operations > 0) active.push_back(&row);
  }
  if (active.empty()) return "(no contention recorded)\n";
  std::size_t name_width = std::string("device").size();
  for (const ResourceLoadRow* row : active) {
    name_width = std::max(name_width, row->name.size());
  }
  std::string out;
  char buf[256];
  std::snprintf(buf, sizeof(buf), "%-*s %4s %8s %12s %6s %12s %12s %12s\n",
                static_cast<int>(name_width), "device", "cap", "ops",
                "busy[s]", "util", "wait_sum[s]", "wait_mean[s]",
                "wait_max[s]");
  out += buf;
  for (const ResourceLoadRow* row : active) {
    std::snprintf(buf, sizeof(buf),
                  "%-*s %4d %8llu %12.4f %5.1f%% %12.4f %12.4f %12.4f\n",
                  static_cast<int>(name_width), row->name.c_str(),
                  row->capacity, static_cast<unsigned long long>(row->operations),
                  row->busy_seconds, row->utilization * 100.0, row->total_wait,
                  row->mean_wait(), row->max_wait);
    out += buf;
  }
  return out;
}

std::string format_qos_table(const std::vector<QosClassRow>& rows) {
  std::vector<const QosClassRow*> active;
  for (const QosClassRow& row : rows) {
    if (row.served > 0 || row.accepted > 0 || row.rejected > 0) {
      active.push_back(&row);
    }
  }
  if (active.empty()) return "(no QoS activity recorded)\n";
  std::size_t name_width = std::string("class").size();
  for (const QosClassRow* row : active) {
    name_width = std::max(name_width, row->tenant.size());
  }
  std::string out;
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "%-*s %8s %12s %12s %12s %12s %8s %8s %8s %8s\n",
                static_cast<int>(name_width), "class", "served",
                "wait_p50[s]", "wait_p99[s]", "wait_max[s]", "backlog[s]",
                "misses", "accept", "redir", "reject");
  out += buf;
  for (const QosClassRow* row : active) {
    std::snprintf(buf, sizeof(buf),
                  "%-*s %8llu %12.4f %12.4f %12.4f %12.4f %8llu %8llu %8llu "
                  "%8llu\n",
                  static_cast<int>(name_width), row->tenant.c_str(),
                  static_cast<unsigned long long>(row->served), row->wait_p50,
                  row->wait_p99, row->wait_max, row->max_backlog,
                  static_cast<unsigned long long>(row->deadline_misses),
                  static_cast<unsigned long long>(row->accepted),
                  static_cast<unsigned long long>(row->redirected),
                  static_cast<unsigned long long>(row->rejected));
    out += buf;
  }
  return out;
}

std::string format_campaign_table(const std::string& campaign,
                                  const std::vector<CampaignStageRow>& rows) {
  if (rows.empty()) return "(no stages)\n";
  std::size_t name_width = std::string("stage").size();
  for (const CampaignStageRow& row : rows) {
    name_width = std::max(name_width, row.stage.size());
  }
  std::string out = "campaign " + campaign + "\n";
  char buf[256];
  std::snprintf(buf, sizeof(buf), "%-*s %12s %12s %12s  %s\n",
                static_cast<int>(name_width), "stage", "start[s]", "finish[s]",
                "seconds", "note");
  out += buf;
  double first_start = rows.front().start;
  double last_finish = rows.front().finish;
  for (const CampaignStageRow& row : rows) {
    first_start = std::min(first_start, row.start);
    last_finish = std::max(last_finish, row.finish);
    std::snprintf(buf, sizeof(buf), "%-*s %12.4f %12.4f %12.4f  %s\n",
                  static_cast<int>(name_width), row.stage.c_str(), row.start,
                  row.finish, row.finish - row.start, row.note.c_str());
    out += buf;
  }
  std::snprintf(buf, sizeof(buf), "makespan %.4f s\n",
                std::max(0.0, last_finish - first_start));
  out += buf;
  return out;
}

LatencySummary summarize_latencies(std::vector<double> samples) {
  LatencySummary summary;
  if (samples.empty()) return summary;
  std::sort(samples.begin(), samples.end());
  summary.count = samples.size();
  double sum = 0.0;
  for (const double s : samples) sum += s;
  summary.mean = sum / static_cast<double>(samples.size());
  // Nearest-rank: percentile p lands on element ceil(p/100 * n) (1-based).
  const auto rank = [&](double p) {
    std::size_t r = static_cast<std::size_t>(
        std::ceil(p / 100.0 * static_cast<double>(samples.size())));
    if (r == 0) r = 1;
    return samples[r - 1];
  };
  summary.p50 = rank(50.0);
  summary.p90 = rank(90.0);
  summary.p99 = rank(99.0);
  summary.max = samples.back();
  return summary;
}

}  // namespace msra::obs
