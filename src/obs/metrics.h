// Always-on telemetry for the storage stack: counters, gauges and
// bounded-memory histograms collected in a MetricsRegistry owned by
// core::StorageSystem and reachable from every layer.
//
// The paper's thesis is that I/O cost decomposes into the Eq. (1)
// components (Tconn/Topen/Tseek/Trw/Tclose); the registry keeps one
// histogram per (resource, primitive) so a live workload's breakdown is
// directly comparable against PerfDB predictions, without running a
// dedicated bench.
//
// Design constraints:
//  * bounded memory — histograms bucket geometrically instead of keeping
//    every sample like StatAccumulator (which PTool still uses for its
//    short measurement loops);
//  * pay-for-what-you-touch — every instrument checks one relaxed atomic
//    flag first; a disabled registry reduces recording to that load;
//  * stable pointers — instruments are created on first use and never
//    move, so hot paths resolve a name once and keep the pointer.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace msra::obs {

/// Monotonic event counter (thread-safe).
class Counter {
 public:
  explicit Counter(const std::atomic<bool>* enabled) : enabled_(enabled) {}

  void add(std::uint64_t n) {
    if (!enabled_->load(std::memory_order_relaxed)) return;
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  void increment() { add(1); }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  const std::atomic<bool>* enabled_;
  std::atomic<std::uint64_t> value_{0};
};

/// Last-value instrument (queue depths, cache occupancy).
class Gauge {
 public:
  explicit Gauge(const std::atomic<bool>* enabled) : enabled_(enabled) {}

  void set(double v) {
    if (!enabled_->load(std::memory_order_relaxed)) return;
    std::lock_guard<std::mutex> lock(mutex_);
    value_ = v;
  }
  double value() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return value_;
  }

 private:
  const std::atomic<bool>* enabled_;
  mutable std::mutex mutex_;
  double value_ = 0.0;
};

/// Bounded-memory histogram over geometric buckets.
///
/// Values (simulated seconds, bytes, depths) land in one of kBuckets
/// buckets spanning [kLowest, kHighest) with ~8.4% relative width, plus an
/// underflow bucket for values below kLowest (e.g. the 0-second connects of
/// local disks). Exact count/sum/min/max are kept alongside, so mean() is
/// exact and only percentile() pays the bucketing error.
class Histogram {
 public:
  static constexpr int kBuckets = 512;
  static constexpr double kLowest = 1e-9;
  static constexpr double kHighest = 1e9;

  explicit Histogram(const std::atomic<bool>* enabled) : enabled_(enabled) {}

  void record(double v);

  std::uint64_t count() const;
  double sum() const;
  double min() const;  ///< 0 when empty
  double max() const;  ///< 0 when empty
  double mean() const;

  /// Bucket-interpolated percentile, p in [0, 100]; 0 when empty. The
  /// result is exact for the extremes and within one bucket width (~8.4%
  /// relative) elsewhere — tested against the StatAccumulator oracle.
  double percentile(double p) const;

 private:
  const std::atomic<bool>* enabled_;
  mutable std::mutex mutex_;
  std::array<std::uint64_t, kBuckets + 1> buckets_{};  // [0] = underflow
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Point-in-time view of one histogram (used by reports and JSON export).
struct HistogramSnapshot {
  std::string name;
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
};

/// The per-system instrument registry. Instruments are created lazily on
/// first lookup and live as long as the registry; returned pointers are
/// stable and safe to cache across calls (the InstrumentedEndpoint resolves
/// its histograms once at construction).
class MetricsRegistry {
 public:
  explicit MetricsRegistry(bool enabled = true) : enabled_(enabled) {}

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Disabling stops all recording (existing values are kept, not cleared).
  void set_enabled(bool enabled) { enabled_.store(enabled, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  Counter* counter(std::string_view name);
  Gauge* gauge(std::string_view name);
  Histogram* histogram(std::string_view name);

  /// Lookup without creation (nullptr when the instrument never existed).
  const Counter* find_counter(std::string_view name) const;
  const Histogram* find_histogram(std::string_view name) const;

  std::vector<std::pair<std::string, std::uint64_t>> counters() const;
  std::vector<std::pair<std::string, double>> gauges() const;
  std::vector<HistogramSnapshot> histograms() const;

  /// Whole-registry JSON export:
  /// {"enabled":true,"counters":{...},"gauges":{...},"histograms":{...}}.
  std::string to_json() const;

 private:
  std::atomic<bool> enabled_;
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

/// Appends `text` to `out` with JSON string escaping.
void json_escape(std::string& out, std::string_view text);

/// Formats a double as a JSON number (shortest round-trippable form is not
/// required; 9 significant digits keep simulated seconds faithful).
void json_number(std::string& out, double v);

}  // namespace msra::obs
