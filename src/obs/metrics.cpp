#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace msra::obs {

namespace {

// Geometric bucket layout: kBuckets buckets over [kLowest, kHighest).
const double kLogLowest = std::log(Histogram::kLowest);
const double kLogRange = std::log(Histogram::kHighest) - kLogLowest;

int bucket_of(double v) {
  if (!(v >= Histogram::kLowest)) return 0;  // underflow (and NaN)
  if (v >= Histogram::kHighest) return Histogram::kBuckets;
  const double frac = (std::log(v) - kLogLowest) / kLogRange;
  int index = 1 + static_cast<int>(frac * Histogram::kBuckets);
  return std::clamp(index, 1, Histogram::kBuckets);
}

/// Lower edge of bucket `index` (index >= 1); the underflow bucket spans
/// [0, kLowest).
double bucket_lo(int index) {
  if (index <= 0) return 0.0;
  return std::exp(kLogLowest +
                  kLogRange * static_cast<double>(index - 1) /
                      Histogram::kBuckets);
}

double bucket_hi(int index) {
  if (index <= 0) return Histogram::kLowest;
  return std::exp(kLogLowest +
                  kLogRange * static_cast<double>(index) / Histogram::kBuckets);
}

}  // namespace

void Histogram::record(double v) {
  if (!enabled_->load(std::memory_order_relaxed)) return;
  if (std::isnan(v)) return;
  if (v < 0.0) v = 0.0;  // durations cannot be negative; clamp defensively
  std::lock_guard<std::mutex> lock(mutex_);
  buckets_[static_cast<std::size_t>(bucket_of(v))]++;
  if (count_ == 0 || v < min_) min_ = v;
  if (count_ == 0 || v > max_) max_ = v;
  sum_ += v;
  ++count_;
}

std::uint64_t Histogram::count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return count_;
}

double Histogram::sum() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return sum_;
}

double Histogram::min() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return min_;
}

double Histogram::max() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return max_;
}

double Histogram::mean() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

double Histogram::percentile(double p) const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (count_ == 0) return 0.0;
  p = std::clamp(p, 0.0, 100.0);
  if (p <= 0.0) return min_;
  if (p >= 100.0) return max_;
  // Rank in [0, count-1], matching StatAccumulator's linear interpolation.
  const double rank = (p / 100.0) * static_cast<double>(count_ - 1);
  double seen = 0.0;
  for (std::size_t b = 0; b < buckets_.size(); ++b) {
    const double n = static_cast<double>(buckets_[b]);
    if (n == 0.0) continue;
    if (seen + n > rank) {
      // Interpolate inside the bucket, clamped to the observed extremes.
      const double frac = (rank - seen) / n;
      const int index = static_cast<int>(b);
      const double lo = std::max(bucket_lo(index), min_);
      const double hi = std::min(bucket_hi(index), max_);
      return lo + frac * (std::max(hi, lo) - lo);
    }
    seen += n;
  }
  return max_;
}

Counter* MetricsRegistry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>(&enabled_))
             .first;
  }
  return it->second.get();
}

Gauge* MetricsRegistry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>(&enabled_))
             .first;
  }
  return it->second.get();
}

Histogram* MetricsRegistry::histogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name), std::make_unique<Histogram>(&enabled_))
             .first;
  }
  return it->second.get();
}

const Counter* MetricsRegistry::find_counter(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = counters_.find(name);
  return it == counters_.end() ? nullptr : it->second.get();
}

const Histogram* MetricsRegistry::find_histogram(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : it->second.get();
}

std::vector<std::pair<std::string, std::uint64_t>> MetricsRegistry::counters()
    const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::pair<std::string, std::uint64_t>> out;
  out.reserve(counters_.size());
  for (const auto& [name, c] : counters_) out.emplace_back(name, c->value());
  return out;
}

std::vector<std::pair<std::string, double>> MetricsRegistry::gauges() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::pair<std::string, double>> out;
  out.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) out.emplace_back(name, g->value());
  return out;
}

std::vector<HistogramSnapshot> MetricsRegistry::histograms() const {
  // Copy the pointers under the registry lock, then snapshot each histogram
  // under its own lock (record() never takes the registry lock).
  std::vector<std::pair<std::string, Histogram*>> items;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    items.reserve(histograms_.size());
    for (const auto& [name, h] : histograms_) items.emplace_back(name, h.get());
  }
  std::vector<HistogramSnapshot> out;
  out.reserve(items.size());
  for (const auto& [name, h] : items) {
    HistogramSnapshot snap;
    snap.name = name;
    snap.count = h->count();
    snap.sum = h->sum();
    snap.min = h->min();
    snap.max = h->max();
    snap.mean = h->mean();
    snap.p50 = h->percentile(50.0);
    snap.p95 = h->percentile(95.0);
    out.push_back(std::move(snap));
  }
  return out;
}

void json_escape(std::string& out, std::string_view text) {
  for (char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

void json_number(std::string& out, double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  out += buf;
}

std::string MetricsRegistry::to_json() const {
  std::string out = "{\"enabled\":";
  out += enabled() ? "true" : "false";
  out += ",\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : counters()) {
    if (!first) out += ',';
    first = false;
    out += '"';
    json_escape(out, name);
    out += "\":";
    out += std::to_string(value);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, value] : gauges()) {
    if (!first) out += ',';
    first = false;
    out += '"';
    json_escape(out, name);
    out += "\":";
    json_number(out, value);
  }
  out += "},\"histograms\":{";
  first = true;
  for (const HistogramSnapshot& h : histograms()) {
    if (!first) out += ',';
    first = false;
    out += '"';
    json_escape(out, h.name);
    out += "\":{\"count\":";
    out += std::to_string(h.count);
    out += ",\"sum\":";
    json_number(out, h.sum);
    out += ",\"min\":";
    json_number(out, h.min);
    out += ",\"max\":";
    json_number(out, h.max);
    out += ",\"mean\":";
    json_number(out, h.mean);
    out += ",\"p50\":";
    json_number(out, h.p50);
    out += ",\"p95\":";
    json_number(out, h.p95);
    out += '}';
  }
  out += "}}";
  return out;
}

}  // namespace msra::obs
