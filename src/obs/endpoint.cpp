#include "obs/endpoint.h"

namespace msra::obs {

namespace {
std::string instrument_name(const std::string& resource, const char* op) {
  std::string name = "io.";
  name += resource;
  name += '.';
  name += op;
  return name;
}
}  // namespace

InstrumentedEndpoint::InstrumentedEndpoint(
    std::unique_ptr<runtime::StorageEndpoint> inner, MetricsRegistry* registry)
    : inner_(std::move(inner)), registry_(registry) {
  const std::string& r = inner_->name();
  conn_ = registry_->histogram(instrument_name(r, "conn"));
  disconn_ = registry_->histogram(instrument_name(r, "disconn"));
  open_ = registry_->histogram(instrument_name(r, "open"));
  seek_ = registry_->histogram(instrument_name(r, "seek"));
  read_ = registry_->histogram(instrument_name(r, "read"));
  write_ = registry_->histogram(instrument_name(r, "write"));
  close_ = registry_->histogram(instrument_name(r, "close"));
  read_bytes_ = registry_->counter(instrument_name(r, "read_bytes"));
  write_bytes_ = registry_->counter(instrument_name(r, "write_bytes"));
  errors_ = registry_->counter(instrument_name(r, "errors"));
}

Status InstrumentedEndpoint::connect(simkit::Timeline& timeline) {
  if (!registry_->enabled()) return inner_->connect(timeline);
  const simkit::SimTime start = timeline.now();
  Status status = inner_->connect(timeline);
  conn_->record(timeline.now() - start);
  if (!status.ok()) errors_->increment();
  return status;
}

Status InstrumentedEndpoint::disconnect(simkit::Timeline& timeline) {
  if (!registry_->enabled()) return inner_->disconnect(timeline);
  const simkit::SimTime start = timeline.now();
  Status status = inner_->disconnect(timeline);
  disconn_->record(timeline.now() - start);
  if (!status.ok()) errors_->increment();
  return status;
}

StatusOr<runtime::HandleId> InstrumentedEndpoint::open(
    simkit::Timeline& timeline, const std::string& path,
    runtime::OpenMode mode) {
  if (!registry_->enabled()) return inner_->open(timeline, path, mode);
  const simkit::SimTime start = timeline.now();
  auto result = inner_->open(timeline, path, mode);
  open_->record(timeline.now() - start);
  if (!result.ok()) errors_->increment();
  return result;
}

Status InstrumentedEndpoint::seek(simkit::Timeline& timeline,
                                  runtime::HandleId handle,
                                  std::uint64_t offset) {
  if (!registry_->enabled()) return inner_->seek(timeline, handle, offset);
  const simkit::SimTime start = timeline.now();
  Status status = inner_->seek(timeline, handle, offset);
  seek_->record(timeline.now() - start);
  if (!status.ok()) errors_->increment();
  return status;
}

Status InstrumentedEndpoint::read(simkit::Timeline& timeline,
                                  runtime::HandleId handle,
                                  std::span<std::byte> out) {
  if (!registry_->enabled()) return inner_->read(timeline, handle, out);
  const simkit::SimTime start = timeline.now();
  Status status = inner_->read(timeline, handle, out);
  read_->record(timeline.now() - start);
  if (status.ok()) {
    read_bytes_->add(out.size());
  } else {
    errors_->increment();
  }
  return status;
}

Status InstrumentedEndpoint::write(simkit::Timeline& timeline,
                                   runtime::HandleId handle,
                                   std::span<const std::byte> data) {
  if (!registry_->enabled()) return inner_->write(timeline, handle, data);
  const simkit::SimTime start = timeline.now();
  Status status = inner_->write(timeline, handle, data);
  write_->record(timeline.now() - start);
  if (status.ok()) {
    write_bytes_->add(data.size());
  } else {
    errors_->increment();
  }
  return status;
}

Status InstrumentedEndpoint::readv(simkit::Timeline& timeline,
                                   runtime::HandleId handle,
                                   std::span<const runtime::IoRun> runs,
                                   std::span<std::byte> out) {
  if (!registry_->enabled()) return inner_->readv(timeline, handle, runs, out);
  const simkit::SimTime start = timeline.now();
  Status status = inner_->readv(timeline, handle, runs, out);
  read_->record(timeline.now() - start);
  if (status.ok()) {
    read_bytes_->add(out.size());
  } else {
    errors_->increment();
  }
  return status;
}

Status InstrumentedEndpoint::writev(simkit::Timeline& timeline,
                                    runtime::HandleId handle,
                                    std::span<const runtime::IoRun> runs,
                                    std::span<const std::byte> data) {
  if (!registry_->enabled()) return inner_->writev(timeline, handle, runs, data);
  const simkit::SimTime start = timeline.now();
  Status status = inner_->writev(timeline, handle, runs, data);
  write_->record(timeline.now() - start);
  if (status.ok()) {
    write_bytes_->add(data.size());
  } else {
    errors_->increment();
  }
  return status;
}

Status InstrumentedEndpoint::close(simkit::Timeline& timeline,
                                   runtime::HandleId handle) {
  if (!registry_->enabled()) return inner_->close(timeline, handle);
  const simkit::SimTime start = timeline.now();
  Status status = inner_->close(timeline, handle);
  close_->record(timeline.now() - start);
  if (!status.ok()) errors_->increment();
  return status;
}

Status InstrumentedEndpoint::remove(simkit::Timeline& timeline,
                                    const std::string& path) {
  // Namespace maintenance, not part of the Eq.-1 decomposition; only track
  // failures.
  Status status = inner_->remove(timeline, path);
  if (!status.ok() && registry_->enabled()) errors_->increment();
  return status;
}

StatusOr<std::uint64_t> InstrumentedEndpoint::size(simkit::Timeline& timeline,
                                                   const std::string& path) {
  return inner_->size(timeline, path);
}

StatusOr<std::vector<store::ObjectInfo>> InstrumentedEndpoint::list(
    simkit::Timeline& timeline, const std::string& prefix) {
  return inner_->list(timeline, prefix);
}

}  // namespace msra::obs
