// Virtual-time spans and a bounded trace recorder.
//
// A Span measures an operation against a simkit::Timeline, so trace
// timestamps are *simulated* seconds — the same currency every experiment
// is billed in (a 40 s tape mount shows up as 40 s, not the microseconds
// of wall-clock it cost). Spans nest: each thread keeps a stack of open
// spans, and a new span records the enclosing one as its parent, which is
// how a `write_timestep` span ends up owning its per-attempt `write_array`
// children.
//
// Completed spans land in a fixed-capacity ring buffer (TraceRecorder);
// when the ring wraps, the oldest spans are dropped and counted, so memory
// stays bounded no matter how long the run is.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "simkit/timeline.h"

namespace msra::obs {

using SpanId = std::uint64_t;

/// One completed span. start/end are virtual times on the span's timeline.
struct SpanRecord {
  SpanId id = 0;
  SpanId parent = 0;  ///< 0 = root span
  std::string name;
  simkit::SimTime start = 0.0;
  simkit::SimTime end = 0.0;

  simkit::SimTime duration() const { return end - start; }
};

/// Fixed-capacity ring buffer of completed spans.
class TraceRecorder {
 public:
  explicit TraceRecorder(std::size_t capacity = 1024, bool enabled = true)
      : capacity_(capacity == 0 ? 1 : capacity), enabled_(enabled) {}

  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  void set_enabled(bool enabled) { enabled_.store(enabled, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  std::size_t capacity() const { return capacity_; }

  /// Allocates a fresh span id (never 0).
  SpanId next_id() { return id_source_.fetch_add(1, std::memory_order_relaxed) + 1; }

  /// Stores a completed span, evicting the oldest when full.
  void record(SpanRecord record);

  /// Completed spans, oldest first.
  std::vector<SpanRecord> snapshot() const;

  /// Spans evicted because the ring was full.
  std::uint64_t dropped() const;

  void clear();

  /// [{"id":1,"parent":0,"name":"...","start":0,"end":1.5}, ...]
  std::string to_json() const;

 private:
  std::size_t capacity_;
  std::atomic<bool> enabled_;
  std::atomic<std::uint64_t> id_source_{0};
  mutable std::mutex mutex_;
  std::vector<SpanRecord> ring_;
  std::size_t head_ = 0;  ///< index of the oldest record once full
  std::uint64_t dropped_ = 0;
};

/// RAII span: opens against `timeline` on construction, records into
/// `recorder` when ended (or destroyed). A null recorder — or a disabled
/// one — makes the span a no-op, so callers never branch.
class Span {
 public:
  Span(TraceRecorder* recorder, const simkit::Timeline& timeline,
       std::string name);
  ~Span() { end(); }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Closes the span at the timeline's current virtual time. Idempotent.
  void end();

  /// This span's id (0 for no-op spans).
  SpanId id() const { return record_.id; }

  /// The innermost open span on this thread (0 outside any span).
  static SpanId current();

 private:
  TraceRecorder* recorder_;
  const simkit::Timeline* timeline_;
  SpanRecord record_;
  bool open_ = false;
};

}  // namespace msra::obs
