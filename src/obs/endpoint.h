// InstrumentedEndpoint: a decorator over runtime::StorageEndpoint that
// bills every Eq.-1 primitive (connect/open/seek/read/write/close plus
// disconnect) into per-resource histograms, so a live workload's component
// breakdown is directly comparable against PerfDB predictions.
//
// Instrument names follow `io.<resource>.<op>` (durations, simulated
// seconds) and `io.<resource>.{read,write}_bytes` (counters). Pointers are
// resolved once at construction; a forwarded call costs two timeline
// reads and one histogram insert — and with the registry disabled, just
// the relaxed-atomic flag check.
#pragma once

#include <memory>
#include <string>

#include "obs/metrics.h"
#include "runtime/endpoint.h"

namespace msra::obs {

class InstrumentedEndpoint final : public runtime::StorageEndpoint {
 public:
  /// Owns `inner`; `registry` must outlive this endpoint.
  InstrumentedEndpoint(std::unique_ptr<runtime::StorageEndpoint> inner,
                       MetricsRegistry* registry);

  runtime::StorageKind kind() const override { return inner_->kind(); }
  const std::string& name() const override { return inner_->name(); }

  MetricsRegistry* metrics() const override { return registry_; }
  runtime::StorageEndpoint* unwrap() override { return inner_->unwrap(); }

  Status connect(simkit::Timeline& timeline) override;
  Status disconnect(simkit::Timeline& timeline) override;

  StatusOr<runtime::HandleId> open(simkit::Timeline& timeline,
                                   const std::string& path,
                                   runtime::OpenMode mode) override;
  Status seek(simkit::Timeline& timeline, runtime::HandleId handle,
              std::uint64_t offset) override;
  Status read(simkit::Timeline& timeline, runtime::HandleId handle,
              std::span<std::byte> out) override;
  Status write(simkit::Timeline& timeline, runtime::HandleId handle,
               std::span<const std::byte> data) override;
  Status close(simkit::Timeline& timeline, runtime::HandleId handle) override;

  /// Vectored calls bill their whole duration into the read/write
  /// histograms (one record per batch, matching the one RPC on the wire).
  Status readv(simkit::Timeline& timeline, runtime::HandleId handle,
               std::span<const runtime::IoRun> runs,
               std::span<std::byte> out) override;
  Status writev(simkit::Timeline& timeline, runtime::HandleId handle,
                std::span<const runtime::IoRun> runs,
                std::span<const std::byte> data) override;
  runtime::FastPathConfig fast_path() const override {
    return inner_->fast_path();
  }
  void set_fast_path(const runtime::FastPathConfig& config) override {
    inner_->set_fast_path(config);
  }

  Status remove(simkit::Timeline& timeline, const std::string& path) override;
  StatusOr<std::uint64_t> size(simkit::Timeline& timeline,
                               const std::string& path) override;
  StatusOr<std::vector<store::ObjectInfo>> list(
      simkit::Timeline& timeline, const std::string& prefix) override;

  std::uint64_t capacity() const override { return inner_->capacity(); }
  std::uint64_t used() const override { return inner_->used(); }
  bool available() const override { return inner_->available(); }

 private:
  std::unique_ptr<runtime::StorageEndpoint> inner_;
  MetricsRegistry* registry_;

  // One histogram per Eq.-1 component, resolved once.
  Histogram* conn_;
  Histogram* disconn_;
  Histogram* open_;
  Histogram* seek_;
  Histogram* read_;
  Histogram* write_;
  Histogram* close_;
  Counter* read_bytes_;
  Counter* write_bytes_;
  Counter* errors_;
};

}  // namespace msra::obs
