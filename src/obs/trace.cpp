#include "obs/trace.h"

#include "obs/metrics.h"

namespace msra::obs {

namespace {
// Per-thread stack of open span ids; the top is the parent of the next
// span opened on this thread (ranks of the parallel runtime are threads,
// so each rank nests independently).
thread_local std::vector<SpanId> open_spans;
}  // namespace

void TraceRecorder::record(SpanRecord record) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(record));
    return;
  }
  ring_[head_] = std::move(record);
  head_ = (head_ + 1) % capacity_;
  ++dropped_;
}

std::vector<SpanRecord> TraceRecorder::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<SpanRecord> out;
  out.reserve(ring_.size());
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(head_ + i) % ring_.size()]);
  }
  return out;
}

std::uint64_t TraceRecorder::dropped() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return dropped_;
}

void TraceRecorder::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  ring_.clear();
  head_ = 0;
  dropped_ = 0;
}

std::string TraceRecorder::to_json() const {
  std::string out = "[";
  bool first = true;
  for (const SpanRecord& span : snapshot()) {
    if (!first) out += ',';
    first = false;
    out += "{\"id\":";
    out += std::to_string(span.id);
    out += ",\"parent\":";
    out += std::to_string(span.parent);
    out += ",\"name\":\"";
    json_escape(out, span.name);
    out += "\",\"start\":";
    json_number(out, span.start);
    out += ",\"end\":";
    json_number(out, span.end);
    out += '}';
  }
  out += ']';
  return out;
}

Span::Span(TraceRecorder* recorder, const simkit::Timeline& timeline,
           std::string name)
    : recorder_(recorder), timeline_(&timeline) {
  if (recorder_ == nullptr || !recorder_->enabled()) return;
  record_.id = recorder_->next_id();
  record_.parent = open_spans.empty() ? 0 : open_spans.back();
  record_.name = std::move(name);
  record_.start = timeline_->now();
  open_spans.push_back(record_.id);
  open_ = true;
}

void Span::end() {
  if (!open_) return;
  open_ = false;
  // Pop this span (and any spans leaked below it by early returns).
  while (!open_spans.empty() && open_spans.back() != record_.id) {
    open_spans.pop_back();
  }
  if (!open_spans.empty()) open_spans.pop_back();
  record_.end = timeline_->now();
  recorder_->record(std::move(record_));
}

SpanId Span::current() { return open_spans.empty() ? 0 : open_spans.back(); }

}  // namespace msra::obs
