// Turns the raw `io.<resource>.<op>` instruments recorded by
// InstrumentedEndpoint into the paper's Eq. (1) view: per resource, how
// many simulated seconds went to Tconn / Topen / Tseek / Trw / Tclose
// (close here folds file-close and connection-close together, mirroring
// the Tfileclose + Tconnclose terms).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace msra::obs {

/// Summed Eq.-1 components for one resource, in simulated seconds.
struct ResourceIoReport {
  std::string resource;
  double conn = 0.0;     ///< Tconn (connect)
  double open = 0.0;     ///< Topen
  double seek = 0.0;     ///< Tseek
  double read = 0.0;     ///< Trw, read half
  double write = 0.0;    ///< Trw, write half
  double close = 0.0;    ///< Tfileclose + Tconnclose
  std::uint64_t ops = 0; ///< total primitive calls
  std::uint64_t read_bytes = 0;
  std::uint64_t write_bytes = 0;

  double total() const { return conn + open + seek + read + write + close; }
};

/// One row per resource that recorded any `io.*` instrument, sorted by
/// resource name.
std::vector<ResourceIoReport> io_breakdown(const MetricsRegistry& registry);

/// Fixed-width text table of the breakdown plus a totals row; empty
/// registry renders a one-line "(no I/O recorded)" note.
std::string format_io_table(const std::vector<ResourceIoReport>& rows);

/// One row of the contention summary: aggregate load on one shared device
/// (a disk arm, the server CPU, a WAN pipe, a tape drive). Filled from
/// simkit::Resource accounting by StorageSystem::resource_loads().
struct ResourceLoadRow {
  std::string name;
  int capacity = 1;                ///< parallel servers (arms, workers)
  std::uint64_t operations = 0;    ///< granted reservations
  double busy_seconds = 0.0;       ///< summed service time
  double utilization = 0.0;        ///< busy / (capacity * horizon), 0..1
  std::uint64_t reservations = 0;  ///< reservations with service > 0
  double total_wait = 0.0;         ///< summed queueing delay (s)
  double max_wait = 0.0;           ///< worst single queueing delay (s)

  double mean_wait() const {
    return reservations > 0 ? total_wait / static_cast<double>(reservations)
                            : 0.0;
  }
};

/// Fixed-width contention table (one row per device plus util/wait
/// columns); devices that served nothing are skipped. Empty input renders
/// a one-line "(no contention recorded)" note.
std::string format_contention_table(const std::vector<ResourceLoadRow>& rows);

/// One row of the per-tenant-class QoS summary: queueing behaviour of one
/// class across every shared device plus its admission verdicts. Filled by
/// StorageSystem::qos_breakdown() from simkit::Resource::class_stats(),
/// the `qos.wait.<class>` histograms and the `qos.admission.*` counters.
struct QosClassRow {
  std::string tenant;                 ///< "interactive" / "batch" / ...
  std::uint64_t served = 0;           ///< granted reservations, service > 0
  double wait_p50 = 0.0;              ///< queueing delay percentiles (s)
  double wait_p99 = 0.0;
  double wait_max = 0.0;
  double max_backlog = 0.0;           ///< worst backlog joined (s)
  std::uint64_t deadline_misses = 0;  ///< grants past ready + deadline
  std::uint64_t accepted = 0;         ///< admission verdicts for the class
  std::uint64_t redirected = 0;       ///< subset of accepted
  std::uint64_t rejected = 0;
};

/// Fixed-width per-class QoS table; classes that neither served a request
/// nor saw an admission verdict are skipped. Empty input renders a
/// one-line "(no QoS activity recorded)" note.
std::string format_qos_table(const std::vector<QosClassRow>& rows);

/// One stage of a campaign makespan summary (virtual seconds): filled from
/// a flow::CampaignReport (or a flow::CampaignPrice for the planned view) —
/// obs stays flow-agnostic, so callers map their rows in.
struct CampaignStageRow {
  std::string stage;
  double start = 0.0;
  double finish = 0.0;
  std::string note;  ///< status / producer list, free-form
};

/// Fixed-width per-stage table with a makespan footer (latest finish minus
/// earliest start); empty input renders a one-line "(no stages)" note.
std::string format_campaign_table(const std::string& campaign,
                                  const std::vector<CampaignStageRow>& rows);

/// Exact order statistics over a latency sample set (simulated seconds).
/// Percentiles use the nearest-rank method on the sorted samples, so the
/// reported values are always members of the input — deterministic and
/// stable across platforms, which the fleet bench baselines rely on.
struct LatencySummary {
  std::size_t count = 0;
  double mean = 0.0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
  double max = 0.0;
};

/// Sorts `samples` (taken by value) and fills the summary; an empty input
/// yields the all-zero summary.
LatencySummary summarize_latencies(std::vector<double> samples);

}  // namespace msra::obs
