// Turns the raw `io.<resource>.<op>` instruments recorded by
// InstrumentedEndpoint into the paper's Eq. (1) view: per resource, how
// many simulated seconds went to Tconn / Topen / Tseek / Trw / Tclose
// (close here folds file-close and connection-close together, mirroring
// the Tfileclose + Tconnclose terms).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace msra::obs {

/// Summed Eq.-1 components for one resource, in simulated seconds.
struct ResourceIoReport {
  std::string resource;
  double conn = 0.0;     ///< Tconn (connect)
  double open = 0.0;     ///< Topen
  double seek = 0.0;     ///< Tseek
  double read = 0.0;     ///< Trw, read half
  double write = 0.0;    ///< Trw, write half
  double close = 0.0;    ///< Tfileclose + Tconnclose
  std::uint64_t ops = 0; ///< total primitive calls
  std::uint64_t read_bytes = 0;
  std::uint64_t write_bytes = 0;

  double total() const { return conn + open + seek + read + write + close; }
};

/// One row per resource that recorded any `io.*` instrument, sorted by
/// resource name.
std::vector<ResourceIoReport> io_breakdown(const MetricsRegistry& registry);

/// Fixed-width text table of the breakdown plus a totals row; empty
/// registry renders a one-line "(no I/O recorded)" note.
std::string format_io_table(const std::vector<ResourceIoReport>& rows);

}  // namespace msra::obs
