// flow::Prefetcher: LRU read-ahead as a client of the unified mover.
//
// Formerly runtime::Prefetcher (async_io) with a private read loop; the
// byte movement now routes through StagingScheduler::read_object — a
// prefetch is a single-node campaign: fetch one object toward one declared
// future consumer (the caller). The LRU bound, in-flight protection and
// hit accounting are unchanged:
//
//   * prefetch() starts the fetch on the engine's own timeline (no caller
//     cost beyond the handoff);
//   * fetch() charges only a memory copy when the prefetch beat the
//     caller's clock, joins clocks when it did not, and falls back to a
//     synchronous read for objects never prefetched;
//   * at most `capacity` objects are cached, evicted LRU; in-flight
//     prefetches are never evicted.
#pragma once

#include <cstddef>
#include <list>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/threadpool.h"
#include "flow/stager.h"
#include "runtime/endpoint.h"

namespace msra::flow {

class Prefetcher {
 public:
  /// `stager` and `endpoint` must outlive the prefetcher;
  /// `memcpy_bandwidth` prices the caller-side buffer copy (B/s virtual).
  Prefetcher(StagingScheduler& stager, runtime::StorageEndpoint& endpoint,
             double memcpy_bandwidth = 400.0e6, std::size_t capacity = 16);
  ~Prefetcher();

  Prefetcher(const Prefetcher&) = delete;
  Prefetcher& operator=(const Prefetcher&) = delete;

  /// Starts fetching `path` in the background (no caller cost beyond a
  /// request handoff).
  void prefetch(simkit::Timeline& caller, const std::string& path);

  /// Returns the object's bytes. If the prefetch finished before the
  /// caller's current virtual time, only the copy is charged; otherwise the
  /// caller waits (clock joins) for it. Objects never prefetched are read
  /// synchronously.
  StatusOr<std::vector<std::byte>> fetch(simkit::Timeline& caller,
                                         const std::string& path);

  /// Cache hits observed by fetch().
  std::uint64_t hits() const;

  /// Objects currently cached (including in-flight prefetches).
  std::size_t cached_count() const;

  /// Completed entries dropped to respect the capacity bound.
  std::uint64_t evictions() const;

 private:
  struct Entry {
    Status status;
    std::vector<std::byte> data;
    simkit::SimTime ready_at = 0.0;
    bool done = false;
  };

  /// Moves `path` to the most-recently-used position. Callers hold mutex_.
  void touch_locked(const std::string& path);

  /// Drops least-recently-used *completed* entries until the cache fits the
  /// capacity bound. Callers hold mutex_.
  void evict_locked();

  StagingScheduler& stager_;
  runtime::StorageEndpoint& endpoint_;
  double memcpy_bandwidth_;
  std::size_t capacity_;
  simkit::Timeline engine_;
  ThreadPool pool_;
  mutable std::mutex mutex_;
  std::map<std::string, Entry> cache_;
  std::list<std::string> lru_;  ///< front = most recent
  std::uint64_t hits_ = 0;
  std::uint64_t evictions_ = 0;
};

}  // namespace msra::flow
