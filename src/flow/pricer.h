// flow::CampaignPricer: Eq. (2) extended from one dataset to a whole DAG.
//
// The paper prices each dataset access independently; a campaign's cost is
// not that sum alone — a stage's read quote depends on where its producer's
// output WILL live (cross-stage staleness), and the campaign's end-to-end
// makespan follows the dependency structure, not the declaration order.
// The pricer walks stages in declaration order keeping a placement map
// (dataset, timestep) -> address:
//
//   * a write prices at the dataset's resolved placement and RECORDS it —
//     later readers quote against that future location, not the catalog's
//     current (possibly empty) state;
//   * a read of an upstream output prices at the recorded placement; a
//     read of an external input prices at its cheapest live replica — or
//     at the prestage destination when a StagingScheduler is consulted
//     (where the data WILL live once staging runs);
//   * stage cost is Predictor::price_serial over the stage's lowered
//     whole-object plans; stages then schedule at the earliest start their
//     producers allow, giving the campaign's critical-path makespan.
//
// Intents that cannot be priced yet (dataset never registered, no live
// replica) quote 0 with a note — pricing never blocks on missing data,
// exactly like QoS admission.
#pragma once

#include <string>
#include <vector>

#include "core/system.h"
#include "flow/campaign.h"
#include "predict/predictor.h"

namespace msra::flow {

class StagingScheduler;

/// One priced intent of a stage (the `msractl flow explain` leaf rows).
struct IntentPrice {
  core::Workload::IoIntent::Kind kind = core::Workload::IoIntent::Kind::kRead;
  std::string dataset;
  int timestep = 0;
  core::ReplicaAddress address = core::Location::kRemoteTape;
  double seconds = 0.0;
  std::string note;  ///< "producer output" / "catalog replica" / "prestaged" / "unpriced"
};

/// One priced stage, scheduled at its earliest dependency-allowed start.
struct StagePriceRow {
  std::string stage;
  qos::TenantClass tenant_class = qos::TenantClass::kBatch;
  double seconds = 0.0;  ///< Eq. (2) sum over the stage's intents
  double start = 0.0;    ///< earliest start (max producer finish)
  double finish = 0.0;   ///< start + seconds
  std::vector<std::size_t> producers;  ///< stage indices this one waits on
  std::vector<IntentPrice> intents;
};

/// The whole campaign, priced end-to-end.
struct CampaignPrice {
  std::vector<StagePriceRow> stages;
  double total = 0.0;     ///< Eq. (2): sum of every stage's priced seconds
  double makespan = 0.0;  ///< critical path: latest stage finish
};

class CampaignPricer {
 public:
  /// `system` and `predictor` must outlive the pricer.
  CampaignPricer(core::StorageSystem& system,
                 const predict::Predictor& predictor);

  /// Prices `campaign` end-to-end. When `stager` is non-null its prestage
  /// plan (over the current catalog, nothing dispatched) overrides external
  /// inputs' placements — the quote then reflects where staging will put
  /// the data, not where it sits today.
  StatusOr<CampaignPrice> price(const Campaign& campaign,
                                StagingScheduler* stager = nullptr) const;

 private:
  core::StorageSystem& system_;
  const predict::Predictor& predictor_;
};

}  // namespace msra::flow
