#include "flow/run.h"

#include <algorithm>
#include <map>
#include <utility>

#include "core/client.h"
#include "core/fleet.h"
#include "flow/campaign.h"
#include "obs/trace.h"

namespace msra::core {

StatusOr<flow::CampaignReport> Fleet::submit_campaign(
    const flow::Campaign& campaign) {
  return submit_campaign(campaign, flow::CampaignOptions{});
}

StatusOr<flow::CampaignReport> Fleet::submit_campaign(
    const flow::Campaign& campaign, const flow::CampaignOptions& options) {
  MSRA_ASSIGN_OR_RETURN(std::vector<std::vector<std::size_t>> producers,
                        campaign.producers());
  MSRA_ASSIGN_OR_RETURN(std::vector<std::vector<std::size_t>> waves,
                        campaign.waves());

  flow::CampaignReport report;
  report.campaign = campaign.name();
  report.stages.resize(campaign.stages().size());

  flow::StagingScheduler* stager = options.stager;
  if (stager != nullptr) stager->pin_campaign(campaign);

  // One tenant actor per stage, classed per its declaration.
  std::vector<Client*> clients;
  clients.reserve(campaign.stages().size());
  for (const flow::StageDecl& decl : campaign.stages()) {
    SessionOptions session;
    session.application = campaign.application();
    session.user = campaign.name();
    session.predictor = options.predictor;
    session.tenant_class = decl.tenant_class;
    clients.push_back(
        &add_client(campaign.name() + "/" + decl.name, std::move(session)));
  }

  // Virtual time each prestaged input becomes readable: a replica committed
  // at T is not available to a consumer clock before T.
  std::map<flow::DatasetRef, double> ready_at;
  auto run_staging = [&](std::vector<flow::StageTask> tasks) {
    if (tasks.empty()) return;
    for (flow::StageOutcome& outcome : stager->execute(tasks)) {
      if (outcome.status.ok() &&
          outcome.task.kind == flow::StageTaskKind::kPrestage) {
        const flow::DatasetRef ref{outcome.task.name, outcome.task.timestep};
        auto it = ready_at.find(ref);
        ready_at[ref] = it == ready_at.end()
                            ? outcome.finished_at
                            : std::max(it->second, outcome.finished_at);
      }
      report.staging.push_back(std::move(outcome));
    }
  };

  std::vector<bool> dispatched(campaign.stages().size(), false);
  // External inputs that already exist can stage before the first wave —
  // the same all-undispatched plan the CampaignPricer quotes against.
  if (stager != nullptr) run_staging(stager->plan_prestage(campaign, dispatched));

  simkit::Timeline span_clock;
  {
    obs::Span span(&system_.tracer(), span_clock,
                   "campaign " + campaign.name());
    for (const std::vector<std::size_t>& wave : waves) {
      // Marked before staging re-plans: a dispatching stage's reads are in
      // flight, no longer a prestage target.
      for (std::size_t idx : wave) dispatched[idx] = true;
      std::map<std::size_t, Completion*> completions;
      for (std::size_t idx : wave) {
        double start = 0.0;
        for (std::size_t producer : producers[idx]) {
          start = std::max(start, report.stages[producer].finished_at);
        }
        for (const flow::DatasetRef& ref : campaign.reads_of(idx)) {
          auto it = ready_at.find(ref);
          if (it != ready_at.end()) start = std::max(start, it->second);
        }
        clients[idx]->timeline().advance_to(start);
        report.stages[idx].stage = campaign.stages()[idx].name;
        report.stages[idx].started_at = start;
        Workload workload = campaign.stages()[idx].workload;
        workload.classed(campaign.stages()[idx].tenant_class);
        completions[idx] = submit(*clients[idx], std::move(workload));
      }
      run_until_idle();
      for (std::size_t idx : wave) {
        report.stages[idx].status = completions[idx]->status();
        report.stages[idx].finished_at = completions[idx]->finished_at();
        if (stager != nullptr) stager->release_stage(campaign, idx);
      }
      if (stager != nullptr) {
        // Copies toward the remaining waves overlap the next wave's I/O;
        // staged copies past their last consumer are dropped.
        run_staging(stager->plan_prestage(campaign, dispatched));
        run_staging(stager->plan_gc(campaign));
      }
    }

    double first_start = 0.0;
    double last_finish = 0.0;
    for (std::size_t i = 0; i < report.stages.size(); ++i) {
      if (i == 0 || report.stages[i].started_at < first_start) {
        first_start = report.stages[i].started_at;
      }
      last_finish = std::max(last_finish, report.stages[i].finished_at);
    }
    report.makespan = std::max(0.0, last_finish - first_start);
    span_clock.advance_to(last_finish);
  }

  obs::MetricsRegistry& metrics = system_.metrics();
  if (metrics.enabled()) {
    metrics.counter("flow.campaigns")->increment();
    metrics.counter("flow.campaign.stages")->add(report.stages.size());
    metrics.histogram("flow.campaign.makespan")->record(report.makespan);
  }
  return report;
}

}  // namespace msra::core
