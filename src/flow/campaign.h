// flow::Campaign: a declared producer/consumer DAG over datasets.
//
// The paper's Astro3D pipeline is a workflow, not a bag of independent
// accesses: the simulation dumps timestep frames, MSE and Volren read them
// back, visualization reads what MSE produced. A Campaign declares that
// structure up front — stages are classed core::Workloads, edges are
// derived from the workloads' recorded IoIntents (stage B reading a
// (dataset, timestep) some earlier stage A writes makes A a producer of
// B) — so the whole graph can be priced end-to-end (flow::CampaignPricer),
// driven in dependency order (core::Fleet::submit_campaign), and pre-staged
// toward its future consumers (flow::StagingScheduler).
//
// Edges always point backward in declaration order: a stage that reads a
// (dataset, timestep) only a LATER stage writes is a declaration error, not
// a runtime surprise. Reads of datasets no stage writes are external inputs
// resolved against the replica catalog at run/price time.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "core/fleet.h"
#include "qos/tenant.h"

namespace msra::flow {

/// One node of the DAG: a named, classed workload.
struct StageDecl {
  std::string name;
  qos::TenantClass tenant_class = qos::TenantClass::kBatch;
  core::Workload workload;
  /// Explicit extra dependencies (stage names declared earlier), for
  /// ordering constraints the intents cannot express — e.g. "dump_t1 runs
  /// after dump_t0" when the simulation iterates, though neither reads the
  /// other's output.
  std::vector<std::string> after;
};

/// One dataset input or output of a stage, resolved from the workload's
/// intents: what the DAG edges and the prestage planner reason about.
struct DatasetRef {
  std::string dataset;
  int timestep = 0;

  friend bool operator<(const DatasetRef& a, const DatasetRef& b) {
    if (a.dataset != b.dataset) return a.dataset < b.dataset;
    return a.timestep < b.timestep;
  }
  friend bool operator==(const DatasetRef& a, const DatasetRef& b) {
    return a.dataset == b.dataset && a.timestep == b.timestep;
  }
};

class Campaign {
 public:
  /// `application` is the catalog namespace every stage's datasets live in;
  /// it defaults to the campaign name.
  explicit Campaign(std::string name, std::string application = "");

  const std::string& name() const { return name_; }
  const std::string& application() const { return application_; }

  /// Appends a stage. Declaration order is the tie-break everywhere
  /// (scheduling waves, pricing), so campaigns replay deterministically.
  Campaign& stage(std::string name, core::Workload workload,
                  qos::TenantClass cls = qos::TenantClass::kBatch);

  /// Adds an explicit dependency: `stage` (declared) runs after
  /// `dependency` (declared earlier). Unknown names fail in producers().
  Campaign& after(const std::string& stage, const std::string& dependency);

  const std::vector<StageDecl>& stages() const { return stages_; }
  bool empty() const { return stages_.empty(); }

  /// Catalog key of one of this campaign's datasets ("app/dataset").
  std::string dataset_key(const std::string& dataset) const;

  /// The (dataset, timestep) pairs stage `i` reads / writes, deduplicated,
  /// in first-intent order.
  std::vector<DatasetRef> reads_of(std::size_t i) const;
  std::vector<DatasetRef> writes_of(std::size_t i) const;

  /// Producer edges per stage: producers()[j] lists every stage index whose
  /// writes feed stage j's reads, plus j's explicit `after` dependencies.
  /// Fails when a read's producer is declared after its consumer, or an
  /// `after` name is unknown or not declared earlier.
  StatusOr<std::vector<std::vector<std::size_t>>> producers() const;

  /// Dispatch waves: wave k holds every stage whose producers all sit in
  /// waves < k, in declaration order. A valid campaign always levels — the
  /// backward-edge rule makes cycles unrepresentable.
  StatusOr<std::vector<std::vector<std::size_t>>> waves() const;

  /// Number of read intents naming (dataset, timestep) across stages whose
  /// `dispatched` flag is false — the declared future reuse the prestage
  /// planner and the AccessTracker seeding count. `dispatched` is indexed
  /// by stage; an empty vector means "no stage dispatched yet".
  int pending_readers(const DatasetRef& ref,
                      const std::vector<bool>& dispatched) const;

 private:
  std::size_t index_of(const std::string& stage) const;  ///< npos if unknown

  std::string name_;
  std::string application_;
  std::vector<StageDecl> stages_;
};

}  // namespace msra::flow
