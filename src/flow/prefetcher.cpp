#include "flow/prefetcher.h"

#include "obs/metrics.h"
#include "simkit/time.h"

namespace msra::flow {

Prefetcher::Prefetcher(StagingScheduler& stager,
                       runtime::StorageEndpoint& endpoint,
                       double memcpy_bandwidth, std::size_t capacity)
    : stager_(stager),
      endpoint_(endpoint),
      memcpy_bandwidth_(memcpy_bandwidth),
      capacity_(capacity == 0 ? 1 : capacity),
      pool_(1) {}

Prefetcher::~Prefetcher() { pool_.wait_idle(); }

void Prefetcher::touch_locked(const std::string& path) {
  lru_.remove(path);
  lru_.push_front(path);
}

void Prefetcher::evict_locked() {
  // Walk from the cold end, dropping completed entries; in-flight prefetches
  // are skipped (their worker still needs the Entry slot).
  auto it = lru_.end();
  while (cache_.size() > capacity_ && it != lru_.begin()) {
    --it;
    auto found = cache_.find(*it);
    if (found == cache_.end()) {
      it = lru_.erase(it);
      continue;
    }
    if (!found->second.done) continue;
    cache_.erase(found);
    it = lru_.erase(it);
    ++evictions_;
  }
}

void Prefetcher::prefetch(simkit::Timeline& caller, const std::string& path) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (cache_.count(path)) {
      touch_locked(path);
      return;  // already in flight or cached
    }
    cache_.emplace(path, Entry{});
    touch_locked(path);
    evict_locked();
  }
  engine_.advance_to(caller.now());
  pool_.submit([this, path] {
    auto result = stager_.read_object(endpoint_, engine_, path);
    std::lock_guard<std::mutex> lock(mutex_);
    Entry& entry = cache_[path];
    entry.done = true;
    entry.ready_at = engine_.now();
    if (result.ok()) {
      entry.data = std::move(*result);
    } else {
      entry.status = result.status();
    }
    evict_locked();  // entries kept alive while in flight may now go
  });
}

StatusOr<std::vector<std::byte>> Prefetcher::fetch(simkit::Timeline& caller,
                                                   const std::string& path) {
  if (obs::MetricsRegistry* registry = endpoint_.metrics()) {
    registry->counter("prefetch.fetches")->increment();
  }
  pool_.wait_idle();  // wall-clock settle; virtual-time cost handled below
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = cache_.find(path);
    if (it != cache_.end() && it->second.done) {
      touch_locked(path);
      const Entry& entry = it->second;
      if (!entry.status.ok()) return entry.status;
      if (entry.ready_at <= caller.now()) {
        ++hits_;  // fully hidden by compute
        if (obs::MetricsRegistry* registry = endpoint_.metrics()) {
          registry->counter("prefetch.hits")->increment();
        }
      }
      caller.advance_to(entry.ready_at);
      caller.advance(simkit::transfer_time(entry.data.size(), memcpy_bandwidth_));
      return entry.data;
    }
  }
  // Never prefetched: synchronous read on the caller's clock.
  return stager_.read_object(endpoint_, caller, path);
}

std::uint64_t Prefetcher::hits() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return hits_;
}

std::size_t Prefetcher::cached_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return cache_.size();
}

std::uint64_t Prefetcher::evictions() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return evictions_;
}

}  // namespace msra::flow
