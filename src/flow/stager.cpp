#include "flow/stager.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "cache/cache.h"
#include "common/log.h"
#include "core/balancer.h"
#include "core/placement.h"
#include "flow/campaign.h"
#include "obs/trace.h"
#include "qos/admission.h"
#include "runtime/plan.h"
#include "simkit/qos.h"

namespace msra::flow {

std::string_view stage_task_kind_name(StageTaskKind kind) {
  switch (kind) {
    case StageTaskKind::kPromote: return "promote";
    case StageTaskKind::kDemote: return "demote";
    case StageTaskKind::kEvict: return "evict";
    case StageTaskKind::kRebalance: return "rebalance";
    case StageTaskKind::kPrestage: return "prestage";
    case StageTaskKind::kGc: return "gc";
  }
  return "?";
}

namespace {

/// Copyless kinds only touch the catalog and the source object.
bool copyless(StageTaskKind kind) {
  return kind == StageTaskKind::kEvict || kind == StageTaskKind::kGc;
}

}  // namespace

std::string StageTask::label() const {
  std::string out(stage_task_kind_name(kind));
  out += " " + app + "/" + name + " t" + std::to_string(timestep) + " " +
         core::address_name(from);
  if (!copyless(kind)) {
    out += "->" + core::address_name(to);
  }
  return out;
}

StagingScheduler::StagingScheduler(core::StorageSystem& system,
                                   const predict::Predictor* predictor,
                                   StagingConfig config)
    : system_(system),
      predictor_(predictor),
      config_(config),
      catalog_(&system.metadb()),
      pool_(static_cast<std::size_t>(std::max(1, config.workers))) {}

StatusOr<double> StagingScheduler::price_move(const predict::Predictor& predictor,
                                              const std::string& path,
                                              std::uint64_t bytes,
                                              core::ReplicaAddress from,
                                              core::ReplicaAddress to) {
  MSRA_ASSIGN_OR_RETURN(
      double read_seconds,
      predictor.price(runtime::PlanBuilder::object_read(path, bytes),
                      from.location));
  MSRA_ASSIGN_OR_RETURN(
      double write_seconds,
      predictor.price(runtime::PlanBuilder::object_write(
                          path, bytes, srb::OpenMode::kOverwrite),
                      to.location));
  return read_seconds + write_seconds;
}

StatusOr<double> StagingScheduler::price_task(const StageTask& task) const {
  if (copyless(task.kind)) return 0.0;  // metadata-only
  if (predictor_ == nullptr) return 0.0;
  return price_move(*predictor_, task.path, task.bytes, task.from, task.to);
}

double StagingScheduler::idle_window(const StageTask& task) const {
  const core::Balancer& balancer = system_.balancer();
  double window = balancer.backlog_seconds(task.from);
  if (!copyless(task.kind)) {
    window = std::max(window, balancer.backlog_seconds(task.to));
  }
  return window;
}

Status StagingScheduler::copy_object(simkit::Timeline& timeline,
                                     const StageTask& task) {
  runtime::StorageEndpoint& src = system_.endpoint(task.from);
  runtime::StorageEndpoint& dst = system_.endpoint(task.to);
  if (!src.available()) {
    return Status::Unavailable("staging source " +
                               core::address_name(task.from) + " is down");
  }
  if (!dst.available()) {
    return Status::Unavailable("staging destination " +
                               core::address_name(task.to) + " is down");
  }
  if (dst.free_bytes() < task.bytes) {
    return Status::CapacityExceeded("no room for " + task.path + " on " +
                                    core::address_name(task.to));
  }
  std::vector<std::byte> payload(task.bytes);
  obs::TraceRecorder* tracer = &system_.tracer();
  MSRA_RETURN_IF_ERROR(runtime::PlanExecutor::execute(
      runtime::PlanBuilder::object_read(task.path, task.bytes), src, timeline,
      payload, {}, tracer));
  return runtime::PlanExecutor::execute(
      runtime::PlanBuilder::object_write(task.path, task.bytes,
                                         srb::OpenMode::kOverwrite),
      dst, timeline, {}, payload, tracer);
}

Status StagingScheduler::commit(simkit::Timeline& timeline,
                                const StageTask& task) {
  obs::MetricsRegistry& metrics = system_.metrics();
  bool drop = false;
  {
    std::lock_guard<std::mutex> lock(catalog_mutex_);
    if (!copyless(task.kind)) {
      MSRA_RETURN_IF_ERROR(
          catalog_.add_replica(task.app, task.name, task.timestep, task.to));
    }
    if (task.drop_source) {
      // CASTOR-style GC guard: an undispatched campaign stage still names
      // this instance — its read quote was priced against the current
      // placement, so the replica stays until the last consumer dispatches.
      if (pinned(task.dataset_key(), task.timestep)) {
        metrics.counter("flow.gc.refused")->increment();
        return Status::FailedPrecondition(
            "refusing to drop " + task.dataset_key() + " t" +
            std::to_string(task.timestep) +
            ": still named by an undispatched campaign stage");
      }
      // Safety invariant: never drop the last live replica. Re-checked at
      // commit time under the lock — the world may have changed since the
      // task was planned.
      MSRA_ASSIGN_OR_RETURN(
          core::InstanceRecord record,
          catalog_.instance(task.app, task.name, task.timestep));
      bool other_live = false;
      for (core::ReplicaAddress address : record.replicas) {
        if (address != task.from && system_.endpoint(address).available()) {
          other_live = true;
          break;
        }
      }
      if (!other_live) {
        return Status::PermissionDenied(
            "refusing to drop the last live replica of " + record.dataset_key +
            " t" + std::to_string(task.timestep));
      }
      MSRA_RETURN_IF_ERROR(catalog_.remove_replica(task.app, task.name,
                                                   task.timestep, task.from));
      drop = true;
    }
  }
  if (drop) {
    // Physical removal last, outside the catalog lock: new readers already
    // resolve to the surviving replicas, and a reader still holding an open
    // handle on this object is covered by the resource's deferred unlink —
    // counted here as the flow.gc unlink path.
    Status removed = system_.endpoint(task.from).remove(timeline, task.path);
    if (!removed.ok()) {
      MSRA_LOG(kWarn) << "staging: source object cleanup failed: "
                      << removed.to_string();
    } else {
      metrics.counter("flow.gc.unlinks")->increment();
    }
    // A dropped replica also invalidates the mid-tier cache entry: its
    // admission was priced against a refetch quote that no longer holds
    // (pinned in-flight reads keep their snapshot, as everywhere).
    if (cache::ReadCache* cache = system_.cache()) {
      cache->invalidate(task.path);
    }
  }
  return Status::Ok();
}

void StagingScheduler::run_task(const StageTask& task, StageOutcome* outcome) {
  outcome->task = task;
  auto priced = price_task(task);
  outcome->priced_cost = priced.ok() ? *priced : 0.0;
  outcome->started_at = task.start_at;

  // The mover is the system's own traffic: every device booking this
  // worker makes carries the configured (background) class, so a wfq/edf
  // policy keeps tenant reads ahead of replica shuffling.
  simkit::QosScope scope(system_.qos_tag(config_.tenant_class));
  simkit::Timeline timeline;
  timeline.advance_to(task.start_at);  // idle window (0 = start now)
  {
    obs::Span span(&system_.tracer(), timeline, "flow " + task.label());
    Status status = Status::Ok();
    if (admission_ != nullptr && !copyless(task.kind)) {
      qos::AdmissionDecision decision = admission_->decide_move(
          task.path, task.bytes, task.from, task.to, config_.tenant_class,
          timeline.now());
      if (decision.outcome == qos::AdmissionDecision::Outcome::kReject) {
        status = Status::ResourceExhausted("staging deferred: " +
                                           decision.reason);
      }
    }
    if (status.ok() && !copyless(task.kind)) {
      status = copy_object(timeline, task);
    }
    // Throttle: stretch the task so payload never streams faster than the
    // configured bytes/sec (reported separately — billed virtual time stays
    // equal to executed virtual time).
    if (status.ok() && !copyless(task.kind) &&
        config_.throttle_bytes_per_sec > 0) {
      const double floor_seconds =
          task.start_at + static_cast<double>(task.bytes) /
                              static_cast<double>(config_.throttle_bytes_per_sec);
      if (timeline.now() < floor_seconds) {
        outcome->throttle_wait = floor_seconds - timeline.now();
        timeline.advance(outcome->throttle_wait);
      }
    }
    if (status.ok()) status = commit(timeline, task);
    outcome->status = std::move(status);
  }
  outcome->finished_at = timeline.now();
  outcome->executed_seconds = timeline.now() - task.start_at;

  obs::MetricsRegistry& metrics = system_.metrics();
  metrics.histogram("io.flow.copy_seconds")->record(outcome->executed_seconds);
  metrics.histogram("io.flow.priced_cost")->record(outcome->priced_cost);
  metrics.histogram("io.flow.benefit")->record(task.benefit);
  if (outcome->throttle_wait > 0.0) {
    metrics.histogram("io.flow.throttle_seconds")->record(outcome->throttle_wait);
  }
  if (!outcome->status.ok()) {
    metrics.counter("flow.failures")->increment();
    return;
  }
  metrics.counter("flow.moves")->increment();
  if (!copyless(task.kind)) {
    metrics.counter("flow.moved_bytes")->add(task.bytes);
  }
  if (task.kind == StageTaskKind::kPrestage) {
    metrics.counter("flow.prestage.copies")->increment();
    std::lock_guard<std::mutex> lock(pin_mutex_);
    staged_.push_back(StagedCopy{task.app, task.name, task.timestep, task.to,
                                 task.bytes});
  }
  if (task.kind == StageTaskKind::kGc) {
    metrics.counter("flow.gc.dropped")->increment();
  }
}

std::vector<StageOutcome> StagingScheduler::execute(
    const std::vector<StageTask>& tasks) {
  std::vector<StageOutcome> outcomes(tasks.size());
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    const StageTask& task = tasks[i];
    StageOutcome* outcome = &outcomes[i];
    pool_.submit([this, &task, outcome] { run_task(task, outcome); });
  }
  pool_.wait_idle();
  return outcomes;
}

StatusOr<std::vector<std::byte>> StagingScheduler::read_object(
    runtime::StorageEndpoint& endpoint, simkit::Timeline& timeline,
    const std::string& path) {
  system_.metrics().counter("flow.fetches")->increment();
  MSRA_RETURN_IF_ERROR(endpoint.connect(timeline));
  auto total = endpoint.size(timeline, path);
  if (!total.ok()) {
    (void)endpoint.disconnect(timeline);
    return total.status();
  }
  std::vector<std::byte> data(*total);
  Status status = runtime::PlanExecutor::execute(
      runtime::PlanBuilder::connected_object_read(path, *total), endpoint,
      timeline, data, {}, &system_.tracer());
  Status disc_status = endpoint.disconnect(timeline);
  if (!status.ok()) return status;
  if (!disc_status.ok()) return disc_status;
  return data;
}

// ---- campaign lifecycle ---------------------------------------------------

void StagingScheduler::pin_campaign(const Campaign& campaign) {
  migrate::AccessTracker& tracker = system_.access_tracker();
  std::lock_guard<std::mutex> lock(pin_mutex_);
  for (std::size_t i = 0; i < campaign.stages().size(); ++i) {
    for (const DatasetRef& read : campaign.reads_of(i)) {
      const std::string key = campaign.dataset_key(read.dataset);
      ++pins_[{key, read.timestep}];
      tracker.expect_reads(key, 1.0);
    }
  }
}

void StagingScheduler::release_stage(const Campaign& campaign, std::size_t i) {
  migrate::AccessTracker& tracker = system_.access_tracker();
  std::lock_guard<std::mutex> lock(pin_mutex_);
  for (const DatasetRef& read : campaign.reads_of(i)) {
    const std::string key = campaign.dataset_key(read.dataset);
    auto it = pins_.find({key, read.timestep});
    if (it != pins_.end() && --it->second <= 0) pins_.erase(it);
    tracker.expect_reads(key, -1.0);
  }
}

bool StagingScheduler::pinned(const std::string& dataset_key,
                              int timestep) const {
  std::lock_guard<std::mutex> lock(pin_mutex_);
  auto it = pins_.find({dataset_key, timestep});
  return it != pins_.end() && it->second > 0;
}

std::vector<StageTask> StagingScheduler::plan_prestage(
    const Campaign& campaign, const std::vector<bool>& dispatched) {
  std::vector<StageTask> out;
  if (predictor_ == nullptr) return out;

  // Deduplicated future inputs, in stage/intent order for determinism.
  std::vector<DatasetRef> inputs;
  for (std::size_t j = 0; j < campaign.stages().size(); ++j) {
    if (j < dispatched.size() && dispatched[j]) continue;
    for (const DatasetRef& read : campaign.reads_of(j)) {
      if (std::find(inputs.begin(), inputs.end(), read) == inputs.end()) {
        inputs.push_back(read);
      }
    }
  }

  // Destination space promised to earlier tasks in this same batch, keyed
  // by (class, server) — the planner's reservation discipline.
  std::map<std::pair<int, int>, std::uint64_t> reserved;
  auto reserved_key = [](core::ReplicaAddress address) {
    return std::make_pair(static_cast<int>(address.location), address.server);
  };

  for (const DatasetRef& input : inputs) {
    const auto [app, name] =
        core::MetaCatalog::split_key(campaign.dataset_key(input.dataset));
    auto record = catalog_.instance(app, name, input.timestep);
    if (!record.ok()) continue;  // not produced yet: nothing to stage

    // Cheapest live replica today (the session's replica choice).
    const runtime::IoPlan read_plan =
        runtime::PlanBuilder::object_read(record->path, record->bytes);
    core::ReplicaAddress current = core::Location::kRemoteTape;
    double current_seconds = std::numeric_limits<double>::infinity();
    for (core::ReplicaAddress address : record->replicas) {
      if (!system_.endpoint(address).available()) continue;
      auto seconds = predictor_->price(read_plan, address.location);
      if (seconds.ok() && *seconds < current_seconds) {
        current_seconds = *seconds;
        current = address;
      }
    }
    if (!std::isfinite(current_seconds)) continue;  // nothing live

    const int readers = campaign.pending_readers(input, dispatched);
    if (readers <= 0) continue;

    // Fastest-first destinations, from the same ordered-candidates helper
    // placement, the advisor and the migration planner use.
    StageTask best;
    double best_net = 0.0;
    bool found = false;
    for (core::ReplicaAddress destination : core::ordered_candidate_addresses(
             {core::Location::kLocalDisk, current.server},
             system_.cluster_size())) {
      if (record->on(destination)) continue;
      runtime::StorageEndpoint& endpoint = system_.endpoint(destination);
      if (!endpoint.available()) continue;
      const std::uint64_t reserve = reserved[reserved_key(destination)];
      if (endpoint.free_bytes() < reserve + record->bytes) continue;
      auto dest_read = predictor_->price(read_plan, destination.location);
      if (!dest_read.ok() || *dest_read >= current_seconds) continue;

      StageTask task;
      task.kind = StageTaskKind::kPrestage;
      task.app = app;
      task.name = name;
      task.timestep = input.timestep;
      task.from = current;
      task.to = destination;
      task.path = record->path;
      task.bytes = record->bytes;
      task.drop_source = false;
      task.benefit =
          static_cast<double>(readers) * (current_seconds - *dest_read);
      auto cost = price_move(*predictor_, task.path, task.bytes, task.from,
                             task.to);
      if (!cost.ok()) continue;
      task.cost = *cost;
      const double net = task.benefit - task.cost;
      if (net <= 0.0) continue;  // the copy costs more than it ever saves
      if (!found || net > best_net) {
        best = std::move(task);
        best_net = net;
        found = true;
      }
    }
    if (!found) continue;
    best.start_at = idle_window(best);
    reserved[reserved_key(best.to)] += best.bytes;
    out.push_back(std::move(best));
  }
  return out;
}

std::vector<StageTask> StagingScheduler::plan_gc(const Campaign& campaign) {
  (void)campaign;
  std::vector<StageTask> out;
  std::vector<StagedCopy> copies;
  {
    std::lock_guard<std::mutex> lock(pin_mutex_);
    copies = staged_;
  }
  for (const StagedCopy& copy : copies) {
    if (pinned(copy.app + "/" + copy.name, copy.timestep)) continue;
    StageTask task;
    task.kind = StageTaskKind::kGc;
    task.app = copy.app;
    task.name = copy.name;
    task.timestep = copy.timestep;
    task.from = copy.address;
    task.to = copy.address;
    task.path = "";  // resolved below from the catalog record
    task.bytes = copy.bytes;
    task.drop_source = true;
    auto record = catalog_.instance(copy.app, copy.name, copy.timestep);
    if (!record.ok() || !record->on(copy.address)) continue;  // already gone
    task.path = record->path;
    task.start_at = idle_window(task);
    out.push_back(std::move(task));
  }
  // Executed GC drops leave the registry so reruns do not re-plan them.
  if (!out.empty()) {
    std::lock_guard<std::mutex> lock(pin_mutex_);
    staged_.erase(
        std::remove_if(staged_.begin(), staged_.end(),
                       [&](const StagedCopy& copy) {
                         for (const StageTask& task : out) {
                           if (task.app == copy.app && task.name == copy.name &&
                               task.timestep == copy.timestep &&
                               task.from == copy.address) {
                             return true;
                           }
                         }
                         return false;
                       }),
        staged_.end());
  }
  return out;
}

}  // namespace msra::flow
